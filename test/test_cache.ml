(* Tests for the version-aware memoization subsystem: the LRU backing
   store, the three-tier invalidation matrix, the stale-reformulation
   regression the subsystem exists to prevent, warm-vs-cold answer
   identity across engine profiles, and a differential property test
   pitting a mutated store against one rebuilt from scratch. *)

module Es = Store.Encoded_store
module Statistics = Store.Statistics
module Bgp = Query.Bgp
module Ucq = Query.Ucq

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

(* ---- Lru: eviction order and byte accounting ---- *)

let test_lru_eviction_order () =
  let l = Cache.Lru.create ~capacity_bytes:100 in
  Cache.Lru.add l "a" ~bytes:40 1;
  Cache.Lru.add l "b" ~bytes:40 2;
  Alcotest.(check (list string)) "recency after adds" [ "b"; "a" ]
    (Cache.Lru.keys_by_recency l);
  (* a hit refreshes recency, so the next eviction takes "b" *)
  Alcotest.(check (option int)) "find a" (Some 1) (Cache.Lru.find l "a");
  Cache.Lru.add l "c" ~bytes:40 3;
  Alcotest.(check (list string)) "b evicted, not a" [ "c"; "a" ]
    (Cache.Lru.keys_by_recency l);
  Alcotest.(check int) "one eviction" 1 (Cache.Lru.evictions l);
  Alcotest.(check (option int)) "b gone" None (Cache.Lru.find l "b");
  (* a large entry evicts as many cold entries as it takes *)
  Cache.Lru.add l "d" ~bytes:90 4;
  Alcotest.(check (list string)) "d displaced both" [ "d" ]
    (Cache.Lru.keys_by_recency l);
  Alcotest.(check int) "three evictions" 3 (Cache.Lru.evictions l)

let test_lru_byte_accounting () =
  let l = Cache.Lru.create ~capacity_bytes:100 in
  Cache.Lru.add l "a" ~bytes:30 1;
  Cache.Lru.add l "b" ~bytes:20 2;
  Alcotest.(check int) "bytes sum" 50 (Cache.Lru.bytes l);
  (* replacing a binding replaces its weight, not adds to it *)
  Cache.Lru.add l "a" ~bytes:60 10;
  Alcotest.(check int) "replace reweighs" 80 (Cache.Lru.bytes l);
  Alcotest.(check int) "replace is not an eviction" 0 (Cache.Lru.evictions l);
  Cache.Lru.remove l "b";
  Alcotest.(check int) "remove subtracts" 60 (Cache.Lru.bytes l);
  Alcotest.(check int) "remove not counted" 0 (Cache.Lru.evictions l);
  (* an entry over the whole capacity is refused, counted as an eviction,
     and leaves the cache untouched *)
  Cache.Lru.add l "huge" ~bytes:101 99;
  Alcotest.(check (option int)) "oversized refused" None
    (Cache.Lru.find l "huge");
  Alcotest.(check int) "cache untouched" 60 (Cache.Lru.bytes l);
  Alcotest.(check int) "refusal counted" 1 (Cache.Lru.evictions l);
  Cache.Lru.clear l;
  Alcotest.(check int) "clear zeroes bytes" 0 (Cache.Lru.bytes l);
  Alcotest.(check int) "clear zeroes length" 0 (Cache.Lru.length l)

(* ---- a small ontology used by the cache-level tests ---- *)

let base_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "A", u "B");
      Rdf.Schema.Subproperty (u "p", u "q");
    ]

let base_facts =
  [
    tr (u "i1") typ (u "A");
    tr (u "i2") typ (u "B");
    tr (u "i1") (u "p") (u "o1");
    tr (u "i2") (u "q") (u "o2");
    tr (u "i3") (u "q") (u "o1");
  ]

let fresh_store () = Es.of_graph (Rdf.Graph.make base_schema base_facts)
let q_type_b = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "B")) ]

let q_join =
  Bgp.make [ v "x" ]
    [
      Bgp.atom (v "x") (c (u "q")) (v "y");
      Bgp.atom (v "x") (c typ) (c (u "B"));
    ]

(* ---- the stale-memo regression ----

   The reformulation engine used to carry its own query-level memo keyed
   only on the canonical CQ: correct for a frozen schema, silently stale
   after a schema update.  The schema-versioned tier 1 replaces it; this
   is the regression test that the replacement actually observes schema
   changes end to end. *)

let test_schema_update_refreshes_reformulation () =
  let store = fresh_store () in
  let sys = Rqa.Answering.make store in
  let cache = Rqa.Answering.cache sys in
  Alcotest.(check int) "q(B) reformulates to {B, A}" 2
    (Ucq.cardinal (Cache.reformulate cache q_type_b));
  Alcotest.(check int) "answers before" 2
    (List.length (Rqa.Answering.answer_terms sys Rqa.Answering.Gcov q_type_b));
  (* a second reformulation is a tier-1 hit *)
  let s = Cache.stats cache in
  ignore (Cache.reformulate cache q_type_b);
  let s' = Cache.stats cache in
  Alcotest.(check int) "tier-1 hit" (s.Cache.reformulation.Cache.hits + 1)
    s'.Cache.reformulation.Cache.hits;
  (* declare C ⊑ B and type an instance with it, through the store's
     mutation API: same system, same cache *)
  let changed =
    Es.insert_triples store
      [
        Rdf.Schema.constr_to_triple (Rdf.Schema.Subclass (u "C", u "B"));
        tr (u "i4") typ (u "C");
      ]
  in
  Alcotest.(check (pair int int)) "1 schema + 1 data change" (1, 1) changed;
  Alcotest.(check int) "q(B) now reformulates to {B, A, C}" 3
    (Ucq.cardinal (Cache.reformulate cache q_type_b));
  Alcotest.(check int) "the new instance answers" 3
    (List.length (Rqa.Answering.answer_terms sys Rqa.Answering.Gcov q_type_b))

(* ---- the invalidation matrix ---- *)

let test_invalidation_matrix () =
  let store = fresh_store () in
  let cache = Cache.create ~mode:Cache.On store in
  ignore (Cache.reformulate cache q_type_b);
  let t2 =
    match Cache.tier2 cache ~scope:"test" ~query_key:"k" with
    | Some h -> h
    | None -> Alcotest.fail "tier2 handle in On mode"
  in
  Cache.t2_add_cost t2 "cover" 42.0;
  Alcotest.(check (option (float 0.0))) "tier-2 primed" (Some 42.0)
    (Cache.t2_find_cost t2 "cover");
  (* data-only change: tier 1 stays warm, tiers 2-3 flush *)
  ignore (Es.insert_triples store [ tr (u "i9") (u "q") (u "o9") ]);
  let s0 = Cache.stats cache in
  ignore (Cache.reformulate cache q_type_b);
  let s1 = Cache.stats cache in
  Alcotest.(check int) "tier 1 survives a data insert"
    (s0.Cache.reformulation.Cache.hits + 1)
    s1.Cache.reformulation.Cache.hits;
  Alcotest.(check int) "no tier-1 invalidation" 0
    s1.Cache.reformulation.Cache.evictions;
  Alcotest.(check (option (float 0.0))) "tier 2 flushed" None
    (Cache.t2_find_cost t2 "cover");
  (* schema change: everything flushes and the reformulator is rebuilt *)
  let r_before = Cache.reformulator cache in
  ignore
    (Es.insert_triples store
       [ Rdf.Schema.constr_to_triple (Rdf.Schema.Subclass (u "D", u "B")) ]);
  let s2 = Cache.stats cache in
  ignore (Cache.reformulate cache q_type_b);
  let s3 = Cache.stats cache in
  Alcotest.(check int) "tier 1 misses after a schema change"
    (s2.Cache.reformulation.Cache.misses + 1)
    s3.Cache.reformulation.Cache.misses;
  Alcotest.(check bool) "tier-1 entries dropped" true
    (s3.Cache.reformulation.Cache.evictions > 0);
  Alcotest.(check bool) "fresh reformulation engine" true
    (not (Cache.reformulator cache == r_before))

let test_answer_tier_lifecycle () =
  let store = fresh_store () in
  let sys = Rqa.Answering.make store in
  let cache = Rqa.Answering.cache sys in
  let r1 = Rqa.Answering.answer sys Rqa.Answering.Gcov q_join in
  let s1 = Cache.stats cache in
  Alcotest.(check bool) "entry cached with a byte weight" true
    (s1.Cache.answer.Cache.entries = 1 && s1.Cache.answer.Cache.bytes > 0);
  let r2 = Rqa.Answering.answer sys Rqa.Answering.Gcov q_join in
  let s2 = Cache.stats cache in
  Alcotest.(check int) "warm repeat is a tier-3 hit"
    (s1.Cache.answer.Cache.hits + 1)
    s2.Cache.answer.Cache.hits;
  let ex = Rqa.Answering.engine sys in
  Alcotest.(check bool) "bit-identical answers" true
    (Engine.Executor.decode ex r1.Rqa.Answering.answers
    = Engine.Executor.decode ex r2.Rqa.Answering.answers);
  Alcotest.(check bool) "identical plan metadata" true
    (r1.Rqa.Answering.cover = r2.Rqa.Answering.cover
    && r1.Rqa.Answering.union_terms = r2.Rqa.Answering.union_terms
    && r1.Rqa.Answering.fragment_terms = r2.Rqa.Answering.fragment_terms
    && r1.Rqa.Answering.covers_explored = r2.Rqa.Answering.covers_explored);
  (* a data change flushes the tier; the next answer misses and recomputes *)
  ignore (Es.insert_triples store [ tr (u "i7") (u "q") (u "o7"); tr (u "i7") typ (u "B") ]);
  let r3 = Rqa.Answering.answer sys Rqa.Answering.Gcov q_join in
  let s3 = Cache.stats cache in
  Alcotest.(check int) "post-update answer is a miss"
    (s2.Cache.answer.Cache.misses + 1)
    s3.Cache.answer.Cache.misses;
  Alcotest.(check int) "and sees the new row"
    (Engine.Relation.rows r1.Rqa.Answering.answers + 1)
    (Engine.Relation.rows r3.Rqa.Answering.answers)

(* ---- warm ≡ cold across engine profiles and strategies ---- *)

let test_warm_equals_cold_all_profiles () =
  let strategies =
    [
      Rqa.Answering.Saturation;
      Rqa.Answering.Ucq;
      Rqa.Answering.Scq;
      Rqa.Answering.Ecov
        { Rqa.Cover_space.max_covers = 64; max_millis = 100.0 };
      Rqa.Answering.Gcov;
    ]
  in
  List.iter
    (fun profile ->
      let sys = Rqa.Answering.make ~profile (fresh_store ()) in
      let ex = Rqa.Answering.engine sys in
      List.iter
        (fun strat ->
          List.iter
            (fun q ->
              let cold = Rqa.Answering.answer sys strat q in
              let warm = Rqa.Answering.answer sys strat q in
              let label =
                Printf.sprintf "%s/%s" profile.Engine.Profile.name
                  (Rqa.Answering.strategy_name strat)
              in
              Alcotest.(check bool) (label ^ " answers") true
                (Engine.Executor.decode ex cold.Rqa.Answering.answers
                = Engine.Executor.decode ex warm.Rqa.Answering.answers);
              Alcotest.(check bool) (label ^ " metadata") true
                (cold.Rqa.Answering.cover = warm.Rqa.Answering.cover
                && cold.Rqa.Answering.union_terms
                   = warm.Rqa.Answering.union_terms
                && cold.Rqa.Answering.fragment_terms
                   = warm.Rqa.Answering.fragment_terms
                && cold.Rqa.Answering.covers_explored
                   = warm.Rqa.Answering.covers_explored))
            [ q_type_b; q_join ])
        strategies)
    Engine.Profile.all

(* ---- differential property: mutated store = rebuilt store ----

   Random interleavings of triple inserts and deletes (facts and schema
   constraints) applied to a live store must leave it indistinguishable
   from a store rebuilt from scratch over the final state: same version
   deltas (counted effectively — duplicate inserts and absent deletes are
   no-ops), same query answers under a cached system, and the same
   statistics through the incremental refresh path. *)

type op = Ins of Rdf.Triple.t | Del of Rdf.Triple.t

let data_pool =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun o ->
          [
            tr (u s) (u "p") (u o);
            tr (u s) (u "q") (u o);
            tr (u s) (u "r") (u o);
            tr (u s) typ (u o);
          ])
        [ "o1"; "o2"; "A"; "B"; "C" ])
    [ "i1"; "i2"; "i3"; "i4" ]

let constraint_pool =
  List.map Rdf.Schema.constr_to_triple
    [
      Rdf.Schema.Subclass (u "C", u "B");
      Rdf.Schema.Subproperty (u "r", u "p");
      Rdf.Schema.Subclass (u "A", u "B");
    ]

let gen_ops =
  QCheck2.Gen.(
    list_size (1 -- 20)
      (map2
         (fun ins t -> if ins then Ins t else Del t)
         bool
         (frequency
            [ (8, oneofl data_pool); (2, oneofl constraint_pool) ])))

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | Ins t -> "+" ^ Rdf.Triple.to_string t
         | Del t -> "-" ^ Rdf.Triple.to_string t)
       ops)

(* The op sequence under set semantics: final facts, final declared
   constraints, and the number of effective changes of each kind. *)
let shadow ops =
  List.fold_left
    (fun (facts, constrs, eff_d, eff_s) op ->
      match op with
      | Ins t -> (
          match Rdf.Schema.constr_of_triple t with
          | Some cst ->
              if List.mem cst constrs then (facts, constrs, eff_d, eff_s)
              else (facts, cst :: constrs, eff_d, eff_s + 1)
          | None ->
              if List.mem t facts then (facts, constrs, eff_d, eff_s)
              else (t :: facts, constrs, eff_d + 1, eff_s))
      | Del t -> (
          match Rdf.Schema.constr_of_triple t with
          | Some cst ->
              if List.mem cst constrs then
                ( facts,
                  List.filter (fun c -> c <> cst) constrs,
                  eff_d,
                  eff_s + 1 )
              else (facts, constrs, eff_d, eff_s)
          | None ->
              if List.mem t facts then
                (List.filter (fun t' -> t' <> t) facts, constrs, eff_d + 1, eff_s)
              else (facts, constrs, eff_d, eff_s)))
    (base_facts, Rdf.Schema.constraints base_schema, 0, 0)
    ops

let probe_atoms =
  [
    Bgp.atom (v "x") (c typ) (c (u "B"));
    Bgp.atom (v "x") (c (u "q")) (v "y");
    Bgp.atom (v "x") (c (u "p")) (v "x");
    Bgp.atom (c (u "i1")) (v "p") (v "y");
  ]

let diff_queries =
  [
    q_type_b;
    q_join;
    Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c (u "q")) (v "y") ];
  ]

let prop_mutated_equals_rebuilt =
  QCheck2.Test.make ~count:40 ~name:"mutated store = rebuilt store"
    ~print:print_ops gen_ops (fun ops ->
      let store = fresh_store () in
      let stats = Statistics.create store in
      (* touch the statistics before mutating so the refresh after the
         ops runs the incremental path, not a cold build *)
      List.iter (fun a -> ignore (Statistics.atom_count stats a)) probe_atoms;
      ignore (Statistics.global_distinct stats `Subject);
      let v0_s = Es.schema_version store and v0_d = Es.data_version store in
      List.iter
        (function
          | Ins t -> ignore (Es.insert_triples store [ t ])
          | Del t -> ignore (Es.delete_triples store [ t ]))
        ops;
      let facts, constrs, eff_d, eff_s = shadow ops in
      let rebuilt =
        Es.of_graph (Rdf.Graph.make (Rdf.Schema.of_constraints constrs) facts)
      in
      let fresh_stats = Statistics.create rebuilt in
      let sys_mut = Rqa.Answering.make store in
      let sys_reb = Rqa.Answering.make rebuilt in
      Es.data_version store - v0_d = eff_d
      && Es.schema_version store - v0_s = eff_s
      && Es.size store = Es.size rebuilt
      && List.for_all
           (fun a ->
             Statistics.atom_count stats a = Statistics.atom_count fresh_stats a)
           probe_atoms
      && List.for_all
           (fun pos ->
             Statistics.global_distinct stats pos
             = Statistics.global_distinct fresh_stats pos)
           [ `Subject; `Property; `Object ]
      && List.for_all
           (fun q ->
             let a_mut =
               Rqa.Answering.answer_terms sys_mut Rqa.Answering.Gcov q
             in
             let a_reb =
               Rqa.Answering.answer_terms sys_reb Rqa.Answering.Gcov q
             in
             (* and the warm repeat on the mutated system agrees too *)
             a_mut = a_reb
             && a_mut = Rqa.Answering.answer_terms sys_mut Rqa.Answering.Gcov q)
           diff_queries)

let qcheck_cases =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_mutated_equals_rebuilt ]

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "byte accounting" `Quick test_lru_byte_accounting;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "schema update refreshes reformulation" `Quick
            test_schema_update_refreshes_reformulation;
          Alcotest.test_case "invalidation matrix" `Quick
            test_invalidation_matrix;
          Alcotest.test_case "answer tier lifecycle" `Quick
            test_answer_tier_lifecycle;
        ] );
      ( "answers",
        [
          Alcotest.test_case "warm = cold, all profiles and strategies"
            `Quick test_warm_equals_cold_all_profiles;
        ] );
      ("differential", qcheck_cases);
    ]
