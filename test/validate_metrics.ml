(* Validates rdfqa metrics exports against the schemas documented in
   lib/metrics/metrics.mli (the two must stay in sync).  Used by the CLI
   test suite and the CI metrics job:

     validate_metrics.exe FILE

     validate_metrics.exe [--require NAME,NAME,...] FILE

   FILE ending in .jsonl is checked as a JSONL registry snapshot; anything
   else is checked as Prometheus text exposition format.  [--require]
   additionally asserts each named metric family is present in the export
   (exact sample/TYPE name, e.g. rdfqa_views_hits_total) — the CLI tests
   use it to pin the families a subsystem must publish.  Exits 0 with a
   summary when the file conforms, 1 with the first offending line
   otherwise.  Like validate_trace.ml, the JSON reader below is a small
   hand-written parser: the repo carries no JSON dependency. *)

exception Bad of string

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_ () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c
                  when (c >= '0' && c <= '9')
                       || (c >= 'a' && c <= 'f')
                       || (c >= 'A' && c <= 'F') ->
                    Buffer.add_char buf c;
                    advance ()
                | _ -> fail "bad \\u escape"
              done
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> fail "unterminated escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_ ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_ () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec elements acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elements []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let str fields k =
  match field fields k with
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let num fields k =
  match field fields k with
  | Num f -> f
  | _ -> raise (Bad (Printf.sprintf "field %S must be a number" k))

let int_ fields k =
  let f = num fields k in
  if Float.is_integer f then int_of_float f
  else raise (Bad (Printf.sprintf "field %S must be an integer" k))

let nonneg_int fields k =
  let i = int_ fields k in
  if i < 0 then raise (Bad (Printf.sprintf "field %S must be >= 0" k));
  i

(* ---- JSONL snapshot schema (lib/metrics/metrics.mli) ---- *)

let check_jsonl_line ~first ~names line =
  let fields =
    match parse line with
    | Obj fields -> fields
    | _ -> raise (Bad "line is not a JSON object")
  in
  let ty = str fields "type" in
  if first && ty <> "meta" then raise (Bad "first line must be a meta line");
  match ty with
  | "meta" ->
      if not first then raise (Bad "meta line must come first");
      if int_ fields "schema" <> 1 then raise (Bad "unknown schema version");
      if str fields "generator" <> "rdfqa-metrics" then
        raise (Bad "unknown generator")
  | "counter" ->
      Hashtbl.replace names (str fields "name") ();
      ignore (nonneg_int fields "value")
  | "gauge" ->
      Hashtbl.replace names (str fields "name") ();
      ignore (num fields "value")
  | "histogram" ->
      Hashtbl.replace names (str fields "name") ();
      let count = nonneg_int fields "count" in
      ignore (num fields "sum");
      let p50 = num fields "p50"
      and p90 = num fields "p90"
      and p99 = num fields "p99"
      and mx = num fields "max" in
      ignore (num fields "min");
      if not (p50 <= p90 && p90 <= p99 && p99 <= mx) then
        raise (Bad "quantiles must satisfy p50 <= p90 <= p99 <= max");
      let buckets =
        match field fields "buckets" with
        | Arr bs -> bs
        | _ -> raise (Bad "buckets must be an array")
      in
      let last_le = ref neg_infinity and last_count = ref 0 in
      List.iter
        (fun b ->
          match b with
          | Obj bf ->
              let le = num bf "le" and c = nonneg_int bf "count" in
              if not (Float.is_finite le) then
                raise (Bad "bucket le must be finite");
              if le <= !last_le then
                raise (Bad "bucket le must be strictly increasing");
              if c < !last_count then
                raise (Bad "bucket counts must be cumulative");
              last_le := le;
              last_count := c
          | _ -> raise (Bad "bucket must be an object"))
        buckets;
      if !last_count > count then
        raise (Bad "cumulative bucket count exceeds histogram count")
  | other -> raise (Bad (Printf.sprintf "unknown line type %S" other))

(* Fails unless every required family name is a key of [names]. *)
let check_required path ~require names =
  List.iter
    (fun fam ->
      if not (Hashtbl.mem names fam) then begin
        Printf.eprintf "%s: required metric family %s is absent\n" path fam;
        exit 1
      end)
    require

let check_jsonl ~require path =
  let ic = open_in path in
  let lineno = ref 0 in
  let names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (try
     let first = ref true in
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         check_jsonl_line ~first:!first ~names line;
         first := false
       end
     done
   with
  | End_of_file -> close_in ic
  | Bad msg ->
      close_in ic;
      Printf.eprintf "%s:%d: %s\n" path !lineno msg;
      exit 1);
  if !lineno = 0 then begin
    Printf.eprintf "%s: empty snapshot\n" path;
    exit 1
  end;
  check_required path ~require names;
  Printf.printf "%s: %d lines ok\n" path !lineno

(* ---- Prometheus text exposition format ---- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let valid_name s =
  s <> ""
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all is_name_char s

(* The sample name a series belongs to: histogram series drop their
   _bucket/_sum/_count suffix back to the TYPE-declared base name. *)
let base_of types name =
  let strip suffix =
    if Filename.check_suffix name suffix then
      Some (Filename.chop_suffix name suffix)
    else None
  in
  if Hashtbl.mem types name then Some name
  else
    List.find_map
      (fun sfx ->
        match strip sfx with
        | Some b when Hashtbl.find_opt types b = Some "histogram" -> Some b
        | _ -> None)
      [ "_bucket"; "_sum"; "_count" ]

let check_prometheus ~require path =
  let ic = open_in path in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  (* histogram base -> (le, cumulative count) list in file order *)
  let hbuckets : (string, (float * float) list) Hashtbl.t = Hashtbl.create 8 in
  let hsum : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let hcount : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let samples = ref 0 in
  let lineno = ref 0 in
  let fail msg =
    close_in ic;
    Printf.eprintf "%s:%d: %s\n" path !lineno msg;
    exit 1
  in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line = "" then ()
       else if String.length line >= 1 && line.[0] = '#' then begin
         match String.split_on_char ' ' line with
         | "#" :: "HELP" :: name :: _ ->
             if not (valid_name name) then fail ("bad HELP name " ^ name)
         | "#" :: "TYPE" :: name :: ty :: [] ->
             if not (valid_name name) then fail ("bad TYPE name " ^ name);
             if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
               fail ("unknown TYPE " ^ ty);
             if Hashtbl.mem types name then
               fail ("duplicate TYPE for " ^ name);
             Hashtbl.replace types name ty
         | _ -> fail "malformed comment line"
       end
       else begin
         (* sample: name[{labels}] value *)
         let name, labels, value_str =
           match String.index_opt line '{' with
           | Some i ->
               let j =
                 match String.index_opt line '}' with
                 | Some j when j > i -> j
                 | _ -> fail "unterminated label set"
               in
               ( String.sub line 0 i,
                 Some (String.sub line (i + 1) (j - i - 1)),
                 String.trim
                   (String.sub line (j + 1) (String.length line - j - 1)) )
           | None -> (
               match String.rindex_opt line ' ' with
               | Some i ->
                   ( String.sub line 0 i,
                     None,
                     String.sub line (i + 1) (String.length line - i - 1) )
               | None -> fail "sample line without value")
         in
         if not (valid_name name) then fail ("bad sample name " ^ name);
         let value =
           match value_str with
           | "+Inf" -> infinity
           | "-Inf" -> neg_infinity
           | s -> (
               match float_of_string_opt s with
               | Some f -> f
               | None -> fail ("bad sample value " ^ s))
         in
         incr samples;
         match base_of types name with
         | None -> fail ("sample " ^ name ^ " has no preceding TYPE")
         | Some base -> (
             let ty = Hashtbl.find types base in
             match ty with
             | "counter" ->
                 if value < 0.0 then fail ("negative counter " ^ name);
                 if labels <> None then fail "unexpected labels on counter"
             | "gauge" ->
                 if Float.is_nan value then fail ("NaN gauge " ^ name)
             | "histogram" ->
                 if Filename.check_suffix name "_bucket" then begin
                   let le =
                     match labels with
                     | Some l when String.length l > 4
                                   && String.sub l 0 4 = "le=\""
                                   && l.[String.length l - 1] = '"' ->
                         let v = String.sub l 4 (String.length l - 5) in
                         if v = "+Inf" then infinity
                         else (
                           match float_of_string_opt v with
                           | Some f -> f
                           | None -> fail ("bad le value " ^ v))
                     | _ -> fail "bucket sample must carry le=\"...\""
                   in
                   let prev =
                     Option.value ~default:[] (Hashtbl.find_opt hbuckets base)
                   in
                   Hashtbl.replace hbuckets base (prev @ [ (le, value) ])
                 end
                 else if Filename.check_suffix name "_sum" then
                   Hashtbl.replace hsum base value
                 else if Filename.check_suffix name "_count" then
                   Hashtbl.replace hcount base value
                 else fail ("bare sample " ^ name ^ " for histogram " ^ base)
             | _ -> assert false)
       end
     done
   with End_of_file -> close_in ic);
  (* cross-sample histogram invariants *)
  Hashtbl.iter
    (fun base ty ->
      if ty = "histogram" then begin
        let buckets =
          match Hashtbl.find_opt hbuckets base with
          | Some bs -> bs
          | None ->
              Printf.eprintf "%s: histogram %s has no buckets\n" path base;
              exit 1
        in
        let rec check_mono last_le last_c = function
          | [] -> ()
          | (le, c) :: rest ->
              if le <= last_le then begin
                Printf.eprintf "%s: %s le not increasing\n" path base;
                exit 1
              end;
              if c < last_c then begin
                Printf.eprintf "%s: %s buckets not cumulative\n" path base;
                exit 1
              end;
              check_mono le c rest
        in
        check_mono neg_infinity 0.0 buckets;
        (match List.rev buckets with
        | (le, last) :: _ ->
            if le <> infinity then begin
              Printf.eprintf "%s: %s missing +Inf bucket\n" path base;
              exit 1
            end;
            (match Hashtbl.find_opt hcount base with
            | Some c when c = last -> ()
            | Some _ ->
                Printf.eprintf "%s: %s _count disagrees with +Inf bucket\n"
                  path base;
                exit 1
            | None ->
                Printf.eprintf "%s: %s missing _count\n" path base;
                exit 1)
        | [] -> ());
        if not (Hashtbl.mem hsum base) then begin
          Printf.eprintf "%s: %s missing _sum\n" path base;
          exit 1
        end
      end)
    types;
  if !samples = 0 then begin
    Printf.eprintf "%s: no samples\n" path;
    exit 1
  end;
  check_required path ~require types;
  Printf.printf "%s: %d samples, %d series ok\n" path !samples
    (Hashtbl.length types)

let () =
  let usage () =
    prerr_endline
      "usage: validate_metrics.exe [--require NAME,NAME,...] FILE[.jsonl|.prom]";
    exit 2
  in
  let require, path =
    match Array.to_list Sys.argv with
    | [ _; path ] -> ([], path)
    | [ _; "--require"; names; path ] ->
        (List.filter (fun s -> s <> "") (String.split_on_char ',' names), path)
    | _ -> usage ()
  in
  if Filename.check_suffix path ".jsonl" then check_jsonl ~require path
  else check_prometheus ~require path
