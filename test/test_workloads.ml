(* Tests for the LUBM and DBLP workloads: the ontology reproduces the
   paper's reformulation statistics (Tables 1-4), the generators are
   deterministic and well-typed, and the evaluation queries have answers
   whose completeness requires reasoning. *)

open Query

(* Every plan compiled while this suite runs goes through the static
   plan verifier: a schema or cover violation fails the tests. *)
let () = Analysis.Plan_verify.set_enabled true

let v x = Bgp.Var x
let c t = Bgp.Const t
let typ = Rdf.Vocab.rdf_type

let lubm_reformulator = Reformulation.Reformulate.create Workloads.Lubm.schema
let dblp_reformulator = Reformulation.Reformulate.create Workloads.Dblp.schema

(* ---- Table 1 / Table 3: per-triple reformulation counts ---- *)

let test_lubm_open_type_atom_is_188 () =
  Alcotest.(check int) "(x rdf:type y) has 188 reformulations" 188
    (Reformulation.Reformulate.atom_count lubm_reformulator
       (Bgp.atom (v "x") (c typ) (v "y")))

let test_lubm_degree_and_member_atoms () =
  let count p =
    Reformulation.Reformulate.atom_count lubm_reformulator
      (Bgp.atom (v "x")
         (c (Rdf.Term.uri (Workloads.Lubm.ns ^ p)))
         (c (Workloads.Lubm.university 0)))
  in
  Alcotest.(check int) "degreeFrom: 4 (Table 1, t2)" 4 (count "degreeFrom");
  Alcotest.(check int) "memberOf: 3 (Table 1, t3)" 3 (count "memberOf");
  Alcotest.(check int) "mastersDegreeFrom: 1 (Table 3)" 1
    (count "mastersDegreeFrom")

let test_q01_reformulation_size () =
  Alcotest.(check int) "|q1_ref| = 2,256 (Table 1)" 2256
    (Reformulation.Reformulate.count lubm_reformulator
       (Workloads.Lubm.query "Q01"))

let test_q28_reformulation_size () =
  Alcotest.(check int) "|q2_ref| = 318,096 (Table 3)" 318096
    (Reformulation.Reformulate.count_product_bound lubm_reformulator
       (Workloads.Lubm.query "Q28"))

let test_reformulation_size_spread () =
  (* Table 4's shape: small, medium and huge reformulations coexist. *)
  let count name =
    Reformulation.Reformulate.count_product_bound lubm_reformulator
      (Workloads.Lubm.query name)
  in
  Alcotest.(check bool) "Q17 trivial" true (count "Q17" = 1);
  Alcotest.(check bool) "Q15 beyond DB2 capacity" true (count "Q15" > 8000);
  Alcotest.(check bool) "Q18 beyond MySQL capacity" true (count "Q18" > 60000);
  Alcotest.(check bool) "Q19 between DB2 and MySQL" true
    (count "Q19" > 8000 && count "Q19" < 60000)

(* ---- generators ---- *)

let small = { Workloads.Lubm.universities = 1 }

let test_lubm_generator_deterministic () =
  let s1 = Workloads.Lubm.generate small in
  let s2 = Workloads.Lubm.generate small in
  Alcotest.(check int) "same size"
    (Store.Encoded_store.size s1) (Store.Encoded_store.size s2);
  Alcotest.(check bool) "same graph" true
    (Rdf.Graph.equal
       (Store.Encoded_store.to_graph s1)
       (Store.Encoded_store.to_graph s2))

let test_lubm_generator_seed_sensitivity () =
  let s1 = Workloads.Lubm.generate ~seed:1 small in
  let s2 = Workloads.Lubm.generate ~seed:2 small in
  Alcotest.(check bool) "different seeds differ" false
    (Rdf.Graph.equal
       (Store.Encoded_store.to_graph s1)
       (Store.Encoded_store.to_graph s2))

let test_lubm_generator_scales () =
  let s1 = Store.Encoded_store.size (Workloads.Lubm.generate small) in
  let s3 =
    Store.Encoded_store.size
      (Workloads.Lubm.generate { Workloads.Lubm.universities = 3 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "3 universities (%d) ≈ 3 × 1 university (%d)" s3 s1)
    true
    (s3 > 2 * s1 && s3 < 4 * s1)

let test_lubm_only_explicit_specific_types () =
  (* The generator must not assert implicit knowledge: no explicit
     ub:Person or ub:degreeFrom triples. *)
  let g = Workloads.Lubm.generate_graph small in
  let person = Rdf.Term.uri (Workloads.Lubm.ns ^ "Person") in
  let degree_from = Rdf.Term.uri (Workloads.Lubm.ns ^ "degreeFrom") in
  Rdf.Triple.Set.iter
    (fun (t : Rdf.Triple.t) ->
      if Rdf.Term.equal t.pred typ && Rdf.Term.equal t.obj person then
        Alcotest.fail "explicit ub:Person assertion";
      if Rdf.Term.equal t.pred degree_from then
        Alcotest.fail "explicit ub:degreeFrom assertion")
    (Rdf.Graph.facts g)

let test_lubm_queries_need_reasoning () =
  (* Q01 has answers only through reformulation/saturation. *)
  let g = Workloads.Lubm.generate_graph { Workloads.Lubm.universities = 2 } in
  let q = Workloads.Lubm.query "Q01" in
  Alcotest.(check bool) "direct evaluation incomplete" true
    (Bgp.eval g q = []);
  Alcotest.(check bool) "answers exist under reasoning" true
    (Bgp.answer g q <> [])

let test_lubm_q17_triangle_exists () =
  let g = Workloads.Lubm.generate_graph small in
  Alcotest.(check bool) "triangle answers" true
    (Bgp.answer g (Workloads.Lubm.query "Q17") <> [])

let test_dblp_generator () =
  let s = Workloads.Dblp.generate { Workloads.Dblp.publications = 200 } in
  Alcotest.(check bool) "nonempty" true (Store.Encoded_store.size s > 600);
  let s2 = Workloads.Dblp.generate { Workloads.Dblp.publications = 200 } in
  Alcotest.(check int) "deterministic"
    (Store.Encoded_store.size s) (Store.Encoded_store.size s2)

let test_dblp_queries_parse_and_answer () =
  let g = Workloads.Dblp.generate_graph { Workloads.Dblp.publications = 60 } in
  List.iter
    (fun (name, q) ->
      if name <> "Q10" then begin
        (* every query evaluates; most have answers at this scale *)
        let n = List.length (Bgp.answer g q) in
        if name = "Q01" || name = "Q02" then
          Alcotest.(check bool) (name ^ " has answers") true (n > 0)
      end)
    Workloads.Dblp.queries

let test_dblp_q10_shape () =
  let q10 = Workloads.Dblp.query "Q10" in
  Alcotest.(check int) "ten atoms" 10 (List.length q10.Bgp.body);
  let bound =
    Reformulation.Reformulate.count_product_bound dblp_reformulator q10
  in
  Alcotest.(check bool)
    (Printf.sprintf "~1.9M reformulations (got %d)" bound)
    true
    (bound > 1_500_000 && bound < 2_500_000)

let test_dblp_creator_implicit () =
  (* dblp:creator facts exist only via dblp:author/dblp:editor. *)
  let g = Workloads.Dblp.generate_graph { Workloads.Dblp.publications = 50 } in
  let creator = Rdf.Term.uri (Workloads.Dblp.ns ^ "creator") in
  Rdf.Triple.Set.iter
    (fun (t : Rdf.Triple.t) ->
      if Rdf.Term.equal t.pred creator then
        Alcotest.fail "explicit dblp:creator assertion")
    (Rdf.Graph.facts g);
  let q = Workloads.Dblp.query "Q01" in
  Alcotest.(check bool) "Q01 empty without reasoning" true (Bgp.eval g q = [])

(* ---- end-to-end: strategies agree on workload data ---- *)

let test_strategies_agree_on_lubm () =
  let store = Workloads.Lubm.generate small in
  let sys = Rqa.Answering.make store in
  List.iter
    (fun name ->
      let q = Workloads.Lubm.query name in
      let expected = Rqa.Answering.answer_terms sys Rqa.Answering.Saturation q in
      List.iter
        (fun strat ->
          Alcotest.(check bool)
            (name ^ " " ^ Rqa.Answering.strategy_name strat)
            true
            (Rqa.Answering.answer_terms sys strat q = expected))
        [ Rqa.Answering.Ucq; Rqa.Answering.Scq; Rqa.Answering.Gcov ])
    [ "Q01"; "Q03"; "Q05"; "Q07"; "Q11"; "Q17"; "Q20"; "Q22"; "Q25" ]

let test_gcov_answers_all_lubm_queries () =
  (* The headline claim: the GCov-chosen JUCQ always completes, on every
     evaluation query, and agrees with saturation. *)
  let store = Workloads.Lubm.generate small in
  let sys = Rqa.Answering.make store in
  List.iter
    (fun (name, q) ->
      let sat = Rqa.Answering.answer_terms sys Rqa.Answering.Saturation q in
      let gcov = Rqa.Answering.answer_terms sys Rqa.Answering.Gcov q in
      Alcotest.(check bool) (name ^ " GCov = saturation") true (gcov = sat))
    Workloads.Lubm.queries

let test_gcov_answers_all_dblp_queries () =
  let store = Workloads.Dblp.generate { Workloads.Dblp.publications = 400 } in
  let sys = Rqa.Answering.make store in
  List.iter
    (fun (name, q) ->
      let sat = Rqa.Answering.answer_terms sys Rqa.Answering.Saturation q in
      let gcov = Rqa.Answering.answer_terms sys Rqa.Answering.Gcov q in
      Alcotest.(check bool) (name ^ " GCov = saturation") true (gcov = sat))
    Workloads.Dblp.queries

let () =
  Alcotest.run "workloads"
    [
      ( "lubm_schema",
        [
          Alcotest.test_case "open type atom = 188" `Quick test_lubm_open_type_atom_is_188;
          Alcotest.test_case "degree/member atoms (Table 1)" `Quick test_lubm_degree_and_member_atoms;
          Alcotest.test_case "Q01 = 2,256" `Quick test_q01_reformulation_size;
          Alcotest.test_case "Q28 = 318,096" `Quick test_q28_reformulation_size;
          Alcotest.test_case "size spread (Table 4)" `Quick test_reformulation_size_spread;
        ] );
      ( "lubm_generator",
        [
          Alcotest.test_case "deterministic" `Quick test_lubm_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_lubm_generator_seed_sensitivity;
          Alcotest.test_case "linear scaling" `Quick test_lubm_generator_scales;
          Alcotest.test_case "no implicit assertions" `Quick test_lubm_only_explicit_specific_types;
          Alcotest.test_case "queries need reasoning" `Quick test_lubm_queries_need_reasoning;
          Alcotest.test_case "Q17 triangles" `Quick test_lubm_q17_triangle_exists;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "generator" `Quick test_dblp_generator;
          Alcotest.test_case "queries answer" `Quick test_dblp_queries_parse_and_answer;
          Alcotest.test_case "Q10 shape" `Quick test_dblp_q10_shape;
          Alcotest.test_case "creator implicit" `Quick test_dblp_creator_implicit;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "strategies agree on LUBM" `Slow test_strategies_agree_on_lubm;
          Alcotest.test_case "GCov completes all 28 LUBM queries" `Slow test_gcov_answers_all_lubm_queries;
          Alcotest.test_case "GCov completes all 10 DBLP queries" `Slow test_gcov_answers_all_dblp_queries;
        ] );
    ]
