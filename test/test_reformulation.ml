(* Tests for CQ→UCQ reformulation: the paper's Example 4, rule-level
   behaviour, the factorized-vs-naive equivalence, and the central soundness
   and completeness property  q_ref(db) = q(db∞)  of [4]. *)

open Query

let u s = Rdf.Term.uri s
let lit s = Rdf.Term.literal s
let bn s = Rdf.Term.bnode s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let book_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "Book", u "Publication");
      Rdf.Schema.Subproperty (u "writtenBy", u "hasAuthor");
      Rdf.Schema.Domain (u "writtenBy", u "Book");
      Rdf.Schema.Range (u "writtenBy", u "Person");
      Rdf.Schema.Domain (u "hasAuthor", u "Book");
      Rdf.Schema.Range (u "hasAuthor", u "Person");
    ]

let book_graph =
  Rdf.Graph.make book_schema
    [
      tr (u "doi1") typ (u "Book");
      tr (u "doi1") (u "writtenBy") (bn "b1");
      tr (u "doi1") (u "hasTitle") (lit "Game of Thrones");
      tr (bn "b1") (u "hasName") (lit "George R. R. Martin");
      tr (u "doi1") (u "publishedIn") (lit "1996");
    ]

let engine = Reformulation.Reformulate.create book_schema

(* ---- Example 4 ---- *)

let test_example4_count () =
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  Alcotest.(check int) "11 reformulations (paper Example 4)" 11
    (Reformulation.Reformulate.count engine q)

let test_example4_members () =
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  let ucq = Reformulation.Reformulate.reformulate engine q in
  let expect =
    [
      (* (0) *) Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ];
      (* (1) *)
      Bgp.make [ v "x"; c (u "Book") ] [ Bgp.atom (v "x") (c typ) (c (u "Book"))];
      (* (2) *)
      Bgp.make [ v "x"; c (u "Book") ] [ Bgp.atom (v "x") (c (u "writtenBy")) (v "z")];
      (* (3) *)
      Bgp.make [ v "x"; c (u "Book") ] [ Bgp.atom (v "x") (c (u "hasAuthor")) (v "z")];
      (* (5) *)
      Bgp.make [ v "x"; c (u "Publication") ] [ Bgp.atom (v "x") (c typ) (c (u "Book"))];
      (* (9) *)
      Bgp.make [ v "x"; c (u "Person") ] [ Bgp.atom (v "z") (c (u "writtenBy")) (v "x")];
      (* (10) *)
      Bgp.make [ v "x"; c (u "Person") ] [ Bgp.atom (v "z") (c (u "hasAuthor")) (v "x")];
    ]
  in
  List.iter
    (fun cq ->
      Alcotest.(check bool)
        ("member: " ^ Bgp.to_string cq)
        true
        (List.exists (Bgp.equal cq) (Ucq.disjuncts ucq)))
    expect

let test_example4_answers () =
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  let via_sat = Bgp.answer book_graph q in
  let via_ref = Reformulation.Reformulate.answer_via_reformulation book_graph q in
  Alcotest.(check bool) "same answers" true (via_sat = via_ref);
  (* doi1 is both a Book (explicit) and a Publication (implicit). *)
  Alcotest.(check bool) "implicit publication" true
    (List.mem [ u "doi1"; u "Publication" ] via_ref)

(* ---- Rule-level checks ---- *)

let test_subproperty_rule () =
  let q = Bgp.make [ v "x"; v "z" ] [ Bgp.atom (v "x") (c (u "hasAuthor")) (v "z") ] in
  let ucq = Reformulation.Reformulate.reformulate engine q in
  Alcotest.(check int) "hasAuthor + writtenBy" 2 (Ucq.cardinal ucq)

let test_subclass_domain_range_rules () =
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "Publication")) ] in
  let ucq = Reformulation.Reformulate.reformulate engine q in
  (* Publication ⊒ Book; x type Book entailed by writtenBy/hasAuthor facts:
     {type Publication, type Book, writtenBy, hasAuthor} = 4 *)
  Alcotest.(check int) "four disjuncts" 4 (Ucq.cardinal ucq)

let test_range_rule () =
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "Person")) ] in
  let ucq = Reformulation.Reformulate.reformulate engine q in
  (* {type Person, z writtenBy x, z hasAuthor x} *)
  Alcotest.(check int) "three disjuncts" 3 (Ucq.cardinal ucq)

let test_no_schema_no_growth () =
  let empty = Reformulation.Reformulate.create Rdf.Schema.empty in
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check int) "only the original" 1
    (Reformulation.Reformulate.count empty q)

let test_property_variable_instantiation () =
  let q = Bgp.make [ v "x"; v "p" ] [ Bgp.atom (v "x") (v "p") (c (u "doi1")) ] in
  let ucq = Reformulation.Reformulate.reformulate engine q in
  (* Original + p ∈ {writtenBy, hasAuthor, rdf:type} (schema properties and
     rdf:type), the latter spawning class instantiation of... the object is
     a constant so no further growth; writtenBy also reachable from
     hasAuthor by SubProperty. *)
  Alcotest.(check bool) "at least 4" true (Ucq.cardinal ucq >= 4)

let test_unsupported_atom () =
  let q =
    Bgp.make [ v "x" ]
      [ Bgp.atom (v "x") (c Rdf.Vocab.rdfs_subclassof) (v "y") ]
  in
  Alcotest.(check bool) "raises Unsupported_atom" true
    (try ignore (Reformulation.Reformulate.reformulate engine q); false
     with Reformulation.Rules.Unsupported_atom _ -> true)

let test_atom_count () =
  Alcotest.(check int) "degree-like atom count" 2
    (Reformulation.Reformulate.atom_count engine
       (Bgp.atom (v "x") (c (u "hasAuthor")) (v "z")))

let test_cache_consistency () =
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  let a = Reformulation.Reformulate.reformulate engine q in
  let b = Reformulation.Reformulate.reformulate engine q in
  Alcotest.(check bool) "cached result equal" true (Ucq.equal a b)

let test_construction_cap () =
  let tiny = Reformulation.Reformulate.create ~max_terms:2 book_schema in
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  Alcotest.(check bool) "raises Too_large" true
    (try ignore (Reformulation.Reformulate.reformulate tiny q); false
     with Reformulation.Reformulate.Too_large { bound; limit } ->
       bound > limit && limit = 2)

let test_product_bound_vs_exact () =
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ] in
  Alcotest.(check int) "single atom exact" 11
    (Reformulation.Reformulate.count_product_bound engine q);
  (* coupled class variables: bound over-approximates *)
  let coupled =
    Bgp.make [ v "x"; v "z"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "z") (c typ) (v "k");
      ]
  in
  Alcotest.(check bool) "bound ≥ exact" true
    (Reformulation.Reformulate.count_product_bound engine coupled
    >= Reformulation.Reformulate.count engine coupled)

(* ---- Multi-atom joint reformulation ---- *)

let test_joint_reformulation_product () =
  (* For atoms with disjoint variables in class/property positions, the
     joint reformulation is the product of per-atom reformulations (this is
     what makes |q1_ref| = 188 × 4 × 3 = 2256 in Table 1). *)
  let q =
    Bgp.make [ v "x"; v "a" ]
      [
        Bgp.atom (v "x") (c (u "hasAuthor")) (v "a");
        Bgp.atom (v "x") (c typ) (c (u "Publication"));
      ]
  in
  Alcotest.(check int) "2 × 4" 8 (Reformulation.Reformulate.count engine q);
  (* With [a] existential, the hasAuthor/writtenBy pair of combinations is
     isomorphic to the writtenBy/hasAuthor one and deduplicates. *)
  let q' =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "hasAuthor")) (v "a");
        Bgp.atom (v "x") (c typ) (c (u "Publication"));
      ]
  in
  Alcotest.(check int) "one isomorphic pair merged" 7
    (Reformulation.Reformulate.count engine q')

let test_shared_class_variable () =
  (* When the same variable sits in two class positions, instantiation
     couples the atoms: NOT a plain product. *)
  let q =
    Bgp.make [ v "x"; v "y"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "y") (c typ) (v "k");
      ]
  in
  let n = Reformulation.Reformulate.count engine q in
  let single =
    Reformulation.Reformulate.count engine
      (Bgp.make [ v "x"; v "k" ] [ Bgp.atom (v "x") (c typ) (v "k") ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "coupled (%d) < product (%d)" n (single * single))
    true
    (n < single * single)

(* ---- qcheck: factorized = naive, reformulation = saturation ---- *)

let gen_class = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "C%d" i)) (int_bound 4))
let gen_prop = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 3))
let gen_node = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 6))

let gen_constr =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_class gen_class;
        map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
        map2 (fun p cl -> Rdf.Schema.Domain (p, cl)) gen_prop gen_class;
        map2 (fun p cl -> Rdf.Schema.Range (p, cl)) gen_prop gen_class;
      ])

let gen_schema =
  QCheck2.Gen.(map Rdf.Schema.of_constraints (list_size (int_bound 5) gen_constr))

let gen_fact =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun s cl -> tr s typ cl) gen_node gen_class;
        (let* s = gen_node and* p = gen_prop and* o = gen_node in
         return (tr s p o));
      ])

let gen_graph =
  QCheck2.Gen.(
    map2 (fun s facts -> Rdf.Graph.make s facts) gen_schema
      (list_size (int_bound 15) gen_fact))

(* Random small queries over the same vocabulary; connected by sharing the
   variable x across atoms. *)
let gen_query =
  QCheck2.Gen.(
    let* n = int_range 1 3 in
    let gen_atom i =
      let x = v "x" in
      let oi = v (Printf.sprintf "o%d" i) in
      oneof
        [
          (* type atom with constant class *)
          map (fun cl -> Bgp.atom x (c typ) (c cl)) gen_class;
          (* type atom with variable class *)
          return (Bgp.atom x (c typ) oi);
          (* property atom, constant property *)
          map2 (fun p o -> Bgp.atom x (c p) o) gen_prop
            (oneof [ return oi; map c gen_node ]);
          (* property atom with property variable *)
          map (fun o -> Bgp.atom x (v (Printf.sprintf "pp%d" i)) o)
            (oneof [ return oi; map c gen_node ]);
        ]
    in
    let* atoms =
      flatten_l (List.init n gen_atom)
    in
    return (Bgp.make [ v "x" ] atoms))

(* UCQ equivalence, disjunct-wise (Sagiv-Yannakakis): U1 ⊑ U2 iff every
   disjunct of U1 is contained in some disjunct of U2.  The factorized and
   naive engines may differ syntactically on redundant members (merged-atom
   derivations reachable in different orders), but must be equivalent. *)
let ucq_equivalent u1 u2 =
  let le a b =
    List.for_all
      (fun d1 ->
        List.exists (fun d2 -> Containment.contained d1 d2) (Ucq.disjuncts b))
      (Ucq.disjuncts a)
  in
  le u1 u2 && le u2 u1

let prop_factorized_equals_naive =
  QCheck2.Test.make ~count:150
    ~name:"factorized ≡ naive reformulation (UCQ equivalence)"
    QCheck2.Gen.(pair gen_schema gen_query)
    (fun (schema, q) ->
      let t = Reformulation.Reformulate.create schema in
      ucq_equivalent
        (Reformulation.Reformulate.reformulate t q)
        (Reformulation.Reformulate.reformulate_naive schema q))

let prop_soundness_completeness =
  QCheck2.Test.make ~count:300
    ~name:"q_ref(db) = q(db∞)  (soundness & completeness)"
    QCheck2.Gen.(pair gen_graph gen_query)
    (fun (g, q) ->
      Reformulation.Reformulate.answer_via_reformulation g q
      = Bgp.answer g q)

let prop_original_query_member =
  QCheck2.Test.make ~count:150 ~name:"reformulation contains the original CQ"
    QCheck2.Gen.(pair gen_schema gen_query)
    (fun (schema, q) ->
      let t = Reformulation.Reformulate.create schema in
      List.exists (Bgp.equal q)
        (Ucq.disjuncts (Reformulation.Reformulate.reformulate t q)))

let prop_reformulation_monotone_schema =
  QCheck2.Test.make ~count:150
    ~name:"adding constraints never shrinks the reformulation"
    QCheck2.Gen.(triple gen_schema gen_constr gen_query)
    (fun (schema, extra, q) ->
      let t1 = Reformulation.Reformulate.create schema in
      let t2 = Reformulation.Reformulate.create (Rdf.Schema.add extra schema) in
      Reformulation.Reformulate.count t1 q
      <= Reformulation.Reformulate.count t2 q)

let prop_product_bound_is_upper_bound =
  QCheck2.Test.make ~count:150
    ~name:"count_product_bound ≥ exact reformulation count"
    QCheck2.Gen.(pair gen_schema gen_query)
    (fun (schema, q) ->
      let t = Reformulation.Reformulate.create schema in
      Reformulation.Reformulate.count_product_bound t q
      >= Reformulation.Reformulate.count t q)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_product_bound_is_upper_bound;
      prop_factorized_equals_naive;
      prop_soundness_completeness;
      prop_original_query_member;
      prop_reformulation_monotone_schema;
    ]

let () =
  Alcotest.run "reformulation"
    [
      ( "example4",
        [
          Alcotest.test_case "count = 11" `Quick test_example4_count;
          Alcotest.test_case "members" `Quick test_example4_members;
          Alcotest.test_case "answers" `Quick test_example4_answers;
        ] );
      ( "rules",
        [
          Alcotest.test_case "subproperty" `Quick test_subproperty_rule;
          Alcotest.test_case "subclass/domain/range" `Quick test_subclass_domain_range_rules;
          Alcotest.test_case "range" `Quick test_range_rule;
          Alcotest.test_case "no schema" `Quick test_no_schema_no_growth;
          Alcotest.test_case "property variable" `Quick test_property_variable_instantiation;
          Alcotest.test_case "unsupported atom" `Quick test_unsupported_atom;
          Alcotest.test_case "atom count" `Quick test_atom_count;
          Alcotest.test_case "cache consistency" `Quick test_cache_consistency;
          Alcotest.test_case "construction cap" `Quick test_construction_cap;
          Alcotest.test_case "product bound vs exact" `Quick test_product_bound_vs_exact;
        ] );
      ( "joint",
        [
          Alcotest.test_case "product structure" `Quick test_joint_reformulation_product;
          Alcotest.test_case "shared class variable" `Quick test_shared_class_variable;
        ] );
      ("properties", qcheck_cases);
    ]
