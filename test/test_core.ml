(* Tests for the paper's contribution: the Section 4.1 cost model, the
   cover space, ECov, GCov (Algorithm 1) and end-to-end answering under
   every strategy. *)

open Query

(* Every plan compiled while this suite runs goes through the static
   plan verifier: a schema or cover violation fails the tests. *)
let () = Analysis.Plan_verify.set_enabled true

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "GradStudent", u "Student");
      Rdf.Schema.Subclass (u "Student", u "Person");
      Rdf.Schema.Subproperty (u "worksFor", u "memberOf");
      Rdf.Schema.Domain (u "memberOf", u "Person");
      Rdf.Schema.Range (u "memberOf", u "Org");
      Rdf.Schema.Subproperty (u "mastersFrom", u "degreeFrom");
      Rdf.Schema.Subproperty (u "doctorFrom", u "degreeFrom");
    ]

let graph =
  let facts =
    List.concat
      (List.init 120 (fun i ->
           let p = u (Printf.sprintf "person%d" i) in
           [
             tr p typ (u (if i mod 3 = 0 then "GradStudent" else "Student"));
             tr p (u "worksFor") (u (Printf.sprintf "org%d" (i mod 4)));
             tr p
               (u (if i mod 2 = 0 then "mastersFrom" else "doctorFrom"))
               (u (Printf.sprintf "univ%d" (i mod 3)));
           ]))
  in
  Rdf.Graph.make schema facts

let store () = Store.Encoded_store.of_graph graph

let q3 =
  (* a three-atom query in the spirit of the paper's q1 *)
  Bgp.make [ v "x"; v "y" ]
    [
      Bgp.atom (v "x") (c typ) (v "y");
      Bgp.atom (v "x") (c (u "degreeFrom")) (c (u "univ1"));
      Bgp.atom (v "x") (c (u "memberOf")) (c (u "org2"));
    ]

let make_objective ?(oracle = Rqa.Answering.Paper_model) () =
  let sys = Rqa.Answering.make ~cost_oracle:oracle (store ()) in
  (sys, Rqa.Answering.objective sys q3)

(* ---- Cover_space ---- *)

let test_minimal_cover_counts () =
  Alcotest.(check int) "n=1" 1 (Rqa.Cover_space.minimal_cover_counts 1);
  Alcotest.(check int) "n=4" 49 (Rqa.Cover_space.minimal_cover_counts 4);
  Alcotest.(check int) "n=5" 462 (Rqa.Cover_space.minimal_cover_counts 5);
  Alcotest.(check int) "n=6" 6424 (Rqa.Cover_space.minimal_cover_counts 6)

let test_connected_fragments () =
  let frags = Rqa.Cover_space.connected_fragments q3 in
  (* all 7 non-empty subsets of 3 atoms sharing variable x are connected *)
  Alcotest.(check int) "7 connected fragments" 7 (List.length frags)

let test_enumerate_q3 () =
  let { Rqa.Cover_space.covers; complete } = Rqa.Cover_space.enumerate q3 in
  Alcotest.(check bool) "complete" true complete;
  (* Table 2 lists exactly 8 triple groupings for the 3-atom q1. *)
  Alcotest.(check int) "8 covers" 8 (List.length covers);
  List.iter
    (fun cover ->
      match Jucq.check_cover q3 cover with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("invalid cover enumerated: " ^ m))
    covers

let test_enumerate_respects_budget () =
  let q =
    Bgp.make [ v "x0" ]
      (List.init 8 (fun i ->
           Bgp.atom
             (v (Printf.sprintf "x%d" i))
             (c (u "p"))
             (v (Printf.sprintf "x%d" (i + 1)))))
  in
  let { Rqa.Cover_space.covers; complete } =
    Rqa.Cover_space.enumerate
      ~budget:{ Rqa.Cover_space.max_covers = 50; max_millis = 10_000.0 }
      q
  in
  Alcotest.(check bool) "truncated" false complete;
  Alcotest.(check bool) "within budget" true (List.length covers <= 50)

let test_enumerated_covers_minimal () =
  let { Rqa.Cover_space.covers; _ } = Rqa.Cover_space.enumerate q3 in
  List.iter
    (fun cover ->
      List.iteri
        (fun i f ->
          let others = List.filteri (fun j _ -> j <> i) cover in
          let covered_elsewhere =
            List.for_all
              (fun a -> List.exists (fun g -> List.mem a g) others)
              f
          in
          if covered_elsewhere then
            Alcotest.fail
              ("non-minimal cover enumerated: " ^ Jucq.cover_to_string cover))
        cover)
    covers

let test_enumeration_matches_bruteforce () =
  (* Independent brute-force reference: enumerate ALL antichains of
     connected fragments (as bitmasks) that cover the atom set and are
     minimal + pairwise joinable, and compare against Cover_space. *)
  let queries =
    [
      q3;
      Bgp.make [ v "x" ]
        [
          Bgp.atom (v "x") (c (u "p")) (v "y");
          Bgp.atom (v "y") (c (u "q")) (v "z");
          Bgp.atom (v "z") (c (u "r")) (v "w");
          Bgp.atom (v "x") (c typ) (c (u "C"));
        ];
    ]
  in
  List.iter
    (fun q ->
      let n = List.length q.Bgp.body in
      let atoms = Array.of_list q.Bgp.body in
      let connected mask =
        let members =
          List.filter (fun i -> mask land (1 lsl i) <> 0)
            (List.init n Fun.id)
        in
        Bgp.is_connected (List.map (fun i -> atoms.(i)) members)
      in
      let fragments =
        List.filter (fun m -> m <> 0 && connected m)
          (List.init (1 lsl n) Fun.id)
      in
      (* all subsets of fragments, as covers *)
      let rec subsets = function
        | [] -> [ [] ]
        | f :: rest ->
            let r = subsets rest in
            r @ List.map (fun s -> f :: s) r
      in
      let full = (1 lsl n) - 1 in
      let valid cover =
        cover <> []
        && List.fold_left ( lor ) 0 cover = full
        && (* no inclusion *)
        List.for_all
          (fun f ->
            List.for_all (fun g -> f == g || f land g <> f && g land f <> g)
              cover)
          cover
        && (* minimality: each fragment has a private atom *)
        List.for_all
          (fun f ->
            let others =
              List.fold_left (fun acc g -> if g == f then acc else acc lor g)
                0 cover
            in
            f land lnot others <> 0)
          cover
        && (* pairwise joinability via shared variables *)
        (List.length cover = 1
        || List.for_all
             (fun f ->
               List.exists
                 (fun g ->
                   f != g
                   && Bgp.fragment_connected
                        (List.filteri (fun i _ -> f land (1 lsl i) <> 0)
                           (Array.to_list atoms))
                        (List.filteri (fun i _ -> g land (1 lsl i) <> 0)
                           (Array.to_list atoms)))
                 cover)
             cover)
      in
      let brute = List.length (List.filter valid (subsets fragments)) in
      let { Rqa.Cover_space.covers; _ } = Rqa.Cover_space.enumerate q in
      Alcotest.(check int)
        (Printf.sprintf "brute force (%d atoms)" n)
        brute (List.length covers))
    queries

(* ---- Cost model ---- *)

let test_cost_positive_and_ordering () =
  let sys = Rqa.Answering.make (store ()) in
  let cm = Rqa.Answering.cost_model sys in
  let reformulate cq =
    Reformulation.Reformulate.reformulate (Rqa.Answering.reformulator sys) cq
  in
  let cost cover = Rqa.Cost_model.jucq_cost cm (Jucq.make ~reformulate q3 cover) in
  let cu = cost (Jucq.ucq_cover q3) in
  let cs = cost (Jucq.scq_cover q3) in
  Alcotest.(check bool) "positive" true (cu > 0.0 && cs > 0.0)

let test_cost_monotone_in_volume () =
  let sys = Rqa.Answering.make (store ()) in
  let cm = Rqa.Answering.cost_model sys in
  let reformulate cq =
    Reformulation.Reformulate.reformulate (Rqa.Answering.reformulator sys) cq
  in
  (* A query with one extra unselective atom must not get cheaper. *)
  let q_small =
    Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "mastersFrom")) (c (u "univ1")) ]
  in
  let q_big =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "mastersFrom")) (c (u "univ1"));
        Bgp.atom (v "x") (c typ) (v "k");
      ]
  in
  let cost q = Rqa.Cost_model.jucq_cost cm (Jucq.make ~reformulate q (Jucq.ucq_cover q)) in
  Alcotest.(check bool) "monotone" true (cost q_small <= cost q_big)

let test_unique_cost_regimes () =
  let sys = Rqa.Answering.make (store ()) in
  let cm = Rqa.Answering.cost_model sys in
  let small = Rqa.Cost_model.unique_cost cm 1000.0 in
  let large = Rqa.Cost_model.unique_cost cm 5_000_000.0 in
  Alcotest.(check bool) "zero" true (Rqa.Cost_model.unique_cost cm 0.0 = 0.0);
  Alcotest.(check bool) "increasing" true (small < large);
  (* Beyond memory the cost picks up the log factor. *)
  let per_row_small = small /. 1000.0 in
  let per_row_large = large /. 5_000_000.0 in
  Alcotest.(check bool) "disk regime costlier per row" true
    (per_row_large > per_row_small)

let test_calibration_runs () =
  let ex = Engine.Executor.create (store ()) in
  let co = Rqa.Cost_model.calibrate ex in
  Alcotest.(check bool) "positive coefficients" true
    (co.Rqa.Cost_model.c_t > 0.0 && co.Rqa.Cost_model.c_j > 0.0
     && co.Rqa.Cost_model.c_l > 0.0)

(* ---- Objective ---- *)

let test_objective_memoizes () =
  let _, obj = make_objective () in
  let cover = Jucq.scq_cover q3 in
  let c1 = Rqa.Objective.cover_cost obj cover in
  let n1 = Rqa.Objective.explored obj in
  let c2 = Rqa.Objective.cover_cost obj cover in
  Alcotest.(check (float 0.0)) "same cost" c1 c2;
  Alcotest.(check int) "explored once" n1 (Rqa.Objective.explored obj)

(* ---- ECov ---- *)

let test_ecov_explores_all () =
  let _, obj = make_objective () in
  let r = Rqa.Ecov.search obj in
  Alcotest.(check bool) "complete" true r.Rqa.Ecov.complete;
  Alcotest.(check int) "explored all 8" 8 r.Rqa.Ecov.explored;
  match Jucq.check_cover q3 r.Rqa.Ecov.cover with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("invalid best cover: " ^ m)

let test_ecov_optimal () =
  let _, obj = make_objective () in
  let r = Rqa.Ecov.search obj in
  let { Rqa.Cover_space.covers; _ } = Rqa.Cover_space.enumerate q3 in
  List.iter
    (fun cover ->
      Alcotest.(check bool)
        ("ECov ≤ " ^ Jucq.cover_to_string cover)
        true
        (r.Rqa.Ecov.cost <= Rqa.Objective.cover_cost obj cover))
    covers

(* ---- GCov ---- *)

let test_gcov_valid_and_bounded () =
  let _, obj = make_objective () in
  let r = Rqa.Gcov.search obj in
  (match Jucq.check_cover q3 r.Rqa.Gcov.cover with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("invalid GCov cover: " ^ m));
  (* GCov starts at the SCQ cover and only improves on it. *)
  Alcotest.(check bool) "≤ SCQ" true
    (r.Rqa.Gcov.cost <= Rqa.Objective.cover_cost obj (Jucq.scq_cover q3));
  Alcotest.(check bool) "explored ≤ ECov space" true (r.Rqa.Gcov.explored <= 8)

let test_gcov_close_to_ecov () =
  let _, obj = make_objective () in
  let e = Rqa.Ecov.search obj in
  let _, obj2 = make_objective () in
  let g = Rqa.Gcov.search obj2 in
  (* The paper reports GCov matching ECov choices; on this small query the
     greedy must be within a small factor of the optimum. *)
  Alcotest.(check bool)
    (Printf.sprintf "gcov %.3f within 2x of ecov %.3f" g.Rqa.Gcov.cost
       e.Rqa.Ecov.cost)
    true
    (g.Rqa.Gcov.cost <= 2.0 *. e.Rqa.Ecov.cost +. 1e-9)

let test_gcov_stop_conditions () =
  let _, obj = make_objective () in
  let scq_cost = Rqa.Objective.cover_cost obj (Jucq.scq_cover q3) in
  (* Improvement_ratio 1.0 stops as soon as the initial cost is matched. *)
  let r1 = Rqa.Gcov.search ~stop:(Rqa.Gcov.Improvement_ratio 1.0) obj in
  Alcotest.(check bool) "ratio stop valid" true
    (Result.is_ok (Jucq.check_cover q3 r1.Rqa.Gcov.cover));
  Alcotest.(check bool) "ratio stop bounded" true (r1.Rqa.Gcov.cost <= scq_cost);
  (* A zero timeout returns immediately with the best-so-far. *)
  let _, obj2 = make_objective () in
  let r2 = Rqa.Gcov.search ~stop:(Rqa.Gcov.Timeout_ms 0.0) obj2 in
  Alcotest.(check bool) "timeout stop valid" true
    (Result.is_ok (Jucq.check_cover q3 r2.Rqa.Gcov.cover))

let test_gcov_fifo_ordering () =
  let _, obj = make_objective () in
  let r = Rqa.Gcov.search ~ordering:Rqa.Gcov.Fifo obj in
  Alcotest.(check bool) "fifo cover valid" true
    (Result.is_ok (Jucq.check_cover q3 r.Rqa.Gcov.cover));
  Alcotest.(check bool) "fifo cost is the real cost" true
    (r.Rqa.Gcov.cost > 0.0 && r.Rqa.Gcov.cost < infinity)

let test_gcov_single_atom () =
  let sys = Rqa.Answering.make (store ()) in
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "Person")) ] in
  let r = Rqa.Gcov.search (Rqa.Answering.objective sys q) in
  Alcotest.(check bool) "trivial cover" true (r.Rqa.Gcov.cover = [ [ 0 ] ])

(* ---- Answering: all strategies agree with the specification ---- *)

let all_strategies =
  [
    Rqa.Answering.Saturation;
    Rqa.Answering.Ucq;
    Rqa.Answering.Scq;
    Rqa.Answering.Ecov Rqa.Cover_space.default_budget;
    Rqa.Answering.Gcov;
  ]

let test_strategies_agree () =
  let sys = Rqa.Answering.make (store ()) in
  let expected = Bgp.answer graph q3 in
  Alcotest.(check bool) "nonempty" true (expected <> []);
  List.iter
    (fun strat ->
      Alcotest.(check bool)
        (Rqa.Answering.strategy_name strat ^ " = specification")
        true
        (Rqa.Answering.answer_terms sys strat q3 = expected))
    all_strategies

let test_strategies_agree_engine_oracle () =
  let sys = Rqa.Answering.make ~cost_oracle:Rqa.Answering.Engine_model (store ()) in
  let expected = Bgp.answer graph q3 in
  List.iter
    (fun strat ->
      Alcotest.(check bool)
        (Rqa.Answering.strategy_name strat ^ " (engine oracle)")
        true
        (Rqa.Answering.answer_terms sys strat q3 = expected))
    [ Rqa.Answering.Ecov Rqa.Cover_space.default_budget; Rqa.Answering.Gcov ]

let test_report_metadata () =
  let sys = Rqa.Answering.make (store ()) in
  let rep = Rqa.Answering.answer sys Rqa.Answering.Gcov q3 in
  Alcotest.(check bool) "cover present" true (rep.Rqa.Answering.cover <> None);
  Alcotest.(check bool) "explored > 0" true (rep.Rqa.Answering.covers_explored > 0);
  Alcotest.(check bool) "terms > 0" true (rep.Rqa.Answering.union_terms > 0);
  let rep_sat = Rqa.Answering.answer sys Rqa.Answering.Saturation q3 in
  Alcotest.(check bool) "saturation has no cover" true
    (rep_sat.Rqa.Answering.cover = None)

let test_failure_surfaces () =
  let profile =
    { Engine.Profile.postgres_like with Engine.Profile.max_union_terms = 3 }
  in
  let sys = Rqa.Answering.make ~profile (store ()) in
  Alcotest.(check bool) "UCQ refused" true
    (try ignore (Rqa.Answering.answer sys Rqa.Answering.Ucq q3); false
     with Engine.Profile.Engine_failure _ -> true)

(* ---- qcheck: strategies = specification on random data ---- *)

let gen_node = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 6))
let gen_class = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "C%d" i)) (int_bound 3))
let gen_prop = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 2))

let gen_schema =
  QCheck2.Gen.(
    map Rdf.Schema.of_constraints
      (list_size (int_bound 5)
         (oneof
            [
              map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_class gen_class;
              map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
              map2 (fun p cl -> Rdf.Schema.Domain (p, cl)) gen_prop gen_class;
              map2 (fun p cl -> Rdf.Schema.Range (p, cl)) gen_prop gen_class;
            ])))

let gen_facts =
  QCheck2.Gen.(
    list_size (int_bound 25)
      (oneof
         [
           map2 (fun s cl -> tr s typ cl) gen_node gen_class;
           (let* s = gen_node and* p = gen_prop and* o = gen_node in
            return (tr s p o));
         ]))

let gen_query =
  QCheck2.Gen.(
    let* n = int_range 2 3 in
    let* atoms =
      flatten_l
        (List.init n (fun i ->
             let x = v "x" in
             let oi = v (Printf.sprintf "o%d" i) in
             oneof
               [
                 map (fun cl -> Bgp.atom x (c typ) (c cl)) gen_class;
                 return (Bgp.atom x (c typ) oi);
                 map2 (fun p o -> Bgp.atom x (c p) o) gen_prop
                   (oneof [ return oi; map c gen_node ]);
               ]))
    in
    return (Bgp.make [ v "x" ] atoms))

let prop_all_strategies_agree =
  QCheck2.Test.make ~count:120
    ~name:"all strategies compute q(db∞) on random inputs"
    QCheck2.Gen.(triple gen_schema gen_facts gen_query)
    (fun (schema, facts, q) ->
      let g = Rdf.Graph.make schema facts in
      let sys = Rqa.Answering.of_graph g in
      let expected = Bgp.answer g q in
      List.for_all
        (fun strat -> Rqa.Answering.answer_terms sys strat q = expected)
        all_strategies)

let prop_gcov_never_worse_than_scq =
  QCheck2.Test.make ~count:80 ~name:"GCov estimated cost ≤ SCQ estimated cost"
    QCheck2.Gen.(triple gen_schema gen_facts gen_query)
    (fun (schema, facts, q) ->
      let g = Rdf.Graph.make schema facts in
      let sys = Rqa.Answering.of_graph g in
      let obj = Rqa.Answering.objective sys q in
      let r = Rqa.Gcov.search obj in
      r.Rqa.Gcov.cost
      <= Rqa.Objective.cover_cost obj (Jucq.scq_cover q) +. 1e-9)

let prop_gcov_deterministic =
  QCheck2.Test.make ~count:60 ~name:"GCov is deterministic"
    QCheck2.Gen.(triple gen_schema gen_facts gen_query)
    (fun (schema, facts, q) ->
      let g = Rdf.Graph.make schema facts in
      let sys = Rqa.Answering.of_graph g in
      let r1 = Rqa.Gcov.search (Rqa.Answering.objective sys q) in
      let r2 = Rqa.Gcov.search (Rqa.Answering.objective sys q) in
      r1.Rqa.Gcov.cover = r2.Rqa.Gcov.cover
      && r1.Rqa.Gcov.cost = r2.Rqa.Gcov.cost)

let prop_cost_model_sane =
  QCheck2.Test.make ~count:80
    ~name:"cost model is finite and at least the connection overhead"
    QCheck2.Gen.(triple gen_schema gen_facts gen_query)
    (fun (schema, facts, q) ->
      let g = Rdf.Graph.make schema facts in
      let sys = Rqa.Answering.of_graph g in
      let cm = Rqa.Answering.cost_model sys in
      let reformulate cq =
        Reformulation.Reformulate.reformulate (Rqa.Answering.reformulator sys)
          cq
      in
      let cdb = (Rqa.Cost_model.coefficients cm).Rqa.Cost_model.c_db in
      List.for_all
        (fun cover ->
          match Jucq.check_cover q cover with
          | Error _ -> true
          | Ok () ->
              let cost =
                Rqa.Cost_model.jucq_cost cm (Jucq.make ~reformulate q cover)
              in
              Float.is_finite cost && cost >= cdb)
        [ Jucq.ucq_cover q; Jucq.scq_cover q ])

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_all_strategies_agree;
      prop_gcov_never_worse_than_scq;
      prop_gcov_deterministic;
      prop_cost_model_sane;
    ]

let () =
  Alcotest.run "core"
    [
      ( "cover_space",
        [
          Alcotest.test_case "minimal cover counts" `Quick test_minimal_cover_counts;
          Alcotest.test_case "connected fragments" `Quick test_connected_fragments;
          Alcotest.test_case "q1-style enumeration (Table 2)" `Quick test_enumerate_q3;
          Alcotest.test_case "budget" `Quick test_enumerate_respects_budget;
          Alcotest.test_case "minimality" `Quick test_enumerated_covers_minimal;
          Alcotest.test_case "matches brute force" `Quick test_enumeration_matches_bruteforce;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "positive/order" `Quick test_cost_positive_and_ordering;
          Alcotest.test_case "volume monotonicity" `Quick test_cost_monotone_in_volume;
          Alcotest.test_case "dedup regimes" `Quick test_unique_cost_regimes;
          Alcotest.test_case "calibration" `Quick test_calibration_runs;
        ] );
      ( "objective",
        [ Alcotest.test_case "memoization" `Quick test_objective_memoizes ] );
      ( "ecov",
        [
          Alcotest.test_case "explores all covers" `Quick test_ecov_explores_all;
          Alcotest.test_case "optimal in space" `Quick test_ecov_optimal;
        ] );
      ( "gcov",
        [
          Alcotest.test_case "valid and bounded" `Quick test_gcov_valid_and_bounded;
          Alcotest.test_case "close to ECov" `Quick test_gcov_close_to_ecov;
          Alcotest.test_case "single atom" `Quick test_gcov_single_atom;
          Alcotest.test_case "stop conditions" `Quick test_gcov_stop_conditions;
          Alcotest.test_case "fifo ordering" `Quick test_gcov_fifo_ordering;
        ] );
      ( "answering",
        [
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
          Alcotest.test_case "engine oracle agrees" `Quick test_strategies_agree_engine_oracle;
          Alcotest.test_case "report metadata" `Quick test_report_metadata;
          Alcotest.test_case "failures surface" `Quick test_failure_surfaces;
        ] );
      ("properties", qcheck_cases);
    ]
