(* Tests for the materialized-view tier (Cache.Views) and workload-driven
   selection (Rqa.View_select): serving must be observably invisible —
   decoded answers, per-statement operation totals and failure reasons
   bit-identical with views on and off, across engine profiles and jobs
   settings — and maintenance must be incremental: a data change
   re-records only the views whose property footprint it touches, and the
   incrementally maintained contents must match a from-scratch rebuild. *)

open Query
module Es = Store.Encoded_store

(* Every plan compiled while this suite runs goes through the static
   verifier, which also arms the RF002/RF003 serve-time tripwires. *)
let () = Analysis.Plan_verify.set_enabled true

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "GradStudent", u "Student");
      Rdf.Schema.Subclass (u "Student", u "Person");
      Rdf.Schema.Subproperty (u "worksFor", u "memberOf");
      Rdf.Schema.Domain (u "memberOf", u "Person");
      Rdf.Schema.Range (u "memberOf", u "Org");
      Rdf.Schema.Subproperty (u "mastersFrom", u "degreeFrom");
      Rdf.Schema.Subproperty (u "doctorFrom", u "degreeFrom");
    ]

(* Every schema term also appears in a fact, so each property constant a
   reformulation mentions is in the dictionary and view footprints stay
   [Props] (an unencodable constant widens a footprint to [Universal],
   which would defeat the incrementality this suite asserts). *)
let base_facts =
  tr (u "p0") (u "degreeFrom") (u "univ1")
  :: tr (u "p0") (u "memberOf") (u "org0")
  :: tr (u "p0") typ (u "Person")
  :: tr (u "p1") typ (u "Student")
  :: List.concat
       (List.init 60 (fun i ->
            let p = u (Printf.sprintf "person%d" i) in
            [
              tr p typ (u (if i mod 3 = 0 then "GradStudent" else "Student"));
              tr p (u "worksFor") (u (Printf.sprintf "org%d" (i mod 4)));
              tr p
                (u (if i mod 2 = 0 then "mastersFrom" else "doctorFrom"))
                (u (Printf.sprintf "univ%d" (i mod 3)));
            ]))

let graph () = Rdf.Graph.make schema base_facts
let fresh_store () = Es.of_graph (graph ())

(* A workload whose covers share fragments across queries — the single
   atoms recur inside the join queries — plus an α-renamed duplicate, so
   serving must work across variable renamings (same canonical key, same
   physical tier-1 reformulation, different head variable names). *)
let q_type = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ]

let q_degree =
  Bgp.make [ v "x" ]
    [ Bgp.atom (v "x") (c (u "degreeFrom")) (c (u "univ1")) ]

let q_member =
  Bgp.make [ v "x"; v "o" ] [ Bgp.atom (v "x") (c (u "memberOf")) (v "o") ]

let q_join =
  Bgp.make [ v "x"; v "y" ]
    [
      Bgp.atom (v "x") (c typ) (v "y");
      Bgp.atom (v "x") (c (u "degreeFrom")) (c (u "univ1"));
      Bgp.atom (v "x") (c (u "memberOf")) (c (u "org2"));
    ]

let q_member_renamed =
  Bgp.make [ v "s"; v "w" ] [ Bgp.atom (v "s") (c (u "memberOf")) (v "w") ]

let workload =
  [
    ("q_type", q_type);
    ("q_degree", q_degree);
    ("q_member", q_member);
    ("q_join", q_join);
    ("q_member_renamed", q_member_renamed);
  ]

let budget = 64 * 1024 * 1024

(* Two systems over ONE store and ONE cache: tier-1 physical identity
   (the serve-time soundness premise) holds across them, and the answer
   tier is off so every measured answer is a real evaluation. *)
let fresh_pair ?(profile = Engine.Profile.postgres_like) () =
  let store = fresh_store () in
  let cache = Cache.create store in
  let sys_base = Rqa.Answering.make ~profile ~cache store in
  let sys_views = Rqa.Answering.make ~profile ~cache store in
  Cache.set_mode cache Cache.Answers_off;
  (store, sys_base, sys_views)

(* Everything views could observably change about one statement: decoded
   rows, the per-statement operation total, or the failure reason. *)
let outcome sys strat q =
  match Rqa.Answering.answer sys strat q with
  | r ->
      let ex = Rqa.Answering.engine sys in
      Ok
        ( List.map
            (List.map Rdf.Term.to_string)
            (Engine.Executor.decode ex r.Rqa.Answering.answers),
          Engine.Executor.last_operations ex )
  | exception Engine.Profile.Engine_failure { reason; _ } ->
      Error (Engine.Profile.failure_to_string reason)

let strategies = Rqa.View_select.default_strategies

let check_agreement ~msg sys_base sys_views =
  List.iter
    (fun strat ->
      List.iter
        (fun (name, q) ->
          let b = outcome sys_base strat q and w = outcome sys_views strat q in
          if b <> w then
            Alcotest.fail
              (Printf.sprintf "%s: %s/%s diverges with views on" msg name
                 (Rqa.Answering.strategy_name strat)))
        workload)
    strategies

(* ---- bit-identity across profiles × jobs ---- *)

let test_differential_profiles_jobs () =
  List.iter
    (fun profile ->
      List.iter
        (fun jobs ->
          Par.set_jobs jobs;
          let _store, sys_base, sys_views = fresh_pair ~profile () in
          let sel =
            Rqa.View_select.select_and_install ~budget sys_views workload
          in
          Alcotest.(check bool)
            "selection is non-empty" true
            (sel.Rqa.View_select.selected <> []);
          let vt = Option.get (Rqa.Answering.views sys_views) in
          check_agreement
            ~msg:
              (Printf.sprintf "%s/jobs=%d" profile.Engine.Profile.name jobs)
            sys_base sys_views;
          Alcotest.(check bool)
            "views actually served" true
            (Cache.Views.hits vt > 0);
          (* under the permissive profile nothing is capacity-refused, the
             budget holds every candidate, and selection mined exactly the
             strategies measured — so every fragment evaluation must hit,
             including the α-renamed duplicate's *)
          if profile == Engine.Profile.postgres_like then
            Alcotest.(check int) "no misses" 0 (Cache.Views.misses vt))
        [ 1; 4 ])
    [
      Engine.Profile.postgres_like;
      Engine.Profile.db2_like;
      Engine.Profile.mysql_like;
    ];
  Par.set_jobs 1

(* ---- selection mechanics ---- *)

let test_budget_zero_selects_nothing () =
  let _store, sys_base, sys_views = fresh_pair () in
  let sel =
    Rqa.View_select.select_and_install ~budget:0 sys_views workload
  in
  Alcotest.(check int) "nothing selected" 0
    (List.length sel.Rqa.View_select.selected);
  Alcotest.(check bool)
    "candidates still scored" true
    (sel.Rqa.View_select.candidates <> []);
  (* an empty view tier must still answer identically (all misses) *)
  check_agreement ~msg:"budget=0" sys_base sys_views

let test_selection_deterministic () =
  let select () =
    let _store, _sys_base, sys_views = fresh_pair () in
    let sel = Rqa.View_select.select ~budget sys_views workload in
    List.map
      (fun (cand : Rqa.View_select.candidate) ->
        (cand.Rqa.View_select.key, cand.Rqa.View_select.uses))
      sel.Rqa.View_select.candidates
  in
  Alcotest.(check (list (pair string int)))
    "same candidates in the same order on a rebuilt store" (select ())
    (select ())

(* ---- incremental maintenance ---- *)

(* Manual installs pin down exactly which footprints exist:
   [q_degree]'s reformulation mentions only degreeFrom/mastersFrom/
   doctorFrom, [q_member]'s only memberOf/worksFor — disjoint, so each
   mutation below must re-record one and merely restamp the other. *)
let test_incremental_footprint () =
  Par.set_jobs 1;
  let store, sys_base, sys_views = fresh_pair () in
  let vt = Rqa.Answering.enable_views sys_views in
  Cache.Views.install vt q_degree;
  Cache.Views.install vt q_member;
  let remats () =
    List.map
      (fun (i : Cache.Views.info) -> i.Cache.Views.rematerializations)
      (Cache.Views.definitions vt)
  in
  Alcotest.(check (list int)) "freshly installed" [ 0; 0 ] (remats ());
  (* a memberOf-footprint fact: only the member view re-records *)
  Es.insert store (tr (u "personNew") (u "worksFor") (u "org1"));
  Cache.Views.refresh vt;
  Alcotest.(check (list int)) "worksFor insert" [ 0; 1 ] (remats ());
  (* a degreeFrom-footprint fact: only the degree view re-records *)
  Es.insert store (tr (u "personNew") (u "mastersFrom") (u "univ1"));
  Cache.Views.refresh vt;
  Alcotest.(check (list int)) "mastersFrom insert" [ 1; 1 ] (remats ());
  (* a property no reformulation mentions: both merely restamp *)
  Es.insert store (tr (u "personNew") (u "unrelatedProp") (u "z"));
  Cache.Views.refresh vt;
  Alcotest.(check (list int)) "unrelated insert" [ 1; 1 ] (remats ());
  (* a delete compacts the store (swap-remove); only the touched
     footprint re-records, and serving stays bit-identical *)
  Alcotest.(check bool) "delete effective" true
    (Es.delete store (tr (u "person0") (u "mastersFrom") (u "univ0")));
  Cache.Views.refresh vt;
  Alcotest.(check (list int)) "mastersFrom delete" [ 2; 1 ] (remats ());
  check_agreement ~msg:"after interleaved inserts/deletes" sys_base sys_views;
  (* the incrementally maintained contents must equal a from-scratch
     rebuild over the mutated store: same keys, same rows, same bytes *)
  let cache2 = Cache.create store in
  let sys_cold =
    Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~cache:cache2
      store
  in
  Cache.set_mode cache2 Cache.Answers_off;
  let vc = Rqa.Answering.enable_views sys_cold in
  Cache.Views.install vc q_degree;
  Cache.Views.install vc q_member;
  let shape vt' =
    List.map
      (fun (i : Cache.Views.info) ->
        (i.Cache.Views.key, i.Cache.Views.rows, i.Cache.Views.bytes))
      (Cache.Views.definitions vt')
  in
  Alcotest.(check (list (triple string int int)))
    "incremental contents = cold rebuild" (shape vc) (shape vt);
  check_agreement ~msg:"cold rebuild" sys_base sys_cold

(* ---- qcheck: bit-identity under random insert/delete interleavings ---- *)

(* Toggle pool spanning every footprint plus a never-mentioned property;
   an op deletes its triple when present and inserts it otherwise. *)
let pool =
  [|
    tr (u "m0") (u "worksFor") (u "orgM");
    tr (u "m1") (u "memberOf") (u "orgM");
    tr (u "m2") (u "mastersFrom") (u "univ1");
    tr (u "m3") (u "doctorFrom") (u "univ2");
    tr (u "m4") typ (u "GradStudent");
    tr (u "m5") typ (u "Person");
    tr (u "m6") (u "unrelatedProp") (u "z0");
    tr (u "person0") (u "worksFor") (u "org0");
  |]

let prop_mutation_interleaving =
  QCheck2.Test.make ~count:25
    ~name:"views bit-identical under random insert/delete interleavings"
    QCheck2.Gen.(list_size (int_range 1 8) (int_bound (Array.length pool - 1)))
    (fun ops ->
      Par.set_jobs 1;
      let store, sys_base, sys_views = fresh_pair () in
      let _sel =
        Rqa.View_select.select_and_install ~budget sys_views workload
      in
      let agree () =
        List.for_all
          (fun strat ->
            List.for_all
              (fun (_, q) ->
                outcome sys_base strat q = outcome sys_views strat q)
              workload)
          strategies
      in
      agree ()
      && List.for_all
           (fun i ->
             let t = pool.(i) in
             if not (Es.delete store t) then Es.insert store t;
             agree ())
           ops)

(* ---- metrics export ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_metrics_exported () =
  (* the tests above moved the counters; all five families must export *)
  let text = Metrics.to_prometheus () in
  List.iter
    (fun fam ->
      Alcotest.(check bool) (fam ^ " exported") true (contains text fam))
    [
      "rdfqa_views_hits_total";
      "rdfqa_views_misses_total";
      "rdfqa_views_rematerializations_total";
      "rdfqa_views_count";
      "rdfqa_views_bytes";
    ]

let () =
  Alcotest.run "views"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "profiles × jobs" `Quick
            test_differential_profiles_jobs;
        ] );
      ( "selection",
        [
          Alcotest.test_case "budget 0" `Quick test_budget_zero_selects_nothing;
          Alcotest.test_case "deterministic" `Quick
            test_selection_deterministic;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "incremental footprint" `Quick
            test_incremental_footprint;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_mutation_interleaving ] );
      ( "metrics",
        [ Alcotest.test_case "families exported" `Quick test_metrics_exported ]
      );
    ]
