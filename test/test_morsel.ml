(* Differential tests for morsel-driven intra-operator parallelism: the
   partitioned hash join and the partitioned duplicate elimination must be
   bit-identical to their sequential counterparts — same rows in the same
   order, same charge totals, same budget-failure points — at every jobs
   count and morsel size, and the traced per-operator counters (hash
   inserts/collisions, work units) must report the same totals on the
   partitioned path as on the sequential one. *)

open Query
module Relation = Engine.Relation

(* Real multi-domain execution even on small CI machines (see test_par). *)
let () = Unix.putenv "RDFQA_JOBS_FORCE" "1"

let with_jobs j f =
  Fun.protect ~finally:(fun () -> Par.set_jobs (Par.env_jobs ())) (fun () ->
      Par.set_jobs j;
      f ())

(* [Profile.morsel_size] consults RDFQA_MORSEL at every call, so setting it
   mid-test retunes the split granularity of already-created engines. *)
let with_morsel m f =
  let old = Option.value (Sys.getenv_opt "RDFQA_MORSEL") ~default:"" in
  Unix.putenv "RDFQA_MORSEL" (string_of_int m);
  Fun.protect ~finally:(fun () -> Unix.putenv "RDFQA_MORSEL" old) f

let morsel_sizes = [ 1; 7; 64; 1_000_000 ]
let jobs_levels = [ 1; 2; 4 ]

(* ---- direct operator fixtures ---- *)

let tiny_store =
  lazy
    (Store.Encoded_store.of_graph
       (Rdf.Graph.make (Rdf.Schema.of_constraints []) []))

let rel_of_rows cols rows =
  let r = Relation.create ~cols:(List.length cols) in
  List.iter (fun row -> Relation.append r (Array.of_list row)) rows;
  { Engine.Executor.columns = cols; rel = r }

(* Everything observable about one join: output schema and rows in order,
   the engine's charge total, and the operator counters — or the exact
   failure with the charge total at the point it fired. *)
let join_outcome ?profile a b =
  let t = Engine.Executor.create ?profile (Lazy.force tiny_store) in
  let s = Obs.Op_stats.make Obs.Op_stats.Hash_join in
  match Engine.Executor.hash_join ~stats:s t a b with
  | r ->
      Ok
        ( r.Engine.Executor.columns,
          Relation.to_list r.Engine.Executor.rel,
          Engine.Executor.total_operations t,
          ( s.Obs.Op_stats.rows_in,
            s.Obs.Op_stats.rows_out,
            s.Obs.Op_stats.index_probes,
            s.Obs.Op_stats.hash_inserts,
            s.Obs.Op_stats.hash_collisions,
            s.Obs.Op_stats.work_units ) )
  | exception Engine.Profile.Engine_failure { engine; reason } ->
      Error (engine, reason, Engine.Executor.total_operations t)

let check_join_matches_sequential ~msg ?profile a b =
  List.iter
    (fun m ->
      with_morsel m @@ fun () ->
      let baseline = with_jobs 1 (fun () -> join_outcome ?profile a b) in
      List.iter
        (fun j ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: morsel=%d jobs=%d matches jobs=1" msg m j)
            true
            (with_jobs j (fun () -> join_outcome ?profile a b) = baseline))
        (List.tl jobs_levels))
    morsel_sizes

(* ---- qcheck: random joins across jobs counts and morsel sizes ---- *)

let gen_rows ncols =
  QCheck2.Gen.(list_size (int_bound 40) (list_repeat ncols (int_bound 5)))

let gen_join_inputs =
  QCheck2.Gen.(
    let* nkeys = int_range 1 2 in
    let* extra_a = int_bound 2 and* extra_b = int_bound 2 in
    let keys = List.init nkeys (Printf.sprintf "k%d") in
    (* keys lead in [a] but trail in [b], exercising key positions *)
    let cols_a = keys @ List.init extra_a (Printf.sprintf "a%d") in
    let cols_b = List.init extra_b (Printf.sprintf "b%d") @ keys in
    let* rows_a = gen_rows (List.length cols_a)
    and* rows_b = gen_rows (List.length cols_b) in
    return ((cols_a, rows_a), (cols_b, rows_b)))

let prop_partitioned_join_identical =
  QCheck2.Test.make ~count:30
    ~name:"partitioned hash join = sequential on random relations"
    gen_join_inputs
    (fun ((cols_a, rows_a), (cols_b, rows_b)) ->
      let a = rel_of_rows cols_a rows_a and b = rel_of_rows cols_b rows_b in
      List.for_all
        (fun m ->
          with_morsel m @@ fun () ->
          let baseline = with_jobs 1 (fun () -> join_outcome a b) in
          List.for_all
            (fun j -> with_jobs j (fun () -> join_outcome a b) = baseline)
            (List.tl jobs_levels))
        morsel_sizes)

let gen_dedup_rel =
  QCheck2.Gen.(
    let* ncols = int_bound 3 in
    let* rows = gen_rows ncols in
    return (ncols, rows))

let prop_partitioned_dedup_identical =
  QCheck2.Test.make ~count:40
    ~name:"partitioned dedup = Relation.dedup on random relations"
    gen_dedup_rel
    (fun (ncols, rows) ->
      let rel = Relation.create ~cols:ncols in
      List.iter (fun row -> Relation.append rel (Array.of_list row)) rows;
      let expected = Relation.to_list (Relation.dedup rel) in
      List.for_all
        (fun j ->
          let pool = Par.create ~jobs:j in
          Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
          List.for_all
            (fun m ->
              Relation.to_list (Engine.Morsel.dedup pool ~morsel:m rel)
              = expected)
            morsel_sizes)
        jobs_levels)

(* ---- deterministic operator tests ---- *)

(* Keys 0..9, several matches per key: enough rows that morsel=1 fans the
   probe out into many morsels and every partition sees work. *)
let join_a =
  rel_of_rows [ "k"; "a" ] (List.init 60 (fun i -> [ i mod 10; i ]))

let join_b =
  rel_of_rows [ "b"; "k" ] (List.init 24 (fun i -> [ 100 + i; i mod 12 ]))

let test_join_differential () =
  check_join_matches_sequential ~msg:"join 60x24" join_a join_b;
  (* degenerate shapes: empty build, empty probe *)
  let empty = rel_of_rows [ "k"; "z" ] [] in
  check_join_matches_sequential ~msg:"empty probe side" empty join_b;
  check_join_matches_sequential ~msg:"empty build side" join_a empty

let test_join_parallel_path_engages () =
  with_morsel 1 @@ fun () ->
  with_jobs 4 @@ fun () ->
  let t = Engine.Executor.create (Lazy.force tiny_store) in
  let s = Obs.Op_stats.make Obs.Op_stats.Hash_join in
  let r = Engine.Executor.hash_join ~stats:s t join_a join_b in
  Alcotest.(check bool) "produced rows" true
    (Relation.rows r.Engine.Executor.rel > 0);
  Alcotest.(check bool) "probe actually split into morsels" true
    (s.Obs.Op_stats.morsels > 0);
  Alcotest.(check bool) "max_worker_rows recorded" true
    (s.Obs.Op_stats.max_worker_rows > 0)

(* Budget failures mid-join: the partitioned probe records its charges and
   the coordinator replays them in canonical order, so the budget must trip
   at the identical operation — same reason, same lifetime total — at every
   jobs count and morsel size. *)
let test_join_budget_failure () =
  let profile =
    {
      Engine.Profile.postgres_like with
      Engine.Profile.name = "tiny-join-budget";
      max_operations = 150;
    }
  in
  (* build (24) fits; the probe's 60 row charges + ~144 emit charges
     overrun mid-probe *)
  check_join_matches_sequential ~msg:"budget mid-join" ~profile join_a join_b;
  with_morsel 1 @@ fun () ->
  let r = with_jobs 4 (fun () -> join_outcome ~profile join_a join_b) in
  Alcotest.(check bool) "budget actually trips" true
    (match r with
    | Error (_, Engine.Profile.Operation_budget _, _) -> true
    | _ -> false)

(* ---- full-query traced op-stats equality (S6) ---- *)

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "GradStudent", u "Student");
      Rdf.Schema.Subclass (u "Student", u "Person");
      Rdf.Schema.Subproperty (u "worksFor", u "memberOf");
      Rdf.Schema.Domain (u "memberOf", u "Person");
      Rdf.Schema.Range (u "memberOf", u "Org");
    ]

let graph =
  let facts =
    List.concat
      (List.init 80 (fun i ->
           let p = u (Printf.sprintf "person%d" i) in
           [
             tr p typ (u (if i mod 3 = 0 then "GradStudent" else "Student"));
             tr p (u "worksFor") (u (Printf.sprintf "org%d" (i mod 4)));
           ]))
  in
  Rdf.Graph.make schema facts

let q3 =
  Bgp.make [ v "x"; v "y" ]
    [
      Bgp.atom (v "x") (c typ) (v "y");
      Bgp.atom (v "x") (c (u "memberOf")) (c (u "org2"));
    ]

(* Per-node totals that must not depend on the parallel split; the split
   descriptors themselves (morsels, max_worker_rows, skew) legitimately
   differ across jobs counts and are excluded. *)
let op_totals root =
  List.rev
    (Obs.Op_stats.fold
       (fun acc ~path n ->
         ( path,
           Obs.Op_stats.kind_name n.Obs.Op_stats.kind,
           n.Obs.Op_stats.label,
           n.Obs.Op_stats.rows_in,
           n.Obs.Op_stats.rows_out,
           n.Obs.Op_stats.index_probes,
           n.Obs.Op_stats.hash_inserts,
           n.Obs.Op_stats.hash_collisions,
           n.Obs.Op_stats.work_units )
         :: acc)
       [] root)

let test_traced_op_totals_equal () =
  with_morsel 1 @@ fun () ->
  let store = Store.Encoded_store.of_graph graph in
  let reformulator = Reformulation.Reformulate.create schema in
  let run j =
    with_jobs j (fun () ->
        Obs.reset ();
        Obs.set_enabled true;
        Fun.protect ~finally:(fun () -> Obs.set_enabled false) (fun () ->
            let sys =
              Rqa.Answering.make ~profile:Engine.Profile.postgres_like
                ~reformulator store
            in
            ignore (Rqa.Answering.answer sys Rqa.Answering.Scq q3);
            match
              Engine.Executor.last_op_stats (Rqa.Answering.engine sys)
            with
            | Some root -> op_totals root
            | None -> []))
  in
  (* discarded warm-up: the first query over a store encodes constants into
     the shared dictionary, shifting later plan statistics *)
  ignore (run 1);
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "trace tree non-empty" true (seq <> []);
  Alcotest.(check bool) "a hash join was traced" true
    (List.exists (fun (_, k, _, _, _, _, _, _, _) -> k = "hash_join") seq);
  Alcotest.(check bool) "jobs=4 op totals = jobs=1" true (par = seq)

let qcheck_cases =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_partitioned_join_identical; prop_partitioned_dedup_identical ]

let () =
  Alcotest.run "morsel"
    [
      ( "hash_join",
        [
          Alcotest.test_case "differential across jobs x morsel" `Quick
            test_join_differential;
          Alcotest.test_case "parallel path engages" `Quick
            test_join_parallel_path_engages;
          Alcotest.test_case "budget failure mid-join" `Quick
            test_join_budget_failure;
        ] );
      ("properties", qcheck_cases);
      ( "op_stats",
        [
          Alcotest.test_case "traced totals jobs=1 = jobs=4" `Quick
            test_traced_op_totals_equal;
        ] );
    ]
