(* Tests for the storage substrate: int vectors, the dictionary-encoded
   triple table with its six access paths, and the statistics module. *)

let u s = Rdf.Term.uri s
let lit s = Rdf.Term.literal s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Query.Bgp.Var x
let c t = Query.Bgp.Const t

(* ---- Intvec ---- *)

let test_intvec_push_get () =
  let vec = Store.Intvec.create ~capacity:2 () in
  for i = 0 to 99 do
    Store.Intvec.push vec (i * i)
  done;
  Alcotest.(check int) "length" 100 (Store.Intvec.length vec);
  Alcotest.(check int) "get 10" 100 (Store.Intvec.get vec 10);
  Store.Intvec.set vec 10 7;
  Alcotest.(check int) "set" 7 (Store.Intvec.get vec 10)

let test_intvec_bounds () =
  let vec = Store.Intvec.of_array [| 1; 2; 3 |] in
  Alcotest.(check bool) "oob raises" true
    (try ignore (Store.Intvec.get vec 3); false
     with Invalid_argument _ -> true)

let test_intvec_roundtrip () =
  let a = Array.init 57 (fun i -> 3 * i) in
  Alcotest.(check (array int)) "roundtrip" a
    (Store.Intvec.to_array (Store.Intvec.of_array a))

(* ---- Encoded_store ---- *)

let sample_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "A", u "B");
      Rdf.Schema.Subproperty (u "p", u "q");
      Rdf.Schema.Domain (u "p", u "A");
      Rdf.Schema.Range (u "p", u "B");
    ]

let sample_store () =
  let s = Store.Encoded_store.create sample_schema in
  List.iter (Store.Encoded_store.insert s)
    [
      tr (u "x1") typ (u "A");
      tr (u "x1") (u "p") (u "y1");
      tr (u "x2") (u "p") (u "y1");
      tr (u "x2") (u "q") (u "y2");
      tr (u "x3") (u "r") (lit "42");
    ];
  s

let code st term =
  match Store.Encoded_store.encode_term st term with
  | Some code -> code
  | None -> Alcotest.fail ("missing term: " ^ Rdf.Term.to_string term)

let test_store_insert_dedup () =
  let s = sample_store () in
  Alcotest.(check int) "size" 5 (Store.Encoded_store.size s);
  Store.Encoded_store.insert s (tr (u "x1") typ (u "A"));
  Alcotest.(check int) "duplicate ignored" 5 (Store.Encoded_store.size s)

let test_store_rejects_constraints () =
  let s = sample_store () in
  Alcotest.(check bool) "constraint raises" true
    (try
       Store.Encoded_store.insert s (tr (u "A") Rdf.Vocab.rdfs_subclassof (u "B"));
       false
     with Invalid_argument _ -> true)

let test_store_access_paths () =
  let s = sample_store () in
  let p = code s (u "p") in
  let x2 = code s (u "x2") in
  let y1 = code s (u "y1") in
  let count ps pp po = Store.Encoded_store.count s { Store.Encoded_store.ps; pp; po } in
  Alcotest.(check int) "by property" 2 (count None (Some p) None);
  Alcotest.(check int) "by subject" 2 (count (Some x2) None None);
  Alcotest.(check int) "by object" 2 (count None None (Some y1));
  Alcotest.(check int) "by subject+property" 1 (count (Some x2) (Some p) None);
  Alcotest.(check int) "by property+object" 2 (count None (Some p) (Some y1));
  Alcotest.(check int) "by subject+object" 1 (count (Some x2) None (Some y1));
  Alcotest.(check int) "full triple" 1 (count (Some x2) (Some p) (Some y1));
  Alcotest.(check int) "wildcard" 5 (count None None None)

let test_store_graph_roundtrip () =
  let s = sample_store () in
  let g = Store.Encoded_store.to_graph s in
  Alcotest.(check int) "graph size" 5 (Rdf.Graph.size g);
  let s2 = Store.Encoded_store.of_graph g in
  Alcotest.(check int) "re-encoded size" 5 (Store.Encoded_store.size s2)

let test_store_saturate () =
  let s = sample_store () in
  let sat = Store.Encoded_store.saturate s in
  let g_expected = Rdf.Saturation.saturate (Store.Encoded_store.to_graph s) in
  Alcotest.(check int) "saturated size"
    (Rdf.Graph.size g_expected)
    (Store.Encoded_store.size sat);
  Alcotest.(check bool) "same graph" true
    (Rdf.Graph.equal g_expected (Store.Encoded_store.to_graph sat));
  (* x1 p y1 entails x1 q y1, x1 type A (domain), y1 type B (range) *)
  let co term = code sat term in
  Alcotest.(check bool) "subproperty fact" true
    (Store.Encoded_store.mem_code sat (co (u "x1")) (co (u "q")) (co (u "y1")))

(* ---- Statistics ---- *)

let test_stats_atom_count () =
  let s = sample_store () in
  let stats = Store.Statistics.create s in
  Alcotest.(check int) "p wildcard" 2
    (Store.Statistics.atom_count stats (Query.Bgp.atom (v "x") (c (u "p")) (v "y")));
  Alcotest.(check int) "absent constant" 0
    (Store.Statistics.atom_count stats
       (Query.Bgp.atom (v "x") (c (u "nosuch")) (v "y")));
  Alcotest.(check int) "bound object" 2
    (Store.Statistics.atom_count stats
       (Query.Bgp.atom (v "x") (c (u "p")) (c (u "y1"))))

let test_stats_repeated_var () =
  let s = Store.Encoded_store.create Rdf.Schema.empty in
  List.iter (Store.Encoded_store.insert s)
    [ tr (u "a") (u "p") (u "a"); tr (u "a") (u "p") (u "b") ];
  let stats = Store.Statistics.create s in
  Alcotest.(check int) "x p x" 1
    (Store.Statistics.atom_count stats (Query.Bgp.atom (v "x") (c (u "p")) (v "x")))

let test_stats_ndv () =
  let s = sample_store () in
  let stats = Store.Statistics.create s in
  let p = code s (u "p") in
  Alcotest.(check int) "ndv subjects of p" 2
    (Store.Statistics.ndv stats ~prop:p `Subject);
  Alcotest.(check int) "ndv objects of p" 1
    (Store.Statistics.ndv stats ~prop:p `Object)

let test_stats_cq_estimate () =
  let s = sample_store () in
  let stats = Store.Statistics.create s in
  let single =
    Query.Bgp.make [ v "x" ] [ Query.Bgp.atom (v "x") (c (u "p")) (v "y") ]
  in
  Alcotest.(check (float 0.001)) "single atom exact" 2.0
    (Store.Statistics.cq_cardinality stats single);
  let join =
    Query.Bgp.make [ v "x" ]
      [
        Query.Bgp.atom (v "x") (c (u "p")) (v "y");
        Query.Bgp.atom (v "x") (c (u "q")) (v "z");
      ]
  in
  (* 2 × 1 / max(ndv_s(p)=2, ndv_s(q)=1) = 1 *)
  Alcotest.(check (float 0.001)) "join estimate" 1.0
    (Store.Statistics.cq_cardinality stats join);
  let empty =
    Query.Bgp.make [ v "x" ] [ Query.Bgp.atom (v "x") (c (u "nosuch")) (v "y") ]
  in
  Alcotest.(check (float 0.001)) "empty atom" 0.0
    (Store.Statistics.cq_cardinality stats empty)

let test_stats_invalidation_on_insert () =
  let s = sample_store () in
  let stats = Store.Statistics.create s in
  let atom = Query.Bgp.atom (v "x") (c (u "p")) (v "y") in
  Alcotest.(check int) "before" 2 (Store.Statistics.atom_count stats atom);
  Alcotest.(check (float 0.001)) "cq before" 2.0
    (Store.Statistics.cq_cardinality stats
       (Query.Bgp.make [ v "x" ] [ atom ]));
  Store.Encoded_store.insert s (tr (u "x9") (u "p") (u "y9"));
  Alcotest.(check int) "count after insert" 3
    (Store.Statistics.atom_count stats atom);
  Alcotest.(check (float 0.001)) "cq estimate refreshed" 3.0
    (Store.Statistics.cq_cardinality stats
       (Query.Bgp.make [ v "x" ] [ atom ]))

(* ---- Snapshot ---- *)

let test_snapshot_roundtrip () =
  let s = sample_store () in
  let path = Filename.temp_file "rqa" ".snap" in
  Store.Snapshot.save path s;
  let s2 = Store.Snapshot.load path in
  Sys.remove path;
  Alcotest.(check int) "size" (Store.Encoded_store.size s)
    (Store.Encoded_store.size s2);
  Alcotest.(check bool) "same graph" true
    (Rdf.Graph.equal
       (Store.Encoded_store.to_graph s)
       (Store.Encoded_store.to_graph s2));
  (* codes are preserved, so pattern counts agree *)
  let p = code s (u "p") in
  Alcotest.(check int) "same posting" 
    (Store.Encoded_store.count s { Store.Encoded_store.ps = None; pp = Some p; po = None })
    (Store.Encoded_store.count s2 { Store.Encoded_store.ps = None; pp = Some p; po = None })

let test_snapshot_bad_tag () =
  let path = Filename.temp_file "rqa" ".snap" in
  let oc = open_out path in
  output_string oc "not a snapshot at all";
  close_out oc;
  let raised =
    try ignore (Store.Snapshot.load path); false
    with Invalid_argument _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "bad tag rejected" true raised

(* ---- qcheck: pattern counts agree with naive filtering ---- *)

let gen_term = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 4))
let gen_prop = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 2))

let gen_triples =
  QCheck2.Gen.(
    list_size (int_bound 40)
      (let* s = gen_term and* p = gen_prop and* o = gen_term in
       return (tr s p o)))

let prop_count_matches_naive =
  QCheck2.Test.make ~count:200 ~name:"store counts = naive filter counts"
    QCheck2.Gen.(
      tup4 gen_triples (option gen_term) (option gen_prop) (option gen_term))
    (fun (triples, s_opt, p_opt, o_opt) ->
      let store = Store.Encoded_store.create Rdf.Schema.empty in
      List.iter (Store.Encoded_store.insert store) triples;
      let distinct = List.sort_uniq Rdf.Triple.compare triples in
      let naive =
        List.length
          (List.filter
             (fun (t : Rdf.Triple.t) ->
               (match s_opt with None -> true | Some x -> Rdf.Term.equal t.subj x)
               && (match p_opt with None -> true | Some x -> Rdf.Term.equal t.pred x)
               && (match o_opt with None -> true | Some x -> Rdf.Term.equal t.obj x))
             distinct)
      in
      let enc = Store.Encoded_store.encode_term store in
      let resolve = function
        | None -> Some None
        | Some term -> (
            match enc term with None -> None | Some code -> Some (Some code))
      in
      match (resolve s_opt, resolve p_opt, resolve o_opt) with
      | Some ps, Some pp, Some po ->
          Store.Encoded_store.count store { Store.Encoded_store.ps; pp; po }
          = naive
      | _ -> naive = 0)

let prop_saturate_matches_graph_saturation =
  QCheck2.Test.make ~count:100 ~name:"store saturation = graph saturation"
    QCheck2.Gen.(
      pair gen_triples
        (list_size (int_bound 4)
           (oneof
              [
                map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_term gen_term;
                map2 (fun p cl -> Rdf.Schema.Domain (p, cl)) gen_prop gen_term;
                map2 (fun p cl -> Rdf.Schema.Range (p, cl)) gen_prop gen_term;
                map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
              ])))
    (fun (triples, constrs) ->
      let schema = Rdf.Schema.of_constraints constrs in
      let store = Store.Encoded_store.create schema in
      List.iter (Store.Encoded_store.insert store) triples;
      let sat_store = Store.Encoded_store.saturate store in
      let sat_graph =
        Rdf.Saturation.saturate (Rdf.Graph.make schema triples)
      in
      Rdf.Graph.equal (Store.Encoded_store.to_graph sat_store) sat_graph)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_count_matches_naive; prop_saturate_matches_graph_saturation ]

let () =
  Alcotest.run "store"
    [
      ( "intvec",
        [
          Alcotest.test_case "push/get/set" `Quick test_intvec_push_get;
          Alcotest.test_case "bounds" `Quick test_intvec_bounds;
          Alcotest.test_case "roundtrip" `Quick test_intvec_roundtrip;
        ] );
      ( "encoded_store",
        [
          Alcotest.test_case "insert dedup" `Quick test_store_insert_dedup;
          Alcotest.test_case "rejects constraints" `Quick test_store_rejects_constraints;
          Alcotest.test_case "six access paths" `Quick test_store_access_paths;
          Alcotest.test_case "graph roundtrip" `Quick test_store_graph_roundtrip;
          Alcotest.test_case "saturation" `Quick test_store_saturate;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "bad tag" `Quick test_snapshot_bad_tag;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "atom counts" `Quick test_stats_atom_count;
          Alcotest.test_case "repeated variables" `Quick test_stats_repeated_var;
          Alcotest.test_case "ndv" `Quick test_stats_ndv;
          Alcotest.test_case "cq estimates" `Quick test_stats_cq_estimate;
          Alcotest.test_case "invalidation on insert" `Quick test_stats_invalidation_on_insert;
        ] );
      ("properties", qcheck_cases);
    ]
