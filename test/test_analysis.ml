(* Mutation self-tests of the static analysis layer, plus the workload
   lint gate.

   Each mutation seeds one deliberate invariant violation — a dropped
   join key, a permuted projection, an uncovered atom, … — and asserts
   the verifier rejects it with the {e expected} diagnostic code: the
   analysis has teeth, not just coverage.  The last group asserts every
   LUBM and DBLP evaluation query comes out of [Checker.check_query] with
   zero error diagnostics, which is the CI gate behind [rdfqa check]. *)

open Query

let u s = Rdf.Term.uri s
let v x = Bgp.Var x
let c t = Bgp.Const t
let typ = Rdf.Vocab.rdf_type

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "Professor", u "Teacher");
      Rdf.Schema.Domain (u "worksFor", u "Teacher");
      Rdf.Schema.Range (u "worksFor", u "Dept");
      Rdf.Schema.Domain (u "advises", u "Teacher");
    ]

(* q(x,z) :- x worksFor y (t1), y type Dept (t2), x advises z (t3) *)
let t1 = Bgp.atom (v "x") (c (u "worksFor")) (v "y")
let t2 = Bgp.atom (v "y") (c typ) (c (u "Dept"))
let t3 = Bgp.atom (v "x") (c (u "advises")) (v "z")
let q = Bgp.make [ v "x"; v "z" ] [ t1; t2; t3 ]
let cover = [ [ 0; 1 ]; [ 2 ] ]

(* Identity reformulation: the plan checks under test are about schemas
   and covers, not about reformulation rules. *)
let identity cq = Ucq.of_cqs [ cq ]
let jucq () = Jucq.make ~reformulate:identity q cover

let codes ds = List.map (fun d -> d.Analysis.Diagnostic.code) ds

let has_code code ds = List.mem code (codes ds)

let check_has name code ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" name code
       (String.concat "," (codes ds)))
    true (has_code code ds)

let check_has_error name code ds =
  check_has name code ds;
  Alcotest.(check bool) (name ^ " is error-severity") true
    (List.exists
       (fun d ->
         d.Analysis.Diagnostic.code = code && Analysis.Diagnostic.is_error d)
       ds)

let verify ?query ?cover j =
  Analysis.Plan_verify.verify_jucq ?query ?cover ~context:"mut" j

(* ---- the unmutated artefacts are clean ---- *)

let test_valid_clean () =
  let ds = verify ~query:q ~cover (jucq ()) in
  Alcotest.(check bool)
    (Printf.sprintf "no errors on the valid JUCQ (got: %s)"
       (String.concat "," (codes ds)))
    false
    (Analysis.Diagnostic.has_errors ds);
  let lint = Analysis.Query_lint.lint ~schema ~context:"q" q in
  Alcotest.(check bool) "no lint findings on q" true (lint = [])

(* ---- mutations ---- *)

(* M1: the first cover query's head loses the shared variable x — the
   fragment join key is silently gone. *)
let test_m1_dropped_join_key () =
  let f0 = { Bgp.head = [ v "y" ]; body = [ t1; t2 ] } in
  let f1 = Jucq.cover_query q cover [ 2 ] in
  let j =
    { Jucq.head = q.Bgp.head; fragments = [ (f0, identity f0); (f1, identity f1) ] }
  in
  check_has_error "dropped join key" "PV003" (verify ~query:q ~cover j)

(* M2: the projection asks for a variable no fragment produces. *)
let test_m2_corrupt_projection () =
  let j = jucq () in
  let j = { j with Jucq.head = [ v "x"; v "w" ] } in
  check_has_error "corrupt projection" "PV005" (verify ~query:q ~cover j)

(* M3: a fragment with an internal cartesian product ({t2,t3} share no
   variable). *)
let test_m3_cartesian_fragment () =
  let ds = Analysis.Cover_check.check ~context:"mut" q [ [ 1; 2 ]; [ 0 ] ] in
  check_has_error "cartesian fragment" "CV006" ds

(* M4: a distinguished variable missing from its only fragment's head —
   the Definition 3.4 head is violated. *)
let test_m4_head_var_not_in_fragment () =
  let f0 = Jucq.cover_query q cover [ 0; 1 ] in
  let f1 = { Bgp.head = [ v "x" ]; body = [ t3 ] } in
  let j =
    { Jucq.head = q.Bgp.head; fragments = [ (f0, identity f0); (f1, identity f1) ] }
  in
  let ds = verify ~query:q ~cover j in
  check_has_error "missing distinguished head var" "PV004" ds;
  (* the final projection of ?z also has nothing to read from *)
  check_has_error "missing projection source" "PV005" ds

(* M5: the cover misses atom t2. *)
let test_m5_uncovered_atom () =
  check_has_error "uncovered atom" "CV004"
    (Analysis.Cover_check.check ~context:"mut" q [ [ 0 ]; [ 2 ] ])

(* M6: one fragment included in another. *)
let test_m6_included_fragment () =
  check_has_error "included fragment" "CV005"
    (Analysis.Cover_check.check ~context:"mut" q [ [ 0; 1 ]; [ 1 ]; [ 2 ] ])

(* M7: an empty fragment. *)
let test_m7_empty_fragment () =
  check_has_error "empty fragment" "CV002"
    (Analysis.Cover_check.check ~context:"mut" q [ [ 0; 1; 2 ]; [] ])

(* M8: an atom index out of range. *)
let test_m8_index_out_of_range () =
  check_has_error "index out of range" "CV003"
    (Analysis.Cover_check.check ~context:"mut" q [ [ 0; 1 ]; [ 2; 5 ] ])

(* M9: permuted projection — a disjunct projects a different arity than
   the fragment's declared columns. *)
let test_m9_union_arity_mismatch () =
  let f0 = Jucq.cover_query q cover [ 0; 1 ] in
  let wide = { Bgp.head = [ v "x"; v "y" ]; body = [ t1; t2 ] } in
  let f1 = Jucq.cover_query q cover [ 2 ] in
  let j =
    {
      Jucq.head = q.Bgp.head;
      fragments = [ (f0, identity wide); (f1, identity f1) ];
    }
  in
  check_has_error "fragment width mismatch" "PV007" (verify ~query:q ~cover j)

(* M10: a cover whose fragments share no variable (disconnected join
   graph over a product query). *)
let test_m10_disconnected_cover () =
  let qa = Bgp.atom (v "x") (c (u "worksFor")) (v "y") in
  let qb = Bgp.atom (v "z") (c (u "advises")) (v "w") in
  let q2 = Bgp.make [ v "x"; v "z" ] [ qa; qb ] in
  check_has_error "disconnected cover" "CV007"
    (Analysis.Cover_check.check ~context:"mut" q2 [ [ 0 ]; [ 1 ] ])

(* M11: an empty cover. *)
let test_m11_empty_cover () =
  check_has_error "empty cover" "CV001"
    (Analysis.Cover_check.check ~context:"mut" q [])

(* M12: a repeated head variable in a cover query de-synchronizes the
   fragment's named columns from its relation width. *)
let test_m12_repeated_fragment_head () =
  let f0 = { Bgp.head = [ v "x"; v "x" ]; body = [ t1; t2 ] } in
  let f1 = Jucq.cover_query q cover [ 2 ] in
  let j =
    { Jucq.head = q.Bgp.head; fragments = [ (f0, identity f0); (f1, identity f1) ] }
  in
  check_has_error "repeated fragment head variable" "PV007"
    (verify ~query:q ~cover j)

(* ---- query lint mutations ---- *)

let test_lint_duplicate_atom () =
  let dup = { Bgp.head = [ v "x" ]; body = [ t1; t1 ] } in
  check_has "duplicate atom" "QL003"
    (Analysis.Query_lint.lint ~schema ~context:"mut" dup)

let test_lint_unknown_property () =
  let bad = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "wrksFor")) (v "y") ] in
  check_has "unknown property" "QL004"
    (Analysis.Query_lint.lint ~schema ~context:"mut" bad)

let test_lint_unknown_class () =
  let bad = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "Dpt")) ] in
  check_has "unknown class" "QL005"
    (Analysis.Query_lint.lint ~schema ~context:"mut" bad)

let test_lint_unbound_head () =
  let bad = { Bgp.head = [ v "nope" ]; body = [ t1 ] } in
  check_has_error "unbound head variable" "QL001"
    (Analysis.Query_lint.lint ~schema ~context:"mut" bad)

let test_lint_cartesian_body () =
  let prod =
    Bgp.make [ v "x" ]
      [ t1; Bgp.atom (v "a") (c (u "advises")) (v "b") ]
  in
  check_has "cartesian body" "QL002"
    (Analysis.Query_lint.lint ~schema ~context:"mut" prod)

let test_lint_redundant_disjunct () =
  (* x advises y  is contained in  x advises y' with y' unbound?  No:
     use the classic specialization — q1(x) :- x advises y, x type
     Teacher  is contained in  q2(x) :- x advises y. *)
  let general = Bgp.make [ v "x" ] [ t3 ] in
  let special =
    Bgp.make [ v "x" ] [ t3; Bgp.atom (v "x") (c typ) (c (u "Teacher")) ]
  in
  let ucq = Ucq.of_cqs [ general; special ] in
  check_has "redundant disjunct" "QL008"
    (Analysis.Query_lint.lint_ucq ~schema ~context:"mut" ucq)

(* ---- the executor actually rejects a mutated plan when verification
   is on ---- *)

let test_executor_rejects () =
  let g = Workloads.Lubm.generate_graph { Workloads.Lubm.universities = 1 } in
  let store = Store.Encoded_store.of_graph g in
  let ex = Engine.Executor.create store in
  (* The executor hook sees only the compiled plan (no originating cover),
     so seed a plan-level violation: the projection reads a variable no
     fragment produces. *)
  let j = jucq () in
  let j = { j with Jucq.head = [ v "x"; v "w" ] } in
  Analysis.Plan_verify.set_enabled true;
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Engine.Executor.eval_jucq ex j);
       false
     with Analysis.Plan_verify.Rejected ds ->
       Analysis.Diagnostic.has_errors ds)

(* ---- view serve-time checks: RF002 (unsound rewrite) / RF003 (stale) ---- *)

(* q(x,y) :- x worksFor y, with its identity reformulation standing in
   for a materialized definition. *)
let view_cq = Bgp.make [ v "x"; v "y" ] [ t1 ]
let view_ucq = identity view_cq

let view_rewrite ?head ?arity ?terms () =
  let head = Option.value head ~default:(Bgp.head_vars view_cq) in
  let arity = Option.value arity ~default:(Ucq.arity view_ucq) in
  let terms = Option.value terms ~default:(Ucq.cardinal view_ucq) in
  Analysis.View_verify.verify_rewrite ~context:"mut" ~head ~arity ~terms
    ~cq:view_cq ~ucq:view_ucq

let test_view_rewrite_clean () =
  Alcotest.(check (list string)) "sound rewrite is clean" []
    (codes (view_rewrite ()));
  (* α-renaming changes head NAMES but not widths — must stay clean *)
  Alcotest.(check (list string)) "renamed head is clean" []
    (codes (view_rewrite ~head:[ "s"; "w" ] ()))

let test_v1_head_width () =
  check_has_error "dropped head column" "RF002"
    (view_rewrite ~head:[ "x" ] ())

let test_v2_recorded_arity () =
  check_has_error "arity drift" "RF002"
    (view_rewrite ~arity:(Ucq.arity view_ucq + 1) ())

let test_v3_recorded_terms () =
  check_has_error "union-cardinality drift" "RF002"
    (view_rewrite ~terms:(Ucq.cardinal view_ucq + 1) ())

let test_view_freshness () =
  let fresh ~def_schema ~def_data ~schema ~data =
    Analysis.View_verify.verify_freshness ~context:"mut" ~def_schema
      ~def_data ~schema ~data
  in
  Alcotest.(check (list string)) "matching stamps are clean" []
    (codes (fresh ~def_schema:3 ~def_data:7 ~schema:3 ~data:7));
  check_has_error "stale data stamp" "RF003"
    (fresh ~def_schema:3 ~def_data:6 ~schema:3 ~data:7);
  check_has_error "stale schema stamp" "RF003"
    (fresh ~def_schema:2 ~def_data:7 ~schema:3 ~data:7)

(* ---- every emitted code is documented ---- *)

let test_catalog_complete () =
  let all_mutation_diags =
    List.concat
      [
        verify ~query:q ~cover (jucq ());
        Analysis.Cover_check.check ~context:"c" q [ [ 1; 2 ]; [] ];
        Analysis.Query_lint.lint ~schema ~context:"c"
          { Bgp.head = [ v "nope" ]; body = [ t1; t1 ] };
        view_rewrite ~head:[ "x" ] ~arity:0 ~terms:0 ();
        Analysis.View_verify.verify_freshness ~context:"c" ~def_schema:0
          ~def_data:0 ~schema:1 ~data:1;
      ]
  in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "code %s is in the catalog" code)
        true
        (Analysis.Diagnostic.describe code <> None))
    (codes all_mutation_diags)

(* ---- workload gate: every evaluation query lints clean ---- *)

let workload_clean name schema queries () =
  List.iter
    (fun (qname, query) ->
      let ds =
        Analysis.Checker.check_query ~schema ~name:(name ^ ":" ^ qname) query
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s:%s has no error diagnostics" name qname)
        []
        (codes (Analysis.Diagnostic.errors ds)))
    queries

let () =
  Alcotest.run "analysis"
    [
      ( "mutations",
        [
          Alcotest.test_case "valid artefacts are clean" `Quick test_valid_clean;
          Alcotest.test_case "M1 dropped join key" `Quick test_m1_dropped_join_key;
          Alcotest.test_case "M2 corrupt projection" `Quick test_m2_corrupt_projection;
          Alcotest.test_case "M3 cartesian fragment" `Quick test_m3_cartesian_fragment;
          Alcotest.test_case "M4 head var not in fragment" `Quick test_m4_head_var_not_in_fragment;
          Alcotest.test_case "M5 uncovered atom" `Quick test_m5_uncovered_atom;
          Alcotest.test_case "M6 included fragment" `Quick test_m6_included_fragment;
          Alcotest.test_case "M7 empty fragment" `Quick test_m7_empty_fragment;
          Alcotest.test_case "M8 index out of range" `Quick test_m8_index_out_of_range;
          Alcotest.test_case "M9 union arity mismatch" `Quick test_m9_union_arity_mismatch;
          Alcotest.test_case "M10 disconnected cover" `Quick test_m10_disconnected_cover;
          Alcotest.test_case "M11 empty cover" `Quick test_m11_empty_cover;
          Alcotest.test_case "M12 repeated fragment head" `Quick test_m12_repeated_fragment_head;
        ] );
      ( "query lint",
        [
          Alcotest.test_case "duplicate atom" `Quick test_lint_duplicate_atom;
          Alcotest.test_case "unknown property" `Quick test_lint_unknown_property;
          Alcotest.test_case "unknown class" `Quick test_lint_unknown_class;
          Alcotest.test_case "unbound head" `Quick test_lint_unbound_head;
          Alcotest.test_case "cartesian body" `Quick test_lint_cartesian_body;
          Alcotest.test_case "redundant disjunct" `Quick test_lint_redundant_disjunct;
        ] );
      ( "integration",
        [
          Alcotest.test_case "executor rejects mutant" `Quick test_executor_rejects;
          Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
        ] );
      ( "views",
        [
          Alcotest.test_case "sound rewrite clean" `Quick
            test_view_rewrite_clean;
          Alcotest.test_case "V1 head width" `Quick test_v1_head_width;
          Alcotest.test_case "V2 recorded arity" `Quick
            test_v2_recorded_arity;
          Alcotest.test_case "V3 recorded terms" `Quick
            test_v3_recorded_terms;
          Alcotest.test_case "RF003 stale stamps" `Quick test_view_freshness;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "lubm lints clean" `Quick
            (workload_clean "lubm" Workloads.Lubm.schema Workloads.Lubm.queries);
          Alcotest.test_case "dblp lints clean" `Quick
            (workload_clean "dblp" Workloads.Dblp.schema Workloads.Dblp.queries);
        ] );
    ]
