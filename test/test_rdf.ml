(* Tests for the RDF substrate: terms, triples, schema closure, graphs,
   saturation, dictionary encoding and N-Triples round-trips. *)

let u s = Rdf.Term.uri s
let lit s = Rdf.Term.literal s
let bn s = Rdf.Term.bnode s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type

(* The running example of the paper: Figure 3's book graph. *)
let book_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "Book", u "Publication");
      Rdf.Schema.Subproperty (u "writtenBy", u "hasAuthor");
      Rdf.Schema.Domain (u "writtenBy", u "Book");
      Rdf.Schema.Range (u "writtenBy", u "Person");
      Rdf.Schema.Domain (u "hasAuthor", u "Book");
      Rdf.Schema.Range (u "hasAuthor", u "Person");
    ]

let book_graph =
  Rdf.Graph.make book_schema
    [
      tr (u "doi1") typ (u "Book");
      tr (u "doi1") (u "writtenBy") (bn "b1");
      tr (u "doi1") (u "hasTitle") (lit "Game of Thrones");
      tr (bn "b1") (u "hasName") (lit "George R. R. Martin");
      tr (u "doi1") (u "publishedIn") (lit "1996");
    ]

(* ---- Term ---- *)

let test_term_roundtrip () =
  List.iter
    (fun t ->
      Alcotest.(check bool) "roundtrip" true
        (Rdf.Term.equal t (Rdf.Term.of_string (Rdf.Term.to_string t))))
    [ u "http://example.org/a"; lit "hello world"; bn "b42"; lit "" ]

let test_term_order () =
  Alcotest.(check bool) "uri < literal" true (Rdf.Term.compare (u "z") (lit "a") < 0);
  Alcotest.(check bool) "literal < bnode" true (Rdf.Term.compare (lit "z") (bn "a") < 0);
  Alcotest.(check int) "equal terms" 0 (Rdf.Term.compare (u "a") (u "a"))

let test_term_predicates () =
  Alcotest.(check bool) "is_uri" true (Rdf.Term.is_uri (u "a"));
  Alcotest.(check bool) "is_literal" true (Rdf.Term.is_literal (lit "a"));
  Alcotest.(check bool) "is_bnode" true (Rdf.Term.is_bnode (bn "a"));
  Alcotest.(check bool) "uri not literal" false (Rdf.Term.is_literal (u "a"))

let test_term_hash_consistent () =
  Alcotest.(check int) "hash equal" (Rdf.Term.hash (u "x")) (Rdf.Term.hash (u "x"))

(* ---- Triple ---- *)

let test_triple_wellformed () =
  Alcotest.check_raises "literal property"
    (Invalid_argument "Triple.make: property must be a URI") (fun () ->
      ignore (tr (u "a") (lit "p") (u "b")))

let test_triple_kinds () =
  let t1 = tr (u "a") typ (u "C") in
  let t2 = tr (u "a") (u "p") (u "b") in
  let t3 = tr (u "C") Rdf.Vocab.rdfs_subclassof (u "D") in
  Alcotest.(check bool) "class assertion" true (Rdf.Triple.is_class_assertion t1);
  Alcotest.(check bool) "property assertion" true (Rdf.Triple.is_property_assertion t2);
  Alcotest.(check bool) "schema constraint" true (Rdf.Triple.is_schema_constraint t3);
  Alcotest.(check bool) "exclusive" false (Rdf.Triple.is_property_assertion t1)

(* ---- Schema ---- *)

let lubm_like_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "FullProfessor", u "Professor");
      Rdf.Schema.Subclass (u "Professor", u "Faculty");
      Rdf.Schema.Subclass (u "Faculty", u "Employee");
      Rdf.Schema.Subproperty (u "headOf", u "worksFor");
      Rdf.Schema.Subproperty (u "worksFor", u "memberOf");
      Rdf.Schema.Domain (u "worksFor", u "Employee");
      Rdf.Schema.Range (u "memberOf", u "Organization");
    ]

let term_set = Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (String.concat ","
           (List.map Rdf.Term.to_string (Rdf.Term.Set.elements s))))
    Rdf.Term.Set.equal

let set_of xs = Rdf.Term.Set.of_list xs

let test_schema_subclass_transitive () =
  Alcotest.check term_set "superclasses of FullProfessor"
    (set_of [ u "Professor"; u "Faculty"; u "Employee" ])
    (Rdf.Schema.super_classes lubm_like_schema (u "FullProfessor"));
  Alcotest.check term_set "subclasses of Employee"
    (set_of [ u "Faculty"; u "Professor"; u "FullProfessor" ])
    (Rdf.Schema.sub_classes lubm_like_schema (u "Employee"))

let test_schema_subproperty_transitive () =
  Alcotest.check term_set "superproperties of headOf"
    (set_of [ u "worksFor"; u "memberOf" ])
    (Rdf.Schema.super_properties lubm_like_schema (u "headOf"))

let test_schema_domain_closure () =
  (* headOf ⊑ worksFor, worksFor domain Employee: headOf inherits the
     domain; Employee's superclasses are included too. *)
  Alcotest.check term_set "domains of headOf"
    (set_of [ u "Employee" ])
    (Rdf.Schema.domains lubm_like_schema (u "headOf"));
  Alcotest.check term_set "ranges of headOf"
    (set_of [ u "Organization" ])
    (Rdf.Schema.ranges lubm_like_schema (u "headOf"))

let test_schema_domain_subclass_closure () =
  let s =
    Rdf.Schema.of_constraints
      [
        Rdf.Schema.Domain (u "p", u "C");
        Rdf.Schema.Subclass (u "C", u "D");
      ]
  in
  Alcotest.check term_set "domain closed under subclass"
    (set_of [ u "C"; u "D" ])
    (Rdf.Schema.domains s (u "p"))

let test_schema_inverse_typing () =
  Alcotest.check term_set "properties with domain Employee"
    (set_of [ u "worksFor"; u "headOf" ])
    (Rdf.Schema.properties_with_domain lubm_like_schema (u "Employee"));
  Alcotest.check term_set "properties with range Organization"
    (set_of [ u "memberOf"; u "worksFor"; u "headOf" ])
    (Rdf.Schema.properties_with_range lubm_like_schema (u "Organization"))

let test_schema_cyclic () =
  (* Cyclic subclass graphs must not loop. *)
  let s =
    Rdf.Schema.of_constraints
      [ Rdf.Schema.Subclass (u "A", u "B"); Rdf.Schema.Subclass (u "B", u "A") ]
  in
  Alcotest.(check bool) "A ⊑ B" true (Rdf.Schema.is_subclass s (u "A") (u "B"));
  Alcotest.(check bool) "B ⊑ A" true (Rdf.Schema.is_subclass s (u "B") (u "A"))

let test_schema_triple_roundtrip () =
  List.iter
    (fun c ->
      match Rdf.Schema.constr_of_triple (Rdf.Schema.constr_to_triple c) with
      | Some c' -> Alcotest.(check bool) "roundtrip" true (c = c')
      | None -> Alcotest.fail "constraint lost in translation")
    (Rdf.Schema.constraints lubm_like_schema)

let test_schema_equal_closure () =
  let s1 =
    Rdf.Schema.of_constraints
      [ Rdf.Schema.Subclass (u "A", u "B"); Rdf.Schema.Subclass (u "B", u "C") ]
  in
  let s2 =
    Rdf.Schema.of_constraints
      [
        Rdf.Schema.Subclass (u "A", u "B");
        Rdf.Schema.Subclass (u "B", u "C");
        Rdf.Schema.Subclass (u "A", u "C");  (* entailed anyway *)
      ]
  in
  Alcotest.(check bool) "same closure" true (Rdf.Schema.equal_closure s1 s2);
  Alcotest.(check bool) "different closure" false
    (Rdf.Schema.equal_closure s1 lubm_like_schema)

(* ---- Graph ---- *)

let test_graph_routes_constraints () =
  let g =
    Rdf.Graph.of_triples
      [
        tr (u "Book") Rdf.Vocab.rdfs_subclassof (u "Publication");
        tr (u "doi1") typ (u "Book");
      ]
  in
  Alcotest.(check int) "one fact" 1 (Rdf.Graph.size g);
  Alcotest.(check int) "one constraint" 1 (Rdf.Schema.size (Rdf.Graph.schema g))

let test_graph_values () =
  let vals = Rdf.Graph.values book_graph in
  Alcotest.(check bool) "subject present" true (Rdf.Term.Set.mem (u "doi1") vals);
  Alcotest.(check bool) "literal present" true (Rdf.Term.Set.mem (lit "1996") vals);
  Alcotest.(check bool) "bnode present" true (Rdf.Term.Set.mem (bn "b1") vals)

let test_graph_add_fact_rejects_constraint () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Rdf.Graph.add_fact
            (tr (u "A") Rdf.Vocab.rdfs_subclassof (u "B"))
            Rdf.Graph.empty);
       false
     with Invalid_argument _ -> true)

(* ---- Saturation ---- *)

let test_saturation_example2 () =
  (* Figure 3: the dashed (implicit) triples. *)
  let sat = Rdf.Saturation.saturate book_graph in
  let facts = Rdf.Graph.facts sat in
  List.iter
    (fun t ->
      Alcotest.(check bool) ("derived " ^ Rdf.Triple.to_string t) true
        (Rdf.Triple.Set.mem t facts))
    [
      tr (u "doi1") typ (u "Publication");
      tr (u "doi1") (u "hasAuthor") (bn "b1");
      tr (bn "b1") typ (u "Person");
    ];
  (* Example 1 facts remain. *)
  Alcotest.(check bool) "explicit kept" true
    (Rdf.Triple.Set.mem (tr (u "doi1") typ (u "Book")) facts)

let test_saturation_idempotent () =
  let s1 = Rdf.Saturation.saturate book_graph in
  let s2 = Rdf.Saturation.saturate s1 in
  Alcotest.(check bool) "fixpoint" true (Rdf.Graph.equal s1 s2);
  Alcotest.(check bool) "is_saturated" true (Rdf.Saturation.is_saturated s1)

let test_saturation_incremental () =
  let sat = Rdf.Saturation.saturate book_graph in
  let extra = [ tr (u "doi2") (u "writtenBy") (u "author2") ] in
  let inc = Rdf.Saturation.saturate_incremental sat extra in
  let full =
    Rdf.Saturation.saturate
      (List.fold_left (fun g t -> Rdf.Graph.add_fact t g) book_graph extra)
  in
  Alcotest.(check bool) "incremental = full" true (Rdf.Graph.equal inc full)

let test_saturation_entails () =
  Alcotest.(check bool) "entails implicit" true
    (Rdf.Saturation.entails book_graph (tr (u "doi1") typ (u "Publication")));
  Alcotest.(check bool) "does not entail junk" false
    (Rdf.Saturation.entails book_graph (tr (u "doi1") typ (u "Person")))

let test_saturation_range_literal () =
  (* Generalized RDF: range typing applies to literal objects too. *)
  let s = Rdf.Schema.of_constraints [ Rdf.Schema.Range (u "p", u "C") ] in
  let g = Rdf.Graph.make s [ tr (u "a") (u "p") (lit "v") ] in
  Alcotest.(check bool) "literal typed" true
    (Rdf.Saturation.entails g (tr (lit "v") typ (u "C")))

(* ---- Dictionary ---- *)

let test_dictionary_roundtrip () =
  let d = Rdf.Dictionary.create () in
  let terms = [ u "a"; lit "a"; bn "a"; u "b"; lit "long literal value" ] in
  let codes = List.map (Rdf.Dictionary.encode d) terms in
  Alcotest.(check (list int)) "dense codes" [ 0; 1; 2; 3; 4 ] codes;
  List.iteri
    (fun i t ->
      Alcotest.(check bool) "decode" true
        (Rdf.Term.equal t (Rdf.Dictionary.decode d i)))
    terms;
  Alcotest.(check int) "stable" 0 (Rdf.Dictionary.encode d (u "a"));
  Alcotest.(check int) "cardinal" 5 (Rdf.Dictionary.cardinal d)

let test_dictionary_growth () =
  let d = Rdf.Dictionary.create ~initial_capacity:2 () in
  for i = 0 to 99 do
    ignore (Rdf.Dictionary.encode d (u (string_of_int i)))
  done;
  Alcotest.(check int) "hundred" 100 (Rdf.Dictionary.cardinal d);
  Alcotest.(check bool) "decode 73" true
    (Rdf.Term.equal (u "73") (Rdf.Dictionary.decode d 73))

let test_dictionary_unknown_code () =
  let d = Rdf.Dictionary.create () in
  Alcotest.(check bool) "raises" true
    (try ignore (Rdf.Dictionary.decode d 0); false
     with Invalid_argument _ -> true)

(* ---- N-Triples ---- *)

let test_ntriples_roundtrip () =
  let triples =
    Rdf.Triple.Set.elements (Rdf.Graph.facts book_graph)
    @ List.map Rdf.Schema.constr_to_triple (Rdf.Schema.constraints book_schema)
  in
  let doc = Rdf.Ntriples.print_string triples in
  let back = Rdf.Ntriples.parse_string doc in
  Alcotest.(check int) "count" (List.length triples) (List.length back);
  List.iter2
    (fun a b -> Alcotest.(check bool) "triple" true (Rdf.Triple.equal a b))
    triples back

let test_ntriples_comments_blanks () =
  let doc = "# a comment\n\n<a> <p> \"x\" .\n   \n# end\n" in
  Alcotest.(check int) "one triple" 1 (List.length (Rdf.Ntriples.parse_string doc))

let test_ntriples_file_roundtrip () =
  let path = Filename.temp_file "rqa" ".nt" in
  Rdf.Ntriples.save_file path book_graph;
  let g = Rdf.Ntriples.load_file path in
  Sys.remove path;
  Alcotest.(check bool) "graph equal" true (Rdf.Graph.equal g book_graph)

(* ---- Turtle ---- *)

let ub_ns = Rdf.Namespace.of_list [ ("ex", "http://example.org/") ]

let test_turtle_parse_basic () =
  let doc = {|
@prefix ex: <http://example.org/> .
ex:doi1 a ex:Book ;
  ex:writtenBy _:b1 ;
  ex:hasTitle "Game of Thrones", "GoT" .
_:b1 ex:hasName "George R. R. Martin" .
|} in
  let triples = Rdf.Turtle.parse doc in
  Alcotest.(check int) "five triples" 5 (List.length triples);
  Alcotest.(check bool) "type triple present" true
    (List.exists
       (fun (t : Rdf.Triple.t) ->
         Rdf.Term.equal t.pred typ
         && Rdf.Term.equal t.obj (u "http://example.org/Book"))
       triples);
  Alcotest.(check bool) "object list expanded" true
    (List.exists
       (fun (t : Rdf.Triple.t) -> Rdf.Term.equal t.obj (lit "GoT"))
       triples)

let test_turtle_roundtrip () =
  let triples =
    [
      tr (u "http://example.org/s1") typ (u "http://example.org/C");
      tr (u "http://example.org/s1") (u "http://example.org/p") (lit "v \"quoted\"");
      tr (u "http://example.org/s1") (u "http://example.org/p") (u "http://example.org/o");
      tr (bn "b7") (u "http://example.org/q") (u "http://example.org/s1");
    ]
  in
  let doc = Rdf.Turtle.print ~namespaces:ub_ns triples in
  let back = Rdf.Turtle.parse doc in
  Alcotest.(check int) "count" (List.length triples) (List.length back);
  List.iter
    (fun t ->
      Alcotest.(check bool) ("roundtrip " ^ Rdf.Triple.to_string t) true
        (List.exists (Rdf.Triple.equal t) back))
    triples

let test_turtle_rejects_unsupported () =
  List.iter
    (fun doc ->
      Alcotest.(check bool) ("rejects: " ^ doc) true
        (try ignore (Rdf.Turtle.parse doc); false
         with Invalid_argument _ -> true))
    [
      "<a> <p> \"x\"@en .";
      "<a> <p> ( <b> <c> ) .";
      "<a> <p> [ <q> <r> ] .";
      "@base <http://x/> .";
      "<a> <p> .";
    ]

let test_turtle_file_roundtrip () =
  let path = Filename.temp_file "rqa" ".ttl" in
  Rdf.Turtle.save_file path book_graph;
  let g = Rdf.Turtle.load_file path in
  Sys.remove path;
  Alcotest.(check bool) "graph equal" true (Rdf.Graph.equal g book_graph)

let test_turtle_reads_ntriples_style () =
  (* N-Triples is a Turtle subset. *)
  let doc = Rdf.Ntriples.print_string (Rdf.Graph.fact_list book_graph) in
  Alcotest.(check int) "same count"
    (Rdf.Graph.size book_graph)
    (List.length (Rdf.Turtle.parse doc))

(* ---- Namespace ---- *)

let test_namespace_compact () =
  let ns = Rdf.Namespace.of_list [ ("ub", "http://ub.example/onto#") ] in
  Alcotest.(check string) "compact" "ub:Professor"
    (Rdf.Namespace.compact ns (u "http://ub.example/onto#Professor"));
  Alcotest.(check string) "rdf builtin" "rdf:type"
    (Rdf.Namespace.compact ns Rdf.Vocab.rdf_type);
  Alcotest.(check string) "no match stays full" "<http://other.org/x>"
    (Rdf.Namespace.compact ns (u "http://other.org/x"));
  Alcotest.(check string) "literal untouched" "\"42\""
    (Rdf.Namespace.compact ns (lit "42"))

let test_namespace_longest_wins () =
  let ns =
    Rdf.Namespace.of_list
      [ ("a", "http://x.org/"); ("b", "http://x.org/deep/") ]
  in
  Alcotest.(check string) "longest base" "b:leaf"
    (Rdf.Namespace.compact ns (u "http://x.org/deep/leaf"));
  Alcotest.(check string) "short base" "a:other"
    (Rdf.Namespace.compact ns (u "http://x.org/other"))

let test_namespace_expand () =
  let ns = Rdf.Namespace.of_list [ ("ub", "http://ub#") ] in
  Alcotest.(check (option string)) "expand" (Some "http://ub#X")
    (Rdf.Namespace.expand ns "ub:X");
  Alcotest.(check (option string)) "unknown prefix" None
    (Rdf.Namespace.expand ns "zz:X");
  Alcotest.(check (option string)) "no colon" None
    (Rdf.Namespace.expand ns "plain")

let test_namespace_validation () =
  Alcotest.(check bool) "colon prefix rejected" true
    (try ignore (Rdf.Namespace.add ~prefix:"a:b" ~base:"http://x/" Rdf.Namespace.empty); false
     with Invalid_argument _ -> true)

(* ---- qcheck properties ---- *)

let gen_uri = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 8))
let gen_class = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "C%d" i)) (int_bound 5))
let gen_prop = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 4))

let gen_constr =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_class gen_class;
        map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
        map2 (fun p c -> Rdf.Schema.Domain (p, c)) gen_prop gen_class;
        map2 (fun p c -> Rdf.Schema.Range (p, c)) gen_prop gen_class;
      ])

let gen_schema =
  QCheck2.Gen.(map Rdf.Schema.of_constraints (list_size (int_bound 6) gen_constr))

let gen_fact =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun s c -> tr s typ c) gen_uri gen_class;
        map2 (fun (s, p) o -> tr s p o) (pair gen_uri gen_prop)
          (oneof [ gen_uri; map lit (map string_of_int (int_bound 3)) ]);
      ])

let gen_graph =
  QCheck2.Gen.(
    map2
      (fun s facts -> Rdf.Graph.make s facts)
      gen_schema
      (list_size (int_bound 20) gen_fact))

let prop_saturation_idempotent =
  QCheck2.Test.make ~count:200 ~name:"saturate is idempotent" gen_graph
    (fun g ->
      let s = Rdf.Saturation.saturate g in
      Rdf.Graph.equal s (Rdf.Saturation.saturate s))

let prop_saturation_monotone =
  QCheck2.Test.make ~count:200 ~name:"saturation contains original facts"
    gen_graph (fun g ->
      Rdf.Triple.Set.subset (Rdf.Graph.facts g)
        (Rdf.Graph.facts (Rdf.Saturation.saturate g)))

let prop_incremental_saturation =
  QCheck2.Test.make ~count:200 ~name:"incremental = from-scratch saturation"
    QCheck2.Gen.(pair gen_graph (list_size (int_bound 8) gen_fact))
    (fun (g, extra) ->
      let sat = Rdf.Saturation.saturate g in
      let inc = Rdf.Saturation.saturate_incremental sat extra in
      let full =
        Rdf.Saturation.saturate
          (List.fold_left (fun g t -> Rdf.Graph.add_fact t g) g extra)
      in
      Rdf.Graph.equal inc full)

let prop_dictionary_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"dictionary encode/decode roundtrip"
    QCheck2.Gen.(list_size (int_bound 50) gen_uri)
    (fun terms ->
      let d = Rdf.Dictionary.create () in
      List.for_all
        (fun t -> Rdf.Term.equal t (Rdf.Dictionary.decode d (Rdf.Dictionary.encode d t)))
        terms)

let prop_ntriples_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"ntriples parse/print roundtrip"
    QCheck2.Gen.(list_size (int_bound 20) gen_fact)
    (fun triples ->
      let back = Rdf.Ntriples.parse_string (Rdf.Ntriples.print_string triples) in
      List.length back = List.length triples
      && List.for_all2 Rdf.Triple.equal triples back)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_saturation_idempotent;
      prop_saturation_monotone;
      prop_incremental_saturation;
      prop_dictionary_roundtrip;
      prop_ntriples_roundtrip;
    ]

let () =
  Alcotest.run "rdf"
    [
      ( "term",
        [
          Alcotest.test_case "roundtrip" `Quick test_term_roundtrip;
          Alcotest.test_case "order" `Quick test_term_order;
          Alcotest.test_case "predicates" `Quick test_term_predicates;
          Alcotest.test_case "hash" `Quick test_term_hash_consistent;
        ] );
      ( "triple",
        [
          Alcotest.test_case "wellformed" `Quick test_triple_wellformed;
          Alcotest.test_case "kinds" `Quick test_triple_kinds;
        ] );
      ( "schema",
        [
          Alcotest.test_case "subclass transitivity" `Quick test_schema_subclass_transitive;
          Alcotest.test_case "subproperty transitivity" `Quick test_schema_subproperty_transitive;
          Alcotest.test_case "domain closure" `Quick test_schema_domain_closure;
          Alcotest.test_case "domain under subclass" `Quick test_schema_domain_subclass_closure;
          Alcotest.test_case "inverse typing" `Quick test_schema_inverse_typing;
          Alcotest.test_case "cyclic hierarchies" `Quick test_schema_cyclic;
          Alcotest.test_case "constraint/triple roundtrip" `Quick test_schema_triple_roundtrip;
          Alcotest.test_case "closure equality" `Quick test_schema_equal_closure;
        ] );
      ( "graph",
        [
          Alcotest.test_case "constraint routing" `Quick test_graph_routes_constraints;
          Alcotest.test_case "values" `Quick test_graph_values;
          Alcotest.test_case "add_fact rejects constraints" `Quick test_graph_add_fact_rejects_constraint;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "paper example 2" `Quick test_saturation_example2;
          Alcotest.test_case "idempotent" `Quick test_saturation_idempotent;
          Alcotest.test_case "incremental" `Quick test_saturation_incremental;
          Alcotest.test_case "entails" `Quick test_saturation_entails;
          Alcotest.test_case "range over literal" `Quick test_saturation_range_literal;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "roundtrip" `Quick test_dictionary_roundtrip;
          Alcotest.test_case "growth" `Quick test_dictionary_growth;
          Alcotest.test_case "unknown code" `Quick test_dictionary_unknown_code;
        ] );
      ( "ntriples",
        [
          Alcotest.test_case "roundtrip" `Quick test_ntriples_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_ntriples_comments_blanks;
          Alcotest.test_case "file roundtrip" `Quick test_ntriples_file_roundtrip;
        ] );
      ( "turtle",
        [
          Alcotest.test_case "parse" `Quick test_turtle_parse_basic;
          Alcotest.test_case "roundtrip" `Quick test_turtle_roundtrip;
          Alcotest.test_case "rejects unsupported" `Quick test_turtle_rejects_unsupported;
          Alcotest.test_case "file roundtrip" `Quick test_turtle_file_roundtrip;
          Alcotest.test_case "reads N-Triples" `Quick test_turtle_reads_ntriples_style;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "compact" `Quick test_namespace_compact;
          Alcotest.test_case "longest base wins" `Quick test_namespace_longest_wins;
          Alcotest.test_case "expand" `Quick test_namespace_expand;
          Alcotest.test_case "validation" `Quick test_namespace_validation;
        ] );
      ("properties", qcheck_cases);
    ]
