(* Metrics registry and histogram tests.

   1. Histogram geometry: bucket boundaries round-trip through
      [bucket_index]/[bucket_bounds], quantiles are monotone in q, and
      [merge] is associative/commutative on everything it promises
      (counts, buckets, min, max).

   2. qcheck bracketing property: for random samples and quantiles, the
      estimate brackets the true order statistic within one bucket width
      (same bucket, never below the truth).

   3. Exporters: to_prometheus and to_jsonl outputs pass
      validate_metrics.exe — the independent format/schema checker the CI
      metrics job also runs.

   4. Charge invariance: metrics-on vs metrics-off engine operation
      totals are bit-identical across all 3 engine profiles and jobs in
      {1, 4}.  This is the observability contract: recording never feeds
      back into execution. *)

module H = Metrics.Histogram

(* Real multi-domain execution on small CI machines (see test_par). *)
let () = Unix.putenv "RDFQA_JOBS_FORCE" "1"

let with_jobs j f =
  Fun.protect ~finally:(fun () -> Par.set_jobs (Par.env_jobs ())) (fun () ->
      Par.set_jobs j;
      f ())

let with_metrics b f =
  Metrics.set_enabled b;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

(* ---- bucket geometry ---- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "0 underflows" 0 (H.bucket_index 0.0);
  Alcotest.(check int) "0.5 underflows" 0 (H.bucket_index 0.5);
  Alcotest.(check int) "just below 1" 0 (H.bucket_index 0.999999);
  Alcotest.(check int) "1.0 is first finite bucket" 1 (H.bucket_index 1.0);
  (* Octave [2,4) starts right after the sub_buckets of octave [1,2). *)
  Alcotest.(check int) "2.0 starts the second octave"
    (1 + H.sub_buckets)
    (H.bucket_index 2.0);
  Alcotest.(check int) "huge value overflows"
    (H.nbuckets - 1)
    (H.bucket_index 1e30);
  let lo, hi = H.bucket_bounds 1 in
  Alcotest.(check (float 1e-9)) "first bucket lo" 1.0 lo;
  Alcotest.(check (float 1e-9))
    "first bucket width is 1/sub_buckets"
    (1.0 +. (1.0 /. float_of_int H.sub_buckets))
    hi;
  let _, over_hi = H.bucket_bounds (H.nbuckets - 1) in
  Alcotest.(check bool) "overflow bucket is unbounded" true
    (over_hi = infinity);
  (* Round-trip: every value lands inside its own bucket's bounds. *)
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      let lo, hi = H.bucket_bounds i in
      if not (lo <= v && v < hi) then
        Alcotest.failf "value %g escapes bucket %d [%g, %g)" v i lo hi)
    [ 0.0; 0.3; 1.0; 1.1; 1.9; 2.0; 3.7; 17.0; 1000.0; 123456.789; 9.9e11 ]

let test_counts_and_sum () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (H.quantile h 0.5);
  List.iter (H.observe h) [ 1.5; 2.5; 100.0; -3.0 ];
  Alcotest.(check int) "count" 4 (H.count h);
  (* the negative observation clamps to zero *)
  Alcotest.(check (float 1e-9)) "sum" 104.0 (H.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.0 (H.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (H.max_value h);
  Alcotest.(check int) "underflow bucket holds the clamp" 1
    (H.bucket_count h 0)

let test_quantile_monotone () =
  let h = H.create () in
  for i = 1 to 1000 do
    H.observe h (float_of_int i *. 0.37)
  done;
  let p50 = H.quantile h 0.5
  and p90 = H.quantile h 0.9
  and p99 = H.quantile h 0.99
  and mx = H.max_value h in
  Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
  Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= mx);
  Alcotest.(check (float 1e-9)) "q=1 clamps to max" mx (H.quantile h 1.0)

let buckets_of h =
  List.init H.nbuckets (fun i -> H.bucket_count h i)

let same_shape name a b =
  Alcotest.(check int) (name ^ " count") (H.count a) (H.count b);
  Alcotest.(check (float 1e-9)) (name ^ " min") (H.min_value a) (H.min_value b);
  Alcotest.(check (float 1e-9)) (name ^ " max") (H.max_value a) (H.max_value b);
  Alcotest.(check (list int)) (name ^ " buckets") (buckets_of a) (buckets_of b);
  Alcotest.(check (list (pair (float 1e-9) int)))
    (name ^ " cumulative") (H.cumulative a) (H.cumulative b)

let test_merge_associative () =
  let mk vs =
    let h = H.create () in
    List.iter (H.observe h) vs;
    h
  in
  let a = mk [ 0.2; 1.5; 7.0 ]
  and b = mk [ 3.0; 3.1; 900.0 ]
  and c = mk [ 0.0; 1e6 ] in
  same_shape "associativity" (H.merge (H.merge a b) c) (H.merge a (H.merge b c));
  same_shape "commutativity" (H.merge a b) (H.merge b a);
  let empty = H.create () in
  same_shape "identity" a (H.merge a empty);
  (* merged cumulative counts end at the merged total *)
  let m = H.merge a b in
  (match List.rev (H.cumulative m) with
  | (_, last) :: _ ->
      Alcotest.(check bool) "cumulative <= count" true (last <= H.count m)
  | [] -> Alcotest.fail "merged histogram lost its buckets")

(* ---- qcheck: quantile estimates bracket the true order statistic ---- *)

let prop_quantile_brackets =
  QCheck2.Test.make ~count:300
    ~name:"quantile estimate shares the true order statistic's bucket"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (float_bound_exclusive 1e7))
        (float_range 0.01 1.0))
    (fun (vs, q) ->
      let vs = List.map Float.abs vs in
      let h = H.create () in
      List.iter (H.observe h) vs;
      let est = H.quantile h q in
      let sorted = List.sort compare vs in
      let rank =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int (List.length vs))))
      in
      let truth = List.nth sorted (rank - 1) in
      let _, hi = H.bucket_bounds (H.bucket_index truth) in
      (* never below the truth, never past the truth's bucket upper
         bound: within one bucket width *)
      truth <= est && est <= hi)

(* ---- exporters pass the independent validator ---- *)

(* Same resolution dance as test_cli.ml: the validator is a sibling. *)
let validator =
  List.find Sys.file_exists
    [ "./validate_metrics.exe"; "_build/default/test/validate_metrics.exe" ]

let validate body ext =
  let path = Filename.temp_file "rqa_metrics" ext in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  let out = Filename.temp_file "rqa_metrics" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>&1" validator (Filename.quote path)
         (Filename.quote out))
  in
  let ic = open_in out in
  let report = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Sys.remove out;
  (code, report)

let populate_registry () =
  Metrics.reset ();
  Metrics.install_gc_samplers ();
  let c = Metrics.counter ~help:"test counter" "test.ops" in
  let g = Metrics.gauge ~help:"test gauge" "test.level" in
  let h = Metrics.histogram ~help:"test latencies" "test.latency_ms" in
  with_metrics true (fun () ->
      Metrics.add c 41;
      Metrics.add c 1;
      Metrics.set_gauge g 2.5;
      for i = 1 to 100 do
        Metrics.observe h (float_of_int i *. 1.3)
      done)

let test_prometheus_validates () =
  populate_registry ();
  let code, report = validate (Metrics.to_prometheus ()) ".prom" in
  if code <> 0 then Alcotest.failf "prometheus rejected: %s" report;
  Alcotest.(check int) "validator exit" 0 code

let test_jsonl_validates () =
  populate_registry ();
  let code, report = validate (Metrics.to_jsonl ()) ".jsonl" in
  if code <> 0 then Alcotest.failf "jsonl rejected: %s" report;
  Alcotest.(check int) "validator exit" 0 code

let test_validator_rejects_garbage () =
  let code, _ =
    validate "{\"type\":\"counter\",\"name\":\"x\",\"value\":-1}\n" ".jsonl"
  in
  Alcotest.(check bool) "bad meta/value rejected" true (code <> 0);
  let code, _ = validate "rdfqa_orphan 1\n" ".prom" in
  Alcotest.(check bool) "sample without TYPE rejected" true (code <> 0)

let test_registry_contract () =
  let c1 = Metrics.counter "test.idem" in
  let c2 = Metrics.counter "test.idem" in
  with_metrics true (fun () ->
      Metrics.add c1 3;
      Metrics.add c2 4);
  Alcotest.(check int) "idempotent registration shares state" 7
    (Metrics.counter_value c1);
  Alcotest.check_raises "kind mismatch raises"
    (Invalid_argument "Metrics: \"test.idem\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test.idem"));
  let c = Metrics.counter "test.gated" in
  Metrics.set_enabled false;
  Metrics.add c 5;
  Alcotest.(check int) "disabled add is a no-op" 0 (Metrics.counter_value c)

(* ---- charge invariance ---- *)

(* The analyzer's admission gate stays off, as in test_cost: the point is
   that *recording* never changes what the engine charges. *)
let () = Analysis.Cost_verify.set_enabled false

(* One shared store for every measurement.  This file used to need a
   fresh store per run: executing a query interned its dictionary-absent
   constants (the executor's encode-on-demand path), so a second run over
   the same store charged ±2 ops differently.  [Answering.warm_up] fixes
   that at the source — it pre-interns every workload constant and the
   schema vocabulary, so execution never moves the dictionary and
   operation totals are stable from the first request. *)
let shared_store =
  lazy (Workloads.Lubm.generate { Workloads.Lubm.universities = 1 })

let lubm_queries = List.map snd Workloads.Lubm.queries

let warm_system profile =
  let sys = Rqa.Answering.make ~profile (Lazy.force shared_store) in
  Rqa.Answering.warm_up sys lubm_queries;
  sys

let run_workload sys =
  List.iter
    (fun q ->
      try ignore (Rqa.Answering.answer sys Rqa.Answering.Gcov q)
      with Engine.Profile.Engine_failure _ -> ())
    lubm_queries

let total_ops_with ~metrics ~jobs profile =
  with_metrics metrics (fun () ->
      with_jobs jobs (fun () ->
          let sys = warm_system profile in
          run_workload sys;
          Engine.Executor.total_operations (Rqa.Answering.engine sys)))

let test_charge_invariance () =
  List.iter
    (fun profile ->
      List.iter
        (fun jobs ->
          let off = total_ops_with ~metrics:false ~jobs profile in
          let on = total_ops_with ~metrics:true ~jobs profile in
          Alcotest.(check int)
            (Printf.sprintf "%s jobs=%d charges bit-identical"
               profile.Engine.Profile.name jobs)
            off on)
        [ 1; 4 ])
    Engine.Profile.all

(* The tightened form of the old fresh-store workaround: two independent
   systems over the same already-warm store charge identical totals — the
   first and the N-th run of a warm server are indistinguishable. *)
let test_warmup_stability () =
  with_jobs 1 (fun () ->
      let measure () =
        let sys = warm_system Engine.Profile.postgres_like in
        Cache.set_mode (Rqa.Answering.cache sys) Cache.Off;
        run_workload sys;
        Engine.Executor.total_operations (Rqa.Answering.engine sys)
      in
      let first = measure () in
      let second = measure () in
      Alcotest.(check int) "shared-store totals stable from request 1" first
        second)

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "counts and sum" `Quick test_counts_and_sum;
          Alcotest.test_case "quantile monotone" `Quick test_quantile_monotone;
          Alcotest.test_case "merge associative" `Quick test_merge_associative;
        ] );
      ( "properties",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_quantile_brackets ] );
      ( "exporters",
        [
          Alcotest.test_case "prometheus validates" `Quick
            test_prometheus_validates;
          Alcotest.test_case "jsonl validates" `Quick test_jsonl_validates;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_validator_rejects_garbage;
          Alcotest.test_case "registry contract" `Quick test_registry_contract;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "charge totals metrics-on vs off" `Slow
            test_charge_invariance;
          Alcotest.test_case "warm-up stabilizes shared-store totals" `Quick
            test_warmup_stability;
        ] );
    ]
