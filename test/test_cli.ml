(* Integration tests for the rdfqa command-line tool: each subcommand is
   exercised against a freshly generated dataset.  The binary is run as a
   subprocess (dune provides it via the test stanza's deps); stdout is
   captured to a temp file and grepped. *)

(* Under `dune runtest` the working directory is _build/default/test; under
   a direct `dune exec test/test_cli.exe` it is the project root. *)
let exe =
  List.find Sys.file_exists
    [ "../bin/rdfqa.exe"; "_build/default/bin/rdfqa.exe" ]

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let run_capture args =
  let out = Filename.temp_file "rqa_cli" ".out" in
  (* RDFQA_VERIFY=1: the spawned binary statically verifies every plan it
     compiles, so the CLI tests double as end-to-end verifier runs. *)
  let cmd =
    Printf.sprintf "RDFQA_VERIFY=1 %s %s > %s 2>&1" exe args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove out;
  (code, body)

let data_file =
  lazy
    (let path = Filename.temp_file "rqa_cli" ".nt" in
     let code, body =
       run_capture (Printf.sprintf "generate -w lubm -n 1 -o %s" path)
     in
     Alcotest.(check int) "generate exit code" 0 code;
     Alcotest.(check bool) "generate reports facts" true
       (contains body "wrote" && contains body "schema constraints");
     path)

let test_generate () = ignore (Lazy.force data_file)

let test_query_gcov () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf
         "query -d %s --workload-query lubm:Q01 -s gcov --show-cover" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "row count line" true (contains body "rows (GCov");
  Alcotest.(check bool) "cover line" true (contains body "-- cover:")

let test_query_strategies_agree () =
  let data = Lazy.force data_file in
  let rows strategy =
    let _, body =
      run_capture
        (Printf.sprintf
           "query -d %s --workload-query lubm:Q03 -s %s --limit 0" data
           strategy)
    in
    body
  in
  let extract body =
    (* the summary line starts with "-- N rows" *)
    List.find_map
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | "--" :: n :: "rows" :: _ -> int_of_string_opt n
        | _ -> None)
      (String.split_on_char '\n' body)
  in
  let sat = extract (rows "saturation") in
  let ucq = extract (rows "ucq") in
  let gcov = extract (rows "gcov") in
  Alcotest.(check bool) "parsed" true (sat <> None && ucq <> None && gcov <> None);
  Alcotest.(check bool) "saturation = ucq = gcov" true (sat = ucq && ucq = gcov)

let test_query_engine_failure_exit_code () =
  let data = Lazy.force data_file in
  (* Q28's UCQ exceeds every engine's union capacity: exit code 1. *)
  let code, body =
    run_capture
      (Printf.sprintf "query -d %s --workload-query lubm:Q28 -s ucq" data)
  in
  Alcotest.(check int) "failure exit code" 1 code;
  Alcotest.(check bool) "failure message" true (contains body "ENGINE FAILURE")

let test_reformulate () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf
         "reformulate -d %s -q 'SELECT ?x WHERE { ?x a \
          <http://swat.cse.lehigh.edu/onto/univ-bench.owl#Student> }'"
         data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "term count" true (contains body "union terms")

let test_reformulate_minimize () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf
         "reformulate -d %s --minimize --workload-query lubm:Q02" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "term count" true (contains body "union terms")

let test_explain_plan () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf "explain -d %s --workload-query lubm:Q01 --plan" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "gcov line" true (contains body "GCov picks");
  Alcotest.(check bool) "plan printed" true (contains body "Project head")

let test_sql () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf "sql -d %s --workload-query lubm:Q01" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "select" true (contains body "SELECT DISTINCT");
  Alcotest.(check bool) "triples table" true (contains body "Triples t0")

let test_turtle_workflow () =
  let path = Filename.temp_file "rqa_cli" ".ttl" in
  let code, _ = run_capture (Printf.sprintf "generate -w dblp -n 100 -o %s" path) in
  Alcotest.(check int) "generate ttl" 0 code;
  let code, body =
    run_capture
      (Printf.sprintf "query -d %s --workload-query dblp:Q01 -s gcov --limit 0" path)
  in
  Sys.remove path;
  Alcotest.(check int) "query over ttl" 0 code;
  Alcotest.(check bool) "has rows" true (contains body "rows (GCov")

(* ---- tracing ---- *)

(* Same resolution dance as [exe]: the validator lives next to this test. *)
let validator =
  List.find Sys.file_exists
    [ "./validate_trace.exe"; "_build/default/test/validate_trace.exe" ]

let read_file path =
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let validate_trace path =
  let out = Filename.temp_file "rqa_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>&1" validator (Filename.quote path)
         (Filename.quote out))
  in
  let body = read_file out in
  Sys.remove out;
  (code, body)

let test_query_trace () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf
         "query -d %s --workload-query lubm:Q01 -s gcov --trace" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "explain analyze tree" true
    (contains body "EXPLAIN ANALYZE");
  Alcotest.(check bool) "estimated and actual cardinalities" true
    (contains body "est=" && contains body "actual=");
  Alcotest.(check bool) "span summary" true (contains body "exec.");
  Alcotest.(check bool) "engine counters" true (contains body "-- engine:")

let test_trace_subcommand () =
  let data = Lazy.force data_file in
  let jsonl = Filename.temp_file "rqa_cli" ".jsonl" in
  let chrome = Filename.temp_file "rqa_cli" ".trace" in
  let code, body =
    run_capture
      (Printf.sprintf
         "trace -d %s --workload-query lubm:Q01 -s gcov -o %s --chrome %s"
         data jsonl chrome)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "row summary" true (contains body "rows");
  let vcode, vbody = validate_trace jsonl in
  Alcotest.(check int) "jsonl validates" 0 vcode;
  Alcotest.(check bool) "validator summary" true (contains vbody "OK:");
  Alcotest.(check bool) "trace has op lines" true (contains vbody "op=");
  Alcotest.(check bool) "trace has span lines" true (contains vbody "span=");
  let cbody = read_file chrome in
  Alcotest.(check bool) "chrome trace events" true
    (contains cbody "\"traceEvents\"" && contains cbody "\"ph\":\"X\"");
  Sys.remove jsonl;
  Sys.remove chrome

let test_trace_workload_calibration () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture (Printf.sprintf "trace -d %s -w lubm -s gcov" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "per-query rows" true (contains body "Q01");
  Alcotest.(check bool) "calibration report" true
    (contains body "Calibration report" && contains body "median q")

let test_check_trace_out () =
  let path = Filename.temp_file "rqa_cli" ".jsonl" in
  let code, _ =
    run_capture (Printf.sprintf "check -w lubm --trace-out %s" path)
  in
  Alcotest.(check int) "exit code" 0 code;
  let vcode, vbody = validate_trace path in
  Sys.remove path;
  Alcotest.(check int) "check trace validates" 0 vcode;
  Alcotest.(check bool) "check span recorded" true (contains vbody "span=")

(* --jobs N must not change anything observable: answer rows, the engine
   work accounting and the chosen cover are compared line-for-line (only
   timing lines may differ).  Runs under RDFQA_VERIFY=1 like every CLI
   test, so the verifier also sees the parallel plans. *)
let test_query_jobs_deterministic () =
  let data = Lazy.force data_file in
  let observable body =
    String.split_on_char '\n' body
    |> List.filter (fun l ->
           (* timing lines, and the honest clamp note that only the
              jobs=4 invocation prints on machines with fewer cores *)
           not (contains l "ms" || contains l "clamped"))
    |> String.concat "\n"
  in
  let code1, body1 =
    run_capture
      (Printf.sprintf
         "query -d %s --workload-query lubm:Q02 -s gcov --show-cover" data)
  in
  let code4, body4 =
    run_capture
      (Printf.sprintf
         "query -d %s --workload-query lubm:Q02 -s gcov --show-cover \
          --jobs 4"
         data)
  in
  Alcotest.(check int) "jobs=1 exit code" 0 code1;
  Alcotest.(check int) "jobs=4 exit code" 0 code4;
  Alcotest.(check bool) "engine counters present" true
    (contains body1 "-- engine:");
  Alcotest.(check string) "identical output modulo timings"
    (observable body1) (observable body4)

let test_trace_jobs () =
  let data = Lazy.force data_file in
  let jsonl = Filename.temp_file "rqa_cli" ".jsonl" in
  let code, _ =
    run_capture
      (Printf.sprintf
         "trace -d %s --workload-query lubm:Q01 -s gcov -o %s --jobs 4" data
         jsonl)
  in
  Alcotest.(check int) "exit code" 0 code;
  let vcode, vbody = validate_trace jsonl in
  let meta_jobs = contains (read_file jsonl) "\"jobs\":4" in
  Sys.remove jsonl;
  Alcotest.(check int) "jobs=4 trace validates" 0 vcode;
  Alcotest.(check bool) "validator summary" true (contains vbody "OK:");
  Alcotest.(check bool) "meta line records jobs" true meta_jobs

(* ---- check: exit-code contract and static cost analysis ----

   The documented contract: 0 clean (infos allowed), 1 warnings promoted
   by --strict, 2 error diagnostics. *)

let write_query content =
  let path = Filename.temp_file "rqa_cli" ".rq" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_check_exit_clean () =
  let q = write_query "SELECT ?x WHERE { ?x <http://ex/p> ?y }" in
  let code, body = run_capture (Printf.sprintf "check %s --strict" q) in
  Sys.remove q;
  Alcotest.(check int) "clean query exits 0 even under --strict" 0 code;
  Alcotest.(check bool) "reported clean" true (contains body "clean")

let test_check_exit_strict_warning () =
  (* a property the data's schema does not declare: QL004, a warning *)
  let data = Lazy.force data_file in
  let q = write_query "SELECT ?x WHERE { ?x <http://ex/p> ?y }" in
  let lax, _ = run_capture (Printf.sprintf "check %s -d %s" q data) in
  let strict, body =
    run_capture (Printf.sprintf "check %s -d %s --strict" q data)
  in
  Sys.remove q;
  Alcotest.(check int) "warnings alone exit 0" 0 lax;
  Alcotest.(check int) "warnings exit 1 under --strict" 1 strict;
  Alcotest.(check bool) "QL004 reported" true (contains body "QL004")

let test_check_exit_error () =
  (* disconnected join graph: the covers violate Definition 3.3 (CV006 /
     CV007 errors) on top of the QL002 lint warning *)
  let q =
    write_query
      "SELECT ?x ?y WHERE { ?x <http://ex/p> ?a . ?y <http://ex/q> ?b }"
  in
  let code, body = run_capture (Printf.sprintf "check %s" q) in
  Sys.remove q;
  Alcotest.(check int) "errors exit 2" 2 code;
  Alcotest.(check bool) "cover errors reported" true
    (contains body "CV006" || contains body "CV007");
  Alcotest.(check bool) "lint warning reported too" true
    (contains body "QL002")

let test_check_unparseable_query () =
  (* the parser refuses a head variable absent from the body *)
  let q = write_query "SELECT ?z WHERE { ?x <http://ex/p> ?y }" in
  let code, body = run_capture (Printf.sprintf "check %s" q) in
  Sys.remove q;
  Alcotest.(check int) "bad query exits 2, not a crash" 2 code;
  Alcotest.(check bool) "parse failure reported" true
    (contains body "bad query")

let test_check_cost () =
  let code, body = run_capture "check -w lubm --cost --strict" in
  Alcotest.(check int) "cost check over LUBM exits 0" 0 code;
  Alcotest.(check bool) "operation intervals reported" true
    (contains body "static operation interval");
  Alcotest.(check bool) "verdict codes present" true
    (contains body "CB002" || contains body "CB004");
  Alcotest.(check bool) "parallel-safety lint ran clean" true
    (contains body "parallel-safety: clean")

let test_check_cost_budget () =
  (* an absurdly small budget makes every plan provably over budget *)
  let code, body =
    run_capture "check -w lubm --cost --budget 1 --machine"
  in
  Alcotest.(check int) "provable failures exit 2" 2 code;
  Alcotest.(check bool) "CB001 reported" true (contains body "CB001")

let test_check_codes_machine () =
  let code, body = run_capture "check --codes --machine" in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "tab-separated code lines" true
    (contains body "CB001\t" && contains body "QL001\t");
  Alcotest.(check bool) "all CB codes present" true
    (List.for_all
       (fun c -> contains body c)
       [ "CB001"; "CB002"; "CB003"; "CB004"; "CB005"; "CB006"; "CB007";
         "CB008"; "CB009" ])

(* ---- stats / metrics ---- *)

let metrics_validator =
  List.find Sys.file_exists
    [ "./validate_metrics.exe"; "_build/default/test/validate_metrics.exe" ]

let validate_metrics ?(require = []) path =
  let out = Filename.temp_file "rqa_cli" ".out" in
  let req =
    match require with
    | [] -> ""
    | fams -> Printf.sprintf "--require %s " (String.concat "," fams)
  in
  let code =
    Sys.command
      (Printf.sprintf "%s %s%s > %s 2>&1" metrics_validator req
         (Filename.quote path) (Filename.quote out))
  in
  let body = read_file out in
  Sys.remove out;
  (code, body)

let test_stats () =
  let prom = Filename.temp_file "rqa_cli" ".prom" in
  let jsonl = Filename.temp_file "rqa_cli" ".jsonl" in
  let code, body =
    run_capture
      (Printf.sprintf "stats -w lubm --repeat 2 --prom %s --json %s" prom
         jsonl)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "summary line" true (contains body "passes (GCov");
  Alcotest.(check bool) "latency histogram reported" true
    (contains body "query.latency_ms");
  Alcotest.(check bool) "admission tallies reported" true
    (contains body "admission.");
  (* the view tier's families must be registered (hence exported) even
     when no views were installed during the run *)
  let pcode, pbody =
    validate_metrics
      ~require:
        [
          "rdfqa_views_hits_total";
          "rdfqa_views_misses_total";
          "rdfqa_views_rematerializations_total";
          "rdfqa_views_count";
          "rdfqa_views_bytes";
        ]
      prom
  in
  let jcode, jbody =
    validate_metrics
      ~require:
        [
          "views.hits";
          "views.misses";
          "views.rematerializations";
          "views.count";
          "views.bytes";
        ]
      jsonl
  in
  Sys.remove prom;
  Sys.remove jsonl;
  Alcotest.(check int) "prometheus validates" 0 pcode;
  Alcotest.(check bool) "prometheus summary" true (contains pbody "ok");
  Alcotest.(check int) "jsonl validates" 0 jcode;
  Alcotest.(check bool) "jsonl summary" true (contains jbody "ok")

let test_query_metrics_and_repeat () =
  let data = Lazy.force data_file in
  let code, body =
    run_capture
      (Printf.sprintf
         "query -d %s --workload-query lubm:Q01 -s gcov --limit 0 --repeat 3 \
          --metrics" data)
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool) "repeat quantiles" true
    (contains body "-- repeat: 3 passes" && contains body "p99");
  Alcotest.(check bool) "metrics dump" true (contains body "-- metrics:");
  Alcotest.(check bool) "gc gauges sampled" true (contains body "gc.heap_words")

let test_bad_arguments () =
  let code, _ = run_capture "query --workload-query lubm:Q01" in
  Alcotest.(check bool) "missing --data rejected" true (code <> 0);
  let data = Lazy.force data_file in
  let code, _ =
    run_capture (Printf.sprintf "query -d %s" data)
  in
  Alcotest.(check int) "missing query rejected" 2 code

let () =
  Alcotest.run "cli"
    [
      ( "rdfqa",
        [
          Alcotest.test_case "generate" `Quick test_generate;
          Alcotest.test_case "query gcov" `Quick test_query_gcov;
          Alcotest.test_case "strategies agree" `Quick test_query_strategies_agree;
          Alcotest.test_case "engine failure exit code" `Quick test_query_engine_failure_exit_code;
          Alcotest.test_case "reformulate" `Quick test_reformulate;
          Alcotest.test_case "reformulate --minimize" `Quick test_reformulate_minimize;
          Alcotest.test_case "explain --plan" `Quick test_explain_plan;
          Alcotest.test_case "sql" `Quick test_sql;
          Alcotest.test_case "turtle workflow" `Quick test_turtle_workflow;
          Alcotest.test_case "query --trace" `Quick test_query_trace;
          Alcotest.test_case "trace subcommand" `Quick test_trace_subcommand;
          Alcotest.test_case "trace workload calibration" `Quick
            test_trace_workload_calibration;
          Alcotest.test_case "check --trace-out" `Quick test_check_trace_out;
          Alcotest.test_case "check exit code 0 (clean)" `Quick
            test_check_exit_clean;
          Alcotest.test_case "check exit code 1 (strict warnings)" `Quick
            test_check_exit_strict_warning;
          Alcotest.test_case "check exit code 2 (errors)" `Quick
            test_check_exit_error;
          Alcotest.test_case "check rejects unparseable query" `Quick
            test_check_unparseable_query;
          Alcotest.test_case "check --cost" `Quick test_check_cost;
          Alcotest.test_case "check --cost --budget" `Quick
            test_check_cost_budget;
          Alcotest.test_case "check --codes --machine" `Quick
            test_check_codes_machine;
          Alcotest.test_case "query --jobs deterministic" `Quick
            test_query_jobs_deterministic;
          Alcotest.test_case "trace --jobs 4" `Quick test_trace_jobs;
          Alcotest.test_case "stats exports validate" `Quick test_stats;
          Alcotest.test_case "query --metrics --repeat" `Quick
            test_query_metrics_and_repeat;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
        ] );
    ]
