(* Tests for the execution engine: relations, CQ/UCQ/JUCQ evaluation
   against the naive reference evaluator, engine-profile failure modes and
   SQL rendering. *)

open Query

(* Every plan compiled while this suite runs goes through the static
   plan verifier: a schema or cover violation fails the tests. *)
let () = Analysis.Plan_verify.set_enabled true

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let rows_t =
  Alcotest.testable
    (fun fmt rs ->
      Format.pp_print_string fmt
        (String.concat " | "
           (List.map
              (fun r -> String.concat "," (List.map Rdf.Term.to_string r))
              rs)))
    (List.equal (List.equal Rdf.Term.equal))

(* ---- Relation ---- *)

let test_relation_basics () =
  let r = Engine.Relation.create ~cols:2 in
  Engine.Relation.append r [| 1; 2 |];
  Engine.Relation.append r [| 3; 4 |];
  Engine.Relation.append r [| 1; 2 |];
  Alcotest.(check int) "rows" 3 (Engine.Relation.rows r);
  Alcotest.(check int) "get" 4 (Engine.Relation.get r 1 1);
  Alcotest.(check int) "dedup" 2 (Engine.Relation.rows (Engine.Relation.dedup r));
  let p = Engine.Relation.project r [| 1 |] in
  Alcotest.(check int) "projected cols" 1 (Engine.Relation.cols p);
  Alcotest.(check int) "projected value" 2 (Engine.Relation.get p 0 0)

let test_relation_arity_check () =
  let r = Engine.Relation.create ~cols:2 in
  Alcotest.(check bool) "arity mismatch raises" true
    (try Engine.Relation.append r [| 1 |]; false
     with Invalid_argument _ -> true)

let test_relation_zero_arity () =
  let r = Engine.Relation.create ~cols:0 in
  Engine.Relation.append r [||];
  Engine.Relation.append r [||];
  Alcotest.(check int) "dedup boolean" 1
    (Engine.Relation.rows (Engine.Relation.dedup r))

(* ---- fixtures ---- *)

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "A", u "B");
      Rdf.Schema.Subproperty (u "p", u "q");
      Rdf.Schema.Domain (u "p", u "A");
    ]

let graph =
  Rdf.Graph.make schema
    [
      tr (u "x1") typ (u "A");
      tr (u "x1") (u "p") (u "y1");
      tr (u "x2") (u "p") (u "y2");
      tr (u "x2") (u "q") (u "y1");
      tr (u "y1") (u "r") (u "x2");
      tr (u "x3") typ (u "B");
    ]

let store () = Store.Encoded_store.of_graph graph

let reformulator = Reformulation.Reformulate.create schema
let reformulate q = Reformulation.Reformulate.reformulate reformulator q

(* ---- CQ evaluation vs naive ---- *)

let queries_for_comparison =
  [
    Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "A")) ];
    Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ];
    Bgp.make [ v "x"; v "z" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "r")) (v "z");
      ];
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (v "pp") (v "y");
        Bgp.atom (v "y") (c (u "r")) (v "z");
      ];
    (* repeated variable inside one atom *)
    Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "x") ];
    (* constant head *)
    Bgp.make [ v "x"; c (u "A") ] [ Bgp.atom (v "x") (c typ) (c (u "A")) ];
  ]

let test_head_constant_absent_from_data () =
  (* Regression: reformulation produces heads carrying schema classes that
     may never occur in the data; they are outputs, not selections. *)
  let ex = Engine.Executor.create (store ()) in
  let q =
    Bgp.make [ v "x"; c (u "Phantom") ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ]
  in
  let got = Engine.Executor.decode ex (Engine.Executor.eval_cq ex q) in
  Alcotest.check rows_t "phantom head" (Bgp.eval graph q) got

let test_cq_matches_naive () =
  let ex = Engine.Executor.create (store ()) in
  List.iter
    (fun q ->
      let got = Engine.Executor.decode ex (Engine.Executor.eval_cq ex q) in
      Alcotest.check rows_t (Bgp.to_string q) (Bgp.eval graph q) got)
    queries_for_comparison

let test_ucq_matches_naive () =
  let ex = Engine.Executor.create (store ()) in
  List.iter
    (fun q ->
      let ucq = reformulate q in
      let got = Engine.Executor.decode ex (Engine.Executor.eval_ucq ex ucq) in
      Alcotest.check rows_t ("ucq " ^ Bgp.to_string q) (Ucq.eval graph ucq) got)
    queries_for_comparison

let test_jucq_matches_reference () =
  let ex = Engine.Executor.create (store ()) in
  let q =
    Bgp.make [ v "x"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "x") (c (u "q")) (v "y");
        Bgp.atom (v "y") (c (u "r")) (v "z");
      ]
  in
  List.iter
    (fun cover ->
      let j = Jucq.make ~reformulate q cover in
      let got = Engine.Executor.decode ex (Engine.Executor.eval_jucq ex j) in
      Alcotest.check rows_t
        ("cover " ^ Jucq.cover_to_string cover)
        (Jucq.eval graph j) got)
    [
      Jucq.ucq_cover q;
      Jucq.scq_cover q;
      [ [ 0; 1 ]; [ 2 ] ];
      [ [ 0; 1 ]; [ 1; 2 ] ];
    ]

let test_jucq_equals_answer () =
  (* Theorem 3.1 end to end: any cover-based JUCQ evaluated by the engine
     yields q(db∞). *)
  let ex = Engine.Executor.create (store ()) in
  let q =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c typ) (c (u "B"));
        Bgp.atom (v "x") (c (u "q")) (v "y");
      ]
  in
  let expected = Bgp.answer graph q in
  List.iter
    (fun cover ->
      let j = Jucq.make ~reformulate q cover in
      Alcotest.check rows_t
        ("cover " ^ Jucq.cover_to_string cover)
        expected
        (Engine.Executor.decode ex (Engine.Executor.eval_jucq ex j)))
    [ Jucq.ucq_cover q; Jucq.scq_cover q ]

let test_block_nested_loop_join_agrees () =
  let q =
    Bgp.make [ v "x"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "x") (c (u "q")) (v "y");
      ]
  in
  let j = Jucq.make ~reformulate q (Jucq.scq_cover q) in
  let hash_ex =
    Engine.Executor.create ~profile:Engine.Profile.postgres_like (store ())
  in
  let bnl_ex =
    Engine.Executor.create ~profile:Engine.Profile.mysql_like (store ())
  in
  Alcotest.check rows_t "hash = bnl"
    (Engine.Executor.decode hash_ex (Engine.Executor.eval_jucq hash_ex j))
    (Engine.Executor.decode bnl_ex (Engine.Executor.eval_jucq bnl_ex j))

let test_join_order_avoids_cartesian () =
  (* Chain query x -p-> y -q-> z -r-> w; with single-triple fragments, a
     size-only join order would cross the p- and r-fragments (500 x 500
     rows) before q connects them.  The greedy connected order keeps the
     intermediate results linear; the work meter proves it. *)
  let triples =
    List.concat
      (List.init 500 (fun i ->
           let e k = u (Printf.sprintf "%s%d" k i) in
           [
             tr (e "x") (u "p") (e "y");
             tr (e "y") (u "q") (e "z");
             tr (e "z") (u "r") (e "w");
           ]))
  in
  let st = Store.Encoded_store.of_graph (Rdf.Graph.of_triples triples) in
  let ex = Engine.Executor.create st in
  let q =
    Bgp.make [ v "x"; v "w" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "q")) (v "z");
        Bgp.atom (v "z") (c (u "r")) (v "w");
      ]
  in
  let ident cq = Ucq.of_cqs [ cq ] in
  let j = Jucq.make ~reformulate:ident q (Jucq.scq_cover q) in
  let result = Engine.Executor.eval_jucq ex j in
  Alcotest.(check int) "500 chains" 500 (Engine.Relation.rows result);
  Alcotest.(check bool)
    (Printf.sprintf "linear work (%d ops)" (Engine.Executor.last_operations ex))
    true
    (Engine.Executor.last_operations ex < 50_000)

(* ---- failure modes ---- *)

let tiny_profile =
  {
    Engine.Profile.postgres_like with
    Engine.Profile.name = "tiny";
    max_union_terms = 2;
    max_materialized_rows = 1000;
    max_operations = 1000000;
  }

let test_union_capacity_failure () =
  let ex = Engine.Executor.create ~profile:tiny_profile (store ()) in
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c typ) (c (u "B")) ] in
  let ucq = reformulate q in
  Alcotest.(check bool) "enough terms" true (Ucq.cardinal ucq > 2);
  Alcotest.(check bool) "union capacity failure" true
    (try ignore (Engine.Executor.eval_ucq ex ucq); false
     with Engine.Profile.Engine_failure
            { reason = Engine.Profile.Union_capacity _; _ } -> true)

let test_materialization_failure () =
  let profile =
    { tiny_profile with Engine.Profile.max_union_terms = 100;
      max_materialized_rows = 2 }
  in
  let ex = Engine.Executor.create ~profile (store ()) in
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (v "pp") (v "y") ] in
  let ucq = Ucq.of_cqs [ q ] in
  Alcotest.(check bool) "materialization failure" true
    (try ignore (Engine.Executor.eval_ucq ex ucq); false
     with Engine.Profile.Engine_failure
            { reason = Engine.Profile.Materialization_overflow _; _ } -> true)

let test_operation_budget_failure () =
  let profile =
    { tiny_profile with Engine.Profile.max_union_terms = 100;
      max_operations = 3 }
  in
  let ex = Engine.Executor.create ~profile (store ()) in
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (v "pp") (v "y") ] in
  Alcotest.(check bool) "operation budget failure" true
    (try ignore (Engine.Executor.eval_cq ex q); false
     with Engine.Profile.Engine_failure
            { reason = Engine.Profile.Operation_budget _; _ } -> true)

let test_operations_metered () =
  let ex = Engine.Executor.create (store ()) in
  let q = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  ignore (Engine.Executor.eval_cq ex q);
  Alcotest.(check bool) "ops counted" true (Engine.Executor.last_operations ex > 0)

(* ---- explain ---- *)

let test_explain_positive_and_monotone () =
  let ex = Engine.Executor.create (store ()) in
  let q =
    Bgp.make [ v "x"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "x") (c (u "q")) (v "y");
      ]
  in
  let cost cover =
    Engine.Executor.explain_cost ex (Jucq.make ~reformulate q cover)
  in
  let cu = cost (Jucq.ucq_cover q) and cs = cost (Jucq.scq_cover q) in
  Alcotest.(check bool) "positive" true (cu > 0.0 && cs > 0.0)

(* substring containment, avoiding a Str dependency *)
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- SQL rendering ---- *)

let test_sql_cq () =
  let st = store () in
  let q =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c typ) (c (u "A"));
        Bgp.atom (v "x") (c (u "p")) (v "y");
      ]
  in
  let sql = Engine.Sql.cq st q in
  Alcotest.(check bool) "mentions Triples twice" true
    (List.length (String.split_on_char 't' sql) > 2);
  Alcotest.(check bool) "has join predicate" true
    (contains sql "t1.s = t0.s")

let test_sql_missing_constant () =
  let st = store () in
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "nosuch")) (v "y") ] in
  let sql = Engine.Sql.cq st q in
  Alcotest.(check bool) "always-false predicate" true
    (contains sql "1 = 0")

let test_sql_union_and_jucq () =
  let st = store () in
  let q =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c typ) (c (u "B"));
        Bgp.atom (v "x") (c (u "q")) (v "y");
      ]
  in
  let sql_u = Engine.Sql.ucq st (reformulate q) in
  Alcotest.(check bool) "has UNION" true
    (contains sql_u "UNION");
  let j = Jucq.make ~reformulate q (Jucq.scq_cover q) in
  let sql_j = Engine.Sql.jucq st j in
  Alcotest.(check bool) "join of fragments" true
    (contains sql_j "f0.x = f1.x")

(* ---- Plan ---- *)

let test_plan_describe () =
  let ex = Engine.Executor.create (store ()) in
  let q =
    Bgp.make [ v "x"; v "k" ]
      [
        Bgp.atom (v "x") (c typ) (v "k");
        Bgp.atom (v "x") (c (u "q")) (v "y");
      ]
  in
  let j = Jucq.make ~reformulate q (Jucq.scq_cover q) in
  let plan = Engine.Plan.describe ex j in
  Alcotest.(check int) "two fragments" 2 (List.length plan.Engine.Plan.fragments);
  (* fragments sorted by estimated rows, ascending *)
  (match plan.Engine.Plan.fragments with
  | [ a; b ] ->
      Alcotest.(check bool) "ascending" true
        (a.Engine.Plan.estimated_rows <= b.Engine.Plan.estimated_rows)
  | _ -> Alcotest.fail "expected two fragments");
  let text = Engine.Plan.to_string plan in
  Alcotest.(check bool) "mentions dedup" true (contains text "Dedup");
  Alcotest.(check bool) "mentions hash join" true (contains text "Fragment")

(* ---- qcheck: engine vs naive on random data ---- *)

let gen_node = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 5))
let gen_propt = QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 3))

let gen_graph =
  QCheck2.Gen.(
    map
      (fun triples -> Rdf.Graph.of_triples triples)
      (list_size (int_bound 40)
         (let* s = gen_node and* p = gen_propt and* o = gen_node in
          return (tr s p o))))

let gen_chain_query =
  QCheck2.Gen.(
    let* n = int_range 1 3 in
    let* props = list_size (return n) gen_propt in
    let atoms =
      List.mapi
        (fun i p ->
          Bgp.atom
            (v (Printf.sprintf "x%d" i))
            (c p)
            (v (Printf.sprintf "x%d" (i + 1))))
        props
    in
    return (Bgp.make [ v "x0" ] atoms))

let prop_engine_matches_naive =
  QCheck2.Test.make ~count:300 ~name:"engine CQ evaluation = naive evaluation"
    QCheck2.Gen.(pair gen_graph gen_chain_query)
    (fun (g, q) ->
      let ex = Engine.Executor.create (Store.Encoded_store.of_graph g) in
      Engine.Executor.decode ex (Engine.Executor.eval_cq ex q) = Bgp.eval g q)

let prop_jucq_covers_consistent =
  QCheck2.Test.make ~count:200
    ~name:"engine JUCQ = engine UCQ for identity reformulation"
    QCheck2.Gen.(pair gen_graph gen_chain_query)
    (fun (g, q) ->
      let ex = Engine.Executor.create (Store.Encoded_store.of_graph g) in
      let ident cq = Ucq.of_cqs [ cq ] in
      let direct = Engine.Executor.decode ex (Engine.Executor.eval_cq ex q) in
      List.for_all
        (fun cover ->
          match Jucq.check_cover q cover with
          | Error _ -> true
          | Ok () ->
              let j = Jucq.make ~reformulate:ident q cover in
              Engine.Executor.decode ex (Engine.Executor.eval_jucq ex j)
              = direct)
        [ Jucq.ucq_cover q; Jucq.scq_cover q ])

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_engine_matches_naive; prop_jucq_covers_consistent ]

(* ---- differential: physical operators vs naive references ---- *)

(* The join operators and the RowTable-backed dedup are exercised against
   straight list-based reference implementations on randomized inputs:
   narrow value domains force duplicate keys, widths include the 0-column
   degenerate shape, and sizes include empty relations. *)

let rel_of_rows ~cols rows =
  let r = Engine.Relation.create ~cols in
  List.iter (fun row -> Engine.Relation.append r (Array.of_list row)) rows;
  r

let rows_of_rel r = List.map Array.to_list (Engine.Relation.to_list r)

let sorted_rows rows = List.sort compare rows

(* Reference join: nested loops over lists, matching on shared column
   names; output is [a]'s row followed by [b]'s non-shared columns — the
   operators' documented schema. *)
let ref_join (acols, arows) (bcols, brows) =
  let shared = List.filter (fun v -> List.mem v bcols) acols in
  let b_only = List.filter (fun v -> not (List.mem v shared)) bcols in
  let pos cols v =
    let rec go i = function
      | [] -> assert false
      | c :: _ when String.equal c v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 cols
  in
  List.concat_map
    (fun ra ->
      List.filter_map
        (fun rb ->
          if
            List.for_all
              (fun v -> List.nth ra (pos acols v) = List.nth rb (pos bcols v))
              shared
          then Some (ra @ List.map (fun v -> List.nth rb (pos bcols v)) b_only)
          else None)
        brows)
    arows

let ref_dedup rows =
  List.rev
    (List.fold_left
       (fun acc r -> if List.mem r acc then acc else r :: acc)
       [] rows)

(* A pair of named relations with a random (possibly empty) set of shared
   column names, random shared-column placement in [b], and values drawn
   from a tiny domain so keys collide often. *)
let gen_named_pair =
  QCheck2.Gen.(
    let gen_row width = list_size (return width) (int_bound 3) in
    let gen_rows width = list_size (int_bound 8) (gen_row width) in
    let* na = int_bound 3 in
    let* nshared = int_bound na in
    let* nb_extra = int_bound (3 - nshared) in
    let acols = List.init na (fun i -> Printf.sprintf "a%d" i) in
    let shared = List.filteri (fun i _ -> i < nshared) acols in
    let extra = List.init nb_extra (fun i -> Printf.sprintf "b%d" i) in
    let* shared_first = bool in
    let bcols = if shared_first then shared @ extra else extra @ shared in
    let* arows = gen_rows na and* brows = gen_rows (List.length bcols) in
    return ((acols, arows), (bcols, brows)))

let named (cols, rows) =
  {
    Engine.Executor.columns = cols;
    rel = rel_of_rows ~cols:(List.length cols) rows;
  }

let prop_hash_join_matches_reference =
  QCheck2.Test.make ~count:500 ~name:"hash_join = reference join"
    gen_named_pair
    (fun (a, b) ->
      let ex = Engine.Executor.create (store ()) in
      let j = Engine.Executor.hash_join ex (named a) (named b) in
      (* bag semantics, row order unspecified: compare sorted multisets *)
      sorted_rows (rows_of_rel j.Engine.Executor.rel)
      = sorted_rows (ref_join a b))

let prop_bnl_join_matches_reference =
  QCheck2.Test.make ~count:500 ~name:"block_nested_loop_join = reference join"
    gen_named_pair
    (fun (a, b) ->
      let ex = Engine.Executor.create (store ()) in
      let j = Engine.Executor.block_nested_loop_join ex (named a) (named b) in
      sorted_rows (rows_of_rel j.Engine.Executor.rel)
      = sorted_rows (ref_join a b))

let prop_dedup_matches_reference =
  QCheck2.Test.make ~count:500 ~name:"RowTable dedup = reference dedup"
    QCheck2.Gen.(
      let* cols = int_bound 3 in
      let* rows =
        list_size (int_bound 20) (list_size (return cols) (int_bound 2))
      in
      return (cols, rows))
    (fun (cols, rows) ->
      (* dedup keeps first occurrences in input order: compare exactly *)
      rows_of_rel (Engine.Relation.dedup (rel_of_rows ~cols rows))
      = ref_dedup rows)

let differential_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_hash_join_matches_reference;
      prop_bnl_join_matches_reference;
      prop_dedup_matches_reference;
    ]

(* All three engine profiles must agree on the answers they can compute:
   the LUBM workload evaluated per profile with the GCov strategy, skipping
   (profile, query) pairs the profile's capacities reject.  The
   postgres-like profile must succeed everywhere at this scale. *)
let test_profiles_agree_on_lubm () =
  let store = Workloads.Lubm.generate { Workloads.Lubm.universities = 1 } in
  let reformulator =
    Reformulation.Reformulate.create Workloads.Lubm.schema
  in
  let systems =
    List.map
      (fun p -> (p.Engine.Profile.name, Rqa.Answering.make ~profile:p ~reformulator store))
      Engine.Profile.all
  in
  List.iter
    (fun (qname, q) ->
      let answers =
        List.filter_map
          (fun (pname, sys) ->
            match Rqa.Answering.answer_terms sys Rqa.Answering.Gcov q with
            | rows -> Some (pname, rows)
            | exception Engine.Profile.Engine_failure _ ->
                Alcotest.(check bool)
                  (qname ^ ": postgres-like must succeed")
                  false
                  (String.equal pname "postgres-like");
                None)
          systems
      in
      match answers with
      | [] -> Alcotest.fail (qname ^ ": no profile succeeded")
      | (p0, rows0) :: rest ->
          List.iter
            (fun (p, rows) ->
              Alcotest.check rows_t
                (Printf.sprintf "%s: %s = %s" qname p p0)
                rows0 rows)
            rest)
    Workloads.Lubm.queries

let () =
  Alcotest.run "engine"
    [
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "zero arity" `Quick test_relation_zero_arity;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "cq = naive" `Quick test_cq_matches_naive;
          Alcotest.test_case "head constant absent from data" `Quick test_head_constant_absent_from_data;
          Alcotest.test_case "ucq = naive" `Quick test_ucq_matches_naive;
          Alcotest.test_case "jucq = reference" `Quick test_jucq_matches_reference;
          Alcotest.test_case "jucq = answer (Thm 3.1)" `Quick test_jucq_equals_answer;
          Alcotest.test_case "bnl join = hash join" `Quick test_block_nested_loop_join_agrees;
          Alcotest.test_case "join order avoids cartesian" `Quick test_join_order_avoids_cartesian;
        ] );
      ( "failures",
        [
          Alcotest.test_case "union capacity" `Quick test_union_capacity_failure;
          Alcotest.test_case "materialization overflow" `Quick test_materialization_failure;
          Alcotest.test_case "operation budget" `Quick test_operation_budget_failure;
          Alcotest.test_case "operations metered" `Quick test_operations_metered;
        ] );
      ( "explain",
        [ Alcotest.test_case "positive cost" `Quick test_explain_positive_and_monotone ] );
      ( "plan",
        [ Alcotest.test_case "describe" `Quick test_plan_describe ] );
      ( "sql",
        [
          Alcotest.test_case "cq" `Quick test_sql_cq;
          Alcotest.test_case "missing constant" `Quick test_sql_missing_constant;
          Alcotest.test_case "union and jucq" `Quick test_sql_union_and_jucq;
        ] );
      ("properties", qcheck_cases);
      ( "differential",
        differential_cases
        @ [
            Alcotest.test_case "profiles agree on LUBM" `Quick
              test_profiles_agree_on_lubm;
          ] );
    ]
