(* Static cost analysis tests.

   1. Bound soundness: for every LUBM and DBLP workload query, the traced
      operation charges of a real evaluation (the engine's monotonic
      [total_operations] delta) must land inside the analyzer's static
      interval — across all three engine profiles, the Saturation / UCQ /
      SCQ / GCov strategies and jobs in {1, 4}.  A violation is a hard
      failure: it means a bound the analyzer claimed "guaranteed" is not.

   2. Mutation self-tests: one test per CB code asserting the exact
      diagnostic fires (and, for the admission gate, that a rejected
      statement charges nothing).

   3. qcheck: random well-formed CQs/UCQs through the lint and the
      analyzer — no crashes, intervals always satisfy lo <= hi, and the
      lint is deterministic. *)

open Query
module CV = Analysis.Cost_verify
module D = Analysis.Diagnostic
module Reformulate = Reformulation.Reformulate

(* Real multi-domain execution on small CI machines (see test_par). *)
let () = Unix.putenv "RDFQA_JOBS_FORCE" "1"

(* Like the other suites, plan verification is force-enabled; the cost
   admission gate stays OFF so the soundness harness actually executes
   statements (mutation tests flip it locally). *)
let () = Analysis.Plan_verify.set_enabled true
let () = CV.set_enabled false

let with_jobs j f =
  Fun.protect ~finally:(fun () -> Par.set_jobs (Par.env_jobs ())) (fun () ->
      Par.set_jobs j;
      f ())

let with_cost_gate b f =
  CV.set_enabled b;
  Fun.protect ~finally:(fun () -> CV.set_enabled false) f

(* ---- shared fixtures ---- *)

let lubm_store =
  lazy (Workloads.Lubm.generate { Workloads.Lubm.universities = 1 })

let dblp_store =
  lazy (Workloads.Dblp.generate { Workloads.Dblp.publications = 2000 })

let lubm_refm = lazy (Reformulate.create Workloads.Lubm.schema)
let dblp_refm = lazy (Reformulate.create Workloads.Dblp.schema)

let workloads =
  [
    ("lubm", lubm_store, lubm_refm, Workloads.Lubm.queries);
    ("dblp", dblp_store, dblp_refm, Workloads.Dblp.queries);
  ]

let strategies =
  [ Rqa.Answering.Saturation; Rqa.Answering.Ucq; Rqa.Answering.Scq;
    Rqa.Answering.Gcov ]

(* ---- bound soundness ---- *)

(* The statement the strategy will ship to the engine, its oracle, and the
   engine whose [total_operations] the evaluation charges.  [None] when
   [run_cover]'s reformulation-size pre-check provably refuses the cover
   before any execution (its bound is [count_product_bound], which can
   exceed the actual cardinal, so the analyzer cannot be asked instead). *)
let statement_for sys strategy q =
  let q = Bgp.normalize q in
  match strategy with
  | Rqa.Answering.Saturation ->
      let ex = Rqa.Answering.saturated_engine sys in
      Some (Engine.Executor.cost_oracle ex, CV.Cq q, ex)
  | _ ->
      let ex = Rqa.Answering.engine sys in
      let cover =
        match strategy with
        | Rqa.Answering.Ucq -> Jucq.ucq_cover q
        | Rqa.Answering.Scq -> Jucq.scq_cover q
        | Rqa.Answering.Gcov ->
            (Rqa.Gcov.search (Rqa.Answering.objective sys q)).Rqa.Gcov.cover
        | _ -> assert false
      in
      let refm = Rqa.Answering.reformulator sys in
      let capacity =
        (Engine.Executor.profile ex).Engine.Profile.max_union_terms
      in
      if
        List.exists
          (fun f ->
            Reformulate.count_product_bound refm (Jucq.cover_query q cover f)
            > capacity)
          cover
      then None
      else
        let j =
          Jucq.make ~reformulate:(Reformulate.reformulate refm) q cover
        in
        Some (Engine.Executor.cost_oracle ex, CV.Jucq j, ex)

let engine_of sys = function
  | Rqa.Answering.Saturation -> Rqa.Answering.saturated_engine sys
  | _ -> Rqa.Answering.engine sys

let check_soundness ~profile ~jobs (wl, store, refm, queries) =
  with_jobs jobs @@ fun () ->
  (* A fresh system per (profile, jobs) point: the tier-3 answer cache
     would otherwise satisfy repeats without executing anything. *)
  let sys =
    Rqa.Answering.make ~profile ~reformulator:(Lazy.force refm)
      (Lazy.force store)
  in
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun strategy ->
          let label =
            Printf.sprintf "%s:%s %s %s jobs=%d" wl qname
              (Rqa.Answering.strategy_name strategy)
              profile.Engine.Profile.name jobs
          in
          let planned = statement_for sys strategy q in
          let ex = engine_of sys strategy in
          let before = Engine.Executor.total_operations ex in
          let outcome =
            match Rqa.Answering.answer sys strategy q with
            | _ -> Ok ()
            | exception Engine.Profile.Engine_failure { reason; _ } ->
                Error reason
          in
          let delta = Engine.Executor.total_operations ex - before in
          match planned with
          | None ->
              (* refused by run_cover before execution: no charge, and the
                 failure is the union-capacity refusal *)
              Alcotest.(check int) (label ^ ": refusal charges nothing") 0 delta;
              Alcotest.(check bool) (label ^ ": refusal reason") true
                (match outcome with
                | Error (Engine.Profile.Union_capacity _) -> true
                | _ -> false)
          | Some (oracle, stmt, _) -> (
              let e = CV.estimate oracle stmt in
              Alcotest.(check bool)
                (label ^ Printf.sprintf ": lo<=hi %s" (CV.to_string e.CV.ops))
                true
                (e.CV.ops.CV.lo <= e.CV.ops.CV.hi);
              match outcome with
              | Ok () ->
                  Alcotest.(check bool)
                    (label
                    ^ Printf.sprintf ": %d in %s" delta (CV.to_string e.CV.ops)
                    )
                    true
                    ((not e.CV.refused)
                    && delta >= e.CV.ops.CV.lo
                    && delta <= e.CV.ops.CV.hi)
              | Error reason ->
                  (* a failed statement stopped early: it can never have
                     charged more than the upper bound *)
                  Alcotest.(check bool)
                    (label
                    ^ Printf.sprintf ": failed at %d <= hi %s" delta
                        (CV.string_of_bound e.CV.ops.CV.hi))
                    true
                    (delta <= e.CV.ops.CV.hi);
                  (* a provably-safe verdict promises the budget is never
                     the reason a statement dies *)
                  if CV.verdict oracle stmt = CV.Safe then
                    Alcotest.(check bool)
                      (label ^ ": Safe verdict never dies on budget") true
                      (match reason with
                      | Engine.Profile.Operation_budget _ -> false
                      | _ -> true);
                  if e.CV.refused then
                    Alcotest.(check bool)
                      (label ^ ": refused estimate = capacity failure, free")
                      true
                      (delta = 0
                      &&
                      match reason with
                      | Engine.Profile.Union_capacity _ -> true
                      | _ -> false)))
        strategies)
    queries

let soundness_tests =
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun jobs ->
          List.map
            (fun ((wl, _, _, _) as w) ->
              Alcotest.test_case
                (Printf.sprintf "%s %s jobs=%d" wl
                   profile.Engine.Profile.name jobs)
                `Slow
                (fun () -> check_soundness ~profile ~jobs w))
            workloads)
        [ 1; 4 ])
    Engine.Profile.all

(* ---- mutation self-tests: each CB code fires ---- *)

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let tiny_schema =
  Rdf.Schema.of_constraints
    [ Rdf.Schema.Subclass (u "GradStudent", u "Student") ]

let tiny_store =
  lazy
    (Store.Encoded_store.of_graph
       (Rdf.Graph.make tiny_schema
          (List.concat
             (List.init 40 (fun i ->
                  let p = u (Printf.sprintf "person%d" i) in
                  [
                    tr p typ (u "Student");
                    tr p (u "advisor") (u (Printf.sprintf "prof%d" (i mod 5)));
                  ])))))

(* one atom, distinct vars: the interval is exact and rows.lo > 0 *)
let q_scan = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c typ) (v "y") ]

(* two atoms: the interval genuinely straddles realistic budgets *)
let q_join =
  Bgp.make [ v "x"; v "a" ]
    [
      Bgp.atom (v "x") (c typ) (c (u "Student"));
      Bgp.atom (v "x") (c (u "advisor")) (v "a");
    ]

let engine_with ?(max_operations = 2_000_000_000)
    ?(max_materialized_rows = 4_000_000) ?(max_union_terms = 100_000) () =
  let profile =
    {
      Engine.Profile.postgres_like with
      Engine.Profile.name = "mutant";
      max_operations;
      max_materialized_rows;
      max_union_terms;
    }
  in
  Engine.Executor.create ~profile (Lazy.force tiny_store)

let has_code ~severity code ds =
  List.exists
    (fun (d : D.t) -> d.D.code = code && d.D.severity = severity)
    ds

let admission_of ex stmt =
  CV.admission (Engine.Executor.cost_oracle ex) ~context:"mutation" stmt

let test_cb001 () =
  let ex = engine_with ~max_operations:3 () in
  let ds = admission_of ex (CV.Cq q_scan) in
  Alcotest.(check bool) "CB001 error fires" true (has_code ~severity:D.Error "CB001" ds);
  (* the gate rejects before execution: no operation is ever charged *)
  with_cost_gate true @@ fun () ->
  let before = Engine.Executor.total_operations ex in
  (match Engine.Executor.eval_cq ex q_scan with
  | _ -> Alcotest.fail "expected static rejection"
  | exception Analysis.Plan_verify.Rejected ds ->
      Alcotest.(check bool) "rejection carries CB001" true
        (has_code ~severity:D.Error "CB001" ds));
  Alcotest.(check int) "rejected statement charged nothing" 0
    (Engine.Executor.total_operations ex - before)

let test_cb002 () =
  let ex = engine_with () in
  let ds = admission_of ex (CV.Cq q_scan) in
  Alcotest.(check bool) "CB002 info fires" true (has_code ~severity:D.Info "CB002" ds);
  (* provably safe statements pass the gate untouched *)
  with_cost_gate true @@ fun () ->
  Alcotest.(check bool) "safe statement still runs" true
    (Engine.Relation.rows (Engine.Executor.eval_cq ex q_scan) > 0)

let test_cb003 () =
  let ex = engine_with ~max_materialized_rows:0 () in
  let ds = admission_of ex (CV.Ucq (Ucq.of_cqs [ q_scan ])) in
  Alcotest.(check bool) "CB003 error fires" true (has_code ~severity:D.Error "CB003" ds)

let test_cb004 () =
  let ex = engine_with () in
  let oracle = Engine.Executor.cost_oracle ex in
  let e = CV.estimate oracle (CV.Cq q_join) in
  Alcotest.(check bool) "fixture interval is wide" true
    (e.CV.ops.CV.lo < e.CV.ops.CV.hi);
  let budget = e.CV.ops.CV.lo + ((e.CV.ops.CV.hi - e.CV.ops.CV.lo) / 2) in
  let ds = CV.admission oracle ~budget ~context:"mutation" (CV.Cq q_join) in
  Alcotest.(check bool) "CB004 info fires" true (has_code ~severity:D.Info "CB004" ds);
  Alcotest.(check bool) "verdict is Unknown" true
    (CV.verdict oracle ~budget (CV.Cq q_join) = CV.Unknown)

let test_cb009 () =
  let ex = engine_with ~max_union_terms:0 () in
  let ds = admission_of ex (CV.Ucq (Ucq.of_cqs [ q_scan ])) in
  Alcotest.(check bool) "CB009 error fires" true (has_code ~severity:D.Error "CB009" ds);
  (* a refused estimate has the zero interval: refusal charges nothing *)
  let e =
    CV.estimate (Engine.Executor.cost_oracle ex) (CV.Ucq (Ucq.of_cqs [ q_scan ]))
  in
  Alcotest.(check bool) "refused, zero interval" true
    (e.CV.refused && e.CV.ops.CV.hi = 0)

let profile = Engine.Profile.postgres_like

let test_cb005 () =
  let broken ~n ~morsel =
    let r = Engine.Par_verify.default_ranges ~n ~morsel in
    Array.sub r 0 (max 0 (Array.length r - 1))
  in
  let ds = Engine.Par_verify.lint ~ranges:broken ~context:"m" ~profile () in
  Alcotest.(check bool) "CB005 error fires" true (has_code ~severity:D.Error "CB005" ds)

let test_cb006 () =
  let broken ~width:_ ~parts _ _ = parts in
  let ds = Engine.Par_verify.lint ~partition:broken ~context:"m" ~profile () in
  Alcotest.(check bool) "CB006 error fires" true (has_code ~severity:D.Error "CB006" ds)

let test_cb007 () =
  let broken _pool ~morsel:_ rel =
    let d = Engine.Relation.dedup rel in
    let r = Engine.Relation.create ~cols:3 in
    List.iter (Engine.Relation.append r)
      (List.rev (Engine.Relation.to_list d));
    r
  in
  let ds = Engine.Par_verify.lint ~dedup:broken ~context:"m" ~profile () in
  Alcotest.(check bool) "CB007 error fires" true (has_code ~severity:D.Error "CB007" ds)

let test_cb008 () =
  let broken ~n ~morsel = Engine.Par_verify.default_log_count ~n ~morsel + 1 in
  let ds = Engine.Par_verify.lint ~log_count:broken ~context:"m" ~profile () in
  Alcotest.(check bool) "CB008 error fires" true (has_code ~severity:D.Error "CB008" ds)

let test_defaults_clean () =
  let ds = Engine.Par_verify.lint ~context:"m" ~profile ~width:4 () in
  Alcotest.(check (list string)) "real implementations lint clean" []
    (List.map D.to_string ds)

let test_catalog_documents_all_emitted_codes () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " in catalog") true
        (D.describe code <> None))
    [ "CB001"; "CB002"; "CB003"; "CB004"; "CB005"; "CB006"; "CB007";
      "CB008"; "CB009" ]

(* ---- qcheck: random CQs/UCQs through lint + analyzer ---- *)

let gen_term =
  QCheck2.Gen.(
    oneof
      [
        (let+ i = int_bound 3 in
         v (Printf.sprintf "v%d" i));
        (let+ i = int_bound 4 in
         c (u (Printf.sprintf "const%d" i)));
      ])

let gen_prop =
  QCheck2.Gen.(
    oneof
      [
        return (c typ);
        (let+ i = int_bound 2 in
         c (u (Printf.sprintf "prop%d" i)));
        (let+ i = int_bound 3 in
         v (Printf.sprintf "v%d" i));
      ])

let gen_cq =
  QCheck2.Gen.(
    let* natoms = int_range 1 4 in
    let* body =
      list_repeat natoms
        (let* s = gen_term and* p = gen_prop and* o = gen_term in
         return (Bgp.atom s p o))
    in
    (* head: the body's variables (well-formed by construction), capped *)
    let vars =
      List.sort_uniq compare
        (List.concat_map
           (fun a -> List.filter_map (function Bgp.Var x -> Some x | _ -> None)
               (Bgp.atom_vars a |> List.map (fun x -> Bgp.Var x)))
           body)
    in
    let head = match vars with [] -> [ c (u "const0") ] | _ -> List.map v vars in
    return (Bgp.make head body))

let synthetic_oracle =
  {
    CV.cq_info =
      (fun cq ->
        let atoms = Array.of_list cq.Bgp.body in
        CV.Atoms
          (Array.map
             (fun a ->
               let vars = Bgp.atom_vars a in
               {
                 CV.atom_count = Hashtbl.hash a mod 50;
                 distinct_vars =
                   List.length vars
                   = List.length (List.sort_uniq compare vars);
               })
             atoms));
    join = CV.Hash;
    max_union_terms = 10;
    max_materialized_rows = 1000;
    max_operations = 10_000;
  }

let interval_ok (i : CV.interval) = 0 <= i.CV.lo && i.CV.lo <= i.CV.hi

let prop_intervals_well_formed =
  QCheck2.Test.make ~count:200 ~name:"random CQ/UCQ: estimates have lo <= hi"
    QCheck2.Gen.(list_size (int_range 1 3) gen_cq)
    (fun cqs ->
      let heads = List.map (fun q -> List.length q.Bgp.head) cqs in
      let arity = List.hd heads in
      let cqs =
        List.filter (fun q -> List.length q.Bgp.head = arity) cqs
      in
      let oracles =
        [
          synthetic_oracle;
          Engine.Executor.cost_oracle
            (Engine.Executor.create (Lazy.force tiny_store));
        ]
      in
      List.for_all
        (fun oracle ->
          List.for_all
            (fun q ->
              let e = CV.estimate oracle (CV.Cq q) in
              interval_ok e.CV.ops && interval_ok e.CV.rows)
            cqs
          &&
          let e = CV.estimate oracle (CV.Ucq (Ucq.of_cqs cqs)) in
          interval_ok e.CV.ops && interval_ok e.CV.rows)
        oracles)

let prop_lint_deterministic_no_crash =
  QCheck2.Test.make ~count:200
    ~name:"random CQ: lint never crashes and is deterministic" gen_cq
    (fun q ->
      let run () =
        List.map D.to_string
          (Analysis.Query_lint.lint ~schema:tiny_schema ~context:"qc" q)
      in
      run () = run ())

let prop_estimate_deterministic =
  QCheck2.Test.make ~count:100 ~name:"random CQ: estimate is deterministic"
    gen_cq
    (fun q ->
      CV.estimate synthetic_oracle (CV.Cq q)
      = CV.estimate synthetic_oracle (CV.Cq q))

let qcheck_cases =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_intervals_well_formed;
      prop_lint_deterministic_no_crash;
      prop_estimate_deterministic;
    ]

let () =
  Alcotest.run "cost"
    [
      ("soundness", soundness_tests);
      ( "mutations",
        [
          Alcotest.test_case "CB001 provably over budget" `Quick test_cb001;
          Alcotest.test_case "CB002 provably safe" `Quick test_cb002;
          Alcotest.test_case "CB003 materialization floor" `Quick test_cb003;
          Alcotest.test_case "CB004 straddling interval" `Quick test_cb004;
          Alcotest.test_case "CB005 broken ranges" `Quick test_cb005;
          Alcotest.test_case "CB006 broken partition" `Quick test_cb006;
          Alcotest.test_case "CB007 broken dedup order" `Quick test_cb007;
          Alcotest.test_case "CB008 broken replay count" `Quick test_cb008;
          Alcotest.test_case "CB009 union capacity" `Quick test_cb009;
          Alcotest.test_case "defaults lint clean" `Quick test_defaults_clean;
          Alcotest.test_case "catalog documents all CB codes" `Quick
            test_catalog_documents_all_emitted_codes;
        ] );
      ("properties", qcheck_cases);
    ]
