(* Tests for the parallel execution layer: the lib/par domain pool itself,
   and the determinism contract threaded through the engine and the cover
   search — at every jobs count the decoded answers, chosen covers, engine
   operation totals and failure reasons must be bit-identical to the
   sequential run, across all engine profiles and strategies. *)

open Query

(* Exercise the real multi-domain machinery even on small CI machines: the
   core clamp in [Par.create] would otherwise degrade every jobs>1 pool to
   sequential on a 1-core container and the interleavings under test would
   never run.  [test_global_pool_resize] unsets the override locally to
   test the clamp itself. *)
let () = Unix.putenv "RDFQA_JOBS_FORCE" "1"

let without_force f =
  Unix.putenv "RDFQA_JOBS_FORCE" "";
  Fun.protect ~finally:(fun () -> Unix.putenv "RDFQA_JOBS_FORCE" "1") f

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

(* Every differential test drives the process-global pool through
   [set_jobs]; restore the environment-derived width afterwards so tests
   compose regardless of order (the suite also runs under RDFQA_JOBS=4). *)
let with_jobs j f =
  Fun.protect ~finally:(fun () -> Par.set_jobs (Par.env_jobs ())) (fun () ->
      Par.set_jobs j;
      f ())

(* ---- pool unit tests ---- *)

let test_map_in_order () =
  let pool = Par.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  List.iter
    (fun n ->
      let xs = Array.init n (fun i -> i) in
      let expected = Array.map (fun i -> (i * i) + 1) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "map of %d elements" n)
        expected
        (Par.parallel_map ~chunk:3 pool (fun i -> (i * i) + 1) xs))
    [ 0; 1; 2; 5; 97 ]

let test_jobs_one_is_sequential () =
  let pool = Par.create ~jobs:1 in
  Alcotest.(check int) "width clamped" 1 (Par.jobs pool);
  let xs = Array.init 10 string_of_int in
  Alcotest.(check (array string))
    "identity map" xs
    (Par.parallel_map pool Fun.id xs);
  Par.shutdown pool

exception Boom of int

let test_exception_smallest_index () =
  let pool = Par.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let raised =
    try
      ignore
        (Par.parallel_map pool
           (fun i -> if i mod 7 = 3 then raise (Boom i) else i)
           (Array.init 40 (fun i -> i)));
      None
    with Boom i -> Some i
  in
  (* indexes 3, 10, 17, ... fail; a sequential loop would raise at 3 *)
  Alcotest.(check (option int)) "smallest failing index" (Some 3) raised

let test_fold_in_order () =
  let pool = Par.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let xs = Array.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
  let folded =
    Par.parallel_fold pool ~map:String.lowercase_ascii
      ~fold:(fun acc s -> acc ^ s)
      ~init:"" xs
  in
  Alcotest.(check string) "fold order" "abcdefghijklmnopqrstuvwxyz" folded

let test_nested_call_falls_back () =
  let pool = Par.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  (* A task that itself fans out on the same (busy) pool must run the
     inner map inline rather than deadlock, with unchanged results. *)
  let res =
    Par.parallel_map pool
      (fun i ->
        Array.fold_left ( + ) 0
          (Par.parallel_map pool (fun j -> i * j) (Array.init 5 Fun.id)))
      (Array.init 6 Fun.id)
  in
  Alcotest.(check (array int))
    "nested map results"
    (Array.init 6 (fun i -> 10 * i))
    res

let test_global_pool_resize () =
  without_force @@ fun () ->
  with_jobs 3 @@ fun () ->
  let p = Par.get () in
  (* The effective width is the requested width clamped to the cores the
     OS grants (Par.create's oversubscription guard), so on a 1-core
     container "resize to 3" honestly yields width 1. *)
  let expected = min 3 (max 1 (Par.recommended_jobs ())) in
  Alcotest.(check int) "requested 3" 3 (Par.requested_jobs p);
  Alcotest.(check int) "effective width clamped" expected (Par.jobs p);
  Alcotest.(check int) "effective_jobs agrees" expected (Par.effective_jobs ());
  Alcotest.(check bool) "same pool on same width" true (p == Par.get ());
  Par.set_jobs 1;
  Alcotest.(check int) "resized to 1" 1 (Par.jobs (Par.get ()));
  Alcotest.(check int) "current_jobs tracks" 1 (Par.current_jobs ())

(* ---- differential fixtures ---- *)

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "GradStudent", u "Student");
      Rdf.Schema.Subclass (u "Student", u "Person");
      Rdf.Schema.Subproperty (u "worksFor", u "memberOf");
      Rdf.Schema.Domain (u "memberOf", u "Person");
      Rdf.Schema.Range (u "memberOf", u "Org");
    ]

let graph =
  let facts =
    List.concat
      (List.init 80 (fun i ->
           let p = u (Printf.sprintf "person%d" i) in
           [
             tr p typ (u (if i mod 3 = 0 then "GradStudent" else "Student"));
             tr p (u "worksFor") (u (Printf.sprintf "org%d" (i mod 4)));
           ]))
  in
  Rdf.Graph.make schema facts

let ecov_budget = { Rqa.Cover_space.max_covers = 50_000; max_millis = 60_000.0 }

let strategies =
  [
    ("ucq", Rqa.Answering.Ucq);
    ("scq", Rqa.Answering.Scq);
    ("ecov", Rqa.Answering.Ecov ecov_budget);
    ("gcov", Rqa.Answering.Gcov);
  ]

(* Everything observable about one answered query: decoded rows in
   relation order, planning metadata, and the engine's lifetime work
   accounting — or the exact failure, which must also reproduce. *)
let outcome ~profile ~reformulator store strat q =
  let sys = Rqa.Answering.make ~profile ~reformulator store in
  let ex = Rqa.Answering.engine sys in
  match Rqa.Answering.answer sys strat q with
  | r ->
      Ok
        ( Engine.Executor.decode ex r.Rqa.Answering.answers,
          r.Rqa.Answering.cover,
          r.Rqa.Answering.union_terms,
          r.Rqa.Answering.fragment_terms,
          Engine.Executor.total_operations ex )
  | exception Engine.Profile.Engine_failure { engine; reason } ->
      Error (engine, reason, Engine.Executor.total_operations ex)

let jobs_levels = [ 1; 2; 4 ]

(* Runs [measure ()] at every jobs level and checks the results against
   the sequential one.  One discarded warm-up run first: the very first
   query over a store encodes its constants into the shared dictionary,
   which shifts plan statistics (and hence operation counts) by a few ops
   for every later system — a sequential-only effect that would otherwise
   masquerade as a parallel divergence. *)
let check_matches_sequential ~msg measure =
  ignore (with_jobs 1 measure);
  match
    List.map (fun j -> (j, with_jobs j measure)) jobs_levels
  with
  | (_, baseline) :: rest ->
      List.iter
        (fun (j, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d matches jobs=1" msg j)
            true (r = baseline))
        rest
  | [] -> ()

let q3 =
  Bgp.make [ v "x"; v "y" ]
    [
      Bgp.atom (v "x") (c typ) (v "y");
      Bgp.atom (v "x") (c (u "memberOf")) (c (u "org2"));
    ]

let test_profiles_strategies_differential () =
  let store = Store.Encoded_store.of_graph graph in
  let reformulator = Reformulation.Reformulate.create schema in
  List.iter
    (fun profile ->
      List.iter
        (fun (sname, strat) ->
          check_matches_sequential
            ~msg:(Printf.sprintf "%s/%s" profile.Engine.Profile.name sname)
            (fun () -> outcome ~profile ~reformulator store strat q3))
        strategies)
    Engine.Profile.all

(* LUBM at unit scale: the real workload queries, GCov + every profile. *)
let lubm_store =
  lazy (Workloads.Lubm.generate { Workloads.Lubm.universities = 1 })

let test_lubm_differential () =
  let store = Lazy.force lubm_store in
  let reformulator = Reformulation.Reformulate.create Workloads.Lubm.schema in
  let queries =
    List.filter
      (fun (n, _) -> List.mem n [ "Q01"; "Q02"; "Q07"; "Q18"; "Q24"; "Q28" ])
      Workloads.Lubm.queries
  in
  List.iter
    (fun (name, q) ->
      check_matches_sequential ~msg:("lubm:" ^ name) (fun () ->
          List.map
            (fun profile ->
              outcome ~profile ~reformulator store Rqa.Answering.Gcov q)
            Engine.Profile.all))
    queries

(* Budget failures must fire at the identical charge with identical
   lifetime totals: the record-and-replay path may truncate worker logs
   only where replay is guaranteed to fail at the same call. *)
let test_budget_failure_differential () =
  let store = Lazy.force lubm_store in
  let reformulator = Reformulation.Reformulate.create Workloads.Lubm.schema in
  let profile =
    {
      Engine.Profile.postgres_like with
      Engine.Profile.name = "tiny-budget";
      max_operations = 2_000;
    }
  in
  let q = List.assoc "Q02" Workloads.Lubm.queries in
  check_matches_sequential ~msg:"tiny budget" (fun () ->
      outcome ~profile ~reformulator store Rqa.Answering.Ucq q);
  let r = with_jobs 4 (fun () ->
      outcome ~profile ~reformulator store Rqa.Answering.Ucq q)
  in
  Alcotest.(check bool) "budget actually trips" true
    (match r with
    | Error (_, Engine.Profile.Operation_budget _, _) -> true
    | _ -> false)

(* Tracing must not perturb results, and worker-domain sinks are no-ops:
   a traced jobs=4 run returns exactly the untraced outcome. *)
let test_traced_equals_untraced () =
  let store = Store.Encoded_store.of_graph graph in
  let reformulator = Reformulation.Reformulate.create schema in
  let measure () = outcome ~profile:Engine.Profile.postgres_like ~reformulator
      store Rqa.Answering.Gcov q3
  in
  ignore (with_jobs 1 measure);  (* discarded warm-up, see above *)
  let untraced = with_jobs 4 measure in
  let traced =
    with_jobs 4 (fun () ->
        Obs.reset ();
        Obs.set_enabled true;
        Fun.protect ~finally:(fun () -> Obs.set_enabled false) measure)
  in
  Alcotest.(check bool) "traced jobs=4 outcome unchanged" true
    (traced = untraced)

(* ---- qcheck: random BGPs across jobs counts ---- *)

let gen_node =
  QCheck2.Gen.(map (fun i -> u (Printf.sprintf "n%d" i)) (int_bound 6))

let gen_class =
  QCheck2.Gen.(map (fun i -> u (Printf.sprintf "C%d" i)) (int_bound 3))

let gen_prop =
  QCheck2.Gen.(map (fun i -> u (Printf.sprintf "p%d" i)) (int_bound 2))

let gen_schema =
  QCheck2.Gen.(
    map Rdf.Schema.of_constraints
      (list_size (int_bound 5)
         (oneof
            [
              map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_class gen_class;
              map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
              map2 (fun p cl -> Rdf.Schema.Domain (p, cl)) gen_prop gen_class;
              map2 (fun p cl -> Rdf.Schema.Range (p, cl)) gen_prop gen_class;
            ])))

let gen_facts =
  QCheck2.Gen.(
    list_size (int_bound 25)
      (oneof
         [
           map2 (fun s cl -> tr s typ cl) gen_node gen_class;
           (let* s = gen_node and* p = gen_prop and* o = gen_node in
            return (tr s p o));
         ]))

let gen_query =
  QCheck2.Gen.(
    let* n = int_range 2 3 in
    let* atoms =
      flatten_l
        (List.init n (fun i ->
             let x = v "x" in
             let oi = v (Printf.sprintf "o%d" i) in
             oneof
               [
                 map (fun cl -> Bgp.atom x (c typ) (c cl)) gen_class;
                 return (Bgp.atom x (c typ) oi);
                 map2 (fun p o -> Bgp.atom x (c p) o) gen_prop
                   (oneof [ return oi; map c gen_node ]);
               ]))
    in
    return (Bgp.make [ v "x" ] atoms))

let prop_parallel_answers_identical =
  QCheck2.Test.make ~count:40
    ~name:"parallel answers/covers/charges = sequential on random inputs"
    QCheck2.Gen.(triple gen_schema gen_facts gen_query)
    (fun (schema, facts, q) ->
      let g = Rdf.Graph.make schema facts in
      let store = Store.Encoded_store.of_graph g in
      let reformulator = Reformulation.Reformulate.create schema in
      let measure () =
        List.concat_map
          (fun profile ->
            List.map
              (fun (_, strat) ->
                outcome ~profile ~reformulator store strat q)
              strategies)
          Engine.Profile.all
      in
      (* discarded warm-up: see check_matches_sequential *)
      ignore (with_jobs 1 measure);
      let baseline = with_jobs 1 measure in
      List.for_all (fun j -> with_jobs j measure = baseline) [ 2; 4 ])

let qcheck_cases =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_parallel_answers_identical ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map in order" `Quick test_map_in_order;
          Alcotest.test_case "jobs=1 sequential" `Quick
            test_jobs_one_is_sequential;
          Alcotest.test_case "smallest-index exception" `Quick
            test_exception_smallest_index;
          Alcotest.test_case "fold in order" `Quick test_fold_in_order;
          Alcotest.test_case "nested call falls back" `Quick
            test_nested_call_falls_back;
          Alcotest.test_case "global pool resize" `Quick
            test_global_pool_resize;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "profiles x strategies" `Quick
            test_profiles_strategies_differential;
          Alcotest.test_case "LUBM workload queries" `Slow
            test_lubm_differential;
          Alcotest.test_case "budget failure point" `Quick
            test_budget_failure_differential;
          Alcotest.test_case "traced = untraced" `Quick
            test_traced_equals_untraced;
        ] );
      ("properties", qcheck_cases);
    ]
