(* Validates a JSON-lines trace file against the schema documented in
   lib/obs/export.mli (the two must stay in sync).  Used by the CLI test
   suite and the CI trace job:

     validate_trace.exe FILE

   exits 0 and prints a line-count summary when every line conforms,
   exits 1 with the first offending line otherwise.  The parser below is a
   deliberately small hand-written JSON reader (objects, strings, numbers,
   booleans, null): the repo carries no JSON dependency. *)

exception Bad of string

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_ () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c
                  when (c >= '0' && c <= '9')
                       || (c >= 'a' && c <= 'f')
                       || (c >= 'A' && c <= 'F') ->
                    Buffer.add_char buf c;
                    advance ()
                | _ -> fail "bad \\u escape"
              done
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> fail "unterminated escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_ ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_ () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec elements acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elements []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- schema checks ---- *)

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let str fields k =
  match field fields k with
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let num fields k =
  match field fields k with
  | Num f -> f
  | _ -> raise (Bad (Printf.sprintf "field %S must be a number" k))

let int_ fields k =
  let f = num fields k in
  if Float.is_integer f then int_of_float f
  else raise (Bad (Printf.sprintf "field %S must be an integer" k))

let nonneg_int fields k =
  let i = int_ fields k in
  if i < 0 then raise (Bad (Printf.sprintf "field %S must be >= 0" k));
  i

let string_attrs fields k =
  match field fields k with
  | Obj kvs ->
      List.iter
        (function
          | _, Str _ -> ()
          | a, _ ->
              raise (Bad (Printf.sprintf "attr %S must be a string" a)))
        kvs
  | _ -> raise (Bad (Printf.sprintf "field %S must be an object" k))

let op_kinds =
  [
    "index_scan"; "cq"; "union"; "dedup"; "hash_join"; "bnl_join"; "project";
    "result";
  ]

let check_line ~first line =
  let fields =
    match parse line with
    | Obj fields -> fields
    | _ -> raise (Bad "line is not a JSON object")
  in
  let ty = str fields "type" in
  if first && ty <> "meta" then raise (Bad "first line must be a meta line");
  (match ty with
  | "meta" ->
      if int_ fields "schema" <> 1 then raise (Bad "unknown schema version");
      ignore (str fields "generator");
      (* The parallelism width the trace was produced under; traces must
         stay schema-valid at every jobs count.  [effective_jobs] is the
         post-clamp width the pool actually ran at. *)
      if int_ fields "jobs" < 1 then raise (Bad "jobs below 1");
      if int_ fields "effective_jobs" < 1 then
        raise (Bad "effective_jobs below 1");
      (* Process snapshot at export time: GC counters are cumulative and
         non-negative; store_bytes is a size estimate, with -1 meaning "no
         store was measured". *)
      List.iter
        (fun k ->
          if int_ fields k < 0 then raise (Bad (k ^ " below 0")))
        [ "gc_minor_collections"; "gc_major_collections"; "gc_heap_words" ];
      if int_ fields "store_bytes" < -1 then raise (Bad "store_bytes below -1")
  | "query" -> ignore (str fields "name")
  | "span" ->
      ignore (str fields "name");
      ignore (num fields "start_us");
      if num fields "dur_us" < 0.0 then raise (Bad "negative span duration");
      ignore (nonneg_int fields "depth");
      string_attrs fields "attrs"
  | "estimate" ->
      ignore (str fields "label");
      ignore (num fields "est");
      ignore (num fields "actual");
      if num fields "q_error" < 1.0 then raise (Bad "q_error below 1")
  | "op" ->
      ignore (str fields "path");
      let kind = str fields "kind" in
      if not (List.mem kind op_kinds) then
        raise (Bad (Printf.sprintf "unknown op kind %S" kind));
      ignore (str fields "label");
      List.iter
        (fun k -> ignore (nonneg_int fields k))
        [
          "rows_in"; "rows_out"; "index_probes"; "hash_inserts";
          "hash_collisions"; "work_units"; "morsels";
        ];
      (* skew is a load-balance ratio >= 1, or the -1 sentinel for
         operators that ran sequentially (or produced no rows) *)
      let skew = num fields "skew" in
      if skew <> -1.0 && skew < 1.0 then raise (Bad "skew below 1");
      ignore (num fields "est_rows")
  | "counter" ->
      ignore (str fields "name");
      ignore (nonneg_int fields "value")
  | other -> raise (Bad (Printf.sprintf "unknown line type %S" other)));
  ty

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ ->
        prerr_endline "usage: validate_trace FILE";
        exit 2
  in
  let ic = open_in file in
  let counts = Hashtbl.create 8 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         let ty = check_line ~first:(!lineno = 1) line in
         Hashtbl.replace counts ty
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts ty))
       end
     done
   with
  | End_of_file -> close_in ic
  | Bad msg ->
      Printf.eprintf "%s:%d: %s\n" file !lineno msg;
      exit 1);
  if !lineno = 0 then begin
    Printf.eprintf "%s: empty trace\n" file;
    exit 1
  end;
  let summary =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort compare
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat " "
  in
  Printf.printf "OK: %d lines (%s)\n" !lineno summary
