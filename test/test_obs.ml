(* Tests for the observability layer (lib/obs) and its wiring through the
   engine: span lifecycle (including exception unwinding and engine
   failures), per-operator runtime metrics, the charge-accounting
   invariance of instrumentation, Q-error arithmetic and the calibration
   report. *)

open Query

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "A", u "B");
      Rdf.Schema.Subproperty (u "p", u "q");
      Rdf.Schema.Domain (u "p", u "A");
    ]

let graph =
  Rdf.Graph.make schema
    [
      tr (u "x1") typ (u "A");
      tr (u "x1") (u "p") (u "y1");
      tr (u "x2") (u "p") (u "y2");
      tr (u "x2") (u "q") (u "y1");
      tr (u "y1") (u "r") (u "x2");
      tr (u "x3") typ (u "B");
    ]

let store () = Store.Encoded_store.of_graph graph
let reformulator = Reformulation.Reformulate.create schema
let reformulate q = Reformulation.Reformulate.reformulate reformulator q

let join_query =
  Bgp.make [ v "x"; v "z" ]
    [
      Bgp.atom (v "x") (c (u "q")) (v "y");
      Bgp.atom (v "y") (c (u "r")) (v "z");
    ]

(* Every test leaves tracing globally off, whatever happens inside. *)
let traced f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* ---- spans ---- *)

let test_span_nesting () =
  traced (fun () ->
      Obs.Span.with_ "outer" (fun sp ->
          Obs.Span.set sp "k" "v";
          Obs.Span.with_ "inner" (fun _ -> ())));
  let evs = Obs.events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let inner = List.nth evs 0 and outer = List.nth evs 1 in
  Alcotest.(check string) "inner first (closed first)" "inner"
    inner.Obs.name;
  Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
  Alcotest.(check string) "outer second" "outer" outer.Obs.name;
  Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
  Alcotest.(check (list (pair string string))) "outer attrs" [ ("k", "v") ]
    outer.Obs.attrs;
  Alcotest.(check int) "no open span" 0 (Obs.open_depth ())

let test_span_disabled_is_inert () =
  Obs.reset ();
  Obs.Span.with_ "ghost" (fun sp -> Obs.Span.set sp "k" "v");
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.events ()));
  Obs.record_estimate ~label:"x" ~est:1.0 ~actual:2.0;
  Alcotest.(check int) "no estimates recorded" 0
    (List.length (Obs.estimates ()));
  Obs.count "x" 3;
  Alcotest.(check int) "no counters recorded" 0
    (List.length (Obs.counters ()))

let test_span_exception_closes_children () =
  traced (fun () ->
      try
        Obs.Span.with_ "outer" (fun _ ->
            let _inner = Obs.Span.enter "inner" in
            failwith "boom")
      with Failure _ -> ());
  Alcotest.(check int) "no open span after exception" 0 (Obs.open_depth ());
  Alcotest.(check int) "both spans recorded" 2 (List.length (Obs.events ()));
  List.iter
    (fun (e : Obs.event) ->
      Alcotest.(check bool)
        (e.Obs.name ^ " non-negative duration")
        true (e.Obs.dur_us >= 0.0))
    (Obs.events ())

(* ---- Q-error and calibration ---- *)

let feq = Alcotest.float 1e-9

let test_q_error () =
  Alcotest.check feq "overestimate" 2.0 (Obs.q_error ~est:10.0 ~actual:5.0);
  Alcotest.check feq "underestimate" 2.0 (Obs.q_error ~est:5.0 ~actual:10.0);
  Alcotest.check feq "exact" 1.0 (Obs.q_error ~est:7.0 ~actual:7.0);
  Alcotest.check feq "both zero floored" 1.0 (Obs.q_error ~est:0.0 ~actual:0.0);
  Alcotest.check feq "zero estimate floored" 10.0
    (Obs.q_error ~est:0.0 ~actual:10.0)

let test_calibration_report () =
  let r = Obs.Calibration.of_estimates [] in
  Alcotest.(check int) "empty samples" 0 r.Obs.Calibration.samples;
  Alcotest.check feq "empty median" 1.0 r.Obs.Calibration.median_q;
  let estimates =
    [
      { Obs.label = "a"; est = 10.0; actual = 10.0 };  (* q = 1 *)
      { Obs.label = "b"; est = 20.0; actual = 10.0 };  (* q = 2 *)
      { Obs.label = "c"; est = 10.0; actual = 40.0 };  (* q = 4 *)
    ]
  in
  let r = Obs.Calibration.of_estimates estimates in
  Alcotest.(check int) "samples" 3 r.Obs.Calibration.samples;
  Alcotest.check feq "median" 2.0 r.Obs.Calibration.median_q;
  Alcotest.check feq "max" 4.0 r.Obs.Calibration.max_q;
  Alcotest.(check bool) "worst offender is c" true
    (match r.Obs.Calibration.worst with
    | (label, q) :: _ -> label = "c" && q = 4.0
    | [] -> false)

(* ---- per-operator metrics ---- *)

let test_op_stats_tree () =
  let ex = Engine.Executor.create (store ()) in
  let j = Jucq.make ~reformulate join_query (Jucq.scq_cover join_query) in
  Alcotest.(check bool) "no stats when disabled" true
    (ignore (Engine.Executor.eval_jucq ex j);
     Engine.Executor.last_op_stats ex = None);
  traced (fun () -> ignore (Engine.Executor.eval_jucq ex j));
  match Engine.Executor.last_op_stats ex with
  | None -> Alcotest.fail "no op tree recorded under tracing"
  | Some root ->
      Alcotest.(check string) "root kind" "result"
        (Obs.Op_stats.kind_name root.Obs.Op_stats.kind);
      Alcotest.(check bool) "root has an estimate" true
        (Obs.Op_stats.q_error root <> None);
      (* every node carries sane counters, and the tree reaches the leaf
         index scans of both fragments *)
      let kinds = ref [] in
      Obs.Op_stats.fold
        (fun () ~path:_ n ->
          kinds := Obs.Op_stats.kind_name n.Obs.Op_stats.kind :: !kinds;
          Alcotest.(check bool) "rows_out >= 0" true (n.Obs.Op_stats.rows_out >= 0))
        () root;
      List.iter
        (fun k ->
          Alcotest.(check bool) ("tree contains " ^ k) true
            (List.mem k !kinds))
        [ "result"; "project"; "hash_join"; "dedup"; "union"; "cq";
          "index_scan" ];
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i =
          i + n <= h && (String.sub hay i n = needle || go (i + 1))
        in
        n = 0 || go 0
      in
      let rendered = Obs.Op_stats.to_string root in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("rendering mentions " ^ needle) true
            (contains rendered needle))
        [ "est="; "actual=" ]

(* ---- engine failures leave a well-formed partial trace ---- *)

let test_failure_partial_trace () =
  List.iter
    (fun (p : Engine.Profile.t) ->
      let profile = { p with Engine.Profile.max_operations = 0 } in
      let ex = Engine.Executor.create ~profile (store ()) in
      let j = Jucq.make ~reformulate join_query (Jucq.scq_cover join_query) in
      let failed = ref false in
      traced (fun () ->
          try ignore (Engine.Executor.eval_jucq ex j)
          with Engine.Profile.Engine_failure _ -> failed := true);
      Alcotest.(check bool) (p.Engine.Profile.name ^ " fails") true !failed;
      Alcotest.(check int)
        (p.Engine.Profile.name ^ " no leaked open span")
        0 (Obs.open_depth ());
      let evs = Obs.events () in
      Alcotest.(check bool)
        (p.Engine.Profile.name ^ " recorded the exec span")
        true
        (List.exists (fun (e : Obs.event) -> e.Obs.name = "exec.jucq") evs);
      List.iter
        (fun (e : Obs.event) ->
          Alcotest.(check bool)
            (p.Engine.Profile.name ^ " span closed with sane duration")
            true
            (e.Obs.dur_us >= 0.0))
        evs)
    Engine.Profile.all

(* ---- instrumentation never changes the charge accounting ---- *)

let test_charge_invariance () =
  let ex = Engine.Executor.create (store ()) in
  let ucq = reformulate join_query in
  let j = Jucq.make ~reformulate join_query (Jucq.scq_cover join_query) in
  ignore (Engine.Executor.eval_ucq ex ucq);  (* warm the plan caches *)
  ignore (Engine.Executor.eval_ucq ex ucq);
  let ucq_ops = Engine.Executor.last_operations ex in
  ignore (Engine.Executor.eval_jucq ex j);
  let jucq_ops = Engine.Executor.last_operations ex in
  let statements0 = Engine.Executor.statements_run ex in
  let total0 = Engine.Executor.total_operations ex in
  (* 50 untraced runs: charge totals are deterministic, run over run *)
  for i = 1 to 50 do
    ignore (Engine.Executor.eval_ucq ex ucq);
    Alcotest.(check int)
      (Printf.sprintf "untraced ucq run %d ops" i)
      ucq_ops
      (Engine.Executor.last_operations ex)
  done;
  (* traced runs charge bit-identically: tracing observes, never charges *)
  traced (fun () ->
      ignore (Engine.Executor.eval_ucq ex ucq);
      Alcotest.(check int) "traced ucq ops identical" ucq_ops
        (Engine.Executor.last_operations ex);
      ignore (Engine.Executor.eval_jucq ex j);
      Alcotest.(check int) "traced jucq ops identical" jucq_ops
        (Engine.Executor.last_operations ex));
  Alcotest.(check int) "statements counted" (statements0 + 52)
    (Engine.Executor.statements_run ex);
  Alcotest.(check int) "monotonic total is the exact sum"
    (total0 + (51 * ucq_ops) + jucq_ops)
    (Engine.Executor.total_operations ex)

(* ---- the answering report's per-fragment sizes ---- *)

let test_report_fragment_terms () =
  let sys = Rqa.Answering.of_graph graph in
  let report = Rqa.Answering.answer sys Rqa.Answering.Scq join_query in
  Alcotest.(check int) "one entry per fragment" 2
    (List.length report.Rqa.Answering.fragment_terms);
  Alcotest.(check int) "fragment sizes sum to the union total"
    report.Rqa.Answering.union_terms
    (List.fold_left ( + ) 0 report.Rqa.Answering.fragment_terms);
  let sat = Rqa.Answering.answer sys Rqa.Answering.Saturation join_query in
  Alcotest.(check (list int)) "saturation is a single CQ" [ 1 ]
    sat.Rqa.Answering.fragment_terms

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and attrs" `Quick test_span_nesting;
          Alcotest.test_case "disabled path is inert" `Quick
            test_span_disabled_is_inert;
          Alcotest.test_case "exception closes children" `Quick
            test_span_exception_closes_children;
        ] );
      ( "estimates",
        [
          Alcotest.test_case "q-error" `Quick test_q_error;
          Alcotest.test_case "calibration report" `Quick
            test_calibration_report;
        ] );
      ( "engine",
        [
          Alcotest.test_case "op-stats tree" `Quick test_op_stats_tree;
          Alcotest.test_case "failure leaves well-formed partial trace"
            `Quick test_failure_partial_trace;
          Alcotest.test_case "charge accounting invariance" `Quick
            test_charge_invariance;
          Alcotest.test_case "report fragment terms" `Quick
            test_report_fragment_terms;
        ] );
    ]
