(* Tests for the query model: BGP queries, evaluation semantics, canonical
   forms, UCQs, JUCQ covers and the SPARQL front-end. *)

open Query

let u s = Rdf.Term.uri s
let lit s = Rdf.Term.literal s
let bn s = Rdf.Term.bnode s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

let rows =
  Alcotest.testable
    (fun fmt rs ->
      Format.pp_print_string fmt
        (String.concat " | "
           (List.map
              (fun r -> String.concat "," (List.map Rdf.Term.to_string r))
              rs)))
    (List.equal (List.equal Rdf.Term.equal))

(* Figure 3 graph *)
let book_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "Book", u "Publication");
      Rdf.Schema.Subproperty (u "writtenBy", u "hasAuthor");
      Rdf.Schema.Domain (u "writtenBy", u "Book");
      Rdf.Schema.Range (u "writtenBy", u "Person");
      Rdf.Schema.Domain (u "hasAuthor", u "Book");
      Rdf.Schema.Range (u "hasAuthor", u "Person");
    ]

let book_graph =
  Rdf.Graph.make book_schema
    [
      tr (u "doi1") typ (u "Book");
      tr (u "doi1") (u "writtenBy") (bn "b1");
      tr (u "doi1") (u "hasTitle") (lit "Game of Thrones");
      tr (bn "b1") (u "hasName") (lit "George R. R. Martin");
      tr (u "doi1") (u "publishedIn") (lit "1996");
    ]

(* ---- Bgp construction ---- *)

let test_make_validates_head () =
  Alcotest.(check bool) "head var must be in body" true
    (try
       ignore (Bgp.make [ v "z" ] [ Bgp.atom (v "x") (c typ) (v "y") ]);
       false
     with Invalid_argument _ -> true)

let test_make_rejects_empty_body () =
  Alcotest.(check bool) "empty body" true
    (try ignore (Bgp.make [ ] [ ]); false
     with Invalid_argument _ -> true)

let test_vars_order () =
  let q =
    Bgp.make [ v "y" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "q")) (v "z");
      ]
  in
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Bgp.vars q);
  Alcotest.(check (list string)) "head vars" [ "y" ] (Bgp.head_vars q)

let test_normalize_bnodes () =
  let q =
    Bgp.make [ v "x" ]
      [ Bgp.atom (v "x") (c (u "p")) (c (Rdf.Term.bnode "b")) ]
  in
  let q' = Bgp.normalize q in
  Alcotest.(check int) "two vars" 2 (List.length (Bgp.vars q'))

(* ---- Connectivity ---- *)

let test_connectivity () =
  let a1 = Bgp.atom (v "x") (c (u "p")) (v "y") in
  let a2 = Bgp.atom (v "y") (c (u "q")) (v "z") in
  let a3 = Bgp.atom (v "w") (c (u "r")) (v "t") in
  Alcotest.(check bool) "a1-a2 connected" true (Bgp.atoms_connected a1 a2);
  Alcotest.(check bool) "a1-a3 not" false (Bgp.atoms_connected a1 a3);
  Alcotest.(check bool) "chain connected" true (Bgp.is_connected [ a1; a2 ]);
  Alcotest.(check bool) "cartesian product" false (Bgp.is_connected [ a1; a3 ]);
  Alcotest.(check bool) "transitive connection" true
    (Bgp.is_connected [ a1; a2; Bgp.atom (v "z") (c (u "s")) (v "w"); a3 ])

(* ---- Canonical / equality ---- *)

let test_canonical_iso () =
  let q1 =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "q")) (v "z");
      ]
  in
  let q2 =
    Bgp.make [ v "a" ]
      [
        Bgp.atom (v "b") (c (u "q")) (v "w");
        Bgp.atom (v "a") (c (u "p")) (v "b");
      ]
  in
  Alcotest.(check bool) "isomorphic" true (Bgp.equal q1 q2)

let test_canonical_distinguishes_head () =
  let body =
    [
      Bgp.atom (v "x") (c (u "p")) (v "y");
    ]
  in
  let q1 = Bgp.make [ v "x" ] body in
  let q2 = Bgp.make [ v "y" ] body in
  Alcotest.(check bool) "different heads differ" false (Bgp.equal q1 q2)

let test_canonical_swapped_existentials () =
  (* The parallel-renaming regression: permuting existential names must not
     collapse distinct variables. *)
  let q1 =
    Bgp.make [ v "h" ]
      [
        Bgp.atom (v "a") (v "b") (c (lit "1996"));
        Bgp.atom (v "a") (c (u "p")) (v "d");
        Bgp.atom (v "d") (c (u "n")) (v "h");
      ]
  in
  let cq = Bgp.canonical q1 in
  Alcotest.(check int) "still 4 distinct vars" 4 (List.length (Bgp.vars cq))

(* ---- Evaluation (paper Example 3) ---- *)

let example3_query =
  Bgp.make [ v "x3" ]
    [
      Bgp.atom (v "x1") (c (u "hasAuthor")) (v "x2");
      Bgp.atom (v "x2") (c (u "hasName")) (v "x3");
      Bgp.atom (v "x1") (v "x4") (c (lit "1996"));
    ]

let test_eval_incomplete_without_reasoning () =
  Alcotest.check rows "direct evaluation misses implicit triples" []
    (Bgp.eval book_graph example3_query)

let test_answer_example3 () =
  Alcotest.check rows "answer via saturation"
    [ [ lit "George R. R. Martin" ] ]
    (Bgp.answer book_graph example3_query)

let test_eval_constants_in_head () =
  let q = Bgp.make [ v "x"; c (u "Book") ]
      [ Bgp.atom (v "x") (c typ) (c (u "Book")) ] in
  Alcotest.check rows "constant head column"
    [ [ u "doi1"; u "Book" ] ]
    (Bgp.eval book_graph q)

let test_eval_set_semantics () =
  let g =
    Rdf.Graph.of_triples
      [ tr (u "a") (u "p") (u "b"); tr (u "a") (u "p") (u "c") ]
  in
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.check rows "duplicates eliminated" [ [ u "a" ] ] (Bgp.eval g q)

(* ---- Ucq ---- *)

let test_ucq_dedup () =
  let q1 = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let q2 = Bgp.make [ v "a" ] [ Bgp.atom (v "a") (c (u "p")) (v "b") ] in
  let ucq = Ucq.of_cqs [ q1; q2 ] in
  Alcotest.(check int) "isomorphic disjuncts merged" 1 (Ucq.cardinal ucq)

let test_ucq_arity_mismatch () =
  let q1 = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let q2 = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "mismatch raises" true
    (try ignore (Ucq.of_cqs [ q1; q2 ]); false
     with Invalid_argument _ -> true)

let test_ucq_eval_union () =
  let g =
    Rdf.Graph.of_triples
      [ tr (u "a") (u "p") (u "b"); tr (u "x") (u "q") (u "y") ]
  in
  let q1 = Bgp.make [ v "s" ] [ Bgp.atom (v "s") (c (u "p")) (v "o") ] in
  let q2 = Bgp.make [ v "s" ] [ Bgp.atom (v "s") (c (u "q")) (v "o") ] in
  Alcotest.check rows "union" [ [ u "a" ]; [ u "x" ] ]
    (Ucq.eval g (Ucq.of_cqs [ q1; q2 ]))

(* ---- Jucq covers ---- *)

(* q1 from Motivating Example 1, against an arbitrary ontology. *)
let q1 =
  Bgp.make [ v "x"; v "y" ]
    [
      Bgp.atom (v "x") (c typ) (v "y");
      Bgp.atom (v "x") (c (u "degreeFrom")) (c (u "univ7"));
      Bgp.atom (v "x") (c (u "memberOf")) (c (u "univ7"));
    ]

let test_cover_check_valid () =
  List.iter
    (fun cover ->
      match Jucq.check_cover q1 cover with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("valid cover rejected: " ^ msg))
    [
      Jucq.ucq_cover q1;
      Jucq.scq_cover q1;
      [ [ 0; 1 ]; [ 1; 2 ] ];
      [ [ 0; 2 ]; [ 1 ] ];
    ]

let test_cover_check_invalid () =
  let expect_error cover reason =
    match Jucq.check_cover q1 cover with
    | Ok () -> Alcotest.fail ("invalid cover accepted: " ^ reason)
    | Error _ -> ()
  in
  expect_error [] "empty cover";
  expect_error [ [ 0 ] ] "misses atoms";
  expect_error [ [ 0; 1; 2 ]; [ 1 ] ] "fragment inclusion";
  expect_error [ [ 0; 1 ]; [ 2; 1 ]; [ 0; 1 ] ] "duplicate fragment";
  expect_error [ [ 0; 1; 3 ] ] "index out of range"

let test_cover_disconnected_fragment () =
  (* q(x, z) :- x p y, z q w: a single fragment containing both atoms has an
     internal cartesian product. *)
  let q =
    Bgp.make [ v "x"; v "z" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "z") (c (u "q")) (v "y");
        Bgp.atom (v "x") (c (u "r")) (v "z");
      ]
  in
  (match Jucq.check_cover q [ [ 0; 1 ]; [ 2 ] ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("shared-object fragment rejected: " ^ m));
  match Jucq.check_cover q [ [ 0; 2 ]; [ 1 ] ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("connected fragment rejected: " ^ m)

let test_cover_query_def34 () =
  (* Cover {{t1},{t2,t3}} of q1: q_f1(x,y) and q_f2(x) (paper, Section 3). *)
  let cover = [ [ 0 ]; [ 1; 2 ] ] in
  let f1 = Jucq.cover_query q1 cover [ 0 ] in
  let f2 = Jucq.cover_query q1 cover [ 1; 2 ] in
  Alcotest.(check (list string)) "f1 head" [ "x"; "y" ] (Bgp.head_vars f1);
  Alcotest.(check (list string)) "f2 head" [ "x" ] (Bgp.head_vars f2);
  Alcotest.(check int) "f1 body" 1 (List.length f1.Bgp.body);
  Alcotest.(check int) "f2 body" 2 (List.length f2.Bgp.body)

let test_cover_query_join_var_not_distinguished () =
  (* A shared variable that is not distinguished must still appear in the
     cover-query heads so the fragments can join. *)
  let q =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "q")) (v "z");
      ]
  in
  let cover = [ [ 0 ]; [ 1 ] ] in
  let f1 = Jucq.cover_query q cover [ 0 ] in
  let f2 = Jucq.cover_query q cover [ 1 ] in
  Alcotest.(check (list string)) "f1 head has join var" [ "x"; "y" ]
    (Bgp.head_vars f1);
  Alcotest.(check (list string)) "f2 head is join var only" [ "y" ]
    (Bgp.head_vars f2)

(* ---- check_cover edge cases ---- *)

let test_cover_check_duplicate_atoms () =
  (* A body with syntactically duplicate atoms: the indexes are distinct,
     so singleton fragments over each copy are not "included" in one
     another and both covers are valid. *)
  let a = Bgp.atom (v "x") (c (u "p")) (v "y") in
  let b = Bgp.atom (v "y") (c (u "q")) (v "z") in
  let q = Bgp.make [ v "x" ] [ a; a; b ] in
  (match Jucq.check_cover q (Jucq.ucq_cover q) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("ucq cover over duplicates rejected: " ^ m));
  (match Jucq.check_cover q (Jucq.scq_cover q) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("scq cover over duplicates rejected: " ^ m));
  (* … but a fragment covering both copies does include the singleton. *)
  (match Jucq.check_cover q [ [ 0; 1 ]; [ 1 ]; [ 2 ] ] with
  | Ok () -> Alcotest.fail "included duplicate fragment accepted"
  | Error _ -> ());
  (* the cover query of one duplicate has the same head as the other's *)
  let cover = Jucq.scq_cover q in
  Alcotest.(check (list string))
    "duplicate cover queries agree"
    (Bgp.head_vars (Jucq.cover_query q cover [ 0 ]))
    (Bgp.head_vars (Jucq.cover_query q cover [ 1 ]))

let test_cover_check_single_atom () =
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "ucq = scq on a single atom" true
    (Jucq.ucq_cover q = Jucq.scq_cover q);
  (match Jucq.check_cover q [ [ 0 ] ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("singleton cover rejected: " ^ m));
  (match Jucq.check_cover q [] with
  | Ok () -> Alcotest.fail "empty cover accepted"
  | Error _ -> ());
  (match Jucq.check_cover q [ [ 0 ]; [ 0 ] ] with
  | Ok () -> Alcotest.fail "duplicate singleton fragments accepted"
  | Error _ -> ());
  (* a single-atom cover query keeps the whole head *)
  Alcotest.(check (list string)) "head preserved" [ "x" ]
    (Bgp.head_vars (Jucq.cover_query q [ [ 0 ] ] [ 0 ]))

let test_cover_check_included_fragment () =
  (match Jucq.check_cover q1 [ [ 0; 1 ]; [ 0 ]; [ 2 ] ] with
  | Ok () -> Alcotest.fail "strictly included fragment accepted"
  | Error m ->
      Alcotest.(check bool) "mentions inclusion" true
        (String.length m > 0));
  match Jucq.check_cover q1 [ [ 0; 1; 2 ]; [ 2 ] ] with
  | Ok () -> Alcotest.fail "fragment included in full cover accepted"
  | Error _ -> ()

let test_cover_query_repeated_head_vars () =
  (* q(x,x) :- x p y, y q z: the repeated distinguished variable appears
     once in each cover-query head (heads are variable {e sets} under
     Definition 3.4). *)
  let q =
    Bgp.make
      [ v "x"; v "x" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "q")) (v "z");
      ]
  in
  let cover = [ [ 0 ]; [ 1 ] ] in
  (match Jucq.check_cover q cover with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("repeated-head cover rejected: " ^ m));
  Alcotest.(check (list string)) "f0 head" [ "x"; "y" ]
    (Bgp.head_vars (Jucq.cover_query q cover [ 0 ]));
  Alcotest.(check (list string)) "f1 head" [ "y" ]
    (Bgp.head_vars (Jucq.cover_query q cover [ 1 ]))

let identity_reformulation cq = Ucq.of_cqs [ cq ]

let test_jucq_eval_equals_direct () =
  let g =
    Rdf.Graph.of_triples
      [
        tr (u "a") typ (u "Student");
        tr (u "a") (u "degreeFrom") (u "univ7");
        tr (u "a") (u "memberOf") (u "univ7");
        tr (u "b") typ (u "Student");
        tr (u "b") (u "degreeFrom") (u "univ7");
      ]
  in
  let direct = Bgp.eval g q1 in
  List.iter
    (fun cover ->
      let j = Jucq.make ~reformulate:identity_reformulation q1 cover in
      Alcotest.check rows
        ("cover " ^ Jucq.cover_to_string cover)
        direct (Jucq.eval g j))
    [
      Jucq.ucq_cover q1;
      Jucq.scq_cover q1;
      [ [ 0; 1 ]; [ 1; 2 ] ];
      [ [ 0; 2 ]; [ 1 ] ];
      [ [ 0; 1 ]; [ 2 ] ];
    ]

let test_jucq_stats () =
  let j = Jucq.make ~reformulate:identity_reformulation q1 (Jucq.scq_cover q1) in
  Alcotest.(check int) "fragments" 3 (Jucq.fragment_count j);
  Alcotest.(check int) "disjuncts" 3 (Jucq.total_disjuncts j)

(* ---- Containment ---- *)

let test_containment_basic () =
  (* q(x) :- x p y, y p z  is contained in  q(x) :- x p y *)
  let broad = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let narrow =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "y") (c (u "p")) (v "z");
      ]
  in
  Alcotest.(check bool) "narrow ⊑ broad" true (Containment.contained narrow broad);
  Alcotest.(check bool) "broad ⋢ narrow" false (Containment.contained broad narrow)

let test_containment_head_sensitive () =
  let q1 = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let q2 = Bgp.make [ v "y" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "different heads incomparable" false
    (Containment.contained q1 q2)

let test_containment_constants () =
  let concrete =
    Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (c (u "a")) ]
  in
  let general = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "constant ⊑ variable" true
    (Containment.contained concrete general);
  Alcotest.(check bool) "variable ⋢ constant" false
    (Containment.contained general concrete)

let test_containment_equivalent_iso () =
  let q1 =
    Bgp.make [ v "x" ]
      [
        Bgp.atom (v "x") (c (u "p")) (v "y");
        Bgp.atom (v "x") (c (u "p")) (v "z");
      ]
  in
  (* the second atom is a duplicate up to renaming: equivalent to one atom *)
  let q2 = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "self-join collapses" true (Containment.equivalent q1 q2)

let test_minimize_example4 () =
  (* Example 4's terms (4) q(x,Publication) :- x type Publication and
     (5) q(x,Publication) :- x type Book: (5) is NOT contained in (4)
     syntactically — both must stay.  But q(x) :- x type Book duplicated
     with a weaker variant collapses. *)
  let t4 =
    Bgp.make [ v "x"; c (u "Publication") ]
      [ Bgp.atom (v "x") (c typ) (c (u "Publication")) ]
  in
  let t5 =
    Bgp.make [ v "x"; c (u "Publication") ]
      [ Bgp.atom (v "x") (c typ) (c (u "Book")) ]
  in
  Alcotest.(check int) "both stay" 2
    (Ucq.cardinal (Containment.minimize (Ucq.of_cqs [ t4; t5 ])));
  let general = Bgp.make [ v "x"; v "k" ] [ Bgp.atom (v "x") (c typ) (v "k") ] in
  let specific =
    Bgp.make [ v "x"; v "k" ]
      [ Bgp.atom (v "x") (c typ) (v "k"); Bgp.atom (v "x") (c (u "p")) (v "w") ]
  in
  Alcotest.(check int) "specific absorbed" 1
    (Ucq.cardinal (Containment.minimize (Ucq.of_cqs [ general; specific ])))

(* ---- minimize edge cases ---- *)

let test_minimize_single_disjunct () =
  let q = Bgp.make [ v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let m = Containment.minimize (Ucq.of_cqs [ q ]) in
  Alcotest.(check int) "single disjunct survives" 1 (Ucq.cardinal m);
  Alcotest.(check bool) "unchanged" true (Bgp.equal q (List.hd (Ucq.disjuncts m)))

let test_minimize_duplicate_atoms_equivalent () =
  (* A disjunct with a duplicated atom is equivalent to the single-atom
     disjunct; minimize keeps exactly one representative. *)
  let a = Bgp.atom (v "x") (c (u "p")) (v "y") in
  let single = Bgp.make [ v "x" ] [ a ] in
  let doubled =
    Bgp.make [ v "x" ] [ a; Bgp.atom (v "x") (c (u "p")) (v "z") ]
  in
  Alcotest.(check bool) "equivalent" true
    (Containment.equivalent single doubled);
  Alcotest.(check int) "one representative" 1
    (Ucq.cardinal (Containment.minimize (Ucq.of_cqs [ single; doubled ])))

let test_minimize_repeated_head_vars () =
  (* q(x,x) :- x p y and q(x,y) :- x p y are incomparable: the head
     [x,x] cannot map onto [x,y] position-wise nor vice versa. *)
  let rep = Bgp.make [ v "x"; v "x" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  let gen = Bgp.make [ v "x"; v "y" ] [ Bgp.atom (v "x") (c (u "p")) (v "y") ] in
  Alcotest.(check bool) "rep ⋢ gen" false (Containment.contained rep gen);
  Alcotest.(check bool) "gen ⋢ rep" false (Containment.contained gen rep);
  Alcotest.(check int) "both stay" 2
    (Ucq.cardinal (Containment.minimize (Ucq.of_cqs [ rep; gen ])))

(* ---- Sparql ---- *)

let test_sparql_parse () =
  let q =
    Sparql.parse
      {|PREFIX ub: <http://ub#>
        SELECT ?x ?y WHERE {
          ?x a ?y .
          ?x ub:degreeFrom <http://univ7.edu> .
          ?x ub:memberOf <http://univ7.edu>
        }|}
  in
  Alcotest.(check int) "three atoms" 3 (List.length q.Bgp.body);
  Alcotest.(check (list string)) "head" [ "x"; "y" ] (Bgp.head_vars q);
  match (List.hd q.Bgp.body).Bgp.p with
  | Bgp.Const p -> Alcotest.(check bool) "a = rdf:type" true (Rdf.Term.equal p typ)
  | Bgp.Var _ -> Alcotest.fail "expected rdf:type"

let test_sparql_literals_and_vars () =
  let q =
    Sparql.parse
      {|SELECT ?x WHERE { ?x ?p "1996" . ?x rdf:type ?y . }|}
  in
  Alcotest.(check int) "two atoms" 2 (List.length q.Bgp.body)

let test_sparql_distinct () =
  let q = Sparql.parse "SELECT DISTINCT ?x WHERE { ?x <p> ?y }" in
  Alcotest.(check (list string)) "head" [ "x" ] (Bgp.head_vars q)

let test_sparql_roundtrip () =
  let q =
    Sparql.parse
      {|SELECT ?x WHERE { ?x <p> "v" . ?x <q> ?z }|}
  in
  let q' = Sparql.parse (Sparql.to_sparql q) in
  Alcotest.(check bool) "roundtrip" true (Bgp.equal q q')

let test_sparql_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try ignore (Sparql.parse src); false
         with Invalid_argument _ -> true))
    [
      "SELECT WHERE { ?x <p> ?y }";
      "SELECT ?x { ?x <p> }";
      "SELECT ?x { ?x unknown:p ?y }";
      "?x <p> ?y";
    ]

(* ---- qcheck properties ---- *)

let gen_const =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> c (u (Printf.sprintf "n%d" i))) (int_bound 5);
        map (fun i -> c (lit (string_of_int i))) (int_bound 2);
      ])

let gen_prop_const = QCheck2.Gen.(map (fun i -> c (u (Printf.sprintf "p%d" i))) (int_bound 3))

(* Connected queries: each atom shares its subject with the previous atom's
   object variable (chain shape), with occasional constants. *)
let gen_connected_query =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* objs =
      list_size (return n)
        (oneof [ return `Var; map (fun c -> `Const c) gen_const ])
    in
    let* props = list_size (return n) gen_prop_const in
    let atoms =
      List.mapi
        (fun i (obj, p) ->
          let s = Bgp.Var (Printf.sprintf "x%d" i) in
          let o =
            match obj with
            | `Var -> Bgp.Var (Printf.sprintf "x%d" (i + 1))
            | `Const cst -> cst
          in
          Bgp.atom s p o)
        (List.combine objs props)
    in
    (* Chain subjects: each atom's subject is the previous (already fixed)
       atom's object when that is a variable, else the previous subject, so
       the query stays connected. *)
    let atoms =
      List.rev
        (List.fold_left
           (fun acc (a : Bgp.atom) ->
             match acc with
             | [] -> [ a ]
             | (prev : Bgp.atom) :: _ ->
                 let s =
                   match prev.Bgp.o with
                   | Bgp.Var _ as pv -> pv
                   | Bgp.Const _ -> prev.Bgp.s
                 in
                 { a with Bgp.s = s } :: acc)
           [] atoms)
    in
    let q0 = { Bgp.head = []; body = atoms } in
    let vars = Bgp.vars q0 in
    let* k = int_range 1 (List.length vars) in
    let head = List.filteri (fun i _ -> i < k) vars in
    return (Bgp.make (List.map (fun x -> v x) head) atoms))

let gen_data_graph =
  QCheck2.Gen.(
    map Rdf.Graph.of_triples
      (list_size (int_bound 30)
         (let* s = int_bound 5 in
          let* p = int_bound 3 in
          let* o = int_bound 5 in
          return
            (tr (u (Printf.sprintf "n%d" s)) (u (Printf.sprintf "p%d" p))
               (u (Printf.sprintf "n%d" o))))))

let prop_canonical_invariant =
  QCheck2.Test.make ~count:300 ~name:"canonical invariant under atom shuffle"
    QCheck2.Gen.(pair gen_connected_query (int_bound 1000))
    (fun (q, seed) ->
      let st = Random.State.make [| seed |] in
      let shuffled =
        let arr = Array.of_list q.Bgp.body in
        for i = Array.length arr - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        { q with Bgp.body = Array.to_list arr }
      in
      Bgp.equal q shuffled)

let prop_eval_head_arity =
  QCheck2.Test.make ~count:300 ~name:"eval rows match head arity"
    QCheck2.Gen.(pair gen_connected_query gen_data_graph)
    (fun (q, g) ->
      let arity = List.length q.Bgp.head in
      List.for_all (fun r -> List.length r = arity) (Bgp.eval g q))

let prop_jucq_identity_covers =
  QCheck2.Test.make ~count:300
    ~name:"JUCQ with identity reformulation = direct evaluation (Thm 3.1 algebra)"
    QCheck2.Gen.(pair gen_connected_query gen_data_graph)
    (fun (q, g) ->
      let covers =
        [ Jucq.ucq_cover q ]
        @ (match Jucq.check_cover q (Jucq.scq_cover q) with
          | Ok () -> [ Jucq.scq_cover q ]
          | Error _ -> [])
      in
      let direct = Bgp.eval g q in
      List.for_all
        (fun cover ->
          let j = Jucq.make ~reformulate:identity_reformulation q cover in
          Jucq.eval g j = direct)
        covers)

let prop_minimize_preserves_answers =
  QCheck2.Test.make ~count:300 ~name:"minimize preserves UCQ answers"
    QCheck2.Gen.(
      pair (list_size (int_range 1 4) gen_connected_query) gen_data_graph)
    (fun (cqs, g) ->
      (* force equal arities by projecting all heads to their first var *)
      let normalized =
        List.map
          (fun (q : Bgp.t) -> Bgp.make [ List.hd q.Bgp.head ] q.Bgp.body)
          cqs
      in
      let ucq = Ucq.of_cqs normalized in
      Ucq.eval g (Containment.minimize ucq) = Ucq.eval g ucq)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_canonical_invariant;
      prop_eval_head_arity;
      prop_jucq_identity_covers;
      prop_minimize_preserves_answers;
    ]

let () =
  Alcotest.run "query"
    [
      ( "bgp",
        [
          Alcotest.test_case "head validation" `Quick test_make_validates_head;
          Alcotest.test_case "empty body" `Quick test_make_rejects_empty_body;
          Alcotest.test_case "vars order" `Quick test_vars_order;
          Alcotest.test_case "normalize bnodes" `Quick test_normalize_bnodes;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "isomorphism" `Quick test_canonical_iso;
          Alcotest.test_case "heads distinguish" `Quick test_canonical_distinguishes_head;
          Alcotest.test_case "swapped existentials" `Quick test_canonical_swapped_existentials;
        ] );
      ( "eval",
        [
          Alcotest.test_case "incomplete without reasoning" `Quick test_eval_incomplete_without_reasoning;
          Alcotest.test_case "paper example 3" `Quick test_answer_example3;
          Alcotest.test_case "constants in head" `Quick test_eval_constants_in_head;
          Alcotest.test_case "set semantics" `Quick test_eval_set_semantics;
        ] );
      ( "ucq",
        [
          Alcotest.test_case "dedup" `Quick test_ucq_dedup;
          Alcotest.test_case "arity mismatch" `Quick test_ucq_arity_mismatch;
          Alcotest.test_case "union evaluation" `Quick test_ucq_eval_union;
        ] );
      ( "jucq",
        [
          Alcotest.test_case "valid covers" `Quick test_cover_check_valid;
          Alcotest.test_case "invalid covers" `Quick test_cover_check_invalid;
          Alcotest.test_case "fragment connectivity" `Quick test_cover_disconnected_fragment;
          Alcotest.test_case "duplicate atoms" `Quick test_cover_check_duplicate_atoms;
          Alcotest.test_case "single-atom query" `Quick test_cover_check_single_atom;
          Alcotest.test_case "included fragment" `Quick test_cover_check_included_fragment;
          Alcotest.test_case "repeated head vars" `Quick test_cover_query_repeated_head_vars;
          Alcotest.test_case "cover query (Def 3.4)" `Quick test_cover_query_def34;
          Alcotest.test_case "join var in heads" `Quick test_cover_query_join_var_not_distinguished;
          Alcotest.test_case "JUCQ eval = direct" `Quick test_jucq_eval_equals_direct;
          Alcotest.test_case "stats" `Quick test_jucq_stats;
        ] );
      ( "containment",
        [
          Alcotest.test_case "basic" `Quick test_containment_basic;
          Alcotest.test_case "head sensitivity" `Quick test_containment_head_sensitive;
          Alcotest.test_case "constants" `Quick test_containment_constants;
          Alcotest.test_case "equivalence" `Quick test_containment_equivalent_iso;
          Alcotest.test_case "minimize" `Quick test_minimize_example4;
          Alcotest.test_case "minimize single disjunct" `Quick test_minimize_single_disjunct;
          Alcotest.test_case "minimize duplicate atoms" `Quick test_minimize_duplicate_atoms_equivalent;
          Alcotest.test_case "minimize repeated head vars" `Quick test_minimize_repeated_head_vars;
        ] );
      ( "sparql",
        [
          Alcotest.test_case "parse" `Quick test_sparql_parse;
          Alcotest.test_case "literals and property vars" `Quick test_sparql_literals_and_vars;
          Alcotest.test_case "DISTINCT accepted" `Quick test_sparql_distinct;
          Alcotest.test_case "roundtrip" `Quick test_sparql_roundtrip;
          Alcotest.test_case "errors" `Quick test_sparql_errors;
        ] );
      ("properties", qcheck_cases);
    ]
