(* Tests for the serving layer: the wire protocol, the epoch coordinator,
   the reader/writer concurrency contract (a qcheck stress test running
   reader domains against a live writer), and a socket-level end-to-end
   exercise of the server itself. *)

let () = Unix.putenv "RDFQA_JOBS_FORCE" "1"

module P = Server.Protocol
module Epoch = Store.Epoch
module Es = Store.Encoded_store
module Bgp = Query.Bgp

let u s = Rdf.Term.uri s
let tr s p o = Rdf.Triple.make s p o
let typ = Rdf.Vocab.rdf_type
let v x = Bgp.Var x
let c t = Bgp.Const t

(* ---- Protocol ---- *)

let roundtrip_requests =
  [
    P.Query { strategy = None; text = "SELECT ?x WHERE { ?x a <C> }" };
    P.Query { strategy = Some "scq"; text = "SELECT ?x WHERE { ?x <p> ?y }" };
    P.Insert "/tmp/extra.nt";
    P.Delete "/tmp/extra.nt";
    P.Stats;
    P.Prom;
    P.Ping;
    P.Quit;
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_line r) with
      | Ok r' ->
          Alcotest.(check bool)
            ("roundtrip: " ^ P.request_to_line r)
            true (r = r')
      | Error e -> Alcotest.fail ("roundtrip rejected: " ^ e))
    roundtrip_requests

let test_protocol_errors () =
  let rejected line =
    match P.parse_request line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty line" true (rejected "");
  Alcotest.(check bool) "unknown verb" true (rejected "FROB x");
  Alcotest.(check bool) "unknown strategy" true (rejected "QUERY/bogus q");
  Alcotest.(check bool) "missing query text" true (rejected "QUERY");
  Alcotest.(check bool) "missing path" true (rejected "INSERT")

let test_protocol_escape () =
  let tricky = "a\tb\\c\nd\re." in
  Alcotest.(check string) "escape roundtrip" tricky
    (P.unescape (P.escape tricky));
  Alcotest.(check bool) "escaped is one line" false
    (String.contains (P.escape tricky) '\n');
  let plain = "<http://example.org/x>" in
  Alcotest.(check string) "identity on plain terms" plain (P.escape plain)

let test_protocol_rows () =
  let row = [ "<a>"; "b\tc"; ""; "\"lit\\eral\"" ] in
  Alcotest.(check (list string)) "row roundtrip" row
    (P.decode_row (P.encode_row row));
  Alcotest.(check bool) "encoded row is one line" false
    (String.contains (P.encode_row row) '\n')

let test_protocol_stuffing () =
  Alcotest.(check string) "terminator" "." P.terminator;
  Alcotest.(check string) "lone dot stuffed" ".." (P.stuff ".");
  Alcotest.(check string) "dot prefix stuffed" "..x" (P.stuff ".x");
  Alcotest.(check string) "plain line untouched" "x.y" (P.stuff "x.y");
  List.iter
    (fun l -> Alcotest.(check string) ("unstuff " ^ l) l (P.unstuff (P.stuff l)))
    [ "."; ".x"; ".."; "x"; "" ]

(* ---- Epoch: sequential semantics ---- *)

let test_epoch_fresh () =
  let ep = Epoch.create () in
  Alcotest.(check int) "epoch 0" 0 (Epoch.epoch ep);
  Alcotest.(check int) "no reads" 0 (Epoch.reads ep);
  Alcotest.(check int) "no writes" 0 (Epoch.writes ep);
  Alcotest.(check int) "no readers" 0 (Epoch.active_readers ep);
  Alcotest.(check int) "no waiting writers" 0 (Epoch.waiting_writers ep)

let test_epoch_read_pins () =
  let ep = Epoch.create () in
  let pinned = Epoch.read ep (fun e -> e) in
  Alcotest.(check int) "pins current epoch" 0 pinned;
  Alcotest.(check int) "read counted" 1 (Epoch.reads ep);
  ignore (Epoch.write ep (fun () -> ()));
  Alcotest.(check int) "write bumps epoch" 1 (Epoch.epoch ep);
  Alcotest.(check int) "pins bumped epoch" 1 (Epoch.read ep (fun e -> e));
  Alcotest.(check int) "writes counted" 1 (Epoch.writes ep)

let test_epoch_defer () =
  let ep = Epoch.create () in
  let runs = ref 0 in
  Epoch.defer ep (fun () -> incr runs);
  Alcotest.(check int) "queued, not run" 0 !runs;
  Alcotest.(check int) "pending" 1 (Epoch.deferred_pending ep);
  ignore (Epoch.write ep (fun () -> ()));
  Alcotest.(check int) "runs at next write" 1 !runs;
  Alcotest.(check int) "drained" 0 (Epoch.deferred_pending ep);
  Alcotest.(check int) "counted" 1 (Epoch.deferred_run ep);
  (* deferred from inside a write section runs at that section's end,
     after the epoch bump *)
  let seen_epoch = ref (-1) in
  ignore
    (Epoch.write ep (fun () ->
         Epoch.defer ep (fun () -> seen_epoch := Epoch.epoch ep)));
  Alcotest.(check int) "same-section thunk ran after bump" 2 !seen_epoch;
  (* oldest first *)
  let order = ref [] in
  Epoch.defer ep (fun () -> order := 1 :: !order);
  Epoch.defer ep (fun () -> order := 2 :: !order);
  ignore (Epoch.write ep (fun () -> ()));
  Alcotest.(check (list int)) "oldest first" [ 2; 1 ] !order

let test_epoch_exception_safety () =
  let ep = Epoch.create () in
  (try Epoch.read ep (fun _ -> failwith "reader") with Failure _ -> ());
  Alcotest.(check int) "reader slot released" 0 (Epoch.active_readers ep);
  (try Epoch.write ep (fun () -> failwith "writer") with Failure _ -> ());
  (* the failed write still bumped the epoch (the mutation may have been
     partial; conservative is safe) and released writer exclusion *)
  Alcotest.(check int) "writer exclusion released" 1
    (Epoch.read ep (fun e -> e));
  ignore (Epoch.write ep (fun () -> ()));
  Alcotest.(check int) "subsequent write fine" 2 (Epoch.epoch ep)

(* ---- Epoch: threaded drain and writer preference ---- *)

let test_epoch_write_drains_readers () =
  let ep = Epoch.create () in
  let entered = Atomic.make false in
  let reader =
    Thread.create
      (fun () ->
        Epoch.read ep (fun _ ->
            Atomic.set entered true;
            Thread.delay 0.2))
      ()
  in
  while not (Atomic.get entered) do
    Thread.delay 0.005
  done;
  let active_in_write =
    Epoch.write ep (fun () -> Epoch.active_readers ep)
  in
  Thread.join reader;
  Alcotest.(check int) "no reader under the write section" 0 active_in_write

let test_epoch_writer_preference () =
  let ep = Epoch.create () in
  let entered = Atomic.make false in
  let log = ref [] in
  let m = Mutex.create () in
  let push x =
    Mutex.lock m;
    log := x :: !log;
    Mutex.unlock m
  in
  let long_reader =
    Thread.create
      (fun () ->
        Epoch.read ep (fun _ ->
            Atomic.set entered true;
            Thread.delay 0.2))
      ()
  in
  while not (Atomic.get entered) do
    Thread.delay 0.005
  done;
  let writer = Thread.create (fun () -> Epoch.write ep (fun () -> push "w")) () in
  while Epoch.waiting_writers ep = 0 do
    Thread.delay 0.005
  done;
  (* this read arrives while a writer is waiting: it must be held back
     until after the write, even though a reader is currently active *)
  let late_reader = Thread.create (fun () -> Epoch.read ep (fun _ -> push "r")) () in
  Thread.join long_reader;
  Thread.join writer;
  Thread.join late_reader;
  Alcotest.(check (list string)) "writer admitted before late reader"
    [ "r"; "w" ] !log

(* ---- Stress fixture: a small store with a reformulation-active schema ---- *)

let stress_schema =
  Rdf.Schema.of_constraints
    [
      Rdf.Schema.Subclass (u "A", u "B");
      Rdf.Schema.Subproperty (u "p", u "q");
      Rdf.Schema.Domain (u "p", u "A");
    ]

let stress_pool =
  Array.of_list
    (List.concat
       (List.init 8 (fun i ->
            let x = u (Printf.sprintf "x%d" i)
            and y = u (Printf.sprintf "y%d" i) in
            [ tr x typ (u "A"); tr x (u "p") y; tr x (u "q") y ])))

let stress_store () =
  let s = Es.create stress_schema in
  Array.iter (Es.insert s) stress_pool;
  s

let q_class = Bgp.make [ v "s" ] [ Bgp.atom (v "s") (c typ) (c (u "B")) ]

let q_prop =
  Bgp.make [ v "s"; v "o" ] [ Bgp.atom (v "s") (c (u "q")) (v "o") ]

(* Order-sensitive fingerprint of the full fact table.  Within one epoch
   nothing moves, so a pinned reader must reproduce the writer's recorded
   value exactly; a torn read (a swap-remove observed halfway) almost
   surely breaks it. *)
let fingerprint store =
  let n = Es.size store in
  let h = ref (n * 0x9e3779b9) in
  for i = 0 to n - 1 do
    h := (!h * 131) + Es.subject store i;
    h := (!h * 131) + Es.property store i;
    h := (!h * 131) + Es.obj store i
  done;
  !h

(* ---- qcheck: reader domains vs a live writer ----

   The satellite contract: under random insert/delete interleavings every
   reader sees a store state bit-identical to some version-counter prefix
   (no torn reads), and the cache tiers never serve a stale epoch.  The
   writer records a fingerprint per data version inside its write section;
   each reader, inside a read section, requires the fingerprint of the
   version it observes to match the recorded one, and requires a
   shared-cache system and a cache-off system to agree on answers over the
   pinned state. *)

let stress_once ops =
  let store = stress_store () in
  let ep = Epoch.create () in
  let shared_cache = Cache.create ~mode:Cache.On store in
  let make_pair () =
    let sys_c = Rqa.Answering.make ~cache:shared_cache store in
    let sys_p = Rqa.Answering.make store in
    Cache.set_mode (Rqa.Answering.cache sys_p) Cache.Off;
    (* warm up in the main thread, before any concurrency: afterwards no
       request can grow the dictionary *)
    Rqa.Answering.warm_up sys_c [ q_class; q_prop ];
    Rqa.Answering.warm_up sys_p [ q_class; q_prop ];
    (sys_c, sys_p)
  in
  let pairs = [| make_pair (); make_pair () |] in
  let recorded = Hashtbl.create 64 in
  let rec_m = Mutex.create () in
  let record () =
    Mutex.lock rec_m;
    Hashtbl.replace recorded (Es.data_version store) (fingerprint store);
    Mutex.unlock rec_m
  in
  record ();
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let fail msg =
    Atomic.set failure (Some msg);
    Atomic.set stop true
  in
  let started = Atomic.make 0 in
  let reader (sys_c, sys_p) =
    let iters = ref 0 in
    let running = ref true in
    while !running do
      incr iters;
      Epoch.read ep (fun _pinned ->
          let dv = Es.data_version store in
          let fp = fingerprint store in
          (Mutex.lock rec_m;
           let expect = Hashtbl.find_opt recorded dv in
           Mutex.unlock rec_m;
           match expect with
           | Some fp' when fp' = fp -> ()
           | Some _ ->
               fail (Printf.sprintf "torn read: fingerprint mismatch at dv %d" dv)
           | None ->
               fail (Printf.sprintf "unrecorded data version %d observed" dv));
          let check q =
            let a = Rqa.Answering.answer_terms sys_c Rqa.Answering.Scq q in
            let b = Rqa.Answering.answer_terms sys_p Rqa.Answering.Scq q in
            if a <> b then fail "cache served a stale epoch"
          in
          check q_class;
          check q_prop);
      if !iters = 1 then Atomic.incr started;
      if Atomic.get stop || !iters >= 5000 then running := false
    done
  in
  let domains =
    Array.map (fun pair -> Domain.spawn (fun () -> reader pair)) pairs
  in
  (* wait for every reader to complete a first section, so the writes
     below genuinely interleave with live readers *)
  while Atomic.get started < Array.length pairs && Atomic.get failure = None do
    Thread.delay 0.001
  done;
  let reclaimed = ref 0 in
  List.iter
    (fun i ->
      let t = stress_pool.(i mod Array.length stress_pool) in
      Epoch.write ep (fun () ->
          (* toggle: every op is an effective change, so each data version
             denotes exactly one store state *)
          if not (Es.delete store t) then Es.insert store t;
          Epoch.defer ep (fun () -> incr reclaimed);
          record ()))
    ops;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  (match Atomic.get failure with
  | Some msg -> Alcotest.fail msg
  | None -> ());
  Alcotest.(check int) "every write completed" (List.length ops)
    (Epoch.writes ep);
  Alcotest.(check int) "every deferred thunk ran" (List.length ops) !reclaimed;
  Alcotest.(check bool) "readers made progress" true (Epoch.reads ep > 0);
  true

let prop_no_torn_reads =
  QCheck2.Test.make ~count:6
    ~name:"reader domains see per-version snapshots; caches never stale"
    QCheck2.Gen.(list_size (int_range 8 24) (int_bound 23))
    stress_once

(* ---- Socket end-to-end ---- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let read_response ic =
  let status = input_line ic in
  let rec rows acc =
    let l = input_line ic in
    if l = P.terminator then List.rev acc else rows (P.unstuff l :: acc)
  in
  (status, rows [])

let request (ic, oc) line =
  send oc line;
  read_response ic

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let sorted_rows rows = List.sort compare (List.map P.decode_row rows)

let expected_rows sys strategy q =
  List.sort compare
    (List.map
       (List.map Rdf.Term.to_string)
       (Rqa.Answering.answer_terms sys strategy q))

let q_class_text = "SELECT ?s WHERE { ?s a <B> }"

let with_server ?budget ?(warm = [ q_class; q_prop ]) store f =
  let config =
    {
      Server.default_config with
      strategy = Rqa.Answering.Scq;
      budget;
      warm;
    }
  in
  let srv = Server.start config store in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let test_server_end_to_end () =
  let store = stress_store () in
  (* an identical, independent store gives the single-shot reference *)
  let ref_sys = Rqa.Answering.make (stress_store ()) in
  Rqa.Answering.warm_up ref_sys [ q_class ];
  let expected = expected_rows ref_sys Rqa.Answering.Scq q_class in
  with_server store @@ fun srv ->
  let fd, ic, oc = connect (Server.port srv) in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ch = (ic, oc) in
  (* liveness and error paths *)
  let status, rows = request ch "PING" in
  Alcotest.(check string) "ping" "OK pong" status;
  Alcotest.(check int) "ping payload empty" 0 (List.length rows);
  let status, _ = request ch "FROB" in
  Alcotest.(check bool) "unknown verb is ERR" true (has_prefix ~prefix:"ERR" status);
  let status, _ = request ch "QUERY SELECT ?s WHERE {" in
  Alcotest.(check bool) "syntax error is ERR" true (has_prefix ~prefix:"ERR" status);
  (* a read, checked bit-identical against the single-shot reference *)
  let status, rows = request ch ("QUERY " ^ q_class_text) in
  Alcotest.(check bool) "query ok" true (has_prefix ~prefix:"OK rows=" status);
  Alcotest.(check (list (list string))) "rows = single-shot" expected
    (sorted_rows rows);
  (* per-request strategy override agrees *)
  let status, rows = request ch ("QUERY/ucq " ^ q_class_text) in
  Alcotest.(check bool) "override ok" true (has_prefix ~prefix:"OK rows=" status);
  Alcotest.(check (list (list string))) "ucq override rows agree" expected
    (sorted_rows rows);
  (* insert / delete cycle through a server-side file *)
  let extra = tr (u "x8") typ (u "A") in
  let file = Filename.temp_file "rdfqa_serve" ".nt" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
  @@ fun () ->
  let out = open_out file in
  output_string out (Rdf.Ntriples.line_of_triple extra ^ "\n");
  close_out out;
  let status, _ = request ch ("INSERT " ^ file) in
  Alcotest.(check bool) "insert ok" true
    (has_prefix ~prefix:"OK schema=0 data=1" status);
  let _, rows = request ch ("QUERY " ^ q_class_text) in
  Alcotest.(check int) "insert visible" (List.length expected + 1)
    (List.length rows);
  let status, _ = request ch ("DELETE " ^ file) in
  Alcotest.(check bool) "delete ok" true
    (has_prefix ~prefix:"OK schema=0 data=1" status);
  let _, rows = request ch ("QUERY " ^ q_class_text) in
  Alcotest.(check (list (list string))) "delete restores answers" expected
    (sorted_rows rows);
  (* stats and shutdown *)
  let status, rows = request ch "STATS" in
  Alcotest.(check bool) "stats ok" true (has_prefix ~prefix:"OK" status);
  Alcotest.(check bool) "stats reports the epoch" true
    (List.exists (has_prefix ~prefix:"epoch=") rows);
  let status, _ = request ch "PROM" in
  Alcotest.(check bool) "prom ok" true (has_prefix ~prefix:"OK" status);
  let status, _ = request ch "QUIT" in
  Alcotest.(check string) "quit" "OK bye" status;
  Alcotest.(check bool) "requests counted" true (Server.requests_served srv > 0)

let test_server_concurrent_clients () =
  let store = stress_store () in
  let ref_sys = Rqa.Answering.make (stress_store ()) in
  Rqa.Answering.warm_up ref_sys [ q_class ];
  let expected = expected_rows ref_sys Rqa.Answering.Scq q_class in
  with_server store @@ fun srv ->
  let port = Server.port srv in
  let n_clients = 4 and n_requests = 5 in
  let results = Array.make n_clients [] in
  let client i =
    let fd, ic, oc = connect port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let acc = ref [] in
        for _ = 1 to n_requests do
          let status, rows = request (ic, oc) ("QUERY " ^ q_class_text) in
          acc := (has_prefix ~prefix:"OK" status, sorted_rows rows) :: !acc
        done;
        ignore (request (ic, oc) "QUIT");
        results.(i) <- !acc)
  in
  let threads = Array.init n_clients (fun i -> Thread.create client i) in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i res ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" i)
        n_requests (List.length res);
      List.iter
        (fun (ok, rows) ->
          Alcotest.(check bool) "status OK" true ok;
          Alcotest.(check (list (list string))) "rows identical" expected rows)
        res)
    results

let test_server_admission_reject () =
  let store = stress_store () in
  with_server ~budget:0 store @@ fun srv ->
  let fd, ic, oc = connect (Server.port srv) in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let status, rows = request (ic, oc) ("QUERY " ^ q_class_text) in
  Alcotest.(check bool) "rejected under zero budget" true
    (has_prefix ~prefix:"ERR rejected" status);
  Alcotest.(check int) "no rows leak past the gate" 0 (List.length rows);
  ignore (request (ic, oc) "QUIT")

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_no_torn_reads ]

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed requests" `Quick test_protocol_errors;
          Alcotest.test_case "escape/unescape" `Quick test_protocol_escape;
          Alcotest.test_case "row codec" `Quick test_protocol_rows;
          Alcotest.test_case "dot stuffing" `Quick test_protocol_stuffing;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "fresh coordinator" `Quick test_epoch_fresh;
          Alcotest.test_case "read pins, write bumps" `Quick test_epoch_read_pins;
          Alcotest.test_case "deferred reclamation" `Quick test_epoch_defer;
          Alcotest.test_case "exception safety" `Quick test_epoch_exception_safety;
          Alcotest.test_case "write drains readers" `Quick
            test_epoch_write_drains_readers;
          Alcotest.test_case "writer preference" `Quick
            test_epoch_writer_preference;
        ] );
      ("stress", qcheck_cases);
      ( "socket",
        [
          Alcotest.test_case "end to end" `Quick test_server_end_to_end;
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "admission gate" `Quick test_server_admission_reject;
        ] );
    ]
