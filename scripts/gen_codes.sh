#!/usr/bin/env bash
# Regenerate the README's diagnostic-code catalog from its single source
# of truth, `rdfqa check --codes --machine` (lib/analysis/diagnostic.ml).
# CI reruns this and fails on `git diff` drift, so the published table
# can never fall behind the code.
set -euo pipefail
cd "$(dirname "$0")/.."

README=README.md
BEGIN='<!-- codes:begin -->'
END='<!-- codes:end -->'

grep -qF "$BEGIN" "$README" && grep -qF "$END" "$README" || {
  echo "gen_codes: $README is missing the $BEGIN / $END markers" >&2
  exit 2
}

dune build bin/rdfqa.exe

table=$(./_build/default/bin/rdfqa.exe check --codes --machine |
  awk -F'\t' 'BEGIN {
      print "| code | meaning |"
      print "|---|---|"
    }
    { printf "| `%s` | %s |\n", $1, $2 }')

awk -v begin="$BEGIN" -v end="$END" -v table="$table" '
  $0 == begin { print; print table; skipping = 1; next }
  $0 == end   { skipping = 0 }
  !skipping   { print }
' "$README" > "$README.tmp"
mv "$README.tmp" "$README"
echo "gen_codes: refreshed the diagnostic catalog in $README"
