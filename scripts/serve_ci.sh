#!/usr/bin/env bash
# CI serving/soak gate: boot `rdfqa serve` on a quick-scale LUBM dataset,
# drive a scripted client mix against it, and hard-gate three contracts:
#
#   1. every read's rows are bit-identical to a single-shot
#      `rdfqa query` over the same store state (including states reached
#      through interleaved INSERT/DELETE — the single-shot side replays
#      the mutation with --insert);
#   2. a SIGTERM drain: the server exits 0 and its drain summary reports
#      the process-global domain pool joined (no leaked domains);
#   3. nothing in the mix is answered with ERR (the client exits 1 on any).
#
# Usage: scripts/serve_ci.sh [jobs]
#   RDFQA=path/to/rdfqa.exe overrides the binary (default: the dune build
#   tree, so `dune build bin/rdfqa.exe` first).
set -euo pipefail

JOBS=${1:-1}
RDFQA=${RDFQA:-_build/default/bin/rdfqa.exe}

if [ ! -x "$RDFQA" ]; then
  echo "serve_ci: missing $RDFQA (dune build bin/rdfqa.exe first)" >&2
  exit 2
fi

WORK=$(mktemp -d)
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== serve_ci: jobs=$JOBS =="

"$RDFQA" generate -w lubm -n 1 -o "$WORK/lubm.nt" > /dev/null

# A few extra facts to interleave: a new subject that satisfies both
# atoms of Q06 (?x a ub:Person via GraduateStudent, ?x ub:memberOf ?o),
# so INSERT moves the data version AND the checked answer set, without
# touching the schema.
cat > "$WORK/extra.nt" <<'EOF'
<http://serve.ci/student0> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent> .
<http://serve.ci/student0> <http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf> <http://www.Department0.University0.edu> .
<http://serve.ci/student1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent> .
<http://serve.ci/student1> <http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf> <http://www.Department0.University0.edu> .
EOF

"$RDFQA" serve -d "$WORK/lubm.nt" -w lubm -s gcov --jobs "$JOBS" \
  --port-file "$WORK/port" > "$WORK/server.log" 2>&1 &
SRV_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || { cat "$WORK/server.log" >&2; exit 1; }
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "serve_ci: no port file" >&2; cat "$WORK/server.log" >&2; exit 1; }

client() { "$RDFQA" client --port-file "$WORK/port" "$@"; }

# Single-shot reference rows: same binary, same dataset, same strategy.
# `query` prints rows then `-- ...` summary lines; rows never start with
# a dash (URIs and literals only).
reference() { # reference NAME [extra query args...]
  local wq=$1; shift
  "$RDFQA" query -d "$WORK/lubm.nt" --workload-query "$wq" -s gcov \
    --jobs "$JOBS" --limit 1000000 "$@" | grep -v '^--' || true
}

check_identical() { # check_identical LABEL got-file want-file
  if ! diff -q "$2" "$3" > /dev/null; then
    echo "serve_ci: FAIL — $1 rows differ from single-shot rdfqa query" >&2
    diff "$2" "$3" >&2 || true
    exit 1
  fi
  echo "serve_ci: ok — $1 bit-identical ($(wc -l < "$2") rows)"
}

HOT=lubm:Q04
COLD="lubm:Q01 lubm:Q03 lubm:Q05 lubm:Q06"

# --- phase 1: hot repeats (cold then answer-tier-served, same rows) ----------
client --workload-query $HOT --workload-query $HOT --workload-query $HOT \
  > "$WORK/hot.rows" 2> /dev/null
reference $HOT > "$WORK/hot.want1"
cat "$WORK/hot.want1" "$WORK/hot.want1" "$WORK/hot.want1" > "$WORK/hot.want"
check_identical "hot x3 ($HOT)" "$WORK/hot.rows" "$WORK/hot.want"

# --- phase 2: cold sweep, one connection per query ---------------------------
for wq in $COLD; do
  client --workload-query "$wq" > "$WORK/cold.rows" 2> /dev/null
  reference "$wq" > "$WORK/cold.want"
  check_identical "cold $wq" "$WORK/cold.rows" "$WORK/cold.want"
done

# --- phase 3: interleaved mutation ------------------------------------------
# INSERT, read, DELETE, read — twice.  The post-insert reference replays
# the same mutation single-shot (`query --insert`); the post-delete state
# is the original store again.
MUT=lubm:Q06
reference $MUT > "$WORK/mut.base"
reference $MUT --insert "$WORK/extra.nt" > "$WORK/mut.inserted"
if diff -q "$WORK/mut.base" "$WORK/mut.inserted" > /dev/null; then
  echo "serve_ci: FAIL — mutation fixture leaves $MUT's answers unchanged (vacuous gate)" >&2
  exit 1
fi
for round in 1 2; do
  client "INSERT $WORK/extra.nt" > /dev/null 2> /dev/null
  client --workload-query $MUT > "$WORK/mut.rows" 2> /dev/null
  check_identical "round $round post-insert $MUT" "$WORK/mut.rows" "$WORK/mut.inserted"
  client "DELETE $WORK/extra.nt" > /dev/null 2> /dev/null
  client --workload-query $MUT > "$WORK/mut.rows" 2> /dev/null
  check_identical "round $round post-delete $MUT" "$WORK/mut.rows" "$WORK/mut.base"
done

# A per-request strategy override must agree with the same single-shot
# strategy (ECov is excluded from identity checks: its anytime search is
# wall-clock bounded).
client --query-strategy scq --workload-query $HOT > "$WORK/scq.rows" 2> /dev/null
"$RDFQA" query -d "$WORK/lubm.nt" --workload-query $HOT -s scq \
  --jobs "$JOBS" --limit 1000000 | grep -v '^--' > "$WORK/scq.want"
check_identical "strategy override scq ($HOT)" "$WORK/scq.rows" "$WORK/scq.want"

# --- phase 4: server-side stats sanity ---------------------------------------
client STATS > "$WORK/stats.out" 2> /dev/null
grep -q '^epoch=4$' "$WORK/stats.out" \
  || { echo "serve_ci: FAIL — expected epoch=4 after 4 writes" >&2; cat "$WORK/stats.out" >&2; exit 1; }
grep -q '^writes=4$' "$WORK/stats.out" \
  || { echo "serve_ci: FAIL — expected writes=4" >&2; cat "$WORK/stats.out" >&2; exit 1; }
echo "serve_ci: ok — server stats coherent (epoch=4, writes=4)"

# --- phase 5: graceful drain -------------------------------------------------
kill -TERM "$SRV_PID"
code=0
wait "$SRV_PID" || code=$?
SRV_PID=
if [ "$code" -ne 0 ]; then
  echo "serve_ci: FAIL — server exited $code on SIGTERM" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
grep -q 'drained:' "$WORK/server.log" \
  || { echo "serve_ci: FAIL — no drain summary" >&2; cat "$WORK/server.log" >&2; exit 1; }
grep -q 'pool joined' "$WORK/server.log" \
  || { echo "serve_ci: FAIL — domain pool not joined on shutdown" >&2; cat "$WORK/server.log" >&2; exit 1; }
echo "serve_ci: ok — clean SIGTERM drain (exit 0, pool joined)"

echo "== serve_ci: all gates passed (jobs=$JOBS) =="
