#!/usr/bin/env bash
# Render the perf-history log as a self-contained static HTML trend page.
#
# Usage: scripts/gen_trend.sh [history.jsonl] [out.html]
#
# The page embeds the whole history as a JSON array and draws inline SVG
# line charts client-side — no external assets, no network, so it works
# as a plain CI artifact opened from disk.  Charts: ns_seq per benchmark,
# latency quantiles per workload, serve qps/p99 against the live server,
# cache warm speedup, admission safe fraction and GC/heap counters, each
# over run order (x = run index, labelled by commit).
set -euo pipefail

HISTORY=${1:-bench/history.jsonl}
OUT=${2:-trend.html}

if [ ! -f "$HISTORY" ] || [ ! -s "$HISTORY" ]; then
  echo "gen_trend: missing or empty $HISTORY" >&2
  exit 2
fi

DATA=$(jq -c -s . "$HISTORY")

{
cat <<'HEAD'
<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rdfqa perf history</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 1100px; color: #222; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid #ddd; }
  .charts { display: flex; flex-wrap: wrap; gap: 1rem; }
  .chart { border: 1px solid #e3e3e3; border-radius: 6px; padding: .5rem .75rem; }
  .chart .title { font-weight: 600; font-size: .85rem; margin-bottom: .25rem; }
  .chart .minmax { color: #777; font-size: .75rem; }
  svg polyline { fill: none; stroke: #2266cc; stroke-width: 1.5; }
  svg circle { fill: #2266cc; }
  svg text { font-size: 9px; fill: #999; }
  .meta { color: #777; font-size: .85rem; }
</style>
</head>
<body>
<h1>rdfqa perf history</h1>
<div class="meta" id="meta"></div>
<div id="root"></div>
<script id="history-data" type="application/json">
HEAD
printf '%s\n' "$DATA"
cat <<'TAIL'
</script>
<script>
"use strict";
const runs = JSON.parse(document.getElementById("history-data").textContent);
document.getElementById("meta").textContent =
  runs.length + " runs, " + runs[0].date + " to " + runs[runs.length - 1].date +
  " (scales: " + [...new Set(runs.map(r => r.scale))].join(", ") + ")";

const W = 320, H = 120, PAD = 24;

function fmt(v) {
  if (!isFinite(v)) return "-";
  if (Math.abs(v) >= 1e9) return (v / 1e9).toFixed(2) + "G";
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return v.toFixed(Math.abs(v) < 10 ? 2 : 1);
}

// points: [{label, y}] in run order; y === null for runs missing the metric
function chart(title, unit, points) {
  const ys = points.map(p => p.y).filter(y => y !== null && isFinite(y));
  if (ys.length === 0) return null;
  const lo = Math.min(...ys), hi = Math.max(...ys);
  const span = (hi - lo) || Math.abs(hi) || 1;
  const x = i => PAD + (points.length < 2 ? (W - 2 * PAD) / 2
                                          : (W - 2 * PAD) * i / (points.length - 1));
  const yy = v => (H - PAD) - (H - 2 * PAD) * ((v - lo) / span);
  const pts = [];
  const dots = [];
  points.forEach((p, i) => {
    if (p.y === null || !isFinite(p.y)) return;
    const cx = x(i), cy = yy(p.y);
    pts.push(cx.toFixed(1) + "," + cy.toFixed(1));
    dots.push(`<circle cx="${cx.toFixed(1)}" cy="${cy.toFixed(1)}" r="2"><title>${p.label}: ${fmt(p.y)} ${unit}</title></circle>`);
  });
  const first = points[0].label, last = points[points.length - 1].label;
  const div = document.createElement("div");
  div.className = "chart";
  div.innerHTML =
    `<div class="title">${title}</div>` +
    `<svg width="${W}" height="${H}" viewBox="0 0 ${W} ${H}">` +
    `<polyline points="${pts.join(" ")}"/>` + dots.join("") +
    `<text x="${PAD}" y="${H - 6}">${first}</text>` +
    `<text x="${W - PAD}" y="${H - 6}" text-anchor="end">${last}</text>` +
    `</svg>` +
    `<div class="minmax">min ${fmt(lo)} ${unit} &middot; max ${fmt(hi)} ${unit} &middot; last ${fmt(ys[ys.length - 1])} ${unit}</div>`;
  return div;
}

function section(title, charts) {
  const present = charts.filter(c => c !== null);
  if (present.length === 0) return;
  const root = document.getElementById("root");
  const h = document.createElement("h2");
  h.textContent = title;
  root.appendChild(h);
  const wrap = document.createElement("div");
  wrap.className = "charts";
  present.forEach(c => wrap.appendChild(c));
  root.appendChild(wrap);
}

function keysOf(field) {
  const keys = new Set();
  runs.forEach(r => Object.keys(r[field] || {}).forEach(k => keys.add(k)));
  return [...keys].sort();
}

function series(get) {
  return runs.map(r => {
    const v = get(r);
    return { label: r.commit, y: (v === undefined || v === null) ? null : v };
  });
}

section("Benchmarks (ns_seq: sequential ns/run)", keysOf("benches").map(name =>
  chart(name, "ns", series(r => r.benches && r.benches[name] && r.benches[name].ns_seq))));

section("Latency quantiles (end-to-end answer ms)", keysOf("latency").flatMap(l =>
  ["p50_ms", "p99_ms"].map(q =>
    chart(l + " " + q, "ms", series(r => r.latency && r.latency[l] && r.latency[l][q])))));

section("Cache warm speedup (cold_ms / warm_ms)", keysOf("cache").map(l =>
  chart(l, "x", series(r => r.cache && r.cache[l] && r.cache[l].warm_speedup))));

section("Serve (sustained qps and client p99 against the live server)", keysOf("serve").flatMap(l => [
  chart(l + " qps", "qps", series(r => r.serve && r.serve[l] && r.serve[l].qps)),
  chart(l + " p99", "ms", series(r => r.serve && r.serve[l] && r.serve[l].p99_ms)),
]));

section("Admission: provably-safe fraction", keysOf("admission").map(l =>
  chart(l, "", series(r => {
    const a = r.admission && r.admission[l];
    return a && a.queries ? a.provably_safe / a.queries : null;
  }))));

section("Process (GC at export)", [
  chart("heap_words", "w", series(r => r.gc && r.gc.heap_words)),
  chart("major_collections", "", series(r => r.gc && r.gc.major_collections)),
]);
</script>
</body>
</html>
TAIL
} > "$OUT"

echo "gen_trend: wrote $OUT ($(jq -s length "$HISTORY") runs)"
