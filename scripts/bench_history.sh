#!/usr/bin/env bash
# Append one BENCH_engine.json run to the perf history log.
#
# Usage: scripts/bench_history.sh [current.json] [history.jsonl]
#
# Each line of bench/history.jsonl is one self-contained run record:
#   {"commit", "date", "scale", "jobs", "effective_jobs", "cpus",
#    "benches":  {name:  {ns, ns_seq, speedup_vs_seq}},
#    "cache":    {label: {cold_ms, warm_ms, warm_speedup}},
#    "admission":{label: {queries, provably_safe, provably_fails,
#                         unknown, skipped}},
#    "latency":  {label: {answers, p50_ms, p90_ms, p99_ms, max_ms,
#                         store_bytes}},
#    "views":    {label: {noviews_ms, views_ms, speedup, materialize_ms}},
#    "serve":    {label: {clients, requests, writes, qps, p50_ms, p99_ms}},
#    "gc":       {minor_collections, major_collections, heap_words}}
# scripts/gen_trend.sh turns the log into the static trend page, and
# bench/check_regression.sh warns when the current run drifts past the
# history median.  Append-only by design: one line per CI run, committed
# or uploaded as an artifact by the weekly full-suite job.
set -euo pipefail

CURRENT=${1:-BENCH_engine.json}
HISTORY=${2:-bench/history.jsonl}

if [ ! -f "$CURRENT" ]; then
  echo "bench_history: missing $CURRENT" >&2
  exit 2
fi

commit=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

mkdir -p "$(dirname "$HISTORY")"

jq -c --arg commit "$commit" --arg date "$date" '
  {
    commit: $commit,
    date: $date,
    scale,
    jobs,
    effective_jobs,
    cpus,
    benches: (.results
              | with_entries(.value |= {ns, ns_seq, speedup_vs_seq})),
    cache: ((.cache // {})
            | with_entries(.value |= {cold_ms, warm_ms, warm_speedup})),
    admission: ((.admission // {})
                | with_entries(.value |= {queries, provably_safe,
                                          provably_fails, unknown, skipped})),
    latency: (.latency // {}),
    views: ((.views // {})
            | with_entries(.value |= {noviews_ms, views_ms, speedup,
                                      materialize_ms})),
    serve: ((.serve // {})
            | with_entries(.value |= {clients, requests, writes, qps,
                                      p50_ms, p99_ms})),
    gc: (.gc // {})
  }' "$CURRENT" >> "$HISTORY"

echo "bench_history: appended $commit to $HISTORY ($(wc -l < "$HISTORY") entries)"
