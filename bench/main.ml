(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on this library's substrates.

   Usage:  dune exec bench/main.exe -- [options]
     --scale quick|default|full   dataset sizes (default: default)
     --experiment LIST            comma-separated ids among
                                  table1,table2,table3,table4,
                                  fig4,fig5,fig6,fig7,fig8,fig9,fig10,
                                  ablations,minimization,workload,
                                  cache,admission,latency,views,serve
                                  (default: all)
     --runs N                     timed repetitions per measurement (default 1,
                                  after one warm-up when N > 1)
     --jobs N                     worker domains for parallel evaluation
                                  (default: RDFQA_JOBS, else 1)
     --bechamel                   also run the Bechamel micro-benchmarks

   Shapes to compare against the paper (absolute numbers differ: the
   substrate is this library's in-process engine, not the authors'
   testbed):
   - Table 2: grouping selective triples beats both the flat UCQ and the
     SCQ by large factors;
   - Figures 4-6: UCQ fails on large-reformulation queries, SCQ is worst
     on the MySQL-like engine, GCov always completes and is fastest or
     near-fastest, GCov ≈ ECov;
   - Figures 7-8: GCov explores a small fraction of the cover space;
     exhaustive search is infeasible on the 10-atom DBLP Q10;
   - Figure 9: the Section 4.1 model and the engine-internal estimate
     guide the search to similar choices;
   - Figure 10: saturation is fastest once paid for; the GCov JUCQ is
     competitive on many queries while UCQ trails by orders of magnitude. *)

open Query

let now_ms () = Unix.gettimeofday () *. 1000.0

(* ---------- configuration ---------- *)

type config = {
  scale : string;
  lubm_small : int;   (* universities *)
  lubm_large : int;
  dblp_pubs : int;
  runs : int;
  jobs : int;
  experiments : string list;
  bechamel : bool;
}

let all_experiments =
  [ "table1"; "table2"; "table3"; "table4"; "fig4"; "fig5"; "fig6"; "fig7";
    "fig8"; "fig9"; "fig10"; "ablations"; "minimization"; "workload";
    "cache"; "admission"; "latency"; "views"; "serve" ]

let parse_config () =
  let cfg =
    ref
      {
        scale = "default";
        lubm_small = 8;
        lubm_large = 40;
        dblp_pubs = 15_000;
        runs = 1;
        jobs = Par.current_jobs ();
        experiments = all_experiments;
        bechamel = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (cfg :=
           match s with
           | "quick" ->
               {
                 !cfg with
                 scale = s;
                 lubm_small = 2;
                 lubm_large = 8;
                 dblp_pubs = 4_000;
               }
           | "default" -> { !cfg with scale = s }
           | "full" ->
               {
                 !cfg with
                 scale = s;
                 lubm_small = 20;
                 lubm_large = 190;
                 dblp_pubs = 150_000;
               }
           | other -> failwith ("unknown scale: " ^ other));
        go rest
    | "--experiment" :: s :: rest ->
        cfg := { !cfg with experiments = String.split_on_char ',' s };
        go rest
    | "--runs" :: n :: rest ->
        cfg := { !cfg with runs = int_of_string n };
        go rest
    | "--jobs" :: n :: rest ->
        cfg := { !cfg with jobs = int_of_string n };
        go rest
    | "--bechamel" :: rest ->
        cfg := { !cfg with bechamel = true };
        go rest
    | "--help" :: _ ->
        print_endline
          "usage: bench/main.exe [--scale quick|default|full] [--experiment \
           LIST] [--runs N] [--jobs N] [--bechamel]";
        exit 0
    | other :: _ -> failwith ("unknown option: " ^ other)
  in
  go (List.tl (Array.to_list Sys.argv));
  !cfg

(* ---------- datasets and systems ---------- *)

type dataset = {
  label : string;
  store : Store.Encoded_store.t;
  reformulator : Reformulation.Reformulate.t;
  cache : Cache.t;
  queries : (string * Bgp.t) list;
  (* one system per engine profile, sharing the version-aware cache (and
     through it the tier-1 reformulation memo) *)
  systems : (string * Rqa.Answering.system) list Lazy.t;
  pg_system : Rqa.Answering.system Lazy.t;
}

let make_dataset label store queries schema =
  let reformulator = Reformulation.Reformulate.create schema in
  let cache = Cache.create ~reformulator store in
  let systems =
    lazy
      (List.map
         (fun p ->
           ( p.Engine.Profile.name,
             Rqa.Answering.make ~profile:p ~cache store ))
         Engine.Profile.all)
  in
  let pg_system =
    lazy
      (Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~cache store)
  in
  { label; store; reformulator; cache; queries; systems; pg_system }

(* Tier-1-memoized CQ→UCQ reformulation over the dataset's shared cache:
   what every construction-side consumer below uses, so repeated fragment
   reformulations cost one table probe. *)
let cached_reformulate ds cq = Cache.reformulate ds.cache cq

let atom_query (a : Bgp.atom) =
  let head = List.map (fun v -> Bgp.Var v) (Bgp.atom_vars a) in
  let head = if head = [] then [ a.s ] else head in
  Bgp.make head [ a ]

let cached_atom_count ds a =
  Ucq.cardinal (cached_reformulate ds (atom_query a))

type ctx = {
  cfg : config;
  lubm_s : dataset Lazy.t;
  lubm_l : dataset Lazy.t;
  dblp : dataset Lazy.t;
}

let build_ctx cfg =
  let lubm n label =
    lazy
      (let t0 = now_ms () in
       let store =
         Workloads.Lubm.generate { Workloads.Lubm.universities = n }
       in
       Printf.printf "[setup] %s: %d universities, %d triples (%.0f ms)\n%!"
         label n
         (Store.Encoded_store.size store)
         (now_ms () -. t0);
       make_dataset label store Workloads.Lubm.queries Workloads.Lubm.schema)
  in
  {
    cfg;
    lubm_s = lubm cfg.lubm_small "LUBM-S";
    lubm_l = lubm cfg.lubm_large "LUBM-L";
    dblp =
      lazy
        (let t0 = now_ms () in
         let store =
           Workloads.Dblp.generate
             { Workloads.Dblp.publications = cfg.dblp_pubs }
         in
         Printf.printf "[setup] DBLP: %d publications, %d triples (%.0f ms)\n%!"
           cfg.dblp_pubs
           (Store.Encoded_store.size store)
           (now_ms () -. t0);
         make_dataset "DBLP" store Workloads.Dblp.queries Workloads.Dblp.schema);
  }

(* ---------- measurement ---------- *)

type outcome =
  | Ok_ of {
      total_ms : float;
      exec_ms : float;
      rows : int;
      report : Rqa.Answering.report;
    }
  | Failed of string

let median xs =
  let sorted = List.sort Float.compare xs in
  List.nth sorted (List.length sorted / 2)

let run_strategy ~runs sys strategy q =
  let once () =
    let t0 = now_ms () in
    let report = Rqa.Answering.answer sys strategy q in
    let total = now_ms () -. t0 in
    (total, report)
  in
  try
    let samples =
      if runs <= 1 then [ once () ]
      else begin
        ignore (once ());  (* warm-up *)
        List.init runs (fun _ -> once ())
      end
    in
    let total = median (List.map fst samples) in
    let _, report = List.hd samples in
    Ok_
      {
        total_ms = total;
        exec_ms = report.Rqa.Answering.execution_ms;
        rows = Engine.Relation.rows report.Rqa.Answering.answers;
        report;
      }
  with Engine.Profile.Engine_failure { reason; _ } ->
    Failed (Engine.Profile.failure_to_string reason)

let fmt_outcome = function
  | Ok_ { total_ms; _ } -> Printf.sprintf "%10.1f" total_ms
  | Failed _ -> "      FAIL"

let default_ecov_budget =
  { Rqa.Cover_space.max_covers = 50_000; max_millis = 20_000.0 }

let strategy_columns =
  [
    ("UCQ", Rqa.Answering.Ucq);
    ("SCQ", Rqa.Answering.Scq);
    ("ECov", Rqa.Answering.Ecov default_ecov_budget);
    ("GCov", Rqa.Answering.Gcov);
  ]

let header title =
  Printf.printf "\n==================== %s ====================\n%!" title

(* ---------- Table 1 & Table 3: per-triple statistics ---------- *)

let per_triple_table ds qname =
  let q = List.assoc qname ds.queries in
  let sys = Lazy.force ds.pg_system in
  let ex = Rqa.Answering.engine sys in
  Printf.printf "%-6s %15s %17s %27s\n" "triple" "#answers" "#reformulations"
    "#answers after reformulation";
  List.iteri
    (fun i (a : Bgp.atom) ->
      let atom_q = atom_query a in
      let direct = Engine.Relation.rows (Engine.Executor.eval_cq ex atom_q) in
      let ucq = cached_reformulate ds atom_q in
      let nref = Ucq.cardinal ucq in
      let after = Engine.Relation.rows (Engine.Executor.eval_ucq ex ucq) in
      Printf.printf "(t%d)   %15d %17d %27d\n%!" (i + 1) direct nref after)
    q.Bgp.body

let table1 ctx =
  header "Table 1: characteristics of q1 (LUBM Q01)";
  per_triple_table (Lazy.force ctx.lubm_l) "Q01"

let table3 ctx =
  header "Table 3: characteristics of q2 (LUBM Q28)";
  per_triple_table (Lazy.force ctx.lubm_l) "Q28"

(* ---------- Table 2: all groupings of q1 ---------- *)

let table2 ctx =
  header "Table 2: sample reformulations of q1 (LUBM Q01), postgres-like";
  let ds = Lazy.force ctx.lubm_l in
  let sys = Lazy.force ds.pg_system in
  let q = List.assoc "Q01" ds.queries in
  let { Rqa.Cover_space.covers; _ } = Rqa.Cover_space.enumerate q in
  let reformulate = cached_reformulate ds in
  Printf.printf "%-28s %16s %15s\n" "cover" "#reformulations" "exec.time (ms)";
  List.iter
    (fun cover ->
      let j = Jucq.make ~reformulate q cover in
      let terms = Jucq.total_disjuncts j in
      let t0 = now_ms () in
      match Engine.Executor.eval_jucq (Rqa.Answering.engine sys) j with
      | _ ->
          Printf.printf "%-28s %16d %15.1f\n%!"
            (Jucq.cover_to_string cover)
            terms (now_ms () -. t0)
      | exception Engine.Profile.Engine_failure { reason; _ } ->
          Printf.printf "%-28s %16d %15s\n%!"
            (Jucq.cover_to_string cover)
            terms
            (Engine.Profile.failure_to_string reason))
    covers

(* ---------- Table 4: query characteristics ---------- *)

let table4 ctx =
  header "Table 4: characteristics of the evaluation queries";
  let datasets =
    [ Lazy.force ctx.lubm_s; Lazy.force ctx.lubm_l; Lazy.force ctx.dblp ]
  in
  List.iter
    (fun ds ->
      Printf.printf "-- %s (%d triples)\n" ds.label
        (Store.Encoded_store.size ds.store);
      Printf.printf "%-5s %12s %12s\n" "q" "|q_ref|" "|q(db)|";
      List.iter
        (fun (name, q) ->
          let nref =
            Reformulation.Reformulate.count_product_bound ds.reformulator q
          in
          let sys = Lazy.force ds.pg_system in
          let rows =
            match run_strategy ~runs:1 sys Rqa.Answering.Gcov q with
            | Ok_ { rows; _ } -> string_of_int rows
            | Failed reason -> "FAIL: " ^ reason
          in
          Printf.printf "%-5s %12d %12s\n%!" name nref rows)
        ds.queries)
    datasets

(* ---------- Figures 4, 5, 6: strategies × engines ---------- *)

let strategy_engine_figure ~title ds ~runs =
  header title;
  let systems = Lazy.force ds.systems in
  Printf.printf
    "%-5s %-14s %10s %10s %10s %10s   (total ms; FAIL = engine limit)\n" "q"
    "engine" "UCQ" "SCQ" "ECov" "GCov";
  List.iter
    (fun (name, q) ->
      List.iter
        (fun (ename, sys) ->
          let cells =
            List.map
              (fun (_, strat) -> fmt_outcome (run_strategy ~runs sys strat q))
              strategy_columns
          in
          Printf.printf "%-5s %-14s %s\n%!" name ename
            (String.concat " " cells))
        systems)
    ds.queries;
  (* Lifetime engine meters: failed statements charge work too, so these
     totals account for everything the figure above made each engine do. *)
  List.iter
    (fun (ename, sys) ->
      let ex = Rqa.Answering.engine sys in
      Printf.printf "-- %-14s %12d ops over %d statements\n%!" ename
        (Engine.Executor.total_operations ex)
        (Engine.Executor.statements_run ex))
    systems

let fig4 ctx =
  let ds = Lazy.force ctx.lubm_s in
  strategy_engine_figure ds ~runs:ctx.cfg.runs
    ~title:
      (Printf.sprintf
         "Figure 4: LUBM small (%d triples): UCQ/SCQ/ECov/GCov x 3 engines"
         (Store.Encoded_store.size ds.store))

let fig5 ctx =
  let ds = Lazy.force ctx.lubm_l in
  strategy_engine_figure ds ~runs:ctx.cfg.runs
    ~title:
      (Printf.sprintf
         "Figure 5: LUBM large (%d triples): UCQ/SCQ/ECov/GCov x 3 engines"
         (Store.Encoded_store.size ds.store))

let fig6 ctx =
  let ds = Lazy.force ctx.dblp in
  strategy_engine_figure ds ~runs:ctx.cfg.runs
    ~title:
      (Printf.sprintf
         "Figure 6: DBLP (%d triples): UCQ/SCQ/ECov/GCov x 3 engines"
         (Store.Encoded_store.size ds.store))

(* ---------- Figures 7, 8: covers explored + algorithm running times ---- *)

let algorithm_effort_figure ~title ds =
  header title;
  let sys = Lazy.force ds.pg_system in
  Printf.printf "%-5s %12s %12s %12s | %10s %10s %10s %10s\n" "q"
    "ECov-covers" "GCov-covers" "exhaustive" "ECov(ms)" "GCov(ms)" "UCQ(ms)"
    "SCQ(ms)";
  List.iter
    (fun (name, q) ->
      let obj_e = Rqa.Answering.objective sys q in
      let e = Rqa.Ecov.search ~budget:default_ecov_budget obj_e in
      let obj_g = Rqa.Answering.objective sys q in
      let g = Rqa.Gcov.search obj_g in
      (* construction times of the fixed reformulations, cold cache *)
      let time_construction cover =
        let r =
          Reformulation.Reformulate.create
            (Store.Encoded_store.schema ds.store)
        in
        let t0 = now_ms () in
        (try
           ignore
             (Jucq.make
                ~reformulate:(Reformulation.Reformulate.reformulate r)
                q cover)
         with Reformulation.Reformulate.Too_large _ -> ());
        now_ms () -. t0
      in
      let ucq_ms = time_construction (Jucq.ucq_cover q) in
      let scq_ms = time_construction (Jucq.scq_cover q) in
      Printf.printf "%-5s %12d %12d %12s | %10.1f %10.1f %10.1f %10.1f\n%!"
        name e.Rqa.Ecov.explored g.Rqa.Gcov.explored
        (if e.Rqa.Ecov.complete then "yes" else "TIMEOUT")
        e.Rqa.Ecov.elapsed_ms g.Rqa.Gcov.elapsed_ms ucq_ms scq_ms)
    ds.queries

let fig7 ctx =
  algorithm_effort_figure (Lazy.force ctx.lubm_l)
    ~title:"Figure 7: covers explored and algorithm running times (LUBM)"

let fig8 ctx =
  algorithm_effort_figure (Lazy.force ctx.dblp)
    ~title:"Figure 8: covers explored and algorithm running times (DBLP)"

(* ---------- Figure 9: cost-model comparison ---------- *)

let fig9 ctx =
  header
    "Figure 9: our cost model vs the engine-internal estimate (postgres-like)";
  let ds = Lazy.force ctx.lubm_l in
  let paper_sys =
    Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~cache:ds.cache
      ~cost_oracle:Rqa.Answering.Paper_model ds.store
  in
  let engine_sys =
    Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~cache:ds.cache
      ~cost_oracle:Rqa.Answering.Engine_model ds.store
  in
  Printf.printf "%-5s %14s %14s %14s %14s\n" "q" "ECov(ours)" "ECov(engine)"
    "GCov(ours)" "GCov(engine)";
  List.iter
    (fun (name, q) ->
      let cell sys strat = fmt_outcome (run_strategy ~runs:1 sys strat q) in
      Printf.printf "%-5s %14s %14s %14s %14s\n%!" name
        (cell paper_sys (Rqa.Answering.Ecov default_ecov_budget))
        (cell engine_sys (Rqa.Answering.Ecov default_ecov_budget))
        (cell paper_sys Rqa.Answering.Gcov)
        (cell engine_sys Rqa.Answering.Gcov))
    ds.queries

(* ---------- Figure 10: saturation vs reformulation ---------- *)

let fig10_one ds =
  let pg = Lazy.force ds.pg_system in
  let virtuoso =
    Rqa.Answering.make ~profile:Engine.Profile.virtuoso_like ~cache:ds.cache
      ds.store
  in
  (* Pay and report the saturation costs once, before timing queries. *)
  let t0 = now_ms () in
  ignore (Rqa.Answering.saturated_engine pg);
  Printf.printf "(saturation of %s: %.0f ms, %d -> %d triples)\n" ds.label
    (now_ms () -. t0)
    (Store.Encoded_store.size ds.store)
    (Store.Encoded_store.size
       (Engine.Executor.store (Rqa.Answering.saturated_engine pg)));
  ignore (Rqa.Answering.saturated_engine virtuoso);
  Printf.printf "%-5s %12s %14s %12s %12s\n" "q" "Sat(pg)" "Sat(virtuoso)"
    "UCQ(pg)" "GCov(pg)";
  List.iter
    (fun (name, q) ->
      let cell sys strat = fmt_outcome (run_strategy ~runs:1 sys strat q) in
      Printf.printf "%-5s %12s %14s %12s %12s\n%!" name
        (cell pg Rqa.Answering.Saturation)
        (cell virtuoso Rqa.Answering.Saturation)
        (cell pg Rqa.Answering.Ucq)
        (cell pg Rqa.Answering.Gcov))
    ds.queries

let fig10 ctx =
  header "Figure 10(a): saturation vs optimized reformulation, LUBM small";
  fig10_one (Lazy.force ctx.lubm_s);
  header "Figure 10(b): saturation vs optimized reformulation, LUBM large";
  fig10_one (Lazy.force ctx.lubm_l)

(* ---------- Ablations (DESIGN.md section 4) ---------- *)

let ablations ctx =
  header "Ablations: cost-model terms and GCov move ordering (LUBM large)";
  let ds = Lazy.force ctx.lubm_l in
  let queries =
    List.filter
      (fun (n, _) -> List.mem n [ "Q01"; "Q02"; "Q09"; "Q15"; "Q18"; "Q28" ])
      ds.queries
  in
  let eval_cover sys q cover =
    let reformulate = cached_reformulate ds in
    match Jucq.make ~reformulate q cover with
    | j -> (
        let t0 = now_ms () in
        match Engine.Executor.eval_jucq (Rqa.Answering.engine sys) j with
        | _ -> Printf.sprintf "%8.1f" (now_ms () -. t0)
        | exception Engine.Profile.Engine_failure _ -> "    FAIL")
    | exception Reformulation.Reformulate.Too_large _ -> "    FAIL"
  in
  let base =
    Rqa.Cost_model.coefficients_of_profile Engine.Profile.postgres_like
  in
  let variants =
    [
      ("full model", base);
      ("no materialization term", { base with Rqa.Cost_model.c_m = 0.0 });
      ("no dedup term", { base with Rqa.Cost_model.c_l = 0.0; c_k = 0.0 });
      ("no join term", { base with Rqa.Cost_model.c_j = 0.0 });
    ]
  in
  Printf.printf "%-5s %-26s %-30s %10s\n" "q" "variant" "chosen cover"
    "exec(ms)";
  List.iter
    (fun (name, q) ->
      let sys = Lazy.force ds.pg_system in
      let stats = Engine.Executor.statistics (Rqa.Answering.engine sys) in
      List.iter
        (fun (vname, coeff) ->
          let cm = Rqa.Cost_model.create ~coefficients:coeff stats in
          let obj =
            Rqa.Objective.create
              ~reformulate:(cached_reformulate ds)
              ~jucq_cost:(Rqa.Cost_model.jucq_cost cm)
              ~ucq_cost:(Rqa.Cost_model.ucq_cost cm)
              q
          in
          let g = Rqa.Gcov.search obj in
          Printf.printf "%-5s %-26s %-30s %10s\n%!" name vname
            (Jucq.cover_to_string g.Rqa.Gcov.cover)
            (eval_cover sys q g.Rqa.Gcov.cover))
        variants;
      (* move-ordering ablation *)
      List.iter
        (fun (oname, ordering) ->
          let obj = Rqa.Answering.objective sys q in
          let g = Rqa.Gcov.search ~ordering obj in
          Printf.printf "%-5s %-26s %-30s %10s (explored %d)\n%!" name oname
            (Jucq.cover_to_string g.Rqa.Gcov.cover)
            (eval_cover sys q g.Rqa.Gcov.cover)
            g.Rqa.Gcov.explored)
        [
          ("moves: cost-sorted", Rqa.Gcov.Cost_sorted);
          ("moves: fifo", Rqa.Gcov.Fifo);
        ])
    queries

(* ---------- Extension: containment minimization of reformulations ------ *)

let minimization ctx =
  header
    "Extension: containment-minimized UCQ reformulations (LUBM large, \
     postgres-like)";
  let ds = Lazy.force ctx.lubm_l in
  let sys = Lazy.force ds.pg_system in
  let ex = Rqa.Answering.engine sys in
  Printf.printf "%-5s %10s %10s | %12s %12s\n" "q" "|q_ref|" "|minimized|"
    "UCQ (ms)" "minUCQ (ms)";
  List.iter
    (fun (name, q) ->
      let ucq = cached_reformulate ds q in
      if Ucq.cardinal ucq <= 600 then begin
        let t0 = now_ms () in
        let minimized = Containment.minimize ucq in
        let min_ms = now_ms () -. t0 in
        let time u =
          let t0 = now_ms () in
          match Engine.Executor.eval_ucq ex u with
          | _ -> Printf.sprintf "%12.1f" (now_ms () -. t0)
          | exception Engine.Profile.Engine_failure _ -> "        FAIL"
        in
        Printf.printf "%-5s %10d %10d | %s %s   (minimize: %.1f ms)\n%!" name
          (Ucq.cardinal ucq) (Ucq.cardinal minimized) (time ucq)
          (time minimized) min_ms
      end)
    ds.queries

(* ---------- Workload driver: parallel query answering ---------- *)

(* Answers every LUBM-small query with a fresh system per query (the
   shared reformulation cache is thread-safe; engine-internal parallelism
   yields to the outer fan-out through the pool's reentrancy fallback),
   once at jobs=1 and once at the configured width.  The two runs must
   agree bit-for-bit: decoded answer rows in relation order, chosen
   covers and engine operation totals are compared, not just counted. *)
let workload_driver ctx =
  let jobs = ctx.cfg.jobs in
  header
    (Printf.sprintf
       "Workload driver: LUBM small, GCov/postgres-like, jobs=1 vs jobs=%d"
       jobs);
  let ds = Lazy.force ctx.lubm_s in
  (* Answer caching off for the driver: fresh systems share tiers 1-2
     through the dataset cache (the point of sharing), but every run must
     actually execute so the compared operation totals are the engines',
     not the answer tier's. *)
  let saved_mode = Cache.mode ds.cache in
  Cache.set_mode ds.cache Cache.Answers_off;
  let answer_one (_, q) =
    let sys =
      Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~cache:ds.cache
        ds.store
    in
    match Rqa.Answering.answer sys Rqa.Answering.Gcov q with
    | report ->
        let ex = Rqa.Answering.engine sys in
        let rows =
          List.map
            (List.map Rdf.Term.to_string)
            (Engine.Executor.decode ex report.Rqa.Answering.answers)
        in
        Ok
          ( rows,
            report.Rqa.Answering.cover,
            Engine.Executor.total_operations ex )
    | exception Engine.Profile.Engine_failure { reason; _ } ->
        Error (Engine.Profile.failure_to_string reason)
  in
  let queries = Array.of_list ds.queries in
  let run_all () = Par.parallel_map (Par.get ()) answer_one queries in
  Par.set_jobs 1;
  ignore (run_all ());  (* warm the shared reformulation cache *)
  let t0 = now_ms () in
  let seq = run_all () in
  let seq_ms = now_ms () -. t0 in
  Par.set_jobs jobs;
  let t0 = now_ms () in
  let par = run_all () in
  let par_ms = now_ms () -. t0 in
  Par.set_jobs jobs;
  Array.iteri
    (fun i (name, _) ->
      match seq.(i) with
      | Ok (rows, cover, ops) ->
          Printf.printf "%-5s %6d rows %10d ops   cover %s\n" name
            (List.length rows) ops
            (match cover with
            | Some c -> Jucq.cover_to_string c
            | None -> "-")
      | Error reason -> Printf.printf "%-5s FAIL: %s\n" name reason)
    queries;
  let identical = seq = par in
  let cpus = Par.recommended_jobs () in
  let effective = Par.jobs (Par.get ()) in
  Printf.printf
    "-- %d queries: sequential %.1f ms, jobs=%d (effective %d) %.1f ms, \
     speedup %.2fx, results %s (%d cores available)\n%!"
    (Array.length queries) seq_ms jobs effective par_ms
    (seq_ms /. Float.max par_ms 1e-9)
    (if identical then "IDENTICAL" else "DIVERGED")
    cpus;
  if effective < jobs then
    Printf.printf
      "-- note: jobs=%d was clamped to the %d core(s) the OS grants; no \
       wall-clock speedup is expected here, only the determinism check is \
       meaningful (set RDFQA_JOBS_FORCE=1 to oversubscribe anyway)\n%!"
      jobs cpus;
  Cache.set_mode ds.cache saved_mode;
  if not identical then begin
    prerr_endline "workload driver: parallel run diverged from sequential";
    exit 1
  end

(* ---------- Cache: cold vs warm answering ---------- *)

type cache_run = {
  c_label : string;
  cold_ms : float;
  warm_ms : float;
  replan_ms : float;  (* answers off: tiers 1-2 only *)
  t1_hits : int;      (* warm-path tier probes (see below) *)
  t1_misses : int;
  t2_hits : int;
  t2_misses : int;
  t3_hits : int;
  t3_misses : int;
}

(* Filled by [cache_experiment], written by [write_bench_json]. *)
let cache_runs : cache_run list ref = ref []

(* Three passes over (queries × engine profiles × search strategies):
   cold, warm (served by the answer tier), and answers-off (served by the
   reformulation and cover tiers, with real execution).  All three must
   agree bit-for-bit on decoded rows, covers, reformulation sizes and
   search effort — and the warm passes must never miss: the second pass
   asserts a 100% answer-tier hit rate, the third a 100% hit rate on
   tiers 1-2 (every reformulation and cover cost the cold pass needed is
   still there; data didn't move).  Engine failures are never cached, so
   failing statements must fail identically in all three passes. *)
let cache_experiment ctx =
  header "Cache: cold vs warm passes (bit-identity + per-tier hit rates)";
  let check dsl strategies =
    let ds = Lazy.force dsl in
    let cache = ds.cache in
    let systems = Lazy.force ds.systems in
    let outcome sys strat q =
      match Rqa.Answering.answer sys strat q with
      | r ->
          let ex =
            match strat with
            | Rqa.Answering.Saturation -> Rqa.Answering.saturated_engine sys
            | _ -> Rqa.Answering.engine sys
          in
          Ok
            ( List.map
                (List.map Rdf.Term.to_string)
                (Engine.Executor.decode ex r.Rqa.Answering.answers),
              r.Rqa.Answering.cover,
              r.Rqa.Answering.union_terms,
              r.Rqa.Answering.fragment_terms,
              r.Rqa.Answering.covers_explored )
      | exception Engine.Profile.Engine_failure { reason; _ } ->
          Error (Engine.Profile.failure_to_string reason)
    in
    let pass () =
      let t0 = now_ms () in
      let rows =
        List.concat_map
          (fun (ename, sys) ->
            List.concat_map
              (fun (sname, strat) ->
                List.map
                  (fun (qname, q) ->
                    ((ename, sname, qname), outcome sys strat q))
                  ds.queries)
              strategies)
          systems
      in
      (rows, now_ms () -. t0)
    in
    let fail_pass which =
      Printf.eprintf "cache experiment: %s pass diverged from cold (%s)\n"
        which ds.label;
      exit 1
    in
    let tier (s : Cache.stats) = function
      | `T1 -> s.Cache.reformulation
      | `T2 -> s.Cache.cover
      | `T3 -> s.Cache.answer
    in
    let delta t (before : Cache.stats) (after : Cache.stats) =
      ( (tier after t).Cache.hits - (tier before t).Cache.hits,
        (tier after t).Cache.misses - (tier before t).Cache.misses )
    in
    let cold, cold_ms = pass () in
    let s1 = Cache.stats cache in
    let warm, warm_ms = pass () in
    let s2 = Cache.stats cache in
    if warm <> cold then fail_pass "warm";
    let t3_hits, t3_misses = delta `T3 s1 s2 in
    if t3_misses > 0 then begin
      Printf.eprintf
        "cache experiment: %d answer-tier misses on the warm pass (%s)\n"
        t3_misses ds.label;
      exit 1
    end;
    Cache.set_mode cache Cache.Answers_off;
    let replan, replan_ms = pass () in
    Cache.set_mode cache Cache.On;
    if replan <> cold then fail_pass "answers-off";
    let s3 = Cache.stats cache in
    let t1_hits, t1_misses = delta `T1 s2 s3 in
    let t2_hits, t2_misses = delta `T2 s2 s3 in
    if t1_misses > 0 || t2_misses > 0 then begin
      Printf.eprintf
        "cache experiment: warm replanning missed (tier1 %d, tier2 %d) (%s)\n"
        t1_misses t2_misses ds.label;
      exit 1
    end;
    Printf.printf
      "%-7s cold %8.1f ms | warm %8.1f ms (%5.1fx, %d answer hits) | \
       replan %8.1f ms (tier1 %d hits, tier2 %d hits, 0 misses)\n%!"
      ds.label cold_ms warm_ms
      (cold_ms /. Float.max warm_ms 1e-9)
      t3_hits replan_ms t1_hits t2_hits;
    cache_runs :=
      !cache_runs
      @ [
          {
            c_label = ds.label;
            cold_ms;
            warm_ms;
            replan_ms;
            t1_hits;
            t1_misses;
            t2_hits;
            t2_misses;
            t3_hits;
            t3_misses;
          };
        ]
  in
  check ctx.lubm_s
    [
      ("ECov", Rqa.Answering.Ecov default_ecov_budget);
      ("GCov", Rqa.Answering.Gcov);
    ];
  check ctx.dblp [ ("GCov", Rqa.Answering.Gcov) ]

(* ---------- Admission: static-gate effectiveness ---------- *)

type admission_run = {
  a_label : string; (* "LUBM-S/postgres" *)
  a_queries : int;
  a_safe : int;
  a_fails : int;
  a_unknown : int;
  a_skipped : int; (* reformulation too large to cost statically *)
}

(* Filled by [admission_experiment], written by [write_bench_json]. *)
let admission_runs : admission_run list ref = ref []

(* How much of each workload the static analyzer can decide before
   execution, per engine profile, on the SCQ-cover JUCQ (the same
   statement [rdfqa check --cost] admits).  Queries whose reformulation
   is provably over the profile's union capacity are counted as skipped,
   mirroring the CLI's RF001 skip. *)
let admission_experiment ctx =
  header "Admission: static cost verdicts per engine profile (SCQ covers)";
  let module CV = Analysis.Cost_verify in
  let check dsl =
    let ds = Lazy.force dsl in
    let reformulate = cached_reformulate ds in
    List.iter
      (fun (ename, sys) ->
        let oracle =
          Engine.Executor.cost_oracle (Rqa.Answering.engine sys)
        in
        let capacity = oracle.CV.max_union_terms in
        let safe = ref 0
        and fails = ref 0
        and unknown = ref 0
        and skipped = ref 0 in
        List.iter
          (fun (_qname, q) ->
            let q = Bgp.normalize q in
            let cover = Jucq.scq_cover q in
            let too_large =
              List.exists
                (fun f ->
                  Reformulation.Reformulate.count_product_bound
                    ds.reformulator
                    (Jucq.cover_query q cover f)
                  > capacity)
                cover
            in
            if too_large then incr skipped
            else
              match Jucq.make ~reformulate q cover with
              | j -> (
                  match CV.verdict oracle (CV.Jucq j) with
                  | CV.Safe -> incr safe
                  | CV.Fails -> incr fails
                  | CV.Unknown -> incr unknown)
              | exception Reformulation.Reformulate.Too_large _ ->
                  incr skipped)
          ds.queries;
        let n = List.length ds.queries in
        Printf.printf
          "%-7s %-10s %2d queries | safe %2d | fails %2d | unknown %2d | \
           skipped %2d\n%!"
          ds.label ename n !safe !fails !unknown !skipped;
        admission_runs :=
          !admission_runs
          @ [
              {
                a_label = ds.label ^ "/" ^ ename;
                a_queries = n;
                a_safe = !safe;
                a_fails = !fails;
                a_unknown = !unknown;
                a_skipped = !skipped;
              };
            ])
      (Lazy.force ds.systems)
  in
  check ctx.lubm_s;
  check ctx.dblp

(* ---------- Latency histograms ---------- *)

type latency_run = {
  l_label : string;
  l_count : int;
  l_p50_ms : float;
  l_p90_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
  l_store_bytes : int;
}

(* Filled by [latency_experiment], written by [write_bench_json]. *)
let latency_runs : latency_run list ref = ref []

(* Per-workload end-to-end answer latency quantiles (GCov, postgres-like)
   over several cache-enabled passes — pass 1 is cold, the rest hit the
   answer tier, so the histogram sees the latency mix a serving process
   would.  These quantiles (and the store footprint) feed BENCH_engine.json
   and, through it, the perf-history trend page. *)
let latency_experiment ctx =
  header "Latency: per-workload answer quantiles (GCov, postgres-like)";
  let passes = 5 in
  let check dsl =
    let ds = Lazy.force dsl in
    let sys = Lazy.force ds.pg_system in
    let h = Metrics.Histogram.create () in
    for _pass = 1 to passes do
      List.iter
        (fun (_qname, q) ->
          let t = now_ms () in
          (match Rqa.Answering.answer sys Rqa.Answering.Gcov q with
          | (_ : Rqa.Answering.report) -> ()
          | exception Engine.Profile.Engine_failure _ -> ());
          Metrics.Histogram.observe h (now_ms () -. t))
        ds.queries
    done;
    let q p = Metrics.Histogram.quantile h p in
    let r =
      {
        l_label = ds.label;
        l_count = Metrics.Histogram.count h;
        l_p50_ms = q 0.50;
        l_p90_ms = q 0.90;
        l_p99_ms = q 0.99;
        l_max_ms = Metrics.Histogram.max_value h;
        l_store_bytes = Store.Encoded_store.approx_bytes ds.store;
      }
    in
    Printf.printf
      "%-7s %4d answers | p50 %7.2f ms | p90 %7.2f ms | p99 %7.2f ms | \
       max %7.2f ms | store %d B\n%!"
      r.l_label r.l_count r.l_p50_ms r.l_p90_ms r.l_p99_ms r.l_max_ms
      r.l_store_bytes;
    latency_runs := !latency_runs @ [ r ]
  in
  check ctx.lubm_s;
  check ctx.dblp

(* ---------- Views: workload-driven materialized views ---------- *)

type views_run = {
  v_label : string; (* "LUBM-S/ECov" *)
  v_noviews_ms : float;
  v_views_ms : float;
  v_materialize_ms : float; (* per dataset: selection + materialization *)
  v_selected : int;
  v_candidates : int;
  v_bytes : int; (* actual snapshot bytes held *)
  v_hits : int;
  v_misses : int;
}

(* Filled by [views_experiment], written by [write_bench_json]. *)
let views_runs : views_run list ref = ref []

(* Workload-total answering time with and without the materialized-view
   tier, per cover strategy, with a bit-identity gate: decoded answers,
   per-statement operation totals and failure reasons must all match the
   view-less baseline exactly, or the bench exits 1.

   Both systems share the dataset's store and one fresh cache (so tier-1
   physical identity holds across them and cover searches hit the same
   tier-2 memo), with the answer tier off so every measured answer is a
   real evaluation.  Selection runs before ANY measured evaluation: its
   fragment preparation lands every plan-time dictionary encode first,
   which the charge-identity of replayed snapshots depends on.  ECov runs
   with its wall clock disabled (cover determinism between the selection
   and measured runs) — affordable on LUBM, far too slow on DBLP's cover
   spaces, so the DBLP leg measures GCov only, like the cache
   experiment. *)
let views_experiment ctx =
  header "Views: workload answering with and without materialized views";
  let budget = 64 * 1024 * 1024 in
  let check dsl strategies =
    let ds = Lazy.force dsl in
    let cache = Cache.create ~reformulator:ds.reformulator ds.store in
    let profile = Engine.Profile.postgres_like in
    let sys_base = Rqa.Answering.make ~profile ~cache ds.store in
    let sys_views = Rqa.Answering.make ~profile ~cache ds.store in
    Cache.set_mode cache Cache.Answers_off;
    let t0 = now_ms () in
    let selection =
      Rqa.View_select.select_and_install
        ~strategies:(List.map snd strategies) ~budget sys_views ds.queries
    in
    let materialize_ms = now_ms () -. t0 in
    let v = Option.get (Rqa.Answering.views sys_views) in
    let outcome sys strat q =
      match Rqa.Answering.answer sys strat q with
      | r ->
          let ex = Rqa.Answering.engine sys in
          Ok
            ( List.map
                (List.map Rdf.Term.to_string)
                (Engine.Executor.decode ex r.Rqa.Answering.answers),
              Engine.Executor.last_operations ex )
      | exception Engine.Profile.Engine_failure { reason; _ } ->
          Error (Engine.Profile.failure_to_string reason)
    in
    List.iter
      (fun (sname, strat) ->
        let pass sys =
          let t0 = now_ms () in
          let rows =
            List.map (fun (qname, q) -> (qname, outcome sys strat q)) ds.queries
          in
          (rows, now_ms () -. t0)
        in
        let h0 = Cache.Views.hits v and m0 = Cache.Views.misses v in
        let base, noviews_ms = pass sys_base in
        let views, views_ms = pass sys_views in
        if base <> views then begin
          Printf.eprintf
            "views experiment: %s/%s diverged from the view-less baseline\n"
            ds.label sname;
          exit 1
        end;
        let r =
          {
            v_label = ds.label ^ "/" ^ sname;
            v_noviews_ms = noviews_ms;
            v_views_ms = views_ms;
            v_materialize_ms = materialize_ms;
            v_selected = List.length selection.Rqa.View_select.selected;
            v_candidates = List.length selection.Rqa.View_select.candidates;
            v_bytes = Cache.Views.bytes v;
            v_hits = Cache.Views.hits v - h0;
            v_misses = Cache.Views.misses v - m0;
          }
        in
        Printf.printf
          "%-12s no-views %8.1f ms | views %8.1f ms (%5.2fx) | %d/%d views, \
           %d B, %d hits, %d misses | materialize %.1f ms\n%!"
          r.v_label r.v_noviews_ms r.v_views_ms
          (r.v_noviews_ms /. Float.max r.v_views_ms 1e-9)
          r.v_selected r.v_candidates r.v_bytes r.v_hits r.v_misses
          r.v_materialize_ms;
        views_runs := !views_runs @ [ r ])
      strategies
  in
  check ctx.lubm_s
    [
      ("ECov", Rqa.Answering.Ecov Rqa.View_select.deterministic_ecov_budget);
      ("GCov", Rqa.Answering.Gcov);
    ];
  check ctx.dblp [ ("GCov", Rqa.Answering.Gcov) ]

(* ---------- Serve: sustained throughput against a live server ---------- *)

type serve_run = {
  sv_label : string;
  sv_clients : int;
  sv_requests : int; (* client read requests completed *)
  sv_errors : int;   (* ERR responses among them (engine-limit refusals) *)
  sv_writes : int;   (* INSERT/DELETE write sections interleaved *)
  sv_qps : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
}

(* Filled by [serve_experiment], written by [write_bench_json]. *)
let serve_runs : serve_run list ref = ref []

let serve_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let serve_request ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  let status = input_line ic in
  let rec drain () =
    if input_line ic <> Server.Protocol.terminator then drain ()
  in
  drain ();
  status

(* An in-process server over a fresh LUBM-S-scale store (fresh so the
   server-side mutation below never touches the shared datasets):
   [n_clients] connections each issue a hot/cold query mix — the hot
   query repeats, the cold ones cycle through the workload — while one
   writer connection toggles a fact file between INSERT and DELETE.
   Sustained read throughput and client-observed latency quantiles feed
   the "serve" section of BENCH_engine.json (and, through it, the
   perf-history trend page). *)
let serve_experiment ctx =
  header "Serve: concurrent clients against a live rdfqa server";
  let store =
    Workloads.Lubm.generate
      { Workloads.Lubm.universities = ctx.cfg.lubm_small }
  in
  let queries = List.map snd Workloads.Lubm.queries in
  let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  let texts =
    Array.of_list (List.map (fun q -> one_line (Query.Sparql.to_sparql q)) queries)
  in
  let config =
    {
      Server.default_config with
      strategy = Rqa.Answering.Scq;
      warm = queries;
    }
  in
  let srv = Server.start config store in
  let port = Server.port srv in
  let n_clients = 4 in
  let per_client =
    match ctx.cfg.scale with "quick" -> 60 | "full" -> 600 | _ -> 200
  in
  let lat = Array.init n_clients (fun _ -> Array.make per_client 0.0) in
  let errors = Array.make n_clients 0 in
  let reader k =
    let fd, ic, oc = serve_connect port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        for i = 0 to per_client - 1 do
          (* two hot requests for every cold one: a serving cache mix *)
          let text =
            if i mod 3 < 2 then texts.(0)
            else texts.((i / 3) mod Array.length texts)
          in
          let t0 = now_ms () in
          let status = serve_request ic oc ("QUERY " ^ text) in
          lat.(k).(i) <- now_ms () -. t0;
          if String.length status >= 3 && String.sub status 0 3 = "ERR" then
            errors.(k) <- errors.(k) + 1
        done;
        ignore (serve_request ic oc "QUIT"))
  in
  let writes = ref 0 in
  let stop_writer = Atomic.make false in
  let writer () =
    let file = Filename.temp_file "rdfqa_bench_serve" ".nt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
      (fun () ->
        let out = open_out file in
        for i = 0 to 2 do
          output_string out
            (Rdf.Ntriples.line_of_triple
               (Rdf.Triple.make
                  (Rdf.Term.uri (Printf.sprintf "http://bench.serve/x%d" i))
                  Rdf.Vocab.rdf_type
                  (Rdf.Term.uri "http://bench.serve/Extra"))
            ^ "\n")
        done;
        close_out out;
        let fd, ic, oc = serve_connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            while not (Atomic.get stop_writer) do
              ignore (serve_request ic oc ("INSERT " ^ file));
              ignore (serve_request ic oc ("DELETE " ^ file));
              writes := !writes + 2;
              Thread.delay 0.005
            done;
            ignore (serve_request ic oc "QUIT")))
  in
  let t0 = now_ms () in
  let wt = Thread.create writer () in
  let threads = Array.init n_clients (fun k -> Thread.create reader k) in
  Array.iter Thread.join threads;
  Atomic.set stop_writer true;
  Thread.join wt;
  let wall_ms = now_ms () -. t0 in
  Server.stop srv;
  let h = Metrics.Histogram.create () in
  Array.iter (Array.iter (fun ms -> Metrics.Histogram.observe h ms)) lat;
  let requests = n_clients * per_client in
  let r =
    {
      sv_label = "LUBM-S";
      sv_clients = n_clients;
      sv_requests = requests;
      sv_errors = Array.fold_left ( + ) 0 errors;
      sv_writes = !writes;
      sv_qps = float_of_int requests /. Float.max (wall_ms /. 1000.0) 1e-9;
      sv_p50_ms = Metrics.Histogram.quantile h 0.50;
      sv_p99_ms = Metrics.Histogram.quantile h 0.99;
    }
  in
  Printf.printf
    "%-7s %d clients x %d requests (+%d writes, %d ERR) | %8.1f qps | p50 \
     %6.2f ms | p99 %6.2f ms\n%!"
    r.sv_label r.sv_clients per_client r.sv_writes r.sv_errors r.sv_qps
    r.sv_p50_ms r.sv_p99_ms;
  serve_runs := !serve_runs @ [ r ]

(* ---------- Bechamel micro-benchmarks ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Machine-readable mirror of the bechamel run: per benchmark, the ns/run
   at the configured jobs count ([ns]), at jobs=1 ([ns_seq]), and the
   resulting [speedup_vs_seq] (1.0 when jobs=1: the sequential run is not
   repeated).  [scaling] adds the raw ns/run per benchmark at every probed
   jobs level (keys are the {e requested} widths; [effective_jobs] at the
   top level says what the core clamp actually granted, so a 1-core reader
   knows the jobs=4 column exercised the clamp path, not four domains).
   When a [BENCH_engine_baseline.json] sits next to the executable's cwd,
   its raw contents ride along under a ["baseline"] key so before/after
   pairs live in one file. *)
let write_bench_json ~scale ~jobs ~scaling results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"unit\": \"ns/run\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %S,\n" scale);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"effective_jobs\": %d,\n"
       (Par.jobs (Par.get ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"cpus\": %d,\n" (Par.recommended_jobs ()));
  Buffer.add_string buf "  \"results\": {\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns, ns_seq) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: {\"ns\": %.1f, \"ns_seq\": %.1f, \"jobs\": %d, \
            \"speedup_vs_seq\": %.3f}%s\n"
           name ns ns_seq jobs
           (ns_seq /. Float.max ns 1e-9)
           (if i = n - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  }";
  if scaling <> [] then begin
    Buffer.add_string buf ",\n  \"scaling\": {\n";
    let m = List.length scaling in
    List.iteri
      (fun i (name, per_jobs) ->
        let cells =
          List.map
            (fun (j, ns) -> Printf.sprintf "\"%d\": %.1f" j ns)
            per_jobs
        in
        Buffer.add_string buf
          (Printf.sprintf "    %S: {%s}%s\n" name
             (String.concat ", " cells)
             (if i = m - 1 then "" else ",")))
      scaling;
    Buffer.add_string buf "  }"
  end;
  if !cache_runs <> [] then begin
    Buffer.add_string buf ",\n  \"cache\": {\n";
    let m = List.length !cache_runs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"cold_ms\": %.2f, \"warm_ms\": %.2f, \
              \"replan_ms\": %.2f, \"warm_speedup\": %.1f, \
              \"answer_hits\": %d, \"answer_misses\": %d, \
              \"reformulation_hits\": %d, \"reformulation_misses\": %d, \
              \"cover_hits\": %d, \"cover_misses\": %d}%s\n"
             r.c_label r.cold_ms r.warm_ms r.replan_ms
             (r.cold_ms /. Float.max r.warm_ms 1e-9)
             r.t3_hits r.t3_misses r.t1_hits r.t1_misses r.t2_hits r.t2_misses
             (if i = m - 1 then "" else ",")))
      !cache_runs;
    Buffer.add_string buf "  }"
  end;
  if !admission_runs <> [] then begin
    Buffer.add_string buf ",\n  \"admission\": {\n";
    let m = List.length !admission_runs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"queries\": %d, \"provably_safe\": %d, \
              \"provably_fails\": %d, \"unknown\": %d, \"skipped\": %d, \
              \"safe_fraction\": %.3f}%s\n"
             r.a_label r.a_queries r.a_safe r.a_fails r.a_unknown r.a_skipped
             (float_of_int r.a_safe
             /. Float.max (float_of_int r.a_queries) 1.0)
             (if i = m - 1 then "" else ",")))
      !admission_runs;
    Buffer.add_string buf "  }"
  end;
  if !latency_runs <> [] then begin
    Buffer.add_string buf ",\n  \"latency\": {\n";
    let m = List.length !latency_runs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"answers\": %d, \"p50_ms\": %.3f, \"p90_ms\": %.3f, \
              \"p99_ms\": %.3f, \"max_ms\": %.3f, \"store_bytes\": %d}%s\n"
             r.l_label r.l_count r.l_p50_ms r.l_p90_ms r.l_p99_ms r.l_max_ms
             r.l_store_bytes
             (if i = m - 1 then "" else ",")))
      !latency_runs;
    Buffer.add_string buf "  }"
  end;
  if !views_runs <> [] then begin
    Buffer.add_string buf ",\n  \"views\": {\n";
    let m = List.length !views_runs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"noviews_ms\": %.2f, \"views_ms\": %.2f, \
              \"speedup\": %.2f, \"materialize_ms\": %.2f, \"selected\": %d, \
              \"candidates\": %d, \"bytes\": %d, \"hits\": %d, \
              \"misses\": %d}%s\n"
             r.v_label r.v_noviews_ms r.v_views_ms
             (r.v_noviews_ms /. Float.max r.v_views_ms 1e-9)
             r.v_materialize_ms r.v_selected r.v_candidates r.v_bytes r.v_hits
             r.v_misses
             (if i = m - 1 then "" else ",")))
      !views_runs;
    Buffer.add_string buf "  }"
  end;
  if !serve_runs <> [] then begin
    Buffer.add_string buf ",\n  \"serve\": {\n";
    let m = List.length !serve_runs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"clients\": %d, \"requests\": %d, \"errors\": %d, \
              \"writes\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": \
              %.3f}%s\n"
             r.sv_label r.sv_clients r.sv_requests r.sv_errors r.sv_writes
             r.sv_qps r.sv_p50_ms r.sv_p99_ms
             (if i = m - 1 then "" else ",")))
      !serve_runs;
    Buffer.add_string buf "  }"
  end;
  (let gc = Gc.quick_stat () in
   Buffer.add_string buf
     (Printf.sprintf
        ",\n  \"gc\": {\"minor_collections\": %d, \"major_collections\": %d, \
         \"heap_words\": %d}"
        gc.Gc.minor_collections gc.Gc.major_collections gc.Gc.heap_words));
  if Sys.file_exists "BENCH_engine_baseline.json" then begin
    Buffer.add_string buf ",\n  \"baseline\": ";
    Buffer.add_string buf (String.trim (read_file "BENCH_engine_baseline.json"))
  end;
  Buffer.add_string buf "\n}\n";
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\n[bechamel] wrote BENCH_engine.json (%d benchmarks)\n%!" n

(* Returns the measured [(results, scaling)] instead of writing them: the
   driver runs this *before* the in-process experiments (whose datasets
   and caches grow the major heap enough to visibly tax the timings) and
   writes BENCH_engine.json at the very end, once the experiment sections
   are filled. *)
let bechamel_suite ctx =
  header "Bechamel micro-benchmarks (one per table/figure)";
  let ds = Lazy.force ctx.lubm_s in
  let sys = Lazy.force ds.pg_system in
  let q1 = List.assoc "Q01" ds.queries in
  let reformulate = cached_reformulate ds in
  let open Bechamel in
  let open_type_atom =
    Bgp.atom (Bgp.Var "x") (Bgp.Const Rdf.Vocab.rdf_type) (Bgp.Var "y")
  in
  let j_best = Jucq.make ~reformulate q1 [ [ 0; 2 ]; [ 1 ] ] in
  let j_ucq = Jucq.make ~reformulate q1 (Jucq.ucq_cover q1) in
  let ex = Rqa.Answering.engine sys in
  let sat_ex = Rqa.Answering.saturated_engine sys in
  let q28 = List.assoc "Q28" ds.queries in
  let dblp = Lazy.force ctx.dblp in
  let q10 = List.assoc "Q10" dblp.queries in
  let tests =
    [
      (* Table 1: per-triple reformulation counting, through the tier-1
         memo (the production path; counting without any memoization is
         table4's cold-reformulation benchmark) *)
      Test.make ~name:"table1/atom_count"
        (Staged.stage (fun () -> cached_atom_count ds open_type_atom));
      (* Table 2: evaluating the best grouping of q1 *)
      Test.make ~name:"table2/eval_best_jucq"
        (Staged.stage (fun () -> Engine.Executor.eval_jucq ex j_best));
      (* Table 3: sizing the q2 reformulation without building it *)
      Test.make ~name:"table3/q28_product_bound"
        (Staged.stage (fun () ->
             Reformulation.Reformulate.count_product_bound ds.reformulator q28));
      (* Table 4: reformulating a mid-size query, cold cache *)
      Test.make ~name:"table4/reformulate_q02"
        (Staged.stage
           (let q2 = List.assoc "Q02" ds.queries in
            fun () ->
              let fresh =
                Reformulation.Reformulate.create Workloads.Lubm.schema
              in
              Reformulation.Reformulate.reformulate fresh q2));
      (* Figures 4-6: flat-UCQ evaluation, the baseline being optimized *)
      Test.make ~name:"fig4-6/eval_ucq_jucq"
        (Staged.stage (fun () -> Engine.Executor.eval_jucq ex j_ucq));
      (* Figures 7-8: the two search algorithms *)
      Test.make ~name:"fig7-8/gcov_search"
        (Staged.stage (fun () ->
             Rqa.Gcov.search (Rqa.Answering.objective sys q1)));
      Test.make ~name:"fig7-8/cover_enumeration_q10"
        (Staged.stage (fun () ->
             Rqa.Cover_space.enumerate
               ~budget:
                 { Rqa.Cover_space.max_covers = 2_000; max_millis = 500.0 }
               q10));
      (* Figure 9: the two cost oracles *)
      Test.make ~name:"fig9/paper_cost_model"
        (Staged.stage
           (let cm = Rqa.Answering.cost_model sys in
            fun () -> Rqa.Cost_model.jucq_cost cm j_best));
      Test.make ~name:"fig9/engine_explain"
        (Staged.stage (fun () -> Engine.Executor.explain_cost ex j_best));
      (* Figure 10: saturation-based evaluation *)
      Test.make ~name:"fig10/saturated_eval"
        (Staged.stage (fun () -> Engine.Executor.eval_cq sat_ex q1));
    ]
  in
  (* Exercise the jobs-sensitive evaluation paths once at the width about
     to be measured, so no run pays cold plan/statistics caches — and the
     memoized paths (tier-1 atom counts, tier-2 cover costs) once, so the
     first width measured doesn't bill the one-off cache fill the later
     widths inherit. *)
  let warm () =
    ignore (Engine.Executor.eval_jucq ex j_best);
    ignore (Engine.Executor.eval_jucq ex j_ucq);
    ignore (Engine.Executor.eval_cq sat_ex q1);
    ignore (cached_atom_count ds open_type_atom);
    ignore (Rqa.Gcov.search (Rqa.Answering.objective sys q1))
  in
  let benchmark ~at_jobs test =
    Par.set_jobs at_jobs;
    let effective = Par.jobs (Par.get ()) in
    warm ();
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
    in
    let raw =
      Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    let acc = ref [] in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "%-36s %14.1f ns/run  (jobs=%d effective=%d)\n%!"
              name est at_jobs effective;
            (* drop the grouping prefix ("g/") for the JSON keys *)
            let key =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            acc := (key, est) :: !acc
        | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
      results;
    !acc
  in
  let jobs = ctx.cfg.jobs in
  (* Each benchmark runs once per scaling level (jobs=1 first), then at the
     configured width when that isn't among them.  The jobs=1 estimate is
     [ns_seq], the configured-width one is [ns], and the whole ladder goes
     to the "scaling" section. *)
  let scaling_levels = [ 1; 2; 4 ] in
  let results, scaling =
    List.fold_left
      (fun (racc, sacc) test ->
        let seq = benchmark ~at_jobs:1 test in
        let ladder =
          List.map
            (fun j -> (j, if j = 1 then seq else benchmark ~at_jobs:j test))
            scaling_levels
        in
        let par =
          if jobs <= 1 then seq
          else
            match List.assoc_opt jobs ladder with
            | Some r -> r
            | None -> benchmark ~at_jobs:jobs test
        in
        let rrows =
          List.filter_map
            (fun (key, ns_seq) ->
              Option.map
                (fun ns -> (key, ns, ns_seq))
                (List.assoc_opt key par))
            seq
        in
        let srows =
          List.filter_map
            (fun (key, _) ->
              let per =
                List.filter_map
                  (fun (j, r) ->
                    Option.map (fun ns -> (j, ns)) (List.assoc_opt key r))
                  ladder
              in
              if per = [] then None else Some (key, per))
            seq
        in
        (racc @ rrows, sacc @ srows))
      ([], []) tests
  in
  Par.set_jobs jobs;
  (results, scaling)

(* ---------- main ---------- *)

let () =
  let cfg = parse_config () in
  Par.set_jobs cfg.jobs;
  let ctx = build_ctx cfg in
  let run id f = if List.mem id cfg.experiments then f ctx in
  let t0 = now_ms () in
  (* Micro-benchmarks first, on a quiet heap; the JSON write waits until
     the experiments below have filled their sections. *)
  let bechamel_measured =
    if cfg.bechamel then Some (bechamel_suite ctx) else None
  in
  run "table1" table1;
  run "table2" table2;
  run "table3" table3;
  run "table4" table4;
  run "fig4" fig4;
  run "fig5" fig5;
  run "fig6" fig6;
  run "fig7" fig7;
  run "fig8" fig8;
  run "fig9" fig9;
  run "fig10" fig10;
  run "ablations" ablations;
  run "minimization" minimization;
  run "workload" workload_driver;
  run "cache" cache_experiment;
  run "admission" admission_experiment;
  run "latency" latency_experiment;
  run "views" views_experiment;
  run "serve" serve_experiment;
  (match bechamel_measured with
  | Some (results, scaling) ->
      write_bench_json ~scale:cfg.scale ~jobs:cfg.jobs ~scaling results
  | None -> ());
  Printf.printf "\n[bench] done in %.1f s\n" ((now_ms () -. t0) /. 1000.0)
