#!/usr/bin/env bash
# Perf-regression gate: compare the sequential (jobs=1) timings in a fresh
# BENCH_engine.json against the committed BENCH_engine_baseline.json and
# fail when any benchmark slowed down by more than the threshold.
#
# Usage: bench/check_regression.sh [current.json] [baseline.json]
#
# The current file is the nested bechamel output ({"results": {name:
# {"ns_seq": ...}}}); the baseline is the flat form ({"results": {name:
# ns}}).  Sequential numbers are compared on purpose: CI machines have
# unpredictable core counts, and ns_seq is the schedulable-work figure the
# parallel speedup multiplies.  Benchmarks missing from the baseline (new
# this PR) are reported but never fail the gate; refresh the baseline to
# start tracking them.  A markdown table goes to $GITHUB_STEP_SUMMARY when
# set, stdout otherwise.
set -euo pipefail

CURRENT=${1:-BENCH_engine.json}
BASELINE=${2:-BENCH_engine_baseline.json}
THRESHOLD=${REGRESSION_THRESHOLD:-1.25}

for f in "$CURRENT" "$BASELINE"; do
  if [ ! -f "$f" ]; then
    echo "check_regression: missing $f" >&2
    exit 2
  fi
done

SUMMARY=${GITHUB_STEP_SUMMARY:-/dev/stdout}

rows=$(jq -r --argjson thr "$THRESHOLD" '
  .results as $cur
  | input.results as $base
  | [$cur | keys[]] | sort | .[]
  | . as $name
  | ($cur[$name].ns_seq) as $now
  | if $base[$name] == null then
      "\($name)|\($now)|-|-|new (no baseline)"
    else
      ($now / $base[$name]) as $r
      | "\($name)|\($now)|\($base[$name])|\($r * 100 | round / 100)x|" +
        (if $r > $thr then "REGRESSION" elif $r < 1.0 then "faster" else "ok" end)
    end
' "$CURRENT" "$BASELINE")

{
  echo "## Perf regression gate (ns_seq vs baseline, threshold ${THRESHOLD}x)"
  echo ""
  echo "| benchmark | ns_seq | baseline | ratio | verdict |"
  echo "|---|---|---|---|---|"
  echo "$rows" | awk -F'|' '{printf "| %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5}'
} >> "$SUMMARY"

if echo "$rows" | grep -q 'REGRESSION$'; then
  echo "check_regression: FAIL — benchmarks exceeded the ${THRESHOLD}x threshold:" >&2
  echo "$rows" | grep 'REGRESSION$' | awk -F'|' '{printf "  %s: %s ns vs %s ns (%s)\n", $1, $2, $3, $4}' >&2
  exit 1
fi

echo "check_regression: ok ($(echo "$rows" | wc -l) benchmarks within ${THRESHOLD}x)"
