#!/usr/bin/env bash
# Perf-regression gate: compare the sequential (jobs=1) timings in a fresh
# BENCH_engine.json against the committed BENCH_engine_baseline.json and
# fail when any benchmark slowed down by more than the threshold.
#
# Usage: bench/check_regression.sh [current.json] [baseline.json]
#
# The current file is the nested bechamel output ({"results": {name:
# {"ns_seq": ...}}}); the baseline is the flat form ({"results": {name:
# ns}}).  Sequential numbers are compared on purpose: CI machines have
# unpredictable core counts, and ns_seq is the schedulable-work figure the
# parallel speedup multiplies.  Benchmarks missing from the baseline (new
# this PR) are reported but never fail the gate; refresh the baseline to
# start tracking them.  A markdown table goes to $GITHUB_STEP_SUMMARY when
# set, stdout otherwise.
set -euo pipefail

CURRENT=${1:-BENCH_engine.json}
BASELINE=${2:-BENCH_engine_baseline.json}
THRESHOLD=${REGRESSION_THRESHOLD:-1.25}

for f in "$CURRENT" "$BASELINE"; do
  if [ ! -f "$f" ]; then
    echo "check_regression: missing $f" >&2
    exit 2
  fi
done

SUMMARY=${GITHUB_STEP_SUMMARY:-/dev/stdout}

rows=$(jq -r --argjson thr "$THRESHOLD" '
  .results as $cur
  | input.results as $base
  | [$cur | keys[]] | sort | .[]
  | . as $name
  | ($cur[$name].ns_seq) as $now
  | if $base[$name] == null then
      "\($name)|\($now)|-|-|new (no baseline)"
    else
      ($now / $base[$name]) as $r
      | "\($name)|\($now)|\($base[$name])|\($r * 100 | round / 100)x|" +
        (if $r > $thr then "REGRESSION" elif $r < 1.0 then "faster" else "ok" end)
    end
' "$CURRENT" "$BASELINE")

{
  echo "## Perf regression gate (ns_seq vs baseline, threshold ${THRESHOLD}x)"
  echo ""
  echo "| benchmark | ns_seq | baseline | ratio | verdict |"
  echo "|---|---|---|---|---|"
  echo "$rows" | awk -F'|' '{printf "| %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5}'
} >> "$SUMMARY"

if echo "$rows" | grep -q 'REGRESSION$'; then
  echo "check_regression: FAIL — benchmarks exceeded the ${THRESHOLD}x threshold:" >&2
  echo "$rows" | grep 'REGRESSION$' | awk -F'|' '{printf "  %s: %s ns vs %s ns (%s)\n", $1, $2, $3, $4}' >&2
  exit 1
fi

echo "check_regression: ok ($(echo "$rows" | wc -l) benchmarks within ${THRESHOLD}x)"

# --- admission gate ---------------------------------------------------------
# The "admission" section counts the static cost analyzer's verdicts over
# each workload's SCQ-cover plans, per engine profile.  Watched invariants:
#   - the four verdict counts tile the workload exactly (nothing dropped);
#   - no plan is provably doomed at a real profile's budget
#     (provably_fails == 0: every workload query is answerable);
#   - when the baseline carries its own admission section, provably_safe may
#     not drop below the baseline's count for the same label — analyzer
#     precision is ratcheted, never silently lost.
# Baselines without an .admission section (predating the analyzer) skip the
# comparison, like new benchmarks in the perf gate above.
if [ "$(jq -r '.admission != null' "$CURRENT")" = "true" ]; then
  adm_rows=$(jq -r '
    .admission as $cur
    | input.admission as $base
    | [$cur | keys[]] | sort | .[]
    | . as $l
    | $cur[$l] as $a
    | ($a.provably_safe + $a.provably_fails + $a.unknown + $a.skipped) as $sum
    | (if $base != null and $base[$l] != null
       then ($base[$l].provably_safe | tostring) else "-" end) as $bs
    | (if $sum != $a.queries then "INCOHERENT"
       elif $a.provably_fails != 0 then "DOOMED"
       elif $bs != "-" and $a.provably_safe < ($bs | tonumber)
       then "LOST-PRECISION"
       else "ok" end) as $verdict
    | "\($l)|\($a.queries)|\($a.provably_safe)|\($a.provably_fails)|" +
      "\($a.unknown)|\($a.skipped)|\($bs)|\($verdict)"
  ' "$CURRENT" "$BASELINE")

  {
    echo ""
    echo "## Admission gate (static cost verdicts per engine profile)"
    echo ""
    echo "| workload/profile | queries | safe | fails | unknown | skipped | baseline safe | verdict |"
    echo "|---|---|---|---|---|---|---|---|"
    echo "$adm_rows" | awk -F'|' \
      '{printf "| %s | %s | %s | %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5, $6, $7, $8}'
  } >> "$SUMMARY"

  if echo "$adm_rows" | grep -qE '(INCOHERENT|DOOMED|LOST-PRECISION)$'; then
    echo "check_regression: FAIL — admission invariants violated:" >&2
    echo "$adm_rows" | grep -E '(INCOHERENT|DOOMED|LOST-PRECISION)$' >&2
    exit 1
  fi
  echo "check_regression: admission ok ($(echo "$adm_rows" | wc -l) profile runs)"
else
  echo "check_regression: no admission section, skipping admission gate"
fi

# --- views gate -------------------------------------------------------------
# The "views" section records workload-total answering time with and
# without the materialized-view tier, per workload × cover strategy (the
# experiment itself already exited 1 unless answers and operation totals
# were bit-identical).  Hard invariants:
#   - views must pay for themselves: views_ms < noviews_ms on every row
#     (the selection's whole premise is a workload-level win);
#   - the tier must actually serve: hits > 0 (a zero-hit run means
#     selection and answering disagree about covers — the speedup would
#     be noise).
if [ "$(jq -r '.views != null' "$CURRENT")" = "true" ]; then
  view_rows=$(jq -r '
    .views as $cur
    | [$cur | keys[]] | sort | .[]
    | . as $l
    | $cur[$l] as $v
    | (if $v.hits == 0 then "UNUSED"
       elif $v.views_ms >= $v.noviews_ms then "NO-SPEEDUP"
       else "ok" end) as $verdict
    | "\($l)|\($v.noviews_ms)|\($v.views_ms)|\($v.speedup)x|" +
      "\($v.selected)/\($v.candidates)|\($v.hits)|\($v.misses)|\($verdict)"
  ' "$CURRENT")

  {
    echo ""
    echo "## Views gate (workload totals with/without materialized views)"
    echo ""
    echo "| workload/strategy | no-views ms | views ms | speedup | selected | hits | misses | verdict |"
    echo "|---|---|---|---|---|---|---|---|"
    echo "$view_rows" | awk -F'|' \
      '{printf "| %s | %s | %s | %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5, $6, $7, $8}'
  } >> "$SUMMARY"

  if echo "$view_rows" | grep -qE '(UNUSED|NO-SPEEDUP)$'; then
    echo "check_regression: FAIL — views invariants violated:" >&2
    echo "$view_rows" | grep -E '(UNUSED|NO-SPEEDUP)$' >&2
    exit 1
  fi
  echo "check_regression: views ok ($(echo "$view_rows" | wc -l) workload runs)"
else
  echo "check_regression: no views section, skipping views gate"
fi

# --- history drift (warn-only) ----------------------------------------------
# Compare the current run against the median of bench/history.jsonl entries
# at the same scale: per-bench ns_seq and per-workload latency p99.  The
# committed baseline above is a hard tripwire against one pinned snapshot;
# this watches slow drift across many runs — and only WARNS, because
# history is accumulated on heterogeneous CI machines.
HISTORY=${HISTORY_FILE:-bench/history.jsonl}
DRIFT_THRESHOLD=${DRIFT_THRESHOLD:-1.25}

if [ -f "$HISTORY" ] && [ -s "$HISTORY" ]; then
  drift_rows=$(jq -r --slurpfile hist "$HISTORY" --argjson thr "$DRIFT_THRESHOLD" '
    def median: sort | if length == 0 then null else .[(length - 1) / 2 | floor] end;
    . as $cur
    | [$hist[] | select(.scale == $cur.scale)] as $h
    | ($cur.results | keys | sort | .[]) as $name
    | ([$h[] | .benches[$name].ns_seq? // empty] | median) as $med
    | select($med != null and $med > 0)
    | ($cur.results[$name].ns_seq / $med) as $r
    | "\($name)|\($cur.results[$name].ns_seq)|\($med)|\($r * 100 | round / 100)x|" +
      (if $r > $thr then "DRIFT" else "ok" end)
  ' "$CURRENT")

  lat_rows=$(jq -r --slurpfile hist "$HISTORY" --argjson thr "$DRIFT_THRESHOLD" '
    def median: sort | if length == 0 then null else .[(length - 1) / 2 | floor] end;
    . as $cur
    | [$hist[] | select(.scale == $cur.scale)] as $h
    | (($cur.latency // {}) | keys | sort | .[]) as $l
    | ([$h[] | .latency[$l].p99_ms? // empty] | median) as $med
    | select($med != null and $med > 0)
    | ($cur.latency[$l].p99_ms / $med) as $r
    | "\($l) p99|\($cur.latency[$l].p99_ms)|\($med)|\($r * 100 | round / 100)x|" +
      (if $r > $thr then "DRIFT" else "ok" end)
  ' "$CURRENT")

  view_drift_rows=$(jq -r --slurpfile hist "$HISTORY" --argjson thr "$DRIFT_THRESHOLD" '
    def median: sort | if length == 0 then null else .[(length - 1) / 2 | floor] end;
    . as $cur
    | [$hist[] | select(.scale == $cur.scale)] as $h
    | (($cur.views // {}) | keys | sort | .[]) as $l
    | ([$h[] | .views[$l].views_ms? // empty] | median) as $med
    | select($med != null and $med > 0)
    | ($cur.views[$l].views_ms / $med) as $r
    | "\($l) views_ms|\($cur.views[$l].views_ms)|\($med)|\($r * 100 | round / 100)x|" +
      (if $r > $thr then "DRIFT" else "ok" end)
  ' "$CURRENT")

  # Serve drift is warn-only in both directions of badness: sustained qps
  # falling below the history median (ratio = median/current, so "slower"
  # still reads as > 1) and client-observed p99 rising above it.
  serve_rows=$(jq -r --slurpfile hist "$HISTORY" --argjson thr "$DRIFT_THRESHOLD" '
    def median: sort | if length == 0 then null else .[(length - 1) / 2 | floor] end;
    . as $cur
    | [$hist[] | select(.scale == $cur.scale)] as $h
    | (($cur.serve // {}) | keys | sort | .[]) as $l
    | ( ([$h[] | .serve[$l].qps? // empty] | median) as $qmed
        | ([$h[] | .serve[$l].p99_ms? // empty] | median) as $pmed
        | [ (if $qmed != null and $qmed > 0 and $cur.serve[$l].qps > 0 then
               ($qmed / $cur.serve[$l].qps) as $r
               | "\($l) serve qps|\($cur.serve[$l].qps)|\($qmed)|\($r * 100 | round / 100)x|" +
                 (if $r > $thr then "DRIFT" else "ok" end)
             else empty end),
            (if $pmed != null and $pmed > 0 then
               ($cur.serve[$l].p99_ms / $pmed) as $r
               | "\($l) serve p99|\($cur.serve[$l].p99_ms)|\($pmed)|\($r * 100 | round / 100)x|" +
                 (if $r > $thr then "DRIFT" else "ok" end)
             else empty end) ]
        | .[] )
  ' "$CURRENT")

  all_rows=$(printf '%s\n%s\n%s\n%s\n' "$drift_rows" "$lat_rows" "$view_drift_rows" "$serve_rows" | sed '/^$/d')
  if [ -n "$all_rows" ]; then
    {
      echo ""
      echo "## History drift (vs median of $HISTORY at scale $(jq -r .scale "$CURRENT"), warn at ${DRIFT_THRESHOLD}x)"
      echo ""
      echo "| metric | current | history median | ratio | verdict |"
      echo "|---|---|---|---|---|"
      echo "$all_rows" | awk -F'|' '{printf "| %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5}'
    } >> "$SUMMARY"
    if echo "$all_rows" | grep -q 'DRIFT$'; then
      echo "check_regression: WARNING — drift past ${DRIFT_THRESHOLD}x of the history median (not failing):" >&2
      echo "$all_rows" | grep 'DRIFT$' >&2
    else
      echo "check_regression: history drift ok ($(echo "$all_rows" | wc -l) metrics within ${DRIFT_THRESHOLD}x of median)"
    fi
  fi
else
  echo "check_regression: no $HISTORY, skipping drift check"
fi

# --- scaling gate -----------------------------------------------------------
# The "scaling" section holds ns/run per requested jobs level {1,2,4}.  What
# it must show depends on the machine:
#   cpus == 1  — no speedup is possible, so speedup assertions are skipped;
#     instead the core clamp must keep the jobs=4 run of the two evaluation
#     benchmarks within CLAMP_THRESHOLD of jobs=1 (pre-clamp, oversubscribed
#     domains time-sliced one core and regressed these badly).
#   cpus >= 2  — real domains run, so jobs=2 of the same benchmarks must not
#     regress past the ordinary threshold (parallelism may not hurt).
CLAMP_THRESHOLD=${CLAMP_THRESHOLD:-1.15}
SCALING_BENCHES=${SCALING_BENCHES:-"table2/eval_best_jucq fig4-6/eval_ucq_jucq"}

if [ "$(jq -r '.scaling != null' "$CURRENT")" != "true" ]; then
  echo "check_regression: no scaling section, skipping scaling gate"
  exit 0
fi

cpus=$(jq -r '.cpus' "$CURRENT")
if [ "$cpus" -le 1 ]; then
  gate_jobs=4 gate_thr=$CLAMP_THRESHOLD gate_desc="1-core clamp overhead"
else
  gate_jobs=2 gate_thr=$THRESHOLD gate_desc="multi-core parallel overhead"
fi

{
  echo ""
  echo "## Scaling gate ($gate_desc: jobs=$gate_jobs vs jobs=1, threshold ${gate_thr}x)"
  echo ""
  echo "| benchmark | ns jobs=1 | ns jobs=$gate_jobs | ratio |"
  echo "|---|---|---|---|"
  for b in $SCALING_BENCHES; do
    jq -r --arg b "$b" --argjson j "$gate_jobs" \
      '.scaling[$b] | "| \($b) | \(.["1"]) | \(.[$j | tostring]) | \((.[$j | tostring] / .["1"]) * 100 | round / 100)x |"' \
      "$CURRENT"
  done
} >> "$SUMMARY"

fail=0
for b in $SCALING_BENCHES; do
  ratio_ok=$(jq -r --arg b "$b" --argjson j "$gate_jobs" --argjson thr "$gate_thr" \
    '.scaling[$b] as $s
     | if $s == null or $s["1"] == null or $s[$j | tostring] == null then "missing"
       elif ($s[$j | tostring] / $s["1"]) <= $thr then "ok"
       else "fail" end' "$CURRENT")
  case "$ratio_ok" in
    ok) ;;
    missing) echo "check_regression: scaling data missing for $b" >&2 ;;
    fail)
      echo "check_regression: FAIL — $b jobs=$gate_jobs exceeds ${gate_thr}x of jobs=1" >&2
      fail=1 ;;
  esac
done
[ "$fail" -eq 0 ] || exit 1

echo "check_regression: scaling ok (jobs=$gate_jobs within ${gate_thr}x on: $SCALING_BENCHES)"
