(* Dynamic updates: why reformulation-based answering suits changing data.

   Saturation answers fast but must maintain derived triples on every
   update; reformulation leaves the database untouched and adapts for
   free.  This example streams inserts into one long-lived university
   store through the mutation API ({!Store.Encoded_store.insert_triples}),
   answering the same query after each batch through (i) a saturation
   engine that must re-derive, and (ii) a single GCov reformulation system
   that just queries: its version-aware caches revalidate automatically —
   the data-only batches flush cost and answer entries but keep every
   memoized reformulation warm (the schema never moved).  Both sides
   always agree; the trade-off is visible in the running times
   (Section 5.3 context).

   Run with:  dune exec examples/dynamic_updates.exe *)

open Query

let now_ms () = Unix.gettimeofday () *. 1000.0

let () =
  let scale = { Workloads.Lubm.universities = 3 } in
  let base = Workloads.Lubm.generate_graph scale in
  Printf.printf "base graph: %d facts\n\n" (Rdf.Graph.size base);
  let q = Workloads.Lubm.query "Q11" in
  Printf.printf "query: %s\n\n" (Bgp.to_string q);
  let ub p = Rdf.Term.uri (Workloads.Lubm.ns ^ p) in
  (* batches of new hires: each entails several implicit triples *)
  let batch i =
    let person =
      Rdf.Term.uri (Printf.sprintf "http://example.org/newhire%d" i)
    in
    [
      Rdf.Triple.make person Rdf.Vocab.rdf_type (ub "AssistantProfessor");
      Rdf.Triple.make person (ub "worksFor")
        (Rdf.Term.uri "http://www.Department0.University0.edu");
      Rdf.Triple.make person (ub "doctoralDegreeFrom")
        (Workloads.Lubm.university 1);
    ]
  in
  (* one store, one system, for the whole run: updates go through the
     store's mutation API and every engine/cache layer revalidates *)
  let store = Store.Encoded_store.of_graph base in
  let sys = Rqa.Answering.make store in
  let saturated = ref (Rdf.Saturation.saturate base) in
  Printf.printf "%-8s %14s %20s %16s %8s\n" "batch" "sat-maint(ms)"
    "sat-answer rows(ms)" "reform rows(ms)" "agree";
  for i = 1 to 5 do
    let delta = batch i in
    (* saturation-based: maintain the closure incrementally, then query *)
    let t0 = now_ms () in
    saturated := Rdf.Saturation.saturate_incremental !saturated delta;
    let maintain_ms = now_ms () -. t0 in
    let sat_store = Store.Encoded_store.of_graph !saturated in
    let sat_ex = Engine.Executor.create sat_store in
    let t1 = now_ms () in
    let sat_rows = Engine.Executor.eval_cq sat_ex q in
    let sat_ms = now_ms () -. t1 in
    (* reformulation-based: insert in place and just query again *)
    let _schema_changes, data_changes =
      Store.Encoded_store.insert_triples store delta
    in
    assert (data_changes = List.length delta);
    let t2 = now_ms () in
    let report = Rqa.Answering.answer sys Rqa.Answering.Gcov q in
    let ref_ms = now_ms () -. t2 in
    let sat_terms = Engine.Executor.decode sat_ex sat_rows in
    let ref_terms =
      Engine.Executor.decode (Rqa.Answering.engine sys)
        report.Rqa.Answering.answers
    in
    Printf.printf "%-8d %14.1f %11d (%6.1f) %7d (%6.1f) %8b\n" i maintain_ms
      (List.length sat_terms) sat_ms
      (List.length ref_terms) ref_ms
      (sat_terms = ref_terms)
  done;
  let stats = Cache.stats (Rqa.Answering.cache sys) in
  Printf.printf
    "\ncache after 5 update batches: %s\n\
     (data-only updates never invalidated a reformulation: tier 1 stayed \
     warm)\n"
    (Cache.stats_to_string stats);
  print_endline
    "\nreformulation needs no maintenance step: the same (non-saturated)\n\
     store answers correctly right after every update."
