(* Quickstart: the paper's running example end to end.

   Builds the book graph of Figure 3, shows that plain evaluation misses
   implicit answers, and answers the query of Example 3 both by saturation
   and by reformulation — then reproduces the 11-term reformulation of
   Example 4.

   Run with:  dune exec examples/quickstart.exe *)

open Query

let u s = Rdf.Term.uri s
let lit s = Rdf.Term.literal s
let bn s = Rdf.Term.bnode s
let tr s p o = Rdf.Triple.make s p o

let () =
  (* 1. An RDF Schema: books are publications, writing means authorship,
        and writtenBy/hasAuthor link books to persons (Example 2). *)
  let schema =
    Rdf.Schema.of_constraints
      [
        Rdf.Schema.Subclass (u "Book", u "Publication");
        Rdf.Schema.Subproperty (u "writtenBy", u "hasAuthor");
        Rdf.Schema.Domain (u "writtenBy", u "Book");
        Rdf.Schema.Range (u "writtenBy", u "Person");
        Rdf.Schema.Domain (u "hasAuthor", u "Book");
        Rdf.Schema.Range (u "hasAuthor", u "Person");
      ]
  in
  (* 2. The facts of Example 1: a book, its (blank-node) author, a title
        and a publication year. *)
  let graph =
    Rdf.Graph.make schema
      [
        tr (u "doi1") Rdf.Vocab.rdf_type (u "Book");
        tr (u "doi1") (u "writtenBy") (bn "b1");
        tr (u "doi1") (u "hasTitle") (lit "Game of Thrones");
        tr (bn "b1") (u "hasName") (lit "George R. R. Martin");
        tr (u "doi1") (u "publishedIn") (lit "1996");
      ]
  in
  (* 3. Example 3's query: names of authors of things connected to 1996. *)
  let q =
    Sparql.parse
      {|SELECT ?name WHERE {
          ?book <hasAuthor> ?author .
          ?author <hasName> ?name .
          ?book ?p "1996"
        }|}
  in
  Printf.printf "query: %s\n\n" (Bgp.to_string q);
  (* Plain evaluation ignores the implicit hasAuthor triple... *)
  Printf.printf "direct evaluation (no reasoning): %d rows\n"
    (List.length (Bgp.eval graph q));
  (* ...while query answering accounts for it. *)
  let answers = Bgp.answer graph q in
  List.iter
    (fun row ->
      Printf.printf "answer: %s\n"
        (String.concat ", " (List.map Rdf.Term.to_string row)))
    answers;
  (* 4. The same through the optimized engine stack. *)
  let sys = Rqa.Answering.of_graph graph in
  List.iter
    (fun strategy ->
      let rows = Rqa.Answering.answer_terms sys strategy q in
      Printf.printf "%-11s -> %d row(s), agrees with specification: %b\n"
        (Rqa.Answering.strategy_name strategy)
        (List.length rows) (rows = answers))
    [ Rqa.Answering.Saturation; Rqa.Answering.Ucq; Rqa.Answering.Gcov ];
  (* 5. Example 4: the reformulation of q(x, y) :- x rdf:type y. *)
  let open_query =
    Bgp.make
      [ Bgp.Var "x"; Bgp.Var "y" ]
      [ Bgp.atom (Bgp.Var "x") (Bgp.Const Rdf.Vocab.rdf_type) (Bgp.Var "y") ]
  in
  let reformulator = Reformulation.Reformulate.create schema in
  let ucq = Reformulation.Reformulate.reformulate reformulator open_query in
  Printf.printf "\nExample 4: %d reformulations of %s\n"
    (Ucq.cardinal ucq)
    (Bgp.to_string open_query);
  List.iteri
    (fun i cq -> Printf.printf "  (%d) %s\n" i (Bgp.to_string cq))
    (Ucq.disjuncts ucq)
