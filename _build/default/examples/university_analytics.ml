(* University analytics: the paper's motivating scenario on LUBM data.

   Generates a multi-university dataset, then walks through Motivating
   Examples 1 and 2: the flat UCQ reformulation of q1 is large, the SCQ is
   slow, and the cost-picked JUCQ grouping wins; on q2 the UCQ cannot even
   be evaluated, while GCov's choice runs in milliseconds.  Also shows how
   the three engine profiles differ on the same plans.

   Run with:  dune exec examples/university_analytics.exe *)

open Query

let now_ms () = Unix.gettimeofday () *. 1000.0

let time f =
  let t0 = now_ms () in
  let r = f () in
  (r, now_ms () -. t0)

let () =
  let store = Workloads.Lubm.generate { Workloads.Lubm.universities = 6 } in
  Printf.printf "dataset: %d triples over 6 universities\n\n"
    (Store.Encoded_store.size store);
  let reformulator = Reformulation.Reformulate.create Workloads.Lubm.schema in
  let sys =
    Rqa.Answering.make ~profile:Engine.Profile.postgres_like ~reformulator
      store
  in

  (* --- Motivating Example 1: q1 --- *)
  let q1 = Workloads.Lubm.query "Q01" in
  Printf.printf "q1: %s\n" (Bgp.to_string q1);
  Printf.printf "|q1_ref| = %d union terms\n\n"
    (Reformulation.Reformulate.count reformulator q1);
  List.iter
    (fun (label, strategy) ->
      let report, ms = time (fun () -> Rqa.Answering.answer sys strategy q1) in
      Printf.printf "  %-22s %6.1f ms  (%d rows, cover %s)\n" label ms
        (Engine.Relation.rows report.Rqa.Answering.answers)
        (match report.Rqa.Answering.cover with
        | Some c -> Jucq.cover_to_string c
        | None -> "-")
    )
    [
      ("flat UCQ (prior work)", Rqa.Answering.Ucq);
      ("SCQ (one-triple frags)", Rqa.Answering.Scq);
      ("GCov-chosen JUCQ", Rqa.Answering.Gcov);
    ];

  (* --- Motivating Example 2: q2, where the UCQ is unfeasible --- *)
  let q2 = Workloads.Lubm.query "Q28" in
  Printf.printf "\nq2: %s\n" (Bgp.to_string q2);
  Printf.printf "|q2_ref| = %d union terms\n"
    (Reformulation.Reformulate.count_product_bound reformulator q2);
  (match Rqa.Answering.answer sys Rqa.Answering.Ucq q2 with
  | _ -> print_endline "  UCQ unexpectedly succeeded"
  | exception Engine.Profile.Engine_failure { reason; _ } ->
      Printf.printf "  UCQ: engine failure — %s\n"
        (Engine.Profile.failure_to_string reason));
  let report, ms = time (fun () -> Rqa.Answering.answer sys Rqa.Answering.Gcov q2) in
  Printf.printf "  GCov: %d rows in %.1f ms with cover %s\n"
    (Engine.Relation.rows report.Rqa.Answering.answers)
    ms
    (match report.Rqa.Answering.cover with
    | Some c -> Jucq.cover_to_string c
    | None -> "-");

  (* --- the same plans on the three engine profiles --- *)
  Printf.printf "\nSCQ vs GCov across engine profiles (q1):\n";
  List.iter
    (fun profile ->
      let sys_p = Rqa.Answering.make ~profile ~reformulator store in
      let cell strategy =
        match time (fun () -> Rqa.Answering.answer sys_p strategy q1) with
        | _, ms -> Printf.sprintf "%7.1f ms" ms
        | exception Engine.Profile.Engine_failure _ -> "      FAIL"
      in
      Printf.printf "  %-14s SCQ %s   GCov %s\n" profile.Engine.Profile.name
        (cell Rqa.Answering.Scq) (cell Rqa.Answering.Gcov))
    Engine.Profile.all
