(* Bibliography exploration: cover-space introspection on DBLP-style data.

   Uses the bibliographic workload to show what the optimizer actually
   chooses and why: the enumerated covers of a citation query with their
   estimated and measured costs, the SQL the winning JUCQ would ship to an
   RDBMS, and the 10-atom query whose cover space defeats exhaustive
   search.

   Run with:  dune exec examples/bibliography.exe *)

open Query

let now_ms () = Unix.gettimeofday () *. 1000.0

let () =
  let store = Workloads.Dblp.generate { Workloads.Dblp.publications = 5_000 } in
  Printf.printf "bibliography: %d triples\n\n" (Store.Encoded_store.size store);
  let sys = Rqa.Answering.make store in
  let reformulate cq =
    Reformulation.Reformulate.reformulate (Rqa.Answering.reformulator sys) cq
  in

  (* A citation query with two open type atoms (DBLP Q03). *)
  let q = Workloads.Dblp.query "Q03" in
  Printf.printf "query: %s\n\n" (Bgp.to_string q);

  (* Estimated cost vs measured evaluation time for every cover. *)
  let obj = Rqa.Answering.objective sys q in
  let { Rqa.Cover_space.covers; _ } = Rqa.Cover_space.enumerate q in
  Printf.printf "%-26s %10s %14s %14s\n" "cover" "terms" "est. cost"
    "measured (ms)";
  List.iter
    (fun cover ->
      let estimated = Rqa.Objective.cover_cost obj cover in
      let j = Jucq.make ~reformulate q cover in
      let t0 = now_ms () in
      let measured =
        match Engine.Executor.eval_jucq (Rqa.Answering.engine sys) j with
        | _ -> Printf.sprintf "%14.1f" (now_ms () -. t0)
        | exception Engine.Profile.Engine_failure _ -> "          FAIL"
      in
      Printf.printf "%-26s %10d %14.2f %s\n"
        (Jucq.cover_to_string cover)
        (Jucq.total_disjuncts j) estimated measured)
    covers;

  (* What GCov picks, and the SQL it would ship. *)
  let g = Rqa.Gcov.search (Rqa.Answering.objective sys q) in
  Printf.printf "\nGCov picks %s after exploring %d covers\n"
    (Jucq.cover_to_string g.Rqa.Gcov.cover)
    g.Rqa.Gcov.explored;
  let j = Jucq.make ~reformulate q g.Rqa.Gcov.cover in
  print_endline "\nPhysical plan of the chosen JUCQ:";
  print_string
    (Engine.Plan.to_string (Engine.Plan.describe (Rqa.Answering.engine sys) j));
  print_endline "\nSQL shipped for the chosen JUCQ (first lines):";
  let sql = Engine.Sql.jucq store j in
  List.iteri
    (fun i line -> if i < 8 then print_endline ("  " ^ line))
    (String.split_on_char '\n' sql);

  (* The 10-atom Q10: exhaustive search is not an option. *)
  let q10 = Workloads.Dblp.query "Q10" in
  Printf.printf "\nQ10 has %d atoms; |q10_ref| ≈ %d union terms\n"
    (List.length q10.Bgp.body)
    (Reformulation.Reformulate.count_product_bound
       (Rqa.Answering.reformulator sys) q10);
  let e =
    Rqa.Ecov.search
      ~budget:{ Rqa.Cover_space.max_covers = 3_000; max_millis = 2_000.0 }
      (Rqa.Answering.objective sys q10)
  in
  Printf.printf "ECov within a 2 s budget: %d covers explored, exhaustive: %b\n"
    e.Rqa.Ecov.explored e.Rqa.Ecov.complete;
  let g10 = Rqa.Gcov.search (Rqa.Answering.objective sys q10) in
  let t0 = now_ms () in
  (match
     Engine.Executor.eval_jucq (Rqa.Answering.engine sys)
       (Jucq.make ~reformulate q10 g10.Rqa.Gcov.cover)
   with
  | rows ->
      Printf.printf
        "GCov still answers it: cover %s, %d rows in %.1f ms (search %.1f ms)\n"
        (Jucq.cover_to_string g10.Rqa.Gcov.cover)
        (Engine.Relation.rows rows)
        (now_ms () -. t0) g10.Rqa.Gcov.elapsed_ms
  | exception Engine.Profile.Engine_failure { reason; _ } ->
      Printf.printf "GCov cover %s hit an engine limit: %s\n"
        (Jucq.cover_to_string g10.Rqa.Gcov.cover)
        (Engine.Profile.failure_to_string reason))
