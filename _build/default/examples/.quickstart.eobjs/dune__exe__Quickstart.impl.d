examples/quickstart.ml: Bgp List Printf Query Rdf Reformulation Rqa Sparql String Ucq
