examples/quickstart.mli:
