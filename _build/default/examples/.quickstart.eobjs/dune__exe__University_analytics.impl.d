examples/university_analytics.ml: Bgp Engine Jucq List Printf Query Reformulation Rqa Store Unix Workloads
