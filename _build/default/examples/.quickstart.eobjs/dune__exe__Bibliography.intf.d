examples/bibliography.mli:
