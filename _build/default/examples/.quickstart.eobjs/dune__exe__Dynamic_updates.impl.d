examples/dynamic_updates.ml: Bgp Engine List Printf Query Rdf Rqa Store Unix Workloads
