examples/university_analytics.mli:
