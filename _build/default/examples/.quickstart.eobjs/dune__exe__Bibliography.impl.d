examples/bibliography.ml: Bgp Engine Jucq List Printf Query Reformulation Rqa Store String Unix Workloads
