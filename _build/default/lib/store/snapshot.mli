(** Binary store snapshots.

    Loading a large N-Triples file re-parses and re-encodes every value;
    a snapshot dumps the already-encoded columns, the dictionary and the
    schema in one [Marshal] blob with a format tag, cutting reload times
    for the benchmark datasets by an order of magnitude.  Snapshots are
    an internal format: they are not portable across library versions
    (the tag guards against that). *)

val save : string -> Encoded_store.t -> unit
(** Writes a snapshot to the path. *)

val load : string -> Encoded_store.t
(** Reloads a snapshot.  Raises [Invalid_argument] on a missing or
    mismatched format tag. *)
