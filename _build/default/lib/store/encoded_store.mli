(** The dictionary-encoded triple table of Section 5.1.

    RDF facts live in a [Triples(s, p, o)] table whose values are integer
    codes (see {!Rdf.Dictionary}); the table is indexed by all permutations
    of the [s, p, o] columns, realized here as posting-list indexes over
    every bound-position combination ([s], [p], [o], [sp], [po], [so]) plus
    a full-triple membership check — the access paths a six-fold-indexed
    RDBMS table offers.  RDFS constraints are {e not} stored in the table;
    they are kept apart in the accompanying {!Rdf.Schema}, exactly as in
    the paper's experimental setup. *)

type t

type pattern = {
  ps : int option;  (** subject code, [None] for a wildcard *)
  pp : int option;  (** property code *)
  po : int option;  (** object code *)
}
(** A triple-pattern access: bound positions carry codes. *)

val create : Rdf.Schema.t -> t
(** An empty store with the given schema. *)

val of_graph : Rdf.Graph.t -> t
(** Loads a graph's facts (the explicit triples only). *)

val insert : t -> Rdf.Triple.t -> unit
(** Inserts one data triple (encoding its values), skipping duplicates.
    Raises [Invalid_argument] on an RDFS-constraint triple. *)

val insert_code : t -> int -> int -> int -> unit
(** Inserts an already-encoded triple, skipping duplicates. *)

val schema : t -> Rdf.Schema.t
(** The schema associated with the stored facts. *)

val dictionary : t -> Rdf.Dictionary.t
(** The value dictionary. *)

val size : t -> int
(** Number of stored triples. *)

val version : t -> int
(** Monotone modification counter: bumped on every effective insert.
    Derived structures (statistics caches) use it to detect staleness. *)

val encode_term : t -> Rdf.Term.t -> int option
(** The code of a term, [None] if the term does not occur. *)

val subject : t -> int -> int
(** Subject code of the [i]-th triple. *)

val property : t -> int -> int
(** Property code of the [i]-th triple. *)

val obj : t -> int -> int
(** Object code of the [i]-th triple. *)

val matching : t -> pattern -> Intvec.t
(** Triple ids matching a pattern, served from the best index.  The result
    must not be mutated.  Patterns with all three positions bound return a
    0- or 1-element vector. *)

val count : t -> pattern -> int
(** Number of matching triples — an O(1) index lookup for every pattern
    shape (the statistics reformulation optimization relies on). *)

val mem_code : t -> int -> int -> int -> bool
(** Membership of an encoded triple. *)

val saturate : t -> t
(** A saturated copy of the store (same dictionary object): the physical
    design of saturation-based query answering. *)

val to_graph : t -> Rdf.Graph.t
(** Decodes the store back into a graph (tests, small stores only). *)
