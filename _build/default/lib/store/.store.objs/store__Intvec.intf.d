lib/store/intvec.mli:
