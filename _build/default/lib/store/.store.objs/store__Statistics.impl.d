lib/store/statistics.ml: Bgp Encoded_store Hashtbl Intvec List Query String Ucq
