lib/store/snapshot.mli: Encoded_store
