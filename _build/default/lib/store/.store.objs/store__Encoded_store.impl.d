lib/store/encoded_store.ml: Hashtbl Intvec List Option Rdf
