lib/store/encoded_store.mli: Intvec Rdf
