lib/store/statistics.mli: Encoded_store Query
