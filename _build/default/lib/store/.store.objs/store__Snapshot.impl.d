lib/store/snapshot.ml: Array Encoded_store Marshal Rdf String
