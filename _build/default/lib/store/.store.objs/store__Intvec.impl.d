lib/store/intvec.ml: Array Printf
