type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length v = v.len

let grow v =
  let data = Array.make (2 * Array.length v.data) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Intvec: index %d out of bounds (len %d)" i v.len)

let get v i = check v i; v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x = check v i; v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }
