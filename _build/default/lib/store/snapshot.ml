(* The snapshot payload avoids marshaling the store's hashtable indexes
   (they rebuild quickly and marshal poorly): only the schema constraints,
   the dictionary contents and the three code columns are written. *)

let format_tag = "rqa-snapshot-v1"

type payload = {
  constraints : Rdf.Schema.constr list;
  dictionary : (Rdf.Term.t * int) array;  (* in code order *)
  triples : (int * int * int) array;
}

let save path store =
  let dict = Encoded_store.dictionary store in
  let dictionary = Array.make (Rdf.Dictionary.cardinal dict) (Rdf.Term.Literal "", 0) in
  Rdf.Dictionary.iter (fun term code -> dictionary.(code) <- (term, code)) dict;
  let n = Encoded_store.size store in
  let triples =
    Array.init n (fun i ->
        ( Encoded_store.subject store i,
          Encoded_store.property store i,
          Encoded_store.obj store i ))
  in
  let payload =
    {
      constraints = Rdf.Schema.constraints (Encoded_store.schema store);
      dictionary;
      triples;
    }
  in
  let oc = open_out_bin path in
  output_string oc format_tag;
  Marshal.to_channel oc payload [];
  close_out oc

let load path =
  let ic = open_in_bin path in
  let tag = really_input_string ic (String.length format_tag) in
  if not (String.equal tag format_tag) then begin
    close_in ic;
    invalid_arg ("Snapshot.load: bad format tag in " ^ path)
  end;
  let payload : payload = Marshal.from_channel ic in
  close_in ic;
  let store = Encoded_store.create (Rdf.Schema.of_constraints payload.constraints) in
  let dict = Encoded_store.dictionary store in
  Array.iter
    (fun (term, code) ->
      let assigned = Rdf.Dictionary.encode dict term in
      if assigned <> code then
        invalid_arg "Snapshot.load: dictionary codes out of order")
    payload.dictionary;
  Array.iter (fun (s, p, o) -> Encoded_store.insert_code store s p o)
    payload.triples;
  store
