(** A reader/writer for a pragmatic Turtle subset.

    Supported syntax:
    {v
    doc       ::= (directive | statement)*
    directive ::= @prefix name: <iri> .
    statement ::= subject predlist .
    predlist  ::= verb objlist ( ; verb objlist )* ;?
    objlist   ::= object ( , object )*
    verb      ::= a | iri | prefixed-name
    subject   ::= iri | prefixed-name | _:label
    object    ::= iri | prefixed-name | _:label | "literal"
    v}
    [#] comments run to end of line.  Not supported (raise
    [Invalid_argument]): collections, anonymous blank nodes ([ ]),
    datatyped/language-tagged literals, multi-line strings and numeric
    abbreviations — the subset is exactly what {!print} emits, so writer
    output always reloads.

    The writer groups triples by subject with [;]-chained predicates and
    [,]-chained objects, and renders IRIs compactly through a
    {!Namespace} table. *)

val parse : string -> Triple.t list
(** Parses a document.  Raises [Invalid_argument] with a line-annotated
    message on unsupported or malformed syntax. *)

val print : ?namespaces:Namespace.t -> Triple.t list -> string
(** Renders triples, emitting [@prefix] directives for the namespace
    table's entries (default: {!Namespace.default}). *)

val load_file : string -> Graph.t
(** Loads a Turtle file into a graph (constraint triples become schema). *)

val save_file : ?namespaces:Namespace.t -> string -> Graph.t -> unit
(** Writes schema constraints then facts as Turtle. *)
