(** RDF terms: the values appearing in RDF triples.

    Following the RDF specification and Section 2.1 of the paper, the set of
    values [Val(G)] of an RDF graph is made of URIs (U), blank nodes (B) and
    literals (L).  Blank nodes denote unknown URI/literal tokens and behave
    like the variables of incomplete relational databases (V-tables). *)

type t =
  | Uri of string      (** a uniform resource identifier *)
  | Literal of string  (** an (un)typed literal constant, e.g. ["1996"] *)
  | Bnode of string    (** a blank node label, e.g. [_:b1] *)

val compare : t -> t -> int
(** Total order on terms, suitable for [Set]/[Map] functors.  URIs sort
    before literals, which sort before blank nodes. *)

val equal : t -> t -> bool
(** Structural equality on terms. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val uri : string -> t
(** [uri u] is [Uri u]. *)

val literal : string -> t
(** [literal s] is [Literal s]. *)

val bnode : string -> t
(** [bnode b] is [Bnode b]. *)

val is_uri : t -> bool
(** [is_uri t] holds iff [t] is a URI. *)

val is_literal : t -> bool
(** [is_literal t] holds iff [t] is a literal. *)

val is_bnode : t -> bool
(** [is_bnode t] holds iff [t] is a blank node. *)

val to_string : t -> string
(** Concrete N-Triples-like syntax: URIs between angle brackets, literals
    between double quotes, blank nodes prefixed by [_:]. *)

val of_string : string -> t
(** Parses the syntax produced by {!to_string}.  Raises [Invalid_argument]
    on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer using the {!to_string} syntax. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
