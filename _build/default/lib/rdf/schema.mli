(** RDF Schema constraints (Figure 2, bottom) and their closure.

    A schema is a set of constraints of four kinds — subclass, subproperty,
    domain typing and range typing — interpreted under the open-world
    assumption.  This module stores the declared constraints and precomputes
    their saturation (the schema-level fixpoint of the RDFS entailment
    rules), which both graph saturation and query reformulation rely on:

    - subclass and subproperty transitivity;
    - domain/range propagation through subproperties
      ([p ⊑ q] and [q domain c] entail [p domain c]);
    - domain/range propagation through subclasses
      ([p domain c] and [c ⊑ c'] entail [p domain c']).

    Two RDF databases have the same schema iff their saturations have the
    same RDFS statements (Definition 3.2); {!equal_closure} decides this. *)

type constr =
  | Subclass of Term.t * Term.t     (** [c rdfs:subClassOf c'] *)
  | Subproperty of Term.t * Term.t  (** [p rdfs:subPropertyOf p'] *)
  | Domain of Term.t * Term.t       (** [p rdfs:domain c] *)
  | Range of Term.t * Term.t        (** [p rdfs:range c] *)

type t
(** A schema: declared constraints plus their precomputed closure. *)

val empty : t
(** The schema with no constraints. *)

val of_constraints : constr list -> t
(** Builds a schema and computes its closure.  Raises [Invalid_argument] if
    a constraint mentions a literal or blank node where a class or property
    URI is expected. *)

val add : constr -> t -> t
(** [add c s] is the schema [s] extended with [c] (closure recomputed). *)

val constraints : t -> constr list
(** The declared (non-closed) constraints, in insertion order. *)

val closure : t -> constr list
(** All constraints in the schema saturation, including the declared ones.
    Reflexive subclass/subproperty constraints are omitted. *)

val constr_to_triple : constr -> Triple.t
(** The RDF triple stating a constraint (Figure 2). *)

val constr_of_triple : Triple.t -> constr option
(** Inverse of {!constr_to_triple}; [None] if the triple is not an RDFS
    constraint. *)

val classes : t -> Term.Set.t
(** All classes mentioned by the declared constraints. *)

val properties : t -> Term.Set.t
(** All (application-domain) properties mentioned by the constraints. *)

val super_classes : t -> Term.t -> Term.Set.t
(** [super_classes s c]: all [c'] such that [c ⊑* c'] in the closure,
    excluding [c] itself (unless the subclass graph is cyclic). *)

val sub_classes : t -> Term.t -> Term.Set.t
(** [sub_classes s c]: all [c'] with [c' ⊑* c], excluding [c]. *)

val super_properties : t -> Term.t -> Term.Set.t
(** [super_properties s p]: all [p'] with [p ⊑* p'], excluding [p]. *)

val sub_properties : t -> Term.t -> Term.Set.t
(** [sub_properties s p]: all [p'] with [p' ⊑* p], excluding [p]. *)

val domains : t -> Term.t -> Term.Set.t
(** [domains s p]: the closed set of domain classes of property [p], i.e.
    every [c] such that a fact [x p y] entails [x rdf:type c]. *)

val ranges : t -> Term.t -> Term.Set.t
(** [ranges s p]: the closed set of range classes of [p]. *)

val properties_with_domain : t -> Term.t -> Term.Set.t
(** [properties_with_domain s c]: all properties [p] such that a fact
    [x p y] entails [x rdf:type c] — the backward-chaining dual of
    {!domains}, used by reformulation rules. *)

val properties_with_range : t -> Term.t -> Term.Set.t
(** Backward-chaining dual of {!ranges}. *)

val is_subclass : t -> Term.t -> Term.t -> bool
(** [is_subclass s c c'] holds iff [c ⊑* c'] in the closure (reflexively). *)

val is_subproperty : t -> Term.t -> Term.t -> bool
(** [is_subproperty s p p'] holds iff [p ⊑* p'] (reflexively). *)

val equal_closure : t -> t -> bool
(** Whether two schemas have the same saturation (same-schema relation of
    Definition 3.2). *)

val size : t -> int
(** Number of declared constraints. *)

val pp : Format.formatter -> t -> unit
(** Prints the declared constraints, one per line. *)
