type constr =
  | Subclass of Term.t * Term.t
  | Subproperty of Term.t * Term.t
  | Domain of Term.t * Term.t
  | Range of Term.t * Term.t

(* Adjacency maps: node -> set of direct successors. *)
type adj = Term.Set.t Term.Map.t

type t = {
  declared : constr list;  (* insertion order *)
  subclass_up : adj;       (* c -> reflexive-transitive superclasses *)
  subclass_down : adj;     (* c -> reflexive-transitive subclasses *)
  subprop_up : adj;
  subprop_down : adj;
  domain_of : adj;         (* p -> closed domain classes *)
  range_of : adj;          (* p -> closed range classes *)
  classes : Term.Set.t;
  properties : Term.Set.t;
}

let adj_find m k =
  match Term.Map.find_opt k m with None -> Term.Set.empty | Some s -> s

let adj_add m k v = Term.Map.update k (function
  | None -> Some (Term.Set.singleton v)
  | Some s -> Some (Term.Set.add v s)) m

(* Reflexive-transitive closure of an adjacency relation restricted to the
   nodes appearing in it.  Handles cycles via a worklist fixpoint; schema
   graphs are small so the quadratic behaviour is irrelevant. *)
let reachability (direct : adj) (nodes : Term.Set.t) : adj =
  let step acc =
    Term.Set.fold
      (fun n (m, changed) ->
        let cur = adj_find m n in
        let next =
          Term.Set.fold
            (fun succ acc -> Term.Set.union acc (adj_find m succ))
            cur cur
        in
        if Term.Set.equal next cur then (m, changed)
        else (Term.Map.add n next m, true))
      nodes (acc, false)
  in
  let init =
    Term.Set.fold
      (fun n m -> Term.Map.add n (Term.Set.add n (adj_find direct n)) m)
      nodes Term.Map.empty
  in
  let rec fix m =
    let m', changed = step m in
    if changed then fix m' else m'
  in
  fix init

let invert (m : adj) : adj =
  Term.Map.fold
    (fun k s acc -> Term.Set.fold (fun v acc -> adj_add acc v k) s acc)
    m Term.Map.empty

let check_uri what t =
  if not (Term.is_uri t) then
    invalid_arg (Printf.sprintf "Schema: %s must be a URI: %s" what
                   (Term.to_string t))

let check_constr = function
  | Subclass (a, b) -> check_uri "class" a; check_uri "class" b
  | Subproperty (a, b) -> check_uri "property" a; check_uri "property" b
  | Domain (p, c) | Range (p, c) ->
      check_uri "property" p; check_uri "class" c

let of_constraints declared =
  List.iter check_constr declared;
  let classes, properties, sc, sp, dom, rng =
    List.fold_left
      (fun (cs, ps, sc, sp, dom, rng) c ->
        match c with
        | Subclass (a, b) ->
            (Term.Set.add a (Term.Set.add b cs), ps, adj_add sc a b, sp, dom,
             rng)
        | Subproperty (a, b) ->
            (cs, Term.Set.add a (Term.Set.add b ps), sc, adj_add sp a b, dom,
             rng)
        | Domain (p, c) ->
            (Term.Set.add c cs, Term.Set.add p ps, sc, sp, adj_add dom p c,
             rng)
        | Range (p, c) ->
            (Term.Set.add c cs, Term.Set.add p ps, sc, sp, dom,
             adj_add rng p c))
      ( Term.Set.empty, Term.Set.empty, Term.Map.empty, Term.Map.empty,
        Term.Map.empty, Term.Map.empty )
      declared
  in
  let subclass_up = reachability sc classes in
  let subprop_up = reachability sp properties in
  (* Closed domains: domain_of(p) = ∪ { up*(c) | p' ∈ up*(p), c ∈ dom(p') } *)
  let close_typing typing =
    Term.Set.fold
      (fun p acc ->
        let supers = adj_find subprop_up p in
        let cs =
          Term.Set.fold
            (fun p' acc ->
              Term.Set.fold
                (fun c acc -> Term.Set.union acc (adj_find subclass_up c))
                (adj_find typing p') acc)
            supers Term.Set.empty
        in
        if Term.Set.is_empty cs then acc else Term.Map.add p cs acc)
      properties Term.Map.empty
  in
  {
    declared;
    subclass_up;
    subclass_down = invert subclass_up;
    subprop_up;
    subprop_down = invert subprop_up;
    domain_of = close_typing dom;
    range_of = close_typing rng;
    classes;
    properties;
  }

let empty = of_constraints []

let add c s = of_constraints (s.declared @ [ c ])

let constraints s = s.declared

let constr_to_triple = function
  | Subclass (a, b) -> Triple.make a Vocab.rdfs_subclassof b
  | Subproperty (a, b) -> Triple.make a Vocab.rdfs_subpropertyof b
  | Domain (p, c) -> Triple.make p Vocab.rdfs_domain c
  | Range (p, c) -> Triple.make p Vocab.rdfs_range c

let constr_of_triple (t : Triple.t) =
  if Term.equal t.pred Vocab.rdfs_subclassof then Some (Subclass (t.subj, t.obj))
  else if Term.equal t.pred Vocab.rdfs_subpropertyof then
    Some (Subproperty (t.subj, t.obj))
  else if Term.equal t.pred Vocab.rdfs_domain then Some (Domain (t.subj, t.obj))
  else if Term.equal t.pred Vocab.rdfs_range then Some (Range (t.subj, t.obj))
  else None

let classes s = s.classes
let properties s = s.properties

let strict m x = Term.Set.remove x (adj_find m x)

let super_classes s c = strict s.subclass_up c
let sub_classes s c = strict s.subclass_down c
let super_properties s p = strict s.subprop_up p
let sub_properties s p = strict s.subprop_down p

let domains s p = adj_find s.domain_of p
let ranges s p = adj_find s.range_of p

let inverse_typing typing s c =
  (* All properties p with c ∈ typing(p).  Schemas are small: scan. *)
  Term.Set.filter (fun p -> Term.Set.mem c (adj_find typing p)) s.properties

let properties_with_domain s c = inverse_typing s.domain_of s c
let properties_with_range s c = inverse_typing s.range_of s c

let is_subclass s c c' =
  Term.equal c c' || Term.Set.mem c' (adj_find s.subclass_up c)

let is_subproperty s p p' =
  Term.equal p p' || Term.Set.mem p' (adj_find s.subprop_up p)

let closure s =
  let pairs m mk =
    Term.Map.fold
      (fun a succs acc ->
        Term.Set.fold
          (fun b acc -> if Term.equal a b then acc else mk a b :: acc)
          succs acc)
      m []
  in
  pairs s.subclass_up (fun a b -> Subclass (a, b))
  @ pairs s.subprop_up (fun a b -> Subproperty (a, b))
  @ pairs s.domain_of (fun p c -> Domain (p, c))
  @ pairs s.range_of (fun p c -> Range (p, c))

let compare_constr a b =
  let key = function
    | Subclass (x, y) -> (0, x, y)
    | Subproperty (x, y) -> (1, x, y)
    | Domain (x, y) -> (2, x, y)
    | Range (x, y) -> (3, x, y)
  in
  let (ta, xa, ya) = key a and (tb, xb, yb) = key b in
  let c = Int.compare ta tb in
  if c <> 0 then c
  else
    let c = Term.compare xa xb in
    if c <> 0 then c else Term.compare ya yb

let equal_closure a b =
  let sorted s = List.sort_uniq compare_constr (closure s) in
  List.equal (fun x y -> compare_constr x y = 0) (sorted a) (sorted b)

let size s = List.length s.declared

let pp fmt s =
  List.iter
    (fun c -> Format.fprintf fmt "%a@." Triple.pp (constr_to_triple c))
    s.declared
