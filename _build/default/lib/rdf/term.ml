type t =
  | Uri of string
  | Literal of string
  | Bnode of string

let tag = function Uri _ -> 0 | Literal _ -> 1 | Bnode _ -> 2

let payload = function Uri s | Literal s | Bnode s -> s

let compare a b =
  let c = Int.compare (tag a) (tag b) in
  if c <> 0 then c else String.compare (payload a) (payload b)

let equal a b = tag a = tag b && String.equal (payload a) (payload b)

let hash t = Hashtbl.hash (tag t, payload t)

let uri u = Uri u
let literal s = Literal s
let bnode b = Bnode b

let is_uri = function Uri _ -> true | Literal _ | Bnode _ -> false
let is_literal = function Literal _ -> true | Uri _ | Bnode _ -> false
let is_bnode = function Bnode _ -> true | Uri _ | Literal _ -> false

let to_string = function
  | Uri u -> "<" ^ u ^ ">"
  | Literal s -> "\"" ^ s ^ "\""
  | Bnode b -> "_:" ^ b

let of_string s =
  let n = String.length s in
  if n >= 2 && s.[0] = '<' && s.[n - 1] = '>' then Uri (String.sub s 1 (n - 2))
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Literal (String.sub s 1 (n - 2))
  else if n >= 2 && s.[0] = '_' && s.[1] = ':' then
    Bnode (String.sub s 2 (n - 2))
  else invalid_arg ("Term.of_string: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
