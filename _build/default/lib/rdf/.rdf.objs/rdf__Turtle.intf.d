lib/rdf/turtle.mli: Graph Namespace Triple
