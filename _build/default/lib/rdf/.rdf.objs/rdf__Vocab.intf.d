lib/rdf/vocab.mli: Term
