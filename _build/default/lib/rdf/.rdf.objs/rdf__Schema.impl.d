lib/rdf/schema.ml: Format Int List Printf Term Triple Vocab
