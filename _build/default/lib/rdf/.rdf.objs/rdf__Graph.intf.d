lib/rdf/graph.mli: Format Schema Term Triple
