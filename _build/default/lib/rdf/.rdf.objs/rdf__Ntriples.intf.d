lib/rdf/ntriples.mli: Graph Triple
