lib/rdf/dictionary.ml: Array Hashtbl Printf Term
