lib/rdf/triple.mli: Format Set Term
