lib/rdf/turtle.ml: Buffer Graph Hashtbl List Namespace Printf Schema String Term Triple Vocab
