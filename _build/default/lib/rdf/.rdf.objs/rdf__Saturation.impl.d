lib/rdf/saturation.ml: Graph List Schema Term Triple Vocab
