lib/rdf/saturation.mli: Graph Schema Triple
