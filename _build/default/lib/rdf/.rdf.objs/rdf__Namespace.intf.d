lib/rdf/namespace.mli: Term
