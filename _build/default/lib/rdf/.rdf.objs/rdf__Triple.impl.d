lib/rdf/triple.ml: Format Printf Set Term Vocab
