lib/rdf/vocab.ml: Term
