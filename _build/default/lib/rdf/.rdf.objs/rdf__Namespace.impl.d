lib/rdf/namespace.ml: Int List Option String Term
