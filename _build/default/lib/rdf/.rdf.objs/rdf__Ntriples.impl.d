lib/rdf/ntriples.ml: Graph List Printf Schema String Term Triple
