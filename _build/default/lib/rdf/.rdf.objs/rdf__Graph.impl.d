lib/rdf/graph.ml: Format List Schema Term Triple
