lib/rdf/term.ml: Format Hashtbl Int Map Set String
