(* ---- tokenizer ---- *)

type token =
  | Iri of string
  | Pname of string * string   (* prefix, local *)
  | Blank of string
  | Lit of string
  | A
  | Prefix_kw
  | Dot
  | Semi
  | Comma
  | Colon_name of string       (* "name:" in a @prefix directive *)

let fail line msg =
  invalid_arg (Printf.sprintf "Turtle: line %d: %s" line msg)

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let is_name c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  (* local names may contain dots but not end with one (the statement dot) *)
  let trim_name s =
    let l = String.length s in
    if l > 0 && s.[l - 1] = '.' then (String.sub s 0 (l - 1), true)
    else (s, false)
  in
  let rec scan i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\n' then (incr line; scan (i + 1))
      else if c = ' ' || c = '\t' || c = '\r' then scan (i + 1)
      else if c = '#' then begin
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        scan (eol i)
      end
      else if c = '.' then (push Dot; scan (i + 1))
      else if c = ';' then (push Semi; scan (i + 1))
      else if c = ',' then (push Comma; scan (i + 1))
      else if c = '<' then begin
        let rec fin j =
          if j >= n then fail !line "unterminated IRI"
          else if src.[j] = '>' then j
          else fin (j + 1)
        in
        let j = fin (i + 1) in
        push (Iri (String.sub src (i + 1) (j - i - 1)));
        scan (j + 1)
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec fin j =
          if j >= n then fail !line "unterminated literal"
          else if src.[j] = '\\' && j + 1 < n then begin
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | other -> fail !line (Printf.sprintf "bad escape \\%c" other));
            fin (j + 2)
          end
          else if src.[j] = '"' then j
          else (Buffer.add_char buf src.[j]; fin (j + 1))
        in
        let j = fin (i + 1) in
        (if j + 1 < n && (src.[j + 1] = '^' || src.[j + 1] = '@') then
           fail !line "datatyped/language-tagged literals are not supported");
        push (Lit (Buffer.contents buf));
        scan (j + 1)
      end
      else if c = '_' && i + 1 < n && src.[i + 1] = ':' then begin
        let rec fin j = if j < n && is_name src.[j] then fin (j + 1) else j in
        let j = fin (i + 2) in
        let name, had_dot = trim_name (String.sub src (i + 2) (j - i - 2)) in
        push (Blank name);
        if had_dot then push Dot;
        scan j
      end
      else if c = '@' then begin
        let rec fin j = if j < n && is_name src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        let word = String.sub src (i + 1) (j - i - 1) in
        if String.lowercase_ascii word = "prefix" then (push Prefix_kw; scan j)
        else fail !line ("unsupported directive @" ^ word)
      end
      else if c = '[' || c = '(' then
        fail !line "anonymous blank nodes and collections are not supported"
      else if is_name c || c = ':' then begin
        let rec fin j = if j < n && (is_name src.[j] || src.[j] = ':') then fin (j + 1) else j in
        let j = fin i in
        let word = String.sub src i (j - i) in
        match String.index_opt word ':' with
        | Some k ->
            let prefix = String.sub word 0 k in
            let local = String.sub word (k + 1) (String.length word - k - 1) in
            let local, had_dot = trim_name local in
            if local = "" then push (Colon_name prefix)
            else push (Pname (prefix, local));
            if had_dot then push Dot;
            scan j
        | None ->
            let word, had_dot = trim_name word in
            if word = "a" then push A
            else fail !line ("unexpected word: " ^ word);
            if had_dot then push Dot;
            scan j
      end
      else fail !line (Printf.sprintf "unexpected character %c" c)
  in
  scan 0;
  List.rev !toks

(* ---- parser ---- *)

let parse src =
  let toks = tokenize src in
  let prefixes = Hashtbl.create 8 in
  Hashtbl.replace prefixes "rdf" "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
  Hashtbl.replace prefixes "rdfs" "http://www.w3.org/2000/01/rdf-schema#";
  let resolve line p local =
    match Hashtbl.find_opt prefixes p with
    | Some base -> Term.uri (base ^ local)
    | None -> fail line ("undeclared prefix: " ^ p)
  in
  let term line = function
    | Iri i -> Term.uri i
    | Pname (p, local) -> resolve line p local
    | Blank b -> Term.bnode b
    | Lit s -> Term.literal s
    | A -> Vocab.rdf_type
    | Prefix_kw | Dot | Semi | Comma | Colon_name _ ->
        fail line "expected a term"
  in
  let triples = ref [] in
  let rec doc = function
    | [] -> ()
    | (Prefix_kw, line) :: rest -> (
        match rest with
        | (Colon_name name, _) :: (Iri base, _) :: (Dot, _) :: rest' ->
            Hashtbl.replace prefixes name base;
            doc rest'
        | _ -> fail line "malformed @prefix directive")
    | (subj_tok, line) :: rest ->
        let subj = term line subj_tok in
        predicate_list subj rest
  and predicate_list subj = function
    | (verb_tok, line) :: rest ->
        let verb = term line verb_tok in
        if not (Term.is_uri verb) then fail line "predicate must be an IRI";
        object_list subj verb rest
    | [] -> fail 0 "unexpected end of input in predicate list"
  and object_list subj verb = function
    | (obj_tok, line) :: rest -> (
        let obj = term line obj_tok in
        triples := Triple.make subj verb obj :: !triples;
        match rest with
        | (Comma, _) :: rest' -> object_list subj verb rest'
        | (Semi, _) :: (Dot, _) :: rest' -> doc rest'  (* trailing ; *)
        | (Semi, _) :: rest' -> predicate_list subj rest'
        | (Dot, _) :: rest' -> doc rest'
        | (_, line') :: _ ->
            fail line' "expected ',', ';' or '.' after object"
        | [] -> fail line "unterminated statement")
    | [] -> fail 0 "unexpected end of input in object list"
  in
  doc toks;
  List.rev !triples

(* ---- writer ---- *)

let escape_literal s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_term ns = function
  | Term.Literal s -> "\"" ^ escape_literal s ^ "\""
  | Term.Bnode b -> "_:" ^ b
  | Term.Uri _ as t -> Namespace.compact ns t

let render_verb ns p =
  if Term.equal p Vocab.rdf_type then "a" else render_term ns p

let print ?(namespaces = Namespace.default) triples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (prefix, base) ->
      Buffer.add_string buf
        (Printf.sprintf "@prefix %s: <%s> .\n" prefix base))
    (List.rev (Namespace.prefixes namespaces));
  if Namespace.prefixes namespaces <> [] then Buffer.add_char buf '\n';
  (* group by subject, then by predicate, preserving first-seen order *)
  let by_subject = Hashtbl.create 64 in
  let subject_order = ref [] in
  List.iter
    (fun (t : Triple.t) ->
      (match Hashtbl.find_opt by_subject t.subj with
      | None ->
          subject_order := t.subj :: !subject_order;
          Hashtbl.add by_subject t.subj [ (t.pred, t.obj) ]
      | Some pairs -> Hashtbl.replace by_subject t.subj ((t.pred, t.obj) :: pairs)))
    triples;
  List.iter
    (fun subj ->
      let pairs = List.rev (Hashtbl.find by_subject subj) in
      let preds =
        List.fold_left
          (fun acc (p, o) ->
            match List.assoc_opt p acc with
            | None -> acc @ [ (p, [ o ]) ]
            | Some objs ->
                List.map
                  (fun (p', objs') ->
                    if Term.equal p' p then (p', objs' @ [ o ]) else (p', objs'))
                  (ignore objs; acc))
          [] pairs
      in
      Buffer.add_string buf (render_term namespaces subj);
      List.iteri
        (fun i (p, objs) ->
          if i > 0 then Buffer.add_string buf " ;\n   ";
          Buffer.add_char buf ' ';
          Buffer.add_string buf (render_verb namespaces p);
          Buffer.add_char buf ' ';
          Buffer.add_string buf
            (String.concat ", "
               (List.map (render_term namespaces) objs)))
        preds;
      Buffer.add_string buf " .\n")
    (List.rev !subject_order);
  Buffer.contents buf

let load_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  Graph.of_triples (parse src)

let save_file ?namespaces path g =
  let triples =
    List.map Schema.constr_to_triple (Schema.constraints (Graph.schema g))
    @ Triple.Set.elements (Graph.facts g)
  in
  let oc = open_out path in
  output_string oc (print ?namespaces triples);
  close_out oc
