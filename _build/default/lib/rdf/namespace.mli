(** Namespace prefix management for compact IRI rendering.

    Query and answer listings are unreadable with full IRIs; a namespace
    table maps prefixes to IRI bases so terms render as [ub:Professor]
    instead of the 60-character original.  The longest matching base wins;
    terms under no registered base render in full N-Triples syntax. *)

type t

val empty : t
(** No prefixes registered. *)

val default : t
(** [rdf:] and [rdfs:] pre-registered. *)

val add : prefix:string -> base:string -> t -> t
(** Registers a prefix.  Raises [Invalid_argument] on an empty prefix, an
    empty base, or a prefix containing [':']. *)

val of_list : (string * string) list -> t
(** Builds a table from (prefix, base) pairs over {!default}. *)

val expand : t -> string -> string option
(** [expand t "ub:Professor"] resolves a compact name to a full IRI;
    [None] when the prefix is unknown or the input has no [':']. *)

val compact : t -> Term.t -> string
(** Renders a term, using the longest registered base that prefixes it;
    falls back to {!Term.to_string}. *)

val compact_row : t -> Term.t list -> string
(** Tab-separated {!compact} rendering of an answer row. *)

val prefixes : t -> (string * string) list
(** The registered (prefix, base) pairs, longest base first. *)
