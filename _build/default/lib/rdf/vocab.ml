let rdf_ns = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let rdfs_ns = "http://www.w3.org/2000/01/rdf-schema#"

let rdf_type = Term.uri (rdf_ns ^ "type")
let rdfs_subclassof = Term.uri (rdfs_ns ^ "subClassOf")
let rdfs_subpropertyof = Term.uri (rdfs_ns ^ "subPropertyOf")
let rdfs_domain = Term.uri (rdfs_ns ^ "domain")
let rdfs_range = Term.uri (rdfs_ns ^ "range")

let is_schema_property t =
  Term.equal t rdfs_subclassof
  || Term.equal t rdfs_subpropertyof
  || Term.equal t rdfs_domain
  || Term.equal t rdfs_range

let is_builtin t = Term.equal t rdf_type || is_schema_property t
