(** RDF graphs of the DB fragment (Section 2.3): a set of data triples
    (class and property assertions) together with an RDF Schema.

    Constraint triples added through {!add} are routed into the schema
    component; all other triples are facts.  This mirrors the paper's RDF
    *databases*, whose RDFS constraints are kept apart (in memory) from the
    [Triples(s,p,o)] fact table. *)

type t

val empty : t
(** The empty graph (no facts, empty schema). *)

val make : Schema.t -> Triple.t list -> t
(** [make schema facts] builds a graph.  Raises [Invalid_argument] if a
    schema-constraint triple appears among [facts]. *)

val of_triples : Triple.t list -> t
(** Builds a graph from raw triples, sorting constraint triples into the
    schema and the rest into the facts. *)

val add : Triple.t -> t -> t
(** Adds one triple, routing RDFS constraints to the schema component. *)

val add_fact : Triple.t -> t -> t
(** Adds a data triple.  Raises [Invalid_argument] on a constraint triple. *)

val schema : t -> Schema.t
(** The schema component. *)

val facts : t -> Triple.Set.t
(** The data triples (explicit assertions only). *)

val fact_list : t -> Triple.t list
(** {!facts} as a list, in triple order. *)

val mem : Triple.t -> t -> bool
(** Membership among the explicit facts, or (for constraint triples) in the
    declared schema. *)

val size : t -> int
(** Number of explicit facts (schema constraints not counted). *)

val values : t -> Term.Set.t
(** [Val(G)]: all URIs, blank nodes and literals of the graph's facts. *)

val union : t -> t -> t
(** Union of facts and concatenation of schemas. *)

val equal : t -> t -> bool
(** Same facts and same declared schema constraints (set-wise). *)

val pp : Format.formatter -> t -> unit
(** Prints the schema then the facts, one triple per line. *)
