(** Graph saturation: forward-chaining RDFS entailment (Section 2.1).

    The saturation [G∞] of a graph [G] is the fixpoint of the immediate
    entailment rules of the DB fragment.  With the schema closure already
    precomputed by {!Schema}, instance-level saturation needs a single pass
    over the facts:

    - [s rdf:type c] entails [s rdf:type c'] for every superclass [c'];
    - [s p o] entails [s p' o] for every superproperty [p'];
    - [s p o] entails [s rdf:type c] for every (closed) domain [c] of [p];
    - [s p o] entails [o rdf:type c] for every (closed) range [c] of [p]
      (generalized RDF: this includes literal objects, matching the Range
      reformulation rule).

    Saturation-based query answering evaluates queries directly against the
    saturated graph: [q(db∞) = q(saturate db)]. *)

val entailed_by_fact : Schema.t -> Triple.t -> Triple.t list
(** All facts immediately or transitively entailed by one data triple under
    the given (closed) schema, excluding the triple itself. *)

val saturate : Graph.t -> Graph.t
(** [saturate g] is [g∞]: same schema, facts closed under RDFS entailment. *)

val saturate_incremental : Graph.t -> Triple.t list -> Graph.t
(** [saturate_incremental g_sat new_facts] extends an already saturated
    graph with new data triples, saturating only the delta.  Requires that
    [g_sat] is saturated and that [new_facts] contains no constraint
    triple; the result equals [saturate] of the whole. *)

val is_saturated : Graph.t -> bool
(** Whether the graph already contains all its entailed facts. *)

val entails : Graph.t -> Triple.t -> bool
(** [entails g t]: RDF entailment [G |= t] for a data triple [t], decided
    against the saturation. *)
