(** Built-in RDF and RDFS vocabulary used by the DB fragment of RDF.

    The DB fragment (Section 2.3) restricts entailment to the four RDFS
    constraint kinds of Figure 2: [rdfs:subClassOf], [rdfs:subPropertyOf],
    [rdfs:domain] and [rdfs:range], plus the [rdf:type] assertion
    property. *)

val rdf_type : Term.t
(** [rdf:type] — class membership assertion property. *)

val rdfs_subclassof : Term.t
(** [rdfs:subClassOf] — subclass constraint property. *)

val rdfs_subpropertyof : Term.t
(** [rdfs:subPropertyOf] — subproperty constraint property. *)

val rdfs_domain : Term.t
(** [rdfs:domain] — domain typing constraint property. *)

val rdfs_range : Term.t
(** [rdfs:range] — range typing constraint property. *)

val is_schema_property : Term.t -> bool
(** Holds for the four RDFS constraint properties (not for [rdf:type]). *)

val is_builtin : Term.t -> bool
(** Holds for the four RDFS constraint properties and [rdf:type]. *)
