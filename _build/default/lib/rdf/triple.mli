(** RDF triples [s p o]: the subject [s] has property [p] with value [o].

    The DB fragment of RDF "does not restrict RDF graphs in any way"
    (Section 2.3), so {e generalized} RDF triples are accepted: the only
    well-formedness requirement kept is that the property is a URI.  In
    particular a literal may appear in subject position — the RDFS range
    entailment rule produces such typings, and both saturation and
    reformulation must agree on them for [q(db∞) = q_ref(db)] to hold. *)

type t = {
  subj : Term.t;  (** subject: any term (generalized RDF) *)
  pred : Term.t;  (** property: URI *)
  obj : Term.t;   (** object: URI, literal or blank node *)
}

val make : Term.t -> Term.t -> Term.t -> t
(** [make s p o] builds the triple [s p o].  Raises [Invalid_argument] on a
    non-URI property. *)

val compare : t -> t -> int
(** Lexicographic order on (subject, property, object). *)

val equal : t -> t -> bool
(** Component-wise equality. *)

val is_class_assertion : t -> bool
(** Holds for [s rdf:type o] triples (Figure 2, class assertion). *)

val is_schema_constraint : t -> bool
(** Holds for triples whose property is one of the four RDFS constraint
    properties (Figure 2, bottom). *)

val is_property_assertion : t -> bool
(** Holds for data triples that are neither class assertions nor schema
    constraints, i.e. plain [p(s, o)] facts. *)

val terms : t -> Term.t list
(** [terms t] is the list [[subj; pred; obj]]. *)

val to_string : t -> string
(** N-Triples-like rendering: [<s> <p> <o> .] *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer using the {!to_string} syntax (without trailing dot). *)

module Set : Set.S with type elt = t
