type t = { schema : Schema.t; facts : Triple.Set.t }

let empty = { schema = Schema.empty; facts = Triple.Set.empty }

let make schema facts =
  List.iter
    (fun tr ->
      if Triple.is_schema_constraint tr then
        invalid_arg
          ("Graph.make: constraint triple among facts: " ^ Triple.to_string tr))
    facts;
  { schema; facts = Triple.Set.of_list facts }

let add_fact tr g =
  if Triple.is_schema_constraint tr then
    invalid_arg ("Graph.add_fact: constraint triple: " ^ Triple.to_string tr)
  else { g with facts = Triple.Set.add tr g.facts }

let add tr g =
  match Schema.constr_of_triple tr with
  | Some c -> { g with schema = Schema.add c g.schema }
  | None -> add_fact tr g

let of_triples trs = List.fold_left (fun g tr -> add tr g) empty trs

let schema g = g.schema
let facts g = g.facts
let fact_list g = Triple.Set.elements g.facts

let mem tr g =
  match Schema.constr_of_triple tr with
  | Some c -> List.mem c (Schema.constraints g.schema)
  | None -> Triple.Set.mem tr g.facts

let size g = Triple.Set.cardinal g.facts

let values g =
  Triple.Set.fold
    (fun tr acc ->
      List.fold_left (fun acc t -> Term.Set.add t acc) acc (Triple.terms tr))
    g.facts Term.Set.empty

let union a b =
  {
    schema =
      Schema.of_constraints
        (Schema.constraints a.schema @ Schema.constraints b.schema);
    facts = Triple.Set.union a.facts b.facts;
  }

let equal a b =
  Triple.Set.equal a.facts b.facts
  && Schema.equal_closure a.schema b.schema

let pp fmt g =
  Schema.pp fmt g.schema;
  Triple.Set.iter (fun tr -> Format.fprintf fmt "%a@." Triple.pp tr) g.facts
