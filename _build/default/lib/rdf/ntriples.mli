(** A reader/writer for an N-Triples-like concrete syntax.

    Lines are [subject predicate object .] with URIs in angle brackets,
    literals in double quotes and blank nodes as [_:label].  Lines starting
    with [#] and blank lines are skipped.  This is enough to persist and
    reload every dataset this library generates. *)

val triple_of_line : string -> Triple.t option
(** Parses one line; [None] for blank/comment lines.  Raises
    [Invalid_argument] on a malformed triple line. *)

val line_of_triple : Triple.t -> string
(** One-line rendering, terminated by [" ."]. *)

val parse_string : string -> Triple.t list
(** Parses a whole document. *)

val print_string : Triple.t list -> string
(** Renders triples one per line. *)

val load_file : string -> Graph.t
(** Loads a graph from a file, routing RDFS constraint triples into the
    schema. *)

val save_file : string -> Graph.t -> unit
(** Writes schema constraints then facts to a file. *)
