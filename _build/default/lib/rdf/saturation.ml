let type_assertions schema subject klass =
  Term.Set.fold
    (fun c acc -> Triple.make subject Vocab.rdf_type c :: acc)
    (Schema.super_classes schema klass) []

let entailed_by_fact schema (tr : Triple.t) =
  if Triple.is_class_assertion tr then type_assertions schema tr.subj tr.obj
  else if Triple.is_schema_constraint tr then []
  else
    let via_subprop =
      Term.Set.fold
        (fun p acc -> Triple.make tr.subj p tr.obj :: acc)
        (Schema.super_properties schema tr.pred) []
    in
    let via_domain =
      Term.Set.fold
        (fun c acc -> Triple.make tr.subj Vocab.rdf_type c :: acc)
        (Schema.domains schema tr.pred) []
    in
    let via_range =
      (* Generalized RDF: range typing also applies to literal objects, in
         step with the Range reformulation rule. *)
      Term.Set.fold
        (fun c acc -> Triple.make tr.obj Vocab.rdf_type c :: acc)
        (Schema.ranges schema tr.pred) []
    in
    via_subprop @ via_domain @ via_range

(* The schema closure makes domain/range/subclass/subproperty information
   already transitive, so closing one fact yields type assertions whose only
   further consequences (superclasses) are also already included: a single
   pass reaches the fixpoint. *)
let saturate_facts schema facts =
  Triple.Set.fold
    (fun tr acc ->
      List.fold_left
        (fun acc t -> Triple.Set.add t acc)
        acc
        (entailed_by_fact schema tr))
    facts facts

let saturate g =
  let schema = Graph.schema g in
  Graph.make schema (Triple.Set.elements (saturate_facts schema (Graph.facts g)))

let saturate_incremental g_sat new_facts =
  let schema = Graph.schema g_sat in
  let delta = saturate_facts schema (Triple.Set.of_list new_facts) in
  Graph.make schema
    (Triple.Set.elements (Triple.Set.union (Graph.facts g_sat) delta))

let is_saturated g =
  Triple.Set.equal (Graph.facts g) (Graph.facts (saturate g))

let entails g t = Triple.Set.mem t (Graph.facts (saturate g))
