module H = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  by_value : int H.t;
  mutable by_code : Term.t array;  (* slot c holds the value of code c *)
  mutable next : int;
}

let dummy = Term.Literal ""

let create ?(initial_capacity = 1024) () =
  {
    by_value = H.create initial_capacity;
    by_code = Array.make (max 1 initial_capacity) dummy;
    next = 0;
  }

let grow d =
  let cap = Array.length d.by_code in
  let a = Array.make (2 * cap) dummy in
  Array.blit d.by_code 0 a 0 cap;
  d.by_code <- a

let encode d v =
  match H.find_opt d.by_value v with
  | Some c -> c
  | None ->
      let c = d.next in
      if c >= Array.length d.by_code then grow d;
      d.by_code.(c) <- v;
      H.add d.by_value v c;
      d.next <- c + 1;
      c

let find d v = H.find_opt d.by_value v

let mem_code d c = c >= 0 && c < d.next

let decode d c =
  if mem_code d c then d.by_code.(c)
  else invalid_arg (Printf.sprintf "Dictionary.decode: unknown code %d" c)

let cardinal d = d.next

let iter f d =
  for c = 0 to d.next - 1 do
    f d.by_code.(c) c
  done
