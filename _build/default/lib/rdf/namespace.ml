type t = (string * string) list
(* invariant: sorted by decreasing base length, so the first match is the
   longest one *)

let empty = []

let add ~prefix ~base t =
  if prefix = "" then invalid_arg "Namespace.add: empty prefix";
  if base = "" then invalid_arg "Namespace.add: empty base";
  if String.contains prefix ':' then
    invalid_arg "Namespace.add: prefix must not contain ':'";
  List.sort
    (fun (_, b1) (_, b2) -> Int.compare (String.length b2) (String.length b1))
    ((prefix, base) :: List.remove_assoc prefix t)

let default =
  empty
  |> add ~prefix:"rdf" ~base:"http://www.w3.org/1999/02/22-rdf-syntax-ns#"
  |> add ~prefix:"rdfs" ~base:"http://www.w3.org/2000/01/rdf-schema#"

let of_list pairs =
  List.fold_left (fun t (prefix, base) -> add ~prefix ~base t) default pairs

let expand t name =
  match String.index_opt name ':' with
  | None -> None
  | Some i ->
      let prefix = String.sub name 0 i in
      let local = String.sub name (i + 1) (String.length name - i - 1) in
      Option.map (fun base -> base ^ local) (List.assoc_opt prefix t)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let compact t term =
  match term with
  | Term.Uri iri -> (
      let matching =
        List.find_opt (fun (_, base) -> starts_with ~prefix:base iri) t
      in
      match matching with
      | Some (prefix, base) ->
          let local =
            String.sub iri (String.length base)
              (String.length iri - String.length base)
          in
          prefix ^ ":" ^ local
      | None -> Term.to_string term)
  | Term.Literal _ | Term.Bnode _ -> Term.to_string term

let compact_row t row = String.concat "\t" (List.map (compact t) row)

let prefixes t = t
