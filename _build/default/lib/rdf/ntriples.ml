(* Tokenizer: splits a triple line into three term tokens, keeping quoted
   literals and bracketed URIs intact. *)
let tokenize line =
  let n = String.length line in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let rec token_end i stop =
    if i >= n then invalid_arg ("Ntriples: unterminated term in: " ^ line)
    else if line.[i] = stop then i
    else token_end (i + 1) stop
  in
  let rec bare_end i =
    if i >= n || line.[i] = ' ' || line.[i] = '\t' then i else bare_end (i + 1)
  in
  let read_term i =
    let i = skip_ws i in
    if i >= n then None
    else if line.[i] = '.' && bare_end i = i + 1 then None
    else
      let j =
        match line.[i] with
        | '<' -> token_end (i + 1) '>' + 1
        | '"' -> token_end (i + 1) '"' + 1
        | _ -> bare_end i
      in
      Some (String.sub line i (j - i), j)
  in
  let rec loop acc i =
    match read_term i with
    | None -> List.rev acc
    | Some (tok, j) -> loop (tok :: acc) j
  in
  loop [] 0

let triple_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match tokenize line with
    | [ s; p; o ] ->
        Some (Triple.make (Term.of_string s) (Term.of_string p)
                (Term.of_string o))
    | toks ->
        invalid_arg
          (Printf.sprintf "Ntriples: expected 3 terms, got %d in: %s"
             (List.length toks) line)

let line_of_triple = Triple.to_string

let parse_string doc =
  String.split_on_char '\n' doc
  |> List.filter_map triple_of_line

let print_string triples =
  String.concat "\n" (List.map line_of_triple triples) ^ "\n"

let load_file path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> (
        match triple_of_line line with
        | None -> loop acc
        | Some t -> loop (t :: acc))
  in
  let triples = loop [] in
  close_in ic;
  Graph.of_triples triples

let save_file path g =
  let oc = open_out path in
  let emit t = output_string oc (line_of_triple t ^ "\n") in
  List.iter
    (fun c -> emit (Schema.constr_to_triple c))
    (Schema.constraints (Graph.schema g));
  Triple.Set.iter emit (Graph.facts g);
  close_out oc
