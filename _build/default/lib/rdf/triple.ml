type t = { subj : Term.t; pred : Term.t; obj : Term.t }

let make subj pred obj =
  if not (Term.is_uri pred) then
    invalid_arg "Triple.make: property must be a URI"
  else { subj; pred; obj }

let compare a b =
  let c = Term.compare a.subj b.subj in
  if c <> 0 then c
  else
    let c = Term.compare a.pred b.pred in
    if c <> 0 then c else Term.compare a.obj b.obj

let equal a b = compare a b = 0

let is_class_assertion t = Term.equal t.pred Vocab.rdf_type

let is_schema_constraint t = Vocab.is_schema_property t.pred

let is_property_assertion t =
  (not (is_class_assertion t)) && not (is_schema_constraint t)

let terms t = [ t.subj; t.pred; t.obj ]

let to_string t =
  Printf.sprintf "%s %s %s ."
    (Term.to_string t.subj) (Term.to_string t.pred) (Term.to_string t.obj)

let pp fmt t =
  Format.fprintf fmt "%a %a %a" Term.pp t.subj Term.pp t.pred Term.pp t.obj

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
