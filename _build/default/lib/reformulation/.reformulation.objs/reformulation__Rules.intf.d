lib/reformulation/rules.mli: Query Rdf
