lib/reformulation/rules.ml: Bgp List Query Rdf
