lib/reformulation/reformulate.ml: Array Bgp Hashtbl List Printf Query Queue Rdf Rules Set String Ucq
