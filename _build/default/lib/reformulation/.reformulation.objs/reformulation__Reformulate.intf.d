lib/reformulation/reformulate.mli: Query Rdf
