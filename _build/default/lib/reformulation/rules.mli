(** The reformulation rule set of the DB fragment of RDF (Section 2.3).

    [Reformulate(q, db)] applies backward-chaining rules exhaustively,
    producing the union of BGP queries whose direct evaluation against the
    non-saturated database retrieves the complete answer set.  One rule
    application rewrites a single atom of a CQ (possibly substituting a
    class or property variable throughout the CQ, head included, as in
    Example 4 where [q(x,y) :- x rdf:type y] yields [q(x,Book) :- …]).

    The rules, for a schema [S]:
    - {b [SubClass]}: atom [s rdf:type c], constraint [c' ⊑ c] in the
      closure ⟹ atom [s rdf:type c'];
    - {b [Domain]}: atom [s rdf:type c], property [p] whose closed domain
      contains [c] ⟹ atom [s p y] with [y] fresh;
    - {b [Range]}: atom [s rdf:type c], property [p] whose closed range
      contains [c] ⟹ atom [y p s] with [y] fresh;
    - {b [SubProperty]}: atom [s p o], constraint [p' ⊑ p] ⟹ atom
      [s p' o];
    - {b [ClassInstantiation]}: atom [s rdf:type y] with [y] a variable ⟹
      substitute [y ↦ c] in the whole CQ, for every class [c] of [S];
    - {b [PropertyInstantiation]}: atom [s v o] with [v] a variable ⟹
      substitute [v ↦ p] for every property [p] of [S], and [v ↦ rdf:type].

    Queries over the four RDFS constraint properties themselves are outside
    the supported fragment (the paper's experiments store constraints apart
    from the [Triples] table); {!applicable} rejects them. *)

exception Unsupported_atom of string
(** Raised when a query atom uses an RDFS constraint property, which the
    data-level reformulation fragment does not cover. *)

val applicable : Query.Bgp.atom -> unit
(** Checks that an atom is in the supported fragment.
    @raise Unsupported_atom otherwise. *)

type step = {
  rule : string;        (** rule name, for tracing *)
  result : Query.Bgp.t; (** the rewritten CQ *)
}

val one_step : Rdf.Schema.t -> fresh:(unit -> string) -> Query.Bgp.t -> step list
(** All CQs obtained from the given CQ by one rule application on one atom.
    [fresh] supplies globally fresh variable names for Domain/Range rules.
    @raise Unsupported_atom on out-of-fragment atoms. *)
