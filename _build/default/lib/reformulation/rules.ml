open Query

exception Unsupported_atom of string

let applicable (a : Bgp.atom) =
  match a.p with
  | Bgp.Const c when Rdf.Vocab.is_schema_property c ->
      raise
        (Unsupported_atom
           ("schema-constraint property in query atom: " ^ Rdf.Term.to_string c))
  | Bgp.Const _ | Bgp.Var _ -> ()

type step = { rule : string; result : Bgp.t }

(* Replace the [i]-th atom of [q] by [a]. *)
let replace_atom (q : Bgp.t) i a =
  { q with Bgp.body = List.mapi (fun j b -> if j = i then a else b) q.Bgp.body }

let set_fold f set acc = Rdf.Term.Set.fold f set acc

let one_step schema ~fresh (q : Bgp.t) =
  List.iteri (fun _ a -> applicable a) q.body;
  let steps = ref [] in
  let push rule result = steps := { rule; result } :: !steps in
  List.iteri
    (fun i (a : Bgp.atom) ->
      match a.p with
      | Bgp.Const p when Rdf.Term.equal p Rdf.Vocab.rdf_type -> (
          match a.o with
          | Bgp.Const klass ->
              (* SubClass *)
              ignore
                (set_fold
                   (fun c' () ->
                     push "SubClass"
                       (replace_atom q i (Bgp.atom a.s a.p (Bgp.Const c'))))
                   (Rdf.Schema.sub_classes schema klass)
                   ());
              (* Domain *)
              ignore
                (set_fold
                   (fun prop () ->
                     let y = Bgp.Var (fresh ()) in
                     push "Domain"
                       (replace_atom q i (Bgp.atom a.s (Bgp.Const prop) y)))
                   (Rdf.Schema.properties_with_domain schema klass)
                   ());
              (* Range *)
              ignore
                (set_fold
                   (fun prop () ->
                     let y = Bgp.Var (fresh ()) in
                     push "Range"
                       (replace_atom q i (Bgp.atom y (Bgp.Const prop) a.s)))
                   (Rdf.Schema.properties_with_range schema klass)
                   ())
          | Bgp.Var y ->
              (* ClassInstantiation: substitute the class variable in the
                 whole CQ, head included. *)
              ignore
                (set_fold
                   (fun c () ->
                     push "ClassInstantiation" (Bgp.apply_subst [ (y, c) ] q))
                   (Rdf.Schema.classes schema)
                   ()))
      | Bgp.Const p ->
          (* SubProperty *)
          ignore
            (set_fold
               (fun p' () ->
                 push "SubProperty"
                   (replace_atom q i (Bgp.atom a.s (Bgp.Const p') a.o)))
               (Rdf.Schema.sub_properties schema p)
               ())
      | Bgp.Var v ->
          (* PropertyInstantiation over schema properties and rdf:type. *)
          ignore
            (set_fold
               (fun p () ->
                 push "PropertyInstantiation" (Bgp.apply_subst [ (v, p) ] q))
               (Rdf.Schema.properties schema)
               ());
          push "PropertyInstantiation"
            (Bgp.apply_subst [ (v, Rdf.Vocab.rdf_type) ] q))
    q.body;
  !steps
