(** The DBLP workload (Section 5.1): a bibliographic RDFS ontology, a
    seeded synthetic generator standing in for the 8M-triple DBLP dump
    (which is not redistributable and carries no RDFS constraints of its
    own — the paper, like us, pairs the data with a bibliographic schema),
    and the 10 evaluation queries.

    The query set mirrors Table 4's spread: reformulation sizes from a
    handful of CQs up to a 10-atom query whose UCQ reformulation is far
    beyond every engine's capacity and whose cover space defeats exhaustive
    search (the paper's Q10, on which ECov times out — Figure 8). *)

val ns : string
(** The [dblp:] namespace prefix. *)

val schema : Rdf.Schema.t
(** The bibliographic RDFS schema. *)

type scale = { publications : int }
(** Generator scale; the paper's dump is ~8M triples ≈ 1M publications. *)

val generate : ?seed:int -> scale -> Store.Encoded_store.t
(** Deterministic synthetic bibliography (default seed 1936). *)

val generate_graph : ?seed:int -> scale -> Rdf.Graph.t
(** Same data as a graph (small scales / tests). *)

val queries : (string * Query.Bgp.t) list
(** The 10 evaluation queries [("Q01", q); …]. *)

val query : string -> Query.Bgp.t
(** Lookup by name ("Q01" … "Q10").  Raises [Not_found]. *)
