let ns = "http://dblp.example.org/schema#"

let u name = Rdf.Term.uri (ns ^ name)

(* ---- classes ---- *)

let publication = u "Publication"
let article = u "Article"
let journal_article = u "JournalArticle"
let conference_paper = u "ConferencePaper"
let book = u "Book"
let in_collection = u "InCollection"
let proceedings = u "Proceedings"
let thesis = u "Thesis"
let phd_thesis = u "PhdThesis"
let masters_thesis = u "MastersThesis"
let person = u "Person"
let author_c = u "Author"
let editor_c = u "Editor"
let venue = u "Venue"
let journal = u "Journal"
let conference = u "Conference"

(* ---- properties ---- *)

let creator = u "creator"
let author_p = u "author"
let editor_p = u "editor"
let published_in = u "publishedIn"
let in_journal = u "inJournal"
let in_proceedings = u "inProceedings"
let cites = u "cites"
let crossref = u "crossref"
let year = u "year"
let title = u "title"
let pages = u "pages"
let name_p = u "name"
let homepage = u "homepage"

let schema =
  let open Rdf.Schema in
  of_constraints
    [
      Subclass (article, publication);
      Subclass (journal_article, article);
      Subclass (conference_paper, article);
      Subclass (book, publication);
      Subclass (in_collection, publication);
      Subclass (proceedings, publication);
      Subclass (thesis, publication);
      Subclass (phd_thesis, thesis);
      Subclass (masters_thesis, thesis);
      Subclass (author_c, person);
      Subclass (editor_c, person);
      Subclass (journal, venue);
      Subclass (conference, venue);
      Subproperty (author_p, creator);
      Subproperty (editor_p, creator);
      Subproperty (in_journal, published_in);
      Subproperty (in_proceedings, published_in);
      Domain (creator, publication);
      Domain (published_in, publication);
      Domain (cites, publication);
      Domain (crossref, publication);
      Domain (year, publication);
      Domain (title, publication);
      Domain (pages, publication);
      Domain (name_p, person);
      Domain (homepage, person);
      Range (creator, person);
      Range (author_p, author_c);
      Range (editor_p, editor_c);
      Range (published_in, venue);
      Range (in_journal, journal);
      Range (in_proceedings, conference);
      Range (cites, publication);
      Range (crossref, proceedings);
    ]

(* ---- entities ---- *)

let pub_uri i = Rdf.Term.uri (Printf.sprintf "http://dblp.example.org/rec/pub%d" i)
let person_uri i = Rdf.Term.uri (Printf.sprintf "http://dblp.example.org/pers/a%d" i)
let journal_uri i = Rdf.Term.uri (Printf.sprintf "http://dblp.example.org/journal/j%d" i)
let conf_uri i = Rdf.Term.uri (Printf.sprintf "http://dblp.example.org/conf/c%d" i)
let proc_uri i = Rdf.Term.uri (Printf.sprintf "http://dblp.example.org/rec/proc%d" i)

type scale = { publications : int }

let lit s = Rdf.Term.literal s

(* A synthetic bibliography: one third as many authors as publications,
   journals and conferences proportional to size, publications rotating
   through the concrete classes, each with creators, venue, year, title,
   pages and a couple of citations to earlier records.  Type assertions
   use only the most specific classes and creator/venue facts only the
   specific sub-properties, leaving the general levels implicit. *)
let generate_into add ?(seed = 1936) { publications } =
  let st = Random.State.make [| seed |] in
  let n = max 10 publications in
  let n_authors = max 3 (n / 3) in
  let n_journals = 1 + (n / 200) in
  let n_confs = 1 + (n / 150) in
  for i = 0 to n_journals - 1 do
    add (journal_uri i) Rdf.Vocab.rdf_type journal
  done;
  for i = 0 to n_confs - 1 do
    let c = conf_uri i in
    add c Rdf.Vocab.rdf_type conference;
    let p = proc_uri i in
    add p Rdf.Vocab.rdf_type proceedings;
    add p in_proceedings c;
    add p editor_p (person_uri (Random.State.int st n_authors));
    add p year (lit (string_of_int (1970 + (i mod 45))))
  done;
  for i = 0 to n_authors - 1 do
    let a = person_uri i in
    add a name_p (lit (Printf.sprintf "Author %d" i));
    if i mod 11 = 0 then
      add a homepage (lit (Printf.sprintf "http://home%d.example.org" i))
  done;
  for i = 0 to n - 1 do
    let p = pub_uri i in
    let klass =
      match i mod 10 with
      | 0 | 1 | 2 | 3 -> conference_paper
      | 4 | 5 | 6 -> journal_article
      | 7 -> book
      | 8 -> in_collection
      | _ -> if i mod 20 = 9 then phd_thesis else masters_thesis
    in
    add p Rdf.Vocab.rdf_type klass;
    let n_auth = 1 + Random.State.int st 3 in
    for _ = 1 to n_auth do
      add p author_p (person_uri (Random.State.int st n_authors))
    done;
    if Rdf.Term.equal klass journal_article then
      add p in_journal (journal_uri (Random.State.int st n_journals))
    else if Rdf.Term.equal klass conference_paper then begin
      let c = Random.State.int st n_confs in
      add p in_proceedings (conf_uri c);
      add p crossref (proc_uri c)
    end;
    add p year (lit (string_of_int (1970 + (i mod 45))));
    add p title (lit (Printf.sprintf "On Topic %d" i));
    if i mod 3 = 0 then add p pages (lit (Printf.sprintf "%d-%d" i (i + 12)));
    if i > 10 then begin
      add p cites (pub_uri (Random.State.int st i));
      if i mod 2 = 0 then add p cites (pub_uri (Random.State.int st i))
    end
  done

let generate ?seed scale =
  let store = Store.Encoded_store.create schema in
  let add s p o = Store.Encoded_store.insert store (Rdf.Triple.make s p o) in
  generate_into add ?seed scale;
  store

let generate_graph ?seed scale =
  let triples = ref [] in
  let add s p o = triples := Rdf.Triple.make s p o :: !triples in
  generate_into add ?seed scale;
  Rdf.Graph.make schema !triples

(* ---- the 10 evaluation queries ---- *)

let prefix = Printf.sprintf "PREFIX dblp: <%s>\n" ns

let sparql_queries =
  [
    ("Q01", "SELECT ?p ?a WHERE { ?p dblp:creator ?a . ?p dblp:year ?y }");
    ("Q02", "SELECT ?p ?v WHERE { ?p a ?v . ?p dblp:publishedIn ?j }");
    (* two open type atoms joined through citation *)
    ("Q03", "SELECT ?p ?c ?q ?d WHERE { ?p a ?c . ?q a ?d . ?p dblp:cites ?q }");
    ("Q04",
     "SELECT ?p ?c ?a WHERE { ?p a ?c . ?p dblp:creator ?a . ?a dblp:name ?n }");
    ("Q05", "SELECT ?t WHERE { ?t a dblp:Thesis . ?t dblp:author ?a }");
    ("Q06",
     "SELECT ?p ?a WHERE { ?p a dblp:Article . ?p dblp:author ?a . ?a \
      dblp:homepage ?h }");
    ("Q07",
     "SELECT ?p ?j WHERE { ?p dblp:publishedIn ?j . ?j a dblp:Venue . ?p \
      dblp:year ?y }");
    ("Q08",
     "SELECT ?p ?c ?v WHERE { ?p a ?c . ?p dblp:publishedIn ?v . ?v a ?w . \
      ?p dblp:creator ?a }");
    ("Q09",
     "SELECT ?a ?p ?q WHERE { ?p dblp:author ?a . ?q dblp:author ?a . ?p \
      dblp:cites ?q }");
    (* Q10: ten atoms, three open type variables: the reformulation is far
       beyond any engine's union capacity and the cover space defeats
       exhaustive search (ECov times out, Figure 8). *)
    ("Q10",
     "SELECT ?p ?c ?q ?d ?r ?e WHERE { ?p a ?c . ?q a ?d . ?r a ?e . ?p \
      dblp:cites ?q . ?q dblp:cites ?r . ?p dblp:creator ?a . ?q \
      dblp:creator ?a . ?r dblp:author ?b . ?a dblp:name ?n . ?b dblp:name \
      ?m }");
  ]

let queries =
  List.map
    (fun (nm, body) -> (nm, Query.Sparql.parse (prefix ^ body)))
    sparql_queries

let query nm = List.assoc nm queries
