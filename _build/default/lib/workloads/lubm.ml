open Query

let ns = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

let u name = Rdf.Term.uri (ns ^ name)

(* ---- classes ---- *)

let organization = u "Organization"
let university_c = u "University"
let college = u "College"
let department = u "Department"
let institute = u "Institute"
let program = u "Program"
let research_group = u "ResearchGroup"
let person = u "Person"
let employee = u "Employee"
let student = u "Student"
let teaching_assistant = u "TeachingAssistant"
let research_assistant = u "ResearchAssistant"
let director = u "Director"
let faculty = u "Faculty"
let administrative_staff = u "AdministrativeStaff"
let professor = u "Professor"
let lecturer = u "Lecturer"
let post_doc = u "PostDoc"
let full_professor = u "FullProfessor"
let associate_professor = u "AssociateProfessor"
let assistant_professor = u "AssistantProfessor"
let visiting_professor = u "VisitingProfessor"
let chair = u "Chair"
let dean = u "Dean"
let clerical_staff = u "ClericalStaff"
let systems_staff = u "SystemsStaff"
let undergraduate_student = u "UndergraduateStudent"
let graduate_student = u "GraduateStudent"
let work = u "Work"
let course = u "Course"
let research = u "Research"
let graduate_course = u "GraduateCourse"
let publication = u "Publication"
let article = u "Article"
let book = u "Book"
let manual = u "Manual"
let software = u "Software"
let specification = u "Specification"
let unofficial_publication = u "UnofficialPublication"
let conference_paper = u "ConferencePaper"
let journal_article = u "JournalArticle"
let technical_report = u "TechnicalReport"

(* ---- properties ---- *)

let member_of = u "memberOf"
let works_for = u "worksFor"
let head_of = u "headOf"
let sub_organization_of = u "subOrganizationOf"
let affiliated_organization_of = u "affiliatedOrganizationOf"
let degree_from = u "degreeFrom"
let undergraduate_degree_from = u "undergraduateDegreeFrom"
let masters_degree_from = u "mastersDegreeFrom"
let doctoral_degree_from = u "doctoralDegreeFrom"
let advisor = u "advisor"
let takes_course = u "takesCourse"
let teacher_of = u "teacherOf"
let teaching_assistant_of = u "teachingAssistantOf"
let research_assistant_of = u "researchAssistantOf"
let publication_author = u "publicationAuthor"
let org_publication = u "orgPublication"
let research_project = u "researchProject"
let software_documentation = u "softwareDocumentation"
let publication_date = u "publicationDate"
let publication_research = u "publicationResearch"
let tenured = u "tenured"
let email_address = u "emailAddress"
let telephone = u "telephone"
let title = u "title"
let age = u "age"
let research_interest = u "researchInterest"
let office_number = u "officeNumber"
let name_p = u "name"

let schema =
  let open Rdf.Schema in
  of_constraints
    [
      (* class hierarchy *)
      Subclass (university_c, organization);
      Subclass (college, organization);
      Subclass (department, organization);
      Subclass (institute, organization);
      Subclass (program, organization);
      Subclass (research_group, organization);
      Subclass (employee, person);
      Subclass (student, person);
      Subclass (teaching_assistant, person);
      Subclass (research_assistant, person);
      Subclass (director, person);
      Subclass (faculty, employee);
      Subclass (administrative_staff, employee);
      Subclass (professor, faculty);
      Subclass (lecturer, faculty);
      Subclass (post_doc, faculty);
      Subclass (full_professor, professor);
      Subclass (associate_professor, professor);
      Subclass (assistant_professor, professor);
      Subclass (visiting_professor, professor);
      Subclass (chair, professor);
      Subclass (dean, professor);
      Subclass (clerical_staff, administrative_staff);
      Subclass (systems_staff, administrative_staff);
      Subclass (undergraduate_student, student);
      Subclass (graduate_student, student);
      Subclass (course, work);
      Subclass (research, work);
      Subclass (graduate_course, course);
      Subclass (article, publication);
      Subclass (book, publication);
      Subclass (manual, publication);
      Subclass (software, publication);
      Subclass (specification, publication);
      Subclass (unofficial_publication, publication);
      Subclass (conference_paper, article);
      Subclass (journal_article, article);
      Subclass (technical_report, article);
      (* property hierarchy *)
      Subproperty (works_for, member_of);
      Subproperty (head_of, works_for);
      Subproperty (undergraduate_degree_from, degree_from);
      Subproperty (masters_degree_from, degree_from);
      Subproperty (doctoral_degree_from, degree_from);
      (* domains *)
      Domain (member_of, person);
      Domain (sub_organization_of, organization);
      Domain (affiliated_organization_of, organization);
      Domain (degree_from, person);
      Domain (advisor, person);
      Domain (takes_course, student);
      Domain (teacher_of, faculty);
      Domain (teaching_assistant_of, teaching_assistant);
      Domain (research_assistant_of, research_assistant);
      Domain (publication_author, publication);
      Domain (org_publication, organization);
      Domain (research_project, research_group);
      Domain (software_documentation, software);
      Domain (publication_date, publication);
      Domain (publication_research, publication);
      Domain (tenured, professor);
      Domain (email_address, person);
      Domain (telephone, person);
      Domain (title, person);
      Domain (age, person);
      Domain (research_interest, person);
      Domain (office_number, faculty);
      (* ranges *)
      Range (member_of, organization);
      Range (sub_organization_of, organization);
      Range (affiliated_organization_of, organization);
      Range (degree_from, university_c);
      Range (advisor, professor);
      Range (takes_course, course);
      Range (teacher_of, course);
      Range (teaching_assistant_of, course);
      Range (research_assistant_of, research_group);
      Range (publication_author, person);
      Range (org_publication, publication);
      Range (research_project, research);
      Range (software_documentation, publication);
      Range (publication_research, research);
    ]

(* ---- entity URIs ---- *)

let university i = Rdf.Term.uri (Printf.sprintf "http://www.University%d.edu" i)

let dept_uri ui di =
  Printf.sprintf "http://www.Department%d.University%d.edu" di ui

let entity ui di kind k = Rdf.Term.uri (Printf.sprintf "%s/%s%d" (dept_uri ui di) kind k)

type scale = { universities : int }

let lit s = Rdf.Term.literal s

(* ---- generator ----

   Per department: 12 faculty (4 full / 3 associate / 3 assistant / 2
   lecturers; the first full professor chairs it), 24 courses, 20 graduate
   and 30 undergraduate students, 3 publications per faculty member, one
   research group.  Roughly 1,050 triples per department, 5 departments per
   university.  All memberships of faculty in their university, and of
   students in their department, are explicit; [degreeFrom] facts exist
   only through the three specific sub-properties, and type facts are only
   asserted at the most specific class — the implicit knowledge that
   reformulation/saturation must recover. *)
let generate_into add ?(seed = 2015) { universities } =
  let st = Random.State.make [| seed |] in
  let n_univ = max 1 universities in
  let rand_univ () = university (Random.State.int st n_univ) in
  for ui = 0 to n_univ - 1 do
    let univ = university ui in
    add univ Rdf.Vocab.rdf_type university_c;
    for di = 0 to 4 do
      let dept = Rdf.Term.uri (dept_uri ui di) in
      add dept Rdf.Vocab.rdf_type department;
      add dept sub_organization_of univ;
      let group = entity ui di "ResearchGroup" 0 in
      add group Rdf.Vocab.rdf_type research_group;
      add group sub_organization_of dept;
      let proj = entity ui di "Research" 0 in
      add proj Rdf.Vocab.rdf_type research;
      add group research_project proj;
      (* courses *)
      let courses =
        Array.init 24 (fun k ->
            let c = entity ui di "Course" k in
            add c Rdf.Vocab.rdf_type
              (if k mod 5 < 2 then graduate_course else course);
            c)
      in
      (* faculty *)
      let faculty_kinds =
        [|
          full_professor; full_professor; full_professor; full_professor;
          associate_professor; associate_professor; associate_professor;
          assistant_professor; assistant_professor; assistant_professor;
          lecturer; lecturer;
        |]
      in
      let faculty_members =
        Array.mapi
          (fun k klass ->
            let kind =
              if Rdf.Term.equal klass full_professor then "FullProfessor"
              else if Rdf.Term.equal klass associate_professor then
                "AssociateProfessor"
              else if Rdf.Term.equal klass assistant_professor then
                "AssistantProfessor"
              else "Lecturer"
            in
            let f = entity ui di kind k in
            add f Rdf.Vocab.rdf_type klass;
            add f works_for dept;
            add f member_of univ;
            add f doctoral_degree_from (rand_univ ());
            add f masters_degree_from (rand_univ ());
            add f undergraduate_degree_from (rand_univ ());
            add f name_p (lit (Printf.sprintf "%s%d.D%d.U%d" kind k di ui));
            add f email_address
              (lit (Printf.sprintf "%s%d@dept%d.univ%d.edu" kind k di ui));
            add f telephone
              (lit (Printf.sprintf "+1-%03d-%04d" (ui mod 999) k));
            add f teacher_of courses.(2 * k mod 24);
            add f teacher_of courses.((2 * k + 1) mod 24);
            if Rdf.Term.equal klass full_professor then
              add f tenured (lit "true");
            f)
          faculty_kinds
      in
      add faculty_members.(0) head_of dept;
      (* graduate students *)
      for k = 0 to 19 do
        let g = entity ui di "GraduateStudent" k in
        add g Rdf.Vocab.rdf_type graduate_student;
        add g member_of dept;
        add g undergraduate_degree_from (rand_univ ());
        let adv = faculty_members.(k mod 10) in
        add g advisor adv;
        (* one course taught by the advisor (the Q17 triangle), one other *)
        add g takes_course courses.(2 * (k mod 10) mod 24);
        add g takes_course courses.(Random.State.int st 24);
        add g name_p (lit (Printf.sprintf "GraduateStudent%d.D%d.U%d" k di ui));
        add g email_address
          (lit (Printf.sprintf "grad%d@dept%d.univ%d.edu" k di ui));
        if k mod 5 = 0 then begin
          add g Rdf.Vocab.rdf_type teaching_assistant;
          add g teaching_assistant_of courses.(Random.State.int st 24)
        end;
        if k mod 7 = 0 then begin
          add g Rdf.Vocab.rdf_type research_assistant;
          add g research_assistant_of group
        end
      done;
      (* undergraduate students *)
      for k = 0 to 29 do
        let s = entity ui di "UndergraduateStudent" k in
        add s Rdf.Vocab.rdf_type undergraduate_student;
        add s member_of dept;
        add s takes_course courses.(Random.State.int st 24);
        add s takes_course courses.(Random.State.int st 24);
        add s name_p
          (lit (Printf.sprintf "UndergraduateStudent%d.D%d.U%d" k di ui))
      done;
      (* publications *)
      let pub_kinds = [| journal_article; conference_paper; technical_report |] in
      Array.iteri
        (fun k f ->
          for j = 0 to 2 do
            let p = entity ui di "Publication" ((3 * k) + j) in
            add p Rdf.Vocab.rdf_type pub_kinds.(j);
            add p publication_author f;
            add p publication_date (lit (string_of_int (1995 + ((k + j) mod 20))));
            if j = 0 then add p publication_research proj
          done)
        faculty_members
    done
  done

let generate ?seed scale =
  let store = Store.Encoded_store.create schema in
  let add s p o = Store.Encoded_store.insert store (Rdf.Triple.make s p o) in
  generate_into add ?seed scale;
  store

let generate_graph ?seed scale =
  let triples = ref [] in
  let add s p o = triples := Rdf.Triple.make s p o :: !triples in
  generate_into add ?seed scale;
  Rdf.Graph.make schema !triples

(* ---- the 28 evaluation queries ---- *)

let u0 = "<http://www.University0.edu>"

let prefix = Printf.sprintf "PREFIX ub: <%s>\n" ns

let sparql_queries =
  [
    (* Q01 = Motivating Example 1's q1: 188 × 4 × 3 = 2,256 reformulations *)
    ("Q01",
     "SELECT ?x ?y WHERE { ?x a ?y . ?x ub:degreeFrom " ^ u0
     ^ " . ?x ub:memberOf " ^ u0 ^ " }");
    ("Q02", "SELECT ?x ?y WHERE { ?x a ?y . ?x ub:memberOf " ^ u0 ^ " }");
    ("Q03", "SELECT ?x ?c WHERE { ?x a ub:Student . ?x ub:takesCourse ?c }");
    ("Q04", "SELECT ?x ?n WHERE { ?x a ub:Professor . ?x ub:emailAddress ?n }");
    ("Q05", "SELECT ?x ?c WHERE { ?x ub:teacherOf ?c . ?c a ub:Course }");
    (* Q06: large-result single-class query (the Person surface) *)
    ("Q06", "SELECT ?x WHERE { ?x a ub:Person . ?x ub:memberOf ?o }");
    ("Q07", "SELECT ?x ?y WHERE { ?x ub:worksFor ?y . ?y a ub:Department }");
    ("Q08",
     "SELECT ?x ?y ?z WHERE { ?x ub:memberOf ?y . ?y ub:subOrganizationOf ?z \
      . ?z a ub:University }");
    (* Q09: two open type atoms: 188 × 188 = 35,344 reformulations *)
    ("Q09", "SELECT ?x ?y ?z ?w WHERE { ?x a ?y . ?z a ?w . ?x ub:advisor ?z }");
    ("Q10",
     "SELECT ?x ?c ?s WHERE { ?x a ub:Faculty . ?x ub:teacherOf ?c . ?s \
      ub:takesCourse ?c }");
    ("Q11", "SELECT ?x ?o WHERE { ?x a ub:Employee . ?x ub:memberOf ?o }");
    ("Q12",
     "SELECT ?p ?a WHERE { ?p a ub:Publication . ?p ub:publicationAuthor ?a \
      . ?a a ub:Faculty }");
    ("Q13", "SELECT ?x ?y ?c WHERE { ?x a ?y . ?x ub:teacherOf ?c }");
    (* Q14: large-result organization surface *)
    ("Q14", "SELECT ?x WHERE { ?x a ub:Organization }");
    (* Q15: 188 × 3 × 21 = 11,844 — beyond the DB2-like union capacity *)
    ("Q15",
     "SELECT ?x ?y ?o WHERE { ?x a ?y . ?x ub:memberOf ?o . ?o a \
      ub:Organization }");
    ("Q16", "SELECT ?x ?u WHERE { ?x ub:degreeFrom ?u . ?u a ub:University }");
    ("Q17",
     "SELECT ?x ?y ?c WHERE { ?x ub:advisor ?y . ?y ub:teacherOf ?c . ?x \
      ub:takesCourse ?c }");
    (* Q18: 188 × 3 × 1 × 188 = 106,032 — beyond DB2- and MySQL-like limits *)
    ("Q18",
     "SELECT ?x ?y ?d ?u ?w WHERE { ?x a ?y . ?x ub:memberOf ?d . ?d \
      ub:subOrganizationOf ?u . ?u a ?w }");
    (* Q19: 188 × 3 × 1 × 42 = 23,688 — DB2-like fails, MySQL-like passes *)
    ("Q19",
     "SELECT ?x ?y ?d ?z WHERE { ?x a ?y . ?x ub:memberOf ?d . ?x ub:advisor \
      ?z . ?z a ub:Person }");
    ("Q20",
     "SELECT ?g ?p WHERE { ?g a ub:GraduateStudent . ?g ub:advisor ?p . ?p a \
      ub:FullProfessor }");
    ("Q21", "SELECT ?x ?d WHERE { ?x ub:headOf ?d . ?d a ub:Organization }");
    ("Q22", "SELECT ?x WHERE { ?x a ub:Person . ?x ub:degreeFrom " ^ u0 ^ " }");
    ("Q23",
     "SELECT ?x ?d ?u WHERE { ?x a ub:Student . ?x ub:memberOf ?d . ?d \
      ub:subOrganizationOf ?u . ?x ub:degreeFrom ?u }");
    ("Q24",
     "SELECT ?x ?c ?s WHERE { ?x a ub:Faculty . ?x ub:teacherOf ?c . ?c a \
      ub:GraduateCourse . ?s ub:takesCourse ?c . ?s a ub:GraduateStudent }");
    ("Q25",
     "SELECT ?p ?a ?d WHERE { ?p a ub:Article . ?p ub:publicationAuthor ?a \
      . ?a ub:worksFor ?d . ?d a ub:Department }");
    ("Q26",
     "SELECT ?x ?y WHERE { ?x a ?y . ?x ub:undergraduateDegreeFrom " ^ u0
     ^ " }");
    ("Q27",
     "SELECT ?x ?d ?u ?p WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . ?d \
      ub:subOrganizationOf ?u . ?p ub:publicationAuthor ?x . ?p a \
      ub:Publication }");
    (* Q28 = Motivating Example 2's q2: 188² × 3 × 3 = 318,096 *)
    ("Q28",
     "SELECT ?x ?u ?y ?v ?z WHERE { ?x a ?u . ?y a ?v . ?x \
      ub:mastersDegreeFrom " ^ u0 ^ " . ?y ub:doctoralDegreeFrom " ^ u0
     ^ " . ?x ub:memberOf ?z . ?y ub:memberOf ?z }");
  ]

let queries =
  List.map (fun (nm, body) -> (nm, Sparql.parse (prefix ^ body))) sparql_queries

let query nm = List.assoc nm queries
