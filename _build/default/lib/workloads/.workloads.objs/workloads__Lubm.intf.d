lib/workloads/lubm.mli: Query Rdf Store
