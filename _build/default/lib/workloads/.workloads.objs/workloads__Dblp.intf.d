lib/workloads/dblp.mli: Query Rdf Store
