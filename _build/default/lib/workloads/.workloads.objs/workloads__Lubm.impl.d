lib/workloads/lubm.ml: Array List Printf Query Random Rdf Sparql Store
