lib/workloads/dblp.ml: List Printf Query Random Rdf Store
