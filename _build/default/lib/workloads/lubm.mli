(** The LUBM workload (Section 5.1): the univ-bench ontology's RDFS
    fragment, a seeded scalable data generator, and the 28 evaluation
    queries.

    The ontology reproduces the reformulation structure the paper reports:
    the open triple [x rdf:type y] reformulates into 188 CQs (Table 1),
    [x ub:degreeFrom u] into 4, [x ub:memberOf u] into 3, making the
    motivating queries q1 and q2 reformulate into 2,256 and 318,096 CQs
    (Tables 1-3).  The generator is deterministic given a seed and scales
    linearly with the number of universities (roughly 5,200 triples per
    university); like the paper's setup, only {e explicit} triples are
    produced — implicit class/property memberships are left to reasoning
    (e.g. [ub:degreeFrom] facts exist only through its three
    sub-properties). *)

val ns : string
(** The [ub:] namespace prefix. *)

val schema : Rdf.Schema.t
(** The univ-bench RDFS schema (subclass / subproperty / domain / range). *)

val university : int -> Rdf.Term.t
(** [university i] is the URI of the [i]-th generated university, the kind
    of constant the evaluation queries mention. *)

type scale = { universities : int }
(** Generator scale.  1M-triple-class runs use ~190 universities; unit
    tests use 1-2. *)

val generate : ?seed:int -> scale -> Store.Encoded_store.t
(** Generates a dataset directly into an encoded store (schema attached).
    Deterministic for a fixed seed (default 2015). *)

val generate_graph : ?seed:int -> scale -> Rdf.Graph.t
(** Same data as a graph (small scales / tests). *)

val queries : (string * Query.Bgp.t) list
(** The 28 evaluation queries [("Q01", q); …], in paper order: Q01 is
    Motivating Example 1's q1 and Q28 Motivating Example 2's q2; the rest
    span the reformulation-size and result-size spectrum of Table 4. *)

val query : string -> Query.Bgp.t
(** Lookup by name ("Q01" … "Q28").  Raises [Not_found]. *)
