(** SQL rendering of (J)UCQ reformulations over the [Triples(s, p, o)]
    table — the statements the paper ships to the RDBMS.

    Each CQ becomes a self-join of [Triples] aliases [t0, t1, …] with
    equality predicates for constants (as dictionary codes) and shared
    variables; a UCQ becomes a [UNION] of such [SELECT]s; a JUCQ wraps its
    fragment UCQs as subqueries joined on their shared columns.  The
    rendering is exercised by the CLI and documentation examples; the
    in-process executor evaluates the same algebra natively. *)

val cq : Store.Encoded_store.t -> Query.Bgp.t -> string
(** [SELECT … FROM Triples t0, … WHERE …] for one CQ.  Constants missing
    from the dictionary render as an always-false predicate ([1=0]). *)

val ucq : Store.Encoded_store.t -> Query.Ucq.t -> string
(** [UNION] of the member CQs. *)

val jucq : Store.Encoded_store.t -> Query.Jucq.t -> string
(** Join of fragment subqueries, projecting the original head. *)
