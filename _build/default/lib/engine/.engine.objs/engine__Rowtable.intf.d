lib/engine/rowtable.mli:
