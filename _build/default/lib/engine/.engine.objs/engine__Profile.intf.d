lib/engine/profile.mli:
