lib/engine/sql.ml: Bgp Hashtbl Jucq List Printf Query Store String Ucq
