lib/engine/profile.ml: Printf
