lib/engine/executor.ml: Array Bgp Hashtbl Int Jucq List Profile Query Rdf Relation Rowtable Store String Ucq
