lib/engine/executor.ml: Array Bgp Hashtbl Int Jucq List Profile Query Rdf Relation Store String Ucq
