lib/engine/rowtable.ml: Array
