lib/engine/plan.ml: Buffer Executor Float Format List Printf Profile Query Store
