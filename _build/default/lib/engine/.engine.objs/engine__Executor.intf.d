lib/engine/executor.mli: Profile Query Rdf Relation Store
