lib/engine/relation.mli:
