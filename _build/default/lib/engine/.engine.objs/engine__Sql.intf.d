lib/engine/sql.mli: Query Store
