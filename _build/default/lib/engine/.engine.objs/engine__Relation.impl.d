lib/engine/relation.ml: Array Hashtbl
