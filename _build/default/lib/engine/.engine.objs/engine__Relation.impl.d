lib/engine/relation.ml: Array Rowtable
