lib/engine/plan.mli: Executor Format Profile Query
