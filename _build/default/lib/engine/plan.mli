(** Textual physical-plan explanation for JUCQ evaluation.

    {!describe} reconstructs, without executing anything, the plan shape
    {!Executor.eval_jucq} will use: per fragment, the union width and the
    estimated cardinality; then the greedy fragment-join order with
    estimated intermediate sizes; finally the head projection and the
    duplicate elimination.  The CLI's [explain] command and the examples
    print it so a user can see {e why} a cover wins. *)

type fragment_info = {
  cover_query : Query.Bgp.t;      (** the fragment's cover query *)
  union_terms : int;              (** CQs in its reformulation *)
  estimated_rows : float;         (** statistics estimate of its result *)
}

type t = {
  fragments : fragment_info list;   (** in join order (smallest first) *)
  join_algorithm : Profile.join_algorithm;
  estimated_result_rows : float;    (** estimate of the final result *)
}

val describe : Executor.t -> Query.Jucq.t -> t
(** Builds the plan description from the engine's statistics. *)

val to_string : t -> string
(** Multi-line rendering, one operator per line. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer for {!to_string}. *)
