type fragment_info = {
  cover_query : Query.Bgp.t;
  union_terms : int;
  estimated_rows : float;
}

type t = {
  fragments : fragment_info list;
  join_algorithm : Profile.join_algorithm;
  estimated_result_rows : float;
}

let describe ex (j : Query.Jucq.t) =
  let stats = Executor.statistics ex in
  let fragments =
    List.map
      (fun (cq, ucq) ->
        {
          cover_query = cq;
          union_terms = Query.Ucq.cardinal ucq;
          estimated_rows = Store.Statistics.ucq_cardinality stats ucq;
        })
      j.Query.Jucq.fragments
    |> List.sort (fun a b -> Float.compare a.estimated_rows b.estimated_rows)
  in
  let final_estimate =
    (* the JUCQ's answers are the original query's answers: estimate on the
       union of fragment bodies *)
    let atoms =
      List.concat_map (fun f -> f.cover_query.Query.Bgp.body) fragments
      |> List.sort_uniq Query.Bgp.atom_compare
    in
    let head =
      List.filter_map
        (function Query.Bgp.Var v -> Some (Query.Bgp.Var v) | _ -> None)
        j.Query.Jucq.head
    in
    match head with
    | [] -> 1.0
    | _ -> Store.Statistics.cq_cardinality stats (Query.Bgp.make head atoms)
  in
  (* A zero direct estimate only means "no explicit matches": the fragments
     estimate their reformulations, so their minimum is the better bound. *)
  let fragment_min =
    List.fold_left (fun acc f -> Float.min acc f.estimated_rows) infinity
      fragments
  in
  {
    fragments;
    join_algorithm = (Executor.profile ex).Profile.fragment_join;
    estimated_result_rows =
      (if final_estimate > 0.0 then Float.min final_estimate fragment_min
       else fragment_min);
  }

let to_string t =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "Dedup (final, est. %.0f rows)\n" t.estimated_result_rows;
  addf "└─ Project head\n";
  let algo =
    match t.join_algorithm with
    | Profile.Hash_join -> "HashJoin"
    | Profile.Block_nested_loop -> "BlockNestedLoopJoin"
  in
  List.iteri
    (fun i f ->
      let connector = if i = 0 then "   └─" else Printf.sprintf "   %s─" algo in
      addf "%s Fragment %d: %s\n" connector (i + 1)
        (Query.Bgp.to_string f.cover_query);
      addf "        union of %d CQs, est. %.0f rows (materialized, dedup)\n"
        f.union_terms f.estimated_rows)
    t.fragments;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
