(** Materialized relations of dictionary codes: the intermediate and final
    results of the execution engine.  Row-major flattened storage. *)

type t

val create : cols:int -> t
(** An empty relation with [cols] columns ([cols >= 0]). *)

val cols : t -> int
(** Number of columns. *)

val rows : t -> int
(** Number of rows. *)

val append : t -> int array -> unit
(** Appends one row.  Raises [Invalid_argument] on an arity mismatch. *)

val get : t -> int -> int -> int
(** [get r i j] is column [j] of row [i]. *)

val row : t -> int -> int array
(** A fresh copy of row [i]. *)

val iter : (int array -> unit) -> t -> unit
(** Iterates rows; the array passed to the callback is fresh per row. *)

val project : t -> int array -> t
(** [project r cols] keeps the given column indexes, in order. *)

val dedup : t -> t
(** Hash-based duplicate elimination, preserving first occurrences. *)

val to_list : t -> int array list
(** All rows, in order. *)
