type t = { ncols : int; mutable data : int array; mutable nrows : int }

let create ~cols =
  if cols < 0 then invalid_arg "Relation.create: negative arity";
  { ncols = cols; data = Array.make (max 1 (16 * cols)) 0; nrows = 0 }

let cols r = r.ncols
let rows r = r.nrows

let ensure_capacity r =
  let needed = (r.nrows + 1) * r.ncols in
  if needed > Array.length r.data then begin
    let data = Array.make (max needed (2 * Array.length r.data)) 0 in
    Array.blit r.data 0 data 0 (r.nrows * r.ncols);
    r.data <- data
  end

let append r row =
  if Array.length row <> r.ncols then
    invalid_arg "Relation.append: arity mismatch";
  ensure_capacity r;
  Array.blit row 0 r.data (r.nrows * r.ncols) r.ncols;
  r.nrows <- r.nrows + 1

let get r i j =
  if i < 0 || i >= r.nrows || j < 0 || j >= r.ncols then
    invalid_arg "Relation.get: out of bounds";
  r.data.((i * r.ncols) + j)

let row r i =
  if i < 0 || i >= r.nrows then invalid_arg "Relation.row: out of bounds";
  Array.sub r.data (i * r.ncols) r.ncols

let iter f r =
  for i = 0 to r.nrows - 1 do
    f (Array.sub r.data (i * r.ncols) r.ncols)
  done

let project r columns =
  Array.iter
    (fun j ->
      if j < 0 || j >= r.ncols then invalid_arg "Relation.project: bad column")
    columns;
  let out = create ~cols:(Array.length columns) in
  let buf = Array.make (Array.length columns) 0 in
  for i = 0 to r.nrows - 1 do
    Array.iteri (fun k j -> buf.(k) <- r.data.((i * r.ncols) + j)) columns;
    append out buf
  done;
  out

let dedup r =
  let seen = Hashtbl.create (max 16 r.nrows) in
  let out = create ~cols:r.ncols in
  iter
    (fun row ->
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        append out row
      end)
    r;
  out

let to_list r =
  let acc = ref [] in
  for i = r.nrows - 1 downto 0 do
    acc := row r i :: !acc
  done;
  !acc
