open Query
module Es = Store.Encoded_store

(* Column reference of a pattern term, given one representative position
   per variable. *)
let build_var_map (q : Bgp.t) =
  let map = Hashtbl.create 8 in
  List.iteri
    (fun i (a : Bgp.atom) ->
      let note pos col =
        match pos with
        | Bgp.Var v ->
            if not (Hashtbl.mem map v) then
              Hashtbl.add map v (Printf.sprintf "t%d.%s" i col)
        | Bgp.Const _ -> ()
      in
      note a.s "s";
      note a.p "p";
      note a.o "o")
    q.body;
  map

let cq store (q : Bgp.t) =
  let q = Bgp.normalize q in
  let vmap = build_var_map q in
  let preds = ref [] in
  let add p = preds := p :: !preds in
  List.iteri
    (fun i (a : Bgp.atom) ->
      let pos col = function
        | Bgp.Const c -> (
            match Es.encode_term store c with
            | Some code -> add (Printf.sprintf "t%d.%s = %d" i col code)
            | None -> add "1 = 0")
        | Bgp.Var v ->
            let canonical = Hashtbl.find vmap v in
            let this = Printf.sprintf "t%d.%s" i col in
            if not (String.equal canonical this) then
              add (Printf.sprintf "%s = %s" this canonical)
      in
      pos "s" a.s;
      pos "p" a.p;
      pos "o" a.o)
    q.body;
  let select =
    match q.head with
    | [] -> "1"
    | head ->
        String.concat ", "
          (List.mapi
             (fun i t ->
               match t with
               | Bgp.Var v -> Printf.sprintf "%s AS c%d" (Hashtbl.find vmap v) i
               | Bgp.Const c -> (
                   match Es.encode_term store c with
                   | Some code -> Printf.sprintf "%d AS c%d" code i
                   | None -> Printf.sprintf "-1 AS c%d" i))
             head)
  in
  let from =
    String.concat ", "
      (List.mapi (fun i _ -> Printf.sprintf "Triples t%d" i) q.body)
  in
  let where =
    match List.rev !preds with
    | [] -> ""
    | ps -> " WHERE " ^ String.concat " AND " ps
  in
  Printf.sprintf "SELECT DISTINCT %s FROM %s%s" select from where

let ucq store u =
  String.concat "\nUNION\n" (List.map (cq store) (Ucq.disjuncts u))

let jucq store (j : Jucq.t) =
  let fragment i ((cqh : Bgp.t), u) =
    let cols = Bgp.head_vars cqh in
    Printf.sprintf "(%s) f%d(%s)" (ucq store u) i (String.concat ", " cols)
  in
  let subqueries = List.mapi fragment j.Jucq.fragments in
  (* Join predicates: equate every shared column across fragments. *)
  let frag_cols =
    List.map (fun ((cqh : Bgp.t), _) -> Bgp.head_vars cqh) j.Jucq.fragments
  in
  let preds = ref [] in
  List.iteri
    (fun i cols_i ->
      List.iteri
        (fun k cols_k ->
          if k > i then
            List.iter
              (fun v ->
                if List.mem v cols_k then
                  preds := Printf.sprintf "f%d.%s = f%d.%s" i v k v :: !preds)
              cols_i)
        frag_cols)
    frag_cols;
  let owner v =
    let rec go i = function
      | [] -> assert false
      | cols :: rest ->
          if List.mem v cols then Printf.sprintf "f%d.%s" i v
          else go (i + 1) rest
    in
    go 0 frag_cols
  in
  let select =
    String.concat ", "
      (List.mapi
         (fun i t ->
           match t with
           | Bgp.Var v -> Printf.sprintf "%s AS c%d" (owner v) i
           | Bgp.Const c -> (
               match Es.encode_term store c with
               | Some code -> Printf.sprintf "%d AS c%d" code i
               | None -> Printf.sprintf "-1 AS c%d" i))
         j.Jucq.head)
  in
  let where =
    match List.rev !preds with
    | [] -> ""
    | ps -> "\nWHERE " ^ String.concat " AND " ps
  in
  Printf.sprintf "SELECT DISTINCT %s\nFROM %s%s" select
    (String.concat ",\n     " subqueries)
    where
