open Query
module Es = Store.Encoded_store

type t = {
  store : Es.t;
  profile : Profile.t;
  stats : Store.Statistics.t;
  mutable ops : int;
}

let create ?(profile = Profile.postgres_like) store =
  { store; profile; stats = Store.Statistics.create store; ops = 0 }

let store t = t.store
let profile t = t.profile
let statistics t = t.stats
let last_operations t = t.ops

let fail t reason =
  raise (Profile.Engine_failure { engine = t.profile.Profile.name; reason })

let charge t n =
  t.ops <- t.ops + n;
  if t.ops > t.profile.Profile.max_operations then
    fail t (Profile.Operation_budget { limit = t.profile.Profile.max_operations })

let check_materialization t rel =
  let rows = Relation.rows rel in
  if rows > t.profile.Profile.max_materialized_rows then
    fail t
      (Profile.Materialization_overflow
         { rows; limit = t.profile.Profile.max_materialized_rows })

(* ---- CQ compilation ---- *)

type slot = V of int | K of int

type eatom = { es : slot; ep : slot; eo : slot }

type ecq = {
  nvars : int;
  head : slot array;
  atoms : eatom array;
  prop_codes : int option array;  (* constant property code per atom, if any *)
}

exception Unsatisfiable  (* a query constant absent from the dictionary *)

let compile t (q : Bgp.t) : ecq =
  let q = Bgp.normalize q in
  let vars = Bgp.vars q in
  let index v =
    let rec go i = function
      | [] -> assert false
      | x :: _ when String.equal x v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 vars
  in
  let slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> (
        match Es.encode_term t.store c with
        | Some code -> K code
        | None -> raise Unsatisfiable)
  in
  (* Head constants are output values, not selections: a schema class that
     never occurs in the data (e.g. an instantiated [q(x, Person)] head)
     must still be producible, so it is encoded on demand. *)
  let head_slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> K (Rdf.Dictionary.encode (Es.dictionary t.store) c)
  in
  let atoms =
    Array.of_list
      (List.map
         (fun (a : Bgp.atom) -> { es = slot a.s; ep = slot a.p; eo = slot a.o })
         q.body)
  in
  let prop_codes =
    Array.map (fun a -> match a.ep with K c -> Some c | V _ -> None) atoms
  in
  {
    nvars = List.length vars;
    head = Array.of_list (List.map head_slot q.head);
    atoms;
    prop_codes;
  }

(* ---- atom ordering (greedy selectivity) ---- *)

let slot_bound bindings = function
  | K c -> Some c
  | V v -> if bindings.(v) >= 0 then Some bindings.(v) else None

(* Planning-time estimate of an atom's output given which variables are
   already bound: the exact count for the constant positions, discounted by
   per-property NDV for each bound variable position. *)
let plan_estimate t (cq : ecq) i (bound : bool array) =
  let a = cq.atoms.(i) in
  let const_only = function K c -> Some c | V _ -> None in
  let base =
    float_of_int
      (Es.count t.store
         {
           Es.ps = const_only a.es;
           pp = const_only a.ep;
           po = const_only a.eo;
         })
  in
  let bound_var = function V v -> bound.(v) | K _ -> false in
  let discount pos =
    if not (bound_var (match pos with `S -> a.es | `O -> a.eo)) then 1.0
    else
      match cq.prop_codes.(i) with
      | Some p ->
          float_of_int
            (Store.Statistics.ndv t.stats ~prop:p
               (match pos with `S -> `Subject | `O -> `Object))
      | None -> 8.0
  in
  let prop_discount = if bound_var a.ep then 16.0 else 1.0 in
  base /. (discount `S *. discount `O *. prop_discount)

let order_atoms t (cq : ecq) =
  let n = Array.length cq.atoms in
  let used = Array.make n false in
  let bound = Array.make cq.nvars false in
  let bind_atom i =
    let mark = function V v -> bound.(v) <- true | K _ -> () in
    mark cq.atoms.(i).es;
    mark cq.atoms.(i).ep;
    mark cq.atoms.(i).eo
  in
  let connected i =
    let has = function V v -> bound.(v) | K _ -> false in
    has cq.atoms.(i).es || has cq.atoms.(i).ep || has cq.atoms.(i).eo
  in
  let order = Array.make n 0 in
  for step = 0 to n - 1 do
    let best = ref (-1) in
    let best_score = ref infinity in
    for i = 0 to n - 1 do
      if not used.(i) then begin
        (* Prefer atoms connected to the bound prefix (avoid products). *)
        let penalty = if step > 0 && not (connected i) then 1e12 else 1.0 in
        let score = plan_estimate t cq i bound *. penalty in
        if score < !best_score then begin
          best_score := score;
          best := i
        end
      end
    done;
    order.(step) <- !best;
    used.(!best) <- true;
    bind_atom !best
  done;
  order

(* ---- CQ execution: index nested loops ---- *)

let exec_cq t (cq : ecq) ~(emit : int array -> unit) =
  let bindings = Array.make (max 1 cq.nvars) (-1) in
  let order = order_atoms t cq in
  let head_buf = Array.make (Array.length cq.head) 0 in
  let rec step k =
    if k = Array.length order then begin
      Array.iteri
        (fun j s ->
          head_buf.(j) <-
            (match s with K c -> c | V v -> bindings.(v)))
        cq.head;
      charge t 1;
      emit head_buf
    end
    else begin
      let a = cq.atoms.(order.(k)) in
      let pat =
        {
          Es.ps = slot_bound bindings a.es;
          pp = slot_bound bindings a.ep;
          po = slot_bound bindings a.eo;
        }
      in
      let ids = Es.matching t.store pat in
      let n = Store.Intvec.length ids in
      charge t (max 1 (n / 64));
      for idx = 0 to n - 1 do
        let id = Store.Intvec.get ids idx in
        charge t 1;
        let s = Es.subject t.store id
        and p = Es.property t.store id
        and o = Es.obj t.store id in
        (* Unify the unbound variable positions; remember what to undo. *)
        let undo = ref [] in
        let unify slot value =
          match slot with
          | K c -> c = value
          | V v ->
              if bindings.(v) = -1 then begin
                bindings.(v) <- value;
                undo := v :: !undo;
                true
              end
              else bindings.(v) = value
        in
        if unify a.es s && unify a.ep p && unify a.eo o then step (k + 1);
        List.iter (fun v -> bindings.(v) <- -1) !undo
      done
    end
  in
  step 0

let eval_cq_into t (q : Bgp.t) (out : Relation.t) =
  match compile t q with
  | exception Unsatisfiable -> ()
  | cq -> exec_cq t cq ~emit:(fun row -> Relation.append out row)

let eval_cq t (q : Bgp.t) =
  t.ops <- 0;
  let out = Relation.create ~cols:(List.length q.Bgp.head) in
  eval_cq_into t q out;
  let result = Relation.dedup out in
  charge t (Relation.rows out);
  result

(* ---- UCQ execution ---- *)

let eval_ucq_fragment t (u : Ucq.t) =
  let terms = Ucq.cardinal u in
  if terms > t.profile.Profile.max_union_terms then
    fail t
      (Profile.Union_capacity
         { terms; limit = t.profile.Profile.max_union_terms });
  let out = Relation.create ~cols:(Ucq.arity u) in
  List.iter
    (fun cq ->
      eval_cq_into t cq out;
      check_materialization t out)
    (Ucq.disjuncts u);
  charge t (Relation.rows out);
  let result = Relation.dedup out in
  check_materialization t result;
  result

let eval_ucq t u =
  t.ops <- 0;
  eval_ucq_fragment t u

(* ---- joins ---- *)

type named_rel = { columns : string list; rel : Relation.t }

let positions columns names =
  List.map
    (fun v ->
      let rec go i = function
        | [] -> assert false
        | c :: _ when String.equal c v -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 columns)
    names

let hash_join t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = positions a.columns shared
  and key_b = positions b.columns shared
  and pay_b = positions b.columns b_only in
  let tbl = Hashtbl.create (max 16 (Relation.rows b.rel)) in
  Relation.iter
    (fun row ->
      charge t 1;
      let k = List.map (fun j -> row.(j)) key_b in
      let payload = List.map (fun j -> row.(j)) pay_b in
      Hashtbl.add tbl k payload)
    b.rel;
  let out = Relation.create ~cols:(List.length a.columns + List.length b_only) in
  Relation.iter
    (fun row ->
      charge t 1;
      let k = List.map (fun j -> row.(j)) key_a in
      List.iter
        (fun payload ->
          charge t 1;
          Relation.append out (Array.of_list (Array.to_list row @ payload)))
        (Hashtbl.find_all tbl k))
    a.rel;
  check_materialization t out;
  { columns = a.columns @ b_only; rel = out }

let block_nested_loop_join t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = Array.of_list (positions a.columns shared)
  and key_b = Array.of_list (positions b.columns shared)
  and pay_b = Array.of_list (positions b.columns b_only) in
  let na_cols = List.length a.columns in
  let out = Relation.create ~cols:(na_cols + Array.length pay_b) in
  let nb = Relation.rows b.rel in
  (* materialize the inner relation as plain rows once: the quadratic scan
     is the point of this profile, the per-cell bounds checks are not *)
  let b_rows = Array.init nb (Relation.row b.rel) in
  let nkeys = Array.length key_a in
  let buf = Array.make (na_cols + Array.length pay_b) 0 in
  Relation.iter
    (fun row_a ->
      charge t nb;
      for i = 0 to nb - 1 do
        let row_b = b_rows.(i) in
        let rec matches k =
          k >= nkeys
          || (row_a.(key_a.(k)) = row_b.(key_b.(k)) && matches (k + 1))
        in
        if matches 0 then begin
          Array.blit row_a 0 buf 0 na_cols;
          Array.iteri (fun k j -> buf.(na_cols + k) <- row_b.(j)) pay_b;
          Relation.append out buf
        end
      done)
    a.rel;
  check_materialization t out;
  { columns = a.columns @ b_only; rel = out }

let join t a b =
  match t.profile.Profile.fragment_join with
  | Profile.Hash_join -> hash_join t a b
  | Profile.Block_nested_loop -> block_nested_loop_join t a b

(* ---- JUCQ execution ---- *)

let eval_jucq t (j : Jucq.t) =
  t.ops <- 0;
  (* Pre-check the engine's union capacity over all fragments: an RDBMS
     parses the whole statement before executing any of it. *)
  List.iter
    (fun (_, u) ->
      let terms = Ucq.cardinal u in
      if terms > t.profile.Profile.max_union_terms then
        fail t
          (Profile.Union_capacity
             { terms; limit = t.profile.Profile.max_union_terms }))
    j.Jucq.fragments;
  let fragments =
    List.map
      (fun ((cq : Bgp.t), u) ->
        { columns = Bgp.head_vars cq; rel = eval_ucq_fragment t u })
      j.Jucq.fragments
  in
  (* Greedy join order: start from the smallest fragment, then repeatedly
     join the smallest fragment sharing a column with the accumulated
     result — what an RDBMS optimizer does to avoid cartesian products.
     Only when no remaining fragment connects (which a valid cover's join
     graph rules out except through intermediate disconnections) is a true
     product taken. *)
  let joined =
    match
      List.sort
        (fun a b -> Int.compare (Relation.rows a.rel) (Relation.rows b.rel))
        fragments
    with
    | [] -> invalid_arg "Executor.eval_jucq: no fragments"
    | first :: rest ->
        let connected acc f =
          List.exists (fun c -> List.mem c acc.columns) f.columns
        in
        let rec fold acc remaining =
          match remaining with
          | [] -> acc
          | _ ->
              let candidates =
                List.filter (connected acc) remaining
              in
              let pick =
                match candidates with
                | [] -> List.hd remaining
                | c :: cs ->
                    List.fold_left
                      (fun best x ->
                        if Relation.rows x.rel < Relation.rows best.rel then x
                        else best)
                      c cs
              in
              let remaining' = List.filter (fun f -> f != pick) remaining in
              fold (join t acc pick) remaining'
        in
        fold first rest
  in
  (* Project the original head, then deduplicate. *)
  let head_cols =
    List.map
      (function
        | Bgp.Var v -> `Col (List.hd (positions joined.columns [ v ]))
        | Bgp.Const c -> (
            match Es.encode_term t.store c with
            | Some code -> `Const code
            | None ->
                (* Constants in reformulated heads come from the schema, so
                   they are always in the dictionary; encode defensively. *)
                `Const (Rdf.Dictionary.encode (Es.dictionary t.store) c)))
      j.Jucq.head
  in
  let out = Relation.create ~cols:(List.length head_cols) in
  let buf = Array.make (List.length head_cols) 0 in
  Relation.iter
    (fun row ->
      charge t 1;
      List.iteri
        (fun i c ->
          buf.(i) <- (match c with `Col j' -> row.(j') | `Const code -> code))
        head_cols;
      Relation.append out buf)
    joined.rel;
  charge t (Relation.rows out);
  let result = Relation.dedup out in
  check_materialization t result;
  result

(* ---- decoding ---- *)

let decode t rel =
  let d = Rdf.Dictionary.decode (Es.dictionary t.store) in
  Relation.to_list rel
  |> List.map (fun row -> List.map d (Array.to_list row))
  |> List.sort_uniq (List.compare Rdf.Term.compare)

(* ---- engine-internal cost estimation (the EXPLAIN analogue) ---- *)

let explain_cost t (j : Jucq.t) =
  let p = t.profile in
  let cq_cost (cq : Bgp.t) =
    (* Bottom-up: every atom is an index probe per intermediate row. *)
    let card = Store.Statistics.cq_cardinality t.stats cq in
    let natoms = float_of_int (List.length cq.Bgp.body) in
    (0.05 *. natoms) +. (card *. p.Profile.c_t *. natoms)
  in
  let frag_cost (_, u) =
    let disjuncts = Ucq.disjuncts u in
    let cost = List.fold_left (fun acc cq -> acc +. cq_cost cq) 0.0 disjuncts in
    let card = Store.Statistics.ucq_cardinality t.stats u in
    cost +. (card *. (p.Profile.c_l +. p.Profile.c_m))
  in
  let frag_cards =
    List.map (fun (_, u) -> Store.Statistics.ucq_cardinality t.stats u)
      j.Jucq.fragments
  in
  let join_cost =
    match t.profile.Profile.fragment_join with
    | Profile.Hash_join ->
        List.fold_left ( +. ) 0.0 frag_cards *. p.Profile.c_j
    | Profile.Block_nested_loop ->
        (* quadratic in the two largest inputs, pairwise *)
        let rec pairs = function
          | a :: (b :: _ as rest) -> (a *. b *. p.Profile.c_j /. 64.0) +. pairs rest
          | [ _ ] | [] -> 0.0
        in
        pairs (List.sort compare frag_cards)
  in
  p.Profile.c_db
  +. List.fold_left (fun acc f -> acc +. frag_cost f) 0.0 j.Jucq.fragments
  +. join_cost
