(** ECov (Section 4.2): the exhaustive query-cover algorithm.

    ECov enumerates all valid covers of the query, estimates the cost of
    the corresponding cover-based reformulations, and returns one with the
    lowest estimated cost — the "golden standard" the greedy GCov is
    compared against.  On large queries exhaustive search is unfeasible
    (DBLP Q10's 10-atom space, Figure 8); the budget makes ECov stop and
    report incompleteness instead. *)

type result = {
  cover : Query.Jucq.cover;  (** a cover with the lowest estimated cost *)
  cost : float;              (** its estimated cost *)
  explored : int;            (** covers whose cost was estimated *)
  complete : bool;           (** false when the enumeration budget tripped *)
  elapsed_ms : float;        (** algorithm running time *)
}

val search : ?budget:Cover_space.budget -> Objective.t -> result
(** Exhaustive search over the cover space of the objective's query. *)
