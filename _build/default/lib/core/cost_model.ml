open Query

type coefficients = {
  c_db : float;
  c_t : float;
  c_j : float;
  c_m : float;
  c_l : float;
  c_k : float;
  memory_rows : float;
}

type t = {
  stats : Store.Statistics.t;
  coeff : coefficients;
}

let coefficients_of_profile (p : Engine.Profile.t) =
  {
    c_db = p.Engine.Profile.c_db;
    c_t = p.Engine.Profile.c_t;
    c_j = p.Engine.Profile.c_j;
    c_m = p.Engine.Profile.c_m;
    c_l = p.Engine.Profile.c_l;
    c_k = p.Engine.Profile.c_l *. 1.5;
    memory_rows = 1_000_000.0;
  }

let create ?coefficients stats =
  let coeff =
    match coefficients with
    | Some c -> c
    | None -> coefficients_of_profile Engine.Profile.postgres_like
  in
  { stats; coeff }

let coefficients t = t.coeff

(* ---- calibration ---- *)

(* Calibration probes: synthetic statements whose dominant cost isolates
   one coefficient.  Times are CPU seconds converted to the same unit as
   the defaults (milliseconds-ish); when a probe is degenerate (empty
   store), the profile default is kept. *)
let calibrate (ex : Engine.Executor.t) =
  let profile = Engine.Executor.profile ex in
  let defaults = coefficients_of_profile profile in
  let store = Engine.Executor.store ex in
  let n = Store.Encoded_store.size store in
  if n < 1000 then defaults
  else begin
    let time f =
      let t0 = Sys.time () in
      let cells = f () in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      (dt, float_of_int (max 1 cells))
    in
    (* Probe 1: full scans through single-atom queries per property gives
       (c_t + c_l) per tuple. *)
    let dict = Store.Encoded_store.dictionary store in
    let schema = Store.Encoded_store.schema store in
    let props = Rdf.Term.Set.elements (Rdf.Schema.properties schema) in
    let scan_probe () =
      List.fold_left
        (fun acc p ->
          match Rdf.Dictionary.find dict p with
          | None -> acc
          | Some _ ->
              let q =
                Bgp.make [ Bgp.Var "s"; Bgp.Var "o" ]
                  [ Bgp.atom (Bgp.Var "s") (Bgp.Const p) (Bgp.Var "o") ]
              in
              acc + Engine.Relation.rows (Engine.Executor.eval_cq ex q))
        0 props
    in
    let scan_ms, scan_rows = time scan_probe in
    let per_tuple = scan_ms /. scan_rows in
    (* Probe 2: a two-atom self-join per property isolates c_j on top of
       the scan cost. *)
    let join_probe () =
      List.fold_left
        (fun acc p ->
          match Rdf.Dictionary.find dict p with
          | None -> acc
          | Some _ ->
              let q =
                Bgp.make [ Bgp.Var "s" ]
                  [
                    Bgp.atom (Bgp.Var "s") (Bgp.Const p) (Bgp.Var "o");
                    Bgp.atom (Bgp.Var "o") (Bgp.Const p) (Bgp.Var "o2");
                  ]
              in
              acc + Engine.Relation.rows (Engine.Executor.eval_cq ex q))
        0 props
    in
    let join_ms, join_rows = time join_probe in
    let join_per_tuple = join_ms /. join_rows in
    let c_t = max 1e-7 (per_tuple /. 2.0) in
    let c_l = c_t in
    let c_j = max 1e-7 (join_per_tuple -. per_tuple) in
    {
      defaults with
      c_t;
      c_l;
      c_k = c_l *. 1.5;
      c_j = (if c_j > 0.0 then c_j else defaults.c_j);
      c_m = max defaults.c_m (c_t *. 2.0);
    }
  end

(* ---- the formulas ---- *)

let cq_scan_volume t (cq : Bgp.t) =
  List.fold_left
    (fun acc a -> acc +. float_of_int (Store.Statistics.atom_count t.stats a))
    0.0 cq.body

(* No memoization: each per-triple count is an O(1) index lookup, so the
   fold is linear in the union size — cheaper than any content-based cache
   key for the 10^5-term unions this gets called on. *)
let scan_volume t u =
  List.fold_left (fun acc cq -> acc +. cq_scan_volume t cq) 0.0
    (Ucq.disjuncts u)

let ucq_result_estimate t u = Store.Statistics.ucq_cardinality t.stats u

let unique_cost t rows =
  if rows <= 0.0 then 0.0
  else if rows <= t.coeff.memory_rows then t.coeff.c_l *. rows
  else t.coeff.c_k *. rows *. (log rows /. log 2.0)

(* The JUCQ's final result equals the original query's answer set, whose
   cardinality we estimate from the union of all fragment bodies (the
   fragments jointly contain exactly the original atoms). *)
let final_result_estimate t (j : Jucq.t) =
  let atoms =
    List.concat_map (fun ((cq : Bgp.t), _) -> cq.Bgp.body) j.Jucq.fragments
  in
  let atoms = List.sort_uniq Bgp.atom_compare atoms in
  let head_vars =
    List.filter_map
      (function Bgp.Var v -> Some (Bgp.Var v) | Bgp.Const _ -> None)
      j.Jucq.head
  in
  match head_vars with
  | [] -> 1.0
  | _ -> Store.Statistics.cq_cardinality t.stats (Bgp.make head_vars atoms)

let jucq_cost t (j : Jucq.t) =
  let volumes = List.map (fun (_, u) -> scan_volume t u) j.Jucq.fragments in
  let result_estimates =
    List.map (fun (_, u) -> ucq_result_estimate t u) j.Jucq.fragments
  in
  let eval_cost =
    List.fold_left (fun acc v -> acc +. ((t.coeff.c_t +. t.coeff.c_j) *. v))
      0.0 volumes
  in
  let dedup_fragments =
    List.fold_left (fun acc est -> acc +. unique_cost t est) 0.0
      result_estimates
  in
  let m = List.length j.Jucq.fragments in
  let join_cost =
    if m <= 1 then 0.0
    else t.coeff.c_j *. List.fold_left ( +. ) 0.0 volumes
  in
  let mat_cost =
    if m <= 1 then 0.0
    else begin
      (* All fragments are materialized except the largest-result one,
         which is pipelined. *)
      let largest = List.fold_left max neg_infinity result_estimates in
      let paired = List.combine volumes result_estimates in
      let skipped = ref false in
      List.fold_left
        (fun acc (v, est) ->
          if (not !skipped) && est = largest then begin
            skipped := true;
            acc
          end
          else acc +. (t.coeff.c_m *. v))
        0.0 paired
    end
  in
  let final_dedup = unique_cost t (final_result_estimate t j) in
  t.coeff.c_db +. eval_cost +. dedup_fragments +. join_cost +. mat_cost
  +. final_dedup

let ucq_cost t u =
  let v = scan_volume t u in
  t.coeff.c_db
  +. ((t.coeff.c_t +. t.coeff.c_j) *. v)
  +. unique_cost t (ucq_result_estimate t u)
