(** The cost model of Section 4.1: estimating the cost of evaluating a
    JUCQ reformulation [q_1^UCQ ⋈ … ⋈ q_m^UCQ] through an RDBMS.

    {v
    c(q^JUCQ) = c_db                                   (connection overhead)
              + Σ_i c_eval(q_i^UCQ)                    (evaluate subqueries)
              + Σ_i c_unique(q_i^UCQ)                  (dedup subquery results)
              + c_join(q_i^UCQ, 1 ≤ i ≤ m)             (join subquery results)
              + c_mat(q_i^UCQ, i ≠ k)                  (materialize all but the
                                                        largest, which pipelines)
              + c_unique(q^JUCQ)                       (dedup the final result)
    v}

    with, following equations (1)-(4) of the paper:
    - [c_eval(q^UCQ) = (c_t + c_j) · Σ_{cq ∈ q} Σ_{t_i ∈ cq} |cq_(t_i)|]:
      scan and join effort proportional to the per-triple match counts;
    - [c_join = c_j · Σ_i Σ_cq Σ_t |cq_t|]: join effort linear in total
      input size;
    - [c_mat = c_m · Σ_{i ≠ k} Σ_cq Σ_t |cq_t|]: materialization of every
      subquery except the largest-result one;
    - [c_unique(q) = c_l · |q|] for in-memory hashing, degrading to
      [c_k · |q| · log |q|] when the result exceeds memory (disk sort).

    Per-triple counts [|cq_t|] are exact (index lookups); result
    cardinalities [|q|] are estimated by {!Store.Statistics}.  The
    system-dependent constants are either taken from the engine profile or
    learned by {!calibrate}, which runs simple calibration queries on the
    engine being modeled, as Section 5.1 describes. *)

type coefficients = {
  c_db : float;  (** fixed connection/statement overhead *)
  c_t : float;   (** per-tuple scan cost *)
  c_j : float;   (** per-tuple join cost *)
  c_m : float;   (** per-tuple materialization cost *)
  c_l : float;   (** per-tuple in-memory duplicate-elimination cost *)
  c_k : float;   (** per-tuple·log disk-sort duplicate-elimination cost *)
  memory_rows : float;  (** result size beyond which dedup spills to disk *)
}

type t
(** A cost model bound to statistics and calibrated coefficients. *)

val coefficients_of_profile : Engine.Profile.t -> coefficients
(** Default coefficients carried by an engine profile. *)

val create :
  ?coefficients:coefficients -> Store.Statistics.t -> t
(** A model over the given statistics.  Default coefficients:
    {!Engine.Profile.postgres_like}'s. *)

val calibrate : Engine.Executor.t -> coefficients
(** Learns coefficients by timing simple calibration statements (full
    property scans, two-way joins, duplicate-heavy unions) on the engine.
    Falls back to the profile defaults for effects the probes cannot
    separate. *)

val coefficients : t -> coefficients
(** The model's coefficients. *)

val scan_volume : t -> Query.Ucq.t -> float
(** [Σ_{cq} Σ_{t_i} |cq_(t_i)|]: the total per-triple match volume of a
    UCQ — the quantity driving equations (2)-(4). *)

val ucq_result_estimate : t -> Query.Ucq.t -> float
(** Estimated result cardinality of a UCQ (for dedup terms). *)

val unique_cost : t -> float -> float
(** [c_unique] applied to an estimated result cardinality. *)

val jucq_cost : t -> Query.Jucq.t -> float
(** The full formula above for a cover-based JUCQ reformulation. *)

val ucq_cost : t -> Query.Ucq.t -> float
(** Cost of the plain single-fragment UCQ evaluation (the [m = 1] case:
    no fragment join, no materialization). *)
