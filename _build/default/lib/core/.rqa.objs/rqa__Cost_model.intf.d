lib/core/cost_model.mli: Engine Query Store
