lib/core/objective.ml: Bgp Hashtbl Jucq List Query Reformulation String Ucq
