lib/core/gcov.ml: Array Bgp Float Fun Hashtbl Int Jucq List Objective Query Set String Sys
