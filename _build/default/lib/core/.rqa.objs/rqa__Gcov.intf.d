lib/core/gcov.mli: Objective Query
