lib/core/objective.mli: Query
