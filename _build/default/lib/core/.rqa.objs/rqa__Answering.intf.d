lib/core/answering.mli: Cost_model Cover_space Engine Objective Query Rdf Reformulation Store
