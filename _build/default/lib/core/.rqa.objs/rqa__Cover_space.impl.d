lib/core/cover_space.ml: Array Bgp Hashtbl Jucq List Query Result String Sys
