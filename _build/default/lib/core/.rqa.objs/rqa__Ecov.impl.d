lib/core/ecov.ml: Cover_space Jucq List Objective Query Sys
