lib/core/cost_model.ml: Bgp Engine Jucq List Query Rdf Store Sys Ucq
