lib/core/cover_space.mli: Query
