lib/core/answering.ml: Bgp Cost_model Cover_space Ecov Engine Gcov Jucq Lazy List Objective Query Reformulation Store Unix
