lib/core/ecov.mli: Cover_space Objective Query
