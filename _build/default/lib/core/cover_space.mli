(** The space of BGP query covers (Section 3).

    The cover-based reformulation space is bounded above by the number of
    minimal covers of an [n]-set, which "grows rapidly": 1 for n = 1, 49
    for n = 4, 462 for n = 5, 6424 for n = 6 (OEIS A046165).  In practice
    the space is smaller because every fragment must join with another and
    (as this library additionally requires) be internally connected, but
    exhaustive exploration is still infeasible on large queries — DBLP's
    10-atom Q10 times out in the paper's experiments (Figure 8), and ECov
    accepts a budget for exactly that reason. *)

val minimal_cover_counts : int -> int
(** [minimal_cover_counts n] is the number of minimal covers of an [n]-set
    (the paper's upper bound on the space size), for [1 <= n <= 8]. *)

val connected_fragments : Query.Bgp.t -> Query.Jucq.fragment list
(** All internally connected, non-empty subsets of the query's atoms —
    the candidate fragments. *)

type budget = {
  max_covers : int;    (** stop after enumerating this many covers *)
  max_millis : float;  (** wall-clock budget in milliseconds *)
}

val default_budget : budget
(** 200,000 covers / 30 s: ample for the paper's query sizes, finite on
    pathological ones. *)

type enumeration = {
  covers : Query.Jucq.cover list;  (** valid covers, in discovery order *)
  complete : bool;                 (** false if a budget tripped *)
}

val enumerate : ?budget:budget -> Query.Bgp.t -> enumeration
(** Enumerates the valid covers of a query: minimal covers by internally
    connected fragments, pairwise joinable (every cover satisfies
    {!Query.Jucq.check_cover}). *)
