(** GCov (Section 4.3, Algorithm 1): the greedy, anytime query-cover
    algorithm.

    GCov starts from the all-singletons cover [C0 = {{t1},…,{tn}}] and
    explores {e moves}: adding to one fragment an extra triple connected to
    it by a join variable.  A move can reduce the estimated cost by (i)
    making a fragment more selective and/or (ii) rendering other fragments
    redundant — after each addition, fragments are examined in decreasing
    cost order and coverage-redundant ones are removed.  Candidate moves
    are kept sorted by the estimated cost of the resulting cover; the best
    cover seen so far is returned.

    The benefits GCov hunts for (Section 4.3): avoiding the blow-up of
    reformulating many multi-reformulation triples together, and avoiding
    fragments with very large results that are costly to materialize and
    join — achieved by placing highly selective, few-reformulation triples
    in several cover fragments.  This is orthogonal to join ordering, which
    the underlying engine still performs per fragment. *)

type result = {
  cover : Query.Jucq.cover;  (** the best cover found *)
  cost : float;              (** its estimated cost *)
  explored : int;            (** covers whose cost was estimated *)
  moves_applied : int;       (** moves popped from the queue *)
  elapsed_ms : float;        (** algorithm running time *)
}

type move_ordering =
  | Cost_sorted  (** Algorithm 1: pop the smallest-estimated-cost move *)
  | Fifo         (** ablation: plain breadth-first move order *)

type stop_condition =
  | Exhausted
      (** default: stop when the move queue empties (or [max_moves]) *)
  | Improvement_ratio of float
      (** stop once the best cost has dropped below [ratio × cost(C0)] —
          the "diminished by a certain ratio" policy of Section 4.3 *)
  | Timeout_ms of float
      (** stop after the given search time — the anytime policy *)

val search :
  ?max_moves:int ->
  ?ordering:move_ordering ->
  ?stop:stop_condition ->
  Objective.t ->
  result
(** Runs Algorithm 1.  [max_moves] bounds the moves popped (anytime
    behaviour; default 10,000); [ordering] (default {!Cost_sorted}) exists
    for the move-ordering ablation benchmark; [stop] (default {!Exhausted})
    selects one of the early-stop policies Section 4.3 suggests.  The
    query must be connected (the all-singletons initial cover requires
    every atom to join another); single-atom queries return the trivial
    cover immediately. *)
