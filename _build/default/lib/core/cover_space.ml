open Query

(* OEIS A046165: number of minimal covers of an n-set. *)
let minimal_cover_table =
  [| 1; 2; 8; 49; 462; 6424; 129425; 4113682 |]

let minimal_cover_counts n =
  if n < 1 || n > Array.length minimal_cover_table then
    invalid_arg "Cover_space.minimal_cover_counts: 1 <= n <= 8"
  else minimal_cover_table.(n - 1)

let connected_fragments (q : Bgp.t) =
  let n = List.length q.body in
  let atoms = Array.of_list q.body in
  let rec subsets i =
    if i = n then [ [] ]
    else
      let rest = subsets (i + 1) in
      rest @ List.map (fun s -> i :: s) rest
  in
  subsets 0
  |> List.filter (fun f ->
         f <> []
         && Bgp.is_connected (List.map (fun i -> atoms.(i)) f))

type budget = { max_covers : int; max_millis : float }

let default_budget = { max_covers = 200_000; max_millis = 30_000.0 }

type enumeration = { covers : Jucq.cover list; complete : bool }

let cover_key (c : Jucq.cover) =
  let frag f = String.concat "," (List.map string_of_int f) in
  String.concat ";" (List.sort String.compare (List.map frag c))

(* A cover is minimal when every fragment covers at least one atom no other
   fragment covers. *)
let minimal (c : Jucq.cover) =
  List.for_all
    (fun f ->
      List.exists
        (fun a ->
          not (List.exists (fun g -> g != f && List.mem a g) c))
        f)
    c

let enumerate ?(budget = default_budget) (q : Bgp.t) =
  let n = List.length q.body in
  let fragments = Array.of_list (connected_fragments q) in
  let start = Sys.time () in
  let out = ref [] in
  let seen = Hashtbl.create 1024 in
  let count = ref 0 in
  let truncated = ref false
  and deadline_hit () =
    (Sys.time () -. start) *. 1000.0 > budget.max_millis
  in
  let exception Stop in
  let covered = Array.make n false in
  let rec next_uncovered i =
    if i >= n then None else if covered.(i) then next_uncovered (i + 1) else Some i
  in
  let rec search chosen =
    if !count >= budget.max_covers || deadline_hit () then begin
      truncated := true;
      raise Stop
    end;
    match next_uncovered 0 with
    | None ->
        let cover = List.rev chosen in
        let key = cover_key cover in
        if
          (not (Hashtbl.mem seen key))
          && minimal cover
          && Result.is_ok (Jucq.check_cover q cover)
        then begin
          Hashtbl.add seen key ();
          incr count;
          out := cover :: !out
        end
    | Some a ->
        Array.iter
          (fun f ->
            if List.mem a f then begin
              let included =
                List.exists
                  (fun g ->
                    List.for_all (fun i -> List.mem i g) f
                    || List.for_all (fun i -> List.mem i f) g)
                  chosen
              in
              if not included then begin
                let newly = List.filter (fun i -> not covered.(i)) f in
                List.iter (fun i -> covered.(i) <- true) newly;
                search (f :: chosen);
                List.iter (fun i -> covered.(i) <- false) newly
              end
            end)
          fragments
  in
  (try search [] with Stop -> ());
  { covers = List.rev !out; complete = not !truncated }
