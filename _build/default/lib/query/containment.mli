(** Conjunctive-query containment and UCQ minimization.

    A CQ [q1] is contained in [q2] ([q1 ⊑ q2]) iff every database gives
    [q1(db) ⊆ q2(db)]; by the classical homomorphism theorem this holds
    iff there is a {e containment mapping} from [q2] to [q1]: a
    substitution of [q2]'s variables that maps every body atom of [q2]
    onto a body atom of [q1] and maps [q2]'s head onto [q1]'s head.

    Reformulation algorithms — and the paper — keep their unions
    containment-redundant (Example 4's term (5) is contained in (4)):
    evaluating redundant disjuncts is wasted work a smarter engine could
    skip, which is exactly what {!minimize} measures in the ablation
    benchmarks.  Deciding containment is NP-complete in the query size;
    queries here are small, and the search backtracks over at most
    [|q1.body|^|q2.body|] candidate mappings. *)

val homomorphism :
  from:Bgp.t -> into:Bgp.t -> (string * Bgp.pattern_term) list option
(** [homomorphism ~from:q2 ~into:q1] is a containment mapping from [q2] to
    [q1] if one exists: a substitution on [q2]'s variables such that every
    atom of [q2] maps to an atom of [q1] and the head of [q2] maps to the
    head of [q1] position-wise.  Requires equal head arities. *)

val contained : Bgp.t -> Bgp.t -> bool
(** [contained q1 q2] is [q1 ⊑ q2]. *)

val equivalent : Bgp.t -> Bgp.t -> bool
(** Mutual containment. *)

val minimize : Ucq.t -> Ucq.t
(** Removes every disjunct contained in another disjunct (keeping one
    representative of mutually-equivalent groups).  The result evaluates
    to the same answers on every database, with fewer union terms. *)
