lib/query/jucq.ml: Bgp Format Hashtbl Int List Rdf Result String Ucq
