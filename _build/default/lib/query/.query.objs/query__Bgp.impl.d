lib/query/bgp.ml: Format Hashtbl List Option Printf Rdf String
