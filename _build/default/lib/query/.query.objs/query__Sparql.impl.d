lib/query/sparql.ml: Bgp List Printf Rdf String
