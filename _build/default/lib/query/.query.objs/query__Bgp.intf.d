lib/query/bgp.mli: Format Rdf
