lib/query/sparql.mli: Bgp
