lib/query/jucq.mli: Bgp Format Rdf Ucq
