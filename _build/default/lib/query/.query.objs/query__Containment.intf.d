lib/query/containment.mli: Bgp Ucq
