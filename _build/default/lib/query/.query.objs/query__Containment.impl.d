lib/query/containment.ml: Array Bgp List Option Rdf Ucq
