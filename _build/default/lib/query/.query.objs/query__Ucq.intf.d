lib/query/ucq.mli: Bgp Format Rdf
