lib/query/ucq.ml: Bgp Format List Rdf String
