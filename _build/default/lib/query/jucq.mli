(** Joins of unions of conjunctive queries (JUCQs) and BGP query covers
    (Section 3).

    A cover of a BGP query [q(x̄) :- t1,…,tn] is a set of possibly
    overlapping {e fragments} (non-empty subsets of the body atoms) such
    that (i) every atom is covered, (ii) no fragment is included in
    another, and (iii) if there are several fragments, each shares a
    variable with at least one other (Definition 3.3).  Each fragment [f]
    induces a {e cover query} [q_f] whose head carries the distinguished
    variables of [q] occurring in [f] plus the variables [f] shares with
    other fragments (Definition 3.4).

    Theorem 3.1: joining UCQ reformulations of the cover queries yields a
    JUCQ reformulation of [q] — the search space explored by ECov/GCov.

    Fragments are represented as sets of atom {e indexes} into the query
    body, so overlapping and identical atoms are handled unambiguously. *)

type fragment = int list
(** A fragment: sorted, duplicate-free atom indexes into the query body. *)

type cover = fragment list
(** A query cover: a list of fragments. *)

type t = {
  head : Bgp.pattern_term list;        (** the original query head *)
  fragments : (Bgp.t * Ucq.t) list;    (** cover query and its reformulation *)
}
(** A JUCQ reformulation: the join of the [Ucq.t] fragment reformulations,
    projected on [head].  Each fragment's rows are keyed by its cover-query
    head variables. *)

val fragment_of_atoms : int list -> fragment
(** Sorts and deduplicates atom indexes.  Raises [Invalid_argument] on an
    empty list. *)

val ucq_cover : Bgp.t -> cover
(** The single-fragment cover {t1,…,tn} — the flat UCQ reformulation of
    prior work. *)

val scq_cover : Bgp.t -> cover
(** The all-singletons cover {{t1},…,{tn}} — the SCQ reformulation of
    [13]. *)

val check_cover : Bgp.t -> cover -> (unit, string) result
(** Checks Definition 3.3 plus internal fragment connectivity (fragments
    with an internal cartesian product are excluded from the search space,
    as discussed after Theorem 3.1). *)

val cover_query : Bgp.t -> cover -> fragment -> Bgp.t
(** [cover_query q c f] is the cover query [q_f] of Definition 3.4, with
    [c] providing the other fragments that determine shared variables. *)

val make : reformulate:(Bgp.t -> Ucq.t) -> Bgp.t -> cover -> t
(** Builds the cover-based JUCQ reformulation of Theorem 3.1: reformulates
    every cover query with [reformulate] and joins them.  Raises
    [Invalid_argument] if {!check_cover} fails. *)

val eval : Rdf.Graph.t -> t -> Rdf.Term.t list list
(** Reference evaluation: evaluates each fragment UCQ with the naive
    evaluator, hash-joins fragment results on their shared variables and
    projects the original head.  Set semantics; sorted rows. *)

val fragment_count : t -> int
(** Number of joined fragments. *)

val total_disjuncts : t -> int
(** Total number of CQs across all fragment reformulations — the
    "#reformulations" statistic of Table 2. *)

val cover_to_string : cover -> string
(** Renders a cover as e.g. [{t1,t3}{t2}]. *)

val to_string : t -> string
(** Renders the JUCQ as the join of its fragment UCQs. *)

val pp : Format.formatter -> t -> unit
(** Multi-line pretty-printer. *)
