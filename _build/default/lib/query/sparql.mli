(** Concrete syntax for BGP queries: a practical subset of SPARQL.

    Supported grammar:
    {v
    query  ::= prefix* SELECT DISTINCT? var+ WHERE { pattern ( . pattern )* .? }
    prefix ::= PREFIX name: <uri>
    pattern::= term term term
    term   ::= ?var | <uri> | "literal" | name:local | a
    v}
    [a] abbreviates [rdf:type]; the [rdf:] and [rdfs:] prefixes are
    predefined.  Keywords are case-insensitive.  [DISTINCT] is accepted
    and implicit: BGP answers are sets. *)

val parse : string -> Bgp.t
(** Parses a query.  Raises [Invalid_argument] with a position-annotated
    message on syntax errors. *)

val to_sparql : Bgp.t -> string
(** Renders a BGP query back to SPARQL (full URIs, no prefixes).  Constant
    head entries — which SPARQL's projection cannot express — are rendered
    through fresh variables bound by a [BIND]-less convention: they are
    inlined in a comment.  Queries produced by {!parse} round-trip. *)
