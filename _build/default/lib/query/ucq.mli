(** Unions of conjunctive queries (UCQs).

    The state-of-the-art reformulation languages turn a CQ into a UCQ; this
    module represents such unions with syntactic-duplicate elimination
    (reformulation operates under set semantics). *)

type t
(** A union of CQs sharing the same head arity. *)

val of_cqs : Bgp.t list -> t
(** Builds a union, deduplicating CQs up to {!Bgp.canonical}.  Raises
    [Invalid_argument] on an empty list or mismatched head arities. *)

val disjuncts : t -> Bgp.t list
(** The member CQs, duplicate-free. *)

val cardinal : t -> int
(** Number of union terms — the paper's [|q_ref|] statistic (Table 4). *)

val arity : t -> int
(** Head arity of every member CQ. *)

val union : t -> t -> t
(** Union of two UCQs (same arity), deduplicated. *)

val map : (Bgp.t -> Bgp.t) -> t -> t
(** Applies a CQ transformation to every disjunct, re-deduplicating. *)

val eval : Rdf.Graph.t -> t -> Rdf.Term.t list list
(** Set-semantics union of the {!Bgp.eval} of each disjunct (reference
    evaluator). *)

val equal : t -> t -> bool
(** Equality as sets of canonical CQs. *)

val to_string : t -> string
(** Renders the union as [cq1 ∪ cq2 ∪ …]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line pretty-printer, one disjunct per line. *)
