type fragment = int list

type cover = fragment list

type t = {
  head : Bgp.pattern_term list;
  fragments : (Bgp.t * Ucq.t) list;
}

let fragment_of_atoms idxs =
  if idxs = [] then invalid_arg "Jucq.fragment_of_atoms: empty fragment";
  List.sort_uniq Int.compare idxs

let all_indexes (q : Bgp.t) = List.mapi (fun i _ -> i) q.body

let ucq_cover q = [ all_indexes q ]

let scq_cover (q : Bgp.t) = List.map (fun i -> [ i ]) (all_indexes q)

let atoms_of (q : Bgp.t) f = List.map (List.nth q.body) f

let fragment_included a b = List.for_all (fun i -> List.mem i b) a

let check_cover (q : Bgp.t) (c : cover) =
  let n = List.length q.body in
  let ( let* ) r f = Result.bind r f in
  let* () = if c = [] then Error "empty cover" else Ok () in
  let* () =
    if List.exists (fun f -> f = []) c then Error "empty fragment" else Ok ()
  in
  let* () =
    if
      List.exists (fun f -> List.exists (fun i -> i < 0 || i >= n) f) c
    then Error "atom index out of range"
    else Ok ()
  in
  let covered = List.sort_uniq Int.compare (List.concat c) in
  let* () =
    if List.length covered <> n then Error "cover misses some atom" else Ok ()
  in
  let* () =
    let rec pairs = function
      | [] -> Ok ()
      | f :: rest ->
          if
            List.exists
              (fun g -> fragment_included f g || fragment_included g f)
              rest
          then Error "fragment included in another"
          else pairs rest
    in
    pairs c
  in
  let* () =
    if
      List.exists (fun f -> not (Bgp.is_connected (atoms_of q f))) c
    then Error "fragment with internal cartesian product"
    else Ok ()
  in
  if List.length c = 1 then Ok ()
  else if
    List.for_all
      (fun f ->
        List.exists
          (fun g ->
            f != g && Bgp.fragment_connected (atoms_of q f) (atoms_of q g))
          c)
      c
  then Ok ()
  else Error "fragment joins with no other fragment"

let cover_query (q : Bgp.t) (c : cover) (f : fragment) : Bgp.t =
  let f_atoms = atoms_of q f in
  let f_vars = List.concat_map Bgp.atom_vars f_atoms in
  let distinguished = Bgp.head_vars q in
  let other_vars =
    List.concat_map
      (fun g -> if g == f then [] else List.concat_map Bgp.atom_vars (atoms_of q g))
      c
  in
  let head =
    List.filter
      (fun v -> List.mem v distinguished || List.mem v other_vars)
      (List.sort_uniq String.compare f_vars)
  in
  Bgp.make (List.map (fun v -> Bgp.Var v) head) f_atoms

let make ~reformulate (q : Bgp.t) (c : cover) : t =
  (match check_cover q c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Jucq.make: invalid cover: " ^ msg));
  let fragments =
    List.map
      (fun f ->
        let cq = cover_query q c f in
        (cq, reformulate cq))
      c
  in
  { head = q.head; fragments }

(* ---- Reference evaluation ---- *)

(* Intermediate relations over named variables. *)
type rel = { cols : string list; rows : Rdf.Term.t list list }

let rel_of_fragment g ((cq : Bgp.t), ucq) =
  let cols = Bgp.head_vars cq in
  { cols; rows = Ucq.eval g ucq }

let join_rels a b =
  let shared = List.filter (fun v -> List.mem v b.cols) a.cols in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.cols in
  let positions cols vs =
    List.map
      (fun v ->
        let rec idx i = function
          | [] -> assert false
          | c :: _ when String.equal c v -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 cols)
      vs
  in
  let key_a = positions a.cols shared and key_b = positions b.cols shared in
  let b_only_pos = positions b.cols b_only in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let k = List.map (List.nth row) key_b in
      let payload = List.map (List.nth row) b_only_pos in
      Hashtbl.add tbl k payload)
    b.rows;
  let rows =
    List.concat_map
      (fun row ->
        let k = List.map (List.nth row) key_a in
        List.map (fun payload -> row @ payload) (Hashtbl.find_all tbl k))
      a.rows
  in
  { cols = a.cols @ b_only; rows }

let eval g (t : t) =
  match t.fragments with
  | [] -> invalid_arg "Jucq.eval: no fragments"
  | first :: rest ->
      let joined =
        List.fold_left
          (fun acc fr -> join_rels acc (rel_of_fragment g fr))
          (rel_of_fragment g first) rest
      in
      let project row =
        List.map
          (function
            | Bgp.Const c -> c
            | Bgp.Var v -> (
                let rec find cols vals =
                  match (cols, vals) with
                  | c :: _, x :: _ when String.equal c v -> x
                  | _ :: cs, _ :: xs -> find cs xs
                  | _ -> assert false
                in
                find joined.cols row))
          t.head
      in
      List.sort_uniq (List.compare Rdf.Term.compare)
        (List.map project joined.rows)

let fragment_count t = List.length t.fragments

let total_disjuncts t =
  List.fold_left (fun acc (_, ucq) -> acc + Ucq.cardinal ucq) 0 t.fragments

let cover_to_string (c : cover) =
  String.concat ""
    (List.map
       (fun f ->
         "{" ^ String.concat "," (List.map (fun i -> "t" ^ string_of_int (i + 1)) f)
         ^ "}")
       c)

let to_string t =
  String.concat " ⋈ "
    (List.map (fun (cq, _) -> "(" ^ Bgp.to_string cq ^ ")ref") t.fragments)

let pp fmt t =
  List.iteri
    (fun i (cq, ucq) ->
      if i > 0 then Format.fprintf fmt "@.⋈ ";
      Format.fprintf fmt "fragment %a [%d disjuncts]" Bgp.pp cq
        (Ucq.cardinal ucq))
    t.fragments
