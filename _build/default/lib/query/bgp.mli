(** SPARQL conjunctive queries, a.k.a. Basic Graph Pattern (BGP) queries
    (Section 2.2).

    A BGP query is written [q(x̄) :- t1, …, tα] where each [ti] is a triple
    pattern and the head terms [x̄] are the distinguished variables.  After
    query reformulation, head positions may also hold constants (e.g.
    [q(x, Book) :- x rdf:type Book] in Example 4), so head entries are
    pattern terms, not just variables.

    Blank nodes in queries behave exactly like non-distinguished variables;
    {!normalize} replaces them accordingly, and all other operations assume
    normalized queries. *)

type pattern_term =
  | Var of string        (** a query variable, e.g. [?x] *)
  | Const of Rdf.Term.t  (** a constant URI/literal *)

type atom = {
  s : pattern_term;  (** subject position *)
  p : pattern_term;  (** property position *)
  o : pattern_term;  (** object position *)
}
(** A triple pattern [s p o]. *)

type t = {
  head : pattern_term list;  (** distinguished terms [x̄] *)
  body : atom list;          (** the BGP [t1, …, tα] *)
}

val pattern_term_compare : pattern_term -> pattern_term -> int
(** Total order on pattern terms (variables before constants). *)

val pattern_term_equal : pattern_term -> pattern_term -> bool
(** Equality on pattern terms. *)

val atom_compare : atom -> atom -> int
(** Lexicographic order on atoms. *)

val atom_equal : atom -> atom -> bool
(** Component-wise equality on atoms. *)

val atom : pattern_term -> pattern_term -> pattern_term -> atom
(** [atom s p o] builds a triple pattern. *)

val make : pattern_term list -> atom list -> t
(** [make head body] builds a query.  Raises [Invalid_argument] if the body
    is empty or a head variable does not occur in the body. *)

val atom_vars : atom -> string list
(** Variables of one atom, without duplicates, in position order. *)

val vars : t -> string list
(** All body variables, without duplicates, in first-occurrence order. *)

val head_vars : t -> string list
(** The distinguished variables (variables occurring in the head). *)

val normalize : t -> t
(** Replaces blank-node constants by fresh non-distinguished variables. *)

val dedup_body : t -> t
(** Removes duplicate body atoms (a BGP is a {e set} of triple patterns:
    syntactic duplicates are semantically inert).  The body is sorted. *)

val atoms_connected : atom -> atom -> bool
(** Whether two atoms share at least one variable. *)

val fragment_connected : atom list -> atom list -> bool
(** Whether two atom sets share at least one variable. *)

val is_connected : atom list -> bool
(** Whether the join graph of the atom set is connected (no cartesian
    product).  The empty set and singletons are connected. *)

val apply_subst : (string * Rdf.Term.t) list -> t -> t
(** Applies a variable-to-constant substitution to head and body. *)

val rename_var : string -> string -> t -> t
(** [rename_var x y q] replaces variable [x] by variable [y] everywhere. *)

val canonical : t -> t
(** A canonical representative of the query modulo renaming of
    non-distinguished variables and reordering of body atoms; two
    reformulations that are syntactically isomorphic map to equal canonical
    forms, enabling duplicate elimination in unions. *)

val raw_compare : t -> t -> int
(** Structural order on queries (no canonicalization): cheap, but
    distinguishes isomorphic queries. *)

val equal : t -> t -> bool
(** Syntactic equality up to {!canonical}. *)

val compare : t -> t -> int
(** Total order compatible with {!equal}: compares canonical forms.  For
    bulk deduplication, canonicalize once and use {!raw_compare}. *)

val eval : Rdf.Graph.t -> t -> Rdf.Term.t list list
(** Reference evaluation [q(G)] against the {e explicit} triples of a graph
    (Section 2.2): all assignments of body variables to [Val(G)] matching
    every atom, projected on the head.  Set semantics; results sorted.
    This naive evaluator is the specification the storage engine is tested
    against, not the fast path. *)

val answer : Rdf.Graph.t -> t -> Rdf.Term.t list list
(** Query answering [q(G∞)]: evaluation against the saturation (the
    complete answer set mandated by the SPARQL semantics). *)

val to_string : t -> string
(** Conjunctive-query notation: [q(x̄) :- t1, …, tn]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer using {!to_string} notation. *)
