type pattern_term = Var of string | Const of Rdf.Term.t

type atom = { s : pattern_term; p : pattern_term; o : pattern_term }

type t = { head : pattern_term list; body : atom list }

let pattern_term_compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const x, Const y -> Rdf.Term.compare x y

let pattern_term_equal a b = pattern_term_compare a b = 0

let atom_compare a b =
  let c = pattern_term_compare a.s b.s in
  if c <> 0 then c
  else
    let c = pattern_term_compare a.p b.p in
    if c <> 0 then c else pattern_term_compare a.o b.o

let atom_equal a b = atom_compare a b = 0

let atom s p o = { s; p; o }

let atom_positions a = [ a.s; a.p; a.o ]

let atom_vars a =
  List.filter_map (function Var v -> Some v | Const _ -> None)
    (atom_positions a)
  |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
  |> List.rev

let vars q =
  List.concat_map atom_vars q.body
  |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
  |> List.rev

let make head body =
  if body = [] then invalid_arg "Bgp.make: empty body";
  let body_vars = vars { head = []; body } in
  List.iter
    (function
      | Var v when not (List.mem v body_vars) ->
          invalid_arg ("Bgp.make: head variable not in body: " ^ v)
      | Var _ | Const _ -> ())
    head;
  { head; body }

let head_vars q =
  List.filter_map (function Var v -> Some v | Const _ -> None) q.head
  |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
  |> List.rev

let normalize q =
  let counter = ref 0 in
  let renaming = Hashtbl.create 8 in
  let fresh b =
    match Hashtbl.find_opt renaming b with
    | Some v -> v
    | None ->
        incr counter;
        let v = Printf.sprintf "_bn%d" !counter in
        Hashtbl.add renaming b v;
        v
  in
  let term = function
    | Const (Rdf.Term.Bnode b) -> Var (fresh b)
    | (Var _ | Const _) as t -> t
  in
  let map_atom a = { s = term a.s; p = term a.p; o = term a.o } in
  { head = List.map term q.head; body = List.map map_atom q.body }

let dedup_body q = { q with body = List.sort_uniq atom_compare q.body }

let atoms_connected a b =
  List.exists (fun v -> List.mem v (atom_vars b)) (atom_vars a)

let fragment_connected f g =
  let vf = List.concat_map atom_vars f in
  let vg = List.concat_map atom_vars g in
  List.exists (fun v -> List.mem v vg) vf

let is_connected atoms =
  match atoms with
  | [] | [ _ ] -> true
  | first :: rest ->
      (* Grow a connected component from the first atom. *)
      let rec grow component frontier remaining =
        match frontier with
        | [] -> remaining = []
        | _ ->
            let touched, rest =
              List.partition
                (fun a -> List.exists (atoms_connected a) frontier)
                remaining
            in
            grow (component @ frontier) touched rest
      in
      grow [] [ first ] rest

let subst_term bindings = function
  | Var v as t -> (
      match List.assoc_opt v bindings with
      | Some c -> Const c
      | None -> t)
  | Const _ as t -> t

let apply_subst bindings q =
  let term = subst_term bindings in
  let map_atom a = { s = term a.s; p = term a.p; o = term a.o } in
  { head = List.map term q.head; body = List.map map_atom q.body }

let rename_var x y q =
  let term = function Var v when v = x -> Var y | t -> t in
  let map_atom a = { s = term a.s; p = term a.p; o = term a.o } in
  { head = List.map term q.head; body = List.map map_atom q.body }

(* Total parallel renaming: every variable of [q] must be in the mapping's
   domain; all occurrences are replaced in one traversal, so permuting
   renamings cannot capture each other. *)
let rename_parallel mapping q =
  let term = function
    | Var v -> Var (List.assoc v mapping)
    | Const _ as t -> t
  in
  let map_atom a = { s = term a.s; p = term a.p; o = term a.o } in
  { head = List.map term q.head; body = List.map map_atom q.body }

(* Canonical form: an exact canonicalization of the query modulo renaming
   of non-distinguished (existential) variables and reordering of atoms.
   Distinguished variables are pinned positionally to h0, h1, …; the
   existential variables are then assigned e0, e1, … by

   1. colour refinement: each existential variable gets a signature built
      from its occurrences (position within the atom, the other positions'
      contents, with existential neighbours represented by their current
      colour), iterated until the partition stabilizes; and
   2. exhaustive tie-breaking: within a colour class the assignment that
      yields the lexicographically least sorted body is chosen.  Classes
      are almost always singletons, so the factorial search is vestigial.

   The result is renaming-invariant and order-invariant, which the
   reformulation engines rely on for duplicate elimination. *)
let canonical q =
  let hv = head_vars q in
  let head_mapping = List.mapi (fun i v -> (v, Printf.sprintf "h%d" i)) hv in
  let evars = List.filter (fun v -> not (List.mem v hv)) (vars q) in
  match evars with
  | [] ->
      let q = rename_parallel head_mapping q in
      { q with body = List.sort_uniq atom_compare q.body }
  | [ only ] ->
      (* Single existential: no symmetry to break. *)
      let q = rename_parallel ((only, "e0") :: head_mapping) q in
      { q with body = List.sort_uniq atom_compare q.body }
  | _ ->
      (* --- colour refinement over existential variables --- *)
      let colour = Hashtbl.create 8 in
      List.iter (fun v -> Hashtbl.replace colour v 0) evars;
      let term_repr self = function
        | Const c -> "c:" ^ Rdf.Term.to_string c
        | Var v -> (
            if String.equal v self then "self"
            else
              match List.assoc_opt v head_mapping with
              | Some h -> "h:" ^ h
              | None -> "e:" ^ string_of_int (Hashtbl.find colour v))
      in
      let signature v =
        let occ =
          List.concat_map
            (fun a ->
              let positions = [ (0, a.s); (1, a.p); (2, a.o) ] in
              if
                List.exists
                  (fun (_, t) -> pattern_term_equal t (Var v))
                  positions
              then
                [
                  String.concat "|"
                    (List.map
                       (fun (i, t) ->
                         string_of_int i ^ "=" ^ term_repr v t)
                       positions);
                ]
              else [])
            q.body
        in
        String.concat ";" (List.sort String.compare occ)
      in
      let refine () =
        let sigs = List.map (fun v -> (v, signature v)) evars in
        let distinct =
          List.sort_uniq String.compare (List.map snd sigs)
        in
        let changed = ref false in
        List.iter
          (fun (v, s) ->
            let rec rank i = function
              | [] -> assert false
              | x :: _ when String.equal x s -> i
              | _ :: rest -> rank (i + 1) rest
            in
            let c = rank 0 distinct in
            if Hashtbl.find colour v <> c then begin
              Hashtbl.replace colour v c;
              changed := true
            end)
          sigs;
        !changed
      in
      let rec iterate n = if n > 0 && refine () then iterate (n - 1) in
      iterate (List.length evars + 2);
      (* --- order colour classes canonically, tie-break exhaustively --- *)
      let classes =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun v ->
            let key = (Hashtbl.find colour v, signature v) in
            Hashtbl.replace tbl key
              (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl key))))
          evars;
        Hashtbl.fold (fun (_, s) vs acc -> (s, vs) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map snd
      in
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
            List.concat_map
              (fun x ->
                List.map (fun rest -> x :: rest)
                  (permutations (List.filter (fun y -> y <> x) l)))
              l
      in
      let orderings =
        (* All concatenations of within-class permutations, class order
           fixed.  Cap the search to avoid pathological blow-ups; queries
           with >6-way symmetric variables fall back to a fixed order
           (costing at worst a missed duplicate). *)
        List.fold_left
          (fun acc cls ->
            let perms =
              if List.length cls > 6 then [ cls ] else permutations cls
            in
            List.concat_map
              (fun prefix -> List.map (fun p -> prefix @ p) perms)
              acc)
          [ [] ] classes
      in
      let candidate ordering =
        let mapping =
          head_mapping
          @ List.mapi (fun i v -> (v, Printf.sprintf "e%d" i)) ordering
        in
        let q' = rename_parallel mapping q in
        { q' with body = List.sort_uniq atom_compare q'.body }
      in
      let better a b =
        let c = List.compare atom_compare a.body b.body in
        if c <> 0 then c < 0
        else List.compare pattern_term_compare a.head b.head < 0
      in
      List.fold_left
        (fun best ordering ->
          let cand = candidate ordering in
          match best with
          | None -> Some cand
          | Some b -> if better cand b then Some cand else best)
        None orderings
      |> Option.get

let raw_compare a b =
  let c = List.compare atom_compare a.body b.body in
  if c <> 0 then c else List.compare pattern_term_compare a.head b.head

let compare a b = raw_compare (canonical a) (canonical b)

let equal a b = compare a b = 0

(* ---- Reference evaluation ---- *)

let match_term binding t value =
  match t with
  | Const c -> if Rdf.Term.equal c value then Some binding else None
  | Var v -> (
      match List.assoc_opt v binding with
      | Some bound ->
          if Rdf.Term.equal bound value then Some binding else None
      | None -> Some ((v, value) :: binding))

let match_atom binding a (tr : Rdf.Triple.t) =
  match match_term binding a.s tr.subj with
  | None -> None
  | Some b -> (
      match match_term b a.p tr.pred with
      | None -> None
      | Some b -> match_term b a.o tr.obj)

let eval g q =
  let q = normalize q in
  let facts = Rdf.Graph.fact_list g in
  let rec search binding = function
    | [] ->
        let row =
          List.map
            (function
              | Const c -> c
              | Var v -> (
                  match List.assoc_opt v binding with
                  | Some c -> c
                  | None -> assert false))
            q.head
        in
        [ row ]
    | a :: rest ->
        List.concat_map
          (fun tr ->
            match match_atom binding a tr with
            | None -> []
            | Some b -> search b rest)
          facts
  in
  List.sort_uniq (List.compare Rdf.Term.compare) (search [] q.body)

let answer g q = eval (Rdf.Saturation.saturate g) q

let pattern_term_to_string = function
  | Var v -> "?" ^ v
  | Const c -> Rdf.Term.to_string c

let to_string q =
  let head = String.concat ", " (List.map pattern_term_to_string q.head) in
  let atom_str a =
    String.concat " " (List.map pattern_term_to_string (atom_positions a))
  in
  Printf.sprintf "q(%s) :- %s" head
    (String.concat ", " (List.map atom_str q.body))

let pp fmt q = Format.pp_print_string fmt (to_string q)
