type t = Bgp.t list  (* invariant: non-empty, same arity, canonical-sorted *)

(* Disjuncts are stored in canonical form so deduplication and comparison
   only need the cheap structural order. *)
let of_cqs cqs =
  match cqs with
  | [] -> invalid_arg "Ucq.of_cqs: empty union"
  | first :: _ ->
      let arity = List.length first.Bgp.head in
      List.iter
        (fun (cq : Bgp.t) ->
          if List.length cq.head <> arity then
            invalid_arg "Ucq.of_cqs: mismatched head arities")
        cqs;
      List.sort_uniq Bgp.raw_compare (List.map Bgp.canonical cqs)

let disjuncts t = t

let cardinal = List.length

let arity = function
  | [] -> assert false
  | cq :: _ -> List.length cq.Bgp.head

let union a b = of_cqs (a @ b)

let map f t = of_cqs (List.map f t)

let eval g t =
  List.concat_map (Bgp.eval g) t
  |> List.sort_uniq (List.compare Rdf.Term.compare)

let equal a b = List.equal (fun x y -> Bgp.raw_compare x y = 0) a b

let to_string t = String.concat " ∪ " (List.map Bgp.to_string t)

let pp fmt t =
  List.iteri
    (fun i cq ->
      if i > 0 then Format.fprintf fmt "@.";
      Format.fprintf fmt "∪ %a" Bgp.pp cq)
    t
