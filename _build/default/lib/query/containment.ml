(* Containment mapping search: backtracking assignment of q2's variables,
   atom by atom.  Queries are small (reformulation disjuncts have the
   original query's atom count), so the exponential worst case is
   immaterial. *)

type binding = (string * Bgp.pattern_term) list

let unify_term (b : binding) (src : Bgp.pattern_term)
    (dst : Bgp.pattern_term) : binding option =
  match src with
  | Bgp.Const c -> (
      match dst with
      | Bgp.Const c' when Rdf.Term.equal c c' -> Some b
      | Bgp.Const _ | Bgp.Var _ -> None)
  | Bgp.Var v -> (
      match List.assoc_opt v b with
      | Some bound -> if Bgp.pattern_term_equal bound dst then Some b else None
      | None -> Some ((v, dst) :: b))

let unify_atom (b : binding) (src : Bgp.atom) (dst : Bgp.atom) : binding option =
  match unify_term b src.Bgp.s dst.Bgp.s with
  | None -> None
  | Some b -> (
      match unify_term b src.Bgp.p dst.Bgp.p with
      | None -> None
      | Some b -> unify_term b src.Bgp.o dst.Bgp.o)

let homomorphism ~from:(q2 : Bgp.t) ~into:(q1 : Bgp.t) =
  if List.length q2.Bgp.head <> List.length q1.Bgp.head then None
  else
    (* Seed the binding with the head correspondence. *)
    let seed =
      List.fold_left2
        (fun acc src dst ->
          match acc with
          | None -> None
          | Some b -> unify_term b src dst)
        (Some []) q2.Bgp.head q1.Bgp.head
    in
    match seed with
    | None -> None
    | Some seed ->
        let rec search b = function
          | [] -> Some b
          | atom :: rest ->
              List.find_map
                (fun target ->
                  match unify_atom b atom target with
                  | None -> None
                  | Some b' -> search b' rest)
                q1.Bgp.body
        in
        search seed q2.Bgp.body

let contained q1 q2 = Option.is_some (homomorphism ~from:q2 ~into:q1)

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize u =
  let disjuncts = Array.of_list (Ucq.disjuncts u) in
  let n = Array.length disjuncts in
  let redundant i =
    let qi = disjuncts.(i) in
    let rec check j =
      if j >= n then false
      else if j = i then check (j + 1)
      else
        let qj = disjuncts.(j) in
        if contained qi qj && ((not (contained qj qi)) || j < i) then true
        else check (j + 1)
    in
    check 0
  in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if not (redundant i) then kept := disjuncts.(i) :: !kept
  done;
  Ucq.of_cqs !kept
