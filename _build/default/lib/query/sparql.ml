type token =
  | Kw of string        (* SELECT / WHERE / PREFIX, upper-cased *)
  | Variable of string
  | Iri of string
  | Lit of string
  | Prefixed of string * string
  | A
  | Lbrace
  | Rbrace
  | Dot
  | Colon_decl of string  (* "name:" in a PREFIX declaration *)

let fail pos msg =
  invalid_arg (Printf.sprintf "Sparql.parse: at offset %d: %s" pos msg)

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let is_name c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  let rec scan i =
    if i >= n then ()
    else
      let c = src.[i] in
      if is_ws c then scan (i + 1)
      else if c = '#' then
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        scan (eol i)
      else if c = '{' then (push Lbrace; scan (i + 1))
      else if c = '}' then (push Rbrace; scan (i + 1))
      else if c = '.' then (push Dot; scan (i + 1))
      else if c = '?' || c = '$' then begin
        let rec fin j = if j < n && is_name src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        if j = i + 1 then fail i "empty variable name";
        push (Variable (String.sub src (i + 1) (j - i - 1)));
        scan j
      end
      else if c = '<' then begin
        let rec fin j =
          if j >= n then fail i "unterminated IRI"
          else if src.[j] = '>' then j
          else fin (j + 1)
        in
        let j = fin (i + 1) in
        push (Iri (String.sub src (i + 1) (j - i - 1)));
        scan (j + 1)
      end
      else if c = '"' then begin
        let rec fin j =
          if j >= n then fail i "unterminated literal"
          else if src.[j] = '"' then j
          else fin (j + 1)
        in
        let j = fin (i + 1) in
        push (Lit (String.sub src (i + 1) (j - i - 1)));
        scan (j + 1)
      end
      else if is_name c then begin
        let rec fin j = if j < n && is_name src.[j] then fin (j + 1) else j in
        let j = fin i in
        let word = String.sub src i (j - i) in
        if j < n && src.[j] = ':' then begin
          (* prefixed name or prefix declaration *)
          let k = j + 1 in
          let rec fin2 l =
            if l < n && is_name src.[l] then fin2 (l + 1) else l
          in
          let l = fin2 k in
          if l = k then (push (Colon_decl word); scan (j + 1))
          else begin
            push (Prefixed (word, String.sub src k (l - k)));
            scan l
          end
        end
        else begin
          let upper = String.uppercase_ascii word in
          (match upper with
          | "SELECT" | "WHERE" | "PREFIX" | "DISTINCT" -> push (Kw upper)
          | "A" when String.equal word "a" -> push A
          | _ -> fail i ("unexpected word: " ^ word));
          scan j
        end
      end
      else fail i (Printf.sprintf "unexpected character %c" c)
  in
  scan 0;
  List.rev !toks

let builtin_prefixes =
  [
    ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
    ("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
  ]

let parse src =
  let toks = tokenize src in
  (* Prefix declarations *)
  let rec prefixes acc = function
    | Kw "PREFIX" :: Colon_decl name :: Iri uri :: rest ->
        prefixes ((name, uri) :: acc) rest
    | Kw "PREFIX" :: _ -> fail 0 "malformed PREFIX declaration"
    | rest -> (acc, rest)
  in
  let env, toks = prefixes builtin_prefixes toks in
  let resolve p local =
    match List.assoc_opt p env with
    | Some base -> base ^ local
    | None -> fail 0 ("undeclared prefix: " ^ p)
  in
  let term = function
    | Variable v -> Bgp.Var v
    | Iri u -> Bgp.Const (Rdf.Term.uri u)
    | Lit s -> Bgp.Const (Rdf.Term.literal s)
    | Prefixed (p, local) -> Bgp.Const (Rdf.Term.uri (resolve p local))
    | A -> Bgp.Const Rdf.Vocab.rdf_type
    | Kw _ | Lbrace | Rbrace | Dot | Colon_decl _ ->
        fail 0 "expected a term"
  in
  let toks =
    match toks with
    (* answers are sets regardless: DISTINCT is accepted and implicit *)
    | Kw "SELECT" :: Kw "DISTINCT" :: rest | Kw "SELECT" :: rest -> rest
    | _ -> fail 0 "expected SELECT"
  in
  let rec head acc = function
    | Variable v :: rest -> head (Bgp.Var v :: acc) rest
    | Kw "WHERE" :: Lbrace :: rest -> (List.rev acc, rest)
    | Lbrace :: rest -> (List.rev acc, rest)
    | _ -> fail 0 "expected head variables then WHERE {"
  in
  let head, toks = head [] toks in
  if head = [] then fail 0 "empty SELECT clause";
  let rec patterns acc = function
    | Rbrace :: rest ->
        if rest <> [] then fail 0 "tokens after closing brace";
        List.rev acc
    | Dot :: rest -> patterns acc rest
    | a :: b :: c :: rest ->
        patterns (Bgp.atom (term a) (term b) (term c) :: acc) rest
    | _ -> fail 0 "incomplete triple pattern"
  in
  let body = patterns [] toks in
  Bgp.make head body

let term_to_sparql = function
  | Bgp.Var v -> "?" ^ v
  | Bgp.Const (Rdf.Term.Uri u) -> "<" ^ u ^ ">"
  | Bgp.Const (Rdf.Term.Literal s) -> "\"" ^ s ^ "\""
  | Bgp.Const (Rdf.Term.Bnode b) -> "_:" ^ b

let to_sparql (q : Bgp.t) =
  let head =
    String.concat " "
      (List.map
         (function
           | Bgp.Var v -> "?" ^ v
           | Bgp.Const c -> "# const " ^ Rdf.Term.to_string c)
         q.head)
  in
  let atom (a : Bgp.atom) =
    Printf.sprintf "  %s %s %s ." (term_to_sparql a.s) (term_to_sparql a.p)
      (term_to_sparql a.o)
  in
  Printf.sprintf "SELECT %s WHERE {\n%s\n}" head
    (String.concat "\n" (List.map atom q.body))
