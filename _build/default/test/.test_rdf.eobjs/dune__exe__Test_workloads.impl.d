test/test_workloads.ml: Alcotest Bgp List Printf Query Rdf Reformulation Rqa Store Workloads
