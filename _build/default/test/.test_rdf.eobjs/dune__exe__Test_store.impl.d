test/test_store.ml: Alcotest Array Filename List Printf QCheck2 QCheck_alcotest Query Rdf Store Sys
