test/test_cli.ml: Alcotest Filename Lazy List Printf String Sys
