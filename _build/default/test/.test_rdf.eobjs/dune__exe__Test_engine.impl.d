test/test_engine.ml: Alcotest Array Bgp Engine Format Jucq List Printf QCheck2 QCheck_alcotest Query Rdf Reformulation Rqa Store String Ucq Workloads
