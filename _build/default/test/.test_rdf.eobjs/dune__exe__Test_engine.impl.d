test/test_engine.ml: Alcotest Bgp Engine Format Jucq List Printf QCheck2 QCheck_alcotest Query Rdf Reformulation Store String Ucq
