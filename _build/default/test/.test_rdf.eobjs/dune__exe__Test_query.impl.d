test/test_query.ml: Alcotest Array Bgp Containment Format Jucq List Printf QCheck2 QCheck_alcotest Query Random Rdf Sparql String Ucq
