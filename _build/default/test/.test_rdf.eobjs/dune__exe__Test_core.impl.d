test/test_core.ml: Alcotest Array Bgp Engine Float Fun Jucq List Printf QCheck2 QCheck_alcotest Query Rdf Reformulation Result Rqa Store
