test/test_rdf.ml: Alcotest Filename Format List Printf QCheck2 QCheck_alcotest Rdf String Sys
