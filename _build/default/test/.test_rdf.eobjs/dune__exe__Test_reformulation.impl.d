test/test_reformulation.ml: Alcotest Bgp Containment List Printf QCheck2 QCheck_alcotest Query Rdf Reformulation Ucq
