(** Structured verification of BGP query covers against Definition 3.3 —
    and computation of the Definition 3.4 cover-query head the plan
    verifier checks fragments against.

    {!Query.Jucq.check_cover} stops at the first violation and returns a
    bare string; this checker reports {e every} violation with a stable
    code ("CV001"–"CV007", see {!Diagnostic.catalog}), which is what the
    mutation self-tests and [rdfqa check] need. *)

val check :
  context:string -> Query.Bgp.t -> Query.Jucq.cover -> Diagnostic.t list
(** All Definition 3.3 violations of the cover: emptiness (["CV001"],
    ["CV002"]), index range (["CV003"]), coverage (["CV004"]), inclusion
    (["CV005"]), internal fragment connectivity (["CV006"]) and the
    cover's join graph (["CV007"]).  Structural errors (range, emptiness)
    suppress the later checks they would crash. *)

val expected_head : Query.Bgp.t -> Query.Jucq.cover -> int -> string list
(** [expected_head q c i] is the Definition 3.4 head of the [i]-th cover
    query: the distinguished variables of [q] occurring in fragment [i]
    plus the variables it shares with the other fragments of [c], sorted.
    Requires a structurally valid cover (see {!check}). *)

val shared_vars : Query.Bgp.t -> Query.Jucq.cover -> int -> string list
(** The variables fragment [i] shares with the rest of the cover — the
    join keys the executor will join fragment results on.  Sorted. *)
