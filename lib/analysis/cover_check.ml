open Query

let fragment_to_string (f : Jucq.fragment) =
  "{" ^ String.concat "," (List.map (fun i -> "t" ^ string_of_int (i + 1)) f) ^ "}"

let atoms_of (q : Bgp.t) (f : Jucq.fragment) = List.map (List.nth q.body) f
let included a b = List.for_all (fun i -> List.mem i b) a

let frag_vars q f = List.concat_map Bgp.atom_vars (atoms_of q f)

let other_vars (q : Bgp.t) (c : Jucq.cover) i =
  List.concat
    (List.mapi (fun j g -> if j = i then [] else frag_vars q g) c)

let shared_vars (q : Bgp.t) (c : Jucq.cover) i =
  let others = other_vars q c i in
  List.sort_uniq String.compare
    (List.filter (fun v -> List.mem v others) (frag_vars q (List.nth c i)))

let expected_head (q : Bgp.t) (c : Jucq.cover) i =
  let f = List.nth c i in
  let distinguished = Bgp.head_vars q in
  let others = other_vars q c i in
  List.filter
    (fun v -> List.mem v distinguished || List.mem v others)
    (List.sort_uniq String.compare (frag_vars q f))

let check ~context (q : Bgp.t) (c : Jucq.cover) =
  let n = List.length q.body in
  if c = [] then [ Diagnostic.error ~code:"CV001" ~context "empty cover" ]
  else
    let structural =
      List.concat
        (List.mapi
           (fun i f ->
             let fctx = Printf.sprintf "%s/fragment %d" context i in
             if f = [] then
               [ Diagnostic.error ~code:"CV002" ~context:fctx "empty fragment" ]
             else
               List.filter_map
                 (fun idx ->
                   if idx < 0 || idx >= n then
                     Some
                       (Diagnostic.error ~code:"CV003" ~context:fctx
                          (Printf.sprintf
                             "atom index t%d out of range (body has %d atoms)"
                             (idx + 1) n))
                   else None)
                 f)
           c)
    in
    if structural <> [] then structural
    else begin
      let ds = ref [] in
      let add d = ds := d :: !ds in
      (* CV004: every body atom covered. *)
      let covered = List.concat c in
      List.iteri
        (fun i _ ->
          if not (List.mem i covered) then
            add
              (Diagnostic.error ~code:"CV004" ~context
                 (Printf.sprintf "atom t%d is not covered by any fragment"
                    (i + 1))))
        q.body;
      (* CV005: no fragment included in another (identical fragments
         included both ways are reported once). *)
      List.iteri
        (fun i f ->
          List.iteri
            (fun j g ->
              if i < j && (included f g || included g f) then
                add
                  (Diagnostic.error ~code:"CV005" ~context
                     (Printf.sprintf "fragment %d %s and fragment %d %s: one \
                                      is included in the other"
                        i (fragment_to_string f) j (fragment_to_string g))))
            c)
        c;
      (* CV006: each fragment internally connected (no product inside a
         cover query — excluded from the search space after Theorem 3.1). *)
      List.iteri
        (fun i f ->
          if not (Bgp.is_connected (atoms_of q f)) then
            add
              (Diagnostic.error ~code:"CV006"
                 ~context:(Printf.sprintf "%s/fragment %d" context i)
                 (Printf.sprintf "fragment %s has an internal cartesian product"
                    (fragment_to_string f))))
        c;
      (* CV007: with several fragments, each must join with another. *)
      if List.length c > 1 then
        List.iteri
          (fun i f ->
            let joins =
              List.exists
                (fun j ->
                  j <> i
                  && Bgp.fragment_connected (atoms_of q f)
                       (atoms_of q (List.nth c j)))
                (List.init (List.length c) Fun.id)
            in
            if not joins then
              add
                (Diagnostic.error ~code:"CV007"
                   ~context:(Printf.sprintf "%s/fragment %d" context i)
                   (Printf.sprintf
                      "fragment %s shares no variable with any other fragment"
                      (fragment_to_string f))))
          c;
      List.rev !ds
    end
