open Query

let check_query ?schema ?reformulator ?(max_terms = 4096) ~name (q : Bgp.t) =
  let q = Bgp.normalize q in
  let lint = Query_lint.lint ?schema ~context:name q in
  let covers = [ ("ucq", Jucq.ucq_cover q); ("scq", Jucq.scq_cover q) ] in
  let cover_ds =
    List.concat_map
      (fun (label, cover) ->
        Cover_check.check ~context:(name ^ ":" ^ label) q cover)
      covers
  in
  let plan_ds =
    (* A cover that fails the Definition 3.3 checks cannot be built into a
       JUCQ ([Jucq.make] would reject it); the cover diagnostics above
       already carry the errors, so plan verification is skipped rather
       than crashing the whole check run. *)
    if Diagnostic.has_errors cover_ds then []
    else
    let r =
      match reformulator with
      | Some r -> r
      | None ->
          Reformulation.Reformulate.create
            (Option.value schema ~default:Rdf.Schema.empty)
    in
    let context = name ^ ":scq" in
    let cover = Jucq.scq_cover q in
    (* The plan check reformulates one cover query per fragment, so the
       cap applies per fragment — the whole-query product bound being
       astronomic (LUBM Q28, DBLP Q10) does not stop the SCQ-cover
       check, whose fragments are single atoms. *)
    let fragment_bound =
      List.fold_left
        (fun acc f ->
          max acc
            (Reformulation.Reformulate.count_product_bound r
               (Jucq.cover_query q cover f)))
        0 cover
    in
    match fragment_bound with
    | bound when bound > max_terms ->
        [
          Diagnostic.info ~code:"RF001" ~context
            (Printf.sprintf
               "a cover-query reformulation bounded by %d terms exceeds the \
                %d-term static check cap; plan verification skipped"
               bound max_terms);
        ]
    | _ -> (
        match
          Jucq.make
            ~reformulate:(Reformulation.Reformulate.reformulate r)
            q cover
        with
        | j ->
            let redundancy =
              (* Reformulations are containment-redundant by design
                 (Example 4): report redundancy as information, per
                 fragment, capped to keep the NP-hard sweep cheap. *)
              List.concat
                (List.mapi
                   (fun i (_, u) ->
                     Query_lint.lint_ucq ?schema ~redundant:Diagnostic.Info
                       ~context:(Printf.sprintf "%s/fragment %d" context i)
                       u)
                   j.Jucq.fragments)
            in
            Plan_verify.verify_jucq ~query:q ~cover ~context j @ redundancy
        | exception Reformulation.Reformulate.Too_large { bound; limit } ->
            [
              Diagnostic.info ~code:"RF001" ~context
                (Printf.sprintf
                   "reformulation too large to build (~%d terms, cap %d); \
                    plan verification skipped"
                   bound limit);
            ]
        | exception Reformulation.Rules.Unsupported_atom msg ->
            [
              Diagnostic.warning ~code:"QL009" ~context
                ("atom outside the supported reformulation fragment: " ^ msg);
            ])
  in
  lint @ cover_ds @ plan_ds

let check_workload ~schema queries =
  let r = Reformulation.Reformulate.create schema in
  List.map
    (fun (name, q) -> (name, check_query ~schema ~reformulator:r ~name q))
    queries
