(** Static cost analysis: abstract interpretation of the executor's
    physical statement shapes, deriving guaranteed intervals on the
    operation charges a statement incurs when run.

    The analyzer sees the store only through an {!oracle} the engine
    layer builds from its compiled plans, so this module stays free of
    engine dependencies.  Every bound is sound with respect to the
    executor's exact charge accounting: the traced [total_operations]
    delta of a successful evaluation always lands inside [ops], and a
    failed evaluation never charges more than [ops.hi].  Bounds saturate
    at [max_int] rather than overflow. *)

open Query

(** A closed integer interval [\[lo, hi\]], [0 <= lo <= hi]. *)
type interval = { lo : int; hi : int }

val exact : int -> interval
val zero : interval

val sat_add : int -> int -> int
(** Addition saturating at [max_int]; arguments must be non-negative. *)

val sat_mul : int -> int -> int
(** Multiplication saturating at [max_int]; arguments non-negative. *)

val add : interval -> interval -> interval

val string_of_bound : int -> string
(** ["inf"] for a saturated bound, the decimal otherwise. *)

val to_string : interval -> string

(** What the engine knows statically about one atom of a compiled CQ
    plan, in the planned join order: the store count of its constant
    positions (exact at depth 0, a sound per-invocation ceiling deeper),
    and whether its variable positions are pairwise distinct (then every
    depth-0 candidate unifies). *)
type atom_info = { atom_count : int; distinct_vars : bool }

type cq_info =
  | Unsat  (** a body constant is absent from the dictionary: no plan *)
  | Atoms of atom_info array

type join_algorithm = Hash | Block_nested_loop

type oracle = {
  cq_info : Bgp.t -> cq_info;
  join : join_algorithm;
  max_union_terms : int;
  max_materialized_rows : int;
  max_operations : int;
}

type statement = Cq of Bgp.t | Ucq of Ucq.t | Jucq of Jucq.t

type estimate = {
  ops : interval;  (** total operation charges of evaluating the statement *)
  rows : interval;  (** pre-dedup emitted rows (CQ/UCQ) or joined rows (JUCQ) *)
  refused : bool;
      (** the union-capacity pre-check provably refuses before any charge *)
}

val estimate : oracle -> statement -> estimate

type verdict = Safe | Fails | Unknown

val verdict : oracle -> ?budget:int -> statement -> verdict
(** [Safe]: upper bound fits the budget and no other static failure;
    [Fails]: provably refused, over budget, or over the materialization
    ceiling; [Unknown]: the interval straddles the budget.  [budget]
    defaults to the oracle's [max_operations]. *)

val admission : oracle -> ?budget:int -> context:string -> statement -> Diagnostic.t list
(** The admission-gate diagnostics for one statement: CB001 (error, lower
    bound over budget), CB002 (info, provably safe), CB003 (error,
    materialization floor over the ceiling), CB004 (info, straddling),
    CB009 (error, provably refused by union capacity). *)

(** {1 Enablement}

    A gate separate from {!Plan_verify}'s: cost admission changes when a
    doomed statement fails (before execution instead of mid-execution),
    so it must never be implied by [RDFQA_VERIFY].  Opt in with
    [RDFQA_VERIFY_COST=1] or {!set_enabled}. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val check_exn : (unit -> Diagnostic.t list) -> unit
(** When enabled, run the thunk and raise {!Plan_verify.Rejected} if any
    diagnostic is an error.  No-op when disabled. *)
