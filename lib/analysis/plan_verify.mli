(** Static verification of compiled physical plans — layer (2) of the
    analysis subsystem.

    The executor evaluates a JUCQ as: per fragment, a union of
    index-nested-loop CQ pipelines deduplicated into a materialized
    relation whose columns are the cover query's head variables; then
    fragment hash/BNL joins on shared columns; finally projection on the
    original head and duplicate elimination.  {!of_jucq} rebuilds that
    operator tree {e symbolically} and {!verify} walks it bottom-up,
    inferring each operator's column schema and checking consistency —
    union arity (["PV001"]), join keys (["PV002"], ["PV006"]), projection
    sources (["PV005"]), declared widths (["PV007"]).  With the original
    query and cover, {!verify_jucq} additionally checks Definition 3.3
    (via {!Cover_check}) and that every fragment head is exactly the
    Definition 3.4 head (["PV003"], ["PV004"], ["PV008"]).

    Nothing is executed and no store is consulted: the checks hold for
    every database, which is what makes them a safety net for executor
    refactors.  After the zero-allocation executor rewrite, a silent
    schema violation here would mean {e wrong answers}, not a crash. *)

type op =
  | Scan_join of Query.Bgp.atom list
      (** one CQ body as the executor's index-nested-loop self-join
          pipeline; produces the body variables in first-occurrence order *)
  | Project of op * Query.Bgp.pattern_term list
      (** head projection; constants are emitted as anonymous columns *)
  | Union of op list  (** UCQ union: all members must agree on width *)
  | Dedup of op       (** hash-based duplicate elimination; schema-neutral *)
  | Columns of op * string list
      (** names the positional output of a fragment — must match its width *)
  | Join of op * op
      (** fragment hash/BNL join on the inputs' shared column names *)

val of_cq : Query.Bgp.t -> op
(** The plan {!Engine.Executor.eval_cq} compiles: scan-join then project. *)

val of_ucq : Query.Ucq.t -> op
(** The plan of a UCQ fragment: union of CQ plans, deduplicated. *)

val of_jucq : Query.Jucq.t -> op
(** The full JUCQ plan: named fragment relations, joined in the executor's
    connectivity-greedy order, projected on the JUCQ head, deduplicated. *)

val schema_of : op -> string list
(** The inferred output column names (constants appear as ["<const>"]).
    Best-effort on inconsistent plans — pair with {!verify}. *)

val verify : context:string -> op -> Diagnostic.t list
(** Bottom-up schema-consistency walk of the operator tree. *)

val verify_cq : context:string -> Query.Bgp.t -> Diagnostic.t list
(** [verify ~context (of_cq q)]. *)

val verify_ucq : context:string -> Query.Ucq.t -> Diagnostic.t list
(** [verify ~context (of_ucq u)]. *)

val verify_jucq :
  ?query:Query.Bgp.t ->
  ?cover:Query.Jucq.cover ->
  context:string ->
  Query.Jucq.t ->
  Diagnostic.t list
(** Verifies the compiled JUCQ plan; when [query] and [cover] are given,
    also checks the cover (Definition 3.3) and each fragment head against
    Definition 3.4: a missing shared variable is a lost join key
    (["PV003"]), any other head deviation is ["PV004"], and a fragment
    count mismatch is ["PV008"]. *)

exception Rejected of Diagnostic.t list
(** Raised by {!check_exn} when a plan has error-severity diagnostics. *)

val check_exn : (unit -> Diagnostic.t list) -> unit
(** Runs the thunk when verification is {!enabled}; raises {!Rejected} if
    any resulting diagnostic is an error. *)

val enabled : unit -> bool
(** Whether plan verification is on: forced by {!set_enabled}, otherwise
    the [RDFQA_VERIFY] environment variable ([1]/[true] enable). *)

val set_enabled : bool -> unit
(** Overrides the environment gate — test/debug builds switch verification
    on unconditionally. *)
