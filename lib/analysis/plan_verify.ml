open Query

type op =
  | Scan_join of Bgp.atom list
  | Project of op * Bgp.pattern_term list
  | Union of op list
  | Dedup of op
  | Columns of op * string list
  | Join of op * op

(* Constant head entries become anonymous output columns.  The marker can
   never collide with a variable name ('<' is not a variable character)
   and is never treated as a join key. *)
let const_col = "<const>"

let cols_to_string cols =
  match cols with [] -> "(none)" | _ -> String.concat ", " cols

(* ---- plan construction (mirrors Executor's shapes) ---- *)

let of_cq (q : Bgp.t) = Project (Scan_join q.body, q.head)
let of_ucq u = Dedup (Union (List.map of_cq (Ucq.disjuncts u)))

(* Static column schema of an op, without diagnostics — used by the
   connectivity-greedy join-order simulation below, and exported as a
   best-effort inspection surface. *)
let rec schema_of = function
  | Scan_join atoms ->
      List.fold_left
        (fun acc a ->
          acc @ List.filter (fun v -> not (List.mem v acc)) (Bgp.atom_vars a))
        [] atoms
  | Project (_, head) ->
      List.map (function Bgp.Var v -> v | Bgp.Const _ -> const_col) head
  | Union [] -> []
  | Union (first :: _) -> schema_of first
  | Dedup input -> schema_of input
  | Columns (_, names) -> names
  | Join (l, r) ->
      let ls = schema_of l and rs = schema_of r in
      let shared = List.filter (fun v -> v <> const_col && List.mem v rs) ls in
      ls @ List.filter (fun v -> not (List.mem v shared)) rs

let of_jucq (j : Jucq.t) =
  let frags =
    List.map
      (fun ((cq : Bgp.t), u) -> Columns (of_ucq u, Bgp.head_vars cq))
      j.Jucq.fragments
  in
  let joined =
    match frags with
    | [] -> Union []
    | first :: rest ->
        (* The executor joins smallest-first but never takes a product
           while a connected fragment remains; sizes are unknown
           statically, so simulate only the connectivity preference —
           product warnings then fire exactly when the executor would be
           forced into a product too. *)
        let connected acc f =
          let ac = schema_of acc and fc = schema_of f in
          List.exists (fun v -> v <> const_col && List.mem v fc) ac
        in
        let rec fold acc remaining =
          match remaining with
          | [] -> acc
          | _ ->
              let pick =
                match List.find_opt (connected acc) remaining with
                | Some f -> f
                | None -> List.hd remaining
              in
              fold (Join (acc, pick)) (List.filter (fun f -> f != pick) remaining)
        in
        fold first rest
  in
  Dedup (Project (joined, j.Jucq.head))

(* ---- schema-consistency walk ---- *)

let verify ~context op =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let rec infer ctx = function
    | Scan_join atoms ->
        if atoms = [] then
          add
            (Diagnostic.error ~code:"PV007" ~context:ctx
               "scan-join pipeline over an empty body produces no columns");
        schema_of (Scan_join atoms)
    | Project (input, head) ->
        let cols = infer ctx input in
        List.map
          (function
            | Bgp.Const _ -> const_col
            | Bgp.Var v ->
                if not (List.mem v cols) then
                  add
                    (Diagnostic.error ~code:"PV005" ~context:ctx
                       (Printf.sprintf
                          "projected head variable ?%s is not produced by its \
                           input (columns: %s)"
                          v (cols_to_string cols)));
                v)
          head
    | Union inputs -> (
        match inputs with
        | [] ->
            add
              (Diagnostic.error ~code:"PV001" ~context:ctx
                 "union of zero members");
            []
        | first :: rest ->
            let s0 = infer (ctx ^ "/union member 0") first in
            List.iteri
              (fun i input ->
                let mctx = Printf.sprintf "%s/union member %d" ctx (i + 1) in
                let s = infer mctx input in
                if List.length s <> List.length s0 then
                  add
                    (Diagnostic.error ~code:"PV001" ~context:mctx
                       (Printf.sprintf
                          "union member has arity %d where member 0 has %d"
                          (List.length s) (List.length s0))))
              rest;
            s0)
    | Dedup input -> infer ctx input
    | Columns (input, names) ->
        let s = infer ctx input in
        if List.length s <> List.length names then
          add
            (Diagnostic.error ~code:"PV007" ~context:ctx
               (Printf.sprintf
                  "declared columns [%s] (width %d) do not match the \
                   operator's width %d"
                  (cols_to_string names) (List.length names) (List.length s)));
        names
    | Join (l, r) ->
        let ls = infer ctx l and rs = infer ctx r in
        let dup_check side cols =
          let rec go seen = function
            | [] -> ()
            | c :: rest ->
                if c <> const_col && List.mem c seen then
                  add
                    (Diagnostic.error ~code:"PV006" ~context:ctx
                       (Printf.sprintf
                          "duplicate column %s in the %s join input schema" c
                          side));
                go (c :: seen) rest
          in
          go [] cols
        in
        dup_check "left" ls;
        dup_check "right" rs;
        let shared =
          List.filter (fun v -> v <> const_col && List.mem v rs) ls
        in
        if shared = [] then
          add
            (Diagnostic.warning ~code:"PV002" ~context:ctx
               (Printf.sprintf
                  "fragment join has no shared column (cartesian product): \
                   left [%s] vs right [%s]"
                  (cols_to_string ls) (cols_to_string rs)));
        ls @ List.filter (fun v -> not (List.mem v shared)) rs
  in
  ignore (infer context op);
  List.rev !ds

let verify_cq ~context q = verify ~context (of_cq q)
let verify_ucq ~context u = verify ~context (of_ucq u)

(* ---- Definition 3.3/3.4 checks against the originating cover ---- *)

let structural_cover_error ds =
  List.exists
    (fun (d : Diagnostic.t) ->
      List.mem d.Diagnostic.code [ "CV001"; "CV002"; "CV003" ])
    ds

let fragment_head_checks ~context (q : Bgp.t) cover (j : Jucq.t) =
  if List.length j.Jucq.fragments <> List.length cover then
    [
      Diagnostic.error ~code:"PV008" ~context
        (Printf.sprintf "plan has %d fragments where the cover has %d"
           (List.length j.Jucq.fragments) (List.length cover));
    ]
  else
    List.concat
      (List.mapi
         (fun i ((cq : Bgp.t), _) ->
           let fctx = Printf.sprintf "%s/fragment %d" context i in
           let expected = Cover_check.expected_head q cover i in
           let shared = Cover_check.shared_vars q cover i in
           let actual = Bgp.head_vars cq in
           let missing = List.filter (fun v -> not (List.mem v actual)) expected in
           let extra = List.filter (fun v -> not (List.mem v expected)) actual in
           let body_mismatch =
             let atoms f = List.map (List.nth q.Bgp.body) f in
             not
               (List.equal Bgp.atom_equal
                  (List.sort Bgp.atom_compare cq.Bgp.body)
                  (List.sort Bgp.atom_compare (atoms (List.nth cover i))))
           in
           List.concat
             [
               List.map
                 (fun v ->
                   if List.mem v shared then
                     Diagnostic.error ~code:"PV003" ~context:fctx
                       (Printf.sprintf
                          "shared variable ?%s is missing from the cover-query \
                           head: the fragment join key is lost"
                          v)
                   else
                     Diagnostic.error ~code:"PV004" ~context:fctx
                       (Printf.sprintf
                          "distinguished variable ?%s is missing from the \
                           cover-query head (Definition 3.4)"
                          v))
                 missing;
               List.map
                 (fun v ->
                   Diagnostic.error ~code:"PV004" ~context:fctx
                     (Printf.sprintf
                        "cover-query head carries ?%s beyond the Definition \
                         3.4 head [%s]"
                        v (cols_to_string expected)))
                 extra;
               (if body_mismatch then
                  [
                    Diagnostic.error ~code:"PV008" ~context:fctx
                      "fragment body does not match the cover's atoms";
                  ]
                else []);
             ])
         j.Jucq.fragments)

let verify_jucq ?query ?cover ~context (j : Jucq.t) =
  let plan_ds = verify ~context (of_jucq j) in
  match (query, cover) with
  | Some q, Some c ->
      let cover_ds = Cover_check.check ~context q c in
      let head_ds =
        if structural_cover_error cover_ds then []
        else fragment_head_checks ~context q c j
      in
      cover_ds @ head_ds @ plan_ds
  | _ -> plan_ds

(* ---- enablement gate ---- *)

exception Rejected of Diagnostic.t list

let forced = ref None
let set_enabled b = forced := Some b

let env_enabled =
  lazy
    (match Sys.getenv_opt "RDFQA_VERIFY" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () =
  match !forced with Some b -> b | None -> Lazy.force env_enabled

let check_exn f =
  if enabled () then begin
    let ds = f () in
    if Diagnostic.has_errors ds then raise (Rejected ds)
  end
