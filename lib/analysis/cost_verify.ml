open Query

(* ---- saturating interval arithmetic ----

   Upper bounds multiply per join depth, so they overflow machine integers
   on realistic reformulations; saturation at [max_int] keeps every bound
   sound ("at most infinity") without ever wrapping into a fake low
   bound.  All quantities are non-negative. *)

type interval = { lo : int; hi : int }

let exact n = { lo = n; hi = n }
let zero = exact 0

let sat_add a b = if a > max_int - b then max_int else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let scale k i = { lo = sat_mul k i.lo; hi = sat_mul k i.hi }

let string_of_bound n =
  if n = max_int then "inf" else string_of_int n

let to_string i =
  Printf.sprintf "[%s, %s]" (string_of_bound i.lo) (string_of_bound i.hi)

(* ---- the oracle ----

   The analyzer is store-agnostic: everything it knows about the data
   arrives through an oracle the engine layer builds from its compiled
   plans.  [atom_count] is the exact store count of the atom's constant
   positions (the count the depth-0 index selection returns, and a sound
   per-invocation ceiling at any depth: extra bound variables only
   restrict a selection).  [distinct_vars] says the atom's variable
   positions carry pairwise-distinct variables, in which case every
   depth-0 candidate unifies. *)

type atom_info = { atom_count : int; distinct_vars : bool }

type cq_info =
  | Unsat  (** a body constant is absent from the dictionary: zero plan *)
  | Atoms of atom_info array  (** per-atom info, in the planned join order *)

type join_algorithm = Hash | Block_nested_loop

type oracle = {
  cq_info : Bgp.t -> cq_info;
  join : join_algorithm;
  max_union_terms : int;
  max_materialized_rows : int;
  max_operations : int;
}

type statement = Cq of Bgp.t | Ucq of Ucq.t | Jucq of Jucq.t

type estimate = {
  ops : interval;
  rows : interval;
  refused : bool;
}

(* The executor's per-selection charge: one access unit per 64 candidates
   (at least one) plus one unit per candidate visited. *)
let selection_charge n = sat_add (max 1 (n / 64)) n

(* Charges and pre-dedup emitted rows of one index-nested-loop CQ
   pipeline ([Executor.exec_cq]), excluding the statement epilogue.

   Upper bound: the number of select invocations at depth [k] is at most
   the product of the preceding atoms' counts (each invocation at depth
   [i] advances at most [c_i] rows), and each invocation charges at most
   [selection_charge c_k]; emitted rows are at most the product of all
   counts, one charge each.

   Lower bound: the driving selection is resolved and charged exactly
   once — also on the morsel-parallel path, where the coordinator issues
   that charge itself — and its candidate count is exactly [c_0] (no
   variable is bound yet).  When atom 0 binds pairwise-distinct
   variables, all [c_0] candidates unify, so with deeper atoms each of
   the [c_0] advanced rows triggers a depth-1 selection charging at
   least 1; with a single such atom the pipeline emits exactly [c_0]
   rows (one charge each), making the interval exact. *)
let exec_cq_estimate info =
  match info with
  | Unsat -> { ops = zero; rows = zero; refused = false }
  | Atoms atoms ->
      let n = Array.length atoms in
      if n = 0 then { ops = exact 1; rows = exact 1; refused = false }
      else begin
        let ops_hi = ref 0 and inv = ref 1 in
        for k = 0 to n - 1 do
          ops_hi :=
            sat_add !ops_hi
              (sat_mul !inv (selection_charge atoms.(k).atom_count));
          inv := sat_mul !inv atoms.(k).atom_count
        done;
        let rows_hi = !inv in
        let ops_hi = sat_add !ops_hi rows_hi in
        let c0 = atoms.(0).atom_count in
        let ops_lo = ref (selection_charge c0) in
        let rows_lo = ref 0 in
        if atoms.(0).distinct_vars then
          if n = 1 then begin
            rows_lo := c0;
            ops_lo := sat_add !ops_lo c0
          end
          else ops_lo := sat_add !ops_lo c0;
        {
          ops = { lo = !ops_lo; hi = ops_hi };
          rows = { lo = !rows_lo; hi = rows_hi };
          refused = false;
        }
      end

(* [Executor.eval_cq]: the pipeline plus a statement epilogue charging one
   unit per pre-dedup emitted row.  An unsatisfiable query runs no
   pipeline and its epilogue charges zero. *)
let cq_estimate o q =
  let e = exec_cq_estimate (o.cq_info q) in
  { e with ops = add e.ops e.rows }

(* One UCQ fragment ([Executor.eval_ucq_fragment], which is also the whole
   of [eval_ucq]): a union-capacity pre-check that refuses before any
   charge, then per-disjunct pipelines, then an epilogue charging one unit
   per accumulated pre-dedup row.  [rows] is that accumulated pre-dedup
   count — the quantity the per-disjunct materialization checks watch. *)
let ucq_estimate o u =
  if Ucq.cardinal u > o.max_union_terms then
    { ops = zero; rows = zero; refused = true }
  else begin
    let e =
      List.fold_left
        (fun acc cq ->
          let d = exec_cq_estimate (o.cq_info cq) in
          { ops = add acc.ops d.ops; rows = add acc.rows d.rows; refused = false })
        { ops = zero; rows = zero; refused = false }
        (Ucq.disjuncts u)
    in
    { e with ops = add e.ops e.rows }
  end

(* Fragment-join bounds.  [his]/[los] are the fragments' post-dedup row
   bounds.  Structural facts used for the lower bounds: a hash join
   charges one unit per input row on either side and each fragment
   relation enters the join tree as an input exactly once, whatever the
   (runtime, size-driven) join order; a block-nested-loop join charges
   the inner size per outer row, so its first step charges at least the
   product of the two smallest fragment sizes.  Upper bounds: any
   intermediate result over [m] fragments has at most the product of the
   [m] largest fragment bounds rows ([prefix.(m)] below). *)
let join_estimate o ~his ~los =
  let f = Array.length his in
  if f <= 1 then zero
  else begin
    let desc = Array.copy his in
    Array.sort (fun a b -> compare b a) desc;
    (* prefix.(m) = product of the m largest upper bounds *)
    let prefix = Array.make (f + 1) 1 in
    for m = 1 to f do
      prefix.(m) <- sat_mul prefix.(m - 1) desc.(m - 1)
    done;
    match o.join with
    | Hash ->
        let hi = ref 0 in
        (* every fragment charged once as a join input *)
        Array.iter (fun h -> hi := sat_add !hi h) his;
        (* intermediate results re-enter as inputs: steps 1..f-2 *)
        for j = 1 to f - 2 do
          hi := sat_add !hi (sat_mul 2 prefix.(j + 1))
        done;
        (* output rows of every step; the last output is charged once *)
        hi := sat_add !hi prefix.(f);
        let lo = Array.fold_left sat_add 0 los in
        { lo; hi = !hi }
    | Block_nested_loop ->
        (* step j charges inner-size per outer row: at most the product of
           the j+1 largest bounds pairs of rows *)
        let hi = ref 0 in
        for j = 1 to f - 1 do
          hi := sat_add !hi prefix.(j + 1)
        done;
        let asc = Array.copy los in
        Array.sort compare asc;
        { lo = sat_mul asc.(0) asc.(1); hi = !hi }
  end

(* [Executor.eval_jucq]: capacity pre-check over all fragments (refusal
   before any charge), fragment materialization, fragment joins, then the
   head projection charging two units per joined row (one in the fused
   project/dedup loop, one in the final bulk charge).  [rows] is the
   joined-row interval feeding that projection. *)
let jucq_estimate o (j : Jucq.t) =
  let frags = j.Jucq.fragments in
  if
    List.exists
      (fun (_, u) -> Ucq.cardinal u > o.max_union_terms)
      frags
  then { ops = zero; rows = zero; refused = true }
  else begin
    let ests = List.map (fun (_, u) -> ucq_estimate o u) frags in
    let frag_ops =
      List.fold_left (fun acc e -> add acc e.ops) zero ests
    in
    (* post-dedup fragment rows: at most the pre-dedup count; at least one
       row survives whenever at least one was emitted *)
    let his = Array.of_list (List.map (fun e -> e.rows.hi) ests) in
    let los =
      Array.of_list
        (List.map (fun e -> if e.rows.lo > 0 then 1 else 0) ests)
    in
    let join_ops = join_estimate o ~his ~los in
    let joined =
      match ests with
      | [ e ] -> { lo = (if e.rows.lo > 0 then 1 else 0); hi = e.rows.hi }
      | _ ->
          let hi = Array.fold_left sat_mul 1 his in
          { lo = 0; hi }
    in
    {
      ops = add (add frag_ops join_ops) (scale 2 joined);
      rows = joined;
      refused = false;
    }
  end

let estimate o = function
  | Cq q -> cq_estimate o q
  | Ucq u -> ucq_estimate o u
  | Jucq j -> jucq_estimate o j

(* Pre-dedup row lower bounds per materialized fragment, for the CB003
   check: the executor checks the accumulated pre-dedup relation after
   every disjunct, so a fragment whose row lower bound alone exceeds the
   ceiling can never complete. *)
let materialization_floors o = function
  | Cq _ -> []  (* eval_cq performs no materialization check *)
  | Ucq u -> [ ("", (ucq_estimate o u).rows.lo) ]
  | Jucq j ->
      List.mapi
        (fun i (_, u) ->
          (Printf.sprintf "fragment %d" i, (ucq_estimate o u).rows.lo))
        j.Jucq.fragments

type verdict = Safe | Fails | Unknown

(* Process-level verdict tallies (lib/metrics): every admission decision in
   the process, whichever caller asked for it. *)
let m_safe =
  Metrics.counter "admission.safe" ~help:"Statements proven within budget"
let m_fails =
  Metrics.counter "admission.fails" ~help:"Statements proven doomed pre-execution"
let m_unknown =
  Metrics.counter "admission.unknown" ~help:"Statements the interval analysis cannot decide"

let verdict o ?budget stmt =
  let budget = match budget with Some b -> b | None -> o.max_operations in
  let e = estimate o stmt in
  let v =
    if e.refused then Fails
    else if e.ops.lo > budget then Fails
    else if
      List.exists
        (fun (_, floor) -> floor > o.max_materialized_rows)
        (materialization_floors o stmt)
    then Fails
    else if e.ops.hi <= budget then Safe
    else Unknown
  in
  Metrics.add
    (match v with Safe -> m_safe | Fails -> m_fails | Unknown -> m_unknown)
    1;
  v

let statement_name = function
  | Cq _ -> "CQ"
  | Ucq _ -> "UCQ"
  | Jucq _ -> "JUCQ"

let admission o ?budget ~context stmt =
  let budget = match budget with Some b -> b | None -> o.max_operations in
  let e = estimate o stmt in
  let name = statement_name stmt in
  if e.refused then
    [
      Diagnostic.error ~code:"CB009" ~context
        (Printf.sprintf
           "%s provably refused: union term count exceeds the capacity %d"
           name o.max_union_terms);
    ]
  else begin
    let mat =
      List.filter_map
        (fun (where, floor) ->
          if floor > o.max_materialized_rows then
            Some
              (Diagnostic.error ~code:"CB003"
                 ~context:(if where = "" then context else context ^ "/" ^ where)
                 (Printf.sprintf
                    "at least %s pre-dedup rows materialize, over the ceiling \
                     %d: the statement provably fails"
                    (string_of_bound floor) o.max_materialized_rows))
          else None)
        (materialization_floors o stmt)
    in
    let ops =
      if e.ops.lo > budget then
        [
          Diagnostic.error ~code:"CB001" ~context
            (Printf.sprintf
               "static operation interval %s: the lower bound exceeds the \
                budget %d, the %s provably fails"
               (to_string e.ops) budget name);
        ]
      else if e.ops.hi <= budget then
        [
          Diagnostic.info ~code:"CB002" ~context
            (Printf.sprintf
               "static operation interval %s fits the budget %d: the %s is \
                provably budget-safe"
               (to_string e.ops) budget name);
        ]
      else
        [
          Diagnostic.info ~code:"CB004" ~context
            (Printf.sprintf
               "static operation interval %s straddles the budget %d: the \
                %s outcome is data-dependent"
               (to_string e.ops) budget name);
        ]
    in
    mat @ ops
  end

(* ---- enablement gate ----

   Deliberately separate from {!Plan_verify}'s gate: the shape verifier is
   force-enabled by every test suite, including suites that assert exact
   {e dynamic} budget-failure behaviour under tiny budgets — behaviour a
   pre-execution admission gate would change.  Cost admission is its own
   opt-in ([RDFQA_VERIFY_COST], or {!set_enabled}). *)

let forced = ref None
let set_enabled b = forced := Some b

let env_enabled =
  lazy
    (match Sys.getenv_opt "RDFQA_VERIFY_COST" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () =
  match !forced with Some b -> b | None -> Lazy.force env_enabled

let check_exn f =
  if enabled () then begin
    let ds = f () in
    if Diagnostic.has_errors ds then raise (Plan_verify.Rejected ds)
  end
