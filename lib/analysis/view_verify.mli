(** Soundness checks for serving materialized views in place of query
    fragments (the RF002/RF003 diagnostics).

    The view tier keys definitions by the canonical cover-query string; a
    keyed definition is only served when it is {e the} rewrite the use
    site would otherwise evaluate and its contents are stamped at the
    store's current versions.  These functions verify both halves and are
    run through {!Plan_verify.check_exn} on every view hit, so a planner
    bug that would serve a wrong or stale view rejects the statement
    instead of silently corrupting answers. *)

val verify_rewrite :
  context:string ->
  head:string list ->
  arity:int ->
  terms:int ->
  cq:Query.Bgp.t ->
  ucq:Query.Ucq.t ->
  Diagnostic.t list
(** [verify_rewrite ~context ~head ~arity ~terms ~cq ~ucq] checks a view
    definition (its stored [head], recorded [arity] and union [terms])
    against the use-site fragment: cover query [cq] and its reformulation
    [ucq].  Emits [RF002] errors on any mismatch — a keyed definition
    that is not a sound rewrite of the fragment. *)

val verify_freshness :
  context:string ->
  def_schema:int ->
  def_data:int ->
  schema:int ->
  data:int ->
  Diagnostic.t list
(** [verify_freshness ~context ~def_schema ~def_data ~schema ~data]
    checks the view tier's version stamps against the store's current
    schema/data versions.  Emits [RF003] when the contents about to be
    served predate the store state — stale-view-at-execution. *)
