open Query

let atom_to_string (a : Bgp.atom) =
  let term = function
    | Bgp.Var v -> "?" ^ v
    | Bgp.Const c -> Rdf.Term.to_string c
  in
  Printf.sprintf "%s %s %s" (term a.s) (term a.p) (term a.o)

(* Schema-level satisfiability of one atom.  A constant property unknown to
   both the RDFS schema and the built-in vocabulary gets no reformulation
   and can only match explicit triples; same for an [rdf:type] atom whose
   class is undeclared.  Both are legal, both are the classic typo. *)
let schema_checks schema ~context (a : Bgp.atom) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match a.p with
  | Bgp.Const p
    when Rdf.Term.is_uri p
         && (not (Rdf.Vocab.is_builtin p))
         && not (Rdf.Term.Set.mem p (Rdf.Schema.properties schema)) ->
      add
        (Diagnostic.warning ~code:"QL004" ~context
           (Printf.sprintf
              "property %s is neither built-in nor declared by the schema \
               (atom '%s' matches explicit triples only)"
              (Rdf.Term.to_string p) (atom_to_string a)))
  | _ -> ());
  (match (a.p, a.o) with
  | Bgp.Const p, Bgp.Const c
    when Rdf.Term.equal p Rdf.Vocab.rdf_type
         && Rdf.Term.is_uri c
         && not (Rdf.Term.Set.mem c (Rdf.Schema.classes schema)) ->
      add
        (Diagnostic.warning ~code:"QL005" ~context
           (Printf.sprintf
              "class %s is not declared by the schema (atom '%s' matches \
               explicit triples only)"
              (Rdf.Term.to_string c) (atom_to_string a)))
  | _ -> ());
  List.rev !ds

let lint ?schema ~context (q : Bgp.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let body_vars = Bgp.vars q in
  (* QL001: a head variable the body never binds. *)
  List.iter
    (function
      | Bgp.Var v when not (List.mem v body_vars) ->
          add
            (Diagnostic.error ~code:"QL001" ~context
               (Printf.sprintf "head variable ?%s does not occur in the body" v))
      | _ -> ())
    q.head;
  (* QL002: disconnected join graph. *)
  if List.length q.body > 1 && not (Bgp.is_connected q.body) then
    add
      (Diagnostic.warning ~code:"QL002" ~context
         "body is a cartesian product: its join graph is disconnected");
  (* QL003: duplicate atoms. *)
  let sorted = List.sort Bgp.atom_compare q.body in
  let rec dups = function
    | a :: (b :: _ as rest) ->
        if Bgp.atom_equal a b then
          add
            (Diagnostic.warning ~code:"QL003" ~context
               (Printf.sprintf "duplicate body atom '%s'" (atom_to_string a)));
        dups rest
    | _ -> ()
  in
  dups sorted;
  (* QL006: literals where RDF data cannot have them. *)
  List.iter
    (fun (a : Bgp.atom) ->
      let literal = function
        | Bgp.Const c -> Rdf.Term.is_literal c
        | Bgp.Var _ -> false
      in
      if literal a.s || literal a.p then
        add
          (Diagnostic.warning ~code:"QL006" ~context
             (Printf.sprintf
                "atom '%s' has a literal in subject or property position and \
                 never matches an RDF graph"
                (atom_to_string a))))
    q.body;
  (* QL007: repeated head variables. *)
  let rec rep_heads seen = function
    | [] -> ()
    | Bgp.Var v :: rest ->
        if List.mem v seen then
          add
            (Diagnostic.info ~code:"QL007" ~context
               (Printf.sprintf "head variable ?%s is repeated" v));
        rep_heads (v :: seen) rest
    | Bgp.Const _ :: rest -> rep_heads seen rest
  in
  rep_heads [] q.head;
  (match schema with
  | Some s when Rdf.Schema.size s > 0 ->
      List.iter (fun a -> List.iter add (schema_checks s ~context a)) q.body
  | _ -> ());
  List.rev !ds

let lint_ucq ?schema ?(redundant = Diagnostic.Warning) ?(containment_cap = 48)
    ~context (u : Ucq.t) =
  let disjuncts = Ucq.disjuncts u in
  let per_disjunct =
    List.concat
      (List.mapi
         (fun i cq ->
           lint ?schema ~context:(Printf.sprintf "%s(%d)" context i) cq)
         disjuncts)
  in
  let n = List.length disjuncts in
  let redundancy =
    if n < 2 || n > containment_cap then []
    else
      let arr = Array.of_list disjuncts in
      let redundant_at i =
        (* [arr.(i)] is redundant if some other disjunct subsumes it; among
           mutually-equivalent disjuncts only the later ones are flagged, so
           one representative survives — the {!Containment.minimize}
           convention. *)
        let subsumed_by j =
          j <> i
          && Containment.contained arr.(i) arr.(j)
          && ((not (Containment.contained arr.(j) arr.(i))) || j < i)
        in
        let rec find j =
          if j >= n then None
          else if subsumed_by j then Some j
          else find (j + 1)
        in
        find 0
      in
      List.concat
        (List.init n (fun i ->
             match redundant_at i with
             | Some j ->
                 [
                   Diagnostic.
                     {
                       severity = redundant;
                       code = "QL008";
                       context = Printf.sprintf "%s(%d)" context i;
                       message =
                         Printf.sprintf
                           "disjunct is contained in disjunct %d: evaluating \
                            it is redundant work"
                           j;
                     };
                 ]
             | None -> []))
  in
  per_disjunct @ redundancy
