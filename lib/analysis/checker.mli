(** The [rdfqa check] driver: runs every static check that applies to one
    BGP query against a schema, without touching any data.

    Pipeline: semantic lint of the query; Definition 3.3 checks of the
    canonical covers (the flat UCQ cover and the all-singletons SCQ
    cover); then — when the reformulation stays below [max_terms] — the
    cover-based JUCQ of the SCQ cover is built and its compiled plan
    shape is verified against Definitions 3.3/3.4 and the schema-
    consistency rules of {!Plan_verify}.  Reformulations the cap refuses
    are reported as ["RF001"] infos, never errors: refusing an oversized
    union is the engine's documented behaviour, not a defect. *)

val check_query :
  ?schema:Rdf.Schema.t ->
  ?reformulator:Reformulation.Reformulate.t ->
  ?max_terms:int ->
  name:string ->
  Query.Bgp.t ->
  Diagnostic.t list
(** Every diagnostic for [q], in pipeline order.  [reformulator] defaults
    to a fresh engine over [schema] (or the empty schema); [max_terms]
    (default 4096) caps the reformulation size the plan check builds. *)

val check_workload :
  schema:Rdf.Schema.t ->
  (string * Query.Bgp.t) list ->
  (string * Diagnostic.t list) list
(** [check_query] over a named query set (e.g. {!Workloads.Lubm.queries})
    with one shared reformulator, preserving order. *)
