(** Structured diagnostics: the common currency of the static analysis
    layer.

    Every check — the semantic query lint, the Definition 3.3/3.4 cover
    checks and the physical-plan verifier — reports its findings as values
    of {!t}: a severity, a stable machine-readable code (["QL002"],
    ["PV003"], …), a context naming what was analysed (query, fragment,
    operator) and a human message.  Stable codes let the mutation
    self-tests assert {e which} invariant tripped, and let CI grep for
    error-severity findings. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;     (** stable diagnostic code, e.g. ["CV004"] *)
  context : string;  (** what was analysed, e.g. ["lubm:Q02/fragment 1"] *)
  message : string;  (** human-readable explanation *)
}

val error : code:string -> context:string -> string -> t
(** An [Error]-severity diagnostic: the artefact violates an invariant and
    executing it could produce wrong answers. *)

val warning : code:string -> context:string -> string -> t
(** A [Warning]: legal but suspicious — likely wasted work or an empty
    result. *)

val info : code:string -> context:string -> string -> t
(** An [Info]: a noteworthy property, not a defect. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare_severity : severity -> severity -> int
(** Orders [Info < Warning < Error]. *)

val is_error : t -> bool
(** Whether the diagnostic has [Error] severity. *)

val has_errors : t list -> bool
(** Whether any diagnostic in the list has [Error] severity. *)

val errors : t list -> t list
(** The [Error]-severity diagnostics of a list. *)

val to_string : t -> string
(** Human rendering: [severity[CODE] context: message]. *)

val render : t -> string
(** Machine rendering: tab-separated [severity], [code], [context],
    [message] — one diagnostic per line, greppable and parseable. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer using {!to_string}. *)

val summary : t list -> string
(** E.g. ["2 errors, 1 warning, 3 infos"]; ["clean"] when empty. *)

val catalog : (string * string) list
(** Every diagnostic code with a one-line description, in code order —
    the table printed by [rdfqa check --codes] and kept in sync with
    DESIGN.md. *)

val describe : string -> string option
(** The catalog entry for a code, if any. *)
