open Query

(* Soundness of serving a materialized view for a query fragment: the
   stored definition must have exactly the fragment's head (the join
   columns the JUCQ layer wires by name), and the stored contents must
   have been recorded from a reformulation with the fragment's arity and
   union cardinality — the quantities the replayed capacity checks and
   the column wiring depend on.  Key equality is the caller's lookup
   premise; these checks catch a definition that matched the key but is
   not the rewrite the use site would evaluate. *)
let verify_rewrite ~context ~head ~arity ~terms ~(cq : Bgp.t) ~(ucq : Ucq.t) =
  let ds = ref [] in
  let err msg = ds := Diagnostic.error ~code:"RF002" ~context msg :: !ds in
  let fragment_head = Bgp.head_vars cq in
  (* α-renaming is fine (the canonical key identifies variables up to
     renaming); a WIDTH mismatch means the keyed definition cannot be the
     fragment's rewrite — its columns would not even line up. *)
  if List.length head <> List.length fragment_head then
    err
      (Printf.sprintf
         "view head (%s) has %d columns but the fragment head (%s) has %d"
         (String.concat ", " head) (List.length head)
         (String.concat ", " fragment_head)
         (List.length fragment_head));
  if arity <> Ucq.arity ucq then
    err
      (Printf.sprintf
         "view recorded at arity %d but the fragment reformulation has \
          arity %d"
         arity (Ucq.arity ucq));
  if terms <> Ucq.cardinal ucq then
    err
      (Printf.sprintf
         "view recorded from %d union terms but the fragment reformulation \
          has %d"
         terms (Ucq.cardinal ucq));
  List.rev !ds

let verify_freshness ~context ~def_schema ~def_data ~schema ~data =
  if def_schema = schema && def_data = data then []
  else
    [
      Diagnostic.error ~code:"RF003" ~context
        (Printf.sprintf
           "view contents stamped (schema %d, data %d) but the store is at \
            (schema %d, data %d)"
           def_schema def_data schema data);
    ]
