(** Semantic lint of parsed BGP queries and UCQs — layer (1) of the static
    analysis subsystem.

    All checks are purely syntactic/schema-level: nothing is executed and
    no data is consulted.  Against a loaded RDFS schema the lint also
    flags atoms that can only match explicit triples because their
    property or class is unknown to the schema (["QL004"]/["QL005"]) —
    with reformulation-based answering those atoms receive no
    reformulations, which is legal but frequently a typo.  Codes are
    documented in {!Diagnostic.catalog}. *)

val lint :
  ?schema:Rdf.Schema.t -> context:string -> Query.Bgp.t -> Diagnostic.t list
(** Lints one conjunctive query: unbound head variables (["QL001"]),
    cartesian-product bodies (["QL002"]), duplicate atoms (["QL003"]),
    schema-unknown properties and classes (["QL004"], ["QL005"]), literals
    in subject/property position (["QL006"]) and repeated head variables
    (["QL007"]).  Schema checks are skipped when [schema] is absent or
    empty. *)

val lint_ucq :
  ?schema:Rdf.Schema.t ->
  ?redundant:Diagnostic.severity ->
  ?containment_cap:int ->
  context:string ->
  Query.Ucq.t ->
  Diagnostic.t list
(** Lints every disjunct, then reports containment-redundant disjuncts
    (["QL008"]) at severity [redundant] (default [Warning]; reformulations
    are redundant {e by design} — Example 4 — and are linted at [Info]).
    The quadratic containment sweep runs only when the union has at most
    [containment_cap] disjuncts (default 48). *)
