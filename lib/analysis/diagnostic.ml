type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;
  context : string;
  message : string;
}

let make severity ~code ~context message = { severity; code; context; message }
let error ~code ~context message = make Error ~code ~context message
let warning ~code ~context message = make Warning ~code ~context message
let info ~code ~context message = make Info ~code ~context message

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)
let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds

let to_string d =
  Printf.sprintf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code d.context d.message

let render d =
  String.concat "\t"
    [ severity_to_string d.severity; d.code; d.context; d.message ]

let pp fmt d = Format.pp_print_string fmt (to_string d)

let summary ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  let ne = count Error and nw = count Warning and ni = count Info in
  if ne = 0 && nw = 0 && ni = 0 then "clean"
  else
    let part n what = if n = 1 then "1 " ^ what else Printf.sprintf "%d %ss" n what in
    String.concat ", "
      (List.filter
         (fun s -> s <> "")
         [
           (if ne > 0 then part ne "error" else "");
           (if nw > 0 then part nw "warning" else "");
           (if ni > 0 then part ni "info" else "");
         ])

(* One entry per code emitted anywhere in the analysis layer.  The table
   is the reference the DESIGN.md section and the mutation self-tests are
   written against; adding a code without describing it here fails a
   test. *)
let catalog =
  [
    ("QL001", "head term is a variable that does not occur in the body");
    ("QL002", "query body is a cartesian product (disconnected join graph)");
    ("QL003", "duplicate body atom (semantically inert under set semantics)");
    ("QL004", "property URI neither built-in nor declared by the RDFS schema");
    ("QL005", "class URI not declared by the RDFS schema");
    ("QL006", "literal in subject or property position never matches RDF data");
    ("QL007", "repeated variable in the head");
    ("QL008", "containment-redundant disjunct in a union");
    ("QL009", "atom outside the reformulation fragment supported by the rules");
    ("CV001", "empty cover");
    ("CV002", "empty fragment");
    ("CV003", "fragment atom index out of range");
    ("CV004", "body atom not covered by any fragment");
    ("CV005", "fragment included in another fragment");
    ("CV006", "fragment with an internal cartesian product");
    ("CV007", "fragment sharing no variable with the rest of the cover");
    ("PV001", "union members disagree on column arity");
    ("PV002", "fragment join has no shared key column (cartesian join)");
    ("PV003", "shared variable dropped from a cover-query head (lost join key)");
    ("PV004", "cover-query head differs from the Definition 3.4 head");
    ("PV005", "projected head term not available in the input schema");
    ("PV006", "duplicate column name in a join input schema");
    ("PV007", "operator width differs from its declared column schema");
    ("PV008", "plan fragments do not match the cover's fragments");
    ("RF001", "reformulation too large to verify statically (skipped)");
    ("RF002", "materialized view definition is not a sound rewrite of the keyed query fragment");
    ("RF003", "materialized view contents stale (version stamp behind the store) at execution");
    ("CB001", "static lower bound on operations exceeds the budget (provably fails)");
    ("CB002", "static upper bound on operations fits the budget (provably safe)");
    ("CB003", "static lower bound on materialized rows exceeds the profile ceiling");
    ("CB004", "static operation interval straddles the budget (outcome data-dependent)");
    ("CB005", "morsel ranges do not partition the scanned index range");
    ("CB006", "partition function maps a key outside [0, parts)");
    ("CB007", "partitioned merge order differs from the sequential order");
    ("CB008", "charge-replay log count differs from the dispatched morsel count");
    ("CB009", "union term count provably exceeds the profile capacity");
  ]

let describe code = List.assoc_opt code catalog
