(* A fixed pool of worker domains with an atomic work-stealing index.

   One job at a time: the submitting domain publishes a [task] under the
   mutex (bumping [seq] so sleeping workers can tell it from the previous
   job), participates in draining it, then blocks until every index has
   been processed.  Workers sleep on [work] between jobs.  Indexes are
   handed out by [Atomic.fetch_and_add] in chunks, so load balancing needs
   no per-task queueing and the only synchronization on the fast path is
   one atomic add per chunk plus one per finished index. *)

type task = {
  run : int -> unit;  (* must not raise: wrapped by the submitter *)
  n : int;
  chunk : int;
  next : int Atomic.t;  (* next index block to hand out *)
  completed : int Atomic.t;  (* indexes fully processed *)
}

type t = {
  width : int;  (* effective width after the core clamp *)
  requested : int;  (* width the caller asked for *)
  m : Mutex.t;
  work : Condition.t;  (* a new job was published, or [stop] was set *)
  finished : Condition.t;  (* a job's last index completed *)
  mutable seq : int;  (* job generation, guarded by [m] *)
  mutable task : task option;  (* guarded by [m] *)
  mutable stop : bool;  (* guarded by [m] *)
  busy : bool Atomic.t;  (* a job is in flight: reentrant calls run inline *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.width
let requested_jobs t = t.requested
let is_busy t = Atomic.get t.busy

let force_jobs () =
  match Sys.getenv_opt "RDFQA_JOBS_FORCE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Widths above the core count cannot win: domains time-slice and every
   minor collection synchronizes all of them.  Clamp unless the user
   explicitly forces oversubscription (RDFQA_JOBS_FORCE=1). *)
let clamp_width requested =
  let requested = max 1 requested in
  if force_jobs () then requested
  else min requested (max 1 (Domain.recommended_domain_count ()))

let drain pool task =
  let rec loop () =
    let start = Atomic.fetch_and_add task.next task.chunk in
    if start < task.n then begin
      let stop = min task.n (start + task.chunk) in
      for i = start to stop - 1 do
        task.run i;
        Atomic.incr task.completed
      done;
      loop ()
    end
  in
  loop ();
  (* Whoever processed the last index wakes the submitter.  The check and
     the submitter's wait are both under [m], so the wake-up cannot slip
     between its test and its sleep. *)
  if Atomic.get task.completed >= task.n then begin
    Mutex.lock pool.m;
    Condition.broadcast pool.finished;
    Mutex.unlock pool.m
  end

let worker_loop pool =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.seq = !seen do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      seen := pool.seq;
      let task = pool.task in
      Mutex.unlock pool.m;
      (match task with Some tk -> drain pool tk | None -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let requested = max 1 jobs in
  let width = clamp_width requested in
  let pool =
    {
      width;
      requested;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      seq = 0;
      task = None;
      stop = false;
      busy = Atomic.make false;
      domains = [];
    }
  in
  if width > 1 then
    pool.domains <-
      List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Runs [n] indexes through [run] across the pool and waits for all of
   them.  [run] must not raise (the map wrapper catches per task). *)
let run_job pool ~n ~chunk run =
  let task =
    { run; n; chunk; next = Atomic.make 0; completed = Atomic.make 0 }
  in
  Mutex.lock pool.m;
  pool.seq <- pool.seq + 1;
  pool.task <- Some task;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  drain pool task;
  Mutex.lock pool.m;
  while Atomic.get task.completed < n do
    Condition.wait pool.finished pool.m
  done;
  pool.task <- None;
  Mutex.unlock pool.m

(* Process-level pool metrics (lib/metrics): recording is a no-op while
   metrics are disabled, so the map fast path keeps its shape. *)
let m_parallel = Metrics.counter "pool.parallel_runs" ~help:"Maps fanned out across worker domains"
let m_sequential = Metrics.counter "pool.sequential_runs" ~help:"Maps run sequentially (width 1 or single element)"
let m_inline = Metrics.counter "pool.inline_fallbacks" ~help:"Reentrant maps run inline because a job was in flight"
let m_tasks = Metrics.counter "pool.tasks" ~help:"Indexes dispatched to the domain pool"
let g_width = Metrics.gauge "pool.width" ~help:"Effective pool width after the core clamp"
let g_requested = Metrics.gauge "pool.requested" ~help:"Requested pool width"

let parallel_map ?(chunk = 1) pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.width <= 1 || n = 1 then begin
    Metrics.add m_sequential 1;
    Array.map f xs
  end
  else if not (Atomic.compare_and_set pool.busy false true) then begin
    Metrics.add m_inline 1;
    Array.map f xs
  end
  else begin
    Metrics.add m_parallel 1;
    Metrics.add m_tasks n;
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.busy false)
      (fun () ->
        let results = Array.make n None in
        let failure = Atomic.make (-1) in
        let exns = Array.make n None in
        run_job pool ~n ~chunk:(max 1 chunk) (fun i ->
            match f xs.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                exns.(i) <- Some e;
                (* Remember the smallest failing index, so the exception a
                   caller sees is the one sequential left-to-right
                   execution would have raised first. *)
                let rec min_in cur =
                  if (cur = -1 || i < cur)
                     && not (Atomic.compare_and_set failure cur i)
                  then min_in (Atomic.get failure)
                in
                min_in (Atomic.get failure));
        match Atomic.get failure with
        | -1 ->
            Array.map
              (function Some v -> v | None -> assert false)
              results
        | i -> ( match exns.(i) with Some e -> raise e | None -> assert false))
  end

let parallel_fold ?chunk pool ~map ~fold ~init xs =
  Array.fold_left fold init (parallel_map ?chunk pool map xs)

(* ---- process-global pool ---- *)

let recommended_jobs () = Domain.recommended_domain_count ()

let env_jobs () =
  match Sys.getenv_opt "RDFQA_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> 1)

let glock = Mutex.create ()
let requested = ref None
let global = ref None
let exit_hook = ref false

let current_jobs () =
  match !requested with Some j -> j | None -> env_jobs ()

let effective_jobs () = clamp_width (current_jobs ())

let set_jobs j =
  Mutex.lock glock;
  requested := Some (max 1 j);
  Mutex.unlock glock

let get () =
  Mutex.lock glock;
  let width = match !requested with Some j -> j | None -> env_jobs () in
  let pool =
    match !global with
    | Some p when p.requested = width -> p
    | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~jobs:width in
        global := Some p;
        if not !exit_hook then begin
          exit_hook := true;
          (* Workers block on a condition variable between jobs; join them
             before process teardown so no domain outlives the runtime. *)
          at_exit (fun () ->
              Mutex.lock glock;
              let p = !global in
              global := None;
              Mutex.unlock glock;
              match p with Some p -> shutdown p | None -> ())
        end;
        p
  in
  Mutex.unlock glock;
  Metrics.set_gauge g_width (float_of_int pool.width);
  Metrics.set_gauge g_requested (float_of_int pool.requested);
  pool

let shutdown_global () =
  Mutex.lock glock;
  let p = !global in
  global := None;
  Mutex.unlock glock;
  match p with Some p -> shutdown p | None -> ()
