(** Zero-dependency domain pool for the parallel execution layer.

    A pool owns a fixed set of [jobs - 1] worker {!Domain.t}s (the calling
    domain participates too); {!parallel_map} fans an array of independent
    tasks out over them and returns the results {e in input order}, so
    callers can merge deterministically regardless of which domain computed
    what.  With [jobs = 1] (the default) no domain is ever spawned and every
    operation degrades to the plain sequential loop — the hot paths of the
    engine are byte-for-byte unaffected.

    Determinism contract: [parallel_map pool f xs] returns exactly
    [Array.map f xs] whenever each [f xs.(i)] is a pure function of its
    input.  If one or more tasks raise, every task still runs to completion
    (or failure) and the exception of the {e smallest failing index} is
    re-raised — again matching what a sequential left-to-right loop would
    surface first.

    Pools are not reentrant: a task that itself calls {!parallel_map} on a
    busy pool (or any concurrent second caller) gets the sequential
    fallback instead of deadlocking.  This is what keeps nested
    parallelism — e.g. the workload driver answering queries in parallel
    while each answer internally evaluates unions — safe by construction:
    the outermost fan-out wins, inner levels run inline. *)

type t
(** A fixed pool of worker domains. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [width - 1] worker domains, where [width] is
    [jobs] clamped to {!recommended_jobs} — requesting more domains than
    the OS grants cores cannot win (domains time-slice and every minor
    collection synchronizes all of them), so on a 1-core container
    [~jobs:4] degrades to the sequential path instead of oversubscribing.
    Set [RDFQA_JOBS_FORCE=1] to bypass the clamp (e.g. to exercise true
    multi-domain interleavings on a small machine).  [jobs <= 1] spawns
    nothing. *)

val jobs : t -> int
(** The pool's {e effective} parallelism width (including the calling
    domain), after the core clamp. *)

val requested_jobs : t -> int
(** The width the pool was asked for, before the core clamp. *)

val is_busy : t -> bool
(** [true] while a job is in flight on the pool.  A caller seeing [true]
    should take its sequential path: submitting anyway is safe (the pool
    falls back inline) but pointless. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] computes [Array.map f xs] across the pool's
    domains, dispatching indexes in chunks of [chunk] (default 1) from a
    shared atomic counter.  Results come back in input order.  Falls back
    to the sequential loop when [jobs pool <= 1], when [xs] has fewer than
    two elements, or when the pool is already busy (reentrant call). *)

val parallel_fold :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [parallel_fold pool ~map ~fold ~init xs] maps in parallel, then folds
    the results sequentially in input order — a deterministic reduce. *)

(** {1 Process-global pool}

    The engine, the cover-search algorithms and the CLI all share one
    process-global pool sized by [--jobs] / the [RDFQA_JOBS] environment
    variable (default 1).  The pool is created lazily on first use and
    recreated when the requested width changes. *)

val env_jobs : unit -> int
(** The [RDFQA_JOBS] environment value, clamped to [>= 1]; 1 when unset or
    unparsable. *)

val recommended_jobs : unit -> int
(** The number of cores the OS grants this process
    ({!Domain.recommended_domain_count}).  Widths above it still produce
    identical results but cannot speed anything up: domains time-slice and
    every minor collection synchronizes all of them. *)

val set_jobs : int -> unit
(** Overrides the global width (clamped to [>= 1]); takes precedence over
    [RDFQA_JOBS].  The global pool is resized on its next {!get}. *)

val current_jobs : unit -> int
(** The requested global width: the last {!set_jobs} value, else
    {!env_jobs}. *)

val effective_jobs : unit -> int
(** {!current_jobs} after the core clamp — the width the global pool
    actually runs at (honest number for bench/trace metadata). *)

val get : unit -> t
(** The process-global pool at the current width, (re)created on demand.
    Safe to call from any domain. *)

val shutdown_global : unit -> unit
(** Joins and drops the process-global pool, if one exists.  The next
    {!get} recreates it, so this is a drain point (server shutdown, "no
    leaked domains" assertions), not a terminal state.  Idempotent. *)
