(* Static parallel-safety lint: checks the invariants the morsel-driven
   operators rely on for the bit-identical contract — symbolically, on a
   deterministic witness, without running a query.

   The checked invariants (one CB code each):
   - CB005  the morsel dispatch arithmetic tiles the scanned index range
            [0, n) exactly: in-order, gap-free, overlap-free;
   - CB006  the partition function maps every key into [0, parts) and is
            a pure function of the key words (equal keys, equal part);
   - CB007  partitioned duplicate elimination reproduces the sequential
            first-occurrence order of [Relation.dedup];
   - CB008  the charge-replay bookkeeping plans exactly one log per
            dispatched morsel.

   Every checked function is injectable so the mutation self-tests can
   hand in a broken implementation and assert the exact diagnostic; the
   defaults are the real implementations the executor uses. *)

module D = Analysis.Diagnostic

(* The executor's morsel dispatch arithmetic (exec_cq_morsel and the
   partitioned join probe): morsel [m] covers [m*size, min n (m*size+size)). *)
let default_ranges ~n ~morsel =
  let nmorsels = if n <= 0 then 0 else (n + morsel - 1) / morsel in
  Array.init nmorsels (fun m ->
      let lo = m * morsel in
      (lo, min n (lo + morsel)))

(* One replay log per dispatched morsel. *)
let default_log_count ~n ~morsel =
  if n <= 0 then 0 else (n + morsel - 1) / morsel

(* Deterministic witness rows: a fixed LCG, so every run lints the same
   relation and the lint itself is reproducible. *)
let witness_rows ~cols ~n =
  let state = ref 0x2545F491 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  Array.init n (fun _ -> Array.init cols (fun _ -> next () mod 7))

let witness_relation ~cols ~n =
  let rel = Relation.create ~cols in
  Array.iter (Relation.append rel) (witness_rows ~cols ~n);
  rel

let check_ranges ~ranges ~context ~sizes ~n =
  List.concat_map
    (fun morsel ->
      let rs = ranges ~n ~morsel in
      let bad = ref [] in
      let expect_lo = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          if lo <> !expect_lo || hi <= lo || hi > n then
            bad := (lo, hi) :: !bad;
          expect_lo := hi)
        rs;
      if !expect_lo <> n then bad := (!expect_lo, n) :: !bad;
      if !bad = [] then []
      else
        [
          D.error ~code:"CB005" ~context
            (Printf.sprintf
               "morsel ranges do not partition [0, %d) at morsel size %d \
                (first violation at [%d, %d))"
               n morsel
               (fst (List.hd (List.rev !bad)))
               (snd (List.hd (List.rev !bad))));
        ])
    sizes

let check_partition ~partition ~context ~parts_list ~keys =
  List.concat_map
    (fun parts ->
      let out_of_range = ref None and impure = ref false in
      Array.iter
        (fun key ->
          let width = Array.length key in
          let p = partition ~width ~parts key 0 in
          if p < 0 || p >= parts then out_of_range := Some (p, parts);
          (* purity: the same key words at a different offset must land in
             the same partition *)
          let shifted = Array.append [| 0 |] key in
          if partition ~width ~parts shifted 1 <> p then impure := true)
        keys;
      (match !out_of_range with
      | Some (p, parts) ->
          [
            D.error ~code:"CB006" ~context
              (Printf.sprintf
                 "partition function mapped a key to %d, outside [0, %d)" p
                 parts);
          ]
      | None -> [])
      @
      if !impure then
        [
          D.error ~code:"CB006" ~context
            (Printf.sprintf
               "partition function is not a pure function of the key words \
                at parts=%d"
               parts);
        ]
      else [])
    parts_list

let check_dedup ~dedup ~context ~sizes ~width rel =
  let expected = Relation.to_list (Relation.dedup rel) in
  let pool = Par.create ~jobs:width in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  List.concat_map
    (fun morsel ->
      if Relation.to_list (dedup pool ~morsel rel) = expected then []
      else
        [
          D.error ~code:"CB007" ~context
            (Printf.sprintf
               "partitioned dedup order differs from the sequential \
                first-occurrence order at morsel size %d, jobs=%d"
               morsel (Par.jobs pool));
        ])
    sizes

let check_log_count ~ranges ~log_count ~context ~sizes ~n =
  List.concat_map
    (fun morsel ->
      let dispatched = Array.length (ranges ~n ~morsel) in
      let logs = log_count ~n ~morsel in
      if logs = dispatched then []
      else
        [
          D.error ~code:"CB008" ~context
            (Printf.sprintf
               "replay bookkeeping plans %d charge logs for %d dispatched \
                morsels at morsel size %d"
               logs dispatched morsel);
        ])
    sizes

let lint ?(ranges = default_ranges) ?(partition = Morsel.partition_of)
    ?(dedup = fun pool ~morsel rel -> Morsel.dedup pool ~morsel rel)
    ?(log_count = default_log_count) ~context ~profile ?(width = 4) ?(n = 257)
    () =
  let sizes =
    List.sort_uniq compare [ 1; 7; 64; Profile.morsel_size profile; max 1 n ]
  in
  let parts_list = List.sort_uniq compare [ 1; 3; max 1 width ] in
  let keys = witness_rows ~cols:2 ~n:64 in
  let rel = witness_relation ~cols:3 ~n in
  check_ranges ~ranges ~context ~sizes ~n
  @ check_partition ~partition ~context ~parts_list ~keys
  @ check_dedup ~dedup ~context ~sizes ~width rel
  @ check_log_count ~ranges ~log_count ~context ~sizes ~n
