open Query
module Es = Store.Encoded_store

(* The plan cache (below) is keyed by the query's physical identity: a
   JUCQ/UCQ holds on to its disjunct [Bgp.t] values, so re-evaluating a
   prepared statement re-encounters the very same objects.  Equality is
   pointer equality; the hash is a deep-enough structural hash that
   same-shaped disjuncts (which share their first few words) spread over
   the buckets. *)
module Plan_key = struct
  type t = Bgp.t

  let equal = ( == )
  let hash q = Hashtbl.hash_param 64 256 q
end

module Plan_tbl = Hashtbl.Make (Plan_key)

module Ucq_key = struct
  type t = Ucq.t

  let equal = ( == )
  let hash u = Hashtbl.hash_param 16 64 u
end

module Ucq_tbl = Hashtbl.Make (Ucq_key)

type slot = V of int | K of int

type eatom = { es : slot; ep : slot; eo : slot }

type ecq = {
  nvars : int;
  head : slot array;
  atoms : eatom array;
  prop_codes : int option array;  (* constant property code per atom, if any *)
}

type plan = { pcq : ecq; porder : int array }

type t = {
  store : Es.t;
  profile : Profile.t;
  stats : Store.Statistics.t;
  mutable ops : int;
  plans : plan option Plan_tbl.t;
  ucq_plans : plan option array Ucq_tbl.t;  (* one entry per disjunct *)
  mutable plans_version : int;  (* store version the cached plans assume *)
}

let plan_cache_limit = 65_536

let create ?(profile = Profile.postgres_like) store =
  {
    store;
    profile;
    stats = Store.Statistics.create store;
    ops = 0;
    plans = Plan_tbl.create 256;
    ucq_plans = Ucq_tbl.create 64;
    plans_version = Es.version store;
  }

let store t = t.store
let profile t = t.profile
let statistics t = t.stats
let last_operations t = t.ops

let fail t reason =
  raise (Profile.Engine_failure { engine = t.profile.Profile.name; reason })

let charge t n =
  t.ops <- t.ops + n;
  if t.ops > t.profile.Profile.max_operations then
    fail t (Profile.Operation_budget { limit = t.profile.Profile.max_operations })

let check_materialization t rel =
  let rows = Relation.rows rel in
  if rows > t.profile.Profile.max_materialized_rows then
    fail t
      (Profile.Materialization_overflow
         { rows; limit = t.profile.Profile.max_materialized_rows })

(* ---- CQ compilation ---- *)

exception Unsatisfiable  (* a query constant absent from the dictionary *)

let compile t (q : Bgp.t) : ecq =
  let q = Bgp.normalize q in
  let vars = Bgp.vars q in
  let index v =
    let rec go i = function
      | [] -> assert false
      | x :: _ when String.equal x v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 vars
  in
  let slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> (
        match Es.encode_term t.store c with
        | Some code -> K code
        | None -> raise Unsatisfiable)
  in
  (* Head constants are output values, not selections: a schema class that
     never occurs in the data (e.g. an instantiated [q(x, Person)] head)
     must still be producible, so it is encoded on demand. *)
  let head_slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> K (Rdf.Dictionary.encode (Es.dictionary t.store) c)
  in
  let atoms =
    Array.of_list
      (List.map
         (fun (a : Bgp.atom) -> { es = slot a.s; ep = slot a.p; eo = slot a.o })
         q.body)
  in
  let prop_codes =
    Array.map (fun a -> match a.ep with K c -> Some c | V _ -> None) atoms
  in
  {
    nvars = List.length vars;
    head = Array.of_list (List.map head_slot q.head);
    atoms;
    prop_codes;
  }

(* ---- atom ordering (greedy selectivity) ---- *)

(* The access-path code of a slot under the current bindings: a constant's
   code, a bound variable's value, or -1 (the store's wildcard sentinel)
   for an unbound variable — which is exactly the unbound marker in
   [bindings], so no option is ever allocated on the probe path. *)
let slot_code bindings = function K c -> c | V v -> bindings.(v)

(* Planning-time estimate of an atom's output given which variables are
   already bound: the exact count for the constant positions, discounted by
   per-property NDV for each bound variable position. *)
let plan_estimate t (cq : ecq) i (bound : bool array) =
  let a = cq.atoms.(i) in
  let const_only = function K c -> c | V _ -> -1 in
  let base =
    float_of_int
      (Es.count_codes t.store ~s:(const_only a.es) ~p:(const_only a.ep)
         ~o:(const_only a.eo))
  in
  let bound_var = function V v -> bound.(v) | K _ -> false in
  let discount pos =
    if not (bound_var (match pos with `S -> a.es | `O -> a.eo)) then 1.0
    else
      match cq.prop_codes.(i) with
      | Some p ->
          float_of_int
            (Store.Statistics.ndv t.stats ~prop:p
               (match pos with `S -> `Subject | `O -> `Object))
      | None -> 8.0
  in
  let prop_discount = if bound_var a.ep then 16.0 else 1.0 in
  base /. (discount `S *. discount `O *. prop_discount)

let order_atoms t (cq : ecq) =
  let n = Array.length cq.atoms in
  let used = Array.make n false in
  let bound = Array.make cq.nvars false in
  let bind_atom i =
    let mark = function V v -> bound.(v) <- true | K _ -> () in
    mark cq.atoms.(i).es;
    mark cq.atoms.(i).ep;
    mark cq.atoms.(i).eo
  in
  let connected i =
    let has = function V v -> bound.(v) | K _ -> false in
    has cq.atoms.(i).es || has cq.atoms.(i).ep || has cq.atoms.(i).eo
  in
  let order = Array.make n 0 in
  for step = 0 to n - 1 do
    let best = ref (-1) in
    let best_score = ref infinity in
    for i = 0 to n - 1 do
      if not used.(i) then begin
        (* Prefer atoms connected to the bound prefix (avoid products). *)
        let penalty = if step > 0 && not (connected i) then 1e12 else 1.0 in
        let score = plan_estimate t cq i bound *. penalty in
        if score < !best_score then begin
          best_score := score;
          best := i
        end
      end
    done;
    order.(step) <- !best;
    used.(!best) <- true;
    bind_atom !best
  done;
  order

(* ---- CQ execution: index nested loops ---- *)

(* Unifies one atom position against a stored value.  A constant must
   equal it; an unbound variable binds, recording its index in
   [undo.(upos)] so the caller can roll back; a bound variable must agree.
   Top-level on purpose: no closure is allocated per probed triple. *)
let unify bindings undo upos slot value =
  match slot with
  | K c -> c = value
  | V v ->
      if Array.unsafe_get bindings v = -1 then begin
        Array.unsafe_set bindings v value;
        undo.(upos) <- v;
        true
      end
      else Array.unsafe_get bindings v = value

let exec_cq t (p : plan) ~(emit : int array -> unit) =
  let cq = p.pcq in
  let bindings = Array.make (max 1 cq.nvars) (-1) in
  let order = p.porder in
  let natoms = Array.length order in
  let head_buf = Array.make (Array.length cq.head) 0 in
  (* Per-depth rollback slots: level [k] records at most the three
     variables its atom bound in [undo.(3k) .. undo.(3k+2)] (-1 = none).
     Preallocated once — the per-row path allocates nothing. *)
  let undo = Array.make (max 1 (3 * natoms)) (-1) in
  let rec step k =
    if k = natoms then begin
      for j = 0 to Array.length cq.head - 1 do
        head_buf.(j) <-
          (match Array.unsafe_get cq.head j with
          | K c -> c
          | V v -> Array.unsafe_get bindings v)
      done;
      charge t 1;
      emit head_buf
    end
    else begin
      let a = cq.atoms.(order.(k)) in
      let s = slot_code bindings a.es
      and p = slot_code bindings a.ep
      and o = slot_code bindings a.eo in
      (* One index lookup serves both the charge (the per-access unit of
         [max 1 (n/64)] plus one unit per visited id, batched — same total
         as charging ids one by one, so the operation budget trips on the
         same statements) and the iteration. *)
      let sel = Es.select t.store ~s ~p ~o in
      let n = Es.selected_count sel in
      charge t (max 1 (n / 64) + n);
      let base = 3 * k in
      let probe id =
        let ts = Es.unsafe_subject t.store id
        and tp = Es.unsafe_property t.store id
        and tob = Es.unsafe_obj t.store id in
        if
          unify bindings undo base a.es ts
          && unify bindings undo (base + 1) a.ep tp
          && unify bindings undo (base + 2) a.eo tob
        then step (k + 1);
        for j = base to base + 2 do
          let v = undo.(j) in
          if v >= 0 then begin
            bindings.(v) <- -1;
            undo.(j) <- -1
          end
        done
      in
      match sel with
      | Es.Miss -> ()
      | Es.Hit _ ->
          (* Every position is bound and the triple is stored: the match
             is already proved, no reads or unification needed. *)
          step (k + 1)
      | Es.Ids v ->
          for idx = 0 to n - 1 do
            probe (Store.Intvec.unsafe_get v idx)
          done
      | Es.All n ->
          for id = 0 to n - 1 do
            probe id
          done
    end
  in
  step 0

(* Plans (compile + atom order) are pure reads of the store and its
   statistics — neither phase calls [charge] — so memoizing them changes
   nothing about which statements fail or why.  The cache is keyed by the
   query's physical identity (a prepared UCQ/JUCQ re-presents the same
   disjunct objects on every evaluation) and is dropped wholesale when the
   store version moves, since statistics-driven atom orders may shift. *)
let flush_stale_plans t =
  let v = Es.version t.store in
  if v <> t.plans_version then begin
    Plan_tbl.reset t.plans;
    Ucq_tbl.reset t.ucq_plans;
    t.plans_version <- v
  end

let compile_plan t (q : Bgp.t) =
  match compile t q with
  | exception Unsatisfiable -> None
  | cq -> Some { pcq = cq; porder = order_atoms t cq }

let plan_of t (q : Bgp.t) =
  flush_stale_plans t;
  match Plan_tbl.find_opt t.plans q with
  | Some p -> p
  | None ->
      let p = compile_plan t q in
      if Plan_tbl.length t.plans < plan_cache_limit then Plan_tbl.add t.plans q p;
      p

(* UCQ-level plan memoization: one cache probe per fragment evaluation
   covers every disjunct, instead of one structural hash per disjunct. *)
let ucq_plans t (u : Ucq.t) =
  flush_stale_plans t;
  match Ucq_tbl.find_opt t.ucq_plans u with
  | Some ps -> ps
  | None ->
      let ps =
        Array.of_list (List.map (compile_plan t) (Ucq.disjuncts u))
      in
      if Ucq_tbl.length t.ucq_plans < plan_cache_limit then
        Ucq_tbl.add t.ucq_plans u ps;
      ps

let eval_cq_into t (q : Bgp.t) (out : Relation.t) =
  match plan_of t q with
  | None -> ()
  | Some p -> exec_cq t p ~emit:(fun row -> Relation.append out row)

let eval_cq t (q : Bgp.t) =
  t.ops <- 0;
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_cq ~context:"executor/cq" q);
  let out = Relation.create ~cols:(List.length q.Bgp.head) in
  eval_cq_into t q out;
  let result = Relation.dedup out in
  charge t (Relation.rows out);
  result

(* ---- UCQ execution ---- *)

let eval_ucq_fragment t (u : Ucq.t) =
  let terms = Ucq.cardinal u in
  if terms > t.profile.Profile.max_union_terms then
    fail t
      (Profile.Union_capacity
         { terms; limit = t.profile.Profile.max_union_terms });
  let out = Relation.create ~cols:(Ucq.arity u) in
  let emit row = Relation.append out row in
  Array.iter
    (fun p ->
      (match p with None -> () | Some p -> exec_cq t p ~emit);
      check_materialization t out)
    (ucq_plans t u);
  charge t (Relation.rows out);
  let result = Relation.dedup out in
  check_materialization t result;
  result

let eval_ucq t u =
  t.ops <- 0;
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_ucq ~context:"executor/ucq" u);
  eval_ucq_fragment t u

(* ---- joins ---- *)

type named_rel = { columns : string list; rel : Relation.t }

let positions columns names =
  List.map
    (fun v ->
      let rec go i = function
        | [] -> assert false
        | c :: _ when String.equal c v -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 columns)
    names

(* Hash join on the shared columns.  The hash table is built on the
   {e smaller} input and probed with the larger — the accumulated
   multi-fragment join result is usually the larger side, and building on
   it was a classic build-side inversion.  Distinct keys are entries of a
   specialized {!Rowtable}; the build rows sharing a key are chained
   through a [next] array by row index (the entry's payload int is the
   chain head).  Whatever the orientation, the output schema stays
   [a.columns @ b_only] and the work accounting is unchanged: one unit per
   input row on either side plus one per output row — exactly the charges
   of the always-build-on-[b] implementation, so engine-failure behaviour
   is preserved. *)
let hash_join t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = Array.of_list (positions a.columns shared)
  and key_b = Array.of_list (positions b.columns shared)
  and pay_b = Array.of_list (positions b.columns b_only) in
  let na_cols = List.length a.columns in
  let npay = Array.length pay_b in
  let nkeys = Array.length key_a in
  let out = Relation.create ~cols:(na_cols + npay) in
  let buf = Array.make (na_cols + npay) 0 in
  let adata = Relation.unsafe_data a.rel
  and bdata = Relation.unsafe_data b.rel in
  let bcols = Relation.cols b.rel in
  let emit aoff boff =
    charge t 1;
    Array.blit adata aoff buf 0 na_cols;
    for j = 0 to npay - 1 do
      buf.(na_cols + j) <- bdata.(boff + Array.unsafe_get pay_b j)
    done;
    Relation.append out buf
  in
  let build_on_b = Relation.rows b.rel <= Relation.rows a.rel in
  let build_rel, build_key, build_data, build_cols =
    if build_on_b then (b.rel, key_b, bdata, bcols)
    else (a.rel, key_a, adata, na_cols)
  in
  let nbuild = Relation.rows build_rel in
  let tbl = Rowtable.create ~width:nkeys ~capacity:(max 16 nbuild) () in
  let next = Array.make (max 1 nbuild) (-1) in
  let kbuf = Array.make (max 1 nkeys) 0 in
  for i = 0 to nbuild - 1 do
    charge t 1;
    let off = i * build_cols in
    for j = 0 to nkeys - 1 do
      kbuf.(j) <- build_data.(off + Array.unsafe_get build_key j)
    done;
    let e = Rowtable.find_or_add tbl kbuf 0 in
    next.(i) <- Rowtable.value tbl e;
    Rowtable.set_value tbl e i
  done;
  let probe_rel, probe_key =
    if build_on_b then (a.rel, key_a) else (b.rel, key_b)
  in
  Relation.iteri_flat
    (fun _ pdata poff ->
      charge t 1;
      for j = 0 to nkeys - 1 do
        kbuf.(j) <- pdata.(poff + Array.unsafe_get probe_key j)
      done;
      let e = Rowtable.find tbl kbuf 0 in
      if e >= 0 then begin
        let rec chase i =
          if i >= 0 then begin
            if build_on_b then emit poff (i * bcols)
            else emit (i * na_cols) poff;
            chase next.(i)
          end
        in
        chase (Rowtable.value tbl e)
      end)
    probe_rel;
  check_materialization t out;
  { columns = a.columns @ b_only; rel = out }

let block_nested_loop_join t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = Array.of_list (positions a.columns shared)
  and key_b = Array.of_list (positions b.columns shared)
  and pay_b = Array.of_list (positions b.columns b_only) in
  let na_cols = List.length a.columns in
  let out = Relation.create ~cols:(na_cols + Array.length pay_b) in
  let nb = Relation.rows b.rel in
  (* the quadratic rescan of the inner relation is the point of this
     profile; it runs on the flat backing array, no row materialization *)
  let bdata = Relation.unsafe_data b.rel in
  let bcols = Relation.cols b.rel in
  let nkeys = Array.length key_a in
  let npay = Array.length pay_b in
  let buf = Array.make (na_cols + npay) 0 in
  Relation.iteri_flat
    (fun _ adata aoff ->
      charge t nb;
      for i = 0 to nb - 1 do
        let boff = i * bcols in
        let rec matches k =
          k >= nkeys
          || adata.(aoff + Array.unsafe_get key_a k)
             = bdata.(boff + Array.unsafe_get key_b k)
             && matches (k + 1)
        in
        if matches 0 then begin
          Array.blit adata aoff buf 0 na_cols;
          for j = 0 to npay - 1 do
            buf.(na_cols + j) <- bdata.(boff + Array.unsafe_get pay_b j)
          done;
          Relation.append out buf
        end
      done)
    a.rel;
  check_materialization t out;
  { columns = a.columns @ b_only; rel = out }

let join t a b =
  match t.profile.Profile.fragment_join with
  | Profile.Hash_join -> hash_join t a b
  | Profile.Block_nested_loop -> block_nested_loop_join t a b

(* ---- JUCQ execution ---- *)

let eval_jucq t (j : Jucq.t) =
  t.ops <- 0;
  (* Static plan verification (test/debug builds and RDFQA_VERIFY=1): a
     schema or arity violation in a compiled plan must reject the
     statement, not silently produce wrong answers. *)
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_jucq ~context:"executor/jucq" j);
  (* Pre-check the engine's union capacity over all fragments: an RDBMS
     parses the whole statement before executing any of it. *)
  List.iter
    (fun (_, u) ->
      let terms = Ucq.cardinal u in
      if terms > t.profile.Profile.max_union_terms then
        fail t
          (Profile.Union_capacity
             { terms; limit = t.profile.Profile.max_union_terms }))
    j.Jucq.fragments;
  let fragments =
    List.map
      (fun ((cq : Bgp.t), u) ->
        { columns = Bgp.head_vars cq; rel = eval_ucq_fragment t u })
      j.Jucq.fragments
  in
  (* Greedy join order: start from the smallest fragment, then repeatedly
     join the smallest fragment sharing a column with the accumulated
     result — what an RDBMS optimizer does to avoid cartesian products.
     Only when no remaining fragment connects (which a valid cover's join
     graph rules out except through intermediate disconnections) is a true
     product taken. *)
  let joined =
    match
      List.sort
        (fun a b -> Int.compare (Relation.rows a.rel) (Relation.rows b.rel))
        fragments
    with
    | [] -> invalid_arg "Executor.eval_jucq: no fragments"
    | first :: rest ->
        let connected acc f =
          List.exists (fun c -> List.mem c acc.columns) f.columns
        in
        let rec fold acc remaining =
          match remaining with
          | [] -> acc
          | _ ->
              let candidates =
                List.filter (connected acc) remaining
              in
              let pick =
                match candidates with
                | [] -> List.hd remaining
                | c :: cs ->
                    List.fold_left
                      (fun best x ->
                        if Relation.rows x.rel < Relation.rows best.rel then x
                        else best)
                      c cs
              in
              let remaining' = List.filter (fun f -> f != pick) remaining in
              fold (join t acc pick) remaining'
        in
        fold first rest
  in
  (* Project the original head, then deduplicate. *)
  let head_cols =
    List.map
      (function
        | Bgp.Var v -> `Col (List.hd (positions joined.columns [ v ]))
        | Bgp.Const c -> (
            match Es.encode_term t.store c with
            | Some code -> `Const code
            | None ->
                (* Constants in reformulated heads come from the schema, so
                   they are always in the dictionary; encode defensively. *)
                `Const (Rdf.Dictionary.encode (Es.dictionary t.store) c)))
      j.Jucq.head
  in
  (* Head projection fused with duplicate elimination: each joined row is
     projected into [buf] and appended only if its head is new.  The work
     accounting is that of the former materialize-then-dedup pipeline (one
     unit per joined row, then one per pre-dedup projected row — the same
     count), so the same statements fail for the same reasons. *)
  let head_cols = Array.of_list head_cols in
  let nhead = Array.length head_cols in
  let out = Relation.create ~cols:nhead in
  let buf = Array.make nhead 0 in
  let njoined = Relation.rows joined.rel in
  let seen = Rowtable.create ~width:nhead ~capacity:(max 16 njoined) () in
  Relation.iteri_flat
    (fun _ data off ->
      charge t 1;
      for i = 0 to nhead - 1 do
        buf.(i) <-
          (match Array.unsafe_get head_cols i with
          | `Col j' -> data.(off + j')
          | `Const code -> code)
      done;
      if Rowtable.add_if_absent seen buf 0 then Relation.append out buf)
    joined.rel;
  charge t njoined;
  check_materialization t out;
  out

(* ---- decoding ---- *)

let decode t rel =
  let d = Rdf.Dictionary.decode (Es.dictionary t.store) in
  Relation.to_list rel
  |> List.map (fun row -> List.map d (Array.to_list row))
  |> List.sort_uniq (List.compare Rdf.Term.compare)

(* ---- engine-internal cost estimation (the EXPLAIN analogue) ---- *)

let explain_cost t (j : Jucq.t) =
  let p = t.profile in
  let cq_cost (cq : Bgp.t) =
    (* Bottom-up: every atom is an index probe per intermediate row. *)
    let card = Store.Statistics.cq_cardinality t.stats cq in
    let natoms = float_of_int (List.length cq.Bgp.body) in
    (0.05 *. natoms) +. (card *. p.Profile.c_t *. natoms)
  in
  let frag_cost (_, u) =
    let disjuncts = Ucq.disjuncts u in
    let cost = List.fold_left (fun acc cq -> acc +. cq_cost cq) 0.0 disjuncts in
    let card = Store.Statistics.ucq_cardinality t.stats u in
    cost +. (card *. (p.Profile.c_l +. p.Profile.c_m))
  in
  let frag_cards =
    List.map (fun (_, u) -> Store.Statistics.ucq_cardinality t.stats u)
      j.Jucq.fragments
  in
  let join_cost =
    match t.profile.Profile.fragment_join with
    | Profile.Hash_join ->
        List.fold_left ( +. ) 0.0 frag_cards *. p.Profile.c_j
    | Profile.Block_nested_loop ->
        (* quadratic in the two largest inputs, pairwise *)
        let rec pairs = function
          | a :: (b :: _ as rest) -> (a *. b *. p.Profile.c_j /. 64.0) +. pairs rest
          | [ _ ] | [] -> 0.0
        in
        pairs (List.sort compare frag_cards)
  in
  p.Profile.c_db
  +. List.fold_left (fun acc f -> acc +. frag_cost f) 0.0 j.Jucq.fragments
  +. join_cost
