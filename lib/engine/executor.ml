open Query
module Es = Store.Encoded_store

(* The plan cache (below) is keyed by the query's physical identity: a
   JUCQ/UCQ holds on to its disjunct [Bgp.t] values, so re-evaluating a
   prepared statement re-encounters the very same objects.  Equality is
   pointer equality; the hash is a deep-enough structural hash that
   same-shaped disjuncts (which share their first few words) spread over
   the buckets. *)
module Plan_key = struct
  type t = Bgp.t

  let equal = ( == )
  let hash q = Hashtbl.hash_param 64 256 q
end

module Plan_tbl = Hashtbl.Make (Plan_key)

module Ucq_key = struct
  type t = Ucq.t

  let equal = ( == )
  let hash u = Hashtbl.hash_param 16 64 u
end

module Ucq_tbl = Hashtbl.Make (Ucq_key)

type slot = V of int | K of int

type eatom = { es : slot; ep : slot; eo : slot }

type ecq = {
  nvars : int;
  head : slot array;
  atoms : eatom array;
  prop_codes : int option array;  (* constant property code per atom, if any *)
  labels : string array;  (* rendered source atoms, for traces/EXPLAIN *)
}

type plan = {
  pcq : ecq;
  porder : int array;
  pest : float array;
      (* per-depth estimated intermediate cardinality (product of the
         greedy planner's per-step scores) — the "est" column of
         EXPLAIN ANALYZE scan nodes *)
}

type t = {
  store : Es.t;
  profile : Profile.t;
  stats : Store.Statistics.t;
  mutable ops : int;
  mutable total_ops : int;  (* monotonic across statements *)
  mutable statements : int;  (* statements started (incl. failed ones) *)
  mutable last_stats : Obs.Op_stats.t option;  (* last statement's op tree *)
  plans : plan option Plan_tbl.t;
  ucq_plans : plan option array Ucq_tbl.t;  (* one entry per disjunct *)
  mutable plans_version : int;  (* store version the cached plans assume *)
  plan_lock : Mutex.t;
      (* Guards the two plan caches (and [plans_version]): concurrent
         [answer] calls on one executor — e.g. a shared system behind a
         server loop — race only on planning, never on evaluation state,
         which is per-statement.  Compilation happens under the lock; plans
         are pure reads of the store, so serializing them is safe and
         cheap (one lock per statement, not per row). *)
}

let plan_cache_limit = 65_536

let create ?(profile = Profile.postgres_like) store =
  {
    store;
    profile;
    stats = Store.Statistics.create store;
    ops = 0;
    total_ops = 0;
    statements = 0;
    last_stats = None;
    plans = Plan_tbl.create 256;
    ucq_plans = Ucq_tbl.create 64;
    plans_version = Es.data_version store;
    plan_lock = Mutex.create ();
  }

let store t = t.store
let profile t = t.profile
let statistics t = t.stats
let last_operations t = t.ops
let total_operations t = t.total_ops
let statements_run t = t.statements
let last_op_stats t = t.last_stats

(* Process-level totals (lib/metrics), accumulated across every executor in
   the process.  They observe the same events as [ops]/[total_ops] but are
   never read back by the engine: charging, budget checks and the op trees
   depend only on the mutable fields, so totals stay bit-identical whether
   metrics are on or off (tested in test_metrics.ml). *)
let m_operations =
  Metrics.counter "engine.operations" ~help:"Charged engine operations"
let m_statements =
  Metrics.counter "engine.statements" ~help:"Statements started (incl. failed)"
let m_failures =
  Metrics.counter "engine.failures" ~help:"Statements aborted by an engine-profile budget"

(* Statement prologue: reset the per-statement meter, bump the monotonic
   counters, drop the previous statement's op tree.  Charging below feeds
   [total_ops] too, so the cumulative count stays exact even when a
   statement dies mid-flight on a budget violation. *)
let begin_statement t =
  t.ops <- 0;
  t.statements <- t.statements + 1;
  Metrics.add m_statements 1;
  t.last_stats <- None

let fail t reason =
  Metrics.add m_failures 1;
  raise (Profile.Engine_failure { engine = t.profile.Profile.name; reason })

let charge t n =
  t.ops <- t.ops + n;
  t.total_ops <- t.total_ops + n;
  Metrics.add m_operations n;
  if t.ops > t.profile.Profile.max_operations then
    fail t (Profile.Operation_budget { limit = t.profile.Profile.max_operations })

let check_materialization t rel =
  let rows = Relation.rows rel in
  if rows > t.profile.Profile.max_materialized_rows then
    fail t
      (Profile.Materialization_overflow
         { rows; limit = t.profile.Profile.max_materialized_rows })

(* ---- charge logs (record-and-replay) ----

   Determinism is a hard contract: with [--jobs N] the answers, the charge
   totals and the failure points must be bit-identical to sequential
   execution.  The scheme, shared by the disjunct fan-out and the
   intra-operator morsel paths: worker domains run against a {e charge
   log} — a run-length-encoded record of every [charge] call — and a
   local relation; the coordinating domain then merges the results in
   canonical (sequential) order, replaying each log through the real
   [charge].  Budget failures therefore fire on the same charge call,
   with the same [ops]/[total_ops], as they would sequentially.  A worker
   whose local charge sum alone exceeds the budget stops early
   ([Charge_overrun]): since the coordinator's cumulative count at that
   work unit is at least the worker's local count, the replay of the
   truncated log is guaranteed to raise before running off its end, so
   truncation is unobservable. *)

exception Charge_overrun

type charge_log = {
  cvals : Store.Intvec.t;  (* RLE: distinct consecutive charge amounts *)
  ccounts : Store.Intvec.t;  (* RLE: repeat count per amount *)
  mutable clast : int;
  mutable cacc : int;  (* local sum, for the early-stop bound *)
  climit : int;
}

let charge_log limit =
  {
    cvals = Store.Intvec.create ();
    ccounts = Store.Intvec.create ();
    clast = min_int;
    cacc = 0;
    climit = limit;
  }

let record log n =
  if n = log.clast then begin
    let i = Store.Intvec.length log.ccounts - 1 in
    Store.Intvec.set log.ccounts i (Store.Intvec.get log.ccounts i + 1)
  end
  else begin
    Store.Intvec.push log.cvals n;
    Store.Intvec.push log.ccounts 1;
    log.clast <- n
  end;
  log.cacc <- log.cacc + n;
  if log.cacc > log.climit then raise Charge_overrun

(* Replays every recorded charge call individually (not merged): [ops]
   crosses the budget on exactly the call where sequential execution would
   have raised, with the identical [total_ops] at that point. *)
let replay t log =
  for i = 0 to Store.Intvec.length log.cvals - 1 do
    let v = Store.Intvec.get log.cvals i in
    for _ = 1 to Store.Intvec.get log.ccounts i do
      charge t v
    done
  done

(* ---- CQ compilation ---- *)

exception Unsatisfiable  (* a query constant absent from the dictionary *)

let atom_label (a : Bgp.atom) =
  let pt = function
    | Bgp.Var v -> "?" ^ v
    | Bgp.Const c -> Rdf.Term.to_string c
  in
  Printf.sprintf "[%s %s %s]" (pt a.s) (pt a.p) (pt a.o)

let compile t (q : Bgp.t) : ecq =
  let q = Bgp.normalize q in
  let vars = Bgp.vars q in
  let index v =
    let rec go i = function
      | [] -> assert false
      | x :: _ when String.equal x v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 vars
  in
  let slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> (
        match Es.encode_term t.store c with
        | Some code -> K code
        | None -> raise Unsatisfiable)
  in
  (* Head constants are output values, not selections: a schema class that
     never occurs in the data (e.g. an instantiated [q(x, Person)] head)
     must still be producible, so it is encoded on demand. *)
  let head_slot = function
    | Bgp.Var v -> V (index v)
    | Bgp.Const c -> K (Rdf.Dictionary.encode (Es.dictionary t.store) c)
  in
  let atoms =
    Array.of_list
      (List.map
         (fun (a : Bgp.atom) -> { es = slot a.s; ep = slot a.p; eo = slot a.o })
         q.body)
  in
  let prop_codes =
    Array.map (fun a -> match a.ep with K c -> Some c | V _ -> None) atoms
  in
  {
    nvars = List.length vars;
    head = Array.of_list (List.map head_slot q.head);
    atoms;
    prop_codes;
    labels = Array.of_list (List.map atom_label q.body);
  }

(* Interning is idempotent and append-only: terms already in the data keep
   their codes, absent ones get fresh codes that match no triple — answers
   are unaffected, but compilation stops depending on which query ran
   first (an absent body constant now compiles to an empty selection
   instead of [Unsatisfiable], the same charges every run). *)
let intern_constants t (q : Bgp.t) =
  let dict = Es.dictionary t.store in
  let intern = function
    | Bgp.Var _ -> ()
    | Bgp.Const c -> ignore (Rdf.Dictionary.encode dict c)
  in
  List.iter intern q.head;
  List.iter
    (fun (a : Bgp.atom) ->
      intern a.s;
      intern a.p;
      intern a.o)
    q.body

(* ---- atom ordering (greedy selectivity) ---- *)

(* The access-path code of a slot under the current bindings: a constant's
   code, a bound variable's value, or -1 (the store's wildcard sentinel)
   for an unbound variable — which is exactly the unbound marker in
   [bindings], so no option is ever allocated on the probe path. *)
let slot_code bindings = function K c -> c | V v -> bindings.(v)

(* Planning-time estimate of an atom's output given which variables are
   already bound: the exact count for the constant positions, discounted by
   per-property NDV for each bound variable position. *)
let plan_estimate t (cq : ecq) i (bound : bool array) =
  let a = cq.atoms.(i) in
  let const_only = function K c -> c | V _ -> -1 in
  let base =
    float_of_int
      (Es.count_codes t.store ~s:(const_only a.es) ~p:(const_only a.ep)
         ~o:(const_only a.eo))
  in
  let bound_var = function V v -> bound.(v) | K _ -> false in
  let discount pos =
    if not (bound_var (match pos with `S -> a.es | `O -> a.eo)) then 1.0
    else
      match cq.prop_codes.(i) with
      | Some p ->
          float_of_int
            (Store.Statistics.ndv t.stats ~prop:p
               (match pos with `S -> `Subject | `O -> `Object))
      | None -> 8.0
  in
  let prop_discount = if bound_var a.ep then 16.0 else 1.0 in
  base /. (discount `S *. discount `O *. prop_discount)

let order_atoms t (cq : ecq) =
  let n = Array.length cq.atoms in
  let used = Array.make n false in
  let bound = Array.make cq.nvars false in
  let bind_atom i =
    let mark = function V v -> bound.(v) <- true | K _ -> () in
    mark cq.atoms.(i).es;
    mark cq.atoms.(i).ep;
    mark cq.atoms.(i).eo
  in
  let connected i =
    let has = function V v -> bound.(v) | K _ -> false in
    has cq.atoms.(i).es || has cq.atoms.(i).ep || has cq.atoms.(i).eo
  in
  let order = Array.make n 0 in
  (* Cumulative product of the per-step selectivity estimates: the greedy
     planner's own guess at the size of each intermediate result, recorded
     so EXPLAIN ANALYZE can show estimated next to actual per scan depth. *)
  let est = Array.make n 0.0 in
  let cum = ref 1.0 in
  for step = 0 to n - 1 do
    let best = ref (-1) in
    let best_score = ref infinity in
    for i = 0 to n - 1 do
      if not used.(i) then begin
        (* Prefer atoms connected to the bound prefix (avoid products). *)
        let penalty = if step > 0 && not (connected i) then 1e12 else 1.0 in
        let score = plan_estimate t cq i bound *. penalty in
        if score < !best_score then begin
          best_score := score;
          best := i
        end
      end
    done;
    cum := !cum *. plan_estimate t cq !best bound;
    est.(step) <- !cum;
    order.(step) <- !best;
    used.(!best) <- true;
    bind_atom !best
  done;
  (order, est)

(* ---- CQ execution: index nested loops ---- *)

(* Unifies one atom position against a stored value.  A constant must
   equal it; an unbound variable binds, recording its index in
   [undo.(upos)] so the caller can roll back; a bound variable must agree.
   Top-level on purpose: no closure is allocated per probed triple. *)
let unify bindings undo upos slot value =
  match slot with
  | K c -> c = value
  | V v ->
      if Array.unsafe_get bindings v = -1 then begin
        Array.unsafe_set bindings v value;
        undo.(upos) <- v;
        true
      end
      else Array.unsafe_get bindings v = value

(* Optional per-depth scan counters, allocated only while tracing: index
   lookups, ids visited and rows advanced per pipeline level, turned into
   the [IndexScan] chain of the statement's op-stats tree.  The disabled
   path costs one [tr] test per index lookup and per advanced row — no
   allocation, no charge difference (counters never call {!charge}). *)
type cq_counters = {
  probes : int array;  (* index lookups issued at depth k *)
  scanned : int array;  (* candidate ids visited at depth k *)
  advanced : int array;  (* rows depth k passed down to depth k+1 *)
  mutable cq_morsels : int;  (* top-scan morsels dispatched; 0 = sequential *)
  mutable cq_max_morsel_rows : int;  (* largest per-morsel emitted row count *)
}

let fresh_counters natoms =
  {
    probes = Array.make natoms 0;
    scanned = Array.make natoms 0;
    advanced = Array.make natoms 0;
    cq_morsels = 0;
    cq_max_morsel_rows = 0;
  }

(* [?charge] lets the parallel layer substitute a recording sink for the
   engine's budget meter: a worker domain evaluates a disjunct against a
   local charge log (above) instead of the shared executor counters.  The
   default is the real [charge t] — the sequential path pays one indirect
   call per charge and nothing else.

   [?range] restricts the {e driving} (depth-0) selection to the candidate
   indexes [lo, hi) — a morsel of the top scan.  The caller has already
   charged and counted the whole top-level selection exactly once, so a
   ranged run skips the depth-0 select charge and probe/scanned counters;
   everything below depth 0 behaves as usual. *)
let exec_cq t ?counters ?charge:charge_sink ?range (p : plan)
    ~(emit : int array -> unit) =
  let ch = match charge_sink with Some f -> f | None -> charge t in
  let cq = p.pcq in
  let bindings = Array.make (max 1 cq.nvars) (-1) in
  let order = p.porder in
  let natoms = Array.length order in
  let head_buf = Array.make (Array.length cq.head) 0 in
  let tr = counters <> None in
  let ctr =
    match counters with Some c -> c | None -> fresh_counters 0
  in
  (* Per-depth rollback slots: level [k] records at most the three
     variables its atom bound in [undo.(3k) .. undo.(3k+2)] (-1 = none).
     Preallocated once — the per-row path allocates nothing. *)
  let undo = Array.make (max 1 (3 * natoms)) (-1) in
  let rec step k =
    if tr && k > 0 then ctr.advanced.(k - 1) <- ctr.advanced.(k - 1) + 1;
    if k = natoms then begin
      for j = 0 to Array.length cq.head - 1 do
        head_buf.(j) <-
          (match Array.unsafe_get cq.head j with
          | K c -> c
          | V v -> Array.unsafe_get bindings v)
      done;
      ch 1;
      emit head_buf
    end
    else begin
      let a = cq.atoms.(order.(k)) in
      let s = slot_code bindings a.es
      and p = slot_code bindings a.ep
      and o = slot_code bindings a.eo in
      (* One index lookup serves both the charge (the per-access unit of
         [max 1 (n/64)] plus one unit per visited id, batched — same total
         as charging ids one by one, so the operation budget trips on the
         same statements) and the iteration. *)
      let sel = Es.select t.store ~s ~p ~o in
      let n = Es.selected_count sel in
      let ranged = k = 0 && range <> None in
      if not ranged then begin
        ch (max 1 (n / 64) + n);
        if tr then begin
          ctr.probes.(k) <- ctr.probes.(k) + 1;
          ctr.scanned.(k) <- ctr.scanned.(k) + n
        end
      end;
      let base = 3 * k in
      let probe id =
        let ts = Es.unsafe_subject t.store id
        and tp = Es.unsafe_property t.store id
        and tob = Es.unsafe_obj t.store id in
        if
          unify bindings undo base a.es ts
          && unify bindings undo (base + 1) a.ep tp
          && unify bindings undo (base + 2) a.eo tob
        then step (k + 1);
        for j = base to base + 2 do
          let v = undo.(j) in
          if v >= 0 then begin
            bindings.(v) <- -1;
            undo.(j) <- -1
          end
        done
      in
      match sel with
      | Es.Miss -> ()
      | Es.Hit _ ->
          (* Every position is bound and the triple is stored: the match
             is already proved, no reads or unification needed. *)
          step (k + 1)
      | Es.Ids v ->
          let lo, hi =
            match range with
            | Some (lo, hi) when ranged -> (lo, min n hi)
            | _ -> (0, n)
          in
          for idx = lo to hi - 1 do
            probe (Store.Intvec.unsafe_get v idx)
          done
      | Es.All n ->
          let lo, hi =
            match range with
            | Some (lo, hi) when ranged -> (lo, min n hi)
            | _ -> (0, n)
          in
          for id = lo to hi - 1 do
            probe id
          done
    end
  in
  step 0

(* ---- morsel-partitioned top-level scan ---- *)

(* Splits the driving (depth-0) index selection of a CQ pipeline into
   fixed-size morsels dispatched over the pool's atomic chunk counter.
   Each worker runs the whole nested-loop pipeline over its sub-range of
   the top selection into a private relation and charge log (plus private
   scan counters when tracing); the coordinator then, in morsel-index
   order, replays each log through the real budget meter and re-emits
   each private relation's rows.  The emitted row order, every charge
   value and any budget-failure point are therefore bit-identical to the
   sequential scan.  The coordinator itself accounts for the top-level
   selection — one charge of [max 1 (n/64) + n], one probe — exactly
   once, as the sequential path does. *)
let exec_cq_morsel t pool ?counters ~msize ~n (p : plan) ~emit =
  let cq = p.pcq in
  let natoms = Array.length p.porder in
  let tr = counters <> None in
  let w = Array.length cq.head in
  charge t (max 1 (n / 64) + n);
  (match counters with
  | Some c ->
      c.probes.(0) <- c.probes.(0) + 1;
      c.scanned.(0) <- c.scanned.(0) + n
  | None -> ());
  let nmorsels = (n + msize - 1) / msize in
  let results =
    Par.parallel_map pool
      (fun m ->
        let lo = m * msize in
        let hi = min n (lo + msize) in
        let rel = Relation.create ~cols:w in
        let log = charge_log t.profile.Profile.max_operations in
        let ctr = if tr then Some (fresh_counters (max 1 natoms)) else None in
        (try
           exec_cq t ?counters:ctr ~charge:(record log) ~range:(lo, hi) p
             ~emit:(fun row -> Relation.append rel row)
         with Charge_overrun -> ());
        (rel, log, ctr))
      (Array.init nmorsels Fun.id)
  in
  (* Counter totals merge before the replays: a replay that dies on the
     budget then still leaves honest (if not call-exact) partial scan
     counters, and successful statements get exactly the sequential
     totals — the morsel ranges partition the top selection. *)
  (match counters with
  | Some tot ->
      tot.cq_morsels <- tot.cq_morsels + nmorsels;
      Array.iter
        (fun (rel, _, ctr) ->
          (match ctr with
          | Some c ->
              for k = 0 to max 1 natoms - 1 do
                tot.probes.(k) <- tot.probes.(k) + c.probes.(k);
                tot.scanned.(k) <- tot.scanned.(k) + c.scanned.(k);
                tot.advanced.(k) <- tot.advanced.(k) + c.advanced.(k)
              done
          | None -> ());
          tot.cq_max_morsel_rows <-
            max tot.cq_max_morsel_rows (Relation.rows rel))
        results
  | None -> ());
  let buf = Array.make w 0 in
  Array.iter
    (fun (rel, log, _) ->
      replay t log;
      Relation.iteri_flat
        (fun _ data off ->
          Array.blit data off buf 0 w;
          emit buf)
        rel)
    results

(* Statement-level CQ execution: morsel-parallel when the pool is wide and
   idle and the driving selection is big enough to split; the sequential
   [exec_cq] otherwise (which is bit-identical by construction).  Worker-
   side disjunct evaluation never lands here — it records into a charge
   log and runs while the pool is busy with the disjunct fan-out. *)
let exec_cq_auto t ?counters (p : plan) ~emit =
  let pool = Par.get () in
  if Par.jobs pool <= 1 || Par.is_busy pool || Array.length p.porder = 0 then
    exec_cq t ?counters p ~emit
  else begin
    let msize = Profile.morsel_size t.profile in
    let a = p.pcq.atoms.(p.porder.(0)) in
    let code = function K c -> c | V _ -> -1 in
    match Es.select t.store ~s:(code a.es) ~p:(code a.ep) ~o:(code a.eo) with
    | (Es.Ids _ | Es.All _) as sel when Es.selected_count sel > msize ->
        exec_cq_morsel t pool ?counters ~msize ~n:(Es.selected_count sel) p
          ~emit
    | _ -> exec_cq t ?counters p ~emit
  end

(* Plans (compile + atom order) are pure reads of the store and its
   statistics — neither phase calls [charge] — so memoizing them changes
   nothing about which statements fail or why.  The cache is keyed by the
   query's physical identity (a prepared UCQ/JUCQ re-presents the same
   disjunct objects on every evaluation) and is dropped wholesale when the
   store's data version moves, since statistics-driven atom orders may
   shift; schema-only changes touch no facts and keep the plans valid. *)
let flush_stale_plans t =
  let v = Es.data_version t.store in
  if v <> t.plans_version then begin
    Plan_tbl.reset t.plans;
    Ucq_tbl.reset t.ucq_plans;
    t.plans_version <- v
  end

let compile_plan t (q : Bgp.t) =
  match compile t q with
  | exception Unsatisfiable -> None
  | cq ->
      let porder, pest = order_atoms t cq in
      Some { pcq = cq; porder; pest }

let with_plan_lock t f =
  Mutex.lock t.plan_lock;
  match f () with
  | v ->
      Mutex.unlock t.plan_lock;
      v
  | exception e ->
      Mutex.unlock t.plan_lock;
      raise e

let plan_of t (q : Bgp.t) =
  with_plan_lock t @@ fun () ->
  flush_stale_plans t;
  match Plan_tbl.find_opt t.plans q with
  | Some p -> p
  | None ->
      let p = compile_plan t q in
      if Plan_tbl.length t.plans < plan_cache_limit then Plan_tbl.add t.plans q p;
      p

(* UCQ-level plan memoization: one cache probe per fragment evaluation
   covers every disjunct, instead of one structural hash per disjunct.
   Always called on the coordinating domain, before any fan-out: workers
   receive compiled plans and never touch the caches, the statistics or
   the dictionary. *)
let ucq_plans t (u : Ucq.t) =
  with_plan_lock t @@ fun () ->
  flush_stale_plans t;
  match Ucq_tbl.find_opt t.ucq_plans u with
  | Some ps -> ps
  | None ->
      let ps =
        Array.of_list (List.map (compile_plan t) (Ucq.disjuncts u))
      in
      if Ucq_tbl.length t.ucq_plans < plan_cache_limit then
        Ucq_tbl.add t.ucq_plans u ps;
      ps

(* ---- static cost oracle ----

   Everything {!Analysis.Cost_verify} needs to know about this engine's
   compiled plans, packaged store-agnostically: per atom of the planned
   join order, the exact store count of its constant positions and
   whether its variable positions are pairwise distinct.  Reads only the
   plan caches and the store's count indexes — never charges. *)
let static_cq_info t (q : Bgp.t) =
  match plan_of t q with
  | None -> Analysis.Cost_verify.Unsat
  | Some p ->
      let const_only = function K c -> c | V _ -> -1 in
      Analysis.Cost_verify.Atoms
        (Array.init (Array.length p.porder) (fun k ->
             let a = p.pcq.atoms.(p.porder.(k)) in
             let count =
               Es.count_codes t.store ~s:(const_only a.es)
                 ~p:(const_only a.ep) ~o:(const_only a.eo)
             in
             let vs =
               List.filter_map
                 (function V v -> Some v | K _ -> None)
                 [ a.es; a.ep; a.eo ]
             in
             {
               Analysis.Cost_verify.atom_count = count;
               distinct_vars =
                 List.length vs = List.length (List.sort_uniq Int.compare vs);
             }))

let cost_oracle t =
  {
    Analysis.Cost_verify.cq_info = static_cq_info t;
    join =
      (match t.profile.Profile.fragment_join with
      | Profile.Hash_join -> Analysis.Cost_verify.Hash
      | Profile.Block_nested_loop -> Analysis.Cost_verify.Block_nested_loop);
    max_union_terms = t.profile.Profile.max_union_terms;
    max_materialized_rows = t.profile.Profile.max_materialized_rows;
    max_operations = t.profile.Profile.max_operations;
  }

(* The pre-execution admission gate: when cost verification is enabled
   (RDFQA_VERIFY_COST / [Cost_verify.set_enabled]), statements whose
   static analysis proves a failure are rejected before any charge. *)
let admit ?budget ~context t stmt =
  Analysis.Cost_verify.check_exn (fun () ->
      Analysis.Cost_verify.admission (cost_oracle t) ?budget ~context stmt)

(* Builds the [IndexScan] chain of a finished CQ pipeline under [parent]:
   the driving scan on top, each probed atom nested below it, estimated
   cardinalities from the greedy planner's own per-step scores. *)
let attach_scan_chain (p : plan) ctr parent =
  (* Parallelism degree of the pipeline's driving scan, surfaced on the
     CQ node: morsels dispatched and the largest per-morsel output. *)
  parent.Obs.Op_stats.morsels <- parent.Obs.Op_stats.morsels + ctr.cq_morsels;
  parent.Obs.Op_stats.max_worker_rows <-
    max parent.Obs.Op_stats.max_worker_rows ctr.cq_max_morsel_rows;
  let natoms = Array.length p.porder in
  let rec build k =
    if k >= natoms then None
    else begin
      let node =
        Obs.Op_stats.make
          ~label:p.pcq.labels.(p.porder.(k))
          ~est_rows:p.pest.(k) Obs.Op_stats.Index_scan
      in
      node.Obs.Op_stats.rows_in <- ctr.scanned.(k);
      node.Obs.Op_stats.index_probes <- ctr.probes.(k);
      node.Obs.Op_stats.rows_out <- ctr.advanced.(k);
      (match build (k + 1) with
      | Some child -> Obs.Op_stats.add_child node child
      | None -> ());
      Some node
    end
  in
  match build 0 with
  | Some n -> Obs.Op_stats.add_child parent n
  | None -> ()

(* [exec_cq] with the scan chain attached under [stats] — even when the
   statement dies mid-pipeline, so failed statements keep a partial
   EXPLAIN.  With [stats = None] this is exactly [exec_cq]. *)
let exec_cq_traced t ?stats p ~emit =
  match stats with
  | None -> exec_cq_auto t p ~emit
  | Some parent ->
      let ctr = fresh_counters (max 1 (Array.length p.porder)) in
      Fun.protect
        ~finally:(fun () -> attach_scan_chain p ctr parent)
        (fun () -> exec_cq_auto t ~counters:ctr p ~emit)

(* Duplicate elimination at statement level: partitioned parallel dedup
   with the first-occurrence order of [Relation.dedup], sequential
   fallback when the pool is narrow or busy.  Charges nothing — the call
   sites keep their own bulk charges, so the charge stream is unchanged. *)
let dedup_rel ?stats t rel =
  Morsel.dedup ?stats (Par.get ())
    ~morsel:(Profile.morsel_size t.profile)
    rel

(* ---- materialized fragment snapshots (the view tier's execution half) ----

   A {e fragment snapshot} is the record-and-replay image of one fragment
   UCQ evaluation: per-disjunct charge logs, the cumulative pre-dedup row
   counts the per-disjunct materialization checks observe, and the
   deduplicated result relation.  Recording never touches the recording
   engine's meters (charges go to private, unbounded logs); replaying
   through the real {!charge} on a using engine reproduces, observable
   for observable, what {!eval_ucq_fragment} would have done for a
   structurally identical UCQ on the same store state — the same charge
   stream, the same budget-failure point, the same materialization
   checks, the same rows in the same order.  This is what lets a
   materialized view stand in for a fragment's reformulate+scan pipeline
   without perturbing any engine-profile semantics: charges depend only
   on the store's selections and the statistics-driven plan order, never
   on the profile, so one snapshot serves every profile (each applies its
   own limits at replay time). *)

type fragment_snapshot = {
  fs_terms : int;  (* [Ucq.cardinal] at record time *)
  fs_arity : int;
  fs_logs : charge_log array;  (* one untruncated log per disjunct *)
  fs_cum : int array;  (* accumulated pre-dedup rows after each disjunct *)
  fs_pre : int;  (* total pre-dedup rows *)
  fs_rel : Relation.t;  (* deduplicated result; never mutated *)
}

let snapshot_rows s = Relation.rows s.fs_rel
let snapshot_terms s = s.fs_terms
let snapshot_arity s = s.fs_arity

let snapshot_bytes s =
  let log_words =
    Array.fold_left
      (fun acc l -> acc + (2 * Store.Intvec.length l.cvals) + 4)
      0 s.fs_logs
  in
  8
  * ((Relation.rows s.fs_rel * Relation.cols s.fs_rel)
    + log_words + Array.length s.fs_cum + 8)

(* Forces plan compilation for a fragment, including the on-demand
   dictionary encoding of reformulation-head constants [compile] performs.
   Charge-free.  The view layer calls this for {e every} candidate
   fragment before recording any snapshot: compile-time encodes grow the
   dictionary, and a body constant that is absent compiles to no plan
   (zero charges) while the same constant present-but-empty scans one
   empty selection (one charge) — so recorded charge streams are only
   stable once all such encodes have happened. *)
let prepare_fragment t (u : Ucq.t) = ignore (ucq_plans t u)

(* Materializes one fragment UCQ into a snapshot.  Sequential on purpose:
   the plain [exec_cq] per disjunct is the canonical charge stream the
   morsel and fan-out paths are bit-identical to.  The recording engine's
   own counters are untouched — materialization is charge-invisible, so a
   workload's operation totals are identical with the view tier on or
   off. *)
let record_fragment t (u : Ucq.t) =
  let plans = ucq_plans t u in
  let n = Array.length plans in
  let out = Relation.create ~cols:(Ucq.arity u) in
  let logs = Array.init n (fun _ -> charge_log max_int) in
  let cum = Array.make n 0 in
  Array.iteri
    (fun i p ->
      (match p with
      | None -> ()
      | Some p ->
          exec_cq t
            ~charge:(record logs.(i))
            p
            ~emit:(fun row -> Relation.append out row));
      cum.(i) <- Relation.rows out)
    plans;
  {
    fs_terms = Ucq.cardinal u;
    fs_arity = Ucq.arity u;
    fs_logs = logs;
    fs_cum = cum;
    fs_pre = Relation.rows out;
    fs_rel = Relation.dedup out;
  }

(* Count-only materialization ceiling check: what [check_materialization]
   would have said about a relation a replay does not rebuild. *)
let check_rows t rows =
  if rows > t.profile.Profile.max_materialized_rows then
    fail t
      (Profile.Materialization_overflow
         { rows; limit = t.profile.Profile.max_materialized_rows })

(* Replays a snapshot on a using engine, mirroring [eval_ucq_fragment]
   observable for observable: the union-capacity pre-check with the using
   profile, each disjunct's charges followed by the cumulative
   materialization check, the epilogue's pre-dedup bulk charge, and the
   post-dedup ceiling check. *)
let replay_fragment_snapshot t (s : fragment_snapshot) =
  if s.fs_terms > t.profile.Profile.max_union_terms then
    fail t
      (Profile.Union_capacity
         { terms = s.fs_terms; limit = t.profile.Profile.max_union_terms });
  Array.iteri
    (fun i log ->
      replay t log;
      check_rows t s.fs_cum.(i))
    s.fs_logs;
  charge t s.fs_pre;
  check_rows t (Relation.rows s.fs_rel);
  s.fs_rel

let eval_cq t (q : Bgp.t) =
  begin_statement t;
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_cq ~context:"executor/cq" q);
  admit ~context:"executor/cq" t (Analysis.Cost_verify.Cq q);
  Obs.Span.with_ "exec.cq" @@ fun sp ->
  let tr = Obs.enabled () in
  let out = Relation.create ~cols:(List.length q.Bgp.head) in
  let root =
    if tr then
      Some (Obs.Op_stats.make ~label:(Bgp.to_string q) Obs.Op_stats.Cq)
    else None
  in
  (match plan_of t q with
  | None -> ()
  | Some p ->
      exec_cq_traced t ?stats:root p ~emit:(fun row -> Relation.append out row));
  let pre = Relation.rows out in
  let dedup_node =
    match root with
    | None -> None
    | Some _ ->
        Some (Obs.Op_stats.make ~label:"set semantics" Obs.Op_stats.Dedup)
  in
  let result = dedup_rel ?stats:dedup_node t out in
  charge t pre;
  (match root with
  | None -> ()
  | Some node ->
      let est = Store.Statistics.cq_cardinality t.stats q in
      let rows = Relation.rows result in
      node.Obs.Op_stats.rows_out <- pre;
      node.Obs.Op_stats.est_rows <- est;
      let dedup = Option.get dedup_node in
      dedup.Obs.Op_stats.est_rows <- est;
      dedup.Obs.Op_stats.rows_in <- pre;
      dedup.Obs.Op_stats.rows_out <- rows;
      dedup.Obs.Op_stats.work_units <- pre;
      Obs.Op_stats.add_child dedup node;
      Obs.record_estimate ~label:"cq" ~est ~actual:(float_of_int rows);
      t.last_stats <- Some dedup;
      Obs.Span.set sp "rows" (string_of_int rows);
      Obs.Span.set sp "ops" (string_of_int t.ops));
  result

(* ---- UCQ execution ---- *)

(* Shared epilogue of the sequential and parallel fragment paths: charge
   one unit per accumulated pre-dedup row, deduplicate, enforce the
   materialization ceiling, and (when tracing) close the fragment's
   op-stats subtree — a Dedup root over the Union node. *)
let fragment_epilogue t ~label (u : Ucq.t) union_node out =
  charge t (Relation.rows out);
  let dedup_node =
    match union_node with
    | None -> None
    | Some _ ->
        Some
          (Obs.Op_stats.make
             ~label:(if label = "" then "set semantics" else label)
             Obs.Op_stats.Dedup)
  in
  let result = dedup_rel ?stats:dedup_node t out in
  check_materialization t result;
  match union_node with
  | None -> (result, None)
  | Some un ->
      let est = Store.Statistics.ucq_cardinality t.stats u in
      let pre = Relation.rows out in
      let rows = Relation.rows result in
      un.Obs.Op_stats.rows_out <- pre;
      un.Obs.Op_stats.est_rows <- est;
      let dd = Option.get dedup_node in
      dd.Obs.Op_stats.est_rows <- est;
      dd.Obs.Op_stats.rows_in <- pre;
      dd.Obs.Op_stats.rows_out <- rows;
      dd.Obs.Op_stats.work_units <- pre;
      Obs.Op_stats.add_child dd un;
      Obs.record_estimate
        ~label:(if label = "" then "ucq" else label)
        ~est ~actual:(float_of_int rows);
      (result, Some dd)

(* Evaluates one fragment UCQ; when tracing, also returns the fragment's
   op-stats subtree (Dedup over Union over per-disjunct CQ pipelines),
   labelled [label].  The charge sequence is byte-for-byte that of the
   untraced path: tracing only reads counters, it never charges. *)
let eval_ucq_fragment t ?(label = "") (u : Ucq.t) =
  let terms = Ucq.cardinal u in
  if terms > t.profile.Profile.max_union_terms then
    fail t
      (Profile.Union_capacity
         { terms; limit = t.profile.Profile.max_union_terms });
  let tr = Obs.enabled () in
  let out = Relation.create ~cols:(Ucq.arity u) in
  let emit row = Relation.append out row in
  let union_node =
    if tr then
      Some
        (Obs.Op_stats.make
           ~label:(Printf.sprintf "%d disjuncts" terms)
           Obs.Op_stats.Union)
    else None
  in
  let disjuncts = if tr then Array.of_list (Ucq.disjuncts u) else [||] in
  Array.iteri
    (fun i p ->
      (match p with
      | None -> ()
      | Some p -> (
          match union_node with
          | None -> exec_cq_auto t p ~emit
          | Some un ->
              let before = Relation.rows out in
              let cq = disjuncts.(i) in
              let est = Store.Statistics.cq_cardinality t.stats cq in
              let cqn =
                Obs.Op_stats.make ~label:(Bgp.to_string cq) ~est_rows:est
                  Obs.Op_stats.Cq
              in
              Obs.Op_stats.add_child un cqn;
              exec_cq_traced t ~stats:cqn p ~emit;
              cqn.Obs.Op_stats.rows_out <- Relation.rows out - before;
              Obs.record_estimate ~label:"cq" ~est
                ~actual:(float_of_int cqn.Obs.Op_stats.rows_out)));
      check_materialization t out)
    (ucq_plans t u);
  fragment_epilogue t ~label u union_node out

(* ---- parallel UCQ/JUCQ evaluation ----

   Disjunct fan-out over the pool, under the record-and-replay scheme
   documented at the charge-log machinery above. *)

type disjunct_result = {
  drel : Relation.t;  (* the disjunct's rows, in emission order *)
  dlog : charge_log;
  dctr : cq_counters option;  (* scan counters, when tracing *)
}

(* The worker-side task: pure with respect to the executor (only immutable
   snapshot reads of the store; charges go to the local log, rows to a
   local relation, scan counters to a local record).  Runs on any domain. *)
let eval_disjunct t ~cols ~tracing (p : plan option) =
  let rel = Relation.create ~cols in
  let log = charge_log t.profile.Profile.max_operations in
  let ctr =
    match (tracing, p) with
    | true, Some p -> Some (fresh_counters (max 1 (Array.length p.porder)))
    | _ -> None
  in
  (match p with
  | None -> ()
  | Some p -> (
      try
        exec_cq t ?counters:ctr ~charge:(record log) p ~emit:(fun row ->
            Relation.append rel row)
      with Charge_overrun -> ()));
  { drel = rel; dlog = log; dctr = ctr }

let append_rows out rel =
  Relation.iteri_flat (fun _ data off -> Relation.append_slice out data off) rel

(* Coordinator-side merge of pre-evaluated disjuncts, in canonical
   (sequential) order.  Mirrors [eval_ucq_fragment] observable-for-
   observable: replayed charges, per-disjunct materialization checks, the
   op-stats tree and the estimate stream all happen in the same order with
   the same values. *)
let merge_fragment t ?(label = "") (u : Ucq.t) (plans : plan option array)
    (results : disjunct_result array) =
  let tr = Obs.enabled () in
  let out = Relation.create ~cols:(Ucq.arity u) in
  let union_node =
    if tr then
      Some
        (Obs.Op_stats.make
           ~label:(Printf.sprintf "%d disjuncts" (Ucq.cardinal u))
           Obs.Op_stats.Union)
    else None
  in
  let disjuncts = if tr then Array.of_list (Ucq.disjuncts u) else [||] in
  Array.iteri
    (fun i p ->
      (match p with
      | None -> ()
      | Some plan -> (
          let d = results.(i) in
          match union_node with
          | None ->
              replay t d.dlog;
              append_rows out d.drel
          | Some un ->
              let cq = disjuncts.(i) in
              let est = Store.Statistics.cq_cardinality t.stats cq in
              let cqn =
                Obs.Op_stats.make ~label:(Bgp.to_string cq) ~est_rows:est
                  Obs.Op_stats.Cq
              in
              Obs.Op_stats.add_child un cqn;
              (* As in the sequential traced path, the scan chain is
                 attached even when the replay dies on the budget — failed
                 statements keep a partial EXPLAIN. *)
              Fun.protect
                ~finally:(fun () ->
                  match d.dctr with
                  | Some ctr -> attach_scan_chain plan ctr cqn
                  | None -> ())
                (fun () -> replay t d.dlog);
              append_rows out d.drel;
              cqn.Obs.Op_stats.rows_out <- Relation.rows d.drel;
              Obs.record_estimate ~label:"cq" ~est
                ~actual:(float_of_int (Relation.rows d.drel))));
      check_materialization t out)
    plans;
  fragment_epilogue t ~label u union_node out

(* Parallel counterpart of [eval_ucq_fragment]: compile on the coordinator,
   fan the disjuncts out over the pool, merge in order. *)
let eval_ucq_fragment_par t pool ?(label = "") (u : Ucq.t) =
  let terms = Ucq.cardinal u in
  if terms > t.profile.Profile.max_union_terms then
    fail t
      (Profile.Union_capacity
         { terms; limit = t.profile.Profile.max_union_terms });
  let plans = ucq_plans t u in
  let tr = Obs.enabled () in
  let cols = Ucq.arity u in
  let results =
    Par.parallel_map pool (eval_disjunct t ~cols ~tracing:tr) plans
  in
  merge_fragment t ~label u plans results

let eval_ucq t u =
  begin_statement t;
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_ucq ~context:"executor/ucq" u);
  admit ~context:"executor/ucq" t (Analysis.Cost_verify.Ucq u);
  Obs.Span.with_ "exec.ucq" @@ fun sp ->
  let pool = Par.get () in
  let result, tree =
    if Par.jobs pool <= 1 || Ucq.cardinal u <= 1 then
      eval_ucq_fragment t ~label:"ucq" u
    else eval_ucq_fragment_par t pool ~label:"ucq" u
  in
  (match tree with
  | None -> ()
  | Some dd ->
      t.last_stats <- Some dd;
      Obs.Span.set sp "union_terms" (string_of_int (Ucq.cardinal u));
      Obs.Span.set sp "rows" (string_of_int (Relation.rows result));
      Obs.Span.set sp "ops" (string_of_int t.ops));
  result

(* ---- joins ---- *)

type named_rel = { columns : string list; rel : Relation.t }

let positions columns names =
  List.map
    (fun v ->
      let rec go i = function
        | [] -> assert false
        | c :: _ when String.equal c v -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 columns)
    names

(* Hash join on the shared columns.  The hash table is built on the
   {e smaller} input and probed with the larger — the accumulated
   multi-fragment join result is usually the larger side, and building on
   it was a classic build-side inversion.  Distinct keys are entries of a
   specialized {!Rowtable}; the build rows sharing a key are chained
   through a [next] array by row index (the entry's payload int is the
   chain head).  Whatever the orientation, the output schema stays
   [a.columns @ b_only] and the work accounting is unchanged: one unit per
   input row on either side plus one per output row — exactly the charges
   of the always-build-on-[b] implementation, so engine-failure behaviour
   is preserved. *)
let hash_join ?stats t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = Array.of_list (positions a.columns shared)
  and key_b = Array.of_list (positions b.columns shared)
  and pay_b = Array.of_list (positions b.columns b_only) in
  let na_cols = List.length a.columns in
  let npay = Array.length pay_b in
  let nkeys = Array.length key_a in
  let out = Relation.create ~cols:(na_cols + npay) in
  let adata = Relation.unsafe_data a.rel
  and bdata = Relation.unsafe_data b.rel in
  let bcols = Relation.cols b.rel in
  let build_on_b = Relation.rows b.rel <= Relation.rows a.rel in
  let build_rel, build_key, build_data, build_cols =
    if build_on_b then (b.rel, key_b, bdata, bcols)
    else (a.rel, key_a, adata, na_cols)
  in
  let nbuild = Relation.rows build_rel in
  let probe_rel, probe_key =
    if build_on_b then (a.rel, key_a) else (b.rel, key_b)
  in
  let nprobe = Relation.rows probe_rel in
  (* Projects one (probe offset, build row) match into a row of [dst]. *)
  let emit_pair dst buf poff i =
    let aoff, boff =
      if build_on_b then (poff, i * bcols) else (i * na_cols, poff)
    in
    Array.blit adata aoff buf 0 na_cols;
    for j = 0 to npay - 1 do
      buf.(na_cols + j) <- bdata.(boff + Array.unsafe_get pay_b j)
    done;
    Relation.append dst buf
  in
  let pool = Par.get () in
  let msize = Profile.morsel_size t.profile in
  if Par.jobs pool > 1 && (not (Par.is_busy pool)) && nprobe > msize
     && nbuild > 0
  then begin
    (* ---- partitioned path ----
       (a) The build side's budget charges, issued exactly as the
       sequential build loop issues them — they are its only observable
       effects, so a budget trip mid-build fires at the identical call. *)
    for _ = 1 to nbuild do
      charge t 1
    done;
    (* (b) Radix-partitioned build: worker [pid] scans every build row in
       global order and inserts those whose key hashes to its partition,
       so each key's bucket chain is exactly the sequential chain (LIFO by
       global build-row index).  [next] is shared — a row index is written
       by the one partition owning its key, so writes are disjoint and the
       fan-out barrier publishes them.  Per-partition insert/collision
       counts sum to the sequential totals: each distinct key lives in
       exactly one partition. *)
    let parts = Par.jobs pool in
    let next = Array.make (max 1 nbuild) (-1) in
    let builds =
      Par.parallel_map pool
        (fun pid ->
          let tbl =
            Rowtable.create ~width:nkeys
              ~capacity:(max 16 (nbuild / parts))
              ()
          in
          let kbuf = Array.make (max 1 nkeys) 0 in
          let inserts = ref 0 and collisions = ref 0 in
          for i = 0 to nbuild - 1 do
            let off = i * build_cols in
            for j = 0 to nkeys - 1 do
              kbuf.(j) <- build_data.(off + Array.unsafe_get build_key j)
            done;
            if Morsel.partition_of ~width:nkeys ~parts kbuf 0 = pid then begin
              let before = Rowtable.length tbl in
              let e = Rowtable.find_or_add tbl kbuf 0 in
              if Rowtable.length tbl > before then incr inserts
              else incr collisions;
              next.(i) <- Rowtable.value tbl e;
              Rowtable.set_value tbl e i
            end
          done;
          (tbl, !inserts, !collisions))
        (Array.init parts Fun.id)
    in
    (match stats with
    | Some node ->
        Array.iter
          (fun (_, ins, coll) ->
            node.Obs.Op_stats.hash_inserts <-
              node.Obs.Op_stats.hash_inserts + ins;
            node.Obs.Op_stats.hash_collisions <-
              node.Obs.Op_stats.hash_collisions + coll)
          builds
    | None -> ());
    (* (c) Probe morsels: each worker routes its probe rows to their
       partitions' (now read-only) tables, chases the chains into a
       private relation, and records the per-row charges; the coordinator
       replays log then rows in morsel-index order — identical output
       order, charge stream and failure point as the sequential probe
       loop. *)
    let nmorsels = (nprobe + msize - 1) / msize in
    let pcols = Relation.cols probe_rel in
    let pdata = Relation.unsafe_data probe_rel in
    let probes =
      Par.parallel_map pool
        (fun m ->
          let lo = m * msize in
          let hi = min nprobe (lo + msize) in
          let rel = Relation.create ~cols:(na_cols + npay) in
          let log = charge_log t.profile.Profile.max_operations in
          let kbuf = Array.make (max 1 nkeys) 0 in
          let buf = Array.make (na_cols + npay) 0 in
          (try
             for r = lo to hi - 1 do
               let poff = r * pcols in
               record log 1;
               for j = 0 to nkeys - 1 do
                 kbuf.(j) <- pdata.(poff + Array.unsafe_get probe_key j)
               done;
               let tbl, _, _ =
                 builds.(Morsel.partition_of ~width:nkeys ~parts kbuf 0)
               in
               let e = Rowtable.find tbl kbuf 0 in
               if e >= 0 then begin
                 let rec chase i =
                   if i >= 0 then begin
                     record log 1;
                     emit_pair rel buf poff i;
                     chase next.(i)
                   end
                 in
                 chase (Rowtable.value tbl e)
               end
             done
           with Charge_overrun -> ());
          (rel, log))
        (Array.init nmorsels Fun.id)
    in
    (match stats with
    | Some node ->
        node.Obs.Op_stats.morsels <- node.Obs.Op_stats.morsels + nmorsels;
        Array.iter
          (fun (rel, _) ->
            node.Obs.Op_stats.max_worker_rows <-
              max node.Obs.Op_stats.max_worker_rows (Relation.rows rel))
          probes
    | None -> ());
    Array.iter
      (fun (rel, log) ->
        replay t log;
        Relation.append_all out rel)
      probes
  end
  else begin
    (* ---- sequential path ---- *)
    let tbl = Rowtable.create ~width:nkeys ~capacity:(max 16 nbuild) () in
    let next = Array.make (max 1 nbuild) (-1) in
    let kbuf = Array.make (max 1 nkeys) 0 in
    let buf = Array.make (na_cols + npay) 0 in
    for i = 0 to nbuild - 1 do
      charge t 1;
      let off = i * build_cols in
      for j = 0 to nkeys - 1 do
        kbuf.(j) <- build_data.(off + Array.unsafe_get build_key j)
      done;
      let e =
        match stats with
        | None -> Rowtable.find_or_add tbl kbuf 0
        | Some node ->
            let before = Rowtable.length tbl in
            let e = Rowtable.find_or_add tbl kbuf 0 in
            if Rowtable.length tbl > before then
              node.Obs.Op_stats.hash_inserts <-
                node.Obs.Op_stats.hash_inserts + 1
            else
              node.Obs.Op_stats.hash_collisions <-
                node.Obs.Op_stats.hash_collisions + 1;
            e
      in
      next.(i) <- Rowtable.value tbl e;
      Rowtable.set_value tbl e i
    done;
    Relation.iteri_flat
      (fun _ pdata poff ->
        charge t 1;
        for j = 0 to nkeys - 1 do
          kbuf.(j) <- pdata.(poff + Array.unsafe_get probe_key j)
        done;
        let e = Rowtable.find tbl kbuf 0 in
        if e >= 0 then begin
          let rec chase i =
            if i >= 0 then begin
              charge t 1;
              emit_pair out buf poff i;
              chase next.(i)
            end
          in
          chase (Rowtable.value tbl e)
        end)
      probe_rel
  end;
  check_materialization t out;
  (match stats with
  | None -> ()
  | Some node ->
      let na = Relation.rows a.rel and nb = Relation.rows b.rel in
      node.Obs.Op_stats.rows_in <- na + nb;
      node.Obs.Op_stats.index_probes <-
        nprobe + node.Obs.Op_stats.index_probes;
      node.Obs.Op_stats.rows_out <- Relation.rows out;
      node.Obs.Op_stats.work_units <- na + nb + Relation.rows out);
  { columns = a.columns @ b_only; rel = out }

let block_nested_loop_join ?stats t a b =
  let shared = List.filter (fun v -> List.mem v b.columns) a.columns in
  let b_only = List.filter (fun v -> not (List.mem v shared)) b.columns in
  let key_a = Array.of_list (positions a.columns shared)
  and key_b = Array.of_list (positions b.columns shared)
  and pay_b = Array.of_list (positions b.columns b_only) in
  let na_cols = List.length a.columns in
  let out = Relation.create ~cols:(na_cols + Array.length pay_b) in
  let nb = Relation.rows b.rel in
  (* the quadratic rescan of the inner relation is the point of this
     profile; it runs on the flat backing array, no row materialization *)
  let bdata = Relation.unsafe_data b.rel in
  let bcols = Relation.cols b.rel in
  let nkeys = Array.length key_a in
  let npay = Array.length pay_b in
  let buf = Array.make (na_cols + npay) 0 in
  Relation.iteri_flat
    (fun _ adata aoff ->
      charge t nb;
      for i = 0 to nb - 1 do
        let boff = i * bcols in
        let rec matches k =
          k >= nkeys
          || adata.(aoff + Array.unsafe_get key_a k)
             = bdata.(boff + Array.unsafe_get key_b k)
             && matches (k + 1)
        in
        if matches 0 then begin
          Array.blit adata aoff buf 0 na_cols;
          for j = 0 to npay - 1 do
            buf.(na_cols + j) <- bdata.(boff + Array.unsafe_get pay_b j)
          done;
          Relation.append out buf
        end
      done)
    a.rel;
  check_materialization t out;
  (match stats with
  | None -> ()
  | Some node ->
      let na = Relation.rows a.rel in
      node.Obs.Op_stats.rows_in <- na + nb;
      node.Obs.Op_stats.rows_out <- Relation.rows out;
      node.Obs.Op_stats.work_units <- na * nb);
  { columns = a.columns @ b_only; rel = out }

let join ?stats t a b =
  match t.profile.Profile.fragment_join with
  | Profile.Hash_join -> hash_join ?stats t a b
  | Profile.Block_nested_loop -> block_nested_loop_join ?stats t a b

(* ---- JUCQ execution ---- *)

(* A fragment (or partial join result) threaded through the greedy join
   order, carrying what tracing needs: the cover-query atoms it answers
   (for join-output cardinality estimates) and its op-stats subtree. *)
type jinput = {
  jnr : named_rel;
  jatoms : Bgp.atom list;  (* [] when tracing is off *)
  jtree : Obs.Op_stats.t option;
}

(* §4.1-style estimate for an intermediate join result: the cardinality of
   the CQ whose body is the union of the joined fragments' cover-query
   atoms, projected on the result columns. *)
let join_estimate t columns atoms =
  match atoms with
  | [] -> -1.0
  | _ ->
      let avars =
        List.concat_map (fun a -> Bgp.atom_vars a) atoms
        |> List.sort_uniq String.compare
      in
      let head =
        List.filter_map
          (fun v -> if List.mem v avars then Some (Bgp.Var v) else None)
          columns
      in
      (match head with
      | [] -> 1.0
      | _ -> Store.Statistics.cq_cardinality t.stats (Bgp.make head atoms))

(* Mirrors {!Core.Cost_model.final_result_estimate}: the JUCQ result equals
   the original query's answer, estimated from the union of all fragment
   bodies. *)
let jucq_final_estimate t (j : Jucq.t) =
  let atoms =
    List.concat_map (fun ((cq : Bgp.t), _) -> cq.Bgp.body) j.Jucq.fragments
    |> List.sort_uniq Bgp.atom_compare
  in
  let head_vars =
    List.filter_map
      (function Bgp.Var v -> Some (Bgp.Var v) | Bgp.Const _ -> None)
      j.Jucq.head
  in
  match head_vars with
  | [] -> 1.0
  | _ -> Store.Statistics.cq_cardinality t.stats (Bgp.make head_vars atoms)

let eval_jucq ?views t (j : Jucq.t) =
  begin_statement t;
  (* Static plan verification (test/debug builds and RDFQA_VERIFY=1): a
     schema or arity violation in a compiled plan must reject the
     statement, not silently produce wrong answers. *)
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_jucq ~context:"executor/jucq" j);
  admit ~context:"executor/jucq" t (Analysis.Cost_verify.Jucq j);
  (* Pre-check the engine's union capacity over all fragments: an RDBMS
     parses the whole statement before executing any of it. *)
  List.iter
    (fun (_, u) ->
      let terms = Ucq.cardinal u in
      if terms > t.profile.Profile.max_union_terms then
        fail t
          (Profile.Union_capacity
             { terms; limit = t.profile.Profile.max_union_terms }))
    j.Jucq.fragments;
  Obs.Span.with_ "exec.jucq" @@ fun sp ->
  let tr = Obs.enabled () in
  let pool = Par.get () in
  (* View probes are bypassed while tracing: a snapshot carries no
     per-disjunct op-stats, and the charge contract makes the fallback
     evaluation bit-identical anyway — traced statements just show the
     real pipeline. *)
  let lookup : Bgp.t * Ucq.t -> fragment_snapshot option =
    match views with Some f when not tr -> f | _ -> fun _ -> None
  in
  let hit_input (cq : Bgp.t) snap =
    let rel = replay_fragment_snapshot t snap in
    { jnr = { columns = Bgp.head_vars cq; rel }; jatoms = []; jtree = None }
  in
  let fragments =
    if Par.jobs pool <= 1 then
      List.map
        (fun ((cq : Bgp.t), u) ->
          match lookup (cq, u) with
          | Some snap -> hit_input cq snap
          | None ->
              let label = if tr then "fragment " ^ Bgp.to_string cq else "" in
              let rel, tree = eval_ucq_fragment t ~label u in
              {
                jnr = { columns = Bgp.head_vars cq; rel };
                jatoms = (if tr then cq.Bgp.body else []);
                jtree = tree;
              })
        j.Jucq.fragments
    else begin
      (* Materialize every fragment concurrently: compile all plans on the
         coordinator, flatten (fragment, disjunct) into one task batch so
         small fragments do not serialize behind large ones, then merge
         fragment by fragment in list order — the charge stream is exactly
         the sequential one.  View-served fragments never enter the task
         batch: their logs replay on the coordinator at merge position,
         exactly where the sequential path replays them. *)
      let frags =
        List.map
          (fun ((cq, u) : Bgp.t * Ucq.t) ->
            match lookup (cq, u) with
            | Some snap -> ((cq, u), `Snap snap)
            | None -> ((cq, u), `Plans (ucq_plans t u)))
          j.Jucq.fragments
      in
      let tasks =
        Array.of_list
          (List.concat_map
             (fun ((_, u), how) ->
               match how with
               | `Snap _ -> []
               | `Plans plans ->
                   let cols = Ucq.arity u in
                   Array.to_list (Array.map (fun p -> (cols, p)) plans))
             frags)
      in
      let results =
        Par.parallel_map pool
          (fun (cols, p) -> eval_disjunct t ~cols ~tracing:tr p)
          tasks
      in
      let off = ref 0 in
      List.map
        (fun (((cq : Bgp.t), u), how) ->
          match how with
          | `Snap snap -> hit_input cq snap
          | `Plans plans ->
              let k = Array.length plans in
              let slice = Array.sub results !off k in
              off := !off + k;
              let label = if tr then "fragment " ^ Bgp.to_string cq else "" in
              let rel, tree = merge_fragment t ~label u plans slice in
              {
                jnr = { columns = Bgp.head_vars cq; rel };
                jatoms = (if tr then cq.Bgp.body else []);
                jtree = tree;
              })
        frags
    end
  in
  (* Greedy join order: start from the smallest fragment, then repeatedly
     join the smallest fragment sharing a column with the accumulated
     result — what an RDBMS optimizer does to avoid cartesian products.
     Only when no remaining fragment connects (which a valid cover's join
     graph rules out except through intermediate disconnections) is a true
     product taken. *)
  let join_step acc pick =
    let stats =
      if tr then begin
        let kind =
          match t.profile.Profile.fragment_join with
          | Profile.Hash_join -> Obs.Op_stats.Hash_join
          | Profile.Block_nested_loop -> Obs.Op_stats.Bnl_join
        in
        let shared =
          List.filter (fun v -> List.mem v pick.jnr.columns) acc.jnr.columns
        in
        let node =
          Obs.Op_stats.make
            ~label:
              (match shared with
              | [] -> "cartesian product"
              | _ -> "on " ^ String.concat ", " shared)
            kind
        in
        (match acc.jtree with
        | Some x -> Obs.Op_stats.add_child node x
        | None -> ());
        (match pick.jtree with
        | Some x -> Obs.Op_stats.add_child node x
        | None -> ());
        Some node
      end
      else None
    in
    let nr = join ?stats t acc.jnr pick.jnr in
    let atoms =
      if tr then List.sort_uniq Bgp.atom_compare (acc.jatoms @ pick.jatoms)
      else []
    in
    (match stats with
    | None -> ()
    | Some node ->
        let est = join_estimate t nr.columns atoms in
        node.Obs.Op_stats.est_rows <- est;
        if est >= 0.0 then
          Obs.record_estimate ~label:"join" ~est
            ~actual:(float_of_int (Relation.rows nr.rel)));
    { jnr = nr; jatoms = atoms; jtree = stats }
  in
  let joined =
    match
      List.sort
        (fun a b ->
          Int.compare (Relation.rows a.jnr.rel) (Relation.rows b.jnr.rel))
        fragments
    with
    | [] -> invalid_arg "Executor.eval_jucq: no fragments"
    | first :: rest ->
        let connected acc f =
          List.exists (fun c -> List.mem c acc.jnr.columns) f.jnr.columns
        in
        let rec fold acc remaining =
          match remaining with
          | [] -> acc
          | _ ->
              let candidates =
                List.filter (connected acc) remaining
              in
              let pick =
                match candidates with
                | [] -> List.hd remaining
                | c :: cs ->
                    List.fold_left
                      (fun best x ->
                        if Relation.rows x.jnr.rel < Relation.rows best.jnr.rel
                        then x
                        else best)
                      c cs
              in
              let remaining' = List.filter (fun f -> f != pick) remaining in
              fold (join_step acc pick) remaining'
        in
        fold first rest
  in
  let joined, jtree = (joined.jnr, joined.jtree) in
  (* Project the original head, then deduplicate. *)
  let head_cols =
    List.map
      (function
        | Bgp.Var v -> `Col (List.hd (positions joined.columns [ v ]))
        | Bgp.Const c -> (
            match Es.encode_term t.store c with
            | Some code -> `Const code
            | None ->
                (* Constants in reformulated heads come from the schema, so
                   they are always in the dictionary; encode defensively. *)
                `Const (Rdf.Dictionary.encode (Es.dictionary t.store) c)))
      j.Jucq.head
  in
  (* Head projection fused with duplicate elimination: each joined row is
     projected into [buf] and appended only if its head is new.  The work
     accounting is that of the former materialize-then-dedup pipeline (one
     unit per joined row, then one per pre-dedup projected row — the same
     count), so the same statements fail for the same reasons.

     On a wide, non-busy pool with more joined rows than one morsel the
     projection fans out instead: the per-row charges are issued up front
     (they are the fused loop's only observable effects besides the output
     itself), morsels project into private relations that are concatenated
     in morsel order, and [Morsel.dedup] reproduces the fused loop's
     first-occurrence order exactly. *)
  let head_cols = Array.of_list head_cols in
  let nhead = Array.length head_cols in
  let njoined = Relation.rows joined.rel in
  let pool = Par.get () in
  let msize = Profile.morsel_size t.profile in
  let proj_morsels = ref 0 and proj_max = ref 0 in
  let out =
    if Par.jobs pool > 1 && (not (Par.is_busy pool)) && njoined > msize
       && nhead > 0
    then begin
      for _ = 1 to njoined do
        charge t 1
      done;
      let jdata = Relation.unsafe_data joined.rel in
      let jcols = Relation.cols joined.rel in
      let nmorsels = (njoined + msize - 1) / msize in
      let pieces =
        Par.parallel_map pool
          (fun m ->
            let lo = m * msize in
            let hi = min njoined (lo + msize) in
            let rel = Relation.create ~cols:nhead in
            let buf = Array.make nhead 0 in
            for r = lo to hi - 1 do
              let off = r * jcols in
              for i = 0 to nhead - 1 do
                buf.(i) <-
                  (match Array.unsafe_get head_cols i with
                  | `Col j' -> jdata.(off + j')
                  | `Const code -> code)
              done;
              Relation.append rel buf
            done;
            rel)
          (Array.init nmorsels Fun.id)
      in
      proj_morsels := nmorsels;
      let projected = Relation.create ~cols:nhead in
      Array.iter
        (fun rel ->
          proj_max := max !proj_max (Relation.rows rel);
          Relation.append_all projected rel)
        pieces;
      Morsel.dedup pool ~morsel:msize projected
    end
    else begin
      let out = Relation.create ~cols:nhead in
      let buf = Array.make nhead 0 in
      let seen = Rowtable.create ~width:nhead ~capacity:(max 16 njoined) () in
      Relation.iteri_flat
        (fun _ data off ->
          charge t 1;
          for i = 0 to nhead - 1 do
            buf.(i) <-
              (match Array.unsafe_get head_cols i with
              | `Col j' -> data.(off + j')
              | `Const code -> code)
          done;
          if Rowtable.add_if_absent seen buf 0 then Relation.append out buf)
        joined.rel;
      out
    end
  in
  charge t njoined;
  check_materialization t out;
  if tr then begin
    let pt = function
      | Bgp.Var v -> "?" ^ v
      | Bgp.Const c -> Rdf.Term.to_string c
    in
    let proj_est =
      match jtree with Some n -> n.Obs.Op_stats.est_rows | None -> -1.0
    in
    let proj =
      Obs.Op_stats.make
        ~label:(String.concat ", " (List.map pt j.Jucq.head))
        ~est_rows:proj_est Obs.Op_stats.Project
    in
    proj.Obs.Op_stats.rows_in <- njoined;
    proj.Obs.Op_stats.rows_out <- njoined;
    proj.Obs.Op_stats.work_units <- njoined;
    proj.Obs.Op_stats.morsels <- !proj_morsels;
    proj.Obs.Op_stats.max_worker_rows <- !proj_max;
    (match jtree with
    | Some x -> Obs.Op_stats.add_child proj x
    | None -> ());
    let est_final = jucq_final_estimate t j in
    let rows = Relation.rows out in
    let root =
      Obs.Op_stats.make ~label:"result" ~est_rows:est_final
        Obs.Op_stats.Result
    in
    root.Obs.Op_stats.rows_in <- njoined;
    root.Obs.Op_stats.rows_out <- rows;
    root.Obs.Op_stats.work_units <- njoined;
    Obs.Op_stats.add_child root proj;
    Obs.record_estimate ~label:"result" ~est:est_final
      ~actual:(float_of_int rows);
    t.last_stats <- Some root;
    Obs.Span.set sp "fragments"
      (string_of_int (List.length j.Jucq.fragments));
    Obs.Span.set sp "rows" (string_of_int rows);
    Obs.Span.set sp "ops" (string_of_int t.ops)
  end;
  out

(* ---- decoding ---- *)

let decode t rel =
  let d = Rdf.Dictionary.decoder (Es.dictionary t.store) in
  Relation.to_list rel
  |> List.map (fun row -> List.map d (Array.to_list row))
  |> List.sort_uniq (List.compare Rdf.Term.compare)

(* ---- engine-internal cost estimation (the EXPLAIN analogue) ---- *)

let explain_cost t (j : Jucq.t) =
  let p = t.profile in
  let cq_cost (cq : Bgp.t) =
    (* Bottom-up: every atom is an index probe per intermediate row. *)
    let card = Store.Statistics.cq_cardinality t.stats cq in
    let natoms = float_of_int (List.length cq.Bgp.body) in
    (0.05 *. natoms) +. (card *. p.Profile.c_t *. natoms)
  in
  let frag_cost (_, u) =
    let disjuncts = Ucq.disjuncts u in
    let cost = List.fold_left (fun acc cq -> acc +. cq_cost cq) 0.0 disjuncts in
    let card = Store.Statistics.ucq_cardinality t.stats u in
    cost +. (card *. (p.Profile.c_l +. p.Profile.c_m))
  in
  let frag_cards =
    List.map (fun (_, u) -> Store.Statistics.ucq_cardinality t.stats u)
      j.Jucq.fragments
  in
  let join_cost =
    match t.profile.Profile.fragment_join with
    | Profile.Hash_join ->
        List.fold_left ( +. ) 0.0 frag_cards *. p.Profile.c_j
    | Profile.Block_nested_loop ->
        (* quadratic in the two largest inputs, pairwise *)
        let rec pairs = function
          | a :: (b :: _ as rest) -> (a *. b *. p.Profile.c_j /. 64.0) +. pairs rest
          | [ _ ] | [] -> 0.0
        in
        pairs (List.sort compare frag_cards)
  in
  p.Profile.c_db
  +. List.fold_left (fun acc f -> acc +. frag_cost f) 0.0 j.Jucq.fragments
  +. join_cost
