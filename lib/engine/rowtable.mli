(** Open-addressing hash table specialized to fixed-width int-row keys.

    Keys are [width]-wide slices [src.(off) .. src.(off+width-1)] of plain
    [int array]s — relation rows, join keys, projected heads.  Inserted
    keys are copied into one flat backing array; slots are a power-of-two
    linear-probing table hashed with FNV-1a over the key words.  No
    per-entry boxing, no polymorphic hashing, no allocation on lookups or
    inserts (amortized): the engine's dedup and hash-join paths are built
    on this.

    Each entry additionally carries one mutable [int] of client payload
    (initially [-1]); the hash join threads its bucket chains through it. *)

type t

val create : width:int -> ?capacity:int -> unit -> t
(** A fresh table for keys of [width] ints ([width >= 0]; a zero-width
    table holds at most one entry, the empty key).  [capacity] is a hint
    for the number of expected entries. *)

val length : t -> int
(** Number of distinct keys stored. *)

val width : t -> int
(** Key width, in ints. *)

val find_or_add : t -> int array -> int -> int
(** [find_or_add t src off] looks up the key slice at [src.(off) ..]; if
    absent, copies it into the table as a new entry with value [-1].
    Returns the entry index (dense, insertion-ordered: [0 .. length-1]).
    Compare {!length} before and after to detect an insert. *)

val add_if_absent : t -> int array -> int -> bool
(** [add_if_absent t src off] inserts the key slice if new and reports
    whether it was inserted — duplicate elimination in one call. *)

val find : t -> int array -> int -> int
(** The entry index of the key slice, or [-1] if absent.  Never inserts. *)

val mem : t -> int array -> int -> bool
(** Membership of the key slice. *)

val value : t -> int -> int
(** [value t e] is entry [e]'s payload int ([-1] until set). *)

val set_value : t -> int -> int -> unit
(** [set_value t e v] overwrites entry [e]'s payload. *)

val hash_slice : width:int -> int array -> int -> int
(** The table's own FNV-1a hash of the key slice at [src.(off) ..].  The
    partitioned operators derive their partition ids from this, so a row
    lands in the same partition as the table bucket it would probe —
    deterministic for a given key, independent of jobs count. *)
