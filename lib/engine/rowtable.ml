(* Open-addressing hash table specialized to fixed-width int-row keys.

   Keys are width-[w] slices of int arrays; inserted keys are copied into
   one flat backing array (no per-entry boxing), slots hold entry indexes,
   collisions are resolved by linear probing over a power-of-two slot
   array.  Hashing is FNV-1a over the key words.  This replaces OCaml's
   polymorphic [Hashtbl] on [int array] / [int list] keys in the engine's
   dedup and hash-join paths: lookups and inserts allocate nothing. *)

type t = {
  width : int;
  mutable mask : int;        (* number of slots - 1; slots are a power of two *)
  mutable slots : int array; (* entry index + 1, 0 = empty *)
  mutable keys : int array;  (* entry e's key at [e*width .. e*width+width-1] *)
  mutable vals : int array;  (* one int of client payload per entry, init -1 *)
  mutable n : int;           (* number of entries *)
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ~width ?(capacity = 16) () =
  if width < 0 then invalid_arg "Rowtable.create: negative width";
  let cap = pow2_at_least (max 8 (2 * capacity)) 8 in
  {
    width;
    mask = cap - 1;
    slots = Array.make cap 0;
    keys = Array.make (max 1 (capacity * width)) 0;
    vals = Array.make (max 1 capacity) (-1);
    n = 0;
  }

let length t = t.n
let width t = t.width

(* FNV-1a over the key words; the final shift folds the well-mixed high
   bits into the slot index. *)
let fnv_prime = 0x100000001b3
let fnv_seed = 0x3ade68b1

let hash width src off =
  let h = ref fnv_seed in
  for i = off to off + width - 1 do
    h := (!h lxor Array.unsafe_get src i) * fnv_prime
  done;
  let h = !h in
  h lxor (h lsr 29)

let hash_slice ~width src off = hash width src off

let key_equal t e src off =
  let base = e * t.width in
  let rec go i =
    i = t.width
    || Array.unsafe_get t.keys (base + i) = Array.unsafe_get src (off + i)
       && go (i + 1)
  in
  go 0

(* Slot of the entry matching the slice, or the first empty slot. *)
let probe t src off =
  let mask = t.mask in
  let rec go i =
    let s = Array.unsafe_get t.slots i in
    if s = 0 || key_equal t (s - 1) src off then i else go ((i + 1) land mask)
  in
  go (hash t.width src off land mask)

let grow_slots t =
  let cap = 2 * Array.length t.slots in
  t.slots <- Array.make cap 0;
  t.mask <- cap - 1;
  for e = 0 to t.n - 1 do
    (* entries are distinct keys, so every probe ends on an empty slot *)
    t.slots.(probe t t.keys (e * t.width)) <- e + 1
  done

let ensure_entry_room t =
  if 2 * (t.n + 1) > Array.length t.slots then grow_slots t;
  if t.width > 0 && (t.n + 1) * t.width > Array.length t.keys then begin
    let keys = Array.make (2 * Array.length t.keys) 0 in
    Array.blit t.keys 0 keys 0 (t.n * t.width);
    t.keys <- keys
  end;
  if t.n + 1 > Array.length t.vals then begin
    let vals = Array.make (2 * Array.length t.vals) (-1) in
    Array.blit t.vals 0 vals 0 t.n;
    t.vals <- vals
  end

let find_or_add t src off =
  ensure_entry_room t;
  let i = probe t src off in
  let s = t.slots.(i) in
  if s <> 0 then s - 1
  else begin
    let e = t.n in
    Array.blit src off t.keys (e * t.width) t.width;
    t.vals.(e) <- -1;
    t.slots.(i) <- e + 1;
    t.n <- e + 1;
    e
  end

let add_if_absent t src off =
  let n0 = t.n in
  ignore (find_or_add t src off);
  t.n > n0

let find t src off =
  if t.n = 0 then -1 else t.slots.(probe t src off) - 1

let mem t src off = find t src off >= 0

let value t e = t.vals.(e)
let set_value t e v = t.vals.(e) <- v
