(** Static parallel-safety lint for the morsel-driven execution layer.

    Symbolically checks, on a deterministic witness, the invariants the
    bit-identical contract rests on: the morsel dispatch arithmetic tiles
    the scanned range exactly (CB005), the partition function is a pure
    map into [0, parts) (CB006), partitioned duplicate elimination
    reproduces the sequential first-occurrence order (CB007), and the
    charge-replay bookkeeping plans one log per dispatched morsel
    (CB008).  All checked functions are injectable so mutation self-tests
    can assert each diagnostic; the defaults are the real
    implementations. *)

val default_ranges : n:int -> morsel:int -> (int * int) array
(** The executor's dispatch arithmetic: morsel [m] covers
    [\[m*size, min n (m*size+size))]. *)

val default_log_count : n:int -> morsel:int -> int

val lint :
  ?ranges:(n:int -> morsel:int -> (int * int) array) ->
  ?partition:(width:int -> parts:int -> int array -> int -> int) ->
  ?dedup:(Par.t -> morsel:int -> Relation.t -> Relation.t) ->
  ?log_count:(n:int -> morsel:int -> int) ->
  context:string ->
  profile:Profile.t ->
  ?width:int ->
  ?n:int ->
  unit ->
  Analysis.Diagnostic.t list
(** Run all four checks over morsel sizes [{1, 7, 64, profile's,
    n}] and partition counts [{1, 3, width}] on an [n]-row witness
    relation (defaults: [width = 4], [n = 257]).  Returns the CB005–CB008
    error diagnostics, empty when every invariant holds. *)
