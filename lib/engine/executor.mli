(** The relational execution engine: evaluates CQs, UCQs and JUCQs against
    an {!Store.Encoded_store} under an engine {!Profile}.

    This is the system the paper delegates reformulated queries to ("any
    system capable of evaluating selections, projections, joins and
    unions").  Physical design and operators:

    - conjunctive queries run as index-nested-loop self-joins over the
      six-way-indexed [Triples] table, with a greedy selectivity-based atom
      order chosen per query — what an RDBMS does with such plans;
    - UCQs evaluate member CQs into a materialized result followed by
      hash-based duplicate elimination (set semantics);
    - JUCQs materialize each fragment UCQ and combine them with the
      profile's join algorithm (hash join, or MySQL-style block nested
      loops), then project the original head and deduplicate.

    All work is metered: every index probe, tuple emission, hash insert and
    comparison counts against the profile's operation budget, and profile
    capacity limits raise {!Profile.Engine_failure} — producing honestly
    the failure modes reported in Figures 4-6 (no artificial delays). *)

type t

val create : ?profile:Profile.t -> Store.Encoded_store.t -> t
(** An engine over a store.  Default profile: {!Profile.postgres_like}. *)

val store : t -> Store.Encoded_store.t
(** The underlying store. *)

val profile : t -> Profile.t
(** The engine profile. *)

val statistics : t -> Store.Statistics.t
(** Statistics over the store (shared with the optimizer). *)

val last_operations : t -> int
(** Work units consumed by the most recent statement. *)

val total_operations : t -> int
(** Monotonic total of work units charged over the engine's lifetime,
    including statements that died on a budget violation.  Never reset. *)

val statements_run : t -> int
(** Monotonic count of statements started (successful or failed). *)

val last_op_stats : t -> Obs.Op_stats.t option
(** The per-operator runtime metrics tree of the most recent statement —
    populated only while {!Obs.enabled} tracing is on; [None] otherwise,
    and [None] for a statement that failed before its tree was built. *)

val static_cq_info : t -> Query.Bgp.t -> Analysis.Cost_verify.cq_info
(** What the static cost analyzer knows about this engine's compiled plan
    for a CQ: per atom in planned join order, the exact store count of
    its constant positions and whether its variable positions are
    pairwise distinct.  [Unsat] when a body constant is absent from the
    dictionary.  Reads plan caches and count indexes only; never
    charges. *)

val cost_oracle : t -> Analysis.Cost_verify.oracle
(** The engine's profile limits and {!static_cq_info}, packaged for
    {!Analysis.Cost_verify.estimate}/[admission]. *)

val admit :
  ?budget:int -> context:string -> t -> Analysis.Cost_verify.statement -> unit
(** Pre-execution admission gate: when cost verification is enabled
    ([RDFQA_VERIFY_COST=1] or {!Analysis.Cost_verify.set_enabled}),
    statically analyze the statement and raise
    {!Analysis.Plan_verify.Rejected} with the CB* diagnostics if it
    provably fails — before any operation is charged.  No-op when
    disabled.  Called by {!eval_cq}/{!eval_ucq}/{!eval_jucq}. *)

val intern_constants : t -> Query.Bgp.t -> unit
(** Interns every constant of the query (head {e and} body) into the
    store's dictionary.  Idempotent and charge-free; data terms keep their
    codes and absent terms get fresh codes that match no triple, so
    answers never change — but operation totals stop depending on which
    query against a shared store ran first (an absent body constant
    compiles to an empty selection instead of an unsatisfiable plan).
    Server warm-up calls this for every workload query. *)

val eval_cq : t -> Query.Bgp.t -> Relation.t
(** Evaluates one CQ (no reasoning): one row per answer, one column per
    head position, values as dictionary codes.  Set semantics. *)

val eval_ucq : t -> Query.Ucq.t -> Relation.t
(** Evaluates a UCQ: union of member CQs, deduplicated.
    @raise Profile.Engine_failure on capacity/budget violations. *)

type fragment_snapshot
(** The record-and-replay image of one fragment UCQ evaluation: the
    per-disjunct charge logs, the row counts the materialization checks
    observe, and the deduplicated result relation — a materialized view's
    execution-side representation.  Recording is charge-invisible to the
    recording engine; replaying on a using engine reproduces exactly the
    observables of evaluating a structurally identical UCQ on the same
    store state (charge stream, budget-failure point, capacity checks,
    rows and their order), so answers and operation totals are
    bit-identical whether a fragment is evaluated or served from a
    snapshot. *)

val prepare_fragment : t -> Query.Ucq.t -> unit
(** Forces plan compilation for a fragment UCQ, including the on-demand
    dictionary encoding of reformulation-head constants.  Charge-free.
    Call it for every fragment a workload may evaluate {e before}
    recording any snapshot: the dictionary must be stable for recorded
    charge streams to match later live evaluations (an absent body
    constant compiles to no plan; the same constant merely empty charges
    one empty selection). *)

val record_fragment : t -> Query.Ucq.t -> fragment_snapshot
(** Materializes a fragment UCQ into a snapshot.  Never charges this
    engine and never fails on its budgets: capacity limits are the using
    engine's business, applied at replay time.  Must be re-recorded when
    the store's contents change (the view tier's invalidation rules). *)

val snapshot_rows : fragment_snapshot -> int
(** Rows of the deduplicated materialized relation. *)

val snapshot_bytes : fragment_snapshot -> int
(** Approximate heap bytes held by the snapshot (relation + charge
    logs). *)

val snapshot_terms : fragment_snapshot -> int
(** [Ucq.cardinal] of the recorded fragment (the using engine's
    union-capacity pre-check replays against it). *)

val snapshot_arity : fragment_snapshot -> int
(** Head arity of the recorded fragment. *)

val eval_jucq :
  ?views:(Query.Bgp.t * Query.Ucq.t -> fragment_snapshot option) ->
  t ->
  Query.Jucq.t ->
  Relation.t
(** Evaluates a JUCQ reformulation: fragments materialized then joined.
    [?views] is probed once per fragment with the fragment's cover query
    and reformulation; a returned snapshot replaces the fragment's
    evaluation by a charge-log replay (bit-identical observables — the
    caller is responsible for only serving snapshots recorded from a
    structurally identical UCQ on the current store state).  Probes are
    bypassed while {!Obs.enabled} tracing is on (traced statements show
    the real pipeline).
    @raise Profile.Engine_failure on capacity/budget violations. *)

val decode : t -> Relation.t -> Rdf.Term.t list list
(** Decodes a result relation to sorted term rows (test/report surface). *)

type named_rel = { columns : string list; rel : Relation.t }
(** A materialized relation with named columns — the unit the fragment
    joins operate on. *)

val hash_join : ?stats:Obs.Op_stats.t -> t -> named_rel -> named_rel -> named_rel
(** Hash join of two fragments on their shared columns (bag semantics, one
    output row per matching pair; output columns are [a]'s followed by
    [b]'s non-shared ones).  Builds on the smaller input, probes the
    larger.  Exposed for differential testing against reference joins.
    [?stats] receives the operator's runtime metrics (rows in/out, hash
    inserts/collisions, probes); it never affects the work accounting.
    @raise Profile.Engine_failure on capacity/budget violations. *)

val block_nested_loop_join :
  ?stats:Obs.Op_stats.t -> t -> named_rel -> named_rel -> named_rel
(** The MySQL-profile quadratic join; same semantics as {!hash_join}, same
    testing purpose. *)

val explain_cost : t -> Query.Jucq.t -> float
(** The engine's {e internal} optimizer cost estimate for a JUCQ — the
    [EXPLAIN] analogue used as the alternative cost oracle in Figure 9.
    Deliberately distinct from the Section 4.1 cost model: bottom-up
    per-plan-operator estimation with this engine's own constants. *)
