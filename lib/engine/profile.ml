type failure_reason =
  | Union_capacity of { terms : int; limit : int }
  | Materialization_overflow of { rows : int; limit : int }
  | Operation_budget of { limit : int }

exception Engine_failure of { engine : string; reason : failure_reason }

type join_algorithm = Hash_join | Block_nested_loop

(* Rows per morsel for intra-operator parallelism.  Small enough that a
   skewed scan still load-balances across workers, large enough that the
   atomic chunk dispatch is noise next to the per-row work. *)
let default_morsel_size = 1024

type t = {
  name : string;
  max_union_terms : int;
  max_materialized_rows : int;
  max_operations : int;
  fragment_join : join_algorithm;
  morsel_size : int;
  c_db : float;
  c_t : float;
  c_j : float;
  c_m : float;
  c_l : float;
}

let postgres_like =
  {
    name = "postgres-like";
    max_union_terms = 100_000;
    max_materialized_rows = 4_000_000;
    max_operations = 2_000_000_000;
    fragment_join = Hash_join;
    morsel_size = default_morsel_size;
    c_db = 0.5;
    c_t = 0.00012;
    c_j = 0.00020;
    c_m = 0.00025;
    c_l = 0.00018;
  }

let db2_like =
  {
    name = "db2-like";
    max_union_terms = 8_000;
    max_materialized_rows = 8_000_000;
    max_operations = 2_000_000_000;
    fragment_join = Hash_join;
    morsel_size = default_morsel_size;
    c_db = 0.8;
    c_t = 0.00010;
    c_j = 0.00018;
    c_m = 0.00030;
    c_l = 0.00016;
  }

let mysql_like =
  {
    name = "mysql-like";
    max_union_terms = 60_000;
    max_materialized_rows = 2_000_000;
    (* a long statement timeout: block-nested-loop joins are meant to show
       up as painful measured times (the paper's 1000-second SCQs), not as
       premature failures *)
    max_operations = 40_000_000_000;
    fragment_join = Block_nested_loop;
    morsel_size = default_morsel_size;
    c_db = 0.3;
    c_t = 0.00015;
    c_j = 0.00060;
    c_m = 0.00040;
    c_l = 0.00025;
  }

let virtuoso_like =
  {
    name = "virtuoso-like";
    max_union_terms = 200_000;
    max_materialized_rows = 16_000_000;
    max_operations = 4_000_000_000;
    fragment_join = Hash_join;
    morsel_size = default_morsel_size;
    c_db = 0.2;
    c_t = 0.00006;
    c_j = 0.00010;
    c_m = 0.00012;
    c_l = 0.00008;
  }

let all = [ postgres_like; db2_like; mysql_like ]

let morsel_size t =
  match Sys.getenv_opt "RDFQA_MORSEL" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some m when m >= 1 -> m
      | _ -> t.morsel_size)
  | None -> t.morsel_size

let failure_to_string = function
  | Union_capacity { terms; limit } ->
      Printf.sprintf "union capacity exceeded (%d terms > %d)" terms limit
  | Materialization_overflow { rows; limit } ->
      Printf.sprintf "materialization overflow (%d rows > %d)" rows limit
  | Operation_budget { limit } ->
      Printf.sprintf "operation budget exhausted (> %d work units)" limit
