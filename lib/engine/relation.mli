(** Materialized relations of dictionary codes: the intermediate and final
    results of the execution engine.  Row-major flattened storage. *)

type t

val create : cols:int -> t
(** An empty relation with [cols] columns ([cols >= 0]). *)

val cols : t -> int
(** Number of columns. *)

val rows : t -> int
(** Number of rows. *)

val append : t -> int array -> unit
(** Appends one row.  Raises [Invalid_argument] on an arity mismatch. *)

val append_slice : t -> int array -> int -> unit
(** [append_slice r src off] appends the [cols r] values at
    [src.(off) .. src.(off + cols r - 1)] as one row — the write half of
    the cursor API: rows move between relations without an intermediate
    [int array] per row. *)

val append_all : t -> t -> unit
(** [append_all dst src] appends every row of [src] to [dst] in order, as
    one bulk blit — the merge half of morsel-partitioned execution, where
    per-worker relations are concatenated in morsel order.  Raises
    [Invalid_argument] on an arity mismatch. *)

val get : t -> int -> int -> int
(** [get r i j] is column [j] of row [i]. *)

val row : t -> int -> int array
(** A fresh copy of row [i]. *)

val unsafe_data : t -> int array
(** The backing row-major store: row [i]'s values live at
    [i * cols r .. (i+1) * cols r - 1].  Only the first [rows r * cols r]
    cells are meaningful.  The array must not be mutated, and must not be
    retained across an [append] (which may reallocate it).  For the
    executor's innermost loops only. *)

val iter : (int array -> unit) -> t -> unit
(** Iterates rows; the array passed to the callback is fresh per row. *)

val iteri_flat : (int -> int array -> int -> unit) -> t -> unit
(** [iteri_flat f r] calls [f i data off] for each row [i], where the
    row's values are [data.(off) .. data.(off + cols r - 1)] in the
    relation's backing store — no per-row array is materialized.  The
    callback must not mutate [data] nor retain it across appends to [r]. *)

val fold_rows : ('a -> int array -> int -> 'a) -> 'a -> t -> 'a
(** [fold_rows f init r] folds [f] over the rows as [(data, offset)]
    slices, under the same aliasing rules as {!iteri_flat}. *)

val project : t -> int array -> t
(** [project r cols] keeps the given column indexes, in order. *)

val dedup : t -> t
(** Duplicate elimination via a specialized {!Rowtable} (open addressing
    over flat int-row keys — no polymorphic hashing, no per-row boxing),
    preserving first occurrences. *)

val to_list : t -> int array list
(** All rows, in order. *)
