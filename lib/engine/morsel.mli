(** Morsel-driven execution helpers: hash partitioning and partitioned
    duplicate elimination with a deterministic ordered merge.

    Used by the executor's parallel operators; results are bit-identical
    to the sequential counterparts at every pool width, partition count
    and morsel size. *)

val partition_of : width:int -> parts:int -> int array -> int -> int
(** [partition_of ~width ~parts data off] is the partition id (in
    [0 .. parts-1]) of the [width]-wide key slice at [data.(off) ..],
    derived from {!Rowtable.hash_slice} — a pure function of the key
    words, so equal keys always share a partition. *)

val dedup : ?stats:Obs.Op_stats.t -> Par.t -> morsel:int -> Relation.t -> Relation.t
(** [dedup pool ~morsel rel] eliminates duplicate rows preserving first
    occurrences — exactly [Relation.dedup rel], computed in parallel when
    profitable: each worker keeps the first occurrences of the keys
    hashing to its partition (recording original row indexes), and the
    per-partition survivors are merged by ascending original index.
    Falls back to {!Relation.dedup} when the pool is sequential or busy,
    the relation has no columns, or it has at most [morsel] rows.
    [?stats] receives the partition count ([morsels]) and the largest
    per-partition survivor count ([max_worker_rows]); it never affects
    the result.  Performs no budget charging either way. *)
