(** Engine profiles: the stand-ins for the three RDBMSs of Section 5.

    The paper deploys its technique on PostgreSQL, DB2 and MySQL and finds
    they "differ significantly in their ability to handle UCQ and SCQ
    reformulations": DB2 throws stack-depth errors on huge unions, Postgres
    hits I/O failures materializing large intermediate results, MySQL
    (whose executor lacks hash joins) is catastrophically slow on the SCQ's
    many-way joins of large unions.  A profile captures those behavioural
    axes for our executor:

    - a {e union capacity} (maximum number of UCQ terms the engine accepts,
      the stack-depth analogue);
    - a {e materialization budget} (maximum rows in any materialized
      intermediate result, the temp-space analogue);
    - an {e operation budget} (total executor work units per statement, the
      statement-timeout analogue);
    - the {e join algorithm} used to combine materialized fragment results
      (hash join, or MySQL-style block nested loops);
    - calibration constants for the Section 4.1 cost model (learned per
      engine by {!Rqa.Cost_model.calibrate}, these are the defaults).

    Limits are enforced by real executor behaviour (work is counted as it
    happens), not by artificial delays. *)

type failure_reason =
  | Union_capacity of { terms : int; limit : int }
      (** the reformulation has more union terms than the engine accepts *)
  | Materialization_overflow of { rows : int; limit : int }
      (** an intermediate result exceeded the materialization budget *)
  | Operation_budget of { limit : int }
      (** the statement exceeded its work budget (timeout analogue) *)

exception Engine_failure of { engine : string; reason : failure_reason }
(** Raised by the executor when a profile limit is hit — the "missing
    bars" of Figures 4-6. *)

type join_algorithm =
  | Hash_join            (** build + probe, linear in input sizes *)
  | Block_nested_loop    (** quadratic; models executors without hash join *)

type t = {
  name : string;
  max_union_terms : int;
  max_materialized_rows : int;
  max_operations : int;
  fragment_join : join_algorithm;
  morsel_size : int;
      (** rows per morsel for intra-operator parallelism (see
          {!morsel_size} for the environment override) *)
  (* default Section 4.1 coefficients (overridden by calibration): *)
  c_db : float;    (** fixed per-statement connection/startup overhead *)
  c_t : float;     (** per-tuple scan cost *)
  c_j : float;     (** per-tuple join cost *)
  c_m : float;     (** per-tuple materialization cost *)
  c_l : float;     (** per-tuple duplicate-elimination cost *)
}

val postgres_like : t
(** Generous union capacity; mid-size materialization budget (fails by
    materialization overflow on the worst queries at scale). *)

val db2_like : t
(** Tight union capacity (stack-depth analogue): rejects the largest UCQ
    reformulations outright. *)

val mysql_like : t
(** Block-nested-loop fragment joins and a work budget: SCQ-style plans
    with big fragments burn the budget. *)

val virtuoso_like : t
(** A native-RDF-style profile with lower per-tuple constants, used for
    the saturation comparison of Figure 10. *)

val all : t list
(** The three RDBMS profiles of the experiments (Virtuoso excluded). *)

val failure_to_string : failure_reason -> string
(** Human-readable reason, e.g. for bench output. *)

val morsel_size : t -> int
(** The profile's morsel size, overridden by the [RDFQA_MORSEL]
    environment variable when it parses to a positive integer.  Morsel
    size only affects how intra-operator work is split across domains —
    answers, charge totals and failure points are bit-identical at every
    setting. *)
