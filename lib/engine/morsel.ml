(* Morsel-driven helpers shared by the physical operators: hash-based
   partitioning and a partitioned duplicate elimination whose output is
   bit-identical to [Relation.dedup].

   The partition id of a row is a pure function of its key words (derived
   from the same FNV-1a hash the Rowtable buckets on), so a key lives in
   exactly one partition regardless of jobs count or morsel size.  That is
   what makes per-partition results mergeable without re-checking: any two
   equal rows meet in the same partition's table. *)

let partition_of ~width ~parts data off =
  (Rowtable.hash_slice ~width data off land max_int) mod parts

type keep = {
  kidx : Store.Intvec.t;  (* original row indexes kept, ascending *)
}

let dedup ?stats pool ~morsel rel =
  let n = Relation.rows rel in
  let w = Relation.cols rel in
  let parts = Par.jobs pool in
  if parts <= 1 || Par.is_busy pool || w = 0 || n <= morsel then
    Relation.dedup rel
  else begin
    let data = Relation.unsafe_data rel in
    (* Worker [p] scans all rows in order and keeps the first occurrence
       of every key that hashes to its partition; the recorded original
       indexes are therefore ascending per partition.  A key's global
       first occurrence is its first occurrence within its one partition,
       so the ascending-index merge below reproduces [Relation.dedup]'s
       first-occurrence order exactly. *)
    let keeps =
      Par.parallel_map pool
        (fun p ->
          let tbl =
            Rowtable.create ~width:w ~capacity:(max 16 (n / parts)) ()
          in
          let kidx = Store.Intvec.create () in
          for i = 0 to n - 1 do
            let off = i * w in
            if
              partition_of ~width:w ~parts data off = p
              && Rowtable.add_if_absent tbl data off
            then Store.Intvec.push kidx i
          done;
          { kidx })
        (Array.init parts Fun.id)
    in
    (match stats with
    | Some node ->
        node.Obs.Op_stats.morsels <- node.Obs.Op_stats.morsels + parts;
        Array.iter
          (fun k ->
            node.Obs.Op_stats.max_worker_rows <-
              max node.Obs.Op_stats.max_worker_rows
                (Store.Intvec.length k.kidx))
          keeps
    | None -> ());
    let out = Relation.create ~cols:w in
    let pos = Array.make parts 0 in
    let rec merge () =
      let best = ref (-1) and best_i = ref max_int in
      for p = 0 to parts - 1 do
        if pos.(p) < Store.Intvec.length keeps.(p).kidx then begin
          let i = Store.Intvec.get keeps.(p).kidx pos.(p) in
          if i < !best_i then begin
            best_i := i;
            best := p
          end
        end
      done;
      if !best >= 0 then begin
        pos.(!best) <- pos.(!best) + 1;
        Relation.append_slice out data (!best_i * w);
        merge ()
      end
    in
    merge ();
    out
  end
