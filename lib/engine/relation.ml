type t = { ncols : int; mutable data : int array; mutable nrows : int }

let create ~cols =
  if cols < 0 then invalid_arg "Relation.create: negative arity";
  { ncols = cols; data = Array.make (max 1 (16 * cols)) 0; nrows = 0 }

let cols r = r.ncols
let rows r = r.nrows

let ensure_capacity r =
  let needed = (r.nrows + 1) * r.ncols in
  if needed > Array.length r.data then begin
    let data = Array.make (max needed (2 * Array.length r.data)) 0 in
    Array.blit r.data 0 data 0 (r.nrows * r.ncols);
    r.data <- data
  end

let append r row =
  if Array.length row <> r.ncols then
    invalid_arg "Relation.append: arity mismatch";
  ensure_capacity r;
  Array.blit row 0 r.data (r.nrows * r.ncols) r.ncols;
  r.nrows <- r.nrows + 1

let append_slice r src off =
  if off < 0 || off + r.ncols > Array.length src then
    invalid_arg "Relation.append_slice: slice out of bounds";
  ensure_capacity r;
  Array.blit src off r.data (r.nrows * r.ncols) r.ncols;
  r.nrows <- r.nrows + 1

let append_all dst src =
  if src.ncols <> dst.ncols then
    invalid_arg "Relation.append_all: arity mismatch";
  let words = src.nrows * src.ncols in
  let needed = (dst.nrows * dst.ncols) + words in
  if needed > Array.length dst.data then begin
    let data = Array.make (max needed (2 * Array.length dst.data)) 0 in
    Array.blit dst.data 0 data 0 (dst.nrows * dst.ncols);
    dst.data <- data
  end;
  Array.blit src.data 0 dst.data (dst.nrows * dst.ncols) words;
  dst.nrows <- dst.nrows + src.nrows

let get r i j =
  if i < 0 || i >= r.nrows || j < 0 || j >= r.ncols then
    invalid_arg "Relation.get: out of bounds";
  r.data.((i * r.ncols) + j)

let row r i =
  if i < 0 || i >= r.nrows then invalid_arg "Relation.row: out of bounds";
  Array.sub r.data (i * r.ncols) r.ncols

let unsafe_data r = r.data

let iter f r =
  for i = 0 to r.nrows - 1 do
    f (Array.sub r.data (i * r.ncols) r.ncols)
  done

let iteri_flat f r =
  let w = r.ncols in
  for i = 0 to r.nrows - 1 do
    f i r.data (i * w)
  done

let fold_rows f init r =
  let w = r.ncols in
  let acc = ref init in
  for i = 0 to r.nrows - 1 do
    acc := f !acc r.data (i * w)
  done;
  !acc

let project r columns =
  Array.iter
    (fun j ->
      if j < 0 || j >= r.ncols then invalid_arg "Relation.project: bad column")
    columns;
  let out = create ~cols:(Array.length columns) in
  let buf = Array.make (Array.length columns) 0 in
  for i = 0 to r.nrows - 1 do
    Array.iteri (fun k j -> buf.(k) <- r.data.((i * r.ncols) + j)) columns;
    append out buf
  done;
  out

let dedup r =
  let out = create ~cols:r.ncols in
  let seen = Rowtable.create ~width:r.ncols ~capacity:(max 16 r.nrows) () in
  let w = r.ncols in
  for i = 0 to r.nrows - 1 do
    let off = i * w in
    if Rowtable.add_if_absent seen r.data off then append_slice out r.data off
  done;
  out

let to_list r =
  let acc = ref [] in
  for i = r.nrows - 1 downto 0 do
    acc := row r i :: !acc
  done;
  !acc
