(** The `rdfqa serve` endpoint: a long-lived concurrent query server.

    One process serves many simultaneous clients over the {!Protocol} line
    protocol on a TCP socket — a thread per connection, each with its own
    {!Rqa.Answering.system} (private engine, so per-request charge
    counters never race) sharing one store and one cache.  Reads and
    writes coordinate through {!Store.Epoch}: every [QUERY] runs inside a
    read section pinning the store's epoch (the
    [schema_version]/[data_version] pair cannot move under it), every
    [INSERT]/[DELETE] runs inside a write section that drains pinned
    readers first and re-warms the interned vocabulary when the schema
    moved.  Parallel UCQ/JUCQ evaluation dispatches onto the process-global
    {!Par} pool exactly as the single-shot CLI does, so answers stay
    bit-identical to `rdfqa query` for any interleaving — the determinism
    contract under real traffic.

    Cost admission: with [budget] set, each query's SCQ-cover JUCQ is
    checked by {!Analysis.Cost_verify.admission} before execution and
    provably-doomed statements are refused with [ERR] (the global
    [RDFQA_VERIFY_COST] switch stays off, so cover choice is untouched).

    The [server.*] metric families (connections, requests, errors,
    rejected, writes, inflight, epoch) register at module initialization:
    any binary linking this module exports them — zero-valued when idle —
    through the usual [lib/metrics] Prometheus path. *)

module Protocol : module type of Protocol
(** The wire protocol, re-exported: [server.ml] names the library, so
    this is the only path clients and tests reach {!Protocol} through. *)

type config = {
  host : string;            (** bind address, e.g. ["127.0.0.1"] *)
  port : int;               (** TCP port; [0] binds an ephemeral port *)
  strategy : Rqa.Answering.strategy;  (** default answering strategy *)
  profile : Engine.Profile.t;
  cache_mode : Cache.mode option;     (** [None] keeps the cache default *)
  budget : int option;      (** per-request cost admission budget *)
  warm : Query.Bgp.t list;  (** workload queries to pre-intern at boot *)
}

val default_config : config
(** Loopback, ephemeral port, GCov, postgres-like profile, no budget, no
    warm-up queries. *)

val strategy_of_string : string -> Rqa.Answering.strategy option
(** ["saturation" | "ucq" | "scq" | "ecov" | "gcov"], as the protocol's
    [QUERY/<strategy>] override spells them. *)

type t

val start : config -> Store.Encoded_store.t -> t
(** Binds and listens, pre-interns [config.warm] plus the schema
    vocabulary ({!Rqa.Answering.warm_up} — repeated-query operation totals
    are stable from the first request), and spawns the accept loop on a
    background thread.  Raises [Unix.Unix_error] when the address is
    unavailable. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port = 0]). *)

val epoch : t -> Store.Epoch.t
(** The server's epoch coordinator (stats, tests). *)

val requests_served : t -> int
(** Total requests answered (OK and ERR) since {!start}. *)

val request_stop : t -> unit
(** Asynchronously initiates shutdown: stops accepting and wakes the
    accept loop.  Safe to call from a signal handler; in-flight requests
    keep running until {!stop} drains them. *)

val wait : t -> unit
(** Blocks until the accept loop has exited (i.e. until {!request_stop} /
    {!stop} was called). *)

val stop : t -> unit
(** Graceful drain: {!request_stop}, then half-closes every client
    connection (pending requests complete and their responses are
    delivered; idle connections see EOF) and joins every connection
    thread.  Idempotent.  The caller owns the process-global {!Par} pool
    ([Par.shutdown_global] if no further work follows). *)
