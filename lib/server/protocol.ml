type request =
  | Query of { strategy : string option; text : string }
  | Insert of string
  | Delete of string
  | Stats
  | Prom
  | Ping
  | Quit

let strategies = [ "saturation"; "ucq"; "scq"; "ecov"; "gcov" ]

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_request line =
  let line = String.trim line in
  let cmd, rest = split_command line in
  match cmd with
  | "PING" -> Ok Ping
  | "QUIT" -> Ok Quit
  | "STATS" -> Ok Stats
  | "PROM" -> Ok Prom
  | "INSERT" ->
      if rest = "" then Error "INSERT needs a file path" else Ok (Insert rest)
  | "DELETE" ->
      if rest = "" then Error "DELETE needs a file path" else Ok (Delete rest)
  | "QUERY" ->
      if rest = "" then Error "QUERY needs a SPARQL text"
      else Ok (Query { strategy = None; text = rest })
  | _ -> (
      match String.index_opt cmd '/' with
      | Some i when String.sub cmd 0 i = "QUERY" ->
          let s =
            String.lowercase_ascii
              (String.sub cmd (i + 1) (String.length cmd - i - 1))
          in
          if not (List.mem s strategies) then
            Error ("unknown strategy: " ^ s)
          else if rest = "" then Error "QUERY needs a SPARQL text"
          else Ok (Query { strategy = Some s; text = rest })
      | _ ->
          if line = "" then Error "empty request"
          else Error ("unknown request: " ^ cmd))

let request_to_line = function
  | Query { strategy = None; text } -> "QUERY " ^ text
  | Query { strategy = Some s; text } -> "QUERY/" ^ s ^ " " ^ text
  | Insert p -> "INSERT " ^ p
  | Delete p -> "DELETE " ^ p
  | Stats -> "STATS"
  | Prom -> "PROM"
  | Ping -> "PING"
  | Quit -> "QUIT"

let escape s =
  let plain = ref true in
  String.iter
    (function '\\' | '\t' | '\n' | '\r' -> plain := false | _ -> ())
    s;
  if !plain then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\\' -> Buffer.add_string b "\\\\"
        | '\t' -> Buffer.add_string b "\\t"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
         | '\\' -> Buffer.add_char b '\\'
         | 't' -> Buffer.add_char b '\t'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | c ->
             Buffer.add_char b '\\';
             Buffer.add_char b c);
         i := !i + 2
       end
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b
  end

let encode_row fields = String.concat "\t" (List.map escape fields)
let decode_row line = List.map unescape (String.split_on_char '\t' line)
let terminator = "."
let stuff line = if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let unstuff line =
  if String.length line >= 2 && line.[0] = '.' && line.[1] = '.' then
    String.sub line 1 (String.length line - 1)
  else line
