module Protocol = Protocol
module Es = Store.Encoded_store
module Epoch = Store.Epoch
module Bgp = Query.Bgp

type config = {
  host : string;
  port : int;
  strategy : Rqa.Answering.strategy;
  profile : Engine.Profile.t;
  cache_mode : Cache.mode option;
  budget : int option;
  warm : Query.Bgp.t list;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    strategy = Rqa.Answering.Gcov;
    profile = Engine.Profile.postgres_like;
    cache_mode = None;
    budget = None;
    warm = [];
  }

let strategy_of_string = function
  | "saturation" -> Some Rqa.Answering.Saturation
  | "ucq" -> Some Rqa.Answering.Ucq
  | "scq" -> Some Rqa.Answering.Scq
  | "ecov" -> Some (Rqa.Answering.Ecov Rqa.Cover_space.default_budget)
  | "gcov" -> Some Rqa.Answering.Gcov
  | _ -> None

(* Process-level serving metrics.  Registered at module initialization,
   so any binary linking the server exports the families zero-valued —
   the `rdfqa stats --prom` + validate_metrics --require contract. *)
let c_connections =
  Metrics.counter "server.connections" ~help:"Client connections accepted"
let c_requests =
  Metrics.counter "server.requests" ~help:"Requests served (OK and ERR)"
let c_errors = Metrics.counter "server.errors" ~help:"Requests answered with ERR"
let c_rejected =
  Metrics.counter "server.rejected" ~help:"Queries refused by cost admission"
let c_writes =
  Metrics.counter "server.writes" ~help:"INSERT/DELETE requests applied"
let g_inflight =
  Metrics.gauge "server.inflight" ~help:"Requests currently executing"
let g_epoch =
  Metrics.gauge "server.epoch" ~help:"Store epoch (completed write sections)"

type t = {
  store : Es.t;
  cache : Cache.t;
  ep : Epoch.t;
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* the system the boot warm-up ran on; write sections reuse it to
     re-warm after schema changes *)
  warm_sys : Rqa.Answering.system;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;
  served : int Atomic.t;
  lock : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable conn_seq : int;
  mutable accept_thread : Thread.t option;
  mutable drained : bool;
}

let port t = t.bound_port
let epoch t = t.ep
let requests_served t = Atomic.get t.served

(* ---- request handling ---- *)

let load_triples path =
  let g =
    if Filename.check_suffix path ".ttl" then Rdf.Turtle.load_file path
    else Rdf.Ntriples.load_file path
  in
  List.map Rdf.Schema.constr_to_triple
    (Rdf.Schema.constraints (Rdf.Graph.schema g))
  @ Rdf.Graph.fact_list g

let respond oc status payload =
  let b = Buffer.create 256 in
  Buffer.add_string b status;
  Buffer.add_char b '\n';
  List.iter
    (fun line ->
      Buffer.add_string b (Protocol.stuff line);
      Buffer.add_char b '\n')
    payload;
  Buffer.add_string b Protocol.terminator;
  Buffer.add_char b '\n';
  output_string oc (Buffer.contents b);
  flush oc

let err oc msg =
  Metrics.add c_errors 1;
  (* keep ERR on one line whatever the exception rendered to *)
  let msg =
    String.map (function '\n' | '\r' -> ' ' | c -> c) msg
  in
  respond oc ("ERR " ^ msg) []

(* True when compiling [q] would dictionary-encode a new term.  After the
   boot warm-up every reformulation-introduced constant (schema vocabulary)
   is already interned, so only ad-hoc constants can be missing — and those
   are interned under a write section before the query's read section,
   keeping the dictionary immutable while any reader is pinned. *)
let needs_intern store (q : Bgp.t) =
  let missing = function
    | Bgp.Var _ -> false
    | Bgp.Const c -> Es.encode_term store c = None
  in
  List.exists missing q.Bgp.head
  || List.exists
       (fun (a : Bgp.atom) -> missing a.s || missing a.p || missing a.o)
       q.Bgp.body

(* Static cost admission for one request: check the SCQ-cover JUCQ (the
   same statement `rdfqa check --cost` admits) against the configured
   budget, without arming the global Cost_verify switch — cover choice and
   charge totals stay untouched.  Over-capacity reformulations are left to
   the engine's own refusal path. *)
let admission_error t sys q =
  match t.config.budget with
  | None -> None
  | Some budget -> (
      let engine = Rqa.Answering.engine sys in
      let oracle = Engine.Executor.cost_oracle engine in
      let refm = Rqa.Answering.reformulator sys in
      let capacity = oracle.Analysis.Cost_verify.max_union_terms in
      let cover = Query.Jucq.scq_cover q in
      let too_large =
        List.exists
          (fun f ->
            Reformulation.Reformulate.count_product_bound refm
              (Query.Jucq.cover_query q cover f)
            > capacity)
          cover
      in
      if too_large then None
      else
        let reformulate cq = Reformulation.Reformulate.reformulate refm cq in
        match Query.Jucq.make ~reformulate q cover with
        | j -> (
            let diags =
              Analysis.Cost_verify.admission oracle ~budget ~context:"server"
                (Analysis.Cost_verify.Jucq j)
            in
            match Analysis.Diagnostic.errors diags with
            | [] -> None
            | d :: _ -> Some (Analysis.Diagnostic.to_string d))
        | exception Reformulation.Reformulate.Too_large _ -> None)

let handle_query t sys oc strategy_name text =
  let strategy =
    match strategy_name with
    | None -> Some t.config.strategy
    | Some s -> strategy_of_string s
  in
  match strategy with
  | None -> err oc ("unknown strategy: " ^ Option.get strategy_name)
  | Some strategy -> (
      match Query.Sparql.parse text with
      | exception (Invalid_argument m | Failure m) -> err oc ("bad query: " ^ m)
      | q -> (
          let q = Bgp.normalize q in
          let engine = Rqa.Answering.engine sys in
          (* intern ad-hoc constants writer-exclusively, before pinning *)
          if needs_intern t.store q then
            Epoch.write t.ep (fun () ->
                Engine.Executor.intern_constants engine q);
          Epoch.read t.ep @@ fun pinned ->
          match admission_error t sys q with
          | Some msg ->
              Metrics.add c_rejected 1;
              err oc ("rejected: " ^ msg)
          | None -> (
              match Rqa.Answering.answer sys strategy q with
              | r ->
                  let ex =
                    match strategy with
                    | Rqa.Answering.Saturation ->
                        Rqa.Answering.saturated_engine sys
                    | _ -> engine
                  in
                  let rows = Engine.Executor.decode ex r.Rqa.Answering.answers in
                  let status =
                    Printf.sprintf
                      "OK rows=%d union_terms=%d epoch=%d sv=%d dv=%d \
                       planning_ms=%.2f execution_ms=%.2f"
                      (List.length rows) r.Rqa.Answering.union_terms pinned
                      (Es.schema_version t.store) (Es.data_version t.store)
                      r.Rqa.Answering.planning_ms r.Rqa.Answering.execution_ms
                  in
                  respond oc status
                    (List.map
                       (fun row ->
                         Protocol.encode_row (List.map Rdf.Term.to_string row))
                       rows)
              | exception Engine.Profile.Engine_failure { engine; reason } ->
                  err oc
                    (Printf.sprintf "engine failure (%s): %s" engine
                       (Engine.Profile.failure_to_string reason)))))

let handle_update t oc ~insert path =
  match load_triples path with
  | exception Sys_error m -> err oc ("cannot read " ^ path ^ ": " ^ m)
  | exception (Invalid_argument m | Failure m) ->
      err oc ("cannot parse " ^ path ^ ": " ^ m)
  | triples ->
      let s, d =
        Epoch.write t.ep (fun () ->
            let s, d =
              if insert then Es.insert_triples t.store triples
              else Es.delete_triples t.store triples
            in
            (* schema moved: new vocabulary may appear in reformulations,
               so re-intern it while readers are still excluded *)
            if s > 0 then Rqa.Answering.warm_up t.warm_sys t.config.warm;
            (* reclamation-style cleanup: runs after the epoch bump, with
               the drained epoch provably unreferenced *)
            Epoch.defer t.ep (fun () -> Es.observe_metrics t.store);
            (s, d))
      in
      Metrics.add c_writes 1;
      Metrics.set_gauge g_epoch (float_of_int (Epoch.epoch t.ep));
      respond oc
        (Printf.sprintf "OK schema=%d data=%d epoch=%d sv=%d dv=%d" s d
           (Epoch.epoch t.ep) (Es.schema_version t.store)
           (Es.data_version t.store))
        []

let stats_lines t =
  [
    Printf.sprintf "epoch=%d" (Epoch.epoch t.ep);
    Printf.sprintf "active_readers=%d" (Epoch.active_readers t.ep);
    Printf.sprintf "waiting_writers=%d" (Epoch.waiting_writers t.ep);
    Printf.sprintf "reads=%d" (Epoch.reads t.ep);
    Printf.sprintf "writes=%d" (Epoch.writes t.ep);
    Printf.sprintf "deferred_run=%d" (Epoch.deferred_run t.ep);
    Printf.sprintf "requests=%d" (Atomic.get t.served);
    Printf.sprintf "inflight=%d" (Atomic.get t.inflight);
    Printf.sprintf "triples=%d" (Es.size t.store);
    Printf.sprintf "schema_version=%d" (Es.schema_version t.store);
    Printf.sprintf "data_version=%d" (Es.data_version t.store);
    Printf.sprintf "jobs=%d" (Par.effective_jobs ());
    Printf.sprintf "cache=%s" (Cache.stats_to_string (Cache.stats t.cache));
  ]

(* One request; returns [false] when the connection should close. *)
let handle_line t sys oc line =
  Atomic.incr t.inflight;
  Metrics.set_gauge g_inflight (float_of_int (Atomic.get t.inflight));
  Metrics.add c_requests 1;
  Atomic.incr t.served;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.inflight;
      Metrics.set_gauge g_inflight (float_of_int (Atomic.get t.inflight)))
    (fun () ->
      match Protocol.parse_request line with
      | Error msg ->
          err oc msg;
          true
      | Ok (Protocol.Query { strategy; text }) ->
          handle_query t sys oc strategy text;
          true
      | Ok (Protocol.Insert path) ->
          handle_update t oc ~insert:true path;
          true
      | Ok (Protocol.Delete path) ->
          handle_update t oc ~insert:false path;
          true
      | Ok Protocol.Stats ->
          respond oc "OK" (stats_lines t);
          true
      | Ok Protocol.Prom ->
          Es.observe_metrics t.store;
          Metrics.set_gauge g_epoch (float_of_int (Epoch.epoch t.ep));
          respond oc "OK" (String.split_on_char '\n' (Metrics.to_prometheus ()));
          true
      | Ok Protocol.Ping ->
          respond oc "OK pong" [];
          true
      | Ok Protocol.Quit ->
          respond oc "OK bye" [];
          false)

(* ---- connection lifecycle ---- *)

let rec conn_loop t sys ic oc =
  if Atomic.get t.stopping then ()
  else
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let continue =
          try handle_line t sys oc line
          with
          | Sys_error _ -> false (* peer went away mid-response *)
          | e ->
              (try err oc ("internal error: " ^ Printexc.to_string e)
               with _ -> ());
              true
        in
        if continue then conn_loop t sys ic oc

let client_main t id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.lock;
      Hashtbl.remove t.conns id;
      Mutex.unlock t.lock)
    (fun () ->
      (* build the per-connection system inside a read section: [make]
         snapshots store statistics and must not race a writer *)
      let sys =
        Epoch.read t.ep (fun _ ->
            Rqa.Answering.make ~profile:t.config.profile ~cache:t.cache
              t.store)
      in
      conn_loop t sys ic oc)

(* Waits in [select] with a short timeout rather than parking in [accept]:
   a bare [accept] cannot be woken portably (Linux [shutdown] on a
   listening socket fails with ENOTCONN, [close] from another thread does
   not interrupt it), so the loop polls the stop flag between waits. *)
let accept_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.1 with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | exception
            Unix.Unix_error
              ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
            continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            Metrics.add c_connections 1;
            Mutex.lock t.lock;
            let id = t.conn_seq in
            t.conn_seq <- id + 1;
            Hashtbl.replace t.conns id fd;
            let th = Thread.create (fun () -> client_main t id fd) () in
            t.conn_threads <- th :: t.conn_threads;
            Mutex.unlock t.lock)
  done

(* ---- lifecycle ---- *)

let start config store =
  (* a client closing mid-response must surface as Sys_error, not kill
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let cache = Cache.create store in
  (match config.cache_mode with
  | Some m -> Cache.set_mode cache m
  | None -> ());
  let warm_sys = Rqa.Answering.make ~profile:config.profile ~cache store in
  Rqa.Answering.warm_up warm_sys config.warm;
  Es.observe_metrics store;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd 64;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> config.port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let t =
    {
      store;
      cache;
      ep = Epoch.create ();
      config;
      listen_fd;
      bound_port;
      warm_sys;
      stopping = Atomic.make false;
      inflight = Atomic.make 0;
      served = Atomic.make 0;
      lock = Mutex.create ();
      conns = Hashtbl.create 16;
      conn_threads = [];
      conn_seq = 0;
      accept_thread = None;
      drained = false;
    }
  in
  Metrics.set_gauge g_epoch 0.0;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    (* shutdown (not close) reliably wakes a thread blocked in [accept];
       the descriptor itself is closed by [stop] after the join *)
    try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

let wait t =
  (* Poll instead of parking in [Thread.join]: [Thread.delay] gives the
     runtime regular safepoints, so a signal handler calling
     {!request_stop} executes even while every other thread blocks in a
     system call. *)
  while not (Atomic.get t.stopping) do
    Thread.delay 0.05
  done;
  match t.accept_thread with Some th -> Thread.join th | None -> ()

let stop t =
  request_stop t;
  wait t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let drain =
    Mutex.lock t.lock;
    let first = not t.drained in
    t.drained <- true;
    let threads = t.conn_threads in
    t.conn_threads <- [];
    (* half-close: blocked readers see EOF; in-flight responses still
       flush through the send side *)
    if first then
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        t.conns;
    Mutex.unlock t.lock;
    threads
  in
  List.iter Thread.join drain
