(** The `rdfqa serve` line protocol.

    One request is one line; one response is a status line, zero or more
    payload lines, and a lone [.] terminator — SMTP-style, so a shell
    one-liner over [nc] works as a client.  Requests:

    {v
    QUERY <sparql>            answer under the server's default strategy
    QUERY/<strategy> <sparql> override the strategy for this request
                              (saturation | ucq | scq | ecov | gcov)
    INSERT <path>             load <path> (server-side, .nt/.ttl) and
                              insert its triples
    DELETE <path>             delete <path>'s triples
    STATS                     one k=v line per server/store statistic
    PROM                      Prometheus text exposition of the registry
    PING                      liveness probe
    QUIT                      close the connection
    v}

    Responses: [OK k=v ...] or [ERR <message>], then payload lines, then
    [.].  Query payload rows are tab-separated {!escape}d terms in the
    exact order the single-shot CLI prints them.  Payload lines are
    dot-stuffed: a line starting with [.] gains a second leading dot on
    the wire ({!stuff}/{!unstuff}). *)

type request =
  | Query of { strategy : string option; text : string }
  | Insert of string
  | Delete of string
  | Stats
  | Prom
  | Ping
  | Quit

val parse_request : string -> (request, string) result
(** Parses one request line.  Keywords are case-sensitive (uppercase);
    [Error] carries a human-readable reason suitable for an [ERR]
    response. *)

val request_to_line : request -> string
(** Renders a request back to its wire line (clients, tests). *)

val escape : string -> string
(** Escapes backslash, tab, newline and carriage return ([\\], [\t],
    [\n], [\r]) so any term fits one tab-separated field.  Identity on
    typical RDF terms. *)

val unescape : string -> string
(** Inverse of {!escape}; unknown escapes pass through undisturbed. *)

val encode_row : string list -> string
(** One answer row as a payload line: {!escape}d fields joined by tabs. *)

val decode_row : string -> string list
(** Inverse of {!encode_row}. *)

val terminator : string
(** The response-ending line, ["."] . *)

val stuff : string -> string
(** Dot-stuffs a payload line for the wire. *)

val unstuff : string -> string
(** Removes one level of dot-stuffing. *)
