(** Tier 4: workload-selected materialized views.

    Holds {!Engine.Executor.fragment_snapshot}s for cover queries chosen
    by the view selector, keyed by canonical cover-query string and
    version-stamped against the store.  {!lookup} is the probe
    {!Engine.Executor.eval_jucq} consults per fragment: on a hit the
    fragment's reformulate-and-scan pipeline is replaced by a charge-log
    replay with bit-identical observables.

    Invalidation is incremental: definitions carry a property-code
    footprint, and a data change only re-records the views whose
    footprint intersects the changed properties
    ({!Store.Encoded_store.changes_since}); a schema change rebuilds
    every definition (reformulations changed generation).  Both happen
    lazily, on the first probe or {!refresh} after the change. *)

type t

type info = {
  key : string;  (** canonical cover-query string *)
  rows : int;  (** deduplicated materialized rows *)
  bytes : int;  (** approximate heap bytes of the snapshot *)
  rematerializations : int;  (** contents re-recordings since install *)
}

val create : reformulate:(Query.Bgp.t -> Query.Ucq.t) -> Store.Encoded_store.t -> t
(** A view tier over a store.  [reformulate] {e must} be the answering
    layer's tier-1-backed closure (one physical UCQ per canonical query
    per schema generation): serve-time soundness is established by
    pointer identity between a definition's reformulation and the use
    site's. *)

val install : t -> Query.Bgp.t -> unit
(** Materializes the cover query as a view (idempotent per canonical
    key).  Recording runs on a dedicated engine and charges nothing. *)

val lookup :
  t ->
  Query.Bgp.t * Query.Ucq.t ->
  Engine.Executor.fragment_snapshot option
(** The executor's per-fragment probe (pass [lookup v] as
    [?views]).  Revalidates against the store versions first, then serves
    the keyed definition only under physical identity of the
    reformulations; every hit re-checks soundness (RF002) and freshness
    (RF003) through {!Analysis.Plan_verify.check_exn}. *)

val refresh : t -> unit
(** Forces revalidation now (probes also revalidate lazily). *)

val clear : t -> unit
(** Drops all definitions. *)

val count : t -> int
(** Installed definitions. *)

val bytes : t -> int
(** Approximate bytes across all snapshots. *)

val hits : t -> int
(** Probes served from a view (this instance). *)

val misses : t -> int
(** Probes that fell back to real evaluation (this instance). *)

val rematerializations : t -> int
(** Total contents re-recordings across definitions. *)

val definitions : t -> info list
(** Per-view report rows, in install order. *)

val stats_to_string : t -> string
(** One-line rendering for CLI output. *)
