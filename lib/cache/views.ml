open Query
module Es = Store.Encoded_store

(* Tier 4: workload-selected materialized views.

   Where tiers 1-3 memoize planning artifacts and whole answers, this
   tier materializes {e fragments}: the cover queries that ECov/GCov
   covers share across a workload, stored as executor fragment snapshots
   (charge logs + deduplicated relation — see
   {!Engine.Executor.record_fragment}).  Definitions are keyed by the
   canonical cover-query string and schema-versioned (a schema change
   changes every reformulation, so definitions rebuild); contents are
   data-versioned and re-materialize incrementally: a fact change only
   re-records the views whose property footprint it touches, everything
   else is restamped.

   Soundness at serve time rests on tier-1 physical identity: a
   definition's reformulation is obtained through the same
   [reformulate] closure the answering layer hands to [Jucq.make], and a
   view is only served when the use-site UCQ {e is} (pointer-equal) the
   definition's — which implies identical compiled plans, hence an
   identical charge stream.  The RF002/RF003 checks run on every hit
   under {!Analysis.Plan_verify.check_exn} as a tripwire against planner
   bugs that would serve a wrong or stale view. *)

let m_hits =
  Metrics.counter "views.hits"
    ~help:"Fragment evaluations served from a materialized view"
let m_misses =
  Metrics.counter "views.misses"
    ~help:"View probes that found no usable view"
let m_remat =
  Metrics.counter "views.rematerializations"
    ~help:"View contents re-recorded after store changes"
let g_count =
  Metrics.gauge "views.count" ~help:"Materialized view definitions installed"
let g_bytes =
  Metrics.gauge "views.bytes"
    ~help:"Approximate bytes held by materialized view contents"

(* The set of constant property codes a view's reformulation selects on.
   Any variable-property atom — or a property constant the store cannot
   encode yet (a later insert could introduce it) — widens the footprint
   to [Universal]: every data change then re-records the view. *)
type footprint = Universal | Props of int list  (* sorted, distinct *)

type def = {
  vkey : string;
  vcq : Bgp.t;  (* the defining cover query *)
  vhead : string list;  (* [Bgp.head_vars vcq] — the join columns *)
  mutable vucq : Ucq.t;  (* its reformulation, current schema generation *)
  mutable vfootprint : footprint;
  mutable vsnap : Engine.Executor.fragment_snapshot;
  mutable vremat : int;  (* contents re-recordings since install *)
}

type info = {
  key : string;
  rows : int;
  bytes : int;
  rematerializations : int;
}

type t = {
  store : Es.t;
  recorder : Engine.Executor.t;
      (* dedicated recording engine: record_fragment never charges it, so
         materialization is invisible to every answering engine's
         operation totals *)
  reformulate : Bgp.t -> Ucq.t;
      (* the answering layer's tier-1-backed closure — the source of the
         physical identity the serve-time soundness check relies on *)
  defs : (string, def) Hashtbl.t;
  mutable dorder : string list;  (* install order, for reports *)
  mutable vschema : int;  (* store versions the contents are valid at *)
  mutable vdata : int;
  mutable vhits : int;  (* per-instance counters for reports *)
  mutable vmisses : int;
  lock : Mutex.t;
}

let create ~reformulate store =
  {
    store;
    recorder = Engine.Executor.create store;
    reformulate;
    defs = Hashtbl.create 64;
    dorder = [];
    vschema = Es.schema_version store;
    vdata = Es.data_version store;
    vhits = 0;
    vmisses = 0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(* The same canonicalization tier 1 keys reformulations by: two cover
   queries with equal keys get the same physical UCQ from [reformulate]
   within one schema generation. *)
let key_of cq =
  Bgp.to_string (Bgp.canonical (Bgp.dedup_body (Bgp.normalize cq)))

let footprint_of store (u : Ucq.t) =
  let exception Any in
  try
    let props =
      List.fold_left
        (fun acc (cq : Bgp.t) ->
          List.fold_left
            (fun acc (a : Bgp.atom) ->
              match a.Bgp.p with
              | Bgp.Var _ -> raise Any
              | Bgp.Const c -> (
                  match Es.encode_term store c with
                  | Some code -> code :: acc
                  | None -> raise Any))
            acc cq.Bgp.body)
        [] (Ucq.disjuncts u)
    in
    Props (List.sort_uniq Int.compare props)
  with Any -> Universal

let bytes_locked t =
  Hashtbl.fold
    (fun _ d acc -> acc + Engine.Executor.snapshot_bytes d.vsnap)
    t.defs 0

let publish_gauges_locked t =
  Metrics.set_gauge g_count (float_of_int (Hashtbl.length t.defs));
  Metrics.set_gauge g_bytes (float_of_int (bytes_locked t))

let rematerialize_locked t def =
  def.vsnap <- Engine.Executor.record_fragment t.recorder def.vucq;
  def.vremat <- def.vremat + 1;
  Metrics.add m_remat 1

(* Brings every definition up to the store's versions.  Schema change:
   reformulations changed generation, so definitions rebuild (new UCQ,
   new footprint) and re-record.  Data change: re-record only the
   definitions whose footprint intersects the changed properties
   ([changes_since]); when the bounded change log has been outrun
   ([None]) every view re-records.  Untouched-footprint views are merely
   restamped — their selections, statistics-driven plan orders and hence
   recorded charge streams are unchanged by facts of other properties
   (their answers are trivially unchanged; emission {e order} may drift
   after id-compacting deletes, which no observable depends on). *)
let revalidate_locked t =
  let sv = Es.schema_version t.store and dv = Es.data_version t.store in
  if sv <> t.vschema then begin
    Hashtbl.iter
      (fun _ def ->
        def.vucq <- t.reformulate def.vcq;
        def.vfootprint <- footprint_of t.store def.vucq;
        rematerialize_locked t def)
      t.defs;
    t.vschema <- sv;
    t.vdata <- dv;
    publish_gauges_locked t
  end
  else if dv <> t.vdata then begin
    let touched =
      match Es.changes_since t.store ~since:t.vdata with
      | None -> None
      | Some changes ->
          Some
            (List.sort_uniq Int.compare
               (List.map (fun (c : Es.change) -> c.Es.cp) changes))
    in
    Hashtbl.iter
      (fun _ def ->
        let affected =
          match (touched, def.vfootprint) with
          | None, _ | Some _, Universal -> true
          | Some props, Props fp -> List.exists (fun p -> List.mem p fp) props
        in
        if affected then rematerialize_locked t def)
      t.defs;
    t.vdata <- dv;
    publish_gauges_locked t
  end

let install t cq =
  let cq = Bgp.normalize cq in
  let key = key_of cq in
  with_lock t @@ fun () ->
  revalidate_locked t;
  if not (Hashtbl.mem t.defs key) then begin
    let ucq = t.reformulate cq in
    let snap = Engine.Executor.record_fragment t.recorder ucq in
    Hashtbl.replace t.defs key
      {
        vkey = key;
        vcq = cq;
        vhead = Bgp.head_vars cq;
        vucq = ucq;
        vfootprint = footprint_of t.store ucq;
        vsnap = snap;
        vremat = 0;
      };
    t.dorder <- t.dorder @ [ key ];
    publish_gauges_locked t
  end

let refresh t = with_lock t (fun () -> revalidate_locked t)

let lookup t ((cq : Bgp.t), (u : Ucq.t)) =
  with_lock t @@ fun () ->
  revalidate_locked t;
  match Hashtbl.find_opt t.defs (key_of cq) with
  | None ->
      t.vmisses <- t.vmisses + 1;
      Metrics.add m_misses 1;
      None
  | Some def ->
      (* Tripwires (RDFQA_VERIFY / test builds): a keyed definition that
         is not a sound rewrite, or contents not stamped at the store's
         versions, reject the statement instead of being served. *)
      Analysis.Plan_verify.check_exn (fun () ->
          Analysis.View_verify.verify_rewrite ~context:"views/lookup"
            ~head:def.vhead
            ~arity:(Engine.Executor.snapshot_arity def.vsnap)
            ~terms:(Engine.Executor.snapshot_terms def.vsnap)
            ~cq ~ucq:u);
      Analysis.Plan_verify.check_exn (fun () ->
          Analysis.View_verify.verify_freshness ~context:"views/lookup"
            ~def_schema:t.vschema ~def_data:t.vdata
            ~schema:(Es.schema_version t.store)
            ~data:(Es.data_version t.store));
      (* α-renamed cover queries share one canonical key and hence one
         physical tier-1 UCQ; the use site's head variable NAMES may
         differ from the definition's, but both map positionally onto the
         UCQ's head columns (Jucq.make constructs the reformulation from
         the cover query's head), so pointer identity of the UCQ is the
         whole soundness condition. *)
      if def.vucq == u then begin
        t.vhits <- t.vhits + 1;
        Metrics.add m_hits 1;
        Some def.vsnap
      end
      else begin
        (* same key through a different reformulation cache (no physical
           identity): structurally sound or not, serving is not provably
           charge-identical — fall back to real evaluation *)
        t.vmisses <- t.vmisses + 1;
        Metrics.add m_misses 1;
        None
      end

let count t = with_lock t @@ fun () -> Hashtbl.length t.defs
let bytes t = with_lock t @@ fun () -> bytes_locked t
let hits t = t.vhits
let misses t = t.vmisses

let rematerializations t =
  with_lock t @@ fun () ->
  Hashtbl.fold (fun _ d acc -> acc + d.vremat) t.defs 0

let definitions t =
  with_lock t @@ fun () ->
  List.filter_map
    (fun key ->
      match Hashtbl.find_opt t.defs key with
      | None -> None
      | Some d ->
          Some
            {
              key = d.vkey;
              rows = Engine.Executor.snapshot_rows d.vsnap;
              bytes = Engine.Executor.snapshot_bytes d.vsnap;
              rematerializations = d.vremat;
            })
    t.dorder

let clear t =
  with_lock t @@ fun () ->
  Hashtbl.reset t.defs;
  t.dorder <- [];
  publish_gauges_locked t

let stats_to_string t =
  let infos = definitions t in
  Printf.sprintf
    "views: %d installed, %d bytes, %d hits, %d misses, %d rematerializations"
    (List.length infos)
    (List.fold_left (fun acc i -> acc + i.bytes) 0 infos)
    t.vhits t.vmisses
    (List.fold_left (fun acc i -> acc + i.rematerializations) 0 infos)
