(** A bounded least-recently-used map with byte-size accounting: the
    backing policy of the answer cache (tier 3).

    Every entry carries a caller-supplied byte weight; the cache holds at
    most [capacity_bytes] worth of entries and evicts from the cold end
    until the budget fits.  [find] refreshes recency.  Not thread-safe:
    callers serialize access (the {!Cache} facade holds one lock across
    all tiers). *)

type 'a t

val create : capacity_bytes:int -> 'a t
(** An empty cache.  [capacity_bytes] must be positive; an entry larger
    than the whole capacity is refused by {!add} (never stored, counted as
    an eviction). *)

val capacity_bytes : 'a t -> int
(** The configured byte budget. *)

val length : 'a t -> int
(** Number of live entries. *)

val bytes : 'a t -> int
(** Sum of the live entries' byte weights. *)

val evictions : 'a t -> int
(** Total entries evicted (or refused for size) since creation. *)

val find : 'a t -> string -> 'a option
(** Looks a key up and, on a hit, marks it most-recently used. *)

val add : 'a t -> string -> bytes:int -> 'a -> unit
(** Inserts or replaces a binding (the new binding is most-recently used),
    then evicts least-recently-used entries until the byte budget holds.
    [bytes] must be non-negative. *)

val remove : 'a t -> string -> unit
(** Drops a binding if present (not counted as an eviction). *)

val clear : 'a t -> unit
(** Drops every binding (not counted as evictions). *)

val keys_by_recency : 'a t -> string list
(** Live keys, most-recently used first (tests and introspection). *)
