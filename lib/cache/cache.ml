module Lru = Lru
module Es = Store.Encoded_store
module Reformulate = Reformulation.Reformulate
open Query

type mode = Off | On | Answers_off

let mode_of_string = function
  | "on" -> Ok On
  | "off" -> Ok Off
  | "answers-off" -> Ok Answers_off
  | s -> Error (Printf.sprintf "bad cache mode %S (want on|off|answers-off)" s)

let mode_to_string = function
  | On -> "on"
  | Off -> "off"
  | Answers_off -> "answers-off"

let default_mode () =
  match Sys.getenv_opt "RDFQA_CACHE" with
  | None -> On
  | Some s -> ( match mode_of_string s with Ok m -> m | Error _ -> On)

type tier_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type stats = {
  reformulation : tier_stats;
  cover : tier_stats;
  answer : tier_stats;
}

type answer_entry = {
  answers : Engine.Relation.t;
  cover : Jucq.cover option;
  union_terms : int;
  fragment_terms : int list;
  estimated_cost : float;
  covers_explored : int;
}

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let fresh_counters () = { hits = 0; misses = 0; evictions = 0 }

(* Process-level tier counters (lib/metrics): the per-instance [counters]
   above back {!stats}; these accumulate across every cache in the process
   and mirror the per-query [Obs.count] calls below one-for-one. *)
let m_ref_hits = Metrics.counter "cache.reformulation.hits"
let m_ref_misses = Metrics.counter "cache.reformulation.misses"
let m_ref_evictions = Metrics.counter "cache.reformulation.evictions"
let m_cov_hits = Metrics.counter "cache.cover.hits"
let m_cov_misses = Metrics.counter "cache.cover.misses"
let m_cov_evictions = Metrics.counter "cache.cover.evictions"
let m_ans_hits = Metrics.counter "cache.answer.hits"
let m_ans_misses = Metrics.counter "cache.answer.misses"
let m_ans_evictions = Metrics.counter "cache.answer.evictions"
let g_ans_entries =
  Metrics.gauge "cache.answer.entries" ~help:"Answer-cache resident entries"
let g_ans_bytes =
  Metrics.gauge "cache.answer.bytes" ~help:"Answer-cache resident bytes"

type t = {
  store : Es.t;
  max_terms : int option;
  mutable mode : mode;
  lock : Mutex.t;
  mutable reformulator : Reformulate.t;
  mutable generation : int;  (* bumps when the schema version moves *)
  mutable seen_schema : int;
  mutable seen_data : int;
  t1 : (string, Ucq.t) Hashtbl.t;
  t2_jucq : (string, Jucq.t) Hashtbl.t;
  t2_cost : (string, float) Hashtbl.t;
  t2_frag : (string, float) Hashtbl.t;
  t3 : answer_entry Lru.t;
  c1 : counters;
  c2 : counters;
  c3 : counters;
}

let make_reformulator max_terms schema =
  match max_terms with
  | Some max_terms -> Reformulate.create ~max_terms schema
  | None -> Reformulate.create schema

let create ?mode ?max_terms ?(answer_capacity_bytes = 64 * 1024 * 1024)
    ?reformulator store =
  let mode = match mode with Some m -> m | None -> default_mode () in
  {
    store;
    max_terms;
    mode;
    lock = Mutex.create ();
    reformulator =
      (match reformulator with
      | Some r -> r
      | None -> make_reformulator max_terms (Es.schema store));
    generation = 0;
    seen_schema = Es.schema_version store;
    seen_data = Es.data_version store;
    t1 = Hashtbl.create 64;
    t2_jucq = Hashtbl.create 256;
    t2_cost = Hashtbl.create 256;
    t2_frag = Hashtbl.create 256;
    t3 = Lru.create ~capacity_bytes:answer_capacity_bytes;
    c1 = fresh_counters ();
    c2 = fresh_counters ();
    c3 = fresh_counters ();
  }

let store t = t.store
let mode t = t.mode
let set_mode t m = t.mode <- m

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(* ---- version-driven invalidation (lock held) ---- *)

let flush_tier2 t =
  let n =
    Hashtbl.length t.t2_jucq + Hashtbl.length t.t2_cost
    + Hashtbl.length t.t2_frag
  in
  if n > 0 then begin
    t.c2.evictions <- t.c2.evictions + n;
    Metrics.add m_cov_evictions n;
    Obs.count "cache.cover.invalidate" n;
    Hashtbl.reset t.t2_jucq;
    Hashtbl.reset t.t2_cost;
    Hashtbl.reset t.t2_frag
  end

let flush_tier3 t =
  let n = Lru.length t.t3 in
  if n > 0 then begin
    t.c3.evictions <- t.c3.evictions + n;
    Metrics.add m_ans_evictions n;
    Obs.count "cache.answer.invalidate" n;
    Lru.clear t.t3
  end

(* The invalidation matrix.  A schema change obsoletes everything (and the
   reformulation engine itself); a data-only change leaves tier 1 warm —
   reformulations read no facts — but flushes the cost- and
   answer-bearing tiers. *)
let revalidate t =
  let sv = Es.schema_version t.store and dv = Es.data_version t.store in
  if sv <> t.seen_schema then begin
    let n = Hashtbl.length t.t1 in
    if n > 0 then begin
      t.c1.evictions <- t.c1.evictions + n;
      Metrics.add m_ref_evictions n;
      Obs.count "cache.reformulation.invalidate" n
    end;
    Hashtbl.reset t.t1;
    t.reformulator <- make_reformulator t.max_terms (Es.schema t.store);
    t.generation <- t.generation + 1;
    flush_tier2 t;
    flush_tier3 t;
    t.seen_schema <- sv;
    t.seen_data <- dv
  end
  else if dv <> t.seen_data then begin
    flush_tier2 t;
    flush_tier3 t;
    t.seen_data <- dv
  end

let reformulator t =
  locked t @@ fun () ->
  revalidate t;
  t.reformulator

(* ---- tier 1 ---- *)

let t1_key q = Bgp.to_string (Bgp.canonical (Bgp.dedup_body (Bgp.normalize q)))

let reformulate t q =
  match t.mode with
  | Off ->
      let r =
        locked t @@ fun () ->
        revalidate t;
        t.reformulator
      in
      Reformulate.reformulate r q
  | On | Answers_off -> (
      let key = t1_key q in
      let probe =
        locked t @@ fun () ->
        revalidate t;
        match Hashtbl.find_opt t.t1 key with
        | Some u ->
            t.c1.hits <- t.c1.hits + 1;
            Metrics.add m_ref_hits 1;
            Obs.count "cache.reformulation.hit" 1;
            `Hit u
        | None ->
            t.c1.misses <- t.c1.misses + 1;
            Metrics.add m_ref_misses 1;
            Obs.count "cache.reformulation.miss" 1;
            `Miss (t.reformulator, t.generation)
      in
      match probe with
      | `Hit u -> u
      | `Miss (r, gen) ->
          (* compute outside the lock: reformulations are pure functions
             of (schema generation, canonical CQ), so a racing domain
             computes the same union and the first insert wins — keeping
             one physical UCQ per key for the plan caches *)
          let u = Reformulate.reformulate r q in
          locked t @@ fun () ->
          if t.generation <> gen then u
          else begin
            match Hashtbl.find_opt t.t1 key with
            | Some u -> u
            | None ->
                Hashtbl.add t.t1 key u;
                u
          end)

(* ---- tier 2 ---- *)

type tier2 = { owner : t; prefix : string }

let tier2 t ~scope ~query_key =
  match t.mode with
  | Off -> None
  | On | Answers_off ->
      Some { owner = t; prefix = scope ^ "\x00" ^ query_key ^ "\x00" }

let t2_probe (h : tier2) counter_name tbl key =
  let t = h.owner in
  locked t @@ fun () ->
  revalidate t;
  match Hashtbl.find_opt tbl (h.prefix ^ key) with
  | Some v ->
      t.c2.hits <- t.c2.hits + 1;
      Metrics.add m_cov_hits 1;
      Obs.count (counter_name ^ ".hit") 1;
      Some v
  | None ->
      t.c2.misses <- t.c2.misses + 1;
      Metrics.add m_cov_misses 1;
      Obs.count (counter_name ^ ".miss") 1;
      None

let t2_find_jucq h key = t2_probe h "cache.cover" h.owner.t2_jucq key

let t2_add_jucq h key j =
  let t = h.owner in
  locked t @@ fun () ->
  revalidate t;
  let full = h.prefix ^ key in
  match Hashtbl.find_opt t.t2_jucq full with
  | Some j -> j
  | None ->
      Hashtbl.add t.t2_jucq full j;
      j

let t2_find_cost h key = t2_probe h "cache.cover" h.owner.t2_cost key

let t2_add_cost h key c =
  let t = h.owner in
  locked t @@ fun () ->
  revalidate t;
  let full = h.prefix ^ key in
  if not (Hashtbl.mem t.t2_cost full) then Hashtbl.add t.t2_cost full c

let t2_find_fragment h key = t2_probe h "cache.cover" h.owner.t2_frag key

let t2_add_fragment h key c =
  let t = h.owner in
  locked t @@ fun () ->
  revalidate t;
  let full = h.prefix ^ key in
  if not (Hashtbl.mem t.t2_frag full) then Hashtbl.add t.t2_frag full c

(* ---- tier 3 ---- *)

let entry_bytes (e : answer_entry) =
  (Engine.Relation.rows e.answers * Engine.Relation.cols e.answers * 8)
  + (8 * List.length e.fragment_terms)
  + 128

let find_answer t key =
  match t.mode with
  | Off | Answers_off -> None
  | On -> (
      locked t @@ fun () ->
      revalidate t;
      match Lru.find t.t3 key with
      | Some e ->
          t.c3.hits <- t.c3.hits + 1;
          Metrics.add m_ans_hits 1;
          Obs.count "cache.answer.hit" 1;
          Some e
      | None ->
          t.c3.misses <- t.c3.misses + 1;
          Metrics.add m_ans_misses 1;
          Obs.count "cache.answer.miss" 1;
          None)

let add_answer t key e =
  match t.mode with
  | Off | Answers_off -> ()
  | On ->
      locked t @@ fun () ->
      revalidate t;
      let before = Lru.evictions t.t3 in
      Lru.add t.t3 key ~bytes:(entry_bytes e) e;
      let evicted = Lru.evictions t.t3 - before in
      if evicted > 0 then begin
        Metrics.add m_ans_evictions evicted;
        Obs.count "cache.answer.evict" evicted
      end;
      Metrics.set_gauge g_ans_entries (float_of_int (Lru.length t.t3));
      Metrics.set_gauge g_ans_bytes (float_of_int (Lru.bytes t.t3))

(* ---- stats ---- *)

let stats t =
  locked t @@ fun () ->
  {
    reformulation =
      {
        hits = t.c1.hits;
        misses = t.c1.misses;
        evictions = t.c1.evictions;
        entries = Hashtbl.length t.t1;
        bytes = 0;
      };
    cover =
      {
        hits = t.c2.hits;
        misses = t.c2.misses;
        evictions = t.c2.evictions;
        entries =
          Hashtbl.length t.t2_jucq + Hashtbl.length t.t2_cost
          + Hashtbl.length t.t2_frag;
        bytes = 0;
      };
    answer =
      {
        hits = t.c3.hits;
        misses = t.c3.misses;
        evictions = t.c3.evictions + Lru.evictions t.t3;
        entries = Lru.length t.t3;
        bytes = Lru.bytes t.t3;
      };
  }

let tier_to_string name (s : tier_stats) =
  Printf.sprintf "%s %d/%d hits (%d entries%s%s)" name s.hits
    (s.hits + s.misses) s.entries
    (if s.bytes > 0 then Printf.sprintf ", %d B" s.bytes else "")
    (if s.evictions > 0 then Printf.sprintf ", %d evicted" s.evictions else "")

let stats_to_string s =
  String.concat "; "
    [
      tier_to_string "reformulation" s.reformulation;
      tier_to_string "cover" s.cover;
      tier_to_string "answers" s.answer;
    ]

(* Tier 4 lives in its own module; re-exported so users write
   [Cache.Views]. *)
module Views = Views
