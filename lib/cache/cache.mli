(** Store-version-aware memoization across the query-answering pipeline.

    Reformulation-based query answering pays a per-query planning cost —
    CQ→UCQ reformulation, cover search, JUCQ evaluation — that repeated
    traffic recomputes verbatim.  This module memoizes the three expensive
    stages, each keyed to the exact slice of store state it depends on:

    - {b tier 1, reformulation} (schema-versioned): canonical CQ →
      {!Query.Ucq.t}.  A reformulation depends only on the RDFS schema, so
      entries survive arbitrary fact updates; a schema change starts a
      fresh generation (new {!Reformulation.Reformulate.t} engine, empty
      table).  This subsumes the query-level memo the reformulation engine
      itself used to carry — which, being version-blind, would have served
      stale unions after a schema-changing update.
    - {b tier 2, cover/cost} (schema- {e and} data-versioned): per
      (scope, query, cover) JUCQ reformulations, cover costs and fragment
      costs, shared by ECov/GCov searches across systems.  Costs read data
      statistics, so any effective fact change flushes the tier.  [scope]
      isolates incomparable cost oracles (engine profile, oracle choice,
      calibrated coefficients).
    - {b tier 3, answers} (schema- and data-versioned, bounded): full
      result relations plus planning metadata in a byte-accounted LRU
      ({!Lru}).  Any effective store change flushes it.

    All entries are pure functions of (key, store snapshot); probes happen
    under one internal lock with computation outside it and first-insert
    wins, so concurrent domains agree and cached values keep the physical
    identity the engine's plan caches key on.  Per-tier hit/miss/eviction
    counters are kept and mirrored to {!Obs} counters (visible in [rdfqa
    trace]) when tracing is enabled. *)

module Lru : module type of Lru
(** Re-exported: the library root module hides its siblings. *)

type mode =
  | Off          (** no memoization (version tracking still applies) *)
  | On           (** all three tiers *)
  | Answers_off  (** tiers 1-2 only: plan caching without result caching *)

val mode_of_string : string -> (mode, string) result
(** Parses ["on"], ["off"], ["answers-off"]. *)

val mode_to_string : mode -> string

val default_mode : unit -> mode
(** The [RDFQA_CACHE] environment variable parsed with {!mode_of_string};
    [On] when unset or unparseable. *)

type tier_stats = {
  hits : int;
  misses : int;
  evictions : int;
      (** LRU evictions (tier 3) plus entries dropped by version-driven
          invalidation (all tiers). *)
  entries : int;  (** live entries *)
  bytes : int;    (** live byte weight (tier 3 only; 0 elsewhere) *)
}

type stats = {
  reformulation : tier_stats;
  cover : tier_stats;
  answer : tier_stats;
}

type t
(** A cache bound to one store.  Shareable across systems (the benchmark
    harness runs three engine profiles over one store) and across domains. *)

val create :
  ?mode:mode ->
  ?max_terms:int ->
  ?answer_capacity_bytes:int ->
  ?reformulator:Reformulation.Reformulate.t ->
  Store.Encoded_store.t ->
  t
(** A cache over a store.  [mode] defaults to {!default_mode}.
    [max_terms] is forwarded to the reformulation engines built per schema
    generation.  [answer_capacity_bytes] bounds tier 3 (default 64 MiB).
    [reformulator] seeds the current generation's engine (it must be bound
    to the store's current schema); one is built from the store otherwise. *)

val store : t -> Store.Encoded_store.t
val mode : t -> mode

val set_mode : t -> mode -> unit
(** Changes the mode in place.  Existing entries are kept (they are
    version-checked on every probe); disabled tiers simply stop being
    consulted. *)

val stats : t -> stats
(** Counter snapshot.  Hits/misses/evictions are cumulative since
    creation; entries/bytes reflect the live tables. *)

val reformulator : t -> Reformulation.Reformulate.t
(** The current schema generation's reformulation engine.  Do not retain
    across updates: a schema change replaces it. *)

val reformulate : t -> Query.Bgp.t -> Query.Ucq.t
(** Tier-1 memoized CQ→UCQ reformulation against the store's {e current}
    schema.  In {!Off} mode this still reformulates correctly (against the
    current generation's engine) — it just never memoizes.
    @raise Reformulation.Reformulate.Too_large as the underlying engine. *)

(** {2 Tier 2: cover/cost entries for one (scope, query)} *)

type tier2
(** A handle scoping tier-2 probes to one cost context and query.  Obtain
    one per search ({!Objective} creation); it pins the generation key
    prefix but every probe still revalidates versions. *)

val tier2 : t -> scope:string -> query_key:string -> tier2 option
(** [None] when the mode is {!Off} (callers then keep only their private
    per-search memo).  [scope] must identify everything the costs depend
    on besides the query: profile name, cost oracle, calibration. *)

val t2_find_jucq : tier2 -> string -> Query.Jucq.t option
val t2_add_jucq : tier2 -> string -> Query.Jucq.t -> Query.Jucq.t
(** First-insert-wins: the returned JUCQ is the winner, preserving the
    physical identity the engine's plan caches key on. *)

val t2_find_cost : tier2 -> string -> float option
val t2_add_cost : tier2 -> string -> float -> unit
val t2_find_fragment : tier2 -> string -> float option
val t2_add_fragment : tier2 -> string -> float -> unit

(** {2 Tier 3: answers} *)

type answer_entry = {
  answers : Engine.Relation.t;
  cover : Query.Jucq.cover option;
  union_terms : int;
  fragment_terms : int list;
  estimated_cost : float;
  covers_explored : int;
}
(** The cacheable part of an answering report (timings excluded: a cache
    hit reports its own, near-zero, times). *)

val find_answer : t -> string -> answer_entry option
(** Tier-3 probe; always [None] (and uncounted) in {!Off} and
    {!Answers_off} modes.  The key must cover strategy, engine profile,
    cost oracle and query — versions are the cache's business. *)

val add_answer : t -> string -> answer_entry -> unit
(** Inserts an answer (byte weight estimated from the relation's
    dimensions), evicting LRU entries beyond the byte budget.  A no-op in
    {!Off} and {!Answers_off} modes. *)

val stats_to_string : stats -> string
(** One-line rendering: per-tier [hits/lookups] plus eviction and byte
    figures, for CLI output. *)

(** {2 Tier 4: materialized views} *)

module Views : module type of Views
(** Workload-selected materialized views (see {!Views}). *)
