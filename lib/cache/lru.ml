(* Doubly-linked recency list (head = most recent) over a hashtable of
   nodes.  All operations are O(1) except eviction sweeps, which are O(1)
   per evicted entry. *)

type 'a node = {
  key : string;
  value : 'a;
  weight : int;  (* replacement drops and re-adds the node *)
  mutable prev : 'a node option;  (* towards the head / MRU end *)
  mutable next : 'a node option;  (* towards the tail / LRU end *)
}

type 'a t = {
  capacity_bytes : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable bytes : int;
  mutable evictions : int;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Lru.create: capacity_bytes <= 0";
  {
    capacity_bytes;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    evictions = 0;
  }

let capacity_bytes t = t.capacity_bytes
let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let evictions t = t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let drop t n ~evicted =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.bytes <- t.bytes - n.weight;
  if evicted then t.evictions <- t.evictions + 1

let rec evict_to_fit t =
  if t.bytes > t.capacity_bytes then
    match t.tail with
    | None -> ()
    | Some n ->
        drop t n ~evicted:true;
        evict_to_fit t

let add t key ~bytes value =
  if bytes < 0 then invalid_arg "Lru.add: negative bytes";
  (match Hashtbl.find_opt t.tbl key with
  | Some n -> drop t n ~evicted:false
  | None -> ());
  if bytes > t.capacity_bytes then
    (* would evict the whole cache and still not fit: refuse *)
    t.evictions <- t.evictions + 1
  else begin
    let n = { key; value; weight = bytes; prev = None; next = None } in
    Hashtbl.add t.tbl key n;
    push_front t n;
    t.bytes <- t.bytes + bytes;
    evict_to_fit t
  end

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n -> drop t n ~evicted:false
  | None -> ()

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0

let keys_by_recency t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
