(* Process-level metrics registry.  See metrics.mli for the contract; the
   shape to preserve when editing:

   - recording while disabled must stay a single boolean test (the
     charge-invariance test in test/test_metrics.ml depends on it);
   - counters are atomics and histograms lock per-observe, because the
     workload driver runs whole queries on worker domains;
   - histogram geometry is a module-level constant so snapshots taken at
     different times (or in different processes) merge bucket-by-bucket. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

(* --- histograms ---------------------------------------------------------- *)

module Histogram = struct
  (* Log-linear buckets: [sub] linear sub-buckets per power-of-two octave,
     [octaves] octaves starting at 1.0, plus a [0,1) underflow bucket in
     front and an unbounded overflow bucket behind.  With sub = 8 the
     relative width of any finite bucket is <= 1/8, which bounds the
     quantile estimation error; 40 octaves cover values up to 2^40 —
     comfortably past any ms latency or byte size we record. *)
  let sub_buckets = 8
  let octaves = 40
  let nbuckets = 1 + (octaves * sub_buckets) + 1
  let overflow = nbuckets - 1
  let subf = float_of_int sub_buckets

  let bucket_index v =
    if v < 1.0 then 0
    else
      let _, e = Float.frexp v in
      (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e *)
      let oct = e - 1 in
      if oct >= octaves then overflow
      else
        let lo = Float.ldexp 1.0 oct in
        let s = int_of_float ((v /. lo -. 1.0) *. subf) in
        let s = if s < 0 then 0 else if s >= sub_buckets then sub_buckets - 1 else s in
        1 + (oct * sub_buckets) + s

  let bucket_bounds i =
    if i <= 0 then (0.0, 1.0)
    else if i >= overflow then (Float.ldexp 1.0 octaves, infinity)
    else
      let oct = (i - 1) / sub_buckets and s = (i - 1) mod sub_buckets in
      let base = Float.ldexp 1.0 oct in
      ( base *. (1.0 +. (float_of_int s /. subf)),
        base *. (1.0 +. (float_of_int (s + 1) /. subf)) )

  type t = {
    lock : Mutex.t;
    counts : int array;
    mutable n : int;
    mutable total : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    {
      lock = Mutex.create ();
      counts = Array.make nbuckets 0;
      n = 0;
      total = 0.0;
      vmin = infinity;
      vmax = neg_infinity;
    }

  let clear t =
    Mutex.lock t.lock;
    Array.fill t.counts 0 nbuckets 0;
    t.n <- 0;
    t.total <- 0.0;
    t.vmin <- infinity;
    t.vmax <- neg_infinity;
    Mutex.unlock t.lock

  let observe t v =
    let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
    let i = bucket_index v in
    Mutex.lock t.lock;
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    Mutex.unlock t.lock

  let copy t =
    Mutex.lock t.lock;
    let c =
      {
        lock = Mutex.create ();
        counts = Array.copy t.counts;
        n = t.n;
        total = t.total;
        vmin = t.vmin;
        vmax = t.vmax;
      }
    in
    Mutex.unlock t.lock;
    c

  let count t = t.n
  let sum t = t.total
  let min_value t = if t.n = 0 then 0.0 else t.vmin
  let max_value t = if t.n = 0 then 0.0 else t.vmax
  let bucket_count t i = if i < 0 || i >= nbuckets then 0 else t.counts.(i)

  let quantile t q =
    if t.n = 0 then 0.0
    else
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
      let rec walk i acc =
        if i >= nbuckets then max_value t
        else
          let acc = acc + t.counts.(i) in
          if acc >= rank then
            (* The rank-th order statistic lies in bucket i; its upper
               bound over-estimates by at most one bucket width, and
               clamping to the observed max keeps the overflow bucket
               finite without leaving the bucket. *)
            let _, hi = bucket_bounds i in
            Float.min hi (max_value t)
          else walk (i + 1) acc
      in
      walk 0 0

  let merge a b =
    let a = copy a and b = copy b in
    let m = create () in
    for i = 0 to nbuckets - 1 do
      m.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    m.n <- a.n + b.n;
    m.total <- a.total +. b.total;
    m.vmin <- Float.min a.vmin b.vmin;
    m.vmax <- Float.max a.vmax b.vmax;
    m

  let cumulative t =
    let acc = ref 0 and out = ref [] in
    for i = 0 to nbuckets - 1 do
      if t.counts.(i) > 0 then begin
        acc := !acc + t.counts.(i);
        let _, hi = bucket_bounds i in
        if hi < infinity then out := (hi, !acc) :: !out
      end
    done;
    List.rev !out
end

(* --- the registry -------------------------------------------------------- *)

type counter = { c_help : string; c : int Atomic.t }
type gauge = { g_help : string; g : float Atomic.t }
type histogram = { h_help : string; h : Histogram.t }

type entry =
  | E_counter of counter
  | E_gauge of gauge
  | E_sampled of string * (unit -> float)  (* help, sampler *)
  | E_histogram of histogram

(* Registration is rare (module init, CLI startup) and never on a hot
   path, so one mutex over a plain Hashtbl is enough. *)
let reg_lock = Mutex.create ()
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let with_reg f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let kind_of = function
  | E_counter _ -> "counter"
  | E_gauge _ | E_sampled _ -> "gauge"
  | E_histogram _ -> "histogram"

let register name entry extract =
  with_reg (fun () ->
      match Hashtbl.find_opt registry name with
      | Some e -> (
          match extract e with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_of e)))
      | None ->
          let e = entry () in
          Hashtbl.replace registry name e;
          match extract e with
          | Some v -> v
          | None -> assert false)

let counter ?(help = "") name =
  register name
    (fun () -> E_counter { c_help = help; c = Atomic.make 0 })
    (function E_counter c -> Some c | _ -> None)

let add c n = if Atomic.get on && n > 0 then ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

let gauge ?(help = "") name =
  register name
    (fun () -> E_gauge { g_help = help; g = Atomic.make 0.0 })
    (function E_gauge g -> Some g | _ -> None)

let set_gauge g v = if Atomic.get on then Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let sample ?(help = "") name f =
  with_reg (fun () ->
      (match Hashtbl.find_opt registry name with
      | None | Some (E_sampled _) -> ()
      | Some e ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_of e)));
      Hashtbl.replace registry name (E_sampled (help, f)))

let install_gc_samplers () =
  sample ~help:"Minor GC collections since process start" "gc.minor_collections"
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.minor_collections);
  sample ~help:"Major GC collection cycles since process start"
    "gc.major_collections" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.major_collections);
  sample ~help:"Words in the major heap" "gc.heap_words" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.heap_words);
  sample ~help:"Heap compactions since process start" "gc.compactions"
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.compactions)

let histogram ?(help = "") name =
  register name
    (fun () ->
      E_histogram { h_help = help; h = Histogram.create () })
    (function E_histogram h -> Some h | _ -> None)

let observe h v = if Atomic.get on then Histogram.observe h.h v
let histogram_value h = Histogram.copy h.h

let reset () =
  with_reg (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e with
          | E_counter c -> Atomic.set c.c 0
          | E_gauge g -> Atomic.set g.g 0.0
          | E_sampled _ -> ()
          | E_histogram h -> Histogram.clear h.h)
        registry)

(* --- snapshots and exporters --------------------------------------------- *)

type value = Counter of int | Gauge of float | Hist of Histogram.t
type metric = { name : string; help : string; value : value }

let snapshot () =
  let entries =
    with_reg (fun () ->
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry [])
  in
  entries
  |> List.map (fun (name, e) ->
         match e with
         | E_counter c ->
             { name; help = c.c_help; value = Counter (Atomic.get c.c) }
         | E_gauge g -> { name; help = g.g_help; value = Gauge (Atomic.get g.g) }
         | E_sampled (help, f) -> { name; help; value = Gauge (f ()) }
         | E_histogram h ->
             { name; help = h.h_help; value = Hist (Histogram.copy h.h) })
  |> List.sort (fun a b -> compare a.name b.name)

(* Prometheus exposition wants finite decimal floats; %.17g round-trips
   doubles and never prints a locale-dependent separator. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "rdfqa_";
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_help b name help ty =
  let help = if help = "" then name else help in
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)

let to_prometheus () =
  let b = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m.value with
      | Counter v ->
          let n = prom_name m.name ^ "_total" in
          prom_help b n m.help "counter";
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      | Gauge v ->
          let n = prom_name m.name in
          prom_help b n m.help "gauge";
          Buffer.add_string b (Printf.sprintf "%s %s\n" n (fnum v))
      | Hist h ->
          let n = prom_name m.name in
          prom_help b n m.help "histogram";
          List.iter
            (fun (le, c) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (fnum le) c))
            (Histogram.cumulative h);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" n (fnum (Histogram.sum h)));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" n (Histogram.count h)))
    (snapshot ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no Inf/NaN; non-finite gauges (never produced by histograms,
   whose min/max are 0 when empty) degrade to a sentinel. *)
let jnum v = if Float.is_finite v then fnum v else "-1"

let to_jsonl () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"type\":\"meta\",\"schema\":1,\"generator\":\"rdfqa-metrics\"}\n";
  List.iter
    (fun m ->
      (match m.value with
      | Counter v ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
               (json_escape m.name) v)
      | Gauge v ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}"
               (json_escape m.name) (jnum v))
      | Hist h ->
          let buckets =
            Histogram.cumulative h
            |> List.map (fun (le, c) ->
                   Printf.sprintf "{\"le\":%s,\"count\":%d}" (jnum le) c)
            |> String.concat ","
          in
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\
                \"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\
                \"buckets\":[%s]}"
               (json_escape m.name) (Histogram.count h)
               (jnum (Histogram.sum h))
               (jnum (Histogram.min_value h))
               (jnum (Histogram.max_value h))
               (jnum (Histogram.quantile h 0.50))
               (jnum (Histogram.quantile h 0.90))
               (jnum (Histogram.quantile h 0.99))
               buckets));
      Buffer.add_char b '\n')
    (snapshot ());
  Buffer.contents b

let to_text () =
  let b = Buffer.create 2048 in
  List.iter
    (fun m ->
      match m.value with
      | Counter v -> Buffer.add_string b (Printf.sprintf "%-34s %d\n" m.name v)
      | Gauge v ->
          Buffer.add_string b (Printf.sprintf "%-34s %s\n" m.name (fnum v))
      | Hist h ->
          if Histogram.count h = 0 then
            Buffer.add_string b (Printf.sprintf "%-34s (empty)\n" m.name)
          else
            Buffer.add_string b
              (Printf.sprintf
                 "%-34s count=%d sum=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n"
                 m.name (Histogram.count h) (Histogram.sum h)
                 (Histogram.quantile h 0.50)
                 (Histogram.quantile h 0.90)
                 (Histogram.quantile h 0.99)
                 (Histogram.max_value h)))
    (snapshot ());
  Buffer.contents b
