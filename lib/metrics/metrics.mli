(** Process-level metrics registry: cumulative counters, gauges and
    log-linear latency/size histograms over the whole process lifetime.

    Where {!Obs} traces {e one} statement pipeline — spans, operator trees
    and calibration reports that die with the query — this module is the
    long-lived substrate a serving process reports through: cache tier
    hits, pool fan-outs, store mutation rates, engine operation totals and
    end-to-end latency distributions, all accumulated across queries and
    exported on demand in Prometheus text exposition format or as a JSONL
    snapshot.

    Design contract (mirroring the tracing layer):

    - {b one-bool-guarded}: while {!enabled} is false (the default), every
      recording entry point reduces to a single boolean test — no
      allocation, no atomic traffic — so instrumented hot paths cost
      nothing measurable, and charge totals are bit-identical whether
      metrics are on or off (tested).
    - {b domain-safe}: counters are atomics, histograms take a per-instance
      mutex on observe; any domain may record concurrently.  Unlike the
      trace sink, worker domains {e do} contribute (a process-level total
      wants all the work, not one pipeline's).
    - {b zero-dependency}: nothing beyond the OCaml standard library.

    Metric names are dotted lowercase paths (["cache.answer.hits"]).  The
    Prometheus exporter mangles them to [rdfqa_cache_answer_hits] (plus
    [_total] for counters) per the exposition-format conventions.

    {2 JSONL snapshot schema (one object per line)}

    Every line is a JSON object with a ["type"] discriminator:

    - [{"type":"meta","schema":1,"generator":"rdfqa-metrics"}] — first
      line.
    - [{"type":"counter","name":s,"value":i}] — a monotonic counter;
      [value ≥ 0].
    - [{"type":"gauge","name":s,"value":f}] — a point-in-time gauge
      (sampled gauges are evaluated at snapshot time).
    - [{"type":"histogram","name":s,"count":i,"sum":f,"min":f,"max":f,
        "p50":f,"p90":f,"p99":f,"buckets":[{"le":f,"count":i},...]}] —
      a histogram: [count ≥ 0]; [buckets] are {e cumulative} counts at
      the finite upper bounds of the non-empty buckets, non-decreasing,
      ending at most at [count] (the implicit [+Inf] bucket); quantiles
      satisfy [p50 ≤ p90 ≤ p99 ≤ max] and every estimate lands inside
      the bucket holding the true order statistic.

    [test/validate_metrics.ml] checks emitted files (and the Prometheus
    exposition) against exactly this schema; keep the two in sync. *)

val enabled : unit -> bool
(** Whether recording is on (default: off). *)

val set_enabled : bool -> unit
(** Switches recording globally.  Turning it off does not clear values. *)

val reset : unit -> unit
(** Zeroes every registered counter, gauge and histogram (registrations
    and sampled gauges are kept).  Tests and the CLI use it to scope a
    snapshot to one run. *)

(** {1 Histograms}

    Log-linear bucketing over non-negative values (latencies in ms, sizes
    in bytes): {!Histogram.sub_buckets} linear sub-buckets per power of
    two, so relative bucket width — and therefore the worst-case quantile
    estimation error — is bounded by [1/sub_buckets] of the value.  The
    geometry is fixed process-wide, which makes any two histograms
    mergeable bucket-by-bucket. *)

module Histogram : sig
  type t

  val create : unit -> t
  (** An empty histogram (its own mutex; safe to share across domains). *)

  val observe : t -> float -> unit
  (** Records one value (negative values clamp to zero).  Unconditional:
      the registry's {!val-observe} adds the {!enabled} guard. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Smallest observed value; [0.] when empty. *)

  val max_value : t -> float
  (** Largest observed value; [0.] when empty. *)

  val sub_buckets : int
  (** Linear sub-buckets per power of two (8). *)

  val nbuckets : int
  (** Total bucket count, including the [[0, 1)] underflow bucket and the
      unbounded overflow bucket. *)

  val bucket_index : float -> int
  (** The bucket a value falls into: 0 for [v < 1], [nbuckets - 1] for
      values past the covered range. *)

  val bucket_bounds : int -> float * float
  (** [(lo, hi)] of a bucket: values [v] with [lo <= v < hi] land in it
      ([hi] is [infinity] for the overflow bucket). *)

  val bucket_count : t -> int -> int
  (** Observations recorded in one bucket. *)

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile (0 < q ≤ 1) as the upper
      bound of the bucket containing the order statistic of rank
      [ceil (q * count)], clamped to the observed maximum — so the
      estimate always lies in the same bucket as the true order statistic
      (within one bucket width of it).  [0.] when empty. *)

  val merge : t -> t -> t
  (** Bucket-wise sum into a fresh histogram.  Associative and commutative
      on counts, buckets, min and max (sums are float additions). *)

  val cumulative : t -> (float * int) list
  (** Cumulative counts at the finite upper bounds of the non-empty
      buckets, in increasing bound order — the Prometheus [le] series
      (the implicit [+Inf] entry is {!count}). *)
end

(** {1 The registry}

    Metrics are registered on first use by name (idempotent: a second
    registration under the same name returns the existing instance;
    registering the same name as a different kind raises
    [Invalid_argument]).  Registration is allowed while disabled — every
    subsystem registers its metrics at module initialization, so a
    snapshot lists them all, zero-valued, even before any recording. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
(** A monotonic counter (atomic; any domain may {!add}). *)

val add : counter -> int -> unit
(** Bumps a counter (no-op when disabled; [n < 0] is ignored). *)

val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge
(** A point-in-time gauge. *)

val set_gauge : gauge -> float -> unit
(** Sets a gauge (no-op when disabled). *)

val gauge_value : gauge -> float

val sample : ?help:string -> string -> (unit -> float) -> unit
(** [sample name f] registers a gauge whose value is [f ()] evaluated at
    snapshot time — for values that are cheap to read but pointless to
    push (GC statistics, pool width).  Re-registering a name replaces its
    sampler. *)

val install_gc_samplers : unit -> unit
(** Registers the [gc.*] sampled gauges over {!Gc.quick_stat}:
    [gc.minor_collections], [gc.major_collections], [gc.heap_words],
    [gc.compactions]. *)

val histogram : ?help:string -> string -> histogram
(** A registered histogram. *)

val observe : histogram -> float -> unit
(** Records a value (no-op when disabled). *)

val histogram_value : histogram -> Histogram.t
(** A point-in-time copy (safe to read while other domains observe). *)

(** {1 Snapshots and exporters} *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.t  (** a point-in-time copy *)

type metric = { name : string; help : string; value : value }

val snapshot : unit -> metric list
(** Every registered metric, sorted by name; sampled gauges are evaluated
    here. *)

val to_prometheus : unit -> string
(** The registry in Prometheus text exposition format: [# HELP]/[# TYPE]
    comment pairs, [rdfqa_]-prefixed mangled names, [_total]-suffixed
    counters, histograms as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count]. *)

val to_jsonl : unit -> string
(** The registry as the JSONL snapshot documented above (meta line
    first). *)

val to_text : unit -> string
(** A human-readable rendering for the CLI: one line per counter/gauge,
    count/sum/quantiles per histogram. *)
