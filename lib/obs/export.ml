let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; traces clamp the few model estimates that
   can overflow to the "unknown" sentinel. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "-1"

(* Timestamps need full microsecond precision: %g would collapse epoch
   microseconds (~1.8e15) to a common prefix. *)
let json_time f = if Float.is_finite f then Printf.sprintf "%.3f" f else "-1"

let attrs_obj attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         attrs)
  ^ "}"

let meta_line ?(store_bytes = -1) () =
  let gc = Gc.quick_stat () in
  Printf.sprintf
    "{\"type\":\"meta\",\"schema\":1,\"generator\":\"rdfqa\",\"jobs\":%d,\"effective_jobs\":%d,\"gc_minor_collections\":%d,\"gc_major_collections\":%d,\"gc_heap_words\":%d,\"store_bytes\":%d}"
    (Par.current_jobs ()) (Par.effective_jobs ())
    gc.Gc.minor_collections gc.Gc.major_collections gc.Gc.heap_words
    store_bytes

let query_line name =
  Printf.sprintf "{\"type\":\"query\",\"name\":\"%s\"}" (json_escape name)

let span_line (e : Trace.event) =
  Printf.sprintf
    "{\"type\":\"span\",\"name\":\"%s\",\"start_us\":%s,\"dur_us\":%s,\"depth\":%d,\"attrs\":%s}"
    (json_escape e.Trace.name)
    (json_time e.Trace.start_us)
    (json_time e.Trace.dur_us)
    e.Trace.depth
    (attrs_obj e.Trace.attrs)

let estimate_line (e : Trace.estimate) =
  Printf.sprintf
    "{\"type\":\"estimate\",\"label\":\"%s\",\"est\":%s,\"actual\":%s,\"q_error\":%s}"
    (json_escape e.Trace.label)
    (json_float e.Trace.est)
    (json_float e.Trace.actual)
    (json_float (Trace.q_error ~est:e.Trace.est ~actual:e.Trace.actual))

let op_line ~path (n : Op_stats.t) =
  Printf.sprintf
    "{\"type\":\"op\",\"path\":\"%s\",\"kind\":\"%s\",\"label\":\"%s\",\"rows_in\":%d,\"rows_out\":%d,\"index_probes\":%d,\"hash_inserts\":%d,\"hash_collisions\":%d,\"work_units\":%d,\"morsels\":%d,\"skew\":%s,\"est_rows\":%s}"
    (json_escape path)
    (Op_stats.kind_name n.Op_stats.kind)
    (json_escape n.Op_stats.label)
    n.Op_stats.rows_in n.Op_stats.rows_out n.Op_stats.index_probes
    n.Op_stats.hash_inserts n.Op_stats.hash_collisions n.Op_stats.work_units
    n.Op_stats.morsels
    (json_float (match Op_stats.skew n with Some s -> s | None -> -1.0))
    (json_float n.Op_stats.est_rows)

let counter_line (name, value) =
  Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
    (json_escape name) value

let jsonl ?query ?ops ~events ~estimates ~counters () =
  let buf = Buffer.create 4096 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  (match query with Some q -> line (query_line q) | None -> ());
  List.iter (fun e -> line (span_line e)) events;
  List.iter (fun e -> line (estimate_line e)) estimates;
  (match ops with
  | Some root ->
      Op_stats.fold (fun () ~path n -> line (op_line ~path n)) () root
  | None -> ());
  List.iter (fun c -> line (counter_line c)) counters;
  Buffer.contents buf

let chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Trace.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
           (json_escape e.Trace.name)
           (json_time e.Trace.start_us)
           (json_time e.Trace.dur_us)
           (attrs_obj e.Trace.attrs)))
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
