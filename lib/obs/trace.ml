let tracing = ref false

(* The sink is process-global and deliberately unsynchronized: a trace
   belongs to the coordinating domain's statement pipeline.  Worker domains
   of the parallel execution layer (lib/par) must therefore never reach it:
   every entry point is additionally gated on running in the domain that
   loaded this module, so with tracing on and [--jobs N] a worker's spans,
   counters and estimates are no-ops while the coordinator's merge-time
   instrumentation still lands in one coherent trace. *)
let main_domain = Domain.self ()
let armed () = !tracing && Domain.self () = main_domain
let enabled () = armed ()
let set_enabled b = tracing := b

type event = {
  name : string;
  start_us : float;
  dur_us : float;
  depth : int;
  attrs : (string * string) list;
}

type estimate = { label : string; est : float; actual : float }

let now_us () = Unix.gettimeofday () *. 1e6

(* All sinks accumulate in reverse and are re-reversed on read: appends stay
   O(1) however long a workload trace grows. *)
let events_rev : event list ref = ref []
let estimates_rev : estimate list ref = ref []
let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32

type span = {
  sname : string;
  sstart : float;
  sdepth : int;
  mutable sattrs : (string * string) list;  (* reversed *)
  mutable closed : bool;
  live : bool;  (* false only for the disabled-path dummy *)
}

let stack : span list ref = ref []

let dummy =
  { sname = ""; sstart = 0.0; sdepth = 0; sattrs = []; closed = true;
    live = false }

module Span = struct
  type t = span

  let enter ?(attrs = []) name =
    if not (armed ()) then dummy
    else begin
      let s =
        {
          sname = name;
          sstart = now_us ();
          sdepth = List.length !stack;
          sattrs = List.rev attrs;
          closed = false;
          live = true;
        }
      in
      stack := s :: !stack;
      s
    end

  let set s k v = if s.live && not s.closed then s.sattrs <- (k, v) :: s.sattrs

  let close_one s =
    s.closed <- true;
    events_rev :=
      {
        name = s.sname;
        start_us = s.sstart;
        dur_us = now_us () -. s.sstart;
        depth = s.sdepth;
        attrs = List.rev s.sattrs;
      }
      :: !events_rev

  (* Closing a span closes every child still open above it: an exception
     that unwound past nested [enter]s cannot leak open spans as long as
     some enclosing span exits (and [with_] guarantees the outermost one
     does). *)
  let exit s =
    if s.live && not s.closed then begin
      let rec pop () =
        match !stack with
        | [] -> close_one s
        | top :: rest ->
            stack := rest;
            close_one top;
            if top != s then pop ()
      in
      pop ()
    end

  let with_ ?attrs name f =
    if not (armed ()) then f dummy
    else
      let s = enter ?attrs name in
      Fun.protect ~finally:(fun () -> exit s) (fun () -> f s)
end

let open_depth () = List.length !stack
let events () = List.rev !events_rev

let record_estimate ~label ~est ~actual =
  if armed () then estimates_rev := { label; est; actual } :: !estimates_rev

let estimates () = List.rev !estimates_rev

let q_error ~est ~actual =
  let e = Float.max 1.0 est and a = Float.max 1.0 actual in
  Float.max (e /. a) (a /. e)

let count name n =
  if armed () then
    match Hashtbl.find_opt counter_tbl name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add counter_tbl name (ref n)

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counter_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  events_rev := [];
  estimates_rev := [];
  Hashtbl.reset counter_tbl;
  stack := []
