type t = {
  samples : int;
  median_q : float;
  mean_q : float;
  p90_q : float;
  max_q : float;
  worst : (string * float) list;
}

let of_estimates (es : Trace.estimate list) =
  let qs =
    List.map
      (fun (e : Trace.estimate) ->
        (e.Trace.label, Trace.q_error ~est:e.Trace.est ~actual:e.Trace.actual))
      es
  in
  let n = List.length qs in
  if n = 0 then
    { samples = 0; median_q = 1.0; mean_q = 1.0; p90_q = 1.0; max_q = 1.0;
      worst = [] }
  else begin
    let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) qs in
    let arr = Array.of_list (List.map snd sorted) in
    let quantile p =
      arr.(min (n - 1) (int_of_float (p *. float_of_int n)))
    in
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    {
      samples = n;
      median_q = quantile 0.5;
      mean_q = Array.fold_left ( +. ) 0.0 arr /. float_of_int n;
      p90_q = quantile 0.9;
      max_q = arr.(n - 1);
      worst = take 5 (List.rev sorted);
    }
  end

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Calibration report (estimated vs actual cardinality)\n";
  Buffer.add_string buf (Printf.sprintf "  samples   %d\n" t.samples);
  Buffer.add_string buf (Printf.sprintf "  median q  %.3f\n" t.median_q);
  Buffer.add_string buf (Printf.sprintf "  mean q    %.3f\n" t.mean_q);
  Buffer.add_string buf (Printf.sprintf "  p90 q     %.3f\n" t.p90_q);
  Buffer.add_string buf (Printf.sprintf "  max q     %.3f\n" t.max_q);
  if t.worst <> [] then begin
    Buffer.add_string buf "  worst offenders:\n";
    List.iter
      (fun (label, q) ->
        Buffer.add_string buf (Printf.sprintf "    %-40s q=%.2f\n" label q))
      t.worst
  end;
  Buffer.contents buf
