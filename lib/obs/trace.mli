(** The tracing core: a process-global event sink fed by spans, cardinality
    estimates and named counters.

    Everything here is {e off by default}: while {!enabled} is false, every
    entry point reduces to a single boolean test and no allocation, so the
    instrumented hot paths of the executor cost nothing measurable.  The
    CLI (and tests) switch tracing on with {!set_enabled}, run a statement
    or a workload, then drain the sink with {!events} / {!estimates} /
    {!counters} and hand the result to {!Export} or {!Calibration}.

    The sink is deliberately not thread-safe: a trace belongs to one
    statement pipeline on the coordinating domain.  Under the parallel
    execution layer every entry point is additionally a no-op on any domain
    other than the one that loaded this module, so worker domains can run
    instrumented code without corrupting (or appearing in) the trace. *)

val enabled : unit -> bool
(** Whether tracing is on (default: off). *)

val set_enabled : bool -> unit
(** Switches tracing globally.  Turning it off does not clear the sink. *)

val reset : unit -> unit
(** Clears collected events, estimates and counters, and abandons any open
    span (used between workload queries). *)

type event = {
  name : string;  (** span name, e.g. ["exec.jucq"] *)
  start_us : float;  (** absolute start, µs since epoch *)
  dur_us : float;  (** wall-clock duration, µs *)
  depth : int;  (** nesting depth at the time the span opened *)
  attrs : (string * string) list;  (** key→value attributes, in set order *)
}
(** A closed span.  Only closed spans appear in {!events}. *)

module Span : sig
  (** Nested wall-clock spans over {!Unix.gettimeofday}.

      A span is opened with {!enter} (or scoped with {!with_}) and pushed
      on a global stack; {!exit} pops it, closing any children an exception
      unwound past, and appends the closed {!event} to the sink.  With
      tracing disabled all operations are no-ops on a shared dummy. *)

  type t

  val enter : ?attrs:(string * string) list -> string -> t
  (** Opens a span.  Returns a no-op dummy when tracing is off. *)

  val set : t -> string -> string -> unit
  (** Attaches (or appends) an attribute to an open span. *)

  val exit : t -> unit
  (** Closes the span, and first any still-open descendants — no span ever
      leaks open because an exception skipped its exit. *)

  val with_ : ?attrs:(string * string) list -> string -> (t -> 'a) -> 'a
  (** [with_ name f] runs [f span] with the span open, closing it on normal
      return {e and} on exception ([Fun.protect]).  When tracing is off,
      [f] runs with the dummy and nothing is recorded. *)
end

val open_depth : unit -> int
(** Number of currently open spans (0 once a pipeline finished cleanly —
    including after an engine failure, which tests assert). *)

val events : unit -> event list
(** Closed spans in completion order. *)

type estimate = {
  label : string;  (** plan-node label, e.g. ["fragment"], ["result"] *)
  est : float;  (** estimated cardinality (model or engine) *)
  actual : float;  (** observed cardinality *)
}
(** One estimated-vs-actual cardinality observation at a plan node. *)

val record_estimate : label:string -> est:float -> actual:float -> unit
(** Appends an observation to the sink (no-op when tracing is off). *)

val estimates : unit -> estimate list
(** Observations in record order. *)

val q_error : est:float -> actual:float -> float
(** The symmetric quotient error
    [max (max 1 est / max 1 actual) (max 1 actual / max 1 est)] — always
    ≥ 1, with 1 meaning a perfect estimate.  Both sides are floored at one
    row so empty results do not divide by zero. *)

val count : string -> int -> unit
(** [count name n] bumps a named counter by [n] (no-op when tracing is
    off).  Used for per-rule reformulation counts. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)
