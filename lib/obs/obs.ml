(* The library's single entry point: the tracing core plus its companion
   modules under one [Obs] namespace. *)

include Trace
module Op_stats = Op_stats
module Calibration = Calibration
module Export = Export
