(** Trace exporters: JSON-lines events and Chrome [trace_event] JSON.

    {2 JSON-lines schema (one object per line)}

    Every line is a JSON object with a ["type"] discriminator:

    - [{"type":"meta","schema":1,"generator":"rdfqa","jobs":i,
        "effective_jobs":i}] — first line; [jobs ≥ 1] is the {e requested}
      parallelism width ([--jobs] / [RDFQA_JOBS]), [effective_jobs ≥ 1]
      the width the pool actually ran at after the core clamp
      ([effective_jobs ≤ jobs] unless [RDFQA_JOBS_FORCE=1]).
    - [{"type":"query","name":"lubm:Q01"}] — opens one query's records in a
      workload trace.
    - [{"type":"span","name":s,"start_us":f,"dur_us":f,"depth":i,
        "attrs":{...}}] — a closed span; [dur_us ≥ 0], [depth ≥ 0], attr
      values are strings.
    - [{"type":"estimate","label":s,"est":f,"actual":f,"q_error":f}] — one
      estimated-vs-actual cardinality observation; [q_error ≥ 1].
    - [{"type":"op","path":s,"kind":s,"label":s,"rows_in":i,"rows_out":i,
        "index_probes":i,"hash_inserts":i,"hash_collisions":i,
        "work_units":i,"morsels":i,"skew":f,"est_rows":f}] — one
      plan-operator node; [path] is the dotted child-index path ("0",
      "0.1", …), [kind] one of {!Op_stats.kind_name}'s values, [morsels]
      is the number of morsels the operator dispatched (0 = sequential),
      [skew] the {!Op_stats.skew} load-balance ratio ([-1] when
      sequential or empty), [est_rows] is [-1] when unknown.
    - [{"type":"counter","name":s,"value":i}] — a named counter total.

    [test/validate_trace.ml] checks emitted files against exactly this
    schema; keep the two in sync. *)

val json_escape : string -> string
(** Escapes a string for inclusion inside JSON double quotes. *)

val meta_line : ?store_bytes:int -> unit -> string
(** The schema-version header line, stamped with {!Par.current_jobs}, the
    honest {!Par.effective_jobs}, the process GC state at export time
    ([gc_minor_collections], [gc_major_collections], [gc_heap_words] from
    {!Gc.quick_stat}) and the loaded store's approximate heap footprint
    ([store_bytes]; [-1], the default, when no store was measured). *)

val query_line : string -> string
(** The per-query delimiter line of a workload trace. *)

val jsonl :
  ?query:string ->
  ?ops:Op_stats.t ->
  events:Trace.event list ->
  estimates:Trace.estimate list ->
  counters:(string * int) list ->
  unit ->
  string
(** Renders one query's records (no meta header): an optional ["query"]
    line, span lines, estimate lines, operator-tree lines, counter lines —
    newline-terminated. *)

val chrome : Trace.event list -> string
(** The events as a Chrome [trace_event]-format JSON document (complete
    "X"-phase events, microsecond timestamps) — loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)
