type kind =
  | Index_scan
  | Cq
  | Union
  | Dedup
  | Hash_join
  | Bnl_join
  | Project
  | Result

type t = {
  kind : kind;
  label : string;
  mutable rows_in : int;
  mutable rows_out : int;
  mutable index_probes : int;
  mutable hash_inserts : int;
  mutable hash_collisions : int;
  mutable work_units : int;
  mutable morsels : int;
  mutable max_worker_rows : int;
  mutable est_rows : float;
  mutable children_rev : t list;
}

let make ?(label = "") ?(est_rows = -1.0) kind =
  {
    kind;
    label;
    rows_in = 0;
    rows_out = 0;
    index_probes = 0;
    hash_inserts = 0;
    hash_collisions = 0;
    work_units = 0;
    morsels = 0;
    max_worker_rows = 0;
    est_rows;
    children_rev = [];
  }

let add_child parent child = parent.children_rev <- child :: parent.children_rev
let children t = List.rev t.children_rev

let kind_name = function
  | Index_scan -> "index_scan"
  | Cq -> "cq"
  | Union -> "union"
  | Dedup -> "dedup"
  | Hash_join -> "hash_join"
  | Bnl_join -> "bnl_join"
  | Project -> "project"
  | Result -> "result"

let display_name = function
  | Index_scan -> "IndexScan"
  | Cq -> "CQ"
  | Union -> "Union"
  | Dedup -> "Dedup"
  | Hash_join -> "HashJoin"
  | Bnl_join -> "BlockNestedLoopJoin"
  | Project -> "Project"
  | Result -> "Result"

(* How unevenly the parallel work split: largest per-morsel output over
   the ideal even share.  1.0 = perfectly balanced; None when the operator
   ran sequentially (no morsels) or produced nothing. *)
let skew t =
  if t.morsels <= 0 || t.rows_out <= 0 then None
  else
    let ideal = float_of_int t.rows_out /. float_of_int t.morsels in
    (* max >= mean, so the ratio is >= 1; clamp away float rounding *)
    Some (Float.max 1.0 (float_of_int t.max_worker_rows /. ideal))

let q_error t =
  if t.est_rows < 0.0 then None
  else
    Some (Trace.q_error ~est:t.est_rows ~actual:(float_of_int t.rows_out))

let fold f init t =
  let rec go acc ~path t =
    let acc = f acc ~path t in
    List.fold_left
      (fun (acc, i) c ->
        (go acc ~path:(Printf.sprintf "%s.%d" path i) c, i + 1))
      (acc, 0) (children t)
    |> fst
  in
  go init ~path:"0" t

let node_line t =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (display_name t.kind);
  if t.label <> "" then begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf t.label
  end;
  Buffer.add_string buf "  (";
  (if t.est_rows < 0.0 then Buffer.add_string buf "est=?"
   else Buffer.add_string buf (Printf.sprintf "est=%.0f" t.est_rows));
  Buffer.add_string buf (Printf.sprintf " actual=%d" t.rows_out);
  (match q_error t with
  | Some q -> Buffer.add_string buf (Printf.sprintf " q=%.2f" q)
  | None -> ());
  let opt name v =
    if v <> 0 then Buffer.add_string buf (Printf.sprintf " %s=%d" name v)
  in
  opt "in" t.rows_in;
  opt "probes" t.index_probes;
  opt "inserts" t.hash_inserts;
  opt "collisions" t.hash_collisions;
  opt "work" t.work_units;
  opt "morsels" t.morsels;
  (match skew t with
  | Some s -> Buffer.add_string buf (Printf.sprintf " skew=%.2f" s)
  | None -> ());
  Buffer.add_char buf ')';
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 512 in
  let rec go prefix child_prefix t =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (node_line t);
    Buffer.add_char buf '\n';
    let cs = children t in
    let n = List.length cs in
    List.iteri
      (fun i c ->
        let last = i = n - 1 in
        go
          (child_prefix ^ if last then "└─ " else "├─ ")
          (child_prefix ^ if last then "   " else "│  ")
          c)
      cs
  in
  go "" "" t;
  Buffer.contents buf
