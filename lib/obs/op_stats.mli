(** Per-operator runtime metrics, as a tree mirroring the physical plan.

    Every physical operator instance the executor runs — index scan,
    union, duplicate elimination, hash-join build/probe, block-nested-loop
    join, projection — gets one node recording its observed row counts,
    probe/insert counts and charged work units, next to the cost model's
    {e estimated} cardinality for the same node.  The executor exposes the
    finished tree per statement; {!to_string} renders it as an
    [EXPLAIN ANALYZE]-style plan. *)

type kind =
  | Index_scan  (** one atom of an index-nested-loop CQ pipeline *)
  | Cq  (** a conjunctive query (the scan pipeline's root) *)
  | Union  (** UCQ disjunct concatenation *)
  | Dedup  (** hash-based duplicate elimination *)
  | Hash_join  (** fragment hash join (build + probe counters) *)
  | Bnl_join  (** MySQL-profile block-nested-loop join *)
  | Project  (** head projection *)
  | Result  (** statement root *)

type t = {
  kind : kind;
  label : string;
  mutable rows_in : int;  (** input rows examined *)
  mutable rows_out : int;  (** rows produced (the {e actual} cardinality) *)
  mutable index_probes : int;  (** index lookups issued (scans) *)
  mutable hash_inserts : int;  (** distinct keys inserted (builds/dedups) *)
  mutable hash_collisions : int;  (** keyed rows landing on an existing key *)
  mutable work_units : int;  (** operation-budget units charged here *)
  mutable morsels : int;  (** morsels dispatched; 0 = ran sequentially *)
  mutable max_worker_rows : int;  (** largest per-morsel output row count *)
  mutable est_rows : float;  (** estimated cardinality; negative = unknown *)
  mutable children_rev : t list;  (** inputs, in reverse attach order *)
}

val make : ?label:string -> ?est_rows:float -> kind -> t
(** A fresh zeroed node ([est_rows] defaults to unknown). *)

val add_child : t -> t -> unit
(** [add_child parent child] attaches an input operator. *)

val children : t -> t list
(** Children in attach order. *)

val kind_name : kind -> string
(** Lowercase stable name (["index_scan"], ["hash_join"], …) used by the
    JSON exporters and their schema. *)

val skew : t -> float option
(** Load-balance ratio of the parallel split: the largest per-morsel
    output over the ideal even share ([1.0] = perfectly balanced).
    [None] when the operator ran sequentially or produced no rows. *)

val q_error : t -> float option
(** The node's {!Trace.q_error} when an estimate was recorded. *)

val fold : ('a -> path:string -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold; [path] is the dotted child-index path from the root
    (root = ["0"], its second child = ["0.1"], …). *)

val to_string : t -> string
(** Multi-line [EXPLAIN ANALYZE] tree: every node shows its estimated and
    actual cardinality, its q-error, and its non-zero operator counters. *)
