(** Aggregate cost-model drift over a workload.

    Each estimated-vs-actual observation ({!Trace.estimate}) contributes
    one q-error sample; the report summarizes their distribution, making
    "how far does the Section 4.1 model drift from the engine's observed
    cardinalities" (the question behind Figure 9) a measurable, testable
    quantity. *)

type t = {
  samples : int;  (** number of (est, actual) observations *)
  median_q : float;  (** median q-error (1.0 = perfect) *)
  mean_q : float;  (** arithmetic mean q-error *)
  p90_q : float;  (** 90th-percentile q-error *)
  max_q : float;  (** worst q-error *)
  worst : (string * float) list;
      (** up to five worst offenders, as (label, q-error), descending *)
}

val of_estimates : Trace.estimate list -> t
(** Builds the report; with no samples all quantiles are 1.0. *)

val to_string : t -> string
(** Multi-line human-readable rendering. *)
