open Query

type result = {
  cover : Jucq.cover;
  cost : float;
  explored : int;
  complete : bool;
  elapsed_ms : float;
}

let search ?(budget = Cover_space.default_budget) (obj : Objective.t) =
  Obs.Span.with_ "plan.cover_search" ~attrs:[ ("algo", "ecov") ]
  @@ fun sp ->
  let t0 = Sys.time () in
  let q = Objective.query obj in
  let { Cover_space.covers; complete } =
    Obs.Span.with_ "plan.cover_enum" @@ fun esp ->
    let r = Cover_space.enumerate ~budget q in
    Obs.Span.set esp "covers" (string_of_int (List.length r.Cover_space.covers));
    Obs.Span.set esp "complete" (string_of_bool r.Cover_space.complete);
    r
  in
  (* Costing a cover means reformulating its fragments, which dominates on
     large-reformulation queries: the time budget applies here too. *)
  let timed_out = ref false in
  let within_budget () =
    let ok = (Sys.time () -. t0) *. 1000.0 <= budget.Cover_space.max_millis in
    if not ok then timed_out := true;
    ok
  in
  (* Parallel costing: prime the objective's caches chunk by chunk across
     the pool, re-checking the deadline between chunks, then run the
     unchanged sequential fold below on cache hits.  The fold's
     first-minimum-wins tie-break sees the same costs in the same order,
     so the chosen cover is bit-identical to sequential search; only under
     a deadline can the two differ (timeouts are wall-clock-dependent in
     the sequential path too). *)
  let pool = Par.get () in
  if Par.jobs pool > 1 then begin
    let arr = Array.of_list covers in
    let n = Array.length arr in
    let chunk = max 1 (8 * Par.jobs pool) in
    let i = ref 0 in
    while !i < n && within_budget () do
      let len = min chunk (n - !i) in
      Objective.prime pool obj (Array.to_list (Array.sub arr !i len));
      i := !i + len
    done
  end;
  let best =
    List.fold_left
      (fun best cover ->
        if not (within_budget ()) then best
        else
          let cost = Objective.cover_cost obj cover in
          match best with
          | Some (_, c) when c <= cost -> best
          | _ -> Some (cover, cost))
      None covers
  in
  let complete = complete && not !timed_out in
  let r =
    match best with
    | None ->
        (* Enumeration found nothing within budget: fall back to the flat
           UCQ cover, which is always valid for connected queries. *)
        let cover = Jucq.ucq_cover q in
        {
          cover;
          cost = Objective.cover_cost obj cover;
          explored = Objective.explored obj;
          complete = false;
          elapsed_ms = (Sys.time () -. t0) *. 1000.0;
        }
    | Some (cover, cost) ->
        {
          cover;
          cost;
          explored = Objective.explored obj;
          complete;
          elapsed_ms = (Sys.time () -. t0) *. 1000.0;
        }
  in
  Obs.Span.set sp "explored" (string_of_int r.explored);
  Obs.Span.set sp "complete" (string_of_bool r.complete);
  r
