open Query

type result = {
  cover : Jucq.cover;
  cost : float;
  explored : int;
  complete : bool;
  elapsed_ms : float;
}

let search ?(budget = Cover_space.default_budget) (obj : Objective.t) =
  Obs.Span.with_ "plan.cover_search" ~attrs:[ ("algo", "ecov") ]
  @@ fun sp ->
  let t0 = Sys.time () in
  let q = Objective.query obj in
  let { Cover_space.covers; complete } =
    Obs.Span.with_ "plan.cover_enum" @@ fun esp ->
    let r = Cover_space.enumerate ~budget q in
    Obs.Span.set esp "covers" (string_of_int (List.length r.Cover_space.covers));
    Obs.Span.set esp "complete" (string_of_bool r.Cover_space.complete);
    r
  in
  (* Costing a cover means reformulating its fragments, which dominates on
     large-reformulation queries: the time budget applies here too. *)
  let timed_out = ref false in
  let within_budget () =
    let ok = (Sys.time () -. t0) *. 1000.0 <= budget.Cover_space.max_millis in
    if not ok then timed_out := true;
    ok
  in
  let best =
    List.fold_left
      (fun best cover ->
        if not (within_budget ()) then best
        else
          let cost = Objective.cover_cost obj cover in
          match best with
          | Some (_, c) when c <= cost -> best
          | _ -> Some (cover, cost))
      None covers
  in
  let complete = complete && not !timed_out in
  let r =
    match best with
    | None ->
        (* Enumeration found nothing within budget: fall back to the flat
           UCQ cover, which is always valid for connected queries. *)
        let cover = Jucq.ucq_cover q in
        {
          cover;
          cost = Objective.cover_cost obj cover;
          explored = Objective.explored obj;
          complete = false;
          elapsed_ms = (Sys.time () -. t0) *. 1000.0;
        }
    | Some (cover, cost) ->
        {
          cover;
          cost;
          explored = Objective.explored obj;
          complete;
          elapsed_ms = (Sys.time () -. t0) *. 1000.0;
        }
  in
  Obs.Span.set sp "explored" (string_of_int r.explored);
  Obs.Span.set sp "complete" (string_of_bool r.complete);
  r
