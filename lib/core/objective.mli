(** The search objective shared by ECov and GCov: mapping covers of a fixed
    BGP query to cover-based JUCQ reformulations and their estimated costs,
    with memoization (both algorithms revisit fragments and covers
    massively) and an exploration counter (the statistic plotted in
    Figures 7-8). *)

type t

val create :
  ?fragment_capacity:(Query.Bgp.t -> bool) ->
  ?shared:Cache.tier2 ->
  reformulate:(Query.Bgp.t -> Query.Ucq.t) ->
  jucq_cost:(Query.Jucq.t -> float) ->
  ucq_cost:(Query.Ucq.t -> float) ->
  Query.Bgp.t ->
  t
(** An objective for one query.  [reformulate] is the CQ→UCQ algorithm [A];
    [jucq_cost] the cover-reformulation cost function (Section 4.1 model,
    or an engine's EXPLAIN — Figure 9 compares both); [ucq_cost] prices a
    single fragment's reformulation, used to order fragments inside a
    cover.  [fragment_capacity] (default: always true) pre-screens a cover
    query {e before} its reformulation is constructed: when it returns
    false (the engine would refuse the fragment's union anyway), the cover
    is priced infinite without paying the construction — this is what lets
    exhaustive search traverse spaces whose worst covers have 300,000-term
    fragments.  [shared] layers the store-versioned cover/cost tier of
    {!Cache} under the private per-search memos: probes check the private
    memo, then the shared tier, and computed entries are published back, so
    repeated searches of one query skip cover pricing entirely.
    {!explored} still counts distinct covers priced {e by this objective}
    — shared hits included — keeping the search statistic identical
    between cold and warm runs. *)

val query : t -> Query.Bgp.t
(** The query under optimization. *)

val jucq_of : t -> Query.Jucq.cover -> Query.Jucq.t
(** The cover-based JUCQ reformulation of a cover (Theorem 3.1), memoized. *)

val cover_cost : t -> Query.Jucq.cover -> float
(** Estimated cost of a cover's reformulation, memoized.  Each distinct
    cover costed increments {!explored}. *)

val prime : Par.t -> t -> Query.Jucq.cover list -> unit
(** [prime pool t covers] fills the JUCQ and cost caches for [covers],
    fanning the uncached covers' reformulation + costing out over [pool]
    and memoizing sequentially in list order — observationally equivalent
    to calling {!cover_cost} on each cover in order (same cache contents,
    same {!explored} growth), just concurrent.  ECov and GCov call this on
    each enumeration chunk / neighbor batch before their unchanged
    sequential selection logic, which is how parallel cover search keeps
    choosing bit-identical covers. *)

val fragment_cost : t -> Query.Jucq.fragment -> float
(** Estimated cost of one fragment's UCQ reformulation (ordering heuristic
    for redundancy pruning), memoized. *)

val explored : t -> int
(** Number of distinct covers whose cost has been estimated. *)
