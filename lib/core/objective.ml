open Query

type t = {
  query : Bgp.t;
  fragment_capacity : Bgp.t -> bool;
  reformulate : Bgp.t -> Ucq.t;
  jucq_cost : Jucq.t -> float;
  ucq_cost : Ucq.t -> float;
  jucq_cache : (string, Jucq.t) Hashtbl.t;
  cost_cache : (string, float) Hashtbl.t;
  fragment_cache : (string, float) Hashtbl.t;
  mutable explored : int;
}

let create ?(fragment_capacity = fun _ -> true) ~reformulate ~jucq_cost
    ~ucq_cost query =
  {
    query;
    fragment_capacity;
    reformulate;
    jucq_cost;
    ucq_cost;
    jucq_cache = Hashtbl.create 64;
    cost_cache = Hashtbl.create 64;
    fragment_cache = Hashtbl.create 64;
    explored = 0;
  }

let query t = t.query

let cover_key (c : Jucq.cover) =
  let frag f = String.concat "," (List.map string_of_int f) in
  String.concat ";" (List.sort String.compare (List.map frag c))

let jucq_of t cover =
  let key = cover_key cover in
  match Hashtbl.find_opt t.jucq_cache key with
  | Some j -> j
  | None ->
      let j = Jucq.make ~reformulate:t.reformulate t.query cover in
      Hashtbl.add t.jucq_cache key j;
      j

let cover_cost t cover =
  let key = cover_key cover in
  match Hashtbl.find_opt t.cost_cache key with
  | Some c -> c
  | None ->
      (* A cover with a fragment the engine would refuse, or whose
         reformulation cannot even be constructed, is infinitely expensive;
         the capacity screen avoids building huge unions just to reject
         them. *)
      let feasible =
        List.for_all
          (fun f -> t.fragment_capacity (Jucq.cover_query t.query cover f))
          cover
      in
      let c =
        if not feasible then infinity
        else
          match jucq_of t cover with
          | j -> t.jucq_cost j
          | exception Reformulation.Reformulate.Too_large _ -> infinity
      in
      Hashtbl.add t.cost_cache key c;
      t.explored <- t.explored + 1;
      c

(* Batch-primes the caches for a list of covers, computing the uncached
   ones' reformulations and costs in parallel, then memoizing sequentially
   in list order.  Equivalent to calling [cover_cost] on each cover in
   order: costs are pure functions of (objective, cover), [explored] grows
   by one per distinct uncached cover in the same order, and a cover whose
   construction raises (beyond [Too_large], which prices as [infinity])
   caches nothing — the exception resurfaces, identically, when
   [cover_cost] is called for it. *)
let prime pool t covers =
  let seen = Hashtbl.create 16 in
  let fresh =
    List.filter
      (fun cover ->
        let key = cover_key cover in
        if Hashtbl.mem t.cost_cache key || Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      covers
  in
  match fresh with
  | [] -> ()
  | _ ->
      let arr = Array.of_list fresh in
      let compute cover =
        match
          let feasible =
            List.for_all
              (fun f -> t.fragment_capacity (Jucq.cover_query t.query cover f))
              cover
          in
          if not feasible then (None, infinity)
          else
            match Jucq.make ~reformulate:t.reformulate t.query cover with
            | j -> (Some j, t.jucq_cost j)
            | exception Reformulation.Reformulate.Too_large _ ->
                (None, infinity)
        with
        | v -> Ok v
        | exception e -> Error e
      in
      let results = Par.parallel_map pool compute arr in
      Array.iteri
        (fun i r ->
          match r with
          | Error _ -> ()  (* left uncached; [cover_cost] re-raises *)
          | Ok (j, c) ->
              let key = cover_key arr.(i) in
              if not (Hashtbl.mem t.cost_cache key) then begin
                (match j with
                | Some j when not (Hashtbl.mem t.jucq_cache key) ->
                    Hashtbl.add t.jucq_cache key j
                | _ -> ());
                Hashtbl.add t.cost_cache key c;
                t.explored <- t.explored + 1
              end)
        results

let fragment_cost t (f : Jucq.fragment) =
  let key = String.concat "," (List.map string_of_int f) in
  match Hashtbl.find_opt t.fragment_cache key with
  | Some c -> c
  | None ->
      let atoms = List.map (List.nth t.query.Bgp.body) f in
      let vars =
        List.sort_uniq String.compare (List.concat_map Bgp.atom_vars atoms)
      in
      let head = List.map (fun v -> Bgp.Var v) vars in
      let cq =
        match head with
        | [] -> Bgp.make [ (List.hd atoms).Bgp.s ] atoms
        | _ -> Bgp.make head atoms
      in
      let c =
        if not (t.fragment_capacity cq) then infinity
        else
          match t.reformulate cq with
          | ucq -> t.ucq_cost ucq
          | exception Reformulation.Reformulate.Too_large _ -> infinity
      in
      Hashtbl.add t.fragment_cache key c;
      c

let explored t = t.explored
