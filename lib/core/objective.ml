open Query

type t = {
  query : Bgp.t;
  fragment_capacity : Bgp.t -> bool;
  reformulate : Bgp.t -> Ucq.t;
  jucq_cost : Jucq.t -> float;
  ucq_cost : Ucq.t -> float;
  (* Private per-search memos.  They alone drive [explored]: the counter
     measures how many distinct covers THIS search had to price, whether
     the price came from a fresh computation or from the shared tier —
     which keeps the statistic identical between cold and warm runs. *)
  jucq_cache : (string, Jucq.t) Hashtbl.t;
  cost_cache : (string, float) Hashtbl.t;
  fragment_cache : (string, float) Hashtbl.t;
  (* Data-versioned tier shared across searches and systems (None when
     caching is off): probed after the private memo, published after a
     computation. *)
  shared : Cache.tier2 option;
  mutable explored : int;
}

let create ?(fragment_capacity = fun _ -> true) ?shared ~reformulate
    ~jucq_cost ~ucq_cost query =
  {
    query;
    fragment_capacity;
    reformulate;
    jucq_cost;
    ucq_cost;
    jucq_cache = Hashtbl.create 64;
    cost_cache = Hashtbl.create 64;
    fragment_cache = Hashtbl.create 64;
    shared;
    explored = 0;
  }

let query t = t.query

let cover_key (c : Jucq.cover) =
  let frag f = String.concat "," (List.map string_of_int f) in
  String.concat ";" (List.sort String.compare (List.map frag c))

let shared_find_jucq t key =
  match t.shared with None -> None | Some h -> Cache.t2_find_jucq h key

let shared_find_cost t key =
  match t.shared with None -> None | Some h -> Cache.t2_find_cost h key

(* Publishing returns the winning JUCQ: under first-insert-wins, every
   search sharing the tier sees one physical JUCQ per cover, which is what
   the engine's plan caches key on. *)
let shared_add_jucq t key j =
  match t.shared with None -> j | Some h -> Cache.t2_add_jucq h key j

let shared_add_cost t key c =
  match t.shared with None -> () | Some h -> Cache.t2_add_cost h key c

let build_jucq t cover =
  Jucq.make ~reformulate:t.reformulate t.query cover

let jucq_of t cover =
  let key = cover_key cover in
  match Hashtbl.find_opt t.jucq_cache key with
  | Some j -> j
  | None ->
      let j =
        match shared_find_jucq t key with
        | Some j -> j
        | None -> shared_add_jucq t key (build_jucq t cover)
      in
      Hashtbl.add t.jucq_cache key j;
      j

(* The raw pricing of a cover, shared by [cover_cost] and [prime]: returns
   the JUCQ too (when one was built) so callers can memoize it alongside.
   A cover with a fragment the engine would refuse, or whose reformulation
   cannot even be constructed, is infinitely expensive; the capacity
   screen avoids building huge unions just to reject them. *)
let compute_cost t cover =
  let feasible =
    List.for_all
      (fun f -> t.fragment_capacity (Jucq.cover_query t.query cover f))
      cover
  in
  if not feasible then (None, infinity)
  else
    match build_jucq t cover with
    | j -> (Some j, t.jucq_cost j)
    | exception Reformulation.Reformulate.Too_large _ -> (None, infinity)

let memoize_cost t key j c =
  (match j with
  | Some j when not (Hashtbl.mem t.jucq_cache key) ->
      Hashtbl.add t.jucq_cache key (shared_add_jucq t key j)
  | _ -> ());
  shared_add_cost t key c;
  Hashtbl.add t.cost_cache key c;
  t.explored <- t.explored + 1

let cover_cost t cover =
  let key = cover_key cover in
  match Hashtbl.find_opt t.cost_cache key with
  | Some c -> c
  | None -> (
      match shared_find_cost t key with
      | Some c ->
          Hashtbl.add t.cost_cache key c;
          t.explored <- t.explored + 1;
          c
      | None ->
          let j, c = compute_cost t cover in
          memoize_cost t key j c;
          c)

(* Batch-primes the caches for a list of covers, computing the uncached
   ones' reformulations and costs in parallel, then memoizing sequentially
   in list order.  Equivalent to calling [cover_cost] on each cover in
   order: costs are pure functions of (objective, cover), [explored] grows
   by one per distinct uncached cover in the same order, and a cover whose
   construction raises (beyond [Too_large], which prices as [infinity])
   caches nothing — the exception resurfaces, identically, when
   [cover_cost] is called for it. *)
let prime pool t covers =
  let seen = Hashtbl.create 16 in
  let fresh =
    List.filter
      (fun cover ->
        let key = cover_key cover in
        if Hashtbl.mem t.cost_cache key || Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      covers
  in
  match fresh with
  | [] -> ()
  | _ ->
      let arr = Array.of_list fresh in
      let compute cover =
        match
          (* the shared probe happens inside the worker: on a warm tier
             every cover resolves without touching the reformulator *)
          let key = cover_key cover in
          match shared_find_cost t key with
          | Some c -> (None, c)
          | None -> compute_cost t cover
        with
        | v -> Ok v
        | exception e -> Error e
      in
      let results = Par.parallel_map pool compute arr in
      Array.iteri
        (fun i r ->
          match r with
          | Error _ -> ()  (* left uncached; [cover_cost] re-raises *)
          | Ok (j, c) ->
              let key = cover_key arr.(i) in
              if not (Hashtbl.mem t.cost_cache key) then memoize_cost t key j c)
        results

let fragment_cost t (f : Jucq.fragment) =
  let key = String.concat "," (List.map string_of_int f) in
  match Hashtbl.find_opt t.fragment_cache key with
  | Some c -> c
  | None ->
      let c =
        let shared =
          match t.shared with
          | None -> None
          | Some h -> Cache.t2_find_fragment h key
        in
        match shared with
        | Some c -> c
        | None ->
            let atoms = List.map (List.nth t.query.Bgp.body) f in
            let vars =
              List.sort_uniq String.compare
                (List.concat_map Bgp.atom_vars atoms)
            in
            let head = List.map (fun v -> Bgp.Var v) vars in
            let cq =
              match head with
              | [] -> Bgp.make [ (List.hd atoms).Bgp.s ] atoms
              | _ -> Bgp.make head atoms
            in
            let c =
              if not (t.fragment_capacity cq) then infinity
              else
                match t.reformulate cq with
                | ucq -> t.ucq_cost ucq
                | exception Reformulation.Reformulate.Too_large _ -> infinity
            in
            (match t.shared with
            | None -> ()
            | Some h -> Cache.t2_add_fragment h key c);
            c
      in
      Hashtbl.add t.fragment_cache key c;
      c

let explored t = t.explored
