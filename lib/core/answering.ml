open Query
module Es = Store.Encoded_store
module CV = Analysis.Cost_verify

type strategy =
  | Saturation
  | Ucq
  | Scq
  | Ecov of Cover_space.budget
  | Gcov

let strategy_name = function
  | Saturation -> "Saturation"
  | Ucq -> "UCQ"
  | Scq -> "SCQ"
  | Ecov _ -> "ECov"
  | Gcov -> "GCov"

(* Unlike [strategy_name], the key spells the ECov budget out: two budgets
   explore different prefixes of the cover space and may select different
   covers, so their answers must not share tier-3 entries. *)
let strategy_key = function
  | Saturation -> "Saturation"
  | Ucq -> "UCQ"
  | Scq -> "SCQ"
  | Ecov b ->
      Printf.sprintf "ECov(%d,%g)" b.Cover_space.max_covers
        b.Cover_space.max_millis
  | Gcov -> "GCov"

type cost_oracle = Paper_model | Engine_model

type system = {
  engine : Engine.Executor.t;
  (* saturated twin, keyed by the (schema, data) versions it was built
     from: a store update invalidates it and the next Saturation answer
     re-saturates.  Guarded for shared-system concurrency. *)
  mutable saturated : (int * int * Engine.Executor.t) option;
  sat_lock : Mutex.t;
  cache : Cache.t;
  (* tier 4: workload-selected materialized views.  [None] until the view
     selector installs some; when present, [run_cover] routes the
     executor's per-fragment probe through it. *)
  mutable views : Cache.Views.t option;
  cost : Cost_model.t;
  oracle : cost_oracle;
  (* tier-2/3 key prefix naming everything the costs depend on beside the
     query and store state: engine profile, cost oracle, calibration *)
  scope : string;
}

(* Calibrated coefficients are measured, not derived — two calibrations of
   the same profile need not agree — so each calibrated system costs under
   a scope of its own and shares tier-2/3 entries with nobody. *)
let calibration_counter = Atomic.make 0

let make ?(profile = Engine.Profile.postgres_like) ?(calibrate = false)
    ?(cost_oracle = Paper_model) ?reformulator ?cache store =
  let engine = Engine.Executor.create ~profile store in
  let coefficients =
    if calibrate then Cost_model.calibrate engine
    else Cost_model.coefficients_of_profile profile
  in
  let cache =
    match cache with
    | Some c ->
        if Cache.store c != store then
          invalid_arg "Answering.make: cache bound to a different store";
        c
    | None -> Cache.create ?reformulator store
  in
  {
    engine;
    saturated = None;
    sat_lock = Mutex.create ();
    cache;
    views = None;
    cost =
      Cost_model.create ~coefficients (Engine.Executor.statistics engine);
    oracle = cost_oracle;
    scope =
      String.concat "|"
        [
          profile.Engine.Profile.name;
          (match cost_oracle with
          | Paper_model -> "paper"
          | Engine_model -> "engine");
          (if calibrate then
             Printf.sprintf "calibrated-%d"
               (Atomic.fetch_and_add calibration_counter 1)
           else "profile");
        ];
  }

let of_graph ?profile ?calibrate ?cost_oracle g =
  make ?profile ?calibrate ?cost_oracle (Store.Encoded_store.of_graph g)

let engine s = s.engine

let saturated_engine s =
  let store = Engine.Executor.store s.engine in
  let sv = Es.schema_version store and dv = Es.data_version store in
  Mutex.lock s.sat_lock;
  match
    match s.saturated with
    | Some (sv', dv', ex) when sv' = sv && dv' = dv -> ex
    | _ ->
        let ex =
          Engine.Executor.create
            ~profile:(Engine.Executor.profile s.engine)
            (Es.saturate store)
        in
        s.saturated <- Some (sv, dv, ex);
        ex
  with
  | ex ->
      Mutex.unlock s.sat_lock;
      ex
  | exception e ->
      Mutex.unlock s.sat_lock;
      raise e

let cache s = s.cache
let views s = s.views

let enable_views s =
  match s.views with
  | Some v -> v
  | None ->
      (* built over this system's tier-1 closure: the physical-identity
         premise [Views.lookup] serves under *)
      let v =
        Cache.Views.create
          ~reformulate:(fun cq -> Cache.reformulate s.cache cq)
          (Engine.Executor.store s.engine)
      in
      s.views <- Some v;
      v

(* Interns every constant compilation could encode on demand for the given
   workload: the queries' own constants, the schema vocabulary the
   reformulator can splice into disjunct bodies/heads, and [rdf:type].
   Interning is idempotent and answer-neutral (see
   [Executor.intern_constants]); after a warm-up, repeated-query operation
   totals over the shared store are stable from the first request. *)
let warm_up s queries =
  let store = Engine.Executor.store s.engine in
  let dict = Es.dictionary store in
  let schema = Es.schema store in
  let intern_term c = ignore (Rdf.Dictionary.encode dict c) in
  intern_term Rdf.Vocab.rdf_type;
  Rdf.Term.Set.iter intern_term (Rdf.Schema.classes schema);
  Rdf.Term.Set.iter intern_term (Rdf.Schema.properties schema);
  List.iter
    (fun q ->
      let q = Bgp.normalize q in
      Engine.Executor.intern_constants s.engine q;
      (* Also warms cache tier 1 for the query's whole-body fragment. *)
      match Cache.reformulate s.cache q with
      | ucq ->
          List.iter
            (Engine.Executor.intern_constants s.engine)
            (Ucq.disjuncts ucq)
      | exception Reformulation.Reformulate.Too_large _ -> ())
    queries

let disable_views s = s.views <- None
let reformulator s = Cache.reformulator s.cache
let cost_model s = s.cost

let query_key q =
  Bgp.to_string (Bgp.canonical (Bgp.dedup_body (Bgp.normalize q)))

let objective s q =
  let reformulate cq = Cache.reformulate s.cache cq in
  let jucq_cost =
    match s.oracle with
    | Paper_model -> Cost_model.jucq_cost s.cost
    | Engine_model -> Engine.Executor.explain_cost s.engine
  in
  (* Static pre-filter (cost verification on): a candidate whose interval
     analysis already proves a refusal or a budget overrun costs infinity
     without ever running the exact cost model — cover search then skips
     provably-doomed plans for free. *)
  let jucq_cost =
    if not (CV.enabled ()) then jucq_cost
    else
      let oracle = Engine.Executor.cost_oracle s.engine in
      fun jucq ->
        let e = CV.estimate oracle (CV.Jucq jucq) in
        if e.CV.refused || e.CV.ops.CV.lo > oracle.CV.max_operations then
          infinity
        else jucq_cost jucq
  in
  let ucq_cost =
    if not (CV.enabled ()) then Cost_model.ucq_cost s.cost
    else
      let oracle = Engine.Executor.cost_oracle s.engine in
      fun ucq ->
        let e = CV.estimate oracle (CV.Ucq ucq) in
        if e.CV.refused || e.CV.ops.CV.lo > oracle.CV.max_operations then
          infinity
        else Cost_model.ucq_cost s.cost ucq
  in
  let capacity =
    (Engine.Executor.profile s.engine).Engine.Profile.max_union_terms
  in
  let fragment_capacity cq =
    Reformulation.Reformulate.count_product_bound (reformulator s) cq
    <= capacity
  in
  let shared = Cache.tier2 s.cache ~scope:s.scope ~query_key:(query_key q) in
  Objective.create ~fragment_capacity ?shared ~reformulate ~jucq_cost
    ~ucq_cost q

type report = {
  answers : Engine.Relation.t;
  strategy : strategy;
  cover : Jucq.cover option;
  union_terms : int;
  fragment_terms : int list;
  estimated_cost : float;
  covers_explored : int;
  planning_ms : float;
  execution_ms : float;
}

(* Wall-clock, not [Sys.time]: CPU time under-reports any waiting and is
   not comparable with the benchmark driver's [Unix.gettimeofday] spans. *)
let now_ms () = Unix.gettimeofday () *. 1000.0

let run_cover s strategy q cover ~covers_explored ~planning_start =
  let obj_free_reformulate cq = Cache.reformulate s.cache cq in
  let profile = Engine.Executor.profile s.engine in
  let refuse terms =
    (* The statement is refused before execution, like an RDBMS rejecting
       an oversized union — no point building millions of union terms the
       engine will not accept. *)
    raise
      (Engine.Profile.Engine_failure
         {
           engine = profile.Engine.Profile.name;
           reason =
             Engine.Profile.Union_capacity
               { terms; limit = profile.Engine.Profile.max_union_terms };
         })
  in
  let refm = reformulator s in
  List.iter
    (fun f ->
      let cqf = Jucq.cover_query q cover f in
      let bound = Reformulation.Reformulate.count_product_bound refm cqf in
      if bound > profile.Engine.Profile.max_union_terms then refuse bound)
    cover;
  let jucq =
    Obs.Span.with_ "plan.jucq" @@ fun sp ->
    let jucq =
      try Jucq.make ~reformulate:obj_free_reformulate q cover
      with Reformulation.Reformulate.Too_large { bound; _ } -> refuse bound
    in
    Obs.Span.set sp "fragments"
      (string_of_int (List.length jucq.Jucq.fragments));
    Obs.Span.set sp "union_terms"
      (string_of_int (Jucq.total_disjuncts jucq));
    jucq
  in
  (* With verification on, check the full plan against the originating
     query and cover (Definitions 3.3/3.4 + schema consistency) before
     shipping it to the engine. *)
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_jucq ~query:q ~cover
        ~context:("answering/" ^ strategy_name strategy)
        jucq);
  (* Static cost admission (RDFQA_VERIFY_COST): reject a statement the
     interval analysis proves doomed before the engine charges anything. *)
  Engine.Executor.admit
    ~context:("answering/" ^ strategy_name strategy)
    s.engine (CV.Jucq jucq);
  let estimated_cost =
    Obs.Span.with_ "plan.cost" @@ fun sp ->
    let c =
      match s.oracle with
      | Paper_model -> Cost_model.jucq_cost s.cost jucq
      | Engine_model -> Engine.Executor.explain_cost s.engine jucq
    in
    Obs.Span.set sp "estimated_cost" (Printf.sprintf "%.6g" c);
    c
  in
  let planning_ms = now_ms () -. planning_start in
  let exec_start = now_ms () in
  let answers =
    match s.views with
    | None -> Engine.Executor.eval_jucq s.engine jucq
    | Some v ->
        Engine.Executor.eval_jucq ~views:(Cache.Views.lookup v) s.engine jucq
  in
  {
    answers;
    strategy;
    cover = Some cover;
    union_terms = Jucq.total_disjuncts jucq;
    fragment_terms =
      List.map (fun (_, u) -> Ucq.cardinal u) jucq.Jucq.fragments;
    estimated_cost;
    covers_explored;
    planning_ms;
    execution_ms = now_ms () -. exec_start;
  }

let answer_uncached s strategy q =
  match strategy with
  | Saturation ->
      let planning_start = now_ms () in
      let ex = saturated_engine s in
      let planning_ms = now_ms () -. planning_start in
      let exec_start = now_ms () in
      let answers = Engine.Executor.eval_cq ex q in
      {
        answers;
        strategy;
        cover = None;
        union_terms = 1;
        fragment_terms = [ 1 ];
        estimated_cost = 0.0;
        covers_explored = 0;
        planning_ms;
        execution_ms = now_ms () -. exec_start;
      }
  | Ucq ->
      let planning_start = now_ms () in
      run_cover s strategy q (Jucq.ucq_cover q) ~covers_explored:0
        ~planning_start
  | Scq ->
      let planning_start = now_ms () in
      run_cover s strategy q (Jucq.scq_cover q) ~covers_explored:0
        ~planning_start
  | Ecov budget ->
      let planning_start = now_ms () in
      let result = Ecov.search ~budget (objective s q) in
      run_cover s strategy q result.Ecov.cover
        ~covers_explored:result.Ecov.explored ~planning_start
  | Gcov ->
      let planning_start = now_ms () in
      let result = Gcov.search (objective s q) in
      run_cover s strategy q result.Gcov.cover
        ~covers_explored:result.Gcov.explored ~planning_start

(* Process-level query metrics (lib/metrics): end-to-end latency of every
   [answer] call (cache hits included — a served query is a served query),
   split into answered/failed totals. *)
let h_latency =
  Metrics.histogram "query.latency_ms"
    ~help:"End-to-end answer latency in milliseconds"
let m_answered = Metrics.counter "query.answered" ~help:"Queries answered"
let m_failed =
  Metrics.counter "query.failed" ~help:"Queries aborted by an engine failure"

let answer s strategy q =
  Obs.Span.with_ "answer" ~attrs:[ ("strategy", strategy_name strategy) ]
  @@ fun _sp ->
  let q = Bgp.normalize q in
  let start = now_ms () in
  let observe outcome =
    Metrics.observe h_latency (now_ms () -. start);
    Metrics.add outcome 1
  in
  match
    (let key =
       String.concat "\x00" [ s.scope; strategy_key strategy; query_key q ]
     in
  match Cache.find_answer s.cache key with
  | Some (e : Cache.answer_entry) ->
      (* a hit replays the stored plan metadata — the same cover, sizes
         and search effort the cold run reported — under its own (probe)
         timings; engine failures are never cached, so failing statements
         fail identically warm and cold *)
      {
        answers = e.Cache.answers;
        strategy;
        cover = e.Cache.cover;
        union_terms = e.Cache.union_terms;
        fragment_terms = e.Cache.fragment_terms;
        estimated_cost = e.Cache.estimated_cost;
        covers_explored = e.Cache.covers_explored;
        planning_ms = now_ms () -. start;
        execution_ms = 0.0;
      }
  | None ->
      let r = answer_uncached s strategy q in
      Cache.add_answer s.cache key
        {
          Cache.answers = r.answers;
          cover = r.cover;
          union_terms = r.union_terms;
          fragment_terms = r.fragment_terms;
          estimated_cost = r.estimated_cost;
          covers_explored = r.covers_explored;
        };
      r)
  with
  | r ->
      observe m_answered;
      r
  | exception e ->
      observe m_failed;
      raise e

let answer_terms s strategy q =
  let report = answer s strategy q in
  let ex =
    match strategy with Saturation -> saturated_engine s | _ -> s.engine
  in
  Engine.Executor.decode ex report.answers
