open Query

type strategy =
  | Saturation
  | Ucq
  | Scq
  | Ecov of Cover_space.budget
  | Gcov

let strategy_name = function
  | Saturation -> "Saturation"
  | Ucq -> "UCQ"
  | Scq -> "SCQ"
  | Ecov _ -> "ECov"
  | Gcov -> "GCov"

type cost_oracle = Paper_model | Engine_model

type system = {
  engine : Engine.Executor.t;
  saturated : Engine.Executor.t Lazy.t;
  reformulator : Reformulation.Reformulate.t;
  cost : Cost_model.t;
  oracle : cost_oracle;
}

let make ?(profile = Engine.Profile.postgres_like) ?(calibrate = false)
    ?(cost_oracle = Paper_model) ?reformulator store =
  let engine = Engine.Executor.create ~profile store in
  let coefficients =
    if calibrate then Cost_model.calibrate engine
    else Cost_model.coefficients_of_profile profile
  in
  {
    engine;
    saturated =
      lazy
        (Engine.Executor.create ~profile (Store.Encoded_store.saturate store));
    reformulator =
      (match reformulator with
      | Some r -> r
      | None ->
          Reformulation.Reformulate.create (Store.Encoded_store.schema store));
    cost =
      Cost_model.create ~coefficients (Engine.Executor.statistics engine);
    oracle = cost_oracle;
  }

let of_graph ?profile ?calibrate ?cost_oracle g =
  make ?profile ?calibrate ?cost_oracle (Store.Encoded_store.of_graph g)

let engine s = s.engine
let saturated_engine s = Lazy.force s.saturated
let reformulator s = s.reformulator
let cost_model s = s.cost

let objective s q =
  let reformulate cq = Reformulation.Reformulate.reformulate s.reformulator cq in
  let jucq_cost =
    match s.oracle with
    | Paper_model -> Cost_model.jucq_cost s.cost
    | Engine_model -> Engine.Executor.explain_cost s.engine
  in
  let capacity =
    (Engine.Executor.profile s.engine).Engine.Profile.max_union_terms
  in
  let fragment_capacity cq =
    Reformulation.Reformulate.count_product_bound s.reformulator cq
    <= capacity
  in
  Objective.create ~fragment_capacity ~reformulate ~jucq_cost
    ~ucq_cost:(Cost_model.ucq_cost s.cost)
    q

type report = {
  answers : Engine.Relation.t;
  strategy : strategy;
  cover : Jucq.cover option;
  union_terms : int;
  fragment_terms : int list;
  estimated_cost : float;
  covers_explored : int;
  planning_ms : float;
  execution_ms : float;
}

(* Wall-clock, not [Sys.time]: CPU time under-reports any waiting and is
   not comparable with the benchmark driver's [Unix.gettimeofday] spans. *)
let now_ms () = Unix.gettimeofday () *. 1000.0

let run_cover s strategy q cover ~covers_explored ~planning_start =
  let obj_free_reformulate cq =
    Reformulation.Reformulate.reformulate s.reformulator cq
  in
  let profile = Engine.Executor.profile s.engine in
  let refuse terms =
    (* The statement is refused before execution, like an RDBMS rejecting
       an oversized union — no point building millions of union terms the
       engine will not accept. *)
    raise
      (Engine.Profile.Engine_failure
         {
           engine = profile.Engine.Profile.name;
           reason =
             Engine.Profile.Union_capacity
               { terms; limit = profile.Engine.Profile.max_union_terms };
         })
  in
  List.iter
    (fun f ->
      let cqf = Jucq.cover_query q cover f in
      let bound =
        Reformulation.Reformulate.count_product_bound s.reformulator cqf
      in
      if bound > profile.Engine.Profile.max_union_terms then refuse bound)
    cover;
  let jucq =
    Obs.Span.with_ "plan.jucq" @@ fun sp ->
    let jucq =
      try Jucq.make ~reformulate:obj_free_reformulate q cover
      with Reformulation.Reformulate.Too_large { bound; _ } -> refuse bound
    in
    Obs.Span.set sp "fragments"
      (string_of_int (List.length jucq.Jucq.fragments));
    Obs.Span.set sp "union_terms"
      (string_of_int (Jucq.total_disjuncts jucq));
    jucq
  in
  (* With verification on, check the full plan against the originating
     query and cover (Definitions 3.3/3.4 + schema consistency) before
     shipping it to the engine. *)
  Analysis.Plan_verify.check_exn (fun () ->
      Analysis.Plan_verify.verify_jucq ~query:q ~cover
        ~context:("answering/" ^ strategy_name strategy)
        jucq);
  let estimated_cost =
    Obs.Span.with_ "plan.cost" @@ fun sp ->
    let c =
      match s.oracle with
      | Paper_model -> Cost_model.jucq_cost s.cost jucq
      | Engine_model -> Engine.Executor.explain_cost s.engine jucq
    in
    Obs.Span.set sp "estimated_cost" (Printf.sprintf "%.6g" c);
    c
  in
  let planning_ms = now_ms () -. planning_start in
  let exec_start = now_ms () in
  let answers = Engine.Executor.eval_jucq s.engine jucq in
  {
    answers;
    strategy;
    cover = Some cover;
    union_terms = Jucq.total_disjuncts jucq;
    fragment_terms =
      List.map (fun (_, u) -> Ucq.cardinal u) jucq.Jucq.fragments;
    estimated_cost;
    covers_explored;
    planning_ms;
    execution_ms = now_ms () -. exec_start;
  }

let answer s strategy q =
  Obs.Span.with_ "answer" ~attrs:[ ("strategy", strategy_name strategy) ]
  @@ fun _sp ->
  let q = Bgp.normalize q in
  match strategy with
  | Saturation ->
      let planning_start = now_ms () in
      let ex = saturated_engine s in
      let planning_ms = now_ms () -. planning_start in
      let exec_start = now_ms () in
      let answers = Engine.Executor.eval_cq ex q in
      {
        answers;
        strategy;
        cover = None;
        union_terms = 1;
        fragment_terms = [ 1 ];
        estimated_cost = 0.0;
        covers_explored = 0;
        planning_ms;
        execution_ms = now_ms () -. exec_start;
      }
  | Ucq ->
      let planning_start = now_ms () in
      run_cover s strategy q (Jucq.ucq_cover q) ~covers_explored:0
        ~planning_start
  | Scq ->
      let planning_start = now_ms () in
      run_cover s strategy q (Jucq.scq_cover q) ~covers_explored:0
        ~planning_start
  | Ecov budget ->
      let planning_start = now_ms () in
      let result = Ecov.search ~budget (objective s q) in
      run_cover s strategy q result.Ecov.cover
        ~covers_explored:result.Ecov.explored ~planning_start
  | Gcov ->
      let planning_start = now_ms () in
      let result = Gcov.search (objective s q) in
      run_cover s strategy q result.Gcov.cover
        ~covers_explored:result.Gcov.explored ~planning_start

let answer_terms s strategy q =
  let report = answer s strategy q in
  let ex =
    match strategy with Saturation -> saturated_engine s | _ -> s.engine
  in
  Engine.Executor.decode ex report.answers
