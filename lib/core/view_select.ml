open Query

(* Workload-driven materialized view selection.

   The candidate space is exactly the fragments the cover-based answering
   strategies would evaluate: for every workload query and every strategy
   of interest, run that strategy's cover search (through the system's
   shared tier-2 memo — the searches here warm the same cache the answer
   path reads) and collect the cover queries of the chosen cover.
   Identical fragments recur across queries and strategies — LUBM's
   [takesCourse]/[advisor] stars, DBLP's [creator] chains — and are merged
   by the tier-1 canonical key, so a candidate's benefit aggregates every
   place the workload would re-evaluate it.

   Scoring.  Evaluating a fragment costs [ucq_cost u] under the system's
   calibrated Section 4.1 model; serving it from a view costs only the
   post-scan part the replay still charges — the [c_l·|u|]
   duplicate-elimination term over the estimated result.  The difference,
   clamped at zero, is the estimated saving of one use; a candidate's
   benefit is the sum over its uses.  Its price is the bytes the snapshot
   would hold (estimated rows × arity words, plus per-term charge-log
   overhead).  Greedy selection by benefit density (benefit/byte) under
   the byte budget is the classic knapsack heuristic; ties break on the
   canonical key so selection is deterministic. *)

type candidate = {
  key : string;  (* tier-1 canonical key of the cover query *)
  cq : Bgp.t;  (* a representative cover query for that key *)
  uses : int;  (* (query, strategy) pairs whose cover contains it *)
  terms : int;  (* union terms of its reformulation *)
  est_rows : float;  (* statistics estimate of the materialized rows *)
  est_bytes : int;  (* estimated snapshot size *)
  benefit : float;  (* workload-wide estimated cost saved *)
}

type selection = {
  budget : int;
  candidates : candidate list;  (* all scored candidates, density order *)
  selected : candidate list;  (* the greedy choice, density order *)
  selected_bytes : int;  (* estimated bytes of [selected] *)
}

(* The exploration-count half of the default ECov budget, with the
   wall-clock half disabled: selection and the later measured runs must
   choose the same covers, and a time budget can trip at different points
   on warm and cold cost caches. *)
let deterministic_ecov_budget =
  { Cover_space.default_budget with Cover_space.max_millis = infinity }

let default_strategies =
  [ Answering.Ecov deterministic_ecov_budget; Answering.Gcov ]

(* The cover a strategy would choose for a query — [None] for Saturation,
   which evaluates no fragments and can never use a view. *)
let cover_of s strategy q =
  match (strategy : Answering.strategy) with
  | Answering.Saturation -> None
  | Answering.Ucq -> Some (Jucq.ucq_cover q)
  | Answering.Scq -> Some (Jucq.scq_cover q)
  | Answering.Ecov budget ->
      Some (Ecov.search ~budget (Answering.objective s q)).Ecov.cover
  | Answering.Gcov -> Some (Gcov.search (Answering.objective s q)).Gcov.cover

let key_of cq =
  Bgp.to_string (Bgp.canonical (Bgp.dedup_body (Bgp.normalize cq)))

let candidates ?(strategies = default_strategies) s workload =
  let cache = Answering.cache s in
  let cost = Answering.cost_model s in
  let stats = Engine.Executor.statistics (Answering.engine s) in
  let refm = Answering.reformulator s in
  let capacity =
    (Engine.Executor.profile (Answering.engine s))
      .Engine.Profile.max_union_terms
  in
  let c_l = (Cost_model.coefficients cost).Cost_model.c_l in
  (* Throwaway engine for plan-time preparation: its plan cache holds the
     pre-encode compiles of self-encoding fragments (a fragment whose own
     later disjuncts' head constants make its earlier disjuncts
     satisfiable), which must not leak into any engine that will answer
     queries afterwards. *)
  let prep = Engine.Executor.create (Engine.Executor.store (Answering.engine s)) in
  (* per canonical key: the scored fragment and how often the workload
     would evaluate it *)
  let acc :
      (string, candidate * float (* per-use benefit *)) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (_, q) ->
      List.iter
        (fun strategy ->
          match cover_of s strategy q with
          | None -> ()
          | Some cover ->
              List.iter
                (fun f ->
                  let cq = Jucq.cover_query q cover f in
                  (* a fragment the engine would refuse (union over
                     capacity) is never evaluated, so a view of it is
                     never probed — and recording it would build the very
                     union the refusal avoids *)
                  if
                    Reformulation.Reformulate.count_product_bound refm cq
                    <= capacity
                  then begin
                    let key = key_of cq in
                    match Hashtbl.find_opt acc key with
                    | Some (c, per_use) ->
                        Hashtbl.replace acc key
                          ( {
                              c with
                              uses = c.uses + 1;
                              benefit = c.benefit +. per_use;
                            },
                            per_use )
                    | None ->
                        let u = Cache.reformulate cache cq in
                        (* compile now (charge-free): plan-time head
                           encodes must all land before any snapshot is
                           recorded or any measured evaluation runs, or
                           charge streams shift under dictionary growth *)
                        Engine.Executor.prepare_fragment prep u;
                        let rows = Store.Statistics.ucq_cardinality stats u in
                        let per_use =
                          Float.max 0.
                            (Cost_model.ucq_cost cost u -. (c_l *. rows))
                        in
                        let terms = Ucq.cardinal u in
                        let bytes =
                          (int_of_float (Float.min rows 1e15)
                          * Ucq.arity u * 8)
                          + (64 * terms) + 128
                        in
                        Hashtbl.replace acc key
                          ( {
                              key;
                              cq;
                              uses = 1;
                              terms;
                              est_rows = rows;
                              est_bytes = bytes;
                              benefit = per_use;
                            },
                            per_use )
                  end)
                cover)
        strategies)
    workload;
  let all = Hashtbl.fold (fun _ (c, _) l -> c :: l) acc [] in
  List.sort
    (fun a b ->
      let da = a.benefit /. float_of_int (max 1 a.est_bytes)
      and db = b.benefit /. float_of_int (max 1 b.est_bytes) in
      match Float.compare db da with
      | 0 -> String.compare a.key b.key
      | c -> c)
    all

let select ?strategies ~budget s workload =
  let cands = candidates ?strategies s workload in
  let selected, bytes =
    List.fold_left
      (fun (sel, used) c ->
        if c.benefit > 0. && used + c.est_bytes <= budget then
          (c :: sel, used + c.est_bytes)
        else (sel, used))
      ([], 0) cands
  in
  {
    budget;
    candidates = cands;
    selected = List.rev selected;
    selected_bytes = bytes;
  }

let install s selection =
  let v = Answering.enable_views s in
  List.iter (fun c -> Cache.Views.install v c.cq) selection.selected;
  v

let select_and_install ?strategies ~budget s workload =
  let selection = select ?strategies ~budget s workload in
  let _ = install s selection in
  selection
