open Query

type result = {
  cover : Jucq.cover;
  cost : float;
  explored : int;
  moves_applied : int;
  elapsed_ms : float;
}

let cover_key (c : Jucq.cover) =
  let frag f = String.concat "," (List.map string_of_int f) in
  String.concat ";" (List.sort String.compare (List.map frag c))

(* C.add(f, t): replace fragment [f] by [f ∪ {t}], drop fragments included
   in another, then drop coverage-redundant fragments in decreasing
   fragment-cost order (Section 4.3's example: adding t4 to {t1,t2} in
   {{t1,t2},{t1,t3},{t3,t4}} renders {t3,t4} redundant). *)
let apply_move obj (c : Jucq.cover) (f : Jucq.fragment) (t : int) : Jucq.cover =
  let f' = List.sort_uniq Int.compare (t :: f) in
  let replaced = ref false in
  let c' =
    List.map
      (fun g ->
        if (not !replaced) && g = f then begin
          replaced := true;
          f'
        end
        else g)
      c
  in
  (* Remove fragments strictly included in another, and all but the first
     copy of exact duplicates. *)
  let without_included =
    let arr = Array.of_list c' in
    let subset a b = List.for_all (fun i -> List.mem i b) a in
    let drop i g =
      List.exists
        (fun (j, h) ->
          j <> i
          && subset g h
          && ((not (subset h g)) || j < i))
        (List.mapi (fun j h -> (j, h)) c')
    in
    Array.to_list arr
    |> List.mapi (fun i g -> (i, g))
    |> List.filter_map (fun (i, g) -> if drop i g then None else Some g)
  in
  (* Coverage-redundancy pruning, most expensive fragment first. *)
  let by_cost_desc =
    List.sort
      (fun a b ->
        Float.compare (Objective.fragment_cost obj b)
          (Objective.fragment_cost obj a))
      without_included
  in
  let rec prune acc = function
    | [] -> List.rev acc
    | g :: rest ->
        let others = acc @ rest in
        let redundant =
          others <> []
          && List.for_all
               (fun i -> List.exists (fun h -> List.mem i h) others)
               g
        in
        if redundant then prune acc rest else prune (g :: acc) rest
  in
  prune [] by_cost_desc

(* All (fragment, triple) moves from a cover: extend a fragment with a
   connected extra triple. *)
let moves_from (q : Bgp.t) (c : Jucq.cover) =
  let atoms = Array.of_list q.Bgp.body in
  let n = Array.length atoms in
  List.concat_map
    (fun f ->
      let f_atoms = List.map (fun i -> atoms.(i)) f in
      List.filter_map
        (fun t ->
          if List.mem t f then None
          else if Bgp.fragment_connected f_atoms [ atoms.(t) ] then
            Some (f, t)
          else None)
        (List.init n Fun.id))
    c

type move_ordering = Cost_sorted | Fifo

type stop_condition = Exhausted | Improvement_ratio of float | Timeout_ms of float

module Queue_ = Set.Make (struct
  type t = float * int * Jucq.cover

  let compare (c1, s1, _) (c2, s2, _) =
    let c = Float.compare c1 c2 in
    if c <> 0 then c else Int.compare s1 s2
end)

let search ?(max_moves = 10_000) ?(ordering = Cost_sorted)
    ?(stop = Exhausted) (obj : Objective.t) =
  Obs.Span.with_ "plan.cover_search" ~attrs:[ ("algo", "gcov") ]
  @@ fun sp ->
  let t0 = Sys.time () in
  let q = Objective.query obj in
  let c0 = Jucq.scq_cover q in
  let finish cover cost moves_applied =
    Obs.Span.set sp "explored" (string_of_int (Objective.explored obj));
    Obs.Span.set sp "moves" (string_of_int moves_applied);
    {
      cover;
      cost;
      explored = Objective.explored obj;
      moves_applied;
      elapsed_ms = (Sys.time () -. t0) *. 1000.0;
    }
  in
  if List.length q.Bgp.body = 1 then
    finish c0 (Objective.cover_cost obj c0) 0
  else begin
    let analysed = Hashtbl.create 256 in
    let serial = ref 0 in
    let queue = ref Queue_.empty in
    let best = ref (c0, Objective.cover_cost obj c0) in
    let pool = Par.get () in
    (* One pop's worth of neighbors, considered as a batch: dedup against
       [analysed] sequentially in move order, batch-prime the fresh covers'
       costs across the pool, then cost-and-push sequentially in the same
       order.  [bound] is fixed for the whole batch and [best] never moves
       between pushes (it only updates at pops), so the queue evolves
       exactly as under the sequential per-neighbor loop — the search
       trajectory, and hence the chosen cover, is bit-identical at every
       jobs count. *)
    let consider_batch ~bound covers =
      let fresh =
        List.filter
          (fun cover ->
            let key = cover_key cover in
            if Hashtbl.mem analysed key then false
            else begin
              Hashtbl.add analysed key ();
              true
            end)
          covers
      in
      (match fresh with
      | [] | [ _ ] -> ()
      | _ -> if Par.jobs pool > 1 then Objective.prime pool obj fresh);
      List.iter
        (fun cover ->
          (* Redundancy pruning can, in corner cases, leave a cover outside
             the valid space (e.g. a fragment left without a join partner);
             such moves are simply not taken. *)
          match Objective.cover_cost obj cover with
          | cost ->
              if cost <= bound then begin
                incr serial;
                (* Fifo ablation: the serial number alone decides the pop
                   order (all elements share a zero key). *)
                let key =
                  match ordering with Cost_sorted -> cost | Fifo -> 0.0
                in
                queue := Queue_.add (key, !serial, cover) !queue
              end
          | exception Invalid_argument _ -> ())
        fresh
    in
    (* Seed with the neighbors of C0 (Algorithm 1, lines 4-7). *)
    consider_batch ~bound:(snd !best)
      (List.map (fun (f, t) -> apply_move obj c0 f t) (moves_from q c0));
    let moves_applied = ref 0 in
    let initial_cost = snd !best in
    let keep_going () =
      match stop with
      | Exhausted -> true
      | Improvement_ratio ratio -> snd !best > ratio *. initial_cost
      | Timeout_ms ms -> (Sys.time () -. t0) *. 1000.0 <= ms
    in
    (* Main loop (lines 8-16). *)
    while
      (not (Queue_.is_empty !queue))
      && !moves_applied < max_moves
      && keep_going ()
    do
      let ((_, _, cover) as elt) = Queue_.min_elt !queue in
      queue := Queue_.remove elt !queue;
      (* Memoized: free even when the queue key is the Fifo placeholder. *)
      let cost = Objective.cover_cost obj cover in
      incr moves_applied;
      if cost <= snd !best then best := (cover, cost);
      consider_batch
        ~bound:(snd !best -. epsilon_float)
        (List.map (fun (f, t) -> apply_move obj cover f t)
           (moves_from q cover))
    done;
    finish (fst !best) (snd !best) !moves_applied
  end
