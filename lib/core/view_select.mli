(** Workload-driven materialized view selection.

    Enumerates candidate views from the fragments the cover-based
    strategies (default: ECov and GCov) would evaluate over a workload —
    the cover queries their searches choose, merged across queries and
    strategies by the tier-1 canonical key — scores each by estimated
    workload-wide cost saved per materialized byte, and greedily packs
    them under a byte budget.  {!install} materializes the winners into
    the system's {!Cache.Views} tier, after which reformulation-strategy
    answers serve matching fragments from the views with bit-identical
    answers and operation totals. *)

type candidate = {
  key : string;  (** tier-1 canonical key of the cover query *)
  cq : Query.Bgp.t;  (** a representative cover query for that key *)
  uses : int;  (** (query, strategy) pairs whose cover contains it *)
  terms : int;  (** union terms of its reformulation *)
  est_rows : float;  (** statistics estimate of the materialized rows *)
  est_bytes : int;  (** estimated snapshot size *)
  benefit : float;  (** workload-wide estimated cost saved *)
}

type selection = {
  budget : int;  (** the byte budget selection ran under *)
  candidates : candidate list;  (** all scored candidates, best-first *)
  selected : candidate list;  (** the greedy choice, best-first *)
  selected_bytes : int;  (** estimated bytes of [selected] *)
}

val deterministic_ecov_budget : Cover_space.budget
(** The default ECov enumeration budget with the wall-clock half disabled:
    cover choice must be reproducible between selection and the measured
    runs, and a time budget can trip at different points on warm and cold
    cost caches. *)

val default_strategies : Answering.strategy list
(** [ECov {!deterministic_ecov_budget}; GCov] — the cover-based
    strategies whose fragments the selector mines by default. *)

val candidates :
  ?strategies:Answering.strategy list ->
  Answering.system ->
  (string * Query.Bgp.t) list ->
  candidate list
(** Scored candidates for a named-query workload, in decreasing
    benefit-density order (ties on the canonical key).  Runs each
    strategy's cover search per query through the system's shared tier-2
    memo, so the work also warms the cache the answer path reads. *)

val select :
  ?strategies:Answering.strategy list ->
  budget:int ->
  Answering.system ->
  (string * Query.Bgp.t) list ->
  selection
(** Greedy selection under [budget] estimated bytes: walk candidates in
    density order, keep those with positive benefit that still fit. *)

val install : Answering.system -> selection -> Cache.Views.t
(** Materializes the selection into the system's view tier (created via
    {!Answering.enable_views} if absent) and returns it. *)

val select_and_install :
  ?strategies:Answering.strategy list ->
  budget:int ->
  Answering.system ->
  (string * Query.Bgp.t) list ->
  selection
(** {!select} followed by {!install}. *)
