(** End-to-end query answering: the strategies compared throughout the
    paper's evaluation (Section 5), over one store and engine profile.

    - {b Saturation}: pre-saturate the database, evaluate the plain CQ
      (the baseline of Figure 10);
    - {b Ucq}: the state-of-the-art flat CQ→UCQ reformulation;
    - {b Scq}: the semi-conjunctive reformulation of [13] (one-triple
      fragments);
    - {b Ecov}/{b Gcov}: the cover-based JUCQ reformulations selected by
      the exhaustive, resp. greedy, cost-driven search of Section 4.

    A {!system} bundles the raw store, its lazily saturated twin, the
    version-aware {!Cache} (reformulations, cover costs, answers),
    statistics and cost model; {!answer} runs a query under a strategy and
    reports the answers plus the planning metadata (chosen cover,
    reformulation sizes, algorithm effort) that the benchmark harness
    turns into the paper's tables and figures.  Store updates
    ({!Store.Encoded_store.insert_triples} and friends) are picked up
    automatically: every cache tier, the executor's plans, the statistics
    and the saturated twin revalidate against the store's version
    counters. *)

type strategy =
  | Saturation
  | Ucq
  | Scq
  | Ecov of Cover_space.budget
  | Gcov

val strategy_name : strategy -> string
(** Short display name ("UCQ", "GCov", …). *)

type cost_oracle =
  | Paper_model   (** the Section 4.1 analytic model (calibrated) *)
  | Engine_model  (** the engine's internal estimate ({!Engine.Executor.explain_cost}) *)

type system

val make :
  ?profile:Engine.Profile.t ->
  ?calibrate:bool ->
  ?cost_oracle:cost_oracle ->
  ?reformulator:Reformulation.Reformulate.t ->
  ?cache:Cache.t ->
  Store.Encoded_store.t ->
  system
(** A query-answering system over a loaded store.  [calibrate] (default
    [false]) learns the cost coefficients by probing the engine; otherwise
    the profile defaults apply.  [cost_oracle] picks the cost function
    guiding ECov/GCov (default {!Paper_model}; Figure 9 compares both).
    [cache] lets several systems over one store share one {!Cache} (the
    benchmark harness runs three engine profiles against one store);
    it must be bound to [store].  When absent a private cache is created
    ([reformulator] then seeds its tier-1 engine). *)

val of_graph :
  ?profile:Engine.Profile.t ->
  ?calibrate:bool ->
  ?cost_oracle:cost_oracle ->
  Rdf.Graph.t ->
  system
(** Convenience: loads the graph into a store first. *)

val engine : system -> Engine.Executor.t
(** The engine over the raw (non-saturated) store. *)

val saturated_engine : system -> Engine.Executor.t
(** The engine over the saturated store (forced on first use, rebuilt when
    the store's version counters move). *)

val cache : system -> Cache.t
(** The system's cache (shared or private). *)

val views : system -> Cache.Views.t option
(** The system's tier-4 materialized view set, if enabled. *)

val enable_views : system -> Cache.Views.t
(** Returns the system's view tier, creating an empty one (bound to this
    system's store and tier-1 reformulation closure) on first call.
    Reformulation-strategy answers then probe it per fragment; answers
    and operation totals are bit-identical with or without views. *)

val disable_views : system -> unit
(** Detaches the view tier: subsequent answers evaluate every fragment. *)

val warm_up : system -> Query.Bgp.t list -> unit
(** Pre-interns everything compilation could dictionary-encode on demand
    for a workload: each query's constants, every constant of its tier-1
    reformulation (warming that cache tier as a side effect), the schema's
    classes and properties, and [rdf:type].  Idempotent and
    answer-neutral; afterwards repeated-query operation totals over the
    shared store are stable from the first request (the ±2-op first-query
    drift).  Queries whose reformulation exceeds the product bound are
    warmed for their own constants only. *)

val reformulator : system -> Reformulation.Reformulate.t
(** The current schema generation's CQ→UCQ reformulation engine
    ({!Cache.reformulator}).  Do not retain across schema updates. *)

val cost_model : system -> Cost_model.t
(** The calibrated Section 4.1 cost model. *)

val objective : system -> Query.Bgp.t -> Objective.t
(** A fresh search objective for a query, wired to the system's
    reformulator and selected cost oracle. *)

type report = {
  answers : Engine.Relation.t;   (** the (deduplicated) answer relation *)
  strategy : strategy;
  cover : Query.Jucq.cover option;      (** cover used (reformulation strategies) *)
  union_terms : int;             (** total CQs across fragments ([|q_ref|]-like) *)
  fragment_terms : int list;     (** per-fragment UCQ sizes, cover order ([1] for Saturation) *)
  estimated_cost : float;        (** cost the oracle assigned to the plan run *)
  covers_explored : int;         (** ECov/GCov search effort *)
  planning_ms : float;           (** reformulation + search wall-clock time *)
  execution_ms : float;          (** engine evaluation wall-clock time *)
}

val answer : system -> strategy -> Query.Bgp.t -> report
(** Answers the query under a strategy.  With answer caching on, a repeat
    of the same (strategy, query) on an unchanged store is served from
    tier 3: bit-identical answers and plan metadata, near-zero timings.
    Failing statements are never cached and fail identically warm or cold.
    @raise Engine.Profile.Engine_failure when the engine profile's limits
    are hit (the missing bars of Figures 4-6). *)

val answer_terms : system -> strategy -> Query.Bgp.t -> Rdf.Term.t list list
(** Decoded, sorted answers — the test-facing surface.  All strategies
    agree with [Query.Bgp.answer] (the naive specification). *)
