(** Data statistics and cardinality estimation.

    The cost model of Section 4.1 "relies on estimated cardinalities of
    various subqueries of the JUCQ"; GCov obtains "the statistics necessary
    for estimating the number of results of various fragments".  This
    module supplies them:

    - exact per-pattern triple counts, answered from the store's indexes;
    - number-of-distinct-values (NDV) statistics per property and position;
    - textbook System-R estimation for conjunctive queries: the product of
      per-atom counts discounted by [1/max(ndv)] for every additional
      occurrence of a join variable;
    - UCQ estimates as the sum of the member CQ estimates (set semantics
      makes this an upper bound; duplicate ratios are workload-dependent
      and deliberately not modeled, as in the paper's simple cost model).

    Estimates are cached per (statistics, canonical CQ); the caches track
    the store's modification counter and flush automatically after
    updates, so a long-lived system keeps estimating correctly as data
    arrives. *)

type t

val create : Encoded_store.t -> t
(** Statistics bound to a store.  NDV tables are built lazily.  When the
    store's {!Encoded_store.data_version} moves, the caches are refreshed
    incrementally from {!Encoded_store.changes_since}: only the touched
    properties' NDV entries are dropped and the store-wide distinct counts
    absorb the delta; a full flush happens only when the change log's
    bounded window has been outrun.  Schema-only changes refresh
    nothing. *)

val store : t -> Encoded_store.t
(** The underlying store. *)

val atom_count : t -> Query.Bgp.atom -> int
(** Exact number of triples matching one atom (variables as wildcards;
    repeated variables within the atom are filtered exactly). *)

val ndv : t -> prop:int -> [ `Subject | `Object ] -> int
(** Number of distinct subject (resp. object) codes among the triples with
    the given property code.  At least 1 for a non-empty posting. *)

val global_distinct : t -> [ `Subject | `Property | `Object ] -> int
(** Store-wide number of distinct codes in a triple position (at least 1).
    Maintained incrementally from the store's change log after updates. *)

val cq_cardinality : t -> Query.Bgp.t -> float
(** Estimated number of answers of a CQ (before head projection /
    duplicate elimination). *)

val ucq_cardinality : t -> Query.Ucq.t -> float
(** Estimated number of answers of a UCQ: sum of the member estimates. *)
