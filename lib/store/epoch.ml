(* Writer-preference drain coordination.  The store mutates in place, so
   snapshot isolation here means: no mutation while any reader is pinned.
   Readers admit under [no writer active or waiting]; a writer first wins
   the writer baton, then waits for the pinned epoch to drain (active = 0),
   mutates, bumps the epoch, flushes deferred reclamation, and releases.
   All state sits behind one mutex; the two condition variables separate
   "a writer finished" (wakes readers and the next writer) from "the last
   reader left" (wakes the draining writer). *)

type t = {
  m : Mutex.t;
  turn : Condition.t;     (* writer released: readers / next writer go *)
  drained : Condition.t;  (* last pinned reader left *)
  mutable cur_epoch : int;
  mutable active : int;         (* readers inside a section *)
  mutable writer_active : bool;
  mutable writers_queued : int; (* writers admitted or waiting *)
  mutable deferred : (unit -> unit) list; (* newest first *)
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_deferred_run : int;
}

let create () =
  {
    m = Mutex.create ();
    turn = Condition.create ();
    drained = Condition.create ();
    cur_epoch = 0;
    active = 0;
    writer_active = false;
    writers_queued = 0;
    deferred = [];
    n_reads = 0;
    n_writes = 0;
    n_deferred_run = 0;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let epoch t = with_lock t (fun () -> t.cur_epoch)
let active_readers t = with_lock t (fun () -> t.active)
let waiting_writers t =
  with_lock t (fun () -> t.writers_queued + if t.writer_active then 1 else 0)
let reads t = with_lock t (fun () -> t.n_reads)
let writes t = with_lock t (fun () -> t.n_writes)
let deferred_pending t = with_lock t (fun () -> List.length t.deferred)
let deferred_run t = with_lock t (fun () -> t.n_deferred_run)

let defer t thunk = with_lock t (fun () -> t.deferred <- thunk :: t.deferred)

let read t f =
  Mutex.lock t.m;
  while t.writer_active || t.writers_queued > 0 do
    Condition.wait t.turn t.m
  done;
  t.active <- t.active + 1;
  let pinned = t.cur_epoch in
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.active <- t.active - 1;
      t.n_reads <- t.n_reads + 1;
      if t.active = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.m)
    (fun () -> f pinned)

let write t f =
  Mutex.lock t.m;
  t.writers_queued <- t.writers_queued + 1;
  while t.writer_active do
    Condition.wait t.turn t.m
  done;
  t.writers_queued <- t.writers_queued - 1;
  t.writer_active <- true;
  while t.active > 0 do
    Condition.wait t.drained t.m
  done;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.cur_epoch <- t.cur_epoch + 1;
      t.n_writes <- t.n_writes + 1;
      let thunks = List.rev t.deferred in
      t.deferred <- [];
      Mutex.unlock t.m;
      (* Reclamation runs after the bump but before release: the epoch the
         thunks clean up after has provably drained (writer_active still
         excludes readers).  The mutex is NOT held, so a thunk may call
         back into the coordinator's accessors — or defer again, queueing
         for the next write. *)
      let run = ref 0 in
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.m;
          t.n_deferred_run <- t.n_deferred_run + !run;
          t.writer_active <- false;
          Condition.broadcast t.turn;
          Mutex.unlock t.m)
        (fun () ->
          List.iter
            (fun thunk ->
              thunk ();
              incr run)
            thunks))
    f
