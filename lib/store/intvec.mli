(** Growable integer vectors: the backing storage for triple tables,
    posting lists and materialized relations.  Amortized O(1) append. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty vector. *)

val length : t -> int
(** Number of elements. *)

val push : t -> int -> unit
(** Appends an element. *)

val get : t -> int -> int
(** [get v i] is the [i]-th element.  Bounds-checked. *)

val unsafe_get : t -> int -> int
(** [unsafe_get v i] is the [i]-th element with {e no} bounds check: the
    caller must guarantee [0 <= i < length v].  Reserved for the engine's
    innermost loops (posting-list scans, column reads), where the index is
    valid by construction. *)

val set : t -> int -> int -> unit
(** [set v i x] overwrites the [i]-th element.  Bounds-checked. *)

val pop : t -> int
(** Removes and returns the last element.  Raises [Invalid_argument] on an
    empty vector.  With {!set}, this is the swap-remove primitive the
    store's deletion path uses on columns and posting lists. *)

val swap_remove_value : t -> int -> bool
(** [swap_remove_value v x] removes one occurrence of [x] by overwriting it
    with the last element and shrinking by one (order is not preserved).
    Returns [false] when [x] does not occur.  O(length). *)

val iter : (int -> unit) -> t -> unit
(** Iterates in index order. *)

val to_array : t -> int array
(** A fresh array copy of the contents. *)

val of_array : int array -> t
(** A vector holding a copy of the array. *)
