type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length v = v.len

let grow v =
  let data = Array.make (2 * Array.length v.data) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Intvec: index %d out of bounds (len %d)" i v.len)

let get v i = check v i; v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x = check v i; v.data.(i) <- x

let pop v =
  if v.len = 0 then invalid_arg "Intvec.pop: empty vector";
  v.len <- v.len - 1;
  v.data.(v.len)

let swap_remove_value v x =
  let rec find i = if i >= v.len then -1 else if v.data.(i) = x then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    let last = pop v in
    if i < v.len then v.data.(i) <- last;
    true
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }
