type pattern = { ps : int option; pp : int option; po : int option }

type change = { added : bool; cs : int; cp : int; co : int }

(* The change log is bounded: consumers that fall behind by more than
   [log_max] effective changes rebuild from scratch instead of replaying. *)
let log_max = 4096

type t = {
  mutable schema : Rdf.Schema.t;
  dict : Rdf.Dictionary.t;
  col_s : Intvec.t;
  col_p : Intvec.t;
  col_o : Intvec.t;
  idx_s : (int, Intvec.t) Hashtbl.t;
  idx_p : (int, Intvec.t) Hashtbl.t;
  idx_o : (int, Intvec.t) Hashtbl.t;
  idx_sp : (int, Intvec.t) Hashtbl.t;
  idx_po : (int, Intvec.t) Hashtbl.t;
  idx_so : (int, Intvec.t) Hashtbl.t;
  ids : (int * int * int, int) Hashtbl.t;  (* triple -> id, duplicate guard *)
  mutable schema_version : int;  (* effective RDFS-constraint changes *)
  mutable data_version : int;    (* effective fact inserts + deletes *)
  log : change Queue.t;          (* the last <= log_max effective changes *)
  mutable log_base : int;        (* data_version at the head of [log] *)
}

(* Process-level mutation counters (lib/metrics); effective changes only,
   mirroring the version bumps. *)
let m_inserts = Metrics.counter "store.inserts" ~help:"Effective fact inserts"
let m_deletes = Metrics.counter "store.deletes" ~help:"Effective fact deletes"
let m_schema_changes =
  Metrics.counter "store.schema_changes"
    ~help:"Effective RDFS-constraint additions and retractions"

(* Pair keys are packed into one 62-bit integer; codes stay far below 2^31
   at the scales this library targets. *)
let pack a b =
  assert (a < 0x4000_0000 && b < 0x4000_0000);
  (a lsl 31) lor b

let create schema =
  {
    schema;
    dict = Rdf.Dictionary.create ();
    col_s = Intvec.create ~capacity:1024 ();
    col_p = Intvec.create ~capacity:1024 ();
    col_o = Intvec.create ~capacity:1024 ();
    idx_s = Hashtbl.create 1024;
    idx_p = Hashtbl.create 64;
    idx_o = Hashtbl.create 1024;
    idx_sp = Hashtbl.create 1024;
    idx_po = Hashtbl.create 1024;
    idx_so = Hashtbl.create 1024;
    ids = Hashtbl.create 1024;
    schema_version = 0;
    data_version = 0;
    log = Queue.create ();
    log_base = 0;
  }

let schema t = t.schema
let dictionary t = t.dict
let size t = Intvec.length t.col_s
let schema_version t = t.schema_version
let data_version t = t.data_version
let version t = t.schema_version + t.data_version

let log_change t added s p o =
  Queue.add { added; cs = s; cp = p; co = o } t.log;
  if Queue.length t.log > log_max then begin
    ignore (Queue.pop t.log);
    t.log_base <- t.log_base + 1
  end

let changes_since t ~since =
  if since < t.log_base || since > t.data_version then None
  else begin
    let out = ref [] in
    let i = ref t.log_base in
    Queue.iter
      (fun c ->
        if !i >= since then out := c :: !out;
        incr i)
      t.log;
    Some (List.rev !out)
  end

let posting tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = Intvec.create ~capacity:4 () in
      Hashtbl.add tbl key v;
      v

let insert_code t s p o =
  if not (Hashtbl.mem t.ids (s, p, o)) then begin
    t.data_version <- t.data_version + 1;
    Metrics.add m_inserts 1;
    log_change t true s p o;
    let id = size t in
    Hashtbl.add t.ids (s, p, o) id;
    Intvec.push t.col_s s;
    Intvec.push t.col_p p;
    Intvec.push t.col_o o;
    Intvec.push (posting t.idx_s s) id;
    Intvec.push (posting t.idx_p p) id;
    Intvec.push (posting t.idx_o o) id;
    Intvec.push (posting t.idx_sp (pack s p)) id;
    Intvec.push (posting t.idx_po (pack p o)) id;
    Intvec.push (posting t.idx_so (pack s o)) id
  end

let insert t (tr : Rdf.Triple.t) =
  if Rdf.Triple.is_schema_constraint tr then
    invalid_arg
      ("Encoded_store.insert: constraint triple: " ^ Rdf.Triple.to_string tr);
  let enc = Rdf.Dictionary.encode t.dict in
  insert_code t (enc tr.subj) (enc tr.pred) (enc tr.obj)

(* ---- deletion: swap-remove on the columns and the six postings ---- *)

let remove_from_posting tbl key id =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some v ->
      ignore (Intvec.swap_remove_value v id);
      if Intvec.length v = 0 then Hashtbl.remove tbl key

let relabel_in_posting tbl key ~from ~to_ =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some v ->
      let n = Intvec.length v in
      let i = ref 0 in
      let continue = ref true in
      while !continue && !i < n do
        if Intvec.get v !i = from then begin
          Intvec.set v !i to_;
          continue := false
        end;
        incr i
      done

let delete_code t s p o =
  match Hashtbl.find_opt t.ids (s, p, o) with
  | None -> false
  | Some id ->
      t.data_version <- t.data_version + 1;
      Metrics.add m_deletes 1;
      log_change t false s p o;
      let last = size t - 1 in
      Hashtbl.remove t.ids (s, p, o);
      remove_from_posting t.idx_s s id;
      remove_from_posting t.idx_p p id;
      remove_from_posting t.idx_o o id;
      remove_from_posting t.idx_sp (pack s p) id;
      remove_from_posting t.idx_po (pack p o) id;
      remove_from_posting t.idx_so (pack s o) id;
      if id <> last then begin
        (* move the last triple into the vacated slot: posting entries,
           the ids table and the column cells all re-label [last] as [id] *)
        let ls = Intvec.get t.col_s last
        and lp = Intvec.get t.col_p last
        and lo = Intvec.get t.col_o last in
        relabel_in_posting t.idx_s ls ~from:last ~to_:id;
        relabel_in_posting t.idx_p lp ~from:last ~to_:id;
        relabel_in_posting t.idx_o lo ~from:last ~to_:id;
        relabel_in_posting t.idx_sp (pack ls lp) ~from:last ~to_:id;
        relabel_in_posting t.idx_po (pack lp lo) ~from:last ~to_:id;
        relabel_in_posting t.idx_so (pack ls lo) ~from:last ~to_:id;
        Hashtbl.replace t.ids (ls, lp, lo) id;
        Intvec.set t.col_s id ls;
        Intvec.set t.col_p id lp;
        Intvec.set t.col_o id lo
      end;
      ignore (Intvec.pop t.col_s);
      ignore (Intvec.pop t.col_p);
      ignore (Intvec.pop t.col_o);
      true

let delete t (tr : Rdf.Triple.t) =
  if Rdf.Triple.is_schema_constraint tr then
    invalid_arg
      ("Encoded_store.delete: constraint triple: " ^ Rdf.Triple.to_string tr);
  (* probe, never encode: deleting an unknown term must not grow the
     dictionary *)
  match
    ( Rdf.Dictionary.find t.dict tr.subj,
      Rdf.Dictionary.find t.dict tr.pred,
      Rdf.Dictionary.find t.dict tr.obj )
  with
  | Some s, Some p, Some o -> delete_code t s p o
  | _ -> false

(* ---- triple-level mutation API: constraints go to the schema ---- *)

let constr_declared schema c = List.mem c (Rdf.Schema.constraints schema)

let insert_triples t triples =
  let schema_changes = ref 0 and data_changes = ref 0 in
  List.iter
    (fun (tr : Rdf.Triple.t) ->
      match Rdf.Schema.constr_of_triple tr with
      | Some c ->
          if not (constr_declared t.schema c) then begin
            t.schema <- Rdf.Schema.add c t.schema;
            t.schema_version <- t.schema_version + 1;
            Metrics.add m_schema_changes 1;
            incr schema_changes
          end
      | None ->
          let before = t.data_version in
          insert t tr;
          if t.data_version <> before then incr data_changes)
    triples;
  (!schema_changes, !data_changes)

let delete_triples t triples =
  let schema_changes = ref 0 and data_changes = ref 0 in
  List.iter
    (fun (tr : Rdf.Triple.t) ->
      match Rdf.Schema.constr_of_triple tr with
      | Some c ->
          if constr_declared t.schema c then begin
            t.schema <-
              Rdf.Schema.of_constraints
                (List.filter
                   (fun c' -> c' <> c)
                   (Rdf.Schema.constraints t.schema));
            t.schema_version <- t.schema_version + 1;
            Metrics.add m_schema_changes 1;
            incr schema_changes
          end
      | None -> if delete t tr then incr data_changes)
    triples;
  (!schema_changes, !data_changes)

let of_graph g =
  let t = create (Rdf.Graph.schema g) in
  Rdf.Triple.Set.iter (insert t) (Rdf.Graph.facts g);
  t

let encode_term t term = Rdf.Dictionary.find t.dict term

let subject t i = Intvec.get t.col_s i
let property t i = Intvec.get t.col_p i
let obj t i = Intvec.get t.col_o i

let unsafe_subject t i = Intvec.unsafe_get t.col_s i
let unsafe_property t i = Intvec.unsafe_get t.col_p i
let unsafe_obj t i = Intvec.unsafe_get t.col_o i

let empty_vec = Intvec.create ~capacity:1 ()

let find_or_empty tbl key =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> empty_vec

let all_ids t =
  let v = Intvec.create ~capacity:(max 1 (size t)) () in
  for i = 0 to size t - 1 do
    Intvec.push v i
  done;
  v

let matching t pat =
  match (pat.ps, pat.pp, pat.po) with
  | None, None, None -> all_ids t
  | Some s, None, None -> find_or_empty t.idx_s s
  | None, Some p, None -> find_or_empty t.idx_p p
  | None, None, Some o -> find_or_empty t.idx_o o
  | Some s, Some p, None -> find_or_empty t.idx_sp (pack s p)
  | None, Some p, Some o -> find_or_empty t.idx_po (pack p o)
  | Some s, None, Some o -> find_or_empty t.idx_so (pack s o)
  | Some s, Some p, Some o -> (
      match Hashtbl.find_opt t.ids (s, p, o) with
      | Some id -> Intvec.of_array [| id |]
      | None -> empty_vec)

(* Sentinel-coded access paths: positions carry codes, [-1] is a wildcard.
   These never materialize an id vector — the all-wildcard and fully-bound
   shapes, which [matching] must allocate for, are described symbolically —
   and never allocate an option or a pattern record, so the executor's
   index-nested-loop probe pays exactly one index lookup per access. *)

type selection = Miss | Hit of int | Ids of Intvec.t | All of int

let select t ~s ~p ~o =
  if s >= 0 then
    if p >= 0 then
      if o >= 0 then (
        match Hashtbl.find_opt t.ids (s, p, o) with
        | Some id -> Hit id
        | None -> Miss)
      else Ids (find_or_empty t.idx_sp (pack s p))
    else if o >= 0 then Ids (find_or_empty t.idx_so (pack s o))
    else Ids (find_or_empty t.idx_s s)
  else if p >= 0 then
    if o >= 0 then Ids (find_or_empty t.idx_po (pack p o))
    else Ids (find_or_empty t.idx_p p)
  else if o >= 0 then Ids (find_or_empty t.idx_o o)
  else All (size t)

let selected_count = function
  | Miss -> 0
  | Hit _ -> 1
  | Ids v -> Intvec.length v
  | All n -> n

let iter_matching t ~s ~p ~o f =
  match select t ~s ~p ~o with
  | Miss -> ()
  | Hit id -> f id
  | Ids v -> Intvec.iter f v
  | All n ->
      for i = 0 to n - 1 do
        f i
      done

let count_codes t ~s ~p ~o = selected_count (select t ~s ~p ~o)

let count t pat =
  match (pat.ps, pat.pp, pat.po) with
  | None, None, None -> size t
  | Some _, Some _, Some _ ->
      (match (pat.ps, pat.pp, pat.po) with
      | Some s, Some p, Some o -> if Hashtbl.mem t.ids (s, p, o) then 1 else 0
      | _ -> assert false)
  | _ -> Intvec.length (matching t pat)

let mem_code t s p o = Hashtbl.mem t.ids (s, p, o)

let decode_triple t i =
  let d = Rdf.Dictionary.decode t.dict in
  Rdf.Triple.make (d (subject t i)) (d (property t i)) (d (obj t i))

let to_graph t =
  let facts = ref [] in
  for i = size t - 1 downto 0 do
    facts := decode_triple t i :: !facts
  done;
  Rdf.Graph.make t.schema !facts

(* Code-level saturation: the schema closure is translated to codes once,
   then each stored triple contributes its entailments directly, sharing
   the dictionary with the source store.  A single pass reaches the
   fixpoint because {!Rdf.Schema} precloses the constraint graph (same
   argument as {!Rdf.Saturation}). *)
let saturate t =
  let t' =
    {
      (create t.schema) with
      dict = t.dict;
    }
  in
  let enc term = Rdf.Dictionary.encode t.dict term in
  let type_code = enc Rdf.Vocab.rdf_type in
  let codes_of set = List.map enc (Rdf.Term.Set.elements set) in
  let supers_of_class = Hashtbl.create 64 in
  Rdf.Term.Set.iter
    (fun c ->
      Hashtbl.replace supers_of_class (enc c)
        (codes_of (Rdf.Schema.super_classes t.schema c)))
    (Rdf.Schema.classes t.schema);
  let prop_rules = Hashtbl.create 64 in
  Rdf.Term.Set.iter
    (fun p ->
      Hashtbl.replace prop_rules (enc p)
        ( codes_of (Rdf.Schema.super_properties t.schema p),
          codes_of (Rdf.Schema.domains t.schema p),
          codes_of (Rdf.Schema.ranges t.schema p) ))
    (Rdf.Schema.properties t.schema);
  let lookup tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  for i = 0 to size t - 1 do
    let s = subject t i and p = property t i and o = obj t i in
    insert_code t' s p o;
    if p = type_code then
      List.iter (fun c -> insert_code t' s type_code c)
        (lookup supers_of_class o)
    else
      match Hashtbl.find_opt prop_rules p with
      | None -> ()
      | Some (supers, domains, ranges) ->
          List.iter (fun p' -> insert_code t' s p' o) supers;
          List.iter (fun c -> insert_code t' s type_code c) domains;
          List.iter (fun c -> insert_code t' o type_code c) ranges
  done;
  t'

(* ---- process-level metrics ---- *)

(* Heap footprint of everything the store points at — columns, the six
   posting indexes, the duplicate guard, the change log and the (possibly
   shared) dictionary.  [Obj.reachable_words] walks that object graph, so
   this is O(store size): snapshot-time only, never on a query path. *)
let approx_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)

let g_triples = Metrics.gauge "store.triples" ~help:"Stored fact triples"
let g_data_version =
  Metrics.gauge "store.data_version" ~help:"Effective fact inserts + deletes"
let g_schema_version =
  Metrics.gauge "store.schema_version"
    ~help:"Effective RDFS-constraint changes"
let g_bytes =
  Metrics.gauge "store.bytes" ~help:"Approximate heap bytes reachable from the store"

let observe_metrics t =
  Metrics.set_gauge g_triples (float_of_int (size t));
  Metrics.set_gauge g_data_version (float_of_int t.data_version);
  Metrics.set_gauge g_schema_version (float_of_int t.schema_version);
  Metrics.set_gauge g_bytes (float_of_int (approx_bytes t))
