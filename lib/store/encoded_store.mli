(** The dictionary-encoded triple table of Section 5.1.

    RDF facts live in a [Triples(s, p, o)] table whose values are integer
    codes (see {!Rdf.Dictionary}); the table is indexed by all permutations
    of the [s, p, o] columns, realized here as posting-list indexes over
    every bound-position combination ([s], [p], [o], [sp], [po], [so]) plus
    a full-triple membership check — the access paths a six-fold-indexed
    RDBMS table offers.  RDFS constraints are {e not} stored in the table;
    they are kept apart in the accompanying {!Rdf.Schema}, exactly as in
    the paper's experimental setup. *)

type t

type pattern = {
  ps : int option;  (** subject code, [None] for a wildcard *)
  pp : int option;  (** property code *)
  po : int option;  (** object code *)
}
(** A triple-pattern access: bound positions carry codes. *)

val create : Rdf.Schema.t -> t
(** An empty store with the given schema. *)

val of_graph : Rdf.Graph.t -> t
(** Loads a graph's facts (the explicit triples only). *)

val insert : t -> Rdf.Triple.t -> unit
(** Inserts one data triple (encoding its values), skipping duplicates.
    Raises [Invalid_argument] on an RDFS-constraint triple. *)

val insert_code : t -> int -> int -> int -> unit
(** Inserts an already-encoded triple, skipping duplicates. *)

val delete : t -> Rdf.Triple.t -> bool
(** Deletes one data triple; returns whether it was stored.  The store is
    compacted by swap-remove: the last triple takes over the deleted
    triple's id, so ids are dense but not stable across deletions.  Never
    grows the dictionary.  Raises [Invalid_argument] on an
    RDFS-constraint triple. *)

val delete_code : t -> int -> int -> int -> bool
(** Deletes an already-encoded triple; returns whether it was stored. *)

val insert_triples : t -> Rdf.Triple.t list -> int * int
(** Bulk insert routing RDFS-constraint triples into the schema (closure
    recomputed) and the rest into the fact table.  Returns
    [(schema_changes, data_changes)]: the number of {e effective} changes
    of each kind — duplicates count zero and bump no version. *)

val delete_triples : t -> Rdf.Triple.t list -> int * int
(** Bulk delete, the inverse of {!insert_triples}: constraint triples
    retract declared schema constraints (schema rebuilt from the remaining
    ones), data triples leave the fact table.  Returns the effective
    [(schema_changes, data_changes)]. *)

val schema : t -> Rdf.Schema.t
(** The schema associated with the stored facts.  Mutable: constraint
    triples passed to {!insert_triples} / {!delete_triples} replace it
    (and bump {!schema_version}). *)

val dictionary : t -> Rdf.Dictionary.t
(** The value dictionary. *)

val size : t -> int
(** Number of stored triples. *)

val schema_version : t -> int
(** Monotone counter of effective RDFS-constraint changes.  Reformulation
    caches key on it: a data-only update leaves it unchanged. *)

val data_version : t -> int
(** Monotone counter of effective fact inserts and deletes.  Statistics,
    plan and answer caches key on it. *)

val version : t -> int
(** [schema_version t + data_version t]: the legacy single staleness
    counter, bumped on every effective change of either kind. *)

type change = {
  added : bool;  (** [true] for an insert, [false] for a delete *)
  cs : int;
  cp : int;
  co : int;
}
(** One effective fact-table change, in encoded form. *)

val changes_since : t -> since:int -> change list option
(** [changes_since t ~since] is the list of effective fact changes that
    took the store from data version [since] to {!data_version}, oldest
    first — or [None] when [since] is outside the bounded change log's
    window (the caller must then rebuild its derived state from scratch). *)

val encode_term : t -> Rdf.Term.t -> int option
(** The code of a term, [None] if the term does not occur. *)

val subject : t -> int -> int
(** Subject code of the [i]-th triple. *)

val property : t -> int -> int
(** Property code of the [i]-th triple. *)

val obj : t -> int -> int
(** Object code of the [i]-th triple. *)

val unsafe_subject : t -> int -> int
(** Like {!subject}, without the bounds check: [i] must be a valid triple
    id (as produced by {!iter_matching} / {!matching}).  For the engine's
    innermost loops. *)

val unsafe_property : t -> int -> int
(** Like {!property}, without the bounds check. *)

val unsafe_obj : t -> int -> int
(** Like {!obj}, without the bounds check. *)

type selection =
  | Miss               (** a fully-bound pattern that is not stored *)
  | Hit of int         (** a fully-bound pattern's triple id *)
  | Ids of Intvec.t    (** a posting list (must not be mutated) *)
  | All of int         (** every id in [0 .. n-1]: the all-wildcard shape *)
(** The symbolic result of one index access: what {!matching} materializes
    an id vector for, described without building one. *)

val select : t -> s:int -> p:int -> o:int -> selection
(** [select t ~s ~p ~o] resolves a pattern to its access path in a single
    index lookup, where each position carries a code and [-1] means a
    wildcard.  The executor's index nested loops get both the match count
    and the iteration out of one call — {!matching}'s all-wildcard and
    fully-bound shapes never materialize anything here. *)

val selected_count : selection -> int
(** Number of triple ids a selection denotes. *)

val iter_matching : t -> s:int -> p:int -> o:int -> (int -> unit) -> unit
(** [iter_matching t ~s ~p ~o f] calls [f] on every triple id matching the
    sentinel-coded pattern, via {!select} — no id vector is built. *)

val count_codes : t -> s:int -> p:int -> o:int -> int
(** Number of triples {!iter_matching} would visit, with the same sentinel
    convention, as an O(1) index lookup.  Agrees with {!count}. *)

val matching : t -> pattern -> Intvec.t
(** Triple ids matching a pattern, served from the best index.  The result
    must not be mutated.  Patterns with all three positions bound return a
    0- or 1-element vector. *)

val count : t -> pattern -> int
(** Number of matching triples — an O(1) index lookup for every pattern
    shape (the statistics reformulation optimization relies on). *)

val mem_code : t -> int -> int -> int -> bool
(** Membership of an encoded triple. *)

val saturate : t -> t
(** A saturated copy of the store (same dictionary object): the physical
    design of saturation-based query answering. *)

val to_graph : t -> Rdf.Graph.t
(** Decodes the store back into a graph (tests, small stores only). *)

val approx_bytes : t -> int
(** Approximate heap footprint in bytes of everything reachable from the
    store — columns, posting indexes, duplicate guard, change log and the
    (possibly shared) dictionary.  O(store size); meant for snapshots and
    trace meta lines, never for query paths. *)

val observe_metrics : t -> unit
(** Publishes the [store.*] gauges ([store.triples], [store.data_version],
    [store.schema_version], [store.bytes]) to the process metrics registry.
    No-op while metrics are disabled. *)
