(** Epoch-based reader/writer coordination for in-place stores.

    {!Encoded_store} mutates in place — deletes swap-remove triple ids and
    relabel posting lists — so a reader racing a writer can observe a torn
    store: a posting list pointing at a relabeled id, or a column shorter
    than the index that references it.  This module serializes that
    interaction without copying the store:

    - readers {e pin an epoch at admission}: {!read} admits the caller only
      while no writer is active or waiting, and for the whole read section
      the store's [schema_version]/[data_version] pair cannot move;
    - writers {e drain the pinned epoch}: {!write} blocks new readers,
      waits until every admitted reader has left, applies the mutation,
      bumps the epoch counter and only then runs any reclamation thunks the
      mutation {!defer}red — in-place cleanup never executes under a live
      reader.

    Writers have preference (a waiting writer stops new readers from being
    admitted) so a steady read stream cannot starve mutations.  Both
    sections are exception-safe: a raising callback releases its slot. *)

type t

val create : unit -> t
(** A fresh coordinator at epoch 0 with no pinned readers. *)

val epoch : t -> int
(** The current epoch: the number of completed {!write} sections.  A reader
    that pinned epoch [e] is guaranteed the store state of epoch [e] for
    its whole section. *)

val read : t -> (int -> 'a) -> 'a
(** [read t f] admits the caller as a reader — blocking while a writer is
    active or waiting — and runs [f pinned] where [pinned] is the epoch in
    force for the whole section.  Multiple readers run concurrently. *)

val write : t -> (unit -> 'a) -> 'a
(** [write t f] serializes the caller with other writers, stops admitting
    readers, waits for every active reader to drain, then runs [f].  After
    [f] returns the epoch is bumped and deferred reclamation thunks run,
    still under writer exclusion, before readers are re-admitted. *)

val defer : t -> (unit -> unit) -> unit
(** Queues a reclamation thunk.  Called from inside a {!write} section it
    runs at the end of that same section (after the epoch bump); called
    outside it runs at the end of the next one.  Thunks run oldest first
    and must not raise. *)

(** {1 Introspection} — feed the [server.*] gauges. *)

val active_readers : t -> int
(** Readers currently inside a {!read} section. *)

val waiting_writers : t -> int
(** Writers blocked in {!write} waiting for admission or drain. *)

val reads : t -> int
(** Completed read sections since {!create}. *)

val writes : t -> int
(** Completed write sections since {!create} (equals {!epoch}). *)

val deferred_pending : t -> int
(** Reclamation thunks queued but not yet run. *)

val deferred_run : t -> int
(** Reclamation thunks executed so far. *)
